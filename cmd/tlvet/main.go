// Command tlvet runs the Thistle static-analysis suite over the
// module: project-specific invariants that go vet cannot check, from
// event-schema conformance up to flow-aware determinism and
// concurrency discipline on a module-wide callgraph.
//
// The analyzers and their one-line invariants:
//
//	ctxprop     ctx-receiving functions must not call context.Background/TODO or drop ctx when a Context variant exists
//	droppederr  error results must be consumed, not discarded
//	eventfields emitted thistle-events-v1 fields must match the registered schema
//	floateq     solver code must not compare floats with == / !=
//	goscheduler go statements in internal/ must be Scheduler-internal, WaitGroup-scoped, or carry a reasoned suppression
//	lockguard   fields annotated `guarded by <mu>` must only be accessed with that mutex held
//	maprange    map iteration must not feed Emit/serialization/printing or unsorted slice appends
//	nilrecv     obs helpers must stay nil-receiver-safe
//	posycoef    posynomial coefficients must be constructed positive
//	stagedep    pipeline stages must declare their data dependencies
//	wallclock   no wall-clock reads reachable from solver/gp/pipeline/core solve paths outside the obs allowlist
//
// Usage:
//
//	tlvet [-only names] [-skip names] [-format text|json|sarif] [-json]
//	      [-baseline file] [-write-baseline file] [-list] [dir]
//
// dir (default ".") may be any directory inside the module; the whole
// module is always analyzed. Exit status is 1 if any findings survive
// suppression and the baseline, 2 on usage or load errors, 0
// otherwise. The text format prints findings as
//
//	file:line: [analyzer] message
//
// -format json emits a JSON array (-json is an alias); -format sarif
// emits a SARIF 2.1.0 log with module-root-relative URIs, suitable for
// code-review ingestion and validated by scripts/sarifcheck.
//
// Findings are suppressed per line with
// `//tlvet:ignore <analyzer>[, <analyzer>] -- <reason>` (per file with
// //tlvet:ignore-file), or tolerated as committed debt via the
// baseline: -baseline applies the ledger (stale entries are themselves
// findings), -write-baseline regenerates it from the current run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzer names to disable")
	format := flag.String("format", "", "output format: text (default), json, or sarif")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (alias for -format json)")
	baselinePath := flag.String("baseline", "", "apply the baseline ledger at this path; stale entries are findings")
	writeBaseline := flag.String("write-baseline", "", "write the current findings as a baseline to this path and exit")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := checks.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	switch {
	case *format == "" && *jsonOut:
		*format = "json"
	case *format == "":
		*format = "text"
	case *format != "text" && *format != "json" && *format != "sarif":
		fmt.Fprintf(os.Stderr, "tlvet: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	enabled, err := selectAnalyzers(analyzers, *only, *skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
		os.Exit(2)
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs, enabled, checks.Names())

	if *writeBaseline != "" {
		if err := analysis.NewBaseline(findings, root).Write(*writeBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "tlvet: wrote %d baseline entr%s to %s\n",
			len(findings), plural(len(findings), "y", "ies"), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
			os.Exit(2)
		}
		kept, suppressed, stale := base.Apply(findings, root)
		findings = append(kept, analysis.StaleFindings(stale, *baselinePath)...)
		if suppressed > 0 && *format == "text" {
			fmt.Fprintf(os.Stderr, "tlvet: %d finding(s) tolerated by %s\n", suppressed, *baselinePath)
		}
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
			os.Exit(2)
		}
	case "sarif":
		if err := analysis.WriteSARIF(os.Stdout, findings, analyzers, root); err != nil {
			fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if *format == "text" {
			fmt.Fprintf(os.Stderr, "tlvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func selectAnalyzers(all []*analysis.Analyzer, only, skip string) ([]*analysis.Analyzer, error) {
	if only != "" && skip != "" {
		return nil, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		set := make(map[string]bool)
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see tlvet -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	switch {
	case only != "":
		set, err := parse(only)
		if err != nil {
			return nil, err
		}
		var out []*analysis.Analyzer
		for _, a := range all {
			if set[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	case skip != "":
		set, err := parse(skip)
		if err != nil {
			return nil, err
		}
		var out []*analysis.Analyzer
		for _, a := range all {
			if !set[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	default:
		return all, nil
	}
}
