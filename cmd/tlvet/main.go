// Command tlvet runs the Thistle static-analysis suite over the
// module: project-specific invariants (event schema conformance,
// posynomial coefficient positivity, float comparison discipline,
// nil-receiver safety, dropped errors) that go vet cannot check.
//
// Usage:
//
//	tlvet [-only names] [-skip names] [-json] [-list] [dir]
//
// dir (default ".") may be any directory inside the module; the whole
// module is always analyzed. Exit status is 1 if any findings are
// reported, 2 on usage or load errors, 0 otherwise. Findings print as
//
//	file:line: [analyzer] message
//
// and can be suppressed per line with
// `//tlvet:ignore <analyzer> -- <reason>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzer names to disable")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := checks.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	enabled, err := selectAnalyzers(analyzers, *only, *skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
		os.Exit(2)
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	pkgs, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs, enabled, checks.Names())
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "tlvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "tlvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func selectAnalyzers(all []*analysis.Analyzer, only, skip string) ([]*analysis.Analyzer, error) {
	if only != "" && skip != "" {
		return nil, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		set := make(map[string]bool)
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see tlvet -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	switch {
	case only != "":
		set, err := parse(only)
		if err != nil {
			return nil, err
		}
		var out []*analysis.Analyzer
		for _, a := range all {
			if set[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	case skip != "":
		set, err := parse(skip)
		if err != nil {
			return nil, err
		}
		var out []*analysis.Analyzer
		for _, a := range all {
			if !set[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	default:
		return all, nil
	}
}
