// Command experiments regenerates the paper's evaluation tables and
// figures (Tables II–III, Figs. 4–8) plus this reproduction's extension
// studies (ext_edp, ext_noc), printing each as an aligned text table (or
// textual bar charts with -plot). With -out, each experiment is
// additionally written to <dir>/<id>.tsv.
//
// Examples:
//
//	experiments -exp fig4
//	experiments -exp all -quick
//	experiments -exp all -out results/
//	experiments -exp fig5 -plot
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/events"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "all", "experiment id: table2 table3 fig4 fig5 fig6 fig7 fig8 ext_edp ext_noc | all (comma-separated ok)")
		quick = flag.Bool("quick", false, "reduced layer subset and search budgets")
		out   = flag.String("out", "", "directory for .tsv outputs (optional)")
		plot  = flag.Bool("plot", false, "render textual bar charts instead of plain tables")
		seed  = flag.Int64("seed", 1, "random seed for the mapper baseline")
	)
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	var cacheFlags cache.Flags
	cacheFlags.Register(flag.CommandLine)
	var evFlags events.Flags
	evFlags.Register(flag.CommandLine)
	flag.Parse()

	o, err := obsFlags.Setup(os.Stderr)
	if err != nil {
		return err
	}
	defer obsFlags.Close()
	if o, err = evFlags.Setup(o, "experiments", os.Args[1:], os.Stderr); err != nil {
		return err
	}
	defer evFlags.Close()
	sc := cache.Setup[*core.Result](&cacheFlags, "optimize", o)

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Progress: os.Stderr, Obs: o, Cache: sc}
	runners := experiments.AllRunners()

	var ids []string
	if *exp == "all" {
		ids = experiments.Order()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			if runners[id] == nil {
				return fmt.Errorf("unknown experiment %q", id)
			}
			ids = append(ids, id)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		start := time.Now()
		e, err := runners[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *plot {
			e.RenderBars(os.Stdout)
		} else {
			e.Render(os.Stdout)
		}
		fmt.Printf("# %s completed in %s\n\n", id, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			f, err := os.Create(filepath.Join(*out, id+".tsv"))
			if err != nil {
				return err
			}
			e.Render(f)
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if cacheFlags.ShowStats {
		sc.WriteStats(os.Stdout)
	}
	if err := evFlags.Finish(cacheStatsOf(sc.Stats())); err != nil {
		return err
	}
	return obsFlags.Finish(os.Stdout)
}

// cacheStatsOf converts the solve cache's counters for the manifest,
// returning nil for an unused cache (so the manifest omits the block).
func cacheStatsOf(s cache.Stats) *events.CacheStats {
	if s.Hits+s.Misses == 0 {
		return nil
	}
	return &events.CacheStats{
		Hits:              s.Hits,
		Misses:            s.Misses,
		DiskHits:          s.DiskHits,
		SingleflightWaits: s.SingleflightWaits,
		Stores:            s.Stores,
		Evictions:         s.Evictions,
		HitRate:           s.HitRate(),
	}
}
