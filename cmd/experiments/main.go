// Command experiments regenerates the paper's evaluation tables and
// figures (Tables II–III, Figs. 4–8) plus this reproduction's extension
// studies (ext_edp, ext_noc), printing each as an aligned text table (or
// textual bar charts with -plot). With -out, each experiment is
// additionally written to <dir>/<id>.tsv.
//
// Whole-network sweeps share one bounded scheduler (-parallel) and
// deduplicate same-shaped layers before solving. The shared runtime
// flag block (internal/cliutil) adds observability (-v, -trace-out,
// -metrics, profiles), the solve cache (-cache, -cache-dir — the
// studies re-solve each other's baselines, so cross-figure hit rates
// are tabulated in EXPERIMENTS.md), and durable run records (-events,
// -manifest, -status-addr).
//
// Examples:
//
//	experiments -exp fig4
//	experiments -exp all -quick
//	experiments -exp all -out results/
//	experiments -exp fig5 -plot
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "all", "experiment id: table2 table3 fig4 fig5 fig6 fig7 fig8 ext_edp ext_noc | all (comma-separated ok)")
		quick = flag.Bool("quick", false, "reduced layer subset and search budgets")
		out   = flag.String("out", "", "directory for .tsv outputs (optional)")
		plot  = flag.Bool("plot", false, "render textual bar charts instead of plain tables")
		seed  = flag.Int64("seed", 1, "random seed for the mapper baseline")
	)
	var rf cliutil.Flags
	rf.Register(flag.CommandLine)
	flag.Parse()
	if rf.HandleVersion("experiments", os.Stdout) {
		return nil
	}

	rt, err := rf.Setup("experiments", os.Args[1:], os.Stderr)
	if err != nil {
		return err
	}
	defer rt.Close()
	sc := cliutil.OpenCache[*core.Result](rt, "optimize")

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Progress: os.Stderr, Obs: rt.Obs, Cache: sc}
	runners := experiments.AllRunners()

	var ids []string
	if *exp == "all" {
		ids = experiments.Order()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			if runners[id] == nil {
				return fmt.Errorf("unknown experiment %q", id)
			}
			ids = append(ids, id)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		start := time.Now()
		e, err := runners[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *plot {
			e.RenderBars(os.Stdout)
		} else {
			e.Render(os.Stdout)
		}
		fmt.Printf("# %s completed in %s\n\n", id, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			f, err := os.Create(filepath.Join(*out, id+".tsv"))
			if err != nil {
				return err
			}
			e.Render(f)
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if rt.ShowCacheStats() {
		sc.WriteStats(os.Stdout)
	}
	return rt.Finish(os.Stdout, sc.Stats())
}
