// Command thistle is the optimizer CLI of the reproduction: given a
// workload (a Table II layer name, a whole network via -pipeline,
// explicit convolution parameters, an einsum, or a Timeloop-style
// problem spec), a criterion (energy, delay, or edp), and a mode
// (fixed-architecture dataflow optimization or architecture-dataflow
// co-design), it runs the staged Thistle pipeline and prints the
// resulting design point together with the Timeloop-style spec bundle.
//
// Whole-network runs share one bounded scheduler (-parallel) and
// deduplicate same-shaped layers. The shared runtime flag block
// (internal/cliutil) adds observability (-v, -trace-out, -metrics,
// profiles), the content-addressed solve cache (-cache, -cache-dir),
// and durable run records (-events, -manifest, -status-addr); see the
// README. The same optimizer is available as a long-running HTTP
// service via cmd/thistled.
//
// Examples:
//
//	thistle -layer resnet18_L6
//	thistle -pipeline resnet18 -cache -cache-dir .thistle-cache
//	thistle -layer yolo9000_L3 -criterion delay -mode codesign
//	thistle -K 128 -C 64 -H 56 -RS 3 -stride 2 -mode codesign
//	thistle -problem prob.yaml -arch arch.yaml -manifest run.manifest.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/arch"
	"repro/internal/cliutil"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/specs"
	"repro/internal/workloads"
	"repro/internal/yamlite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "thistle:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		layerName = flag.String("layer", "", "Table II layer name (e.g. resnet18_L6)")
		pipeline  = flag.String("pipeline", "", "optimize every layer of a pipeline: resnet18 | yolo9000 | all")
		probFile  = flag.String("problem", "", "problem spec file (Timeloop-style YAML)")
		einsum    = flag.String("einsum", "", "einsum statement, e.g. 'C[i,j] += A[i,k] * B[k,j]' (needs -extents)")
		extents   = flag.String("extents", "", "comma-separated iterator extents for -einsum, e.g. 'i=64,j=64,k=64'")
		archFile  = flag.String("arch", "", "architecture spec file (default: Eyeriss)")
		criterion = flag.String("criterion", "energy", "optimization criterion: energy | delay | edp")
		mode      = flag.String("mode", "fixed", "optimization mode: fixed | codesign")
		area      = flag.Float64("area", 0, "co-design area budget in um^2 (default: Eyeriss-equal)")
		nDiv      = flag.Int("n", 2, "divisor candidates per tile variable (integerization)")
		emitSpecs = flag.Bool("specs", true, "print the Timeloop-style spec bundle")
		emitCode  = flag.Bool("code", false, "print the tiled loop nest as pseudocode (paper Fig. 1(d) style)")
		kFlag     = flag.Int64("K", 0, "output channels (explicit conv)")
		cFlag     = flag.Int64("C", 0, "input channels (explicit conv)")
		hFlag     = flag.Int64("H", 0, "input height/width (explicit conv)")
		rsFlag    = flag.Int64("RS", 3, "kernel size (explicit conv)")
		stride    = flag.Int64("stride", 1, "stride (explicit conv)")
		dilation  = flag.Int64("dilation", 1, "dilation (explicit conv)")
		nocHop    = flag.Float64("noc", 0, "NoC energy per word-hop in pJ (0 disables, the paper's setting)")
		parallel  = flag.Int("parallel", 0, "total concurrent solve/integerize jobs across all layers (0 = NumCPU)")
		noBound   = flag.Bool("no-bound-pruning", false, "solve every class pair even when a cheap objective bound rules it out (ablation; results are identical)")
		noWarm    = flag.Bool("no-warm-start", false, "start every GP from the cold analytic hint instead of the previous class solution (ablation)")
	)
	var rf cliutil.Flags
	rf.Register(flag.CommandLine)
	flag.Parse()
	if rf.HandleVersion("thistle", os.Stdout) {
		return nil
	}

	rt, err := rf.Setup("thistle", os.Args[1:], os.Stderr)
	if err != nil {
		return err
	}
	defer rt.Close()
	o := rt.Obs
	sc := cliutil.OpenCache[*core.Result](rt, "optimize")
	ctx := obs.NewContext(context.Background(), o)
	ctx = core.ContextWithCache(ctx, sc)

	var prob *loopnest.Problem
	if *pipeline == "" {
		var err error
		prob, err = resolveProblem(*layerName, *probFile, *einsum, *extents, *kFlag, *cFlag, *hFlag, *rsFlag, *stride, *dilation)
		if err != nil {
			return err
		}
	}

	a := arch.Eyeriss()
	if *archFile != "" {
		text, err := os.ReadFile(*archFile)
		if err != nil {
			return err
		}
		node, err := yamlite.Parse(string(text))
		if err != nil {
			return err
		}
		a, err = specs.ParseArch(node, arch.Tech45nm())
		if err != nil {
			return err
		}
	}
	a.Tech.EnergyNoCHop = *nocHop

	opts := core.Options{
		Arch: &a, NDiv: *nDiv, AreaBudget: *area, Parallel: *parallel,
		DisableBoundPruning: *noBound, DisableWarmStart: *noWarm,
	}
	switch *criterion {
	case "energy":
		opts.Criterion = model.MinEnergy
	case "delay":
		opts.Criterion = model.MinDelay
	case "edp":
		opts.Criterion = model.MinEDP
	default:
		return fmt.Errorf("unknown criterion %q", *criterion)
	}
	switch *mode {
	case "fixed":
		opts.Mode = core.FixedArch
	case "codesign":
		opts.Mode = core.CoDesign
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if *pipeline != "" {
		if err := runPipeline(ctx, *pipeline, opts); err != nil {
			return err
		}
		if rt.ShowCacheStats() {
			sc.WriteStats(os.Stdout)
		}
		return rt.Finish(os.Stdout, sc.Stats())
	}

	res, err := core.OptimizeContext(ctx, prob, opts)
	if err != nil {
		return err
	}
	dp := res.Best
	fmt.Printf("problem:      %s (%d MACs)\n", prob.Name, prob.Ops())
	fmt.Printf("criterion:    %s, mode: %s\n", opts.Criterion, opts.Mode)
	fmt.Printf("architecture: %s\n", dp.Arch.String())
	fmt.Printf("energy:       %.3f pJ/MAC (%.4g pJ total)\n", dp.Report.EnergyPerMAC, dp.Report.Energy)
	fmt.Printf("breakdown:    compute %.3g, regfile %.3g, sram %.3g, dram %.3g pJ\n",
		dp.Report.Breakdown.Compute, dp.Report.Breakdown.RegFile,
		dp.Report.Breakdown.SRAM, dp.Report.Breakdown.DRAM)
	fmt.Printf("delay:        %.4g cycles (IPC %.2f, %d PEs used, %.0f%% utilization)\n",
		dp.Report.Cycles, dp.Report.IPC, dp.Report.PEsUsed, 100*dp.Report.Utilization)
	fmt.Printf("footprints:   %.0f register words/PE, %.0f SRAM words\n",
		dp.Report.RegFootprint, dp.Report.SRAMFootprint)
	cached := ""
	if res.Stats.FromCache {
		cached = " (served from cache, 0 solved this run)"
	}
	pruned := ""
	if res.Stats.Pruned > 0 {
		pruned = fmt.Sprintf(" (+%d pruned by bound)", res.Stats.Pruned)
	}
	fmt.Printf("search:       %d x %d permutation classes, %d GPs solved%s, %d integer candidates%s\n",
		res.Stats.ClassesL1, res.Stats.ClassesSRAM, res.Stats.PairsSolved, pruned, res.Stats.Candidates, cached)

	if *emitSpecs {
		nest, err := core.NestFor(prob, dp)
		if err != nil {
			return err
		}
		bundle, err := specs.DesignBundle(prob, &dp.Arch, nest, dp.Mapping)
		if err != nil {
			return err
		}
		fmt.Println("--- spec bundle ---")
		fmt.Print(bundle)
	}
	if *emitCode {
		nest, err := core.NestFor(prob, dp)
		if err != nil {
			return err
		}
		code, err := codegen.Generate(nest, dp.Mapping, &dp.Arch, codegen.DefaultOptions())
		if err != nil {
			return err
		}
		fmt.Println("--- tiled loop nest ---")
		fmt.Print(code)
	}
	if rt.ShowCacheStats() {
		sc.WriteStats(os.Stdout)
	}
	return rt.Finish(os.Stdout, sc.Stats())
}

// runPipeline optimizes every layer of a pipeline and prints one TSV row
// per layer plus totals. Layers that share a solve signature (same shape,
// arch, and options) are solved once and fan out.
func runPipeline(ctx context.Context, name string, opts core.Options) error {
	var layers []workloads.Layer
	switch name {
	case "resnet18":
		layers = workloads.ResNet18()
	case "yolo9000":
		layers = workloads.Yolo9000()
	case "all":
		layers = workloads.All()
	default:
		return fmt.Errorf("unknown pipeline %q (resnet18 | yolo9000 | all)", name)
	}
	results, err := experiments.OptimizeLayers(ctx, layers, opts, nil)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\tMMACs\tpJ/MAC\tcycles\tIPC\tP\tR\tS(words)")
	var totalEnergy, totalCycles float64
	for i, l := range layers {
		rep := results[i].Best.Report
		totalEnergy += rep.Energy
		totalCycles += rep.Cycles
		fmt.Fprintf(w, "%s\t%.1f\t%.3f\t%.4g\t%.1f\t%d\t%d\t%d\n",
			l.Name(), float64(l.MACs())/1e6, rep.EnergyPerMAC, rep.Cycles, rep.IPC,
			results[i].Best.Arch.PEs, results[i].Best.Arch.Regs, results[i].Best.Arch.SRAM)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("pipeline total: %.4g pJ, %.4g cycles\n", totalEnergy, totalCycles)
	return nil
}

func resolveProblem(layerName, probFile, einsum, extents string, k, c, h, rs, stride, dilation int64) (*loopnest.Problem, error) {
	switch {
	case einsum != "":
		exts := map[string]int64{}
		for _, kv := range strings.Split(extents, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("bad extent %q (want name=value)", kv)
			}
			v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad extent %q: %v", kv, err)
			}
			exts[strings.TrimSpace(name)] = v
		}
		return loopnest.ParseEinsum(einsum, exts)
	case layerName != "":
		l, ok := workloads.ByName(layerName)
		if !ok {
			return nil, fmt.Errorf("unknown layer %q (try resnet18_L1..L12, yolo9000_L1..L11)", layerName)
		}
		return l.Problem()
	case probFile != "":
		text, err := os.ReadFile(probFile)
		if err != nil {
			return nil, err
		}
		node, err := yamlite.Parse(string(text))
		if err != nil {
			return nil, err
		}
		return specs.ParseProblem(node)
	case k > 0 && c > 0 && h > 0:
		return loopnest.Conv2D(loopnest.Conv2DConfig{
			N: 1, K: k, C: c, H: h / stride, W: h / stride, R: rs, S: rs,
			StrideX: stride, StrideY: stride,
			DilationX: dilation, DilationY: dilation,
		})
	default:
		return nil, fmt.Errorf("specify -layer, -problem, -einsum, or explicit -K/-C/-H")
	}
}
