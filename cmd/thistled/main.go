// Command thistled is the Thistle optimization service: a long-running
// HTTP/JSON daemon that accepts optimize requests (named Table II
// layers, whole networks, Timeloop-style YAML specs, or explicit conv
// shapes), runs them through the staged pipeline, and returns per-layer
// results plus a thistle-manifest-v1 manifest per request — the same
// record format the batch CLIs write, so tlreport show/diff/validate
// (and, with "trace": true, tlreport trace) work on server-side runs
// unchanged.
//
// Unlike the one-shot CLIs, all requests share ONE bounded scheduler
// and ONE content-addressed solve cache: concurrent clients cannot
// oversubscribe the box, and same-signature solves coalesce onto a
// single in-flight computation. When saturated the daemon sheds load
// with 429/503 + Retry-After; on SIGTERM/SIGINT it drains gracefully
// (stops accepting, finishes in-flight requests, flushes manifests).
//
//	thistled -addr localhost:8080 -cache
//	curl -s localhost:8080/v1/optimize -d '{"layer":"resnet18_L12"}'
//
// See docs/API.md for the HTTP surface and docs/OPERATIONS.md for
// running the daemon in production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "thistled:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free port)")
	parallel := flag.Int("parallel", 0, "shared scheduler width: total leaf compute jobs in flight across all requests (default NumCPU)")
	maxConc := flag.Int("max-concurrent", 0, "max requests executing simultaneously (default NumCPU)")
	queue := flag.Int("queue", 0, "max requests waiting for an execution slot; beyond it requests get 429 (default 64; negative: no queue)")
	deadline := flag.Duration("deadline", 2*time.Minute, "default per-request deadline when the request carries no deadline_ms")
	maxDeadline := flag.Duration("max-deadline", 10*time.Minute, "upper clamp on client-requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max time to wait for in-flight requests on SIGTERM before exiting anyway")
	spoolDir := flag.String("spool-dir", "", "persist each request's manifest (and requested events/trace) under this directory")
	cacheOn := flag.Bool("cache", true, "share a content-addressed solve cache across requests")
	cacheDir := flag.String("cache-dir", "", "persist cache entries as JSON records in this directory (implies -cache)")
	cacheSize := flag.Int("cache-size", 0, "max in-memory cache entries (default 1024)")
	verbosity := flag.String("v", "info", "log verbosity: off|warn|info|debug|trace")
	varzInterval := flag.Duration("varz-interval", 5*time.Second, "/varz time-series sampling interval (negative: sample only on /varz reads)")
	varzWindow := flag.Duration("varz-window", 30*time.Minute, "/varz time-series retention window")
	sloAvail := flag.Float64("slo-availability", 0.99, "availability objective: fraction of admitted requests that must succeed (negative: disable SLO tracking)")
	sloLatObj := flag.Float64("slo-latency-objective", 0.95, "latency objective: fraction of admitted requests that must finish under -slo-latency-target")
	sloLatTarget := flag.Duration("slo-latency-target", 0, "latency target for the latency SLO (0: the -deadline value)")
	accessLog := flag.String("access-log", "", "write JSON access logs to this file ('-': stderr; default off)")
	accessSample := flag.Int("access-log-sample", 1, "keep 1 in N fast successful requests in the access log (non-200 and slow requests always log)")
	accessSlow := flag.Duration("access-log-slow", time.Second, "wall time beyond which a request always logs")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ profiling handlers")
	version := flag.Bool("version", false, "print the tool name and build git revision, then exit")
	flag.Parse()

	if *version {
		fmt.Println(cliutil.VersionString("thistled"))
		return nil
	}
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	lvl, err := obs.ParseLevel(*verbosity)
	if err != nil {
		return err
	}

	o := &obs.Obs{
		Log:     obs.NewLogger(os.Stderr, lvl),
		Metrics: obs.NewRegistry(),
	}
	var sc *core.SolveCache
	if *cacheOn || *cacheDir != "" {
		sc = core.NewSolveCache(cache.Options{Capacity: *cacheSize, Dir: *cacheDir, Obs: o})
	}
	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		accessW = f
	}
	srv := serve.New(serve.Config{
		Parallel:        *parallel,
		MaxConcurrent:   *maxConc,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		SpoolDir:        *spoolDir,
		Cache:           sc,
		Obs:             o,
		SLO: serve.SLOConfig{
			Availability:     *sloAvail,
			LatencyObjective: *sloLatObj,
			LatencyTarget:    *sloLatTarget,
		},
		SampleInterval:  *varzInterval,
		SampleWindow:    *varzWindow,
		AccessLog:       accessW,
		AccessLogSample: *accessSample,
		AccessLogSlow:   *accessSlow,
	})
	defer srv.Close()

	handler := srv.Handler()
	if *pprofOn {
		handler = withPprof(handler)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stderr before serving starts so
	// wrappers (scripts/servecheck, port-0 test harnesses) can parse it.
	fmt.Fprintf(os.Stderr, "thistled: serving on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "thistled: draining (in-flight requests finishing)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "thistled:", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "thistled: drained, exiting")
	return nil
}

// withPprof mounts the net/http/pprof handlers under /debug/pprof/ in
// front of the service handler. Registration is explicit (not the
// package's init-time DefaultServeMux side effect) so profiling is
// genuinely opt-in: without -pprof the paths 404 like any other.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}
