// Command tlmapper is the search-based mapper CLI (the reproduction's
// Timeloop-Mapper substitute): a multi-threaded randomized search over
// factorizations and permutations, with per-thread victory condition and
// trial budget, evaluating candidates with the analytical model.
//
// The shared runtime flag block (internal/cliutil) adds observability
// (-v, -trace-out, -metrics, profiles), result caching (-cache,
// -cache-dir; the search seed, thread count, and budgets join the
// cache signature), and durable run records (-events, -manifest).
//
// Examples:
//
//	tlmapper -layer resnet18_L6
//	tlmapper -layer yolo9000_L5 -criterion delay -threads 8 -trials 50000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/mapper"
	"repro/internal/model"
	"repro/internal/obs/events"
	"repro/internal/specs"
	"repro/internal/workloads"
	"repro/internal/yamlite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tlmapper:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		layerName = flag.String("layer", "", "Table II layer name (e.g. resnet18_L6)")
		probFile  = flag.String("problem", "", "problem spec file")
		archFile  = flag.String("arch", "", "architecture spec file (default: Eyeriss)")
		criterion = flag.String("criterion", "energy", "energy | delay | edp")
		threads   = flag.Int("threads", 8, "search threads")
		trials    = flag.Int("trials", 20000, "max candidates per thread (timeout)")
		victory   = flag.Int("victory", 4000, "consecutive non-improving candidates before a thread stops")
		seed      = flag.Int64("seed", 1, "random seed")
		emit      = flag.Bool("specs", false, "print the best mapping as a spec")
		consFile  = flag.String("constraints", "", "constraints spec file (pins factors/permutations)")
	)
	var rf cliutil.Flags
	rf.Register(flag.CommandLine)
	flag.Parse()
	if rf.HandleVersion("tlmapper", os.Stdout) {
		return nil
	}

	rt, err := rf.Setup("tlmapper", os.Args[1:], os.Stderr)
	if err != nil {
		return err
	}
	defer rt.Close()
	o := rt.Obs
	mc := cliutil.OpenCache[*mapper.Result](rt, "mapper")

	var prob *loopnest.Problem
	switch {
	case *layerName != "":
		l, ok := workloads.ByName(*layerName)
		if !ok {
			return fmt.Errorf("unknown layer %q", *layerName)
		}
		var err error
		prob, err = l.Problem()
		if err != nil {
			return err
		}
	case *probFile != "":
		text, err := os.ReadFile(*probFile)
		if err != nil {
			return err
		}
		node, err := yamlite.Parse(string(text))
		if err != nil {
			return err
		}
		prob, err = specs.ParseProblem(node)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("specify -layer or -problem")
	}

	a := arch.Eyeriss()
	if *archFile != "" {
		text, err := os.ReadFile(*archFile)
		if err != nil {
			return err
		}
		node, err := yamlite.Parse(string(text))
		if err != nil {
			return err
		}
		a, err = specs.ParseArch(node, arch.Tech45nm())
		if err != nil {
			return err
		}
	}

	opts := mapper.Options{Threads: *threads, MaxTrials: *trials, Victory: *victory, Seed: *seed, Obs: o}
	var consText string
	if *consFile != "" {
		text, err := os.ReadFile(*consFile)
		if err != nil {
			return err
		}
		consText = string(text)
		node, err := yamlite.Parse(string(text))
		if err != nil {
			return err
		}
		nest, err := dataflow.StandardNest(prob, dataflow.StandardOptions{})
		if err != nil {
			return err
		}
		cons, err := specs.ParseConstraints(node, nest)
		if err != nil {
			return err
		}
		opts.Constraints = cons
	}
	switch *criterion {
	case "energy":
		opts.Criterion = model.MinEnergy
	case "delay":
		opts.Criterion = model.MinDelay
	case "edp":
		opts.Criterion = model.MinEDP
	default:
		return fmt.Errorf("unknown criterion %q", *criterion)
	}

	// The randomized search is fully determined by (problem, arch,
	// criterion, budgets, seed, constraints), so those all feed the
	// cache signature — unlike core's cache, thread count matters here
	// because each thread owns a seeded RNG stream.
	sig := cache.Key{
		Component: "mapper",
		Problem:   prob,
		Arch:      &a,
		Criterion: opts.Criterion,
		Params: []cache.Param{
			cache.ParamInt("threads", int64(*threads)),
			cache.ParamInt("trials", int64(*trials)),
			cache.ParamInt("victory", int64(*victory)),
			cache.ParamInt("seed", *seed),
			cache.ParamString("constraints", consText),
		},
	}.Signature()
	res, hit, err := mc.Do(sig, func() (*mapper.Result, error) {
		return mapper.Search(prob, &a, opts)
	})
	if err != nil {
		return err
	}
	cached := ""
	if hit {
		cached = " (cached)"
	}
	if o.EventsEnabled() {
		rep := res.Report
		o.Emit(events.EvMapperEnd, map[string]any{
			"problem":        prob.Name,
			"trials":         res.Trials,
			"valid":          res.Valid,
			"energy_pj":      rep.Energy,
			"cycles":         rep.Cycles,
			"edp":            rep.Energy * rep.Cycles,
			"energy_per_mac": rep.EnergyPerMAC,
			"ipc":            rep.IPC,
			"from_cache":     hit,
		})
	}
	fmt.Printf("problem:      %s (%d MACs)\n", prob.Name, res.Report.Ops)
	fmt.Printf("architecture: %s\n", a.String())
	fmt.Printf("trials:       %d total, %d valid%s\n", res.Trials, res.Valid, cached)
	fmt.Printf("best energy:  %.3f pJ/MAC (%.4g pJ)\n", res.Report.EnergyPerMAC, res.Report.Energy)
	fmt.Printf("best delay:   %.4g cycles (IPC %.2f, %d PEs)\n", res.Report.Cycles, res.Report.IPC, res.Report.PEsUsed)

	if *emit {
		nest, err := dataflow.StandardNest(prob, dataflow.StandardOptions{})
		if err != nil {
			return err
		}
		node, err := specs.FromMapping(nest, res.Mapping)
		if err != nil {
			return err
		}
		fmt.Println("--- mapping ---")
		fmt.Print(yamlite.Encode(node))
	}
	if rt.ShowCacheStats() {
		mc.WriteStats(os.Stdout)
	}
	return rt.Finish(os.Stdout, mc.Stats())
}
