// Command tlmon is a terminal dashboard for a running thistled: it
// polls the daemon's /varz time-series endpoint and renders live QPS,
// latency quantiles, queue depth, cache hit rate, and SLO burn state as
// a compact text frame with unicode sparklines. It is a pure HTTP
// client — no server internals are linked in — so it can watch a
// daemon on another host.
//
//	tlmon -addr localhost:8080              # live, refreshed every 2s
//	tlmon -addr localhost:8080 -once        # one frame to stdout, then exit
//
// -once is the scripting mode: scripts/servecheck uses it as a
// deployment probe (exit 0 means the daemon answered with a valid
// thistle-timeseries-v1 snapshot).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/obs/timeseries"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tlmon:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("tlmon", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "thistled address (host:port or full http URL)")
	interval := fs.Duration("interval", 2*time.Second, "refresh cadence in live mode")
	once := fs.Bool("once", false, "print one frame and exit (for scripts)")
	width := fs.Int("width", 30, "sparkline width in characters")
	version := fs.Bool("version", false, "print the tool name and build git revision, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, cliutil.VersionString("tlmon"))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	if *once {
		v, err := fetchVarz(client, base)
		if err != nil {
			return err
		}
		renderFrame(out, base, v, *width)
		return nil
	}

	// Live mode: redraw on a ticker until interrupted. The clear-screen
	// escape keeps the frame anchored without taking over the terminal
	// (no raw mode, no alternate screen — scrollback survives).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		v, err := fetchVarz(client, base)
		fmt.Fprint(out, "\x1b[H\x1b[2J")
		if err != nil {
			fmt.Fprintf(out, "tlmon: %v (retrying every %s)\n", err, *interval)
		} else {
			renderFrame(out, base, v, *width)
		}
		select {
		case <-sig:
			fmt.Fprintln(out)
			return nil
		case <-t.C:
		}
	}
}

// sloStatus mirrors the serve.SLOStatus JSON embedded in /varz. tlmon
// decodes it locally instead of importing the server package: the
// dashboard is a network client, and the wire format — not the Go
// type — is the contract.
type sloStatus struct {
	SLO             string  `json:"slo"`
	Objective       float64 `json:"objective"`
	TargetMS        int64   `json:"target_ms"`
	Burn5m          float64 `json:"burn_5m"`
	Burn1h          float64 `json:"burn_1h"`
	BudgetRemaining float64 `json:"budget_remaining"`
	State           string  `json:"state"`
	Good            int64   `json:"good"`
	Bad             int64   `json:"bad"`
}

// varzPayload is the /varz body: a timeseries snapshot plus the SLO block.
type varzPayload struct {
	timeseries.Snapshot
	SLO []sloStatus `json:"slo"`
}

func fetchVarz(client *http.Client, base string) (*varzPayload, error) {
	resp, err := client.Get(base + "/varz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/varz: %s", base, resp.Status)
	}
	var v varzPayload
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("decode /varz: %w", err)
	}
	if v.Schema != timeseries.SchemaVersion {
		return nil, fmt.Errorf("unexpected /varz schema %q (want %q)", v.Schema, timeseries.SchemaVersion)
	}
	return &v, nil
}

func (v *varzPayload) series(name string) *timeseries.Series {
	for i := range v.Series {
		if v.Series[i].Name == name {
			return &v.Series[i]
		}
	}
	return nil
}

// rates extracts a counter series' per-second rates, oldest first.
func (v *varzPayload) rates(name string) []float64 {
	s := v.series(name)
	if s == nil {
		return nil
	}
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.Rate
	}
	return out
}

// values extracts a series' sampled values, oldest first.
func (v *varzPayload) values(name string) []float64 {
	s := v.series(name)
	if s == nil {
		return nil
	}
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.V
	}
	return out
}

func lastOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)-1]
}

func maxOf(vals []float64) float64 {
	m := 0.0
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// renderFrame writes one dashboard frame. Every line is plain text —
// the only terminal feature used is the block-character sparkline — so
// -once output pastes cleanly into logs and chat.
func renderFrame(w io.Writer, base string, v *varzPayload, width int) {
	sampled := time.UnixMilli(v.NowUnixMS).Format("15:04:05")
	fmt.Fprintf(w, "tlmon — thistled @ %s  (sampled %s, interval %s, %d rounds)\n\n",
		base, sampled, time.Duration(v.IntervalMS)*time.Millisecond, v.Rounds)

	qps := v.rates("serve.requests")
	fmt.Fprintf(w, "qps      %8.1f  %s  peak %.1f\n",
		lastOf(qps), timeseries.Spark(timeseries.Tail(qps, width)), maxOf(qps))

	p50 := v.values("serve.request.latency.p50_ms")
	p95 := v.values("serve.request.latency.p95_ms")
	p99 := v.values("serve.request.latency.p99_ms")
	fmt.Fprintf(w, "latency  p50 %s  p95 %s  p99 %s  %s\n",
		fmtMS(lastOf(p50)), fmtMS(lastOf(p95)), fmtMS(lastOf(p99)),
		timeseries.Spark(timeseries.Tail(p95, width)))

	queue := v.values("serve.queue_depth")
	flight := v.values("serve.in_flight")
	fmt.Fprintf(w, "queue    %8.0f  %s  in-flight %.0f\n",
		lastOf(queue), timeseries.Spark(timeseries.Tail(queue, width)), lastOf(flight))

	hits, misses := v.rates("cache.hit"), v.rates("cache.miss")
	if hits == nil && misses == nil {
		fmt.Fprintf(w, "cache         off\n")
	} else {
		h, m := lastOf(hits), lastOf(misses)
		pct := 0.0
		if h+m > 0 {
			pct = 100 * h / (h + m)
		}
		fmt.Fprintf(w, "cache    %7.1f%%  hit %.1f/s  miss %.1f/s\n", pct, h, m)
	}

	fmt.Fprintln(w)
	if len(v.SLO) == 0 {
		fmt.Fprintln(w, "slo      off")
		return
	}
	for _, st := range v.SLO {
		target := ""
		if st.TargetMS > 0 {
			target = fmt.Sprintf("  target %s", time.Duration(st.TargetMS)*time.Millisecond)
		}
		fmt.Fprintf(w, "slo %-13s %-6s  burn 5m %.2f / 1h %.2f  budget %3.0f%%%s\n",
			st.SLO, strings.ToUpper(st.State), st.Burn5m, st.Burn1h, 100*st.BudgetRemaining, target)
	}
}

// fmtMS renders a millisecond value at a precision matched to its size.
func fmtMS(ms float64) string {
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.1fs", ms/1000)
	case ms >= 10:
		return fmt.Sprintf("%.0fms", ms)
	default:
		return fmt.Sprintf("%.1fms", ms)
	}
}
