package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeVarz is a minimal but schema-correct /varz body: three sampling
// rounds of a server doing ~12 qps with a cache and both SLOs green.
const fakeVarz = `{
  "schema": "thistle-timeseries-v1",
  "now_unix_ms": 1700000015000,
  "interval_ms": 5000,
  "capacity": 360,
  "rounds": 3,
  "series": [
    {"name": "cache.hit", "kind": "counter", "samples": [
      {"t": 1700000005000, "v": 40}, {"t": 1700000010000, "v": 90, "rate": 10},
      {"t": 1700000015000, "v": 140, "rate": 10}]},
    {"name": "cache.miss", "kind": "counter", "samples": [
      {"t": 1700000005000, "v": 10}, {"t": 1700000010000, "v": 20, "rate": 2},
      {"t": 1700000015000, "v": 30, "rate": 2}]},
    {"name": "serve.in_flight", "kind": "gauge", "samples": [
      {"t": 1700000005000, "v": 1}, {"t": 1700000010000, "v": 2},
      {"t": 1700000015000, "v": 2}]},
    {"name": "serve.queue_depth", "kind": "gauge", "samples": [
      {"t": 1700000005000, "v": 0}, {"t": 1700000010000, "v": 3},
      {"t": 1700000015000, "v": 1}]},
    {"name": "serve.request.latency.p50_ms", "kind": "window", "samples": [
      {"t": 1700000005000, "v": 3.1}, {"t": 1700000010000, "v": 3.4},
      {"t": 1700000015000, "v": 3.2}]},
    {"name": "serve.request.latency.p95_ms", "kind": "window", "samples": [
      {"t": 1700000005000, "v": 9.7}, {"t": 1700000010000, "v": 14.2},
      {"t": 1700000015000, "v": 11.8}]},
    {"name": "serve.request.latency.p99_ms", "kind": "window", "samples": [
      {"t": 1700000005000, "v": 20}, {"t": 1700000010000, "v": 1500},
      {"t": 1700000015000, "v": 25}]},
    {"name": "serve.requests", "kind": "counter", "samples": [
      {"t": 1700000005000, "v": 50}, {"t": 1700000010000, "v": 140, "rate": 18},
      {"t": 1700000015000, "v": 202, "rate": 12.4}]}
  ],
  "slo": [
    {"slo": "availability", "objective": 0.99, "burn_5m": 0.2, "burn_1h": 0.1,
     "budget_remaining": 0.9, "state": "green", "good": 200, "bad": 2},
    {"slo": "latency", "objective": 0.95, "target_ms": 120000, "burn_5m": 16,
     "burn_1h": 0.5, "budget_remaining": 0.5, "state": "yellow", "good": 190, "bad": 12}
  ]
}`

func fakeServer(t *testing.T, body string, status int) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/varz" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(status)
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestOnceRendersDashboard(t *testing.T) {
	srv := fakeServer(t, fakeVarz, http.StatusOK)
	var out strings.Builder
	if err := run(&out, []string{"-addr", srv.URL, "-once"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"qps          12.4",
		"peak 18.0",
		"p50 3.2ms",
		"p95 12ms",
		"p99 25ms",
		"in-flight 2",
		"cache       83.3%", // 10 hit/s vs 2 miss/s
		"slo availability  GREEN",
		"slo latency       YELLOW",
		"burn 5m 16.00 / 1h 0.50",
		"budget  50%",
		"target 2m0s",
		"3 rounds",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q:\n%s", want, got)
		}
	}
	// The qps sparkline must use the block ramp.
	if !strings.ContainsAny(got, "▁▂▃▄▅▆▇█") {
		t.Errorf("frame has no sparkline:\n%s", got)
	}
}

func TestOnceRejectsWrongSchema(t *testing.T) {
	srv := fakeServer(t, `{"schema": "thistle-timeseries-v999"}`, http.StatusOK)
	var out strings.Builder
	err := run(&out, []string{"-addr", srv.URL, "-once"})
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want schema mismatch", err)
	}
}

func TestOnceReportsHTTPError(t *testing.T) {
	srv := fakeServer(t, "boom", http.StatusServiceUnavailable)
	var out strings.Builder
	err := run(&out, []string{"-addr", srv.URL, "-once"})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("err = %v, want 503", err)
	}
}

func TestAddrPrefixing(t *testing.T) {
	srv := fakeServer(t, fakeVarz, http.StatusOK)
	// Strip the scheme: tlmon should add http:// itself.
	hostport := strings.TrimPrefix(srv.URL, "http://")
	var out strings.Builder
	if err := run(&out, []string{"-addr", hostport, "-once"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "qps") {
		t.Fatalf("no frame rendered:\n%s", out.String())
	}
}

func TestRenderFrameHandlesEmptySnapshot(t *testing.T) {
	// A freshly started daemon with no cache and SLOs disabled must not
	// panic or divide by zero.
	v := &varzPayload{}
	v.Schema = "thistle-timeseries-v1"
	var out strings.Builder
	renderFrame(&out, "http://x", v, 30)
	got := out.String()
	if !strings.Contains(got, "cache         off") || !strings.Contains(got, "slo      off") {
		t.Fatalf("empty frame = %q", got)
	}
}
