// Command tlmodel is the accelerator-model CLI (the reproduction's
// Timeloop-model substitute): it evaluates a concrete mapping of a
// problem on an architecture and prints the energy breakdown, delay, and
// capacity checks. Inputs are Timeloop-style YAML specs; a single bundle
// file containing problem, architecture, and mapping sections is also
// accepted.
//
// The shared runtime flag block (internal/cliutil) adds observability
// (-v, -trace-out, -metrics, profiles), report caching keyed by the
// raw spec text (-cache, -cache-dir), and durable run records
// (-events, -manifest).
//
// Examples:
//
//	tlmodel -bundle design.yaml
//	tlmodel -problem prob.yaml -arch arch.yaml -mapping map.yaml
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/dataflow"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/specs"
	"repro/internal/yamlite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tlmodel:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bundle   = flag.String("bundle", "", "single YAML file with problem+architecture+mapping")
		probFile = flag.String("problem", "", "problem spec file")
		archFile = flag.String("arch", "", "architecture spec file")
		mapFile  = flag.String("mapping", "", "mapping spec file")
	)
	var rf cliutil.Flags
	rf.Register(flag.CommandLine)
	flag.Parse()
	if rf.HandleVersion("tlmodel", os.Stdout) {
		return nil
	}

	rt, err := rf.Setup("tlmodel", os.Args[1:], os.Stderr)
	if err != nil {
		return err
	}
	defer rt.Close()
	o := rt.Obs
	rc := cliutil.OpenCache[*model.Report](rt, "model")

	parseSpan := o.StartSpan(nil, "parse-specs")
	var probNode, archNode, mapNode *yamlite.Node
	var probText, archText, mapText string
	if *bundle != "" {
		root, text, err := parseFile(*bundle)
		if err != nil {
			return err
		}
		probNode, archNode, mapNode = root, root, root
		probText, archText, mapText = text, text, text
	} else {
		if *probFile == "" || *archFile == "" || *mapFile == "" {
			return fmt.Errorf("specify -bundle or all of -problem/-arch/-mapping")
		}
		var err error
		if probNode, probText, err = parseFile(*probFile); err != nil {
			return err
		}
		if archNode, archText, err = parseFile(*archFile); err != nil {
			return err
		}
		if mapNode, mapText, err = parseFile(*mapFile); err != nil {
			return err
		}
	}

	prob, err := specs.ParseProblem(probNode)
	if err != nil {
		return fmt.Errorf("problem: %w", err)
	}
	a, err := specs.ParseArch(archNode, arch.Tech45nm())
	if err != nil {
		return fmt.Errorf("architecture: %w", err)
	}
	nest, err := dataflow.StandardNest(prob, dataflow.StandardOptions{})
	if err != nil {
		return err
	}
	m, err := specs.ParseMapping(mapNode, nest)
	if err != nil {
		return fmt.Errorf("mapping: %w", err)
	}
	parseSpan.End()

	evalSpan := o.StartSpan(nil, "evaluate")
	if evalSpan != nil {
		evalSpan.Annotate(obs.String("problem", prob.Name))
	}
	// The report is a pure function of the three specs, so their raw
	// text is the cache key (whitespace-sensitive by design: any edit
	// to the inputs invalidates).
	sig := cache.Key{
		Component: "model",
		Params: []cache.Param{
			cache.ParamString("problem", probText),
			cache.ParamString("arch", archText),
			cache.ParamString("mapping", mapText),
		},
	}.Signature()
	rep, hit, err := rc.Do(sig, func() (*model.Report, error) {
		ev := model.NewEvaluator(nest)
		return ev.Evaluate(&a, m)
	})
	evalSpan.End()
	if err != nil {
		return err
	}
	if hit && o.Enabled(obs.Info) {
		o.Logf(obs.Info, "report served from cache (%s)", sig.Short())
	}
	if o.EventsEnabled() {
		o.Emit(events.EvModelValidate, map[string]any{
			"problem":    prob.Name,
			"valid":      rep.Valid(),
			"violations": len(rep.Violations),
			"energy_pj":  rep.Energy,
			"cycles":     rep.Cycles,
			"edp":        rep.Energy * rep.Cycles,
			"from_cache": hit,
		})
	}
	fmt.Printf("problem:       %s (%d MACs)\n", prob.Name, rep.Ops)
	fmt.Printf("architecture:  %s\n", a.String())
	fmt.Printf("energy:        %.4g pJ (%.3f pJ/MAC)\n", rep.Energy, rep.EnergyPerMAC)
	fmt.Printf("  compute      %.4g pJ\n", rep.Breakdown.Compute)
	fmt.Printf("  regfile      %.4g pJ\n", rep.Breakdown.RegFile)
	fmt.Printf("  sram         %.4g pJ\n", rep.Breakdown.SRAM)
	fmt.Printf("  dram         %.4g pJ\n", rep.Breakdown.DRAM)
	fmt.Printf("delay:         %.4g cycles (IPC %.2f)\n", rep.Cycles, rep.IPC)
	fmt.Printf("PEs used:      %d (%.0f%% utilization)\n", rep.PEsUsed, 100*rep.Utilization)
	fmt.Printf("traffic:       %.4g words S<->R, %.4g words D<->S\n", rep.TrafficSR, rep.TrafficDS)
	fmt.Printf("footprints:    %.0f register words/PE, %.0f SRAM words\n", rep.RegFootprint, rep.SRAMFootprint)
	if rt.ShowCacheStats() {
		rc.WriteStats(os.Stdout)
	}
	if rep.Valid() {
		fmt.Println("constraints:   ok")
		return rt.Finish(os.Stdout, rc.Stats())
	}
	fmt.Println("constraints:   VIOLATED")
	for _, v := range rep.Violations {
		fmt.Printf("  - %s\n", v)
	}
	// Violations exit non-zero, but the run record still completes: a
	// failed validation is exactly what the event stream should capture.
	if err := rt.Finish(os.Stdout, rc.Stats()); err != nil {
		fmt.Fprintln(os.Stderr, "tlmodel:", err)
	}
	os.Exit(2)
	return nil
}

func parseFile(path string) (*yamlite.Node, string, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	node, err := yamlite.Parse(string(text))
	return node, string(text), err
}
