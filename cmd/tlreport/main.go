// Command tlreport works with the run records the other CLIs write via
// -events/-manifest: it renders manifests as aggregate per-layer tables,
// diffs two runs against configurable regression tolerances (exiting
// non-zero when EDP, energy, delay, or wall time regressed — the CI
// gate), and validates event streams and manifests against their
// schemas.
//
// Examples:
//
//	tlreport show run.manifest.json
//	tlreport show baseline.json candidate.json
//	tlreport diff baseline.json candidate.json
//	tlreport diff -edp-tol 0.05 -wall-tol 1.0 baseline.json candidate.json
//	tlreport validate run.events.jsonl
//	tlreport validate -manifest run.manifest.json run.events.jsonl
//	tlreport trace run.trace.json
//	tlreport bench BENCH_20260805.json BENCH_20260808.json
//
// Exit codes: 0 success, 1 usage or unreadable input, 2 regressions
// found (diff) or schema validation failed (validate, trace).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/obs/events"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage(w *os.File) {
	fmt.Fprintln(w, `usage: tlreport <command> [flags] <files...>

commands:
  show      render one or more manifests as a per-layer table
  diff      compare two manifests and flag regressions (exit 2)
  validate  schema-check an event stream (and optionally a manifest)
  trace     analyze a -trace-out Chrome trace: critical path, self-time,
            scheduler queue-wait attribution (exit 2 on invalid trace)
  bench     compare BENCH_<date>.json trajectory points and flag
            benchmark regressions (exit 2)

run 'tlreport <command> -h' for command flags`)
}

func run(args []string) int {
	if len(args) == 0 {
		usage(os.Stderr)
		return 1
	}
	switch args[0] {
	case "show":
		return runShow(args[1:])
	case "diff":
		return runDiff(args[1:])
	case "validate":
		return runValidate(args[1:])
	case "trace":
		return runTrace(args[1:])
	case "bench":
		return runBench(args[1:])
	case "-version", "--version", "version":
		fmt.Println(cliutil.VersionString("tlreport"))
		return 0
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "tlreport: unknown command %q\n", args[0])
		usage(os.Stderr)
		return 1
	}
}

// runShow renders manifests as one aligned table (columns per run).
func runShow(args []string) int {
	fs := flag.NewFlagSet("tlreport show", flag.ExitOnError)
	_ = fs.Parse(args) // ExitOnError: Parse terminates the process on bad flags
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tlreport show: at least one manifest path required")
		return 1
	}
	ms, err := events.LoadManifests(fs.Args(), os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlreport show:", err)
		return 1
	}
	if err := events.WriteTable(os.Stdout, ms); err != nil {
		fmt.Fprintln(os.Stderr, "tlreport show:", err)
		return 1
	}
	return 0
}

// runDiff compares exactly two manifests: old (baseline) then new.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("tlreport diff", flag.ExitOnError)
	var opts events.DiffOptions
	fs.Float64Var(&opts.EDPTol, "edp-tol", 0, "tolerated fractional EDP growth (default 0.02)")
	fs.Float64Var(&opts.EnergyTol, "energy-tol", 0, "tolerated fractional energy growth (default 0.02)")
	fs.Float64Var(&opts.DelayTol, "delay-tol", 0, "tolerated fractional delay growth (default 0.02)")
	fs.Float64Var(&opts.WallTol, "wall-tol", 0, "tolerated fractional wall-time growth (default 0.50)")
	_ = fs.Parse(args) // ExitOnError: Parse terminates the process on bad flags
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "tlreport diff: exactly two manifest paths required (old new)")
		return 1
	}
	oldM, err := events.LoadManifest(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlreport diff:", err)
		return 1
	}
	newM, err := events.LoadManifest(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlreport diff:", err)
		return 1
	}
	fmt.Printf("diff %s (%s) -> %s (%s)\n", oldM.RunID, oldM.Tool, newM.RunID, newM.Tool)
	d := events.Diff(oldM, newM, opts)
	if err := d.WriteDiff(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tlreport diff:", err)
		return 1
	}
	if d.HasRegressions() {
		return 2
	}
	return 0
}

// runValidate schema-checks an event stream; -manifest adds a manifest
// load check against the same run.
func runValidate(args []string) int {
	fs := flag.NewFlagSet("tlreport validate", flag.ExitOnError)
	manPath := fs.String("manifest", "", "also load and schema-check this manifest")
	_ = fs.Parse(args) // ExitOnError: Parse terminates the process on bad flags
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "tlreport validate: exactly one event-stream path required")
		return 1
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlreport validate:", err)
		return 1
	}
	defer f.Close()
	sum, err := events.Validate(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlreport validate:", err)
		return 2
	}
	for _, w := range sum.Warnings {
		fmt.Fprintln(os.Stderr, "tlreport validate: warning:", w)
	}
	fmt.Printf("stream ok: run %s, %d events", sum.RunID, sum.Events)
	if !sum.Complete {
		fmt.Print(" (incomplete)")
	}
	fmt.Println()
	for _, typ := range []string{
		events.EvRunStart, events.EvLayersTotal, events.EvOptimizeStart,
		events.EvOptimizeEnd, events.EvLayerReused, events.EvSolveEnd,
		events.EvCentering, events.EvMapperEnd, events.EvModelValidate,
		events.EvRunEnd,
	} {
		if n := sum.ByType[typ]; n > 0 {
			fmt.Printf("  %-16s %d\n", typ, n)
		}
	}
	if *manPath != "" {
		m, err := events.LoadManifest(*manPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlreport validate:", err)
			return 2
		}
		fmt.Printf("manifest ok: run %s, %d layers, total EDP %.4g\n",
			m.RunID, m.Totals.Layers, m.Totals.EDP)
		if sum.RunID != "" && m.RunID != sum.RunID {
			fmt.Fprintf(os.Stderr, "tlreport validate: stream run %s does not match manifest run %s\n",
				sum.RunID, m.RunID)
			return 2
		}
	}
	return 0
}
