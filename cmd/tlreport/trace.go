package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/obs/tracefile"
)

// runTrace analyzes a -trace-out Chrome trace file: critical path,
// per-stage self-time, and scheduler queue-wait attribution. Exit 2
// when the file fails trace-schema validation.
func runTrace(args []string) int {
	fs := flag.NewFlagSet("tlreport trace", flag.ExitOnError)
	top := fs.Int("top", 12, "self-time rows to print (0 = all)")
	_ = fs.Parse(args) // ExitOnError: Parse terminates the process on bad flags
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "tlreport trace: exactly one trace file required")
		return 1
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlreport trace:", err)
		return 1
	}
	defer f.Close()
	tr, err := tracefile.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlreport trace:", err)
		return 2
	}

	fmt.Printf("trace %s", orDash(tr.TraceID()))
	if tool := tr.Meta["tool"]; tool != "" {
		fmt.Printf(" (%s)", tool)
	}
	if run := tr.Meta["run_id"]; run != "" {
		fmt.Printf(" run %s", run)
	}
	wall := tr.WallUS()
	fmt.Printf(": %d spans, wall %s\n", len(tr.Spans), us(wall))
	if rev := tr.Meta["git_rev"]; rev != "" {
		fmt.Printf("  built at %s\n", rev)
	}
	if cl := tr.Meta["clamped_spans"]; cl != "" {
		fmt.Printf("  warning: %s span(s) clamped to parent bounds\n", cl)
	}

	fmt.Println("\ncritical path:")
	for i, s := range tr.CriticalPath() {
		for j := 0; j < i; j++ {
			fmt.Print("  ")
		}
		fmt.Printf("%s %s", s.Name, us(s.DurUS))
		if wall > 0 {
			fmt.Printf(" (%.1f%% of wall)", 100*float64(s.DurUS)/float64(wall))
		}
		fmt.Println()
	}

	fmt.Println("\nself-time by span name:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  name\tcount\tself\ttotal")
	selves := tr.SelfTimes()
	if *top > 0 && len(selves) > *top {
		selves = selves[:*top]
	}
	for _, st := range selves {
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\n", st.Name, st.Count, us(st.SelfUS), us(st.TotalUS))
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tlreport trace:", err)
		return 1
	}

	waits := tr.QueueWaits()
	if len(waits) == 0 {
		fmt.Println("\nscheduler queue wait: none recorded (no contended acquires)")
		return 0
	}
	var totalWait int64
	var n int
	for _, w := range waits {
		totalWait += w.TotalUS
		n += w.Count
	}
	fmt.Printf("\nscheduler queue wait: %d blocking acquire(s), %s total", n, us(totalWait))
	if wall > 0 {
		fmt.Printf(" (%.1f%% of wall)", 100*float64(totalWait)/float64(wall))
	}
	fmt.Println()
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  under\tcount\ttotal\tmax")
	for _, w := range waits {
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\n", w.Under, w.Count, us(w.TotalUS), us(w.MaxUS))
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tlreport trace:", err)
		return 1
	}
	return 0
}

// us renders a microsecond quantity as a rounded duration.
func us(v int64) string {
	return (time.Duration(v) * time.Microsecond).Round(time.Microsecond).String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
