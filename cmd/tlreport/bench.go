package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/benchfmt"
)

// runBench compares two or more BENCH_<date>.json trajectory points
// (oldest first) pairwise in sequence, printing per-benchmark deltas
// for each step and exiting 2 when the overall first→last movement
// regresses beyond tolerance. It is how the repo's benchmark trajectory
// is audited: `tlreport bench BENCH_20260805.json BENCH_20260808.json`.
func runBench(args []string) int {
	fs := flag.NewFlagSet("tlreport bench", flag.ExitOnError)
	var opts benchfmt.CompareOptions
	fs.Float64Var(&opts.NSTol, "ns-tol", 0, "tolerated fractional ns/op growth (default 0.25; negative disables)")
	fs.Float64Var(&opts.AllocTol, "allocs-tol", 0, "tolerated fractional allocs/op growth (default 0.05; negative disables)")
	fs.Float64Var(&opts.BytesTol, "bytes-tol", 0, "tolerated fractional B/op growth (default 0.10; negative disables)")
	_ = fs.Parse(args) // ExitOnError: Parse terminates the process on bad flags
	if fs.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "tlreport bench: at least two trajectory files required (oldest first)")
		return 1
	}
	points := make([]*benchfmt.Point, fs.NArg())
	for i, path := range fs.Args() {
		p, err := benchfmt.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlreport bench:", err)
			return 1
		}
		points[i] = p
	}

	// Each consecutive pair prints for context; only the first→last
	// movement gates the exit code, so a regression recovered mid-
	// trajectory does not fail the audit.
	for i := 1; i < len(points); i++ {
		old, new := points[i-1], points[i]
		fmt.Printf("bench %s -> %s (go %s -> %s)\n", old.Date, new.Date, old.GoVersion, new.GoVersion)
		if err := writeDeltas(os.Stdout, benchfmt.Compare(old, new, opts)); err != nil {
			fmt.Fprintln(os.Stderr, "tlreport bench:", err)
			return 1
		}
	}
	gate := benchfmt.Compare(points[0], points[len(points)-1], opts)
	if len(points) > 2 {
		fmt.Printf("overall %s -> %s\n", points[0].Date, points[len(points)-1].Date)
		if err := writeDeltas(os.Stdout, gate); err != nil {
			fmt.Fprintln(os.Stderr, "tlreport bench:", err)
			return 1
		}
	}
	if benchfmt.HasRegressions(gate) {
		fmt.Println("REGRESSED")
		return 2
	}
	if skipped := benchfmt.CountSkipped(gate); skipped > 0 {
		// A skip is not a pass: say which comparisons never happened.
		fmt.Printf("ok (%d benchmark(s) SKIPPED: missing in %s, not compared)\n",
			skipped, points[len(points)-1].Date)
	} else {
		fmt.Println("ok")
	}
	return 0
}

func writeDeltas(w *os.File, deltas []benchfmt.Delta) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tdim\told\tnew\tdelta\t")
	for _, d := range deltas {
		if d.Skipped {
			fmt.Fprintf(tw, "%s\t—\t\t\tSKIPPED (missing in new)\t\n", d.Name)
			continue
		}
		if d.OnlyIn != "" {
			fmt.Fprintf(tw, "%s\t—\t\t\tonly in %s\t\n", d.Name, d.OnlyIn)
			continue
		}
		mark := ""
		if d.Regressed {
			mark = "REGRESSED"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%+.1f%%\t%s\n",
			d.Name, d.Dim, formatVal(d.Old, d.Dim), formatVal(d.New, d.Dim), d.Frac*100, mark)
	}
	return tw.Flush()
}

// formatVal renders a dimension value compactly: integral counts plain,
// large ns/op values without noise digits.
func formatVal(v float64, dim string) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
