// Benchmarks regenerating the paper's evaluation: one benchmark per
// table and figure (Tables II-III, Figs. 4-8), the Fig. 1/Eq. 1-2 matmul
// sanity series, and ablations for the design choices called out in
// DESIGN.md. Figure benchmarks run the Quick configuration (a
// representative layer subset with reduced mapper budgets) so that
// `go test -bench=.` finishes in minutes; cmd/experiments runs the full
// 23-layer sweeps. Reported custom metrics carry the headline numbers
// (pJ/MAC, IPC, ratios) so the paper's shapes are visible straight from
// the benchmark output.
package repro

import (
	"context"
	"io"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/experiments"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workloads"
)

func quickCfg(seed int64) experiments.Config {
	all := workloads.All()
	return experiments.Config{
		Quick:  true,
		Layers: []workloads.Layer{all[5], all[14]},
		Seed:   seed,
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BenchmarkTable2Workloads regenerates Table II.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.Table2(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(e.Labels) != 23 {
			b.Fatalf("labels = %d", len(e.Labels))
		}
	}
}

// BenchmarkTable3Params regenerates Table III.
func BenchmarkTable3Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4EnergyEyeriss regenerates the Fig. 4 comparison (energy,
// Mapper vs Thistle on Eyeriss). Expected shape: both in the 20-30
// pJ/MAC band, energy_up ≥ ~1.
func BenchmarkFig4EnergyEyeriss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.Fig4(quickCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(e.Series[0].Values), "thistle_pJ/MAC")
		b.ReportMetric(mean(e.Series[1].Values), "mapper_pJ/MAC")
		b.ReportMetric(mean(e.Series[2].Values), "energy_up")
	}
}

// BenchmarkFig5EnergyCodesign regenerates the Fig. 5 comparison (energy,
// Eyeriss vs layer-wise co-design at equal area). Expected shape:
// co-design reaches ~5 pJ/MAC (< 10 for all layers).
func BenchmarkFig5EnergyCodesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.Fig5(quickCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(e.Series[0].Values), "eyeriss_pJ/MAC")
		b.ReportMetric(mean(e.Series[1].Values), "codesign_pJ/MAC")
	}
}

// BenchmarkFig6SingleArch regenerates the Fig. 6 study (energy with a
// single shared architecture chosen from the energy-dominant layer).
func BenchmarkFig6SingleArch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.Fig6(quickCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(e.Series[0].Values), "eyeriss_pJ/MAC")
		b.ReportMetric(mean(e.Series[1].Values), "layerwise_pJ/MAC")
		b.ReportMetric(mean(e.Series[2].Values), "single_pJ/MAC")
	}
}

// BenchmarkFig7ThroughputEyeriss regenerates the Fig. 7 comparison
// (IPC, Mapper vs Thistle on Eyeriss; theoretical max 168).
func BenchmarkFig7ThroughputEyeriss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.Fig7(quickCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(e.Series[0].Values), "thistle_IPC")
		b.ReportMetric(mean(e.Series[1].Values), "mapper_IPC")
		b.ReportMetric(mean(e.Series[2].Values), "speedup")
	}
}

// BenchmarkFig8DelayCodesign regenerates the Fig. 8 study (IPC with
// layer-wise co-design and a single shared architecture from the
// delay-dominant layer). Expected shape: layer-wise IPC far above
// Eyeriss.
func BenchmarkFig8DelayCodesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.Fig8(quickCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(e.Series[0].Values), "eyeriss_IPC")
		b.ReportMetric(mean(e.Series[1].Values), "layerwise_IPC")
		b.ReportMetric(mean(e.Series[2].Values), "single_IPC")
	}
}

// BenchmarkMatmulVolumes exercises the Eq. 1/Eq. 2 closed-form volume
// construction (Fig. 1's running example) end to end: symbolic
// Algorithm 1 plus exact evaluation.
func BenchmarkMatmulVolumes(b *testing.B) {
	p := loopnest.MatMul(1024, 1024, 1024)
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		b.Fatal(err)
	}
	trips := [][]int64{
		{8, 8, 8}, {4, 4, 16}, {4, 4, 1}, {8, 8, 8},
	}
	x := n.Assignment(n.Vars.Len(), trips)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := n.ComputeVolumes(dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}))
		if err != nil {
			b.Fatal(err)
		}
		if v.EvalTraffic(1, x) <= 0 {
			b.Fatal("bad volume")
		}
	}
}

// BenchmarkAblationRelaxation quantifies the posynomial relaxation
// (dropping the −1 constants of convolution extents) against exact
// integer evaluation on a 3×3 conv layer: the reported ratio is
// relaxed/exact SRAM-boundary traffic.
func BenchmarkAblationRelaxation(b *testing.B) {
	l, _ := workloads.ByName("resnet18_L6")
	p, err := l.Problem()
	if err != nil {
		b.Fatal(err)
	}
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		b.Fatal(err)
	}
	perm := n.Levels[dataflow.StandardLevelSRAM].Active
	v, err := n.ComputeVolumes(dataflow.StandardPerms(
		n.Levels[dataflow.StandardLevelL1].Active, perm))
	if err != nil {
		b.Fatal(err)
	}
	trips := make([][]int64, 4)
	for li := range trips {
		trips[li] = make([]int64, len(p.Iters))
		for it := range trips[li] {
			trips[li][it] = 1
		}
	}
	// A plausible mid-size tiling: k: 2·2·4·4, c: 2·2·4·4, h/w: 2·1·2·7.
	kIdx, cIdx := loopnest.ConvK, loopnest.ConvC
	hIdx, wIdx := loopnest.ConvH, loopnest.ConvW
	rIdx, sIdx := loopnest.ConvR, loopnest.ConvS
	for _, it := range []int{kIdx, cIdx} {
		trips[0][it], trips[1][it], trips[2][it], trips[3][it] = 2, 2, 4, 4
	}
	for _, it := range []int{hIdx, wIdx} {
		trips[0][it], trips[1][it], trips[2][it], trips[3][it] = 2, 1, 2, 7
	}
	trips[0][rIdx], trips[0][sIdx] = 3, 3
	x := n.Assignment(n.Vars.Len(), trips)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		exact := v.SumTraffic(0, false).Eval(x)
		relaxed := v.SumTraffic(0, true).Eval(x)
		ratio = relaxed / exact
	}
	b.ReportMetric(ratio, "relaxed/exact")
}

// BenchmarkAblationPruning compares the permutation-class count with and
// without hoist-prefix/symmetry pruning, and the end-to-end optimize
// time in raw-enumeration mode.
func BenchmarkAblationPruning(b *testing.B) {
	l, _ := workloads.ByName("resnet18_L9")
	p, err := l.Problem()
	if err != nil {
		b.Fatal(err)
	}
	a := arch.Eyeriss()
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(p, core.Options{
				Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.PairsSolved), "GPs")
			b.ReportMetric(res.Best.Report.EnergyPerMAC, "pJ/MAC")
		}
	})
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(p, core.Options{
				Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a,
				DisablePruning: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.PairsSolved), "GPs")
			b.ReportMetric(res.Best.Report.EnergyPerMAC, "pJ/MAC")
		}
	})
}

// BenchmarkAblationIntegerize sweeps the paper's n (divisor candidates
// per tile variable) and reports the achieved energy, showing the
// quality/cost tradeoff of the integerization width.
func BenchmarkAblationIntegerize(b *testing.B) {
	l, _ := workloads.ByName("yolo9000_L5")
	p, err := l.Problem()
	if err != nil {
		b.Fatal(err)
	}
	a := arch.Eyeriss()
	for _, n := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "n1", 2: "n2", 3: "n3"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Optimize(p, core.Options{
					Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a, NDiv: n,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Best.Report.EnergyPerMAC, "pJ/MAC")
				b.ReportMetric(float64(res.Stats.Candidates), "candidates")
			}
		})
	}
}

// BenchmarkAblationGridSearch contrasts single-shot co-design against
// the grid search prior work uses: dataflow optimization at each point
// of a (P, R, S) grid under the same area budget.
func BenchmarkAblationGridSearch(b *testing.B) {
	l, _ := workloads.ByName("resnet18_L6")
	p, err := l.Problem()
	if err != nil {
		b.Fatal(err)
	}
	budget := arch.EyerissAreaBudget()
	b.Run("singleshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(p, core.Options{
				Criterion: model.MinEnergy, Mode: core.CoDesign, AreaBudget: budget,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Best.Report.EnergyPerMAC, "pJ/MAC")
			b.ReportMetric(1, "arch_points")
		}
	})
	b.Run("grid", func(b *testing.B) {
		regs := []int64{16, 64, 256}
		srams := []int64{16384, 65536, 262144}
		for i := 0; i < b.N; i++ {
			points := 0
			best := 0.0
			for _, r := range regs {
				for _, s := range srams {
					// Spend the leftover area on PEs.
					tech := arch.Tech45nm()
					rem := budget - tech.AreaSRAMWord*float64(s)
					pe := int64(rem / (tech.AreaRegister*float64(r) + tech.AreaMAC))
					if pe < 1 {
						continue
					}
					a := arch.Arch{Name: "grid", PEs: pe, Regs: r, SRAM: s, Tech: tech}
					points++
					res, err := core.Optimize(p, core.Options{
						Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a,
					})
					if err != nil {
						continue
					}
					if best == 0 || res.Best.Report.EnergyPerMAC < best {
						best = res.Best.Report.EnergyPerMAC
					}
				}
			}
			b.ReportMetric(best, "pJ/MAC")
			b.ReportMetric(float64(points), "arch_points")
		}
	})
}

// BenchmarkExtEDP runs the energy-delay-product extension (objective the
// paper mentions but does not evaluate) on the quick layer subset.
func BenchmarkExtEDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.ExtEDP(quickCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(e.Series[0].Values), "energyDesign_EDP")
		b.ReportMetric(mean(e.Series[2].Values), "edpDesign_EDP")
	}
}

// BenchmarkOptimizeColdCache measures a full dataflow optimization with
// no cache in play — the baseline the warm-cache benchmark is read
// against.
func BenchmarkOptimizeColdCache(b *testing.B) {
	l, _ := workloads.ByName("resnet18_L6")
	p, err := l.Problem()
	if err != nil {
		b.Fatal(err)
	}
	a := arch.Eyeriss()
	opts := core.Options{Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Optimize(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.FreshSolves == 0 {
			b.Fatal("cold run reported no fresh solves")
		}
	}
}

// BenchmarkOptimizeColdPruned isolates the solve-path optimizations
// that BenchmarkOptimizeColdCache now includes by default: "on" runs
// with bound pruning and hybrid warm starts (reporting how many class
// pairs the bound skipped), "off" is the ablation with both disabled —
// every pair formulated and solved from the cold analytic hint. The
// two produce byte-identical designs; the gap is pure solver work.
func BenchmarkOptimizeColdPruned(b *testing.B) {
	l, _ := workloads.ByName("resnet18_L6")
	p, err := l.Problem()
	if err != nil {
		b.Fatal(err)
	}
	a := arch.Eyeriss()
	run := func(b *testing.B, opts core.Options) {
		pruned := 0
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(p, opts)
			if err != nil {
				b.Fatal(err)
			}
			pruned += res.Stats.Pruned
		}
		b.ReportMetric(float64(pruned)/float64(b.N), "prunedPairs")
	}
	b.Run("on", func(b *testing.B) {
		run(b, core.Options{Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a})
	})
	b.Run("off", func(b *testing.B) {
		run(b, core.Options{
			Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a,
			DisableBoundPruning: true, DisableWarmStart: true,
		})
	})
}

// BenchmarkOptimizeWarmCache measures the same optimization served from
// a primed solve cache: the signature computation plus a copy, no GPs.
func BenchmarkOptimizeWarmCache(b *testing.B) {
	l, _ := workloads.ByName("resnet18_L6")
	p, err := l.Problem()
	if err != nil {
		b.Fatal(err)
	}
	a := arch.Eyeriss()
	sc := core.NewSolveCache(cache.Options{})
	opts := core.Options{Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a, Cache: sc}
	if _, err := core.Optimize(p, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Optimize(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stats.FromCache {
			b.Fatal("warm run missed the cache")
		}
	}
}

// BenchmarkOptimizeTracing measures the cost of the deep-tracing layer
// on a full cold optimization: "off" is the nil-Obs fast path (every
// hook a nil check), "on" records the complete span forest (stage
// spans, per-pair GP solves with phase-I/II children, sched-wait
// attribution) plus the metrics registry, then serializes the Chrome
// trace. The two ns/op figures bound the tracing overhead; the target
// is nil when off and under ~2% when on.
func BenchmarkOptimizeTracing(b *testing.B) {
	l, _ := workloads.ByName("resnet18_L6")
	p, err := l.Problem()
	if err != nil {
		b.Fatal(err)
	}
	a := arch.Eyeriss()
	opts := core.Options{Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.OptimizeContext(context.Background(), p, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := &obs.Obs{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()}
			ctx := obs.NewContext(context.Background(), o)
			if _, err := core.OptimizeContext(ctx, p, opts); err != nil {
				b.Fatal(err)
			}
			var spans int
			for _, root := range o.Tracer.Tree() {
				spans += countSpans(root)
			}
			if _, err := o.Tracer.WriteChromeTrace(io.Discard, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(spans), "spans")
		}
	})
}

func countSpans(si obs.SpanInfo) int {
	n := 1
	for _, c := range si.Children {
		n += countSpans(c)
	}
	return n
}

// BenchmarkNetworkWarmCache runs a whole-network optimization (the first
// four ResNet-18 layers) cold and then warm through the same cache,
// demonstrating the end-to-end speedup of content-addressed reuse across
// a full `-pipeline`-style sweep.
func BenchmarkNetworkWarmCache(b *testing.B) {
	layers := workloads.ResNet18()[:4]
	a := arch.Eyeriss()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := core.Options{
				Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a,
				Cache: core.NewSolveCache(cache.Options{}),
			}
			if _, err := experiments.OptimizeLayers(context.Background(), layers, opts, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		opts := core.Options{
			Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a,
			Cache: core.NewSolveCache(cache.Options{}),
		}
		if _, err := experiments.OptimizeLayers(context.Background(), layers, opts, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, err := experiments.OptimizeLayers(context.Background(), layers, opts, nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range results {
				if !r.Stats.FromCache {
					b.Fatal("warm network run missed the cache")
				}
			}
		}
	})
}

// BenchmarkNetworkScheduler compares whole-network optimization run
// strictly sequentially (one core.OptimizeContext call per layer, one
// layer at a time) against the scheduled path (OptimizeLayers
// submitting every layer into one shared bounded scheduler sized by
// NumCPU). The layer set is filtered to distinct solve signatures so
// signature dedup cannot shortcut the scheduled side — the comparison
// is pure scheduling. The reported "cores" metric is GOMAXPROCS:
// single-core machines show parity, multi-core machines show the
// cross-layer speedup.
func BenchmarkNetworkScheduler(b *testing.B) {
	all := workloads.ResNet18()
	a := arch.Eyeriss()
	opts := core.Options{Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &a}
	var layers []workloads.Layer
	seen := map[cache.Signature]bool{}
	for _, l := range all {
		p, err := l.Problem()
		if err != nil {
			b.Fatal(err)
		}
		sig := core.SolveSignature(p, opts)
		if !seen[sig] {
			seen[sig] = true
			layers = append(layers, l)
		}
		if len(layers) == 4 {
			break
		}
	}
	cores := float64(runtime.GOMAXPROCS(0))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, l := range layers {
				p, err := l.Problem()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.OptimizeContext(context.Background(), p, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(cores, "cores")
	})
	b.Run("scheduled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.OptimizeLayers(context.Background(), layers, opts, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cores, "cores")
	})
}

// BenchmarkExtNoC runs the inter-PE network-energy extension and reports
// how non-dominant the NoC component stays (the paper's justification
// for omitting it).
func BenchmarkExtNoC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.ExtNoC(quickCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(e.Series[1].Values), "noc_pJ/MAC")
		b.ReportMetric(mean(e.Series[2].Values), "noc_pct")
	}
}
