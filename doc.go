// Package repro reproduces "Comprehensive Accelerator-Dataflow Co-design
// Optimization for Convolutional Neural Networks" (CGO 2022) — the
// Thistle optimizer — as a self-contained Go library.
//
// The implementation lives under internal/ (see ARCHITECTURE.md for the
// full code map and DESIGN.md for the system inventory):
//
//   - expr, linalg, solver, gp: a from-scratch geometric-programming
//     stack (the paper's CVXPY substitute);
//   - loopnest, dataflow: the computation IR and the paper's Algorithm 1
//     for symbolic data-footprint/data-volume construction with
//     permutation-class pruning;
//   - arch, model, mapper: technology models (Table III), the
//     Timeloop-substitute analytical evaluator, and the randomized
//     search baseline;
//   - pipeline: the Thistle engine as explicit stages (Enumerate →
//     Formulate → Solve → Integerize → Validate → Select) sharing one
//     bounded cross-layer scheduler;
//   - core: the public facade over pipeline — Optimize, solve
//     signatures, cache wiring, run events;
//   - cache: the content-addressed solve cache (LRU memory tier,
//     singleflight dedup, optional JSON disk tier);
//   - obs, obs/events, obs/tracefile: spans, metrics, leveled logging,
//     durable run records (events JSONL + manifests), Chrome traces;
//   - serve: the thistled service layer — HTTP API, admission control,
//     shared scheduler/cache wiring, graceful drain;
//   - cliutil: the shared CLI runtime (obs + cache + events flags);
//   - workloads, specs, yamlite, experiments: Table II layers,
//     Timeloop-style spec I/O, and the per-figure experiment runners.
//
// Seven commands sit on top: thistle (optimizer CLI), tlmapper (search
// baseline), tlmodel (evaluator), experiments (tables/figures),
// thistled (the long-running optimization service; see docs/API.md),
// tlreport (run-record tooling), and tlvet (project-specific static
// analysis).
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; cmd/experiments runs them at full scale, and
// serve_bench_test.go pins the service-layer overhead.
package repro
