// Package repro reproduces "Comprehensive Accelerator-Dataflow Co-design
// Optimization for Convolutional Neural Networks" (CGO 2022) — the
// Thistle optimizer — as a self-contained Go library.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// system inventory):
//
//   - expr, linalg, solver, gp: a from-scratch geometric-programming
//     stack (the paper's CVXPY substitute);
//   - loopnest, dataflow: the computation IR and the paper's Algorithm 1
//     for symbolic data-footprint/data-volume construction with
//     permutation-class pruning;
//   - arch, model, mapper: technology models (Table III), the
//     Timeloop-substitute analytical evaluator, and the randomized
//     search baseline;
//   - core: the Thistle flow (formulate → solve → integerize → validate);
//   - workloads, specs, yamlite, experiments: Table II layers,
//     Timeloop-style spec I/O, and the per-figure experiment runners.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; cmd/experiments runs them at full scale.
package repro
