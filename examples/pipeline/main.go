// Single shared accelerator for a whole pipeline: it is impractical to
// fabricate a different chip per CNN stage, so this example reproduces
// the paper's Fig. 6 flow for Yolo-9000: (1) co-design an architecture
// per layer, (2) take the architecture of the layer with the highest
// total energy (the energy-dominant stage), and (3) re-optimize every
// layer's dataflow for that one fixed architecture.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workloads"
)

func main() {
	layers := workloads.Yolo9000()

	// Phase 1: per-layer co-design under the Eyeriss-equal area budget.
	fmt.Println("phase 1: layer-wise architecture-dataflow co-design")
	perLayer := make([]*core.Result, len(layers))
	domIdx, domEnergy := 0, 0.0
	for i, layer := range layers {
		p, err := layer.Problem()
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Optimize(p, core.Options{Criterion: model.MinEnergy, Mode: core.CoDesign})
		if err != nil {
			log.Fatalf("%s: %v", layer.Name(), err)
		}
		perLayer[i] = res
		if res.Best.Report.Energy > domEnergy {
			domIdx, domEnergy = i, res.Best.Report.Energy
		}
		fmt.Printf("  %-14s %7.2f pJ/MAC on %s\n",
			layer.Name(), res.Best.Report.EnergyPerMAC, res.Best.Arch.String())
	}

	// Phase 2: the shared architecture is the one chosen for the
	// energy-dominant stage.
	shared := perLayer[domIdx].Best.Arch
	shared.Name = "shared"
	fmt.Printf("\nphase 2: energy-dominant stage is %s (%.4g pJ); shared architecture %s\n\n",
		layers[domIdx].Name(), domEnergy, shared.String())

	// Phase 3: dataflow-only re-optimization of every layer on the
	// shared architecture.
	fmt.Println("phase 3: dataflow optimization on the shared architecture")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\tlayerwise pJ/MAC\tshared-arch pJ/MAC\tloss")
	for i, layer := range layers {
		p, err := layer.Problem()
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Optimize(p, core.Options{
			Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &shared,
		})
		if err != nil {
			log.Fatalf("%s: %v", layer.Name(), err)
		}
		lw := perLayer[i].Best.Report.EnergyPerMAC
		sh := res.Best.Report.EnergyPerMAC
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%+.1f%%\n", layer.Name(), lw, sh, 100*(sh-lw)/lw)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Reference: what Eyeriss itself achieves on the same stages.
	eyeriss := arch.Eyeriss()
	var eyerissTotal float64
	for _, layer := range layers {
		p, err := layer.Problem()
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Optimize(p, core.Options{
			Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &eyeriss,
		})
		if err != nil {
			log.Fatal(err)
		}
		eyerissTotal += res.Best.Report.Energy
	}
	fmt.Printf("\nfor reference, the fixed Eyeriss design spends %.4g pJ on the pipeline\n", eyerissTotal)
}
