// Deep hierarchy: the paper's Algorithm 1 supports "an arbitrary number
// of tiling levels"; this example exercises that generality on a
// four-level memory (DRAM → shared SRAM → per-PE scratchpad →
// registers) that the paper's three-level evaluation never touches. The
// optimizer solves one geometric program per combination of permutation
// classes across all three copy levels and prints the winning tiling.
//
// Run with:
//
//	go run ./examples/deephierarchy
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/hierarchy"
	"repro/internal/loopnest"
)

func main() {
	// A mid-size ResNet-like stage.
	prob, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "stage", N: 1, K: 64, C: 64, H: 28, W: 28, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %s (%d MACs)\n\n", prob.String(), prob.Ops())

	// Four-level memory: small register files, a 2K-word per-PE
	// scratchpad (absorbing reuse the registers cannot), and the shared
	// SRAM. Energy constants follow the paper's Eq. 4 shapes.
	e := arch.Eyeriss()
	cfg := &hierarchy.Config{
		Buffers: []hierarchy.BufferSpec{
			{Name: "registers", Words: 48, Energy: e.Tech.SigmaR * 48, BW: 4},
			{Name: "spad", Words: 2048, Energy: e.Tech.SigmaS * 45, BW: 8}, // σ_S·√2048
			{Name: "sram", Words: 65536, Energy: e.SRAMEnergy(), BW: 80},
		},
		SpatialAfter: 1, // registers + spad are per-PE
		PEs:          256,
		DRAMEnergy:   e.Tech.EnergyDRAM,
		DRAMBW:       e.Tech.BWDRAM,
		MACEnergy:    e.Tech.EnergyMAC,
	}
	for _, b := range cfg.Buffers {
		fmt.Printf("buffer %-10s %6d words, %.3f pJ/word\n", b.Name, b.Words, b.Energy)
	}
	fmt.Println()

	design, err := hierarchy.OptimizeEnergy(prob, cfg, hierarchy.OptimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized energy: %.3f pJ/MAC (GP bound %.3f) across %d permutation-class combos\n",
		design.Report.EnergyPerMAC, design.GPObjective/float64(prob.Ops()), design.Combos)
	fmt.Printf("delay: %.4g cycles (IPC %.1f with %d PEs)\n\n",
		design.Report.Cycles, design.Report.IPC, design.Report.PEsUsed)

	names := []string{"register tile", "reg-tile loops", "spad-tile loops", "PE grid", "SRAM-tile loops"}
	for li, name := range names {
		fmt.Printf("%-18s", name)
		for it, iter := range prob.Iters {
			trip := int64(1)
			if li < len(design.Trips) && it < len(design.Trips[li]) && design.Trips[li][it] > 0 {
				trip = design.Trips[li][it]
			}
			if trip > 1 {
				fmt.Printf("  %s=%d", iter.Name, trip)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nboundary traffic (words): registers %.3g, spad %.3g, sram %.3g\n",
		design.Report.Traffic[0], design.Report.Traffic[1], design.Report.Traffic[2])
}
