// ResNet-18 layer-wise co-design: for every convolution stage of
// ResNet-18 (the paper's Table II), co-optimize accelerator parameters
// (PEs, registers per PE, SRAM capacity) and dataflow under the
// Eyeriss-equal area budget, and compare the energy against the best
// dataflow on the fixed Eyeriss architecture — the paper's Fig. 5 study
// restricted to one pipeline.
//
// Run with:
//
//	go run ./examples/resnet
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workloads"
)

func main() {
	eyeriss := arch.Eyeriss()
	budget := arch.EyerissAreaBudget()
	fmt.Printf("area budget (Eyeriss-equal): %.0f µm²\n\n", budget)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\tMMACs\teyeriss pJ/MAC\tcodesign pJ/MAC\timprovement\tP\tR\tS(words)")

	var totalEyeriss, totalCoDesign float64
	for _, layer := range workloads.ResNet18() {
		p, err := layer.Problem()
		if err != nil {
			log.Fatal(err)
		}
		fixed, err := core.Optimize(p, core.Options{
			Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &eyeriss,
		})
		if err != nil {
			log.Fatalf("%s fixed: %v", layer.Name(), err)
		}
		cd, err := core.Optimize(p, core.Options{
			Criterion: model.MinEnergy, Mode: core.CoDesign, AreaBudget: budget,
		})
		if err != nil {
			log.Fatalf("%s codesign: %v", layer.Name(), err)
		}
		fe := fixed.Best.Report.EnergyPerMAC
		ce := cd.Best.Report.EnergyPerMAC
		totalEyeriss += fixed.Best.Report.Energy
		totalCoDesign += cd.Best.Report.Energy
		fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.2f\t%.2fx\t%d\t%d\t%d\n",
			layer.Name(), float64(layer.MACs())/1e6, fe, ce, fe/ce,
			cd.Best.Arch.PEs, cd.Best.Arch.Regs, cd.Best.Arch.SRAM)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline total: %.4g pJ (Eyeriss) vs %.4g pJ (layer-wise co-design), %.2fx better\n",
		totalEyeriss, totalCoDesign, totalEyeriss/totalCoDesign)
}
