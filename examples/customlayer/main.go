// Custom layer + spec export: define a convolution layer that is not in
// the paper's Table II through the public problem IR, co-design an
// accelerator for minimum delay, cross-check the optimizer against the
// randomized mapper baseline, and export the resulting Timeloop-style
// specification bundle to disk.
//
// Run with:
//
//	go run ./examples/customlayer [output.yaml]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loopnest"
	"repro/internal/mapper"
	"repro/internal/model"
	"repro/internal/specs"
)

func main() {
	// A depthwise-separable-style pointwise stage with a large channel
	// count and small spatial extent (batch 4 to exercise the batch
	// dimension the Table II workloads leave at 1).
	prob, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "custom_pointwise",
		N:    4, K: 960, C: 160, H: 14, W: 14, R: 1, S: 1,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %s (%d MACs)\n\n", prob.String(), prob.Ops())

	// Co-design for minimum delay under the Eyeriss-equal area budget.
	res, err := core.Optimize(prob, core.Options{
		Criterion: model.MinDelay,
		Mode:      core.CoDesign,
	})
	if err != nil {
		log.Fatal(err)
	}
	best := res.Best
	fmt.Printf("thistle co-design: %s\n", best.Arch.String())
	fmt.Printf("  delay %.4g cycles, IPC %.1f, energy %.2f pJ/MAC\n\n",
		best.Report.Cycles, best.Report.IPC, best.Report.EnergyPerMAC)

	// Baseline: the randomized mapper on the Eyeriss architecture.
	eyeriss := arch.Eyeriss()
	ms, err := mapper.Search(prob, &eyeriss, mapper.Options{
		Criterion: model.MinDelay, Threads: 4, MaxTrials: 8000, Victory: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapper on Eyeriss: IPC %.1f (%.4g cycles) after %d trials\n",
		ms.Report.IPC, ms.Report.Cycles, ms.Trials)
	fmt.Printf("co-design speedup over Eyeriss+mapper: %.1fx\n\n", ms.Report.Cycles/best.Report.Cycles)

	// Export the full design (problem + architecture + mapping) as one
	// Timeloop-style document, consumable by cmd/tlmodel -bundle.
	nest, err := core.NestFor(prob, best)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := specs.DesignBundle(prob, &best.Arch, nest, best.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	out := "custom_design.yaml"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	if err := os.WriteFile(out, []byte(bundle), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (verify with: go run ./cmd/tlmodel -bundle %s)\n", out, out)
}
