// Quickstart: optimize the dataflow of a matrix multiplication on the
// Eyeriss architecture — the paper's Fig. 1 running example — and print
// the resulting multi-level tiling.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loopnest"
	"repro/internal/model"
)

func main() {
	// 1. Define the computation: C[i][j] += A[i][k]·B[k][j], 1024³.
	prob := loopnest.MatMul(1024, 1024, 1024)
	fmt.Printf("problem: %s (%d MACs)\n\n", prob.String(), prob.Ops())

	// 2. Pick the target accelerator: the Eyeriss baseline (168 PEs,
	// 512 registers/PE, 128 KB scratchpad).
	eyeriss := arch.Eyeriss()
	fmt.Printf("architecture: %s\n\n", eyeriss.String())

	// 3. Run Thistle: enumerate pruned tile-loop permutation classes,
	// solve one geometric program per class, integerize, validate with
	// the accelerator model.
	res, err := core.Optimize(prob, core.Options{
		Criterion: model.MinEnergy,
		Mode:      core.FixedArch,
		Arch:      &eyeriss,
	})
	if err != nil {
		log.Fatal(err)
	}
	best := res.Best

	fmt.Printf("search: %d×%d permutation classes → %d geometric programs, %d integer candidates\n\n",
		res.Stats.ClassesL1, res.Stats.ClassesSRAM, res.Stats.PairsSolved, res.Stats.Candidates)

	// 4. Inspect the design point.
	fmt.Printf("energy: %.3f pJ/MAC (relaxed GP bound %.3f)\n",
		best.Report.EnergyPerMAC, best.GPObjective/float64(prob.Ops()))
	fmt.Printf("delay:  %.4g cycles, IPC %.1f with %d PEs\n\n",
		best.Report.Cycles, best.Report.IPC, best.Report.PEsUsed)

	// 5. Print the tiling, level by level (inner to outer).
	nest, err := core.NestFor(prob, best)
	if err != nil {
		log.Fatal(err)
	}
	levelNames := []string{"register tile", "register-tile loops (per PE)", "PE grid (spatial)", "SRAM tiles"}
	for li, name := range levelNames {
		fmt.Printf("%-30s", name)
		for it, iter := range prob.Iters {
			trip := int64(1)
			if li < len(best.Mapping.Trips) && it < len(best.Mapping.Trips[li]) && best.Mapping.Trips[li][it] > 0 {
				trip = best.Mapping.Trips[li][it]
			}
			fmt.Printf("  %s=%d", iter.Name, trip)
		}
		fmt.Println()
	}
	fmt.Printf("\nloop orders (outer→inner): per-PE %v, SRAM %v\n",
		permNames(prob, best.PermL1), permNames(prob, best.PermSRAM))
	_ = nest
}

func permNames(p *loopnest.Problem, perm []int) []string {
	out := make([]string, len(perm))
	for i, it := range perm {
		out[i] = p.Iters[it].Name
	}
	return out
}
