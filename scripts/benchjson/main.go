// Command benchjson converts `go test -bench` output on stdin into a
// JSON trajectory point for performance tracking: one object per
// benchmark with ns/op, B/op, allocs/op, and any custom ReportMetric
// units, stamped with the date, Go version, and GOMAXPROCS suffix.
// scripts/bench.sh pipes the tier-1 cache benchmarks through it to
// produce BENCH_<date>.json at the repo root.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NSPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"b_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Point is the whole trajectory point.
type Point struct {
	Schema     string      `json:"schema"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	point := Point{
		Schema:    "thistle-bench-v1",
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so bench.sh stays readable when piped.
		fmt.Fprintln(os.Stderr, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if ok {
			point.Benchmarks = append(point.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(point.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	out := os.Stdout
	if len(os.Args) > 1 {
		f, err := os.Create(os.Args[1])
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(point)
}

// parseLine decodes one `go test -bench` result line: the name (with a
// -N GOMAXPROCS suffix), the iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	var b Benchmark
	if i := strings.LastIndex(name, "-"); i > 0 {
		if procs, err := strconv.Atoi(name[i+1:]); err == nil {
			b.Procs = procs
			name = name[:i]
		}
	}
	b.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	b.Metrics = map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NSPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
