// Command benchjson converts `go test -bench` output on stdin into a
// JSON trajectory point for performance tracking: one object per
// benchmark with ns/op, B/op, allocs/op, and any custom ReportMetric
// units, stamped with the date, Go version, and GOMAXPROCS suffix.
// scripts/bench.sh pipes the tier-1 cache benchmarks through it to
// produce BENCH_<date>.json at the repo root; `tlreport bench` compares
// the points it writes (both sides of that contract live in
// internal/benchfmt).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchfmt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	point := benchfmt.Point{
		Schema:    benchfmt.Schema,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
	}
	// Echo the raw output to stderr so bench.sh stays readable when piped.
	bs, err := benchfmt.ParseOutput(os.Stdin, os.Stderr)
	if err != nil {
		return err
	}
	point.Benchmarks = bs
	if len(point.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	out := os.Stdout
	if len(os.Args) > 1 {
		f, err := os.Create(os.Args[1])
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(point)
}
