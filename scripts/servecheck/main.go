// Command servecheck is the check.sh e2e harness for thistled: it
// starts the daemon on a random port, POSTs a small optimize request,
// saves the returned manifest (so the caller can tlreport-diff it
// against a CLI run of the same layer), asserts that a repeated request
// is served from the shared cache, verifies the request-ID join (the
// X-Request-ID the client sent must reappear verbatim in the response
// header, the manifest, the Chrome trace, and the access log), probes
// the health and telemetry surface (/metrics, /statusz, /varz), and
// finally SIGTERMs the daemon expecting a clean graceful-drain exit.
//
//	servecheck <thistled-binary> <outdir> [tlmon-binary]
//
// When a tlmon binary is given, it is run with -once against the live
// daemon and its frame must render the qps and slo blocks.
//
// On success the returned manifest is written to
// <outdir>/server.manifest.json and the process exits 0; any protocol,
// determinism, or shutdown violation exits 1 with a diagnostic.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	if len(os.Args) != 3 && len(os.Args) != 4 {
		fmt.Fprintln(os.Stderr, "usage: servecheck <thistled-binary> <outdir> [tlmon-binary]")
		os.Exit(2)
	}
	tlmon := ""
	if len(os.Args) == 4 {
		tlmon = os.Args[3]
	}
	if err := run(os.Args[1], os.Args[2], tlmon); err != nil {
		fmt.Fprintln(os.Stderr, "servecheck:", err)
		os.Exit(1)
	}
}

func run(binary, outdir, tlmon string) error {
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	accessLog := filepath.Join(outdir, "access.log")
	cmd := exec.Command(binary, "-addr", "127.0.0.1:0", "-cache", "-v", "warn",
		"-spool-dir", filepath.Join(outdir, "spool"),
		"-access-log", accessLog)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	// On any failure path, make sure the daemon does not outlive us.
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}()

	// The daemon announces its resolved address on stderr before it
	// starts serving; everything after that line is passed through.
	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "thistled: serving on "); ok {
			base = strings.TrimSpace(addr)
			break
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if base == "" {
		return fmt.Errorf("daemon exited without announcing its address (scan error: %v)", sc.Err())
	}
	go func() { // keep draining stderr so the daemon never blocks on it
		for sc.Scan() {
		}
	}()

	post := func(body, reqID string) (*http.Response, []byte, error) {
		req, err := http.NewRequest("POST", base+"/v1/optimize", strings.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if reqID != "" {
			req.Header.Set("X-Request-ID", reqID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, nil, err
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		return resp, data, err
	}

	// The first request carries a client request ID and asks for a trace,
	// so the ID join (header echo → manifest → trace) can be verified.
	const clientReqID = "servecheck-req-1"
	resp, data, err := post(`{"layer": "resnet18_L12", "trace": true}`, clientReqID)
	if err != nil {
		return fmt.Errorf("POST /v1/optimize: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("optimize status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Request-ID"); got != clientReqID {
		return fmt.Errorf("X-Request-ID echoed as %q, want %q", got, clientReqID)
	}
	var out struct {
		RunID    string            `json:"run_id"`
		Results  []json.RawMessage `json:"results"`
		Manifest json.RawMessage   `json:"manifest"`
		Trace    json.RawMessage   `json:"trace"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return fmt.Errorf("decoding optimize response: %w", err)
	}
	if out.RunID == "" || len(out.Results) != 1 || len(out.Manifest) == 0 {
		return fmt.Errorf("incomplete optimize response: %s", data)
	}
	var manifest struct {
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(out.Manifest, &manifest); err != nil {
		return fmt.Errorf("decoding manifest: %w", err)
	}
	if manifest.RequestID != clientReqID {
		return fmt.Errorf("manifest request_id %q, want %q", manifest.RequestID, clientReqID)
	}
	var trace struct {
		OtherData struct {
			RequestID string `json:"request_id"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(out.Trace, &trace); err != nil {
		return fmt.Errorf("decoding trace: %w", err)
	}
	if trace.OtherData.RequestID != clientReqID {
		return fmt.Errorf("trace otherData.request_id %q, want %q", trace.OtherData.RequestID, clientReqID)
	}
	manPath := filepath.Join(outdir, "server.manifest.json")
	if err := os.WriteFile(manPath, append(out.Manifest, '\n'), 0o644); err != nil {
		return err
	}

	// A repeated request must be a cache hit: fresh_solves drops to 0.
	resp, data, err = post(`{"layer": "resnet18_L12"}`, "")
	if err != nil {
		return fmt.Errorf("second POST /v1/optimize: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("second optimize status %d: %s", resp.StatusCode, data)
	}
	var second struct {
		Results []struct {
			FromCache bool `json:"from_cache"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &second); err != nil {
		return fmt.Errorf("decoding second response: %w", err)
	}
	if len(second.Results) != 1 || !second.Results[0].FromCache {
		return fmt.Errorf("repeated request not served from the shared cache: %s", data)
	}

	// Health and telemetry surface: healthz says ok, metrics exposes the
	// serve.* and SLO families, statusz shows the SLO block, varz serves
	// a schema-tagged time-series snapshot.
	if err := expectGet(base+"/v1/healthz", "ok"); err != nil {
		return err
	}
	if err := expectGet(base+"/metrics", "thistle_serve_requests_total"); err != nil {
		return err
	}
	if err := expectGet(base+"/metrics", "thistle_slo_burn_rate"); err != nil {
		return err
	}
	if err := expectGet(base+"/statusz", "thistled serving"); err != nil {
		return err
	}
	if err := expectGet(base+"/statusz", "slo availability"); err != nil {
		return err
	}
	if err := expectGet(base+"/varz", "thistle-timeseries-v1"); err != nil {
		return err
	}

	// The access log must hold a line for the identified request: the
	// same ID the client sent, joined to the run.
	logData, err := os.ReadFile(accessLog)
	if err != nil {
		return fmt.Errorf("reading access log: %w", err)
	}
	if !strings.Contains(string(logData), clientReqID) {
		return fmt.Errorf("access log %s has no line for request %q:\n%s", accessLog, clientReqID, logData)
	}

	// The dashboard's scripting mode must render a frame off the live
	// daemon: one fetch of /varz, qps and slo blocks present, exit 0.
	if tlmon != "" {
		monOut, err := exec.Command(tlmon, "-addr", base, "-once").CombinedOutput()
		if err != nil {
			return fmt.Errorf("tlmon -once: %w\n%s", err, monOut)
		}
		for _, needle := range []string{"qps", "slo"} {
			if !strings.Contains(string(monOut), needle) {
				return fmt.Errorf("tlmon frame missing %q:\n%s", needle, monOut)
			}
		}
		fmt.Fprintf(os.Stderr, "servecheck: tlmon frame ok\n")
	}

	// Graceful drain: SIGTERM must produce a clean exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon did not exit cleanly on SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	fmt.Println("servecheck: ok (manifest at", manPath+")")
	return nil
}

func expectGet(url, needle string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if !strings.Contains(string(data), needle) {
		return fmt.Errorf("GET %s: response missing %q:\n%s", url, needle, data)
	}
	return nil
}
