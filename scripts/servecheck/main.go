// Command servecheck is the check.sh e2e harness for thistled: it
// starts the daemon on a random port, POSTs a small optimize request,
// saves the returned manifest (so the caller can tlreport-diff it
// against a CLI run of the same layer), asserts that a repeated request
// is served from the shared cache, probes the health surface, and
// finally SIGTERMs the daemon expecting a clean graceful-drain exit.
//
//	servecheck <thistled-binary> <outdir>
//
// On success the returned manifest is written to
// <outdir>/server.manifest.json and the process exits 0; any protocol,
// determinism, or shutdown violation exits 1 with a diagnostic.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: servecheck <thistled-binary> <outdir>")
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Args[2]); err != nil {
		fmt.Fprintln(os.Stderr, "servecheck:", err)
		os.Exit(1)
	}
}

func run(binary, outdir string) error {
	cmd := exec.Command(binary, "-addr", "127.0.0.1:0", "-cache", "-v", "warn",
		"-spool-dir", filepath.Join(outdir, "spool"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	// On any failure path, make sure the daemon does not outlive us.
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}()

	// The daemon announces its resolved address on stderr before it
	// starts serving; everything after that line is passed through.
	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "thistled: serving on "); ok {
			base = strings.TrimSpace(addr)
			break
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if base == "" {
		return fmt.Errorf("daemon exited without announcing its address (scan error: %v)", sc.Err())
	}
	go func() { // keep draining stderr so the daemon never blocks on it
		for sc.Scan() {
		}
	}()

	post := func(body string) (*http.Response, []byte, error) {
		resp, err := http.Post(base+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		return resp, data, err
	}

	const reqBody = `{"layer": "resnet18_L12"}`
	resp, data, err := post(reqBody)
	if err != nil {
		return fmt.Errorf("POST /v1/optimize: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("optimize status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		RunID    string            `json:"run_id"`
		Results  []json.RawMessage `json:"results"`
		Manifest json.RawMessage   `json:"manifest"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return fmt.Errorf("decoding optimize response: %w", err)
	}
	if out.RunID == "" || len(out.Results) != 1 || len(out.Manifest) == 0 {
		return fmt.Errorf("incomplete optimize response: %s", data)
	}
	manPath := filepath.Join(outdir, "server.manifest.json")
	if err := os.WriteFile(manPath, append(out.Manifest, '\n'), 0o644); err != nil {
		return err
	}

	// A repeated request must be a cache hit: fresh_solves drops to 0.
	resp, data, err = post(reqBody)
	if err != nil {
		return fmt.Errorf("second POST /v1/optimize: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("second optimize status %d: %s", resp.StatusCode, data)
	}
	var second struct {
		Results []struct {
			FromCache bool `json:"from_cache"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &second); err != nil {
		return fmt.Errorf("decoding second response: %w", err)
	}
	if len(second.Results) != 1 || !second.Results[0].FromCache {
		return fmt.Errorf("repeated request not served from the shared cache: %s", data)
	}

	// Health surface: healthz says ok, metrics exposes the serve.* family.
	if err := expectGet(base+"/v1/healthz", "ok"); err != nil {
		return err
	}
	if err := expectGet(base+"/metrics", "thistle_serve_requests_total"); err != nil {
		return err
	}
	if err := expectGet(base+"/statusz", "thistled serving"); err != nil {
		return err
	}

	// Graceful drain: SIGTERM must produce a clean exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon did not exit cleanly on SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	fmt.Println("servecheck: ok (manifest at", manPath+")")
	return nil
}

func expectGet(url, needle string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if !strings.Contains(string(data), needle) {
		return fmt.Errorf("GET %s: response missing %q:\n%s", url, needle, data)
	}
	return nil
}
