#!/bin/sh
# check.sh runs the repository's pre-merge gate: gofmt, build, vet, the
# short test suite, and a race-detector pass over the concurrent packages
# (mapper worker pool, core parallel GP loop, solver hooks, obs, cache
# singleflight).
# Equivalent to `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -short ./..."
go test -short ./...

echo "== go test -race (concurrent packages)"
go test -race -timeout 30m ./internal/obs/... ./internal/core/... ./internal/mapper/... ./internal/solver/... ./internal/cache/...

echo "check: ok"
