#!/bin/sh
# check.sh runs the repository's pre-merge gate: build, vet, the short
# test suite, and a race-detector pass over the concurrent packages
# (mapper worker pool, core parallel GP loop, solver hooks, obs).
# Equivalent to `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -short ./..."
go test -short ./...

echo "== go test -race (concurrent packages)"
go test -race -timeout 30m ./internal/obs/... ./internal/core/... ./internal/mapper/... ./internal/solver/...

echo "check: ok"
