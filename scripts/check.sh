#!/bin/sh
# check.sh runs the repository's pre-merge gate: gofmt, build, vet, the
# tlvet static-analysis suite (project-specific invariants: event
# schema conformance, posynomial coefficient positivity, float
# comparison discipline, nil-receiver safety, dropped errors, plus the
# flow-aware wallclock/maprange/lockguard/ctxprop/goscheduler
# analyzers) gated through the committed baseline ledger — a stale
# baseline entry fails the gate just like a fresh finding — a SARIF
# smoke run (tlvet -format sarif validated by scripts/sarifcheck), the
# short test suite, a race-detector pass over the concurrent packages
# (mapper worker pool, the pipeline scheduler and its staged GP flow,
# the experiments layer fan-out, solver hooks, obs, cache
# singleflight, the thistled admission path), and an end-to-end
# run-report gate: a small workload is optimized with
# -events/-manifest/-trace-out, the JSONL stream is validated against
# the schema, a tlreport self-diff must come back regression-free, and
# the Chrome trace file must parse and report a critical path
# (`tlreport trace`). A pruning/warm-start determinism gate runs the
# whole-network fixture with the solve-path optimizations on and off,
# at -parallel 1 and 4, and requires the manifests to agree to 1e-12.
# A final serve gate boots thistled on a random
# port (scripts/servecheck), POSTs the same layer with a client
# request ID, verifies the ID joins the manifest, trace, and access
# log, probes the telemetry surface (/metrics SLO families, /varz,
# a tlmon -once frame), and diffs the server-side manifest against the
# CLI's — the two must agree exactly — before asserting a clean SIGTERM
# drain. Equivalent to `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== tlvet (project-specific static analysis, baseline-gated)"
go run ./cmd/tlvet -baseline .tlvet-baseline.json .

echo "== tlvet SARIF smoke (emit + validate the 2.1.0 shape)"
go run ./cmd/tlvet -format sarif . > "$tmp/tlvet.sarif"
go run ./scripts/sarifcheck "$tmp/tlvet.sarif"

echo "== go test -short ./..."
go test -short ./...

echo "== go test -race (concurrent packages)"
go test -race -timeout 30m ./internal/obs/... ./internal/core/... ./internal/pipeline/... ./internal/mapper/... ./internal/solver/... ./internal/cache/... ./internal/serve/...
# The experiments figure sweeps are too slow under the race detector;
# race-check just the concurrent layer fan-out.
go test -race -timeout 30m -run 'TestOptimizeLayers' ./internal/experiments/

echo "== e2e run-report gate (thistle -events/-manifest + tlreport)"
go build -o "$tmp/thistle" ./cmd/thistle
go build -o "$tmp/tlreport" ./cmd/tlreport
"$tmp/thistle" -layer resnet18_L12 -specs=false \
    -events "$tmp/run.events.jsonl" -manifest "$tmp/run.manifest.json" \
    -trace-out "$tmp/run.trace.json" >/dev/null
"$tmp/tlreport" validate -manifest "$tmp/run.manifest.json" "$tmp/run.events.jsonl"
"$tmp/tlreport" diff -wall-tol 10 "$tmp/run.manifest.json" "$tmp/run.manifest.json"

echo "== e2e trace gate (tlreport trace on the captured Chrome trace)"
"$tmp/tlreport" trace "$tmp/run.trace.json" >/dev/null
# Results must be byte-identical with tracing off: rerun without
# -trace-out and self-diff the two manifests (wall time excluded).
"$tmp/thistle" -layer resnet18_L12 -specs=false \
    -manifest "$tmp/notrace.manifest.json" >/dev/null
"$tmp/tlreport" diff -wall-tol 1e9 "$tmp/run.manifest.json" "$tmp/notrace.manifest.json"

echo "== pruning/warm-start determinism gate (whole network, on vs off, parallel 1 vs 4)"
# Warm starts and bound pruning move solver iterates, never results:
# the whole-network manifests must agree to 1e-12 across scheduler
# widths and with both optimizations disabled.
"$tmp/thistle" -pipeline resnet18 -specs=false -parallel 1 \
    -manifest "$tmp/net.on.p1.manifest.json" >/dev/null
"$tmp/thistle" -pipeline resnet18 -specs=false -parallel 4 \
    -manifest "$tmp/net.on.p4.manifest.json" >/dev/null
"$tmp/thistle" -pipeline resnet18 -specs=false -parallel 4 \
    -no-bound-pruning -no-warm-start \
    -manifest "$tmp/net.off.p4.manifest.json" >/dev/null
"$tmp/tlreport" diff -edp-tol 1e-12 -energy-tol 1e-12 -delay-tol 1e-12 -wall-tol 1e9 \
    "$tmp/net.on.p1.manifest.json" "$tmp/net.on.p4.manifest.json"
"$tmp/tlreport" diff -edp-tol 1e-12 -energy-tol 1e-12 -delay-tol 1e-12 -wall-tol 1e9 \
    "$tmp/net.on.p1.manifest.json" "$tmp/net.off.p4.manifest.json"

echo "== e2e serve gate (thistled vs thistle CLI, telemetry, graceful drain)"
go build -o "$tmp/thistled" ./cmd/thistled
go build -o "$tmp/tlmon" ./cmd/tlmon
go run ./scripts/servecheck "$tmp/thistled" "$tmp" "$tmp/tlmon"
# The server and the CLI optimized the same layer through the same
# pipeline; their per-layer results must agree exactly (wall time is
# the only legitimate difference).
"$tmp/tlreport" diff -edp-tol 1e-12 -energy-tol 1e-12 -delay-tol 1e-12 -wall-tol 1e9 \
    "$tmp/notrace.manifest.json" "$tmp/server.manifest.json"

echo "check: ok"
