#!/bin/sh
# bench.sh runs the tier-1 performance benchmarks (cold/warm single-layer
# optimize, the whole-network warm-cache sweep, the sequential vs
# scheduled whole-network comparison, the tracing-off vs tracing-on
# overhead pair, and the thistled warm-request service overhead) with
# -benchmem and
# records the result as a JSON trajectory point BENCH_<date>.json at the
# repo root, via scripts/benchjson. Successive points form the repo's
# performance history; diff them the same way tlreport diffs manifests.
#
# Usage: scripts/bench.sh [extra go-test args...]
#   scripts/bench.sh              # the tier-1 cache benchmarks
#   scripts/bench.sh -benchtime 5x
set -eu

cd "$(dirname "$0")/.."

# Same-day re-records must not overwrite the earlier point — the whole
# value of the trajectory is the before/after pair — so on collision the
# filename gains a letter suffix (BENCH_<date>b.json, c, ...).
out="BENCH_$(date -u +%Y%m%d).json"
if [ -e "$out" ]; then
    for s in b c d e f g h i j k; do
        cand="BENCH_$(date -u +%Y%m%d)$s.json"
        if [ ! -e "$cand" ]; then
            out="$cand"
            break
        fi
    done
    if [ -e "$out" ]; then
        echo "bench.sh: no free BENCH filename for today" >&2
        exit 1
    fi
fi
pattern='BenchmarkOptimizeColdCache|BenchmarkOptimizeColdPruned|BenchmarkOptimizeWarmCache|BenchmarkNetworkWarmCache|BenchmarkNetworkScheduler|BenchmarkOptimizeTracing|BenchmarkServeWarm'

echo "== go test -bench ($pattern)"
go test -run '^$' -bench "$pattern" -benchmem "$@" . \
    | go run ./scripts/benchjson "$out"

echo "== wrote $out"
