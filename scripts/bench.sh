#!/bin/sh
# bench.sh runs the tier-1 performance benchmarks (cold/warm single-layer
# optimize, the whole-network warm-cache sweep, the sequential vs
# scheduled whole-network comparison, the tracing-off vs tracing-on
# overhead pair, and the thistled warm-request service overhead) with
# -benchmem and
# records the result as a JSON trajectory point BENCH_<date>.json at the
# repo root, via scripts/benchjson. Successive points form the repo's
# performance history; diff them the same way tlreport diffs manifests.
#
# Usage: scripts/bench.sh [extra go-test args...]
#   scripts/bench.sh              # the tier-1 cache benchmarks
#   scripts/bench.sh -benchtime 5x
set -eu

cd "$(dirname "$0")/.."

out="BENCH_$(date -u +%Y%m%d).json"
pattern='BenchmarkOptimizeColdCache|BenchmarkOptimizeWarmCache|BenchmarkNetworkWarmCache|BenchmarkNetworkScheduler|BenchmarkOptimizeTracing|BenchmarkServeWarm'

echo "== go test -bench ($pattern)"
go test -run '^$' -bench "$pattern" -benchmem "$@" . \
    | go run ./scripts/benchjson "$out"

echo "== wrote $out"
