// Command sarifcheck structurally validates a SARIF 2.1.0 log against
// the subset tlvet emits: correct version tag, a tool driver with a
// rule table, a present (possibly empty, never null) results array,
// and per-result rule references, messages, and physical locations
// that a SARIF viewer could actually resolve. check.sh runs it over a
// fresh `tlvet -format sarif` dump as the smoke gate for the format.
//
//	sarifcheck <file.sarif>   ("-" reads stdin)
//
// Exit status is 0 with a one-line summary when the log validates, 1
// with a diagnostic per violation otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// The decode targets mirror internal/analysis's SARIF structs but use
// pointers where the spec distinguishes "absent" from "empty": a null
// results array is a violation the zero value would mask.
type sarifLog struct {
	Schema  string      `json:"$schema"`
	Version string      `json:"version"`
	Runs    *[]sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool      `json:"tool"`
	Results *[]sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string       `json:"name"`
	Rules *[]sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string           `json:"ruleId"`
	RuleIndex *int             `json:"ruleIndex"`
	Level     string           `json:"level"`
	Message   sarifMessage     `json:"message"`
	Locations *[]sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: sarifcheck <file.sarif>")
		os.Exit(1)
	}
	var data []byte
	var err error
	if os.Args[1] == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(os.Args[1])
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sarifcheck: %v\n", err)
		os.Exit(1)
	}

	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		fmt.Fprintf(os.Stderr, "sarifcheck: not valid JSON: %v\n", err)
		os.Exit(1)
	}

	var violations []string
	complain := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	if log.Version != "2.1.0" {
		complain("version is %q, want \"2.1.0\"", log.Version)
	}
	if log.Schema == "" {
		complain("$schema is missing")
	}
	if log.Runs == nil || len(*log.Runs) == 0 {
		complain("runs is missing or empty")
	}

	results, rules := 0, 0
	if log.Runs != nil {
		for ri, run := range *log.Runs {
			if run.Tool.Driver.Name == "" {
				complain("runs[%d]: tool.driver.name is empty", ri)
			}
			ruleIDs := make(map[string]int)
			if run.Tool.Driver.Rules == nil {
				complain("runs[%d]: tool.driver.rules is missing", ri)
			} else {
				rules += len(*run.Tool.Driver.Rules)
				for i, rule := range *run.Tool.Driver.Rules {
					if rule.ID == "" {
						complain("runs[%d]: rules[%d] has an empty id", ri, i)
						continue
					}
					if _, dup := ruleIDs[rule.ID]; dup {
						complain("runs[%d]: duplicate rule id %q", ri, rule.ID)
					}
					ruleIDs[rule.ID] = i
				}
			}
			if run.Results == nil {
				complain("runs[%d]: results is missing or null (an empty run must say [])", ri)
				continue
			}
			results += len(*run.Results)
			for i, r := range *run.Results {
				where := fmt.Sprintf("runs[%d].results[%d]", ri, i)
				if r.RuleID == "" {
					complain("%s: ruleId is empty", where)
				} else if idx, ok := ruleIDs[r.RuleID]; !ok {
					complain("%s: ruleId %q is not in the rule table", where, r.RuleID)
				} else if r.RuleIndex != nil && *r.RuleIndex != idx {
					complain("%s: ruleIndex %d does not resolve to rule %q (at %d)", where, *r.RuleIndex, r.RuleID, idx)
				}
				if r.Message.Text == "" {
					complain("%s: message.text is empty", where)
				}
				if r.Locations == nil || len(*r.Locations) == 0 {
					complain("%s: no locations", where)
					continue
				}
				for j, loc := range *r.Locations {
					uri := loc.PhysicalLocation.ArtifactLocation.URI
					switch {
					case uri == "":
						complain("%s.locations[%d]: uri is empty", where, j)
					case strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\"):
						complain("%s.locations[%d]: uri %q is not root-relative slash-separated", where, j, uri)
					}
					if loc.PhysicalLocation.Region.StartLine < 1 {
						complain("%s.locations[%d]: startLine %d < 1", where, j, loc.PhysicalLocation.Region.StartLine)
					}
				}
			}
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "sarifcheck: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("sarifcheck: ok (%d result(s), %d rule(s))\n", results, rules)
}
