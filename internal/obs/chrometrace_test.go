package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeChrome parses writer output back for structural assertions.
func decodeChrome(t *testing.T, b []byte) ChromeTraceFile {
	t.Helper()
	var f ChromeTraceFile
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, b)
	}
	return f
}

// spanEvents filters the complete ("X") events out of a trace file.
func spanEvents(f ChromeTraceFile) []ChromeEvent {
	var out []ChromeEvent
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			out = append(out, ev)
		}
	}
	return out
}

func TestDeriveTraceID(t *testing.T) {
	a, b := DeriveTraceID("run-1"), DeriveTraceID("run-1")
	if a != b {
		t.Fatalf("same seed, different IDs: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("trace ID %q: want 16 hex digits", a)
	}
	if DeriveTraceID("run-2") == a {
		t.Fatal("different seeds collided")
	}
}

func TestTracerTraceID(t *testing.T) {
	var nilTr *Tracer
	if nilTr.TraceID() != "" {
		t.Fatal("nil tracer should report empty trace ID")
	}
	nilTr.SetTraceID("x") // must not panic

	tr := NewTracer()
	if tr.TraceID() != "" {
		t.Fatal("empty tracer should report empty trace ID")
	}
	tr.SetTraceID("first")
	tr.SetTraceID("second")
	if got := tr.TraceID(); got != "first" {
		t.Fatalf("SetTraceID not first-wins: got %q", got)
	}

	// Unset ID derives deterministically from the first root's start.
	tr2 := NewTracer()
	epoch := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr2.now = func() time.Time { return epoch }
	tr2.StartSpan(nil, "root").End()
	id := tr2.TraceID()
	if id == "" {
		t.Fatal("tracer with spans should derive a trace ID")
	}
	if tr2.TraceID() != id {
		t.Fatal("derived trace ID should be stable")
	}
}

func TestSpanIDsAssigned(t *testing.T) {
	tr := NewTracer()
	a := tr.StartSpan(nil, "a")
	b := tr.StartSpan(a, "b")
	if a.ID() == 0 || b.ID() == 0 || a.ID() == b.ID() {
		t.Fatalf("span IDs not unique/nonzero: a=%d b=%d", a.ID(), b.ID())
	}
	var nilSpan *Span
	if nilSpan.ID() != 0 {
		t.Fatal("nil span should report ID 0")
	}
	b.End()
	a.End()
	tree := tr.Tree()
	if tree[0].ID != a.ID() || tree[0].Children[0].ID != b.ID() {
		t.Fatalf("snapshot IDs differ from live IDs: %+v", tree)
	}
}

// buildForest creates the same span structure either sequentially or
// with `par` concurrent workers attaching children to one parent. The
// constant clock makes timings identical regardless of scheduling, so
// the canonical serialization must be byte-identical.
func buildForest(par int) *Tracer {
	tr := NewTracer()
	epoch := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr.now = func() time.Time { return epoch }
	root := tr.StartSpan(nil, "root")
	const jobs = 24
	if par <= 1 {
		for i := 0; i < jobs; i++ {
			s := tr.StartSpan(root, "job", Int("i", i))
			tr.StartSpan(s, "leaf", Int("i", i)).End()
			s.End()
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for i := 0; i < jobs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				s := tr.StartSpan(root, "job", Int("i", i))
				tr.StartSpan(s, "leaf", Int("i", i)).End()
				s.End()
			}(i)
		}
		wg.Wait()
	}
	root.End()
	return tr
}

func TestChromeTraceDeterministicAcrossParallelism(t *testing.T) {
	var outs [][]byte
	for _, par := range []int{1, 4} {
		tr := buildForest(par)
		tr.SetTraceID("fixed")
		var buf bytes.Buffer
		clamped, err := tr.WriteChromeTrace(&buf, map[string]string{"tool": "test"})
		if err != nil {
			t.Fatal(err)
		}
		if clamped != 0 {
			t.Fatalf("parallel=%d: unexpected clamped count %d", par, clamped)
		}
		outs = append(outs, buf.Bytes())
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("trace JSON differs between -parallel 1 and 4:\n--- 1:\n%s\n--- 4:\n%s", outs[0], outs[1])
	}
	// And serialization itself is idempotent.
	tr := buildForest(1)
	tr.SetTraceID("fixed")
	var b1, b2 bytes.Buffer
	if _, err := tr.WriteChromeTrace(&b1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteChromeTrace(&b2, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("re-serializing the same tracer changed the bytes")
	}
}

func TestChromeTraceCanonicalIDsInPreorder(t *testing.T) {
	tr := buildForest(4)
	var buf bytes.Buffer
	if _, err := tr.WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	evs := spanEvents(decodeChrome(t, buf.Bytes()))
	seen := map[int64]bool{}
	for i, ev := range evs {
		id := int64(ev.Args["span_id"].(float64))
		if id != int64(i)+1 {
			t.Fatalf("event %d: canonical span_id %d, want %d", i, id, i+1)
		}
		if pidV, ok := ev.Args["parent_id"]; ok {
			pid := int64(pidV.(float64))
			if !seen[pid] {
				t.Fatalf("event %d: parent_id %d not emitted before child", i, pid)
			}
		}
		seen[id] = true
	}
}

func TestChromeTraceClampsChildEndingAfterParent(t *testing.T) {
	tr := NewTracer()
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr.now = func() time.Time { return now }
	parent := tr.StartSpan(nil, "parent")
	now = now.Add(10 * time.Millisecond)
	child := tr.StartSpan(parent, "child")
	now = now.Add(10 * time.Millisecond)
	parent.End() // parent ends at t=20ms
	now = now.Add(30 * time.Millisecond)
	child.End() // child ends at t=50ms — after its parent

	var buf bytes.Buffer
	clamped, err := tr.WriteChromeTrace(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clamped != 1 {
		t.Fatalf("clamped = %d, want 1", clamped)
	}
	f := decodeChrome(t, buf.Bytes())
	if f.OtherData["clamped_spans"] != "1" {
		t.Fatalf("otherData.clamped_spans = %q, want 1", f.OtherData["clamped_spans"])
	}
	evs := spanEvents(f)
	if len(evs) != 2 {
		t.Fatalf("want 2 span events, got %d", len(evs))
	}
	byName := map[string]ChromeEvent{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	p, c := byName["parent"], byName["child"]
	if c.Dur < 0 || p.Dur < 0 {
		t.Fatalf("negative duration emitted: parent=%d child=%d", p.Dur, c.Dur)
	}
	if c.TS < p.TS || c.TS+c.Dur > p.TS+p.Dur {
		t.Fatalf("child [%d,%d] escapes parent [%d,%d]", c.TS, c.TS+c.Dur, p.TS, p.TS+p.Dur)
	}
}

func TestChromeTraceUnfinishedSpans(t *testing.T) {
	tr := NewTracer()
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr.now = func() time.Time { return now }
	parent := tr.StartSpan(nil, "parent")
	now = now.Add(time.Millisecond)
	tr.StartSpan(parent, "dangling") // never ended
	now = now.Add(time.Millisecond)
	parent.End()

	var buf bytes.Buffer
	clamped, err := tr.WriteChromeTrace(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clamped != 0 {
		t.Fatalf("unfinished spans must not count as clamped, got %d", clamped)
	}
	for _, ev := range spanEvents(decodeChrome(t, buf.Bytes())) {
		if ev.Name != "dangling" {
			continue
		}
		if ev.Args["unfinished"] != true {
			t.Fatalf("dangling span not marked unfinished: %+v", ev.Args)
		}
		if ev.TS+ev.Dur != 2000 {
			t.Fatalf("dangling span should extend to parent end (2000us), got end %d", ev.TS+ev.Dur)
		}
		return
	}
	t.Fatal("dangling span missing from output")
}

// TestChromeTraceLanes checks the tid assignment: concurrent siblings
// land on different lanes, nested children share their parent's lane,
// and sequential spans reuse a drained lane.
func TestChromeTraceLanes(t *testing.T) {
	tr := NewTracer()
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	at := func(ms int) time.Time { return now.Add(time.Duration(ms) * time.Millisecond) }
	tr.now = func() time.Time { return at(0) }
	root := tr.StartSpan(nil, "root")
	// Two overlapping children: [1,5] and [2,6].
	tr.now = func() time.Time { return at(1) }
	c1 := tr.StartSpan(root, "overlap-a")
	tr.now = func() time.Time { return at(2) }
	c2 := tr.StartSpan(root, "overlap-b")
	tr.now = func() time.Time { return at(3) }
	g := tr.StartSpan(c1, "nested") // inside overlap-a
	tr.now = func() time.Time { return at(4) }
	g.End()
	tr.now = func() time.Time { return at(5) }
	c1.End()
	tr.now = func() time.Time { return at(6) }
	c2.End()
	// A later sequential child: should reuse a drained lane, not open
	// lane 3.
	tr.now = func() time.Time { return at(7) }
	c3 := tr.StartSpan(root, "sequential")
	tr.now = func() time.Time { return at(8) }
	c3.End()
	tr.now = func() time.Time { return at(9) }
	root.End()

	var buf bytes.Buffer
	if _, err := tr.WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	evs := spanEvents(decodeChrome(t, buf.Bytes()))
	lane := map[string]int64{}
	for _, ev := range evs {
		lane[ev.Name] = ev.TID
	}
	if lane["overlap-a"] == lane["overlap-b"] {
		t.Fatalf("overlapping siblings share lane %d", lane["overlap-a"])
	}
	if lane["nested"] != lane["overlap-a"] {
		t.Fatalf("nested child on lane %d, parent on %d", lane["nested"], lane["overlap-a"])
	}
	if lane["sequential"] != lane["root"] && lane["sequential"] != lane["overlap-a"] && lane["sequential"] != lane["overlap-b"] {
		t.Fatalf("sequential span opened a fresh lane %d: %v", lane["sequential"], lane)
	}
	// Laminar check per lane: intervals sharing a tid must be nested or
	// disjoint, or the Chrome viewer renders garbage.
	type iv struct{ s, e int64 }
	byLane := map[int64][]iv{}
	for _, ev := range evs {
		byLane[ev.TID] = append(byLane[ev.TID], iv{ev.TS, ev.TS + ev.Dur})
	}
	for tid, ivs := range byLane {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				disjoint := a.e <= b.s || b.e <= a.s
				nested := (a.s <= b.s && b.e <= a.e) || (b.s <= a.s && a.e <= b.e)
				if !disjoint && !nested {
					t.Fatalf("lane %d: intervals %v and %v partially overlap", tid, a, b)
				}
			}
		}
	}
}

func TestChromeTraceMetaAndTraceID(t *testing.T) {
	tr := buildForest(1)
	tr.SetTraceID(DeriveTraceID("run-xyz"))
	var buf bytes.Buffer
	if _, err := tr.WriteChromeTrace(&buf, map[string]string{
		"tool": "thistle", "git_rev": "abc123", "empty": "",
	}); err != nil {
		t.Fatal(err)
	}
	f := decodeChrome(t, buf.Bytes())
	if f.OtherData["schema"] != ChromeTraceSchema {
		t.Fatalf("schema = %q", f.OtherData["schema"])
	}
	if f.OtherData["trace_id"] != DeriveTraceID("run-xyz") {
		t.Fatalf("trace_id = %q", f.OtherData["trace_id"])
	}
	if f.OtherData["tool"] != "thistle" || f.OtherData["git_rev"] != "abc123" {
		t.Fatalf("meta not merged: %v", f.OtherData)
	}
	if _, ok := f.OtherData["empty"]; ok {
		t.Fatal("empty meta value should be dropped")
	}
}

// TestChromeTraceConcurrentAttachment hammers one parent from many
// goroutines with a live clock and checks the writer emits structurally
// valid, laminar-per-lane output (run under -race in check.sh).
func TestChromeTraceConcurrentAttachment(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan(nil, "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := tr.StartSpan(root, fmt.Sprintf("w%02d", i))
			for j := 0; j < 4; j++ {
				tr.StartSpan(s, "leaf", Int("j", j)).End()
			}
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	var buf bytes.Buffer
	if _, err := tr.WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	evs := spanEvents(decodeChrome(t, buf.Bytes()))
	if len(evs) != 1+16+16*4 {
		t.Fatalf("got %d span events, want %d", len(evs), 1+16+16*4)
	}
	for _, ev := range evs {
		if ev.Dur < 0 {
			t.Fatalf("negative duration in %s", ev.Name)
		}
	}
	if !strings.Contains(buf.String(), `"schema": "thistle-trace-v1"`) {
		t.Fatal("schema tag missing")
	}
}
