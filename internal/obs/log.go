package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log verbosity. Higher levels include lower ones.
type Level int32

// Log levels, from silent to firehose.
const (
	Off Level = iota
	Warn
	Info
	Debug
	Trace
)

func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Warn:
		return "warn"
	case Info:
		return "info"
	case Debug:
		return "debug"
	case Trace:
		return "trace"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel converts a -v flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off", "0":
		return Off, nil
	case "warn", "warning", "1":
		return Warn, nil
	case "info", "2":
		return Info, nil
	case "debug", "3":
		return Debug, nil
	case "trace", "4":
		return Trace, nil
	}
	return Off, fmt.Errorf("obs: unknown log level %q (off | warn | info | debug | trace)", s)
}

// Logger is a leveled line logger. A nil *Logger is a valid disabled
// logger. The level may be changed concurrently with logging.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	// now stamps log lines; overridable for tests.
	now func() time.Time
}

// NewLogger returns a logger writing to w at the given level.
func NewLogger(w io.Writer, lvl Level) *Logger {
	l := &Logger{w: w, now: time.Now}
	l.level.Store(int32(lvl))
	return l
}

// Enabled reports whether a message at lvl would be written. It is the
// hot-path guard: a nil receiver or disabled level costs one nil check
// plus one atomic load and never allocates.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && lvl != Off && Level(l.level.Load()) >= lvl
}

// SetLevel changes the verbosity.
func (l *Logger) SetLevel(lvl Level) {
	if l != nil {
		l.level.Store(int32(lvl))
	}
}

// Logf writes one line at the given level. Formatting is skipped when
// the level is disabled, but the variadic boxing is not — guard calls
// with Enabled on hot paths.
func (l *Logger) Logf(lvl Level, format string, args ...any) {
	if l == nil || !l.Enabled(lvl) {
		return
	}
	ts := l.now().Format("15:04:05.000")
	line := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s %-5s %s\n", ts, strings.ToUpper(lvl.String()), line)
}

// Warnf logs at Warn level.
func (l *Logger) Warnf(format string, args ...any) { l.Logf(Warn, format, args...) }

// Infof logs at Info level.
func (l *Logger) Infof(format string, args ...any) { l.Logf(Info, format, args...) }

// Debugf logs at Debug level.
func (l *Logger) Debugf(format string, args ...any) { l.Logf(Debug, format, args...) }

// Tracef logs at Trace level.
func (l *Logger) Tracef(format string, args ...any) { l.Logf(Trace, format, args...) }
