// Package obs is the reproduction's observability layer: hierarchical
// wall-clock spans, a concurrency-safe metrics registry (counters,
// gauges, log-scale duration histograms), and a leveled logger, all
// stdlib-only. The optimizer core, the interior-point solver, and the
// randomized mapper call these hooks from hot goroutine loops, so every
// entry point is nil-safe: a nil *Obs (or any nil component) degrades to
// a no-op that performs no allocation, making disabled telemetry
// effectively free.
//
// The three components are bundled in Obs and travel either explicitly
// (solver.Options.Obs, mapper.Options.Obs) or via context
// (obs.NewContext / obs.StartSpan) through core.OptimizeContext.
package obs

import (
	"context"
	"fmt"
)

// Obs bundles the telemetry sinks. Any field (or the whole pointer)
// may be nil; every method treats that as "disabled".
type Obs struct {
	Log     *Logger
	Tracer  *Tracer
	Metrics *Registry
	// Events receives the structured run-event stream (run/layer/solve
	// lifecycle records); see internal/obs/events for the JSONL emitter
	// and the run-manifest recorder that implement it.
	Events EventSink
}

// EventSink consumes structured run events. Implementations must be
// safe for concurrent use: the solver and the core GP workers emit from
// parallel goroutines. Field values should be JSON-marshalable
// primitives (string, int64, float64, bool) or slices of them.
type EventSink interface {
	Emit(typ string, fields map[string]any)
}

// EventsEnabled reports whether an event sink is attached. Hot loops
// use it to skip building the field map entirely.
func (o *Obs) EventsEnabled() bool { return o != nil && o.Events != nil }

// Emit forwards one structured event to the attached sink, if any.
// Callers on hot paths should guard with EventsEnabled first to avoid
// allocating the field map.
func (o *Obs) Emit(typ string, fields map[string]any) {
	if o == nil || o.Events == nil {
		return
	}
	o.Events.Emit(typ, fields)
}

// Logger returns the logger component (nil when disabled).
func (o *Obs) Logger() *Logger {
	if o == nil {
		return nil
	}
	return o.Log
}

// Enabled reports whether the logger would emit at the given level.
func (o *Obs) Enabled(lvl Level) bool { return o.Logger().Enabled(lvl) }

// Logf emits a log line at the given level. Callers on hot paths should
// guard with Enabled first to avoid boxing the arguments.
func (o *Obs) Logf(lvl Level, format string, args ...any) {
	o.Logger().Logf(lvl, format, args...)
}

// TracingEnabled reports whether spans are being recorded. Hot loops use
// it to skip building span attributes entirely.
func (o *Obs) TracingEnabled() bool { return o != nil && o.Tracer != nil }

// MetricsEnabled reports whether a metrics registry is attached. Hot
// loops use it to skip formatting metric names.
func (o *Obs) MetricsEnabled() bool { return o != nil && o.Metrics != nil }

// StartSpan opens a span under parent (nil parent means a root span).
// Returns nil when tracing is disabled; the nil *Span is safe to use.
func (o *Obs) StartSpan(parent *Span, name string, attrs ...Attr) *Span {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.StartSpan(parent, name, attrs...)
}

// Counter returns the named counter, or a nil no-op when disabled.
func (o *Obs) Counter(name string) *Counter {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, or a nil no-op when disabled.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram, or a nil no-op when disabled.
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Attr is one span attribute. Values should be JSON-marshalable
// primitives (string, int64, float64, bool).
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Stringer formats v lazily-ish; unlike String it accepts any value.
func Stringer(k string, v any) Attr { return Attr{Key: k, Value: fmt.Sprint(v)} }

type obsCtxKey struct{}
type spanCtxKey struct{}

// NewContext attaches the Obs bundle to a context.
func NewContext(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, obsCtxKey{}, o)
}

// FromContext returns the attached Obs bundle, or nil.
func FromContext(ctx context.Context) *Obs {
	o, _ := ctx.Value(obsCtxKey{}).(*Obs)
	return o
}

// ContextWithSpan records s as the current span of the context, making
// it the parent of subsequent StartSpan calls.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span of the context, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a span as a child of the context's current span (or a
// root span) and returns a derived context carrying the new span. When
// no tracer is attached the original context and a nil span are
// returned without allocating.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	o := FromContext(ctx)
	if o == nil || o.Tracer == nil {
		return ctx, nil
	}
	s := o.Tracer.StartSpan(SpanFromContext(ctx), name, attrs...)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}
