package obs

import "testing"

// disabledHotLoop is the exact call pattern the optimizer core, solver,
// and mapper use on their hot paths when telemetry is off: nil handles,
// Enabled guards before any formatting, no span attributes.
func disabledHotLoop(o *Obs, c *Counter, g *Gauge, h *Histogram) {
	c.Inc()
	c.Add(3)
	g.Set(42)
	h.Observe(1000)
	s := o.StartSpan(nil, "gp-solve")
	s.SetAttr("k", 1)
	s.End()
	if o.Enabled(Trace) {
		o.Logf(Trace, "never reached %d", 1)
	}
	if o.TracingEnabled() || o.MetricsEnabled() {
		panic("disabled Obs claims to be enabled")
	}
}

// TestDisabledPathDoesNotAllocate asserts the no-op fast path is
// allocation-free, so leaving the hooks compiled into hot goroutine
// loops costs only nil checks.
func TestDisabledPathDoesNotAllocate(t *testing.T) {
	var o *Obs
	c := o.Counter("core.pairs_solved")
	g := o.Gauge("mapper.worker00.trials")
	h := o.Histogram("solver.solve_duration")
	if avg := testing.AllocsPerRun(1000, func() {
		disabledHotLoop(o, c, g, h)
	}); avg != 0 {
		t.Fatalf("disabled path allocates %.1f times per op, want 0", avg)
	}
}

func BenchmarkDisabledNoOp(b *testing.B) {
	var o *Obs
	c := o.Counter("core.pairs_solved")
	g := o.Gauge("mapper.worker00.trials")
	h := o.Histogram("solver.solve_duration")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledHotLoop(o, c, g, h)
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	o := &Obs{Metrics: NewRegistry()}
	c := o.Counter("core.pairs_solved")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
