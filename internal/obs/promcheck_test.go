package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestExpositionValidOnRealRegistry is the guard the issue asks for:
// every metric family the optimizer actually registers — including
// names with dots, dashes, and other charset hazards — must render as
// grammatically valid exposition text.
func TestExpositionValidOnRealRegistry(t *testing.T) {
	cases := []struct {
		name string
		fill func(r *Registry)
	}{
		{"serve family", func(r *Registry) {
			r.Counter("serve.requests").Add(5)
			r.Counter("serve.requests_ok").Add(4)
			r.Counter("serve.requests_error").Inc()
			r.Counter("serve.rejected_queue_full").Inc()
			r.Counter("serve.rejected_draining").Inc()
			r.Counter("serve.deadline_exceeded").Inc()
			r.Gauge("serve.in_flight").Set(2)
			r.Gauge("serve.queue_depth").Set(1)
			r.Histogram("serve.request.latency").Observe(3 * time.Millisecond)
		}},
		{"cache and pipeline", func(r *Registry) {
			r.Counter("cache.hit").Add(10)
			r.Counter("cache.miss").Add(3)
			r.Counter("cache.disk_hit").Inc()
			r.Counter("cache.singleflight_wait").Inc()
			r.Counter("cache.store").Add(3)
			r.Gauge("pipeline.sched.in_flight").Set(4)
			r.Gauge("pipeline.sched.queue_depth").Set(0)
			r.Histogram("pipeline.sched.wait").Observe(time.Microsecond)
			r.Histogram("pipeline.stage.solve").Observe(time.Second)
			r.Histogram("pipeline.stage.integerize").Observe(20 * time.Millisecond)
		}},
		{"hostile registry names sanitize to valid families", func(r *Registry) {
			r.Counter("weird-name.with.dots").Inc()
			r.Counter("0starts.with.digit").Inc()
			r.Gauge("spaces in name").Set(1)
			r.Histogram("unicode-αβ.lat").Observe(time.Millisecond)
		}},
		{"empty registry", func(r *Registry) {}},
		{"histogram with wide spread", func(r *Registry) {
			h := r.Histogram("h")
			for _, d := range []time.Duration{0, time.Nanosecond, time.Microsecond,
				50 * time.Microsecond, time.Millisecond, time.Second, time.Hour, 3 * time.Hour} {
				h.Observe(d)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.fill(r)
			var buf bytes.Buffer
			if err := r.Snapshot().WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("exposition invalid: %v\npayload:\n%s", err, buf.String())
			}
		})
	}
}

func TestHelpLinesPrecedeType(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(1)
	r.Histogram("serve.request.latency").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{"thistle_serve_requests_total", "thistle_serve_request_latency_seconds"} {
		hi := strings.Index(out, "# HELP "+fam+" ")
		ti := strings.Index(out, "# TYPE "+fam+" ")
		if hi < 0 {
			t.Fatalf("no HELP for %s in:\n%s", fam, out)
		}
		if ti < hi {
			t.Fatalf("TYPE before HELP for %s in:\n%s", fam, out)
		}
	}
}

func TestHelpForPrefixMatch(t *testing.T) {
	if h := helpFor("pipeline.stage.anything"); h == "" {
		t.Fatal("prefix family pipeline.stage. not matched")
	}
	if h := helpFor("no.such.metric"); h != "" {
		t.Fatalf("unknown metric got help %q", h)
	}
}

func TestValidateExpositionRejectsBadPayloads(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantErr string
	}{
		{"bad metric name", "# TYPE bad-name counter\nbad-name 1\n", "invalid metric name"},
		{"sample without type", "orphan 1\n", "without a TYPE"},
		{"duplicate type", "# TYPE a counter\n# TYPE a counter\na 1\n", "duplicate TYPE"},
		{"help after type", "# TYPE a counter\n# HELP a text\na 1\n", "after its TYPE"},
		{"duplicate sample", "# TYPE a counter\na 1\na 2\n", "duplicate sample"},
		{"bad label name", "# TYPE a counter\na{9x=\"v\"} 1\n", "invalid label name"},
		{"unquoted label", "# TYPE a counter\na{x=v} 1\n", "not quoted"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", "without le"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "not cumulative"},
		{"le not increasing", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", "not increasing"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing +Inf"},
		{"inf mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "!= _count"},
		{"declared no samples", "# TYPE a counter\n", "no samples"},
		{"help without type", "# HELP a text\n", "without a TYPE"},
		{"unparseable value", "# TYPE a counter\na xyz\n", "unparseable value"},
		{"interleaved families", "# TYPE a counter\n# TYPE b counter\nb 1\na 1\n", "interleaved"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateExposition(strings.NewReader(tc.payload))
			if err == nil {
				t.Fatalf("payload accepted:\n%s", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateExpositionAcceptsLabeledFamilies(t *testing.T) {
	payload := `# HELP thistle_slo_burn_rate Error budget burn rate
# TYPE thistle_slo_burn_rate gauge
thistle_slo_burn_rate{slo="availability",window="5m"} 0.5
thistle_slo_burn_rate{slo="availability",window="1h"} 0.25
thistle_slo_burn_rate{slo="latency",window="5m"} 0
thistle_slo_burn_rate{slo="latency",window="1h"} 0
# TYPE thistle_slo_events_total counter
thistle_slo_events_total{slo="availability",outcome="good"} 99
thistle_slo_events_total{slo="availability",outcome="bad"} 1
`
	if err := ValidateExposition(strings.NewReader(payload)); err != nil {
		t.Fatalf("labeled payload rejected: %v", err)
	}
}
