package obs

// Event types of the thistle-events-v1 run-record stream, declared here
// — below every layer that emits — so the solver, core, and experiments
// packages can reference them without importing internal/obs/events
// (which stays a CLI-layer concern). Package events re-exports each
// constant under the same name and owns the machine-readable schema
// (events.Schema) describing the fields every type must carry; the
// tlvet eventfields analyzer enforces that schema at every Emit call
// site.
const (
	// EvRunStart opens every stream: run_id, tool, go_version, git_rev,
	// args, start_time.
	EvRunStart = "run_start"
	// EvRunEnd closes a stream with run totals.
	EvRunEnd = "run_end"
	// EvLayersTotal announces how many layers a sweep will optimize
	// (drives the -status-addr progress display).
	EvLayersTotal = "layers_total"
	// EvOptimizeStart marks one core.Optimize entry: problem, mode,
	// criterion, and the solve-cache content signature.
	EvOptimizeStart = "optimize_start"
	// EvOptimizeEnd carries the optimize outcome: the design point's
	// energy/cycles/EDP, search effort, and cache disposition.
	EvOptimizeEnd = "optimize_end"
	// EvLayerReused marks a layer served by cross-layer dedup in
	// experiments.OptimizeLayers (same signature as an earlier layer).
	EvLayerReused = "layer_reused"
	// EvSolveEnd summarizes one GP barrier solve: status, Newton
	// iterations, centerings, objective, wall time, final duality gap,
	// and whether a phase-I feasibility search was needed.
	EvSolveEnd = "solve_end"
	// EvCentering is one barrier centering step: duality gap, Newton
	// count, line-search backtracks, convergence.
	EvCentering = "centering"
	// EvMapperEnd summarizes one randomized-mapper search.
	EvMapperEnd = "mapper_end"
	// EvModelValidate carries a tlmodel constraint-check outcome.
	EvModelValidate = "model_validate"
)
