package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is, duration histograms
// as cumulative `_bucket{le="..."}` series in seconds plus `_sum` and
// `_count`. Metric names are sanitized to the Prometheus charset
// (dots become underscores) and prefixed with "thistle_". Known metric
// families carry a `# HELP` line (see promHelp). The output is what the
// -status-addr /metrics endpoint serves, so a long whole-network run
// can be scraped live.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		name := promName(c.Name) + "_total"
		if err := writeHelp(w, name, c.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if err := writeHelp(w, name, g.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name) + "_seconds"
		if err := writeHelp(w, name, h.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			// The bucket covers [LowUS, 2*LowUS) microseconds; its
			// Prometheus upper bound is the exclusive end in seconds.
			hiUS := 2 * b.LowUS
			if hiUS == 0 {
				hiUS = 2
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatSeconds(hiUS), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, float64(h.SumNS)/1e9, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promHelp describes the metric families the optimizer registers, keyed
// by registry name. A key ending in "." is a prefix match for dynamic
// families (per-stage histograms). Unknown names simply get no HELP
// line — the exposition stays valid either way.
var promHelp = map[string]string{
	"serve.requests":             "Optimize requests received",
	"serve.requests_ok":          "Requests answered 200",
	"serve.requests_error":       "Requests answered non-200, including rejections",
	"serve.rejected_queue_full":  "Requests shed with 429 because the admission queue was full",
	"serve.rejected_draining":    "Requests rejected with 503 during drain",
	"serve.deadline_exceeded":    "Requests that exceeded their deadline while queued or solving",
	"serve.in_flight":            "Requests currently executing",
	"serve.queue_depth":          "Requests currently waiting for an execution slot",
	"serve.request.latency":      "Optimize request wall time",
	"cache.hit":                  "Solve cache in-memory hits",
	"cache.miss":                 "Solve cache misses",
	"cache.disk_hit":             "Solve cache persistent-tier hits",
	"cache.singleflight_wait":    "Solves coalesced onto an identical in-flight solve",
	"cache.store":                "Solve results stored into the cache",
	"pipeline.sched.in_flight":   "Leaf compute jobs currently running on the shared scheduler",
	"pipeline.sched.queue_depth": "Leaf compute jobs waiting for a scheduler slot",
	"pipeline.sched.wait":        "Time jobs spent queued before a scheduler slot freed",
	"pipeline.stage.":            "Duration of one optimization pipeline stage",
	"obs.trace.clamped":          "Trace events dropped or clamped by the span limit",
	"experiments.layers_deduped": "Workload layers skipped as duplicates of an identical shape",
}

// helpFor resolves a registry name to its HELP text: exact match first,
// then the longest matching "."-terminated prefix.
func helpFor(name string) string {
	if h, ok := promHelp[name]; ok {
		return h
	}
	best := ""
	bestLen := 0
	for k, h := range promHelp {
		if strings.HasSuffix(k, ".") && strings.HasPrefix(name, k) && len(k) > bestLen {
			best, bestLen = h, len(k)
		}
	}
	return best
}

// writeHelp emits a `# HELP` line for known families. HELP text is
// escaped per the exposition format (backslash and newline).
func writeHelp(w io.Writer, promFamily, regName string) error {
	h := helpFor(regName)
	if h == "" {
		return nil
	}
	h = strings.ReplaceAll(h, `\`, `\\`)
	h = strings.ReplaceAll(h, "\n", `\n`)
	_, err := fmt.Fprintf(w, "# HELP %s %s\n", promFamily, h)
	return err
}

// formatSeconds renders a microsecond bound as seconds without
// scientific notation ambiguity ("0.000002", "0.5", "36").
func formatSeconds(us int64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", float64(us)/1e6), "0"), ".")
}

// promName maps a registry metric name onto the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("thistle_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
