package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is, duration histograms
// as cumulative `_bucket{le="..."}` series in seconds plus `_sum` and
// `_count`. Metric names are sanitized to the Prometheus charset
// (dots become underscores) and prefixed with "thistle_". The output is
// what the -status-addr /metrics endpoint serves, so a long whole-network
// run can be scraped live.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		name := promName(c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			// The bucket covers [LowUS, 2*LowUS) microseconds; its
			// Prometheus upper bound is the exclusive end in seconds.
			hiUS := 2 * b.LowUS
			if hiUS == 0 {
				hiUS = 2
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatSeconds(hiUS), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, float64(h.SumNS)/1e9, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatSeconds renders a microsecond bound as seconds without
// scientific notation ambiguity ("0.000002", "0.5", "36").
func formatSeconds(us int64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", float64(us)/1e6), "0"), ".")
}

// promName maps a registry metric name onto the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("thistle_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
