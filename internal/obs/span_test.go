package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan(nil, "root", String("layer", "L6"))
	b := tr.StartSpan(root, "first")
	d := tr.StartSpan(b, "inner")
	d.End()
	b.End()
	c := tr.StartSpan(root, "second", Int("pair", 3))
	c.End()
	root.SetAttr("status", "ok")
	root.End()

	tree := tr.Tree()
	if len(tree) != 1 {
		t.Fatalf("want 1 root span, got %d", len(tree))
	}
	r := tree[0]
	if r.Name != "root" || r.Attrs["layer"] != "L6" || r.Attrs["status"] != "ok" {
		t.Fatalf("root snapshot wrong: %+v", r)
	}
	if len(r.Children) != 2 || r.Children[0].Name != "first" || r.Children[1].Name != "second" {
		t.Fatalf("children order wrong: %+v", r.Children)
	}
	if got := r.Children[1].Attrs["pair"]; got != int64(3) {
		t.Fatalf("int attr = %v (%T), want int64(3)", got, got)
	}
	inner := r.Children[0].Children
	if len(inner) != 1 || inner[0].Name != "inner" {
		t.Fatalf("nesting wrong: %+v", inner)
	}
	if r.DurUS < 0 {
		t.Fatalf("ended root has negative duration: %d", r.DurUS)
	}
	for _, c := range r.Children {
		if c.StartUS < r.StartUS {
			t.Fatalf("child starts before parent: %+v inside %+v", c, r)
		}
	}
}

func TestSpanUnendedAndText(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan(nil, "open")
	tr.StartSpan(root, "leaf").End()

	tree := tr.Tree()
	if tree[0].DurUS != -1 {
		t.Fatalf("unended span should report dur -1, got %d", tree[0].DurUS)
	}
	var sb strings.Builder
	tr.WriteTree(&sb)
	out := sb.String()
	if !strings.Contains(out, "open unfinished") || !strings.Contains(out, "\n  leaf ") {
		t.Fatalf("text tree wrong:\n%s", out)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan(nil, "root")
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := tr.StartSpan(root, "worker", Int("id", i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Tree()[0].Children); got != n {
		t.Fatalf("got %d children, want %d", got, n)
	}
}

func TestContextSpanAPI(t *testing.T) {
	o := &Obs{Tracer: NewTracer()}
	ctx := NewContext(context.Background(), o)
	if FromContext(ctx) != o {
		t.Fatal("FromContext lost the Obs")
	}
	ctx1, s1 := StartSpan(ctx, "outer")
	_, s2 := StartSpan(ctx1, "inner")
	s2.End()
	s1.End()
	tree := o.Tracer.Tree()
	if len(tree) != 1 || len(tree[0].Children) != 1 || tree[0].Children[0].Name != "inner" {
		t.Fatalf("context nesting wrong: %+v", tree)
	}

	// Without an Obs in the context, StartSpan is a transparent no-op.
	bg := context.Background()
	ctx2, s := StartSpan(bg, "nothing")
	if s != nil || ctx2 != bg {
		t.Fatal("disabled StartSpan should return the original context and nil span")
	}
	s.End() // must not panic
}

func TestTracerJSON(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan(nil, "solve", Float("obj", 1.5))
	tr.StartSpan(s, "phase-i").End()
	s.End()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "solve"`, `"phase-i"`, `"obj": 1.5`, `"dur_us"`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("JSON missing %q:\n%s", want, sb.String())
		}
	}
}
