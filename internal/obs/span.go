package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records a forest of hierarchical spans. It is safe for
// concurrent use; spans from worker goroutines may attach children to a
// shared parent. A nil *Tracer records nothing.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
	// now is the clock; overridable for tests.
	now func() time.Time
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{now: time.Now} }

// StartSpan opens a span under parent; a nil parent makes a root span.
// The caller must End it.
func (t *Tracer) StartSpan(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, start: t.now()}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	if parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
		return s
	}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Span is one timed region. All methods are nil-safe so disabled
// tracing costs a single nil check at each call site.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// End stamps the span's end time. Ending twice keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = s.tracer.now()
	}
	s.mu.Unlock()
}

// SetAttr attaches (or appends) an attribute after span creation.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Annotate attaches several attributes at once.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// SpanInfo is an immutable snapshot of one recorded span.
type SpanInfo struct {
	Name string `json:"name"`
	// StartUS is the span start as microseconds since the first recorded
	// span's start.
	StartUS int64 `json:"start_us"`
	// DurUS is the span duration in microseconds (-1 if never ended).
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanInfo     `json:"children,omitempty"`
}

// Duration returns the span duration (0 if the span was never ended).
func (si SpanInfo) Duration() time.Duration {
	if si.DurUS < 0 {
		return 0
	}
	return time.Duration(si.DurUS) * time.Microsecond
}

// Tree snapshots the recorded span forest, in start order.
func (t *Tracer) Tree() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	var epoch time.Time
	if len(roots) > 0 {
		epoch = roots[0].start
	}
	out := make([]SpanInfo, len(roots))
	for i, r := range roots {
		out[i] = r.snapshot(epoch)
	}
	return out
}

func (s *Span) snapshot(epoch time.Time) SpanInfo {
	s.mu.Lock()
	end := s.end
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	info := SpanInfo{
		Name:    s.name,
		StartUS: s.start.Sub(epoch).Microseconds(),
		DurUS:   -1,
	}
	if !end.IsZero() {
		info.DurUS = end.Sub(s.start).Microseconds()
	}
	if len(attrs) > 0 {
		info.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			info.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		info.Children = append(info.Children, c.snapshot(epoch))
	}
	return info
}

// WriteJSON dumps the span forest as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	tree := t.Tree()
	if tree == nil {
		tree = []SpanInfo{}
	}
	return enc.Encode(tree)
}

// WriteTree dumps the span forest as an indented text tree with
// durations and attributes, one span per line.
func (t *Tracer) WriteTree(w io.Writer) {
	for _, root := range t.Tree() {
		writeTreeNode(w, root, 0)
	}
}

func writeTreeNode(w io.Writer, si SpanInfo, depth int) {
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	dur := "unfinished"
	if si.DurUS >= 0 {
		dur = si.Duration().String()
	}
	fmt.Fprintf(w, "%s %s", si.Name, dur)
	keys := make([]string, 0, len(si.Attrs))
	for k := range si.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%v", k, si.Attrs[k])
	}
	fmt.Fprintln(w)
	for _, c := range si.Children {
		writeTreeNode(w, c, depth+1)
	}
}
