package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records a forest of hierarchical spans. It is safe for
// concurrent use; spans from worker goroutines may attach children to a
// shared parent. A nil *Tracer records nothing.
//
// Every recorded span carries a span ID (assigned from a per-tracer
// counter at creation, stable for the span's lifetime) and the tracer
// carries a trace ID shared by the whole forest. The trace ID is
// deterministically derived from the run's identity: callers that know
// the run ID (the CLI runtime does) set it with SetTraceID(DeriveTraceID
// (runID)); otherwise it is derived from the first root span's start
// time, so a given run always reports one stable ID.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span // guarded by mu
	// now is the clock; overridable for tests.
	now     func() time.Time
	nextID  atomic.Int64
	traceID atomic.Pointer[string]
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{now: time.Now} }

// Clock replaces the tracer's time source. Tests use it to produce
// deterministic span timings (and therefore byte-identical serialized
// traces); call it before recording any spans.
func (t *Tracer) Clock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.now = now
}

// DeriveTraceID maps an arbitrary run identity (e.g. the thistle-events
// run_id) onto a stable 16-hex-digit trace ID. The same seed always
// yields the same ID, which is what lets a trace file be correlated to
// the manifest and event stream of the run that produced it.
func DeriveTraceID(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:8])
}

// SetTraceID pins the tracer's trace ID (normally DeriveTraceID of the
// run ID). Only the first call wins, so a late default cannot overwrite
// the run-derived ID.
func (t *Tracer) SetTraceID(id string) {
	if t == nil || id == "" {
		return
	}
	t.traceID.CompareAndSwap(nil, &id)
}

// TraceID returns the tracer's trace ID, deriving (and pinning) one
// from the first root span's start time when none was set. An empty
// tracer with no set ID returns "".
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	if p := t.traceID.Load(); p != nil {
		return *p
	}
	t.mu.Lock()
	var epoch time.Time
	if len(t.roots) > 0 {
		epoch = t.roots[0].start
	}
	t.mu.Unlock()
	if epoch.IsZero() {
		return ""
	}
	t.SetTraceID(DeriveTraceID(epoch.UTC().Format(time.RFC3339Nano)))
	return *t.traceID.Load()
}

// StartSpan opens a span under parent; a nil parent makes a root span.
// The caller must End it.
func (t *Tracer) StartSpan(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tracer: t,
		name:   name,
		start:  t.now(),
		id:     t.nextID.Add(1),
		attrs:  append([]Attr(nil), attrs...),
	}
	if parent != nil {
		s.parent = parent
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
		return s
	}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Span is one timed region. All methods are nil-safe so disabled
// tracing costs a single nil check at each call site.
type Span struct {
	tracer *Tracer
	parent *Span // nil for roots
	name   string
	start  time.Time
	id     int64

	mu       sync.Mutex
	end      time.Time // guarded by mu
	attrs    []Attr    // guarded by mu
	children []*Span   // guarded by mu
}

// ID returns the span's creation-order identifier within its tracer
// (stable for the span's lifetime; 0 for a nil span). Creation order is
// scheduling-dependent under parallelism — serialized trace files use
// the canonical sorted-preorder IDs instead (see WriteChromeTrace).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End stamps the span's end time. Ending twice keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = s.tracer.now()
	}
	s.mu.Unlock()
}

// SetAttr attaches (or appends) an attribute after span creation.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Annotate attaches several attributes at once.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// SpanInfo is an immutable snapshot of one recorded span.
type SpanInfo struct {
	Name string `json:"name"`
	// ID is the span's creation-order identifier (see Span.ID).
	ID int64 `json:"id"`
	// StartUS is the span start as microseconds since the first recorded
	// span's start.
	StartUS int64 `json:"start_us"`
	// DurUS is the span duration in microseconds (-1 if never ended).
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanInfo     `json:"children,omitempty"`
}

// Duration returns the span duration (0 if the span was never ended).
func (si SpanInfo) Duration() time.Duration {
	if si.DurUS < 0 {
		return 0
	}
	return time.Duration(si.DurUS) * time.Microsecond
}

// Tree snapshots the recorded span forest, in start order.
func (t *Tracer) Tree() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	var epoch time.Time
	if len(roots) > 0 {
		epoch = roots[0].start
	}
	out := make([]SpanInfo, len(roots))
	for i, r := range roots {
		out[i] = r.snapshot(epoch)
	}
	return out
}

func (s *Span) snapshot(epoch time.Time) SpanInfo {
	s.mu.Lock()
	end := s.end
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	info := SpanInfo{
		Name:    s.name,
		ID:      s.id,
		StartUS: s.start.Sub(epoch).Microseconds(),
		DurUS:   -1,
	}
	if !end.IsZero() {
		info.DurUS = end.Sub(s.start).Microseconds()
	}
	if len(attrs) > 0 {
		info.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			info.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		info.Children = append(info.Children, c.snapshot(epoch))
	}
	return info
}

// WriteJSON dumps the span forest as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	tree := t.Tree()
	if tree == nil {
		tree = []SpanInfo{}
	}
	return enc.Encode(tree)
}

// WriteTree dumps the span forest as an indented text tree with
// durations and attributes, one span per line.
func (t *Tracer) WriteTree(w io.Writer) {
	for _, root := range t.Tree() {
		writeTreeNode(w, root, 0)
	}
}

func writeTreeNode(w io.Writer, si SpanInfo, depth int) {
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	dur := "unfinished"
	if si.DurUS >= 0 {
		dur = si.Duration().String()
	}
	fmt.Fprintf(w, "%s %s", si.Name, dur)
	keys := make([]string, 0, len(si.Attrs))
	for k := range si.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%v", k, si.Attrs[k])
	}
	fmt.Fprintln(w)
	for _, c := range si.Children {
		writeTreeNode(w, c, depth+1)
	}
}
