package obs

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("solve")
	// 90 observations in [2,4)us, 10 in [1024,2048)us: p50 sits in the
	// low bucket, p99 in the high one.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	hv := r.Snapshot().Histograms[0]
	if p50 := hv.Quantile(0.50); p50 < 2*time.Microsecond || p50 >= 4*time.Microsecond {
		t.Fatalf("p50 = %v, want within [2us,4us)", p50)
	}
	if p99 := hv.Quantile(0.99); p99 < 1024*time.Microsecond || p99 > 2048*time.Microsecond {
		t.Fatalf("p99 = %v, want within [1024us,2048us]", p99)
	}
	if hv.P50NS == 0 || hv.P95NS == 0 || hv.P99NS == 0 {
		t.Fatalf("snapshot quantiles not populated: %+v", hv)
	}
	if hv.P50NS > hv.P95NS || hv.P95NS > hv.P99NS {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", hv.P50NS, hv.P95NS, hv.P99NS)
	}
	var empty HistogramValue
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("z.count").Add(3)
		r.Counter("a.count").Inc()
		r.Gauge("m.progress").Set(7)
		r.Histogram("h.dur").Observe(5 * time.Microsecond)
		var sb strings.Builder
		if err := r.Snapshot().WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("solver.solves").Add(5)
	r.Gauge("core.classes_l1.reg").Set(17)
	h := r.Histogram("solver.solve_duration")
	h.Observe(3 * time.Microsecond)
	h.Observe(1500 * time.Microsecond)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE thistle_solver_solves_total counter",
		"thistle_solver_solves_total 5",
		"# TYPE thistle_core_classes_l1_reg gauge",
		"thistle_core_classes_l1_reg 17",
		"# TYPE thistle_solver_solve_duration_seconds histogram",
		`le="+Inf"`,
		"thistle_solver_solve_duration_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the +Inf bucket must equal the count.
	if !strings.Contains(out, `thistle_solver_solve_duration_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket not cumulative:\n%s", out)
	}
}
