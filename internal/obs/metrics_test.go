package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d     time.Duration
		lowUS int64
	}{
		{500 * time.Nanosecond, 0},                                        // sub-microsecond -> bucket 0
		{time.Microsecond, 0},                                             // 1us is still bucket 0 (lo 0)
		{2 * time.Microsecond, 2},                                         // [2,4)
		{3 * time.Microsecond, 2},                                         // [2,4)
		{4 * time.Microsecond, 4},                                         // boundary lands in next bucket
		{1023 * time.Microsecond, 512},                                    // [512,1024)
		{1024 * time.Microsecond, 1024},                                   // [1024,2048)
		{1500 * time.Microsecond, 1024},                                   // [1024,2048)
		{2 * time.Hour, BucketLowerBound(histBuckets - 1).Microseconds()}, // clamp to last bucket
	}
	for _, c := range cases {
		h := &Histogram{}
		h.Observe(c.d)
		r := NewRegistry()
		// Check via a registry snapshot so the exported path is covered.
		r.Histogram("h").Observe(c.d)
		snap := r.Snapshot()
		if len(snap.Histograms) != 1 || len(snap.Histograms[0].Buckets) != 1 {
			t.Fatalf("%v: want exactly one populated bucket, got %+v", c.d, snap.Histograms)
		}
		b := snap.Histograms[0].Buckets[0]
		if b.LowUS != c.lowUS || b.Count != 1 {
			t.Fatalf("%v: landed in bucket lo=%dus (count %d), want lo=%dus", c.d, b.LowUS, b.Count, c.lowUS)
		}
	}
}

func TestHistogramSumMean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("solve")
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	hv := r.Snapshot().Histograms[0]
	if hv.Count != 2 || hv.Sum() != 6*time.Millisecond || hv.Mean() != 3*time.Millisecond {
		t.Fatalf("count=%d sum=%v mean=%v", hv.Count, hv.Sum(), hv.Mean())
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the goroutines race on the registry lookup too.
			c := r.Counter("shared")
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					r.Counter("shared").Inc()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotSortedAndRendered(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Inc()
	r.Gauge("w.progress").Set(7)
	r.Histogram("h.dur").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Counters[0].Name != "a.count" || s.Counters[1].Name != "b.count" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	var sb strings.Builder
	if err := s.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.count", "w.progress", "h.dur", "count 1"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, sb.String())
		}
	}
	sb.Reset()
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"name": "w.progress"`) {
		t.Fatalf("JSON missing gauge:\n%s", sb.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"off": Off, "": Off, "warn": Warn, "INFO": Info, "debug": Debug, "trace": Trace,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel should reject unknown levels")
	}
}

func TestLoggerLevels(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, Info)
	l.Warnf("w %d", 1)
	l.Infof("i")
	l.Debugf("hidden")
	if l.Enabled(Debug) || !l.Enabled(Info) {
		t.Fatal("Enabled levels wrong")
	}
	out := sb.String()
	if !strings.Contains(out, "WARN  w 1") || !strings.Contains(out, "INFO  i") || strings.Contains(out, "hidden") {
		t.Fatalf("log output wrong:\n%s", out)
	}
	l.SetLevel(Trace)
	if !l.Enabled(Trace) {
		t.Fatal("SetLevel did not take effect")
	}
}
