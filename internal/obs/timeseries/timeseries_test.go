package timeseries

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock steps a deterministic clock by a fixed interval per call
// site that advances it.
type fakeClock struct {
	t time.Time
}

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newCollector(reg *obs.Registry, clk *fakeClock, capacity int) *Collector {
	return New(reg, Options{Interval: 5 * time.Second, Capacity: capacity, Now: clk.now})
}

func TestCounterRateDerivation(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newClock()
	c := newCollector(reg, clk, 8)
	reqs := reg.Counter("serve.requests")

	reqs.Add(10)
	c.SampleNow() // first sight: no rate
	clk.advance(5 * time.Second)
	reqs.Add(25)
	c.SampleNow()

	vals := c.Values("serve.requests")
	if len(vals) != 2 || vals[0] != 10 || vals[1] != 35 {
		t.Fatalf("values = %v, want [10 35]", vals)
	}
	rates := c.Rates("serve.requests")
	if len(rates) != 2 || rates[0] != 0 {
		t.Fatalf("rates = %v, want first 0", rates)
	}
	if got, want := rates[1], 5.0; got != want { // 25 over 5s
		t.Fatalf("rate = %v, want %v", got, want)
	}
}

func TestGaugeSampling(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newClock()
	c := newCollector(reg, clk, 8)
	g := reg.Gauge("serve.queue_depth")

	g.Set(3)
	c.SampleNow()
	clk.advance(5 * time.Second)
	g.Set(7)
	c.SampleNow()

	if vals := c.Values("serve.queue_depth"); len(vals) != 2 || vals[0] != 3 || vals[1] != 7 {
		t.Fatalf("values = %v, want [3 7]", vals)
	}
	snap := c.Snapshot()
	for _, s := range snap.Series {
		if s.Name == "serve.queue_depth" && s.Kind != KindGauge {
			t.Fatalf("kind = %q, want gauge", s.Kind)
		}
	}
}

func TestHistogramWindowQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newClock()
	c := newCollector(reg, clk, 8)
	h := reg.Histogram("serve.request.latency")

	// Round 1: fast observations (~1ms).
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	c.SampleNow()
	// Round 2: slow observations only (~100ms). The window quantile must
	// reflect the interval's distribution, not the cumulative one.
	clk.advance(5 * time.Second)
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Millisecond)
	}
	c.SampleNow()

	p95 := c.Values("serve.request.latency.p95_ms")
	if len(p95) != 2 {
		t.Fatalf("p95 samples = %v, want 2", p95)
	}
	if p95[0] > 10 {
		t.Fatalf("round-1 p95 = %vms, want ~1ms (< 10)", p95[0])
	}
	if p95[1] < 50 {
		t.Fatalf("round-2 p95 = %vms, want ~100ms (>= 50); cumulative leak?", p95[1])
	}

	// The synthesized .count series is a counter with a throughput rate.
	counts := c.Values("serve.request.latency.count")
	if len(counts) != 2 || counts[0] != 100 || counts[1] != 200 {
		t.Fatalf("counts = %v, want [100 200]", counts)
	}
	rates := c.Rates("serve.request.latency.count")
	if rates[1] != 20 { // 100 obs over 5s
		t.Fatalf("count rate = %v, want 20", rates[1])
	}

	// Round 3: idle interval → zero window quantile, zero rate.
	clk.advance(5 * time.Second)
	c.SampleNow()
	p95 = c.Values("serve.request.latency.p95_ms")
	if p95[2] != 0 {
		t.Fatalf("idle p95 = %v, want 0", p95[2])
	}
}

func TestRingBoundsMemory(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newClock()
	c := newCollector(reg, clk, 4)
	cnt := reg.Counter("x")

	for i := 0; i < 10; i++ {
		cnt.Inc()
		c.SampleNow()
		clk.advance(5 * time.Second)
	}
	vals := c.Values("x")
	if len(vals) != 4 {
		t.Fatalf("retained %d samples, want capacity 4", len(vals))
	}
	// Oldest retained sample is round 7 (value 7), newest round 10.
	want := []float64{7, 8, 9, 10}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("values = %v, want %v", vals, want)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newClock()
	c := newCollector(reg, clk, 8)
	reg.Counter("b.count").Add(2)
	reg.Counter("a.count").Add(1)
	reg.Gauge("m.gauge").Set(5)
	reg.Histogram("h.lat").Observe(time.Millisecond)
	c.SampleNow()

	s1, s2 := c.Snapshot(), c.Snapshot()
	var b1, b2 bytes.Buffer
	if err := s1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\n%s", b1.String(), b2.String())
	}
	if s1.Schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", s1.Schema, SchemaVersion)
	}
	// Series sorted by name.
	for i := 1; i < len(s1.Series); i++ {
		if s1.Series[i-1].Name >= s1.Series[i].Name {
			t.Fatalf("series not sorted: %q before %q", s1.Series[i-1].Name, s1.Series[i].Name)
		}
	}
	if s1.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", s1.Rounds)
	}
}

func TestSampleIfStale(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newClock()
	c := newCollector(reg, clk, 8)
	reg.Counter("x").Inc()

	c.SampleIfStale() // no samples yet: must sample
	if got := c.Snapshot().Rounds; got != 1 {
		t.Fatalf("rounds = %d, want 1", got)
	}
	c.SampleIfStale() // fresh: must not
	if got := c.Snapshot().Rounds; got != 1 {
		t.Fatalf("rounds = %d after fresh re-check, want 1", got)
	}
	clk.advance(6 * time.Second)
	c.SampleIfStale() // stale: must sample
	if got := c.Snapshot().Rounds; got != 2 {
		t.Fatalf("rounds = %d after staleness, want 2", got)
	}
}

func TestStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x").Inc()
	c := New(reg, Options{Interval: time.Hour, Capacity: 4})
	c.Start()
	defer c.Stop()
	// Start samples synchronously once before launching the ticker.
	if got := c.Snapshot().Rounds; got != 1 {
		t.Fatalf("rounds after Start = %d, want 1", got)
	}
	c.Stop()
	c.Stop() // idempotent
}

func TestLast(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newClock()
	c := newCollector(reg, clk, 4)
	if _, ok := c.Last("missing"); ok {
		t.Fatal("Last on missing series returned ok")
	}
	reg.Gauge("g").Set(42)
	c.SampleNow()
	s, ok := c.Last("g")
	if !ok || s.V != 42 {
		t.Fatalf("Last = %+v ok=%v, want V=42", s, ok)
	}
}

func TestSpark(t *testing.T) {
	if got := Spark(nil); got != "" {
		t.Fatalf("Spark(nil) = %q, want empty", got)
	}
	if got := Spark([]float64{0, 0, 0}); got != "▁▁▁" {
		t.Fatalf("Spark(zeros) = %q, want ▁▁▁", got)
	}
	got := Spark([]float64{0, 1, 2, 4})
	if len([]rune(got)) != 4 {
		t.Fatalf("Spark length = %d, want 4", len([]rune(got)))
	}
	if []rune(got)[3] != '█' {
		t.Fatalf("max value should render █, got %q", got)
	}
	if []rune(got)[0] != '▁' {
		t.Fatalf("zero should render ▁, got %q", got)
	}
}

func TestTail(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if got := Tail(v, 3); len(got) != 3 || got[0] != 3 {
		t.Fatalf("Tail = %v, want [3 4 5]", got)
	}
	if got := Tail(v, 10); len(got) != 5 {
		t.Fatalf("Tail beyond length = %v, want all", got)
	}
	if got := Tail(v, 0); len(got) != 5 {
		t.Fatalf("Tail(0) = %v, want all", got)
	}
}
