// Package timeseries is the over-time layer of the observability
// stack: where an obs.Registry snapshot answers "what are the totals
// right now", a timeseries.Collector answers "what happened over the
// last half hour". It samples a registry at a fixed interval into
// bounded ring-buffer series — one per counter and gauge, plus derived
// count/quantile series per histogram — and encodes deterministic
// snapshots under the thistle-timeseries-v1 schema, which thistled
// serves as the /varz endpoint and cmd/tlmon renders live.
//
// Memory is strictly bounded: every series keeps at most Capacity
// samples (a ring), and the set of series is bounded by the registry's
// metric set. Derivations happen at sample time, not query time:
//
//   - counters carry their cumulative value plus a per-second rate
//     against the previous sample;
//   - histograms spawn "<name>.count" (a counter series whose rate is
//     the operation throughput) and "<name>.p50_ms" / ".p95_ms" /
//     ".p99_ms" window series holding the quantiles of only the
//     observations that landed in that sampling interval (cumulative
//     bucket deltas), so a latency spike is visible the interval it
//     happens instead of being averaged into the run's lifetime.
package timeseries

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// SchemaVersion tags /varz snapshots; consumers (cmd/tlmon) reject
// other schemas instead of misreading them.
const SchemaVersion = "thistle-timeseries-v1"

// Series kinds. A counter sample carries the cumulative value and a
// derived per-second rate; a gauge sample is the instantaneous value; a
// window sample is a value derived from only that sampling interval
// (histogram quantiles of the interval's observations).
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindWindow  = "window"
)

// Options sizes a Collector. Zero values select defaults.
type Options struct {
	// Interval is the sampling cadence (0: 5s). It is also the
	// staleness bound SampleIfStale applies.
	Interval time.Duration
	// Capacity bounds samples retained per series (0: 360 — half an
	// hour at the default interval).
	Capacity int
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.Capacity <= 0 {
		o.Capacity = 360
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Sample is one point of a series. T is unix milliseconds; V is the
// sampled value (cumulative for counters, instantaneous for gauges,
// interval-derived for window series). Rate is the per-second delta
// against the previous sample, set only on counter-kind series.
type Sample struct {
	T    int64   `json:"t"`
	V    float64 `json:"v"`
	Rate float64 `json:"rate,omitempty"`
}

// Series is one named metric's retained history, oldest sample first.
type Series struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Samples []Sample `json:"samples"`
}

// Snapshot is a deterministic point-in-time encoding of every series:
// series sorted by name, samples in chronological order, so two
// snapshots of identical collector states JSON-encode byte-identically.
type Snapshot struct {
	Schema     string   `json:"schema"`
	NowUnixMS  int64    `json:"now_unix_ms"`
	IntervalMS int64    `json:"interval_ms"`
	Capacity   int      `json:"capacity"`
	Rounds     int64    `json:"rounds"`
	Series     []Series `json:"series,omitempty"`
}

// WriteJSON writes the snapshot as indented JSON (the /varz page body).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ring is one series' bounded sample buffer.
type ring struct {
	kind string
	buf  []Sample
	head int // next write position
	n    int // samples held (≤ len(buf))
}

func (r *ring) push(s Sample) {
	r.buf[r.head] = s
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// ordered returns the samples oldest-first.
func (r *ring) ordered() []Sample {
	out := make([]Sample, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

func (r *ring) last() (Sample, bool) {
	if r.n == 0 {
		return Sample{}, false
	}
	i := r.head - 1
	if i < 0 {
		i += len(r.buf)
	}
	return r.buf[i], true
}

// Collector samples an obs.Registry into bounded per-metric rings. All
// methods are safe for concurrent use; the background sampler (Start)
// and on-demand sampling (SampleIfStale, from /varz reads) share one
// lock, so rounds never interleave.
type Collector struct {
	reg *obs.Registry
	opt Options

	mu           sync.Mutex
	series       map[string]*ring              // guarded by mu
	prevCounters map[string]int64              // guarded by mu
	prevHists    map[string]obs.HistogramValue // guarded by mu
	lastSample   time.Time                     // guarded by mu
	rounds       int64                         // guarded by mu

	stop     chan struct{}
	stopOnce sync.Once
	started  bool
}

// New builds a collector over reg. It takes no sample and starts no
// goroutine; call Start for background sampling or SampleNow/
// SampleIfStale for explicit rounds.
func New(reg *obs.Registry, opt Options) *Collector {
	return &Collector{
		reg:          reg,
		opt:          opt.withDefaults(),
		series:       map[string]*ring{},
		prevCounters: map[string]int64{},
		prevHists:    map[string]obs.HistogramValue{},
		stop:         make(chan struct{}),
	}
}

// Interval returns the sampling cadence.
func (c *Collector) Interval() time.Duration { return c.opt.Interval }

// Start launches the background sampler: one round immediately, then
// one per interval until Stop. Calling Start twice is a no-op.
func (c *Collector) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.SampleNow()
	//tlvet:ignore goscheduler -- sampler loop: long-lived service goroutine, stopped by Collector.Stop closing c.stop
	go func() {
		t := time.NewTicker(c.opt.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.SampleNow()
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop halts the background sampler. Idempotent; safe without Start.
func (c *Collector) Stop() { c.stopOnce.Do(func() { close(c.stop) }) }

// SampleNow takes one sampling round: every counter, gauge, and
// histogram of the registry gains one sample (creating series on first
// sight).
func (c *Collector) SampleNow() {
	snap := c.reg.Snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	t := now.UnixMilli()
	dt := now.Sub(c.lastSample).Seconds()

	for _, cv := range snap.Counters {
		c.pushCounterLocked(cv.Name, t, float64(cv.Value), rate(float64(cv.Value), c.prevCounterValueLocked(cv.Name), dt))
		c.prevCounters[cv.Name] = cv.Value
	}
	for _, gv := range snap.Gauges {
		c.pushLocked(gv.Name, KindGauge, Sample{T: t, V: float64(gv.Value)})
	}
	for _, hv := range snap.Histograms {
		prev, seen := c.prevHists[hv.Name]
		cnt := float64(hv.Count)
		var prevCnt float64
		if seen {
			prevCnt = float64(prev.Count)
		}
		c.pushCounterLocked(hv.Name+".count", t, cnt, rate(cnt, prevCnt, dt))
		delta := subtractHistogram(hv, prev)
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{".p50_ms", 0.50}, {".p95_ms", 0.95}, {".p99_ms", 0.99}} {
			var ms float64
			if delta.Count > 0 {
				ms = float64(delta.Quantile(q.q)) / float64(time.Millisecond)
			}
			c.pushLocked(hv.Name+q.suffix, KindWindow, Sample{T: t, V: ms})
		}
		c.prevHists[hv.Name] = hv
	}
	c.lastSample = now
	c.rounds++
}

// prevCounterValueLocked reads the previous sample's counter value.
// Callers hold c.mu.
func (c *Collector) prevCounterValueLocked(name string) float64 {
	if v, ok := c.prevCounters[name]; ok {
		return float64(v)
	}
	return math.NaN() // first sight: no rate
}

// rate derives a per-second rate, 0 on the first sample of a series or
// a non-positive interval (clock skew), and never negative (registry
// counters are monotone; a reset would otherwise render as a spike).
func rate(cur, prev, dt float64) float64 {
	if math.IsNaN(prev) || dt <= 0 {
		return 0
	}
	r := (cur - prev) / dt
	if r < 0 {
		return 0
	}
	return r
}

// pushCounterLocked and pushLocked append one sample to a named series,
// creating the ring on first sight. Callers hold c.mu.
func (c *Collector) pushCounterLocked(name string, t int64, v, r float64) {
	c.pushLocked(name, KindCounter, Sample{T: t, V: v, Rate: r})
}

func (c *Collector) pushLocked(name, kind string, s Sample) {
	rg := c.series[name]
	if rg == nil {
		rg = &ring{kind: kind, buf: make([]Sample, c.opt.Capacity)}
		c.series[name] = rg
	}
	rg.push(s)
}

// SampleIfStale takes a round when no sample exists yet or the last one
// is at least one interval old. /varz calls it so a scrape is never
// staler than the cadence even when the background sampler is off.
func (c *Collector) SampleIfStale() {
	c.mu.Lock()
	stale := c.rounds == 0 || c.opt.Now().Sub(c.lastSample) >= c.opt.Interval
	c.mu.Unlock()
	if stale {
		c.SampleNow()
	}
}

// subtractHistogram returns the distribution of observations recorded
// between prev and cur (cumulative bucket deltas). prev may be the zero
// value (first sample: the whole histogram is the delta).
func subtractHistogram(cur, prev obs.HistogramValue) obs.HistogramValue {
	prevByLow := map[int64]int64{}
	for _, b := range prev.Buckets {
		prevByLow[b.LowUS] = b.Count
	}
	d := obs.HistogramValue{Name: cur.Name, Count: cur.Count - prev.Count, SumNS: cur.SumNS - prev.SumNS}
	if d.Count <= 0 {
		return obs.HistogramValue{Name: cur.Name}
	}
	for _, b := range cur.Buckets {
		if n := b.Count - prevByLow[b.LowUS]; n > 0 {
			d.Buckets = append(d.Buckets, obs.HistBucket{LowUS: b.LowUS, Count: n})
		}
	}
	return d
}

// Snapshot copies every series, sorted by name, oldest sample first.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Schema:     SchemaVersion,
		NowUnixMS:  c.opt.Now().UnixMilli(),
		IntervalMS: c.opt.Interval.Milliseconds(),
		Capacity:   c.opt.Capacity,
		Rounds:     c.rounds,
	}
	names := make([]string, 0, len(c.series))
	for name := range c.series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rg := c.series[name]
		s.Series = append(s.Series, Series{Name: name, Kind: rg.kind, Samples: rg.ordered()})
	}
	return s
}

// Last returns the newest sample of a series, false when the series
// does not exist or holds no samples yet.
func (c *Collector) Last(name string) (Sample, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rg := c.series[name]
	if rg == nil {
		return Sample{}, false
	}
	return rg.last()
}

// Values returns a series' sample values oldest-first (nil when absent).
func (c *Collector) Values(name string) []float64 {
	return c.extract(name, func(s Sample) float64 { return s.V })
}

// Rates returns a series' per-sample rates oldest-first (all zero for
// non-counter series).
func (c *Collector) Rates(name string) []float64 {
	return c.extract(name, func(s Sample) float64 { return s.Rate })
}

func (c *Collector) extract(name string, f func(Sample) float64) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	rg := c.series[name]
	if rg == nil {
		return nil
	}
	samples := rg.ordered()
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = f(s)
	}
	return out
}

// sparkLevels is the 8-level block ramp sparklines draw with.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a unicode sparkline, scaled to the slice's
// maximum. An empty slice renders empty; an all-zero (or negative)
// slice renders as the lowest level.
func Spark(values []float64) string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(values))
	for i, v := range values {
		lvl := 0
		if max > 0 && v > 0 {
			lvl = int(math.Round(v / max * float64(len(sparkLevels)-1)))
			if lvl < 0 {
				lvl = 0
			}
			if lvl >= len(sparkLevels) {
				lvl = len(sparkLevels) - 1
			}
		}
		out[i] = sparkLevels[lvl]
	}
	return string(out)
}

// Tail returns at most n trailing values (the newest), preserving
// order. Sparkline callers use it to fit a fixed display width.
func Tail(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		return values
	}
	return values[len(values)-n:]
}
