package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-format (0.0.4) payload
// against the exposition grammar: metric and label name charsets,
// HELP-before-TYPE-before-samples ordering per family, no duplicate
// declarations or samples, histogram `le` labels present and strictly
// increasing with cumulative non-decreasing counts and the `+Inf`
// bucket equal to `_count`, and every sample attributable to a declared
// family. It is the guard the /metrics tests run so a bad metric name
// can never ship.
func ValidateExposition(r io.Reader) error {
	v := &expoValidator{
		families: map[string]*expoFamily{},
		seen:     map[string]bool{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if err := v.line(line); err != nil {
			return fmt.Errorf("line %d: %w: %q", lineno, err, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return v.finish()
}

type expoFamily struct {
	typ     string
	hasHelp bool
	samples int
	closed  bool // a later family started; more samples are an interleave error

	// histogram state
	lastLE   float64
	lastCum  float64
	infCum   float64
	hasInf   bool
	count    float64
	hasCount bool
}

type expoValidator struct {
	families map[string]*expoFamily
	seen     map[string]bool // exact sample identity (name+labels)
	current  string          // family currently being emitted
}

func (v *expoValidator) line(line string) error {
	switch {
	case strings.TrimSpace(line) == "":
		return nil
	case strings.HasPrefix(line, "# HELP "):
		return v.help(line)
	case strings.HasPrefix(line, "# TYPE "):
		return v.typ(line)
	case strings.HasPrefix(line, "#"):
		return nil // free-form comment
	default:
		return v.sample(line)
	}
}

func (v *expoValidator) help(line string) error {
	rest := strings.TrimPrefix(line, "# HELP ")
	name, _, ok := strings.Cut(rest, " ")
	if !ok || name == "" {
		return fmt.Errorf("malformed HELP")
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	f := v.families[name]
	if f == nil {
		f = &expoFamily{}
		v.families[name] = f
	}
	if f.hasHelp {
		return fmt.Errorf("duplicate HELP for %s", name)
	}
	if f.typ != "" {
		return fmt.Errorf("HELP for %s after its TYPE", name)
	}
	if f.samples > 0 {
		return fmt.Errorf("HELP for %s after its samples", name)
	}
	f.hasHelp = true
	return nil
}

func (v *expoValidator) typ(line string) error {
	rest := strings.TrimPrefix(line, "# TYPE ")
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return fmt.Errorf("malformed TYPE")
	}
	name, t := fields[0], fields[1]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	switch t {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("unknown type %q", t)
	}
	f := v.families[name]
	if f == nil {
		f = &expoFamily{}
		v.families[name] = f
	}
	if f.typ != "" {
		return fmt.Errorf("duplicate TYPE for %s", name)
	}
	if f.samples > 0 {
		return fmt.Errorf("TYPE for %s after its samples", name)
	}
	f.typ = t
	v.startFamily(name, f)
	return nil
}

// startFamily closes the previously-current family: once another family
// starts emitting, interleaved samples are a grammar violation.
func (v *expoValidator) startFamily(name string, f *expoFamily) {
	if v.current != "" && v.current != name {
		if prev := v.families[v.current]; prev != nil {
			prev.closed = true
		}
	}
	v.current = name
}

func (v *expoValidator) sample(line string) error {
	name, labels, value, err := parseSampleLine(line)
	if err != nil {
		return err
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	famName, role := v.resolveFamily(name)
	f := v.families[famName]
	if f == nil || f.typ == "" {
		return fmt.Errorf("sample for %s without a TYPE declaration", name)
	}
	if f.closed {
		return fmt.Errorf("sample for %s interleaved after another family started", name)
	}
	v.startFamily(famName, f)
	f.samples++

	id := name + "{" + labels + "}"
	if v.seen[id] {
		return fmt.Errorf("duplicate sample %s", id)
	}
	v.seen[id] = true

	le, hasLE, err := checkLabels(labels)
	if err != nil {
		return err
	}

	switch role {
	case "bucket":
		if f.typ != "histogram" {
			return fmt.Errorf("_bucket sample on non-histogram family %s", famName)
		}
		if !hasLE {
			return fmt.Errorf("histogram bucket without le label")
		}
		if value < f.lastCum {
			return fmt.Errorf("bucket counts not cumulative for %s (%g after %g)", famName, value, f.lastCum)
		}
		if le == "+Inf" {
			f.hasInf = true
			f.infCum = value
		} else {
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("unparseable le %q", le)
			}
			if b <= f.lastLE && f.lastLE != 0 {
				return fmt.Errorf("le bounds not increasing for %s (%g after %g)", famName, b, f.lastLE)
			}
			f.lastLE = b
		}
		f.lastCum = value
	case "count":
		if f.typ == "histogram" || f.typ == "summary" {
			f.count = value
			f.hasCount = true
		}
	case "sum":
		// value may be any float
	default:
		if f.typ == "histogram" {
			return fmt.Errorf("bare sample %s on histogram family", name)
		}
	}
	return nil
}

// resolveFamily maps a sample name onto its declaring family: exact
// match, or base+_bucket/_sum/_count for histogram/summary series.
func (v *expoValidator) resolveFamily(name string) (family, role string) {
	if f, ok := v.families[name]; ok && f.typ != "" && f.typ != "histogram" && f.typ != "summary" {
		return name, ""
	}
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := v.families[base]; f != nil && (f.typ == "histogram" || f.typ == "summary") {
				return base, strings.TrimPrefix(suf, "_")
			}
		}
	}
	return name, ""
}

func (v *expoValidator) finish() error {
	for name, f := range v.families {
		if f.typ == "" {
			return fmt.Errorf("HELP for %s without a TYPE", name)
		}
		if f.samples == 0 {
			return fmt.Errorf("family %s declared but has no samples", name)
		}
		if f.typ == "histogram" {
			if !f.hasInf {
				return fmt.Errorf("histogram %s missing +Inf bucket", name)
			}
			if !f.hasCount {
				return fmt.Errorf("histogram %s missing _count", name)
			}
			if f.infCum != f.count {
				return fmt.Errorf("histogram %s +Inf bucket (%g) != _count (%g)", name, f.infCum, f.count)
			}
		}
	}
	return nil
}

// parseSampleLine splits `name{labels} value [timestamp]`.
func parseSampleLine(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced label braces")
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", "", 0, fmt.Errorf("sample line without a value")
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("expected value [timestamp]")
	}
	value, err = parseSampleValue(fields[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, tsErr := strconv.ParseInt(fields[1], 10, 64); tsErr != nil {
			return "", "", 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkLabels validates `k="v",...` syntax and returns the `le` value
// when present.
func checkLabels(labels string) (le string, hasLE bool, err error) {
	s := labels
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return "", false, fmt.Errorf("label without '=' in %q", labels)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return "", false, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return "", false, fmt.Errorf("label value for %q not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return "", false, fmt.Errorf("dangling escape in label %q", name)
				}
				i++
				switch s[i] {
				case '\\', '"':
					val.WriteByte(s[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return "", false, fmt.Errorf("bad escape \\%c in label %q", s[i], name)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return "", false, fmt.Errorf("unterminated label value for %q", name)
		}
		if name == "le" {
			le, hasLE = val.String(), true
		}
		s = strings.TrimPrefix(s, ",")
	}
	return le, hasLE, nil
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
