package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Counter is a monotonically increasing int64. A nil *Counter is a
// valid disabled counter: Inc/Add cost one nil check.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n should be non-negative).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (e.g. a worker's progress). Nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of duration buckets. Bucket i covers
// [2^i, 2^(i+1)) microseconds; bucket 0 also absorbs sub-microsecond
// observations and the last bucket is open-ended (~1.2h and beyond
// land in bucket 31, whose lower bound is 2^31 us ≈ 36 min).
const histBuckets = 32

// Histogram counts durations in fixed log-scale (power-of-two
// microsecond) buckets, plus a total count and sum. Nil-safe.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	i := bits.Len64(uint64(us)) - 1 // floor(log2(us))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketLowerBound returns the inclusive lower bound of bucket i.
func BucketLowerBound(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	return time.Duration(int64(1)<<uint(i)) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// Registry holds named metrics. Lookup is mutex-guarded; hot loops
// should hoist the returned handle and hit only the atomic ops. A nil
// *Registry hands out nil (disabled) handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricValue is one counter or gauge in a snapshot.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistBucket is one non-empty histogram bucket in a snapshot.
type HistBucket struct {
	// LowUS is the bucket's inclusive lower bound in microseconds.
	LowUS int64 `json:"low_us"`
	Count int64 `json:"count"`
}

// HistogramValue is one histogram in a snapshot. P50NS, P95NS, and
// P99NS are quantile estimates derived from the log-scale buckets at
// snapshot time (see Quantile); they are carried in the JSON so run
// manifests record latency distributions, not just totals.
type HistogramValue struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	P50NS   int64        `json:"p50_ns,omitempty"`
	P95NS   int64        `json:"p95_ns,omitempty"`
	P99NS   int64        `json:"p99_ns,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Sum returns the total observed duration.
func (h HistogramValue) Sum() time.Duration { return time.Duration(h.SumNS) }

// Mean returns the mean observed duration (0 when empty).
func (h HistogramValue) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNS / h.Count)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket
// counts: the target rank's bucket is located by cumulative count and
// the position within it interpolated linearly between the bucket's
// bounds. The estimate is exact to within one power-of-two bucket and
// deterministic for a given snapshot.
func (h HistogramValue) Quantile(q float64) time.Duration {
	if h.Count == 0 || len(h.Buckets) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for _, b := range h.Buckets {
		cum += float64(b.Count)
		if cum >= rank {
			lo := float64(b.LowUS)
			hi := 2 * lo
			if b.LowUS == 0 {
				// Bucket 0 covers [0, 2us): sub-microsecond observations
				// and the 1us bucket share it.
				hi = 2
			}
			// Fraction of this bucket's observations at or below the rank.
			frac := 1 - (cum-rank)/float64(b.Count)
			us := lo + frac*(hi-lo)
			return time.Duration(us * float64(time.Microsecond))
		}
	}
	hi := 2 * h.Buckets[len(h.Buckets)-1].LowUS
	if hi == 0 {
		hi = 2
	}
	return time.Duration(hi) * time.Microsecond
}

// Snapshot is a point-in-time copy of every metric. Every section is
// sorted by metric name and histogram buckets are in ascending bound
// order, so two snapshots of identical registries render — and JSON-
// encode — byte-identically (manifest diffs stay stable).
type Snapshot struct {
	Counters   []MetricValue    `json:"counters,omitempty"`
	Gauges     []MetricValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Values written concurrently with the
// snapshot may or may not be included (each metric is read atomically).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{Name: name, Count: h.count.Load(), SumNS: h.sumNS.Load()}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hv.Buckets = append(hv.Buckets, HistBucket{
					LowUS: BucketLowerBound(i).Microseconds(), Count: n,
				})
			}
		}
		hv.P50NS = int64(hv.Quantile(0.50))
		hv.P95NS = int64(hv.Quantile(0.95))
		hv.P99NS = int64(hv.Quantile(0.99))
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteTable renders the snapshot as an aligned text table.
func (s Snapshot) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tvalue")
	for _, c := range s.Counters {
		fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(tw, "%s\t%d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(tw, "%s\tcount %d, total %s, mean %s, p50 %s, p95 %s, p99 %s\n",
			h.Name, h.Count, h.Sum().Round(time.Microsecond), h.Mean().Round(time.Microsecond),
			time.Duration(h.P50NS).Round(time.Microsecond),
			time.Duration(h.P95NS).Round(time.Microsecond),
			time.Duration(h.P99NS).Round(time.Microsecond))
	}
	return tw.Flush()
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
