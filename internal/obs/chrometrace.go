package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeTraceSchema tags the Chrome trace-event files this package
// writes (carried in otherData.schema), gating decode exactly like the
// event-stream and manifest schemas.
const ChromeTraceSchema = "thistle-trace-v1"

// ChromeEvent is one entry of a Chrome trace-event JSON file (the
// format chrome://tracing and Perfetto load). The writer emits complete
// events (Ph "X") for spans and metadata events (Ph "M") for process
// and lane names.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds since trace epoch
	Dur  int64          `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTraceFile is the top-level object of a Chrome trace-event JSON
// file ("JSON object format"). OtherData carries the trace identity:
// schema, trace_id, and whatever run metadata the caller supplied
// (tool, run_id, git_rev).
type ChromeTraceFile struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// chromeSpan is one span flattened for serialization: bounds clamped
// into the parent, canonical IDs assigned in sorted preorder.
type chromeSpan struct {
	info       *SpanInfo
	id, parent int64
	depth      int
	start, end int64
	lane       int64
	unfinished bool
}

// WriteChromeTrace serializes the span forest as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing. meta entries are
// merged into otherData next to the schema tag and trace ID.
//
// The serialization is canonical: siblings are sorted by (start,
// duration, name, attrs) and span IDs are assigned in preorder over the
// sorted forest, so two runs that produced the same spans at the same
// (possibly fake) timestamps serialize byte-identically regardless of
// goroutine scheduling. Each event's args carry the canonical span_id
// and parent_id, which is how tlreport trace rebuilds the hierarchy.
//
// Chrome's viewer requires the events of one pid/tid to nest strictly
// by containment, which raw spans can violate two ways: a child that
// outlives its parent (ended after the parent's End — legal at the API
// level), and genuinely concurrent siblings. The writer clamps escaping
// children into their parent's bounds — returning the clamp count so
// callers can surface it as the obs.trace.clamped metric instead of
// emitting malformed JSON — and lane-assigns overlapping spans to
// separate tids so concurrency renders as parallel rows. Unfinished
// spans are extended to their parent's end (or the forest's last end)
// and marked args.unfinished.
func (t *Tracer) WriteChromeTrace(w io.Writer, meta map[string]string) (clamped int, err error) {
	forest := t.Tree()
	spans, clamped := flattenForest(forest)

	other := map[string]string{"schema": ChromeTraceSchema}
	if id := t.TraceID(); id != "" {
		other["trace_id"] = id
	}
	for k, v := range meta {
		if v != "" {
			other[k] = v
		}
	}
	if clamped > 0 {
		other["clamped_spans"] = fmt.Sprint(clamped)
	}

	lanes := assignLanes(spans)
	file := ChromeTraceFile{
		TraceEvents:     make([]ChromeEvent, 0, len(spans)+lanes+1),
		DisplayTimeUnit: "ms",
		OtherData:       other,
	}
	file.TraceEvents = append(file.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "thistle"},
	})
	for lane := 0; lane < lanes; lane++ {
		file.TraceEvents = append(file.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: int64(lane),
			Args: map[string]any{"name": fmt.Sprintf("lane %d", lane)},
		})
	}
	for _, cs := range spans {
		args := make(map[string]any, len(cs.info.Attrs)+3)
		for k, v := range cs.info.Attrs {
			args[k] = v
		}
		args["span_id"] = cs.id
		if cs.parent != 0 {
			args["parent_id"] = cs.parent
		}
		if cs.unfinished {
			args["unfinished"] = true
		}
		file.TraceEvents = append(file.TraceEvents, ChromeEvent{
			Name: cs.info.Name,
			Cat:  "thistle",
			Ph:   "X",
			TS:   cs.start,
			Dur:  cs.end - cs.start,
			PID:  1,
			TID:  cs.lane,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return clamped, enc.Encode(file)
}

// flattenForest sorts the forest canonically, clamps every span into
// its parent's bounds, resolves unfinished spans, and assigns preorder
// IDs. Returns the flattened spans in preorder and the clamp count.
func flattenForest(forest []SpanInfo) ([]*chromeSpan, int) {
	// Forest-wide last end bounds unfinished root spans.
	var maxEnd int64
	var scan func(si *SpanInfo)
	scan = func(si *SpanInfo) {
		if si.DurUS >= 0 && si.StartUS+si.DurUS > maxEnd {
			maxEnd = si.StartUS + si.DurUS
		}
		for i := range si.Children {
			scan(&si.Children[i])
		}
	}
	for i := range forest {
		scan(&forest[i])
	}

	var out []*chromeSpan
	clamped := 0
	nextID := int64(0)
	var walk func(si *SpanInfo, parent *chromeSpan, depth int)
	walk = func(si *SpanInfo, parent *chromeSpan, depth int) {
		cs := &chromeSpan{info: si, depth: depth, start: si.StartUS}
		switch {
		case si.DurUS >= 0:
			cs.end = si.StartUS + si.DurUS
		case parent != nil:
			cs.end = parent.end
			cs.unfinished = true
		default:
			cs.end = maxEnd
			cs.unfinished = true
		}
		if parent != nil {
			// Clamp into the parent: a child that started before or ended
			// after its parent (out-of-order End calls) must not escape the
			// parent's slice, or the containment-based nesting of the
			// Chrome format breaks.
			was := *cs
			if cs.start < parent.start {
				cs.start = parent.start
			}
			if cs.end > parent.end {
				cs.end = parent.end
			}
			if cs.start > cs.end {
				cs.start = cs.end
			}
			if !cs.unfinished && (cs.start != was.start || cs.end != was.end) {
				clamped++
			}
			cs.parent = parent.id
		}
		nextID++
		cs.id = nextID
		out = append(out, cs)
		sortSiblings(si.Children)
		for i := range si.Children {
			walk(&si.Children[i], cs, depth+1)
		}
	}
	sortSiblings(forest)
	for i := range forest {
		walk(&forest[i], nil, 0)
	}
	return out, clamped
}

// sortSiblings orders spans canonically: by start, then duration, then
// name, then serialized attributes. The runtime creation ID is excluded
// on purpose — it depends on goroutine scheduling, and the canonical
// order must not.
func sortSiblings(spans []SpanInfo) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		if a.DurUS != b.DurUS {
			return a.DurUS < b.DurUS
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return attrKey(a.Attrs) < attrKey(b.Attrs)
	})
}

// attrKey serializes an attribute map into a stable comparison key
// (encoding/json sorts map keys).
func attrKey(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	b, err := json.Marshal(attrs)
	if err != nil {
		return fmt.Sprint(attrs)
	}
	return string(b)
}

// laneState tracks the open-interval stack of one tid during the
// placement sweep. Intervals on a lane always form a laminar family, so
// the Chrome viewer's containment nesting is well defined.
type laneState struct {
	open []*chromeSpan // ancestors-only stack, innermost last
}

// assignLanes places every span on a tid such that intervals sharing a
// tid are pairwise nested or disjoint: spans are swept in (start,
// depth, preorder) order; a span nests on its parent's lane when the
// parent is that lane's innermost open interval, reuses any fully
// drained lane otherwise, and opens a new lane as a last resort (i.e.
// exactly when it genuinely overlaps concurrent work). Returns the
// number of lanes used; each span's lane is stored on the span.
func assignLanes(spans []*chromeSpan) int {
	order := make([]*chromeSpan, len(spans))
	copy(order, spans)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.id < b.id
	})
	byID := make(map[int64]*chromeSpan, len(spans))
	for _, cs := range spans {
		byID[cs.id] = cs
	}
	var lanes []*laneState
	drain := func(l *laneState, now int64) {
		for len(l.open) > 0 {
			top := l.open[len(l.open)-1]
			if top.end > now || (top.end == now && top.start == now) {
				// Still open; zero-length spans at `now` stay so that a
				// same-timestamp child can nest under them.
				return
			}
			l.open = l.open[:len(l.open)-1]
		}
	}
	for _, cs := range order {
		placed := false
		if p := byID[cs.parent]; p != nil {
			l := lanes[p.lane]
			drain(l, cs.start)
			if len(l.open) > 0 && l.open[len(l.open)-1] == p {
				l.open = append(l.open, cs)
				cs.lane = p.lane
				placed = true
			}
		}
		if !placed {
			for li, l := range lanes {
				drain(l, cs.start)
				if len(l.open) == 0 {
					l.open = append(l.open, cs)
					cs.lane = int64(li)
					placed = true
					break
				}
			}
		}
		if !placed {
			lanes = append(lanes, &laneState{open: []*chromeSpan{cs}})
			cs.lane = int64(len(lanes) - 1)
		}
	}
	return len(lanes)
}
