package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags bundles the standard observability command-line flags shared by
// every CLI of the reproduction (-v, -trace, -trace-out, -metrics,
// -metrics-json, -cpuprofile, -memprofile). Typical use:
//
//	var of obs.Flags
//	of.Register(flag.CommandLine)
//	flag.Parse()
//	o, err := of.Setup(os.Stderr)   // o may be nil: telemetry disabled
//	defer of.Close()
//	... run, threading o through ...
//	return of.Finish(os.Stdout)     // writes trace/metrics/profiles
type Flags struct {
	Verbosity   string
	TraceFile   string
	TraceOut    string
	Metrics     bool
	MetricsJSON string
	CPUProfile  string
	MemProfile  string

	// TraceMeta is merged into the Chrome trace file's otherData
	// (tool name, git rev, run ID). Callers populate it between Setup
	// and Finish; cliutil does this automatically.
	TraceMeta map[string]string

	obs     *Obs
	cpuFile *os.File
	// Output files are created eagerly in Setup so a bad path fails
	// before the run instead of after it; Finish fills them in.
	memFile     *os.File
	traceOut    *os.File
	chromeOut   *os.File
	metricsFile *os.File
}

// Register installs the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Verbosity, "v", "off", "log verbosity: off | warn | info | debug | trace")
	fs.StringVar(&f.TraceFile, "trace", "", "write the span trace tree as JSON to this file")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the span forest as Chrome trace-event JSON (Perfetto-loadable) to this file")
	fs.BoolVar(&f.Metrics, "metrics", false, "print a metrics snapshot table on exit")
	fs.StringVar(&f.MetricsJSON, "metrics-json", "", "write the metrics snapshot as JSON to this file")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile (runtime/pprof) to this file")
}

// Setup builds the Obs bundle selected by the flags (logging to logw)
// and starts CPU profiling if requested. It returns nil when every
// telemetry feature is off, which is the zero-overhead fast path.
func (f *Flags) Setup(logw io.Writer) (*Obs, error) {
	lvl, err := ParseLevel(f.Verbosity)
	if err != nil {
		return nil, err
	}
	var o Obs
	if lvl != Off {
		o.Log = NewLogger(logw, lvl)
	}
	if f.TraceFile != "" || f.TraceOut != "" {
		o.Tracer = NewTracer()
	}
	if f.Metrics || f.MetricsJSON != "" {
		o.Metrics = NewRegistry()
	}
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			_ = cf.Close()
			return nil, err
		}
		f.cpuFile = cf
	}
	// Create the remaining output files up front: a typo'd path should
	// fail now, not after the (possibly long) run.
	for _, out := range []struct {
		path string
		dst  **os.File
	}{
		{f.MemProfile, &f.memFile},
		{f.TraceFile, &f.traceOut},
		{f.TraceOut, &f.chromeOut},
		{f.MetricsJSON, &f.metricsFile},
	} {
		if out.path == "" {
			continue
		}
		file, err := os.Create(out.path)
		if err != nil {
			f.Close()
			return nil, err
		}
		*out.dst = file
	}
	if o.Log == nil && o.Tracer == nil && o.Metrics == nil {
		return nil, nil
	}
	f.obs = &o
	return f.obs, nil
}

// Close stops CPU profiling if it is still running and closes any
// output files Finish has not consumed. Safe to call multiple times
// (e.g. deferred alongside an explicit Finish).
func (f *Flags) Close() {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		_ = f.cpuFile.Close()
		f.cpuFile = nil
	}
	for _, file := range []**os.File{&f.memFile, &f.traceOut, &f.chromeOut, &f.metricsFile} {
		if *file != nil {
			_ = (*file).Close()
			*file = nil
		}
	}
}

// Finish writes every requested artifact: stops the CPU profile, dumps
// the heap profile, writes the trace JSON, prints the metrics table to
// metricsOut, and writes the metrics JSON.
func (f *Flags) Finish(metricsOut io.Writer) error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		cf := f.cpuFile
		f.cpuFile = nil
		if err := cf.Close(); err != nil {
			return err
		}
	}
	if mf := f.memFile; mf != nil {
		f.memFile = nil
		runtime.GC() // materialize up-to-date allocation stats
		err := pprof.WriteHeapProfile(mf)
		if cerr := mf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if tf := f.traceOut; tf != nil && f.obs != nil && f.obs.Tracer != nil {
		f.traceOut = nil
		err := f.obs.Tracer.WriteJSON(tf)
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	// The Chrome trace is written before the metrics snapshot so any
	// clamped spans it counts land in the obs.trace.clamped metric of
	// this run's table/JSON rather than vanishing.
	if cf := f.chromeOut; cf != nil && f.obs != nil && f.obs.Tracer != nil {
		f.chromeOut = nil
		clamped, err := f.obs.Tracer.WriteChromeTrace(cf, f.TraceMeta)
		if clamped > 0 {
			f.obs.Metrics.Counter("obs.trace.clamped").Add(int64(clamped))
		}
		if cerr := cf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if f.obs != nil && f.obs.Metrics != nil {
		snap := f.obs.Metrics.Snapshot()
		if f.Metrics {
			fmt.Fprintln(metricsOut, "--- metrics ---")
			if err := snap.WriteTable(metricsOut); err != nil {
				return err
			}
		}
		if mf := f.metricsFile; mf != nil {
			f.metricsFile = nil
			err := snap.WriteJSON(mf)
			if cerr := mf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
	}
	f.Close()
	return nil
}
