package events

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/obs"
)

// Flags bundles the run-record command-line flags shared by every CLI
// of the reproduction (-events, -manifest, -status-addr). Typical use,
// after obs.Flags has produced the (possibly nil) telemetry bundle:
//
//	var ef events.Flags
//	ef.Register(flag.CommandLine)
//	flag.Parse()
//	o, err := ef.Setup(o, "thistle", os.Args[1:], os.Stderr)
//	defer ef.Close()
//	... run, threading o through ...
//	return ef.Finish(cacheStats) // run_end event + manifest write
//
// Setup upgrades a nil Obs to one carrying the event sink, so run
// records work even with all other telemetry off.
type Flags struct {
	EventsPath   string
	ManifestPath string
	StatusAddr   string

	obs   *obs.Obs
	em    *Emitter
	rec   *Recorder
	srv   *StatusServer
	warnw io.Writer
	done  bool
}

// Register installs the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.EventsPath, "events", "", "write the structured run-event stream as JSONL to this file")
	fs.StringVar(&f.ManifestPath, "manifest", "", "write the run manifest (per-layer results, totals, metrics) as JSON to this file")
	fs.StringVar(&f.StatusAddr, "status-addr", "", "serve live /statusz progress and Prometheus /metrics on this address during the run")
}

// On reports whether any run-record feature was requested.
func (f *Flags) On() bool {
	return f.EventsPath != "" || f.ManifestPath != "" || f.StatusAddr != ""
}

// Setup wires the requested sinks into o (allocating an Obs when o is
// nil and something was requested), emits run_start, and starts the
// status server. A manifest or status request auto-attaches a metrics
// registry so the manifest's metrics snapshot and /metrics are never
// empty. warnw receives non-fatal notices (nil discards them).
func (f *Flags) Setup(o *obs.Obs, tool string, args []string, warnw io.Writer) (*obs.Obs, error) {
	if !f.On() {
		return o, nil
	}
	if warnw == nil {
		warnw = io.Discard
	}
	f.warnw = warnw
	if o == nil {
		o = &obs.Obs{}
	}
	if o.Metrics == nil && (f.ManifestPath != "" || f.StatusAddr != "") {
		o.Metrics = obs.NewRegistry()
	}
	f.rec = NewRecorder(tool, args)
	if f.EventsPath != "" {
		em, err := Create(f.EventsPath)
		if err != nil {
			return nil, err
		}
		f.em = em
	}
	if f.em != nil {
		o.Events = Multi(f.em, f.rec)
	} else {
		o.Events = f.rec
	}
	f.obs = o
	o.Emit(EvRunStart, f.rec.StartFields())
	if f.StatusAddr != "" {
		srv, err := StartStatusServer(f.StatusAddr, o.Metrics, f.rec)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.srv = srv
		fmt.Fprintf(warnw, "status: serving /statusz and /metrics on http://%s\n", srv.Addr())
	}
	return o, nil
}

// Recorder exposes the manifest recorder (nil before Setup or when no
// run-record flag was given).
func (f *Flags) Recorder() *Recorder { return f.rec }

// Finish completes the run record: emits run_end, writes the manifest
// atomically, flushes and closes the event stream, and stops the status
// server. cacheStats may be nil. Safe to call when no flag was set.
func (f *Flags) Finish(cacheStats *CacheStats) error {
	if f.rec == nil || f.done {
		return nil
	}
	f.done = true
	var snap *obs.Snapshot
	if f.obs != nil && f.obs.Metrics != nil {
		s := f.obs.Metrics.Snapshot()
		snap = &s
	}
	man := f.rec.Finish(cacheStats, snap)
	f.obs.Emit(EvRunEnd, man.EndFields())
	var firstErr error
	if f.ManifestPath != "" {
		if err := WriteManifest(f.ManifestPath, man); err != nil {
			firstErr = err
		}
	}
	if err := f.closeSinks(); firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close releases resources without writing the manifest (for error
// paths); idempotent alongside Finish.
func (f *Flags) Close() {
	_ = f.closeSinks() // error path: the original failure is what matters
}

func (f *Flags) closeSinks() error {
	var firstErr error
	if f.em != nil {
		if err := f.em.Close(); err != nil {
			firstErr = err
		}
		f.em = nil
	}
	if f.srv != nil {
		if err := f.srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		f.srv = nil
	}
	return firstErr
}
