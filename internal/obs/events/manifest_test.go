package events

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleManifest(runID string, edp float64) *Manifest {
	return &Manifest{
		Schema:    ManifestSchema,
		RunID:     runID,
		Tool:      "test",
		GoVersion: "go",
		StartTime: "2026-08-05T00:00:00Z",
		WallUS:    1000,
		Layers: []LayerResult{
			{Name: "l1", EnergyPJ: 10, Cycles: 20, EDP: edp},
			{Name: "l2", EnergyPJ: 30, Cycles: 40, EDP: 1200},
		},
		Totals: Totals{Layers: 2, EnergyPJ: 40, Cycles: 60, EDP: edp + 1200},
	}
}

func TestManifestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.manifest.json")
	m := sampleManifest("r1", 200)
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != "r1" || len(got.Layers) != 2 || got.Layers[0].EDP != 200 {
		t.Fatalf("round trip mangled the manifest: %+v", got)
	}
	// No temp files may survive a successful write.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("stray files after atomic write: %v", entries)
	}
}

func TestLoadManifestRejectsPartialFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.manifest.json")
	m := sampleManifest("r1", 200)
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write at the FINAL path (what atomic rename
	// prevents — but a reader must still survive encountering one).
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("partial manifest: got %v, want ErrCorruptManifest", err)
	}
	// LoadManifests must warn and skip it, not abort, when a healthy
	// manifest is also present.
	good := filepath.Join(dir, "good.manifest.json")
	if err := WriteManifest(good, sampleManifest("r2", 300)); err != nil {
		t.Fatal(err)
	}
	var warn strings.Builder
	ms, err := LoadManifests([]string{path, good}, &warn)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].RunID != "r2" {
		t.Fatalf("LoadManifests = %+v", ms)
	}
	if !strings.Contains(warn.String(), "ignoring") {
		t.Fatalf("expected a skip warning, got %q", warn.String())
	}
}

func TestLoadManifestRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte(`{"schema":"thistle-manifest-v0","run_id":"r"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("wrong schema: got %v, want ErrCorruptManifest", err)
	}
}

func TestRecorderBuildsManifest(t *testing.T) {
	rec := NewRecorder("test", []string{"-layer", "l1"})
	if rec.RunID() == "" {
		t.Fatal("empty run id")
	}
	rec.Emit(EvLayersTotal, map[string]any{"total": 3})
	rec.Emit(EvOptimizeStart, map[string]any{"problem": "l1"})
	rec.Emit(EvOptimizeEnd, map[string]any{
		"problem": "l1", "status": "ok", "sig": "abc123",
		"energy_pj": 10.0, "cycles": 20.0, "edp": 200.0,
		"pairs_solved": 85, "fresh_solves": 85, "wall_us": 42,
	})
	// Failed optimizes must not become rows.
	rec.Emit(EvOptimizeEnd, map[string]any{"problem": "bad", "status": "error"})
	rec.Emit(EvLayerReused, map[string]any{
		"problem": "l2", "from": "l1",
		"energy_pj": 10.0, "cycles": 20.0, "edp": 200.0,
	})
	rec.Emit(EvMapperEnd, map[string]any{
		"problem": "l1", "trials": 100, "energy_pj": 15.0, "cycles": 25.0, "edp": 375.0,
	})
	st := rec.Status()
	if st.Total != 3 || st.Done != 3 {
		t.Fatalf("status = %+v", st)
	}
	man := rec.Finish(&CacheStats{Hits: 1, Misses: 1, HitRate: 0.5}, nil)
	if len(man.Layers) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(man.Layers), man.Layers)
	}
	if man.Layers[0].Sig != "abc123" || man.Layers[0].PairsSolved != 85 {
		t.Fatalf("optimize row wrong: %+v", man.Layers[0])
	}
	if !man.Layers[1].Reused {
		t.Fatal("reused row not marked")
	}
	if man.Layers[2].Name != "l1/mapper" {
		t.Fatalf("mapper row name = %q", man.Layers[2].Name)
	}
	if man.Totals.Layers != 3 || man.Totals.EnergyPJ != 35 || man.Totals.EDP != 775 {
		t.Fatalf("totals = %+v", man.Totals)
	}
	if man.Cache == nil || man.Cache.HitRate != 0.5 {
		t.Fatalf("cache stats = %+v", man.Cache)
	}
	if man.Schema != ManifestSchema || man.WallUS <= 0 {
		t.Fatalf("manifest identity wrong: %+v", man)
	}
}
