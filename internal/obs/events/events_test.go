package events

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// emitLifecycle writes a minimal but complete stream through e.
func emitLifecycle(e *Emitter) {
	e.Emit(EvRunStart, map[string]any{
		"run_id": "r1", "tool": "test", "go_version": "go", "args": []string{"-x"},
	})
	e.Emit(EvOptimizeStart, map[string]any{"problem": "l1", "mode": "fixedarch"})
	e.Emit(EvCentering, map[string]any{"step": 1, "gap": 0.5, "newton": 7, "backtracks": 2})
	e.Emit(EvSolveEnd, map[string]any{"status": "optimal", "newton": 7, "centerings": 1})
	e.Emit(EvOptimizeEnd, map[string]any{
		"problem": "l1", "status": "ok", "energy_pj": 10.0, "cycles": 20.0, "edp": 200.0,
	})
	e.Emit(EvRunEnd, map[string]any{
		"layers": 1, "energy_pj": 10.0, "cycles": 20.0, "edp": 200.0, "wall_us": 5,
	})
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(&buf)
	emitLifecycle(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	evs, warnings, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	if evs[0].Schema != SchemaVersion {
		t.Fatalf("run_start schema = %q, want %q", evs[0].Schema, SchemaVersion)
	}
	if evs[1].Schema != "" {
		t.Fatalf("non-start events must not repeat the schema, got %q", evs[1].Schema)
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d: seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	// Round-trip fidelity: the parsed gap must equal the emitted value.
	if gap := evs[2].Fields["gap"].(float64); gap != 0.5 {
		t.Fatalf("centering gap = %v, want 0.5", gap)
	}
	if got := evs[4].Fields["problem"].(string); got != "l1" {
		t.Fatalf("optimize_end problem = %q", got)
	}
	// Re-emitting the parsed events reproduces identical field sets.
	var buf2 bytes.Buffer
	e2 := NewEmitter(&buf2)
	for _, ev := range evs {
		e2.Emit(ev.Type, ev.Fields)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	evs2, _, err := ReadStream(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		if evs[i].Type != evs2[i].Type || !reflect.DeepEqual(evs[i].Fields, evs2[i].Fields) {
			t.Fatalf("event %d changed across round trip:\n%+v\n%+v", i, evs[i], evs2[i])
		}
	}
}

func TestValidateCleanStream(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(&buf)
	emitLifecycle(e)
	e.Close()
	sum, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Complete || sum.RunID != "r1" || sum.Events != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", sum.Warnings)
	}
	if sum.ByType[EvCentering] != 1 || sum.ByType[EvSolveEnd] != 1 {
		t.Fatalf("by-type counts wrong: %v", sum.ByType)
	}
}

func TestValidateTruncatedFinalLine(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(&buf)
	emitLifecycle(e)
	e.Close()
	// Chop the stream mid-way through the final line, as a crash would.
	data := buf.Bytes()
	data = data[:len(data)-10]
	sum, err := Validate(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("truncated final line must be tolerated, got %v", err)
	}
	if sum.Complete {
		t.Fatal("truncated stream should not be complete (run_end was cut)")
	}
	if len(sum.Warnings) == 0 {
		t.Fatal("expected a truncation warning")
	}
}

func TestValidateRejectsBadStreams(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not run_start":  `{"seq":1,"t_us":0,"type":"solve_end","fields":{"status":"ok","newton":1,"centerings":1}}` + "\n\n",
		"wrong schema":   `{"schema":"thistle-events-v0","seq":1,"t_us":0,"type":"run_start","fields":{"run_id":"r","tool":"t","go_version":"g"}}` + "\n\n",
		"missing fields": `{"schema":"thistle-events-v1","seq":1,"t_us":0,"type":"run_start","fields":{"run_id":"r"}}` + "\n\n",
		"seq not increasing": `{"schema":"thistle-events-v1","seq":1,"t_us":0,"type":"run_start","fields":{"run_id":"r","tool":"t","go_version":"g"}}` + "\n" +
			`{"seq":1,"t_us":1,"type":"layers_total","fields":{"total":3}}` + "\n\n",
	}
	for name, stream := range cases {
		if _, err := Validate(strings.NewReader(stream)); err == nil {
			t.Errorf("%s: Validate accepted an invalid stream", name)
		}
	}
}

func TestValidateUnknownTypePasses(t *testing.T) {
	stream := `{"schema":"thistle-events-v1","seq":1,"t_us":0,"type":"run_start","fields":{"run_id":"r","tool":"t","go_version":"g"}}` + "\n" +
		`{"seq":2,"t_us":1,"type":"future_thing","fields":{"whatever":true}}` + "\n\n"
	if _, err := Validate(strings.NewReader(stream)); err != nil {
		t.Fatalf("unknown event types must pass (forward compatibility): %v", err)
	}
}

func TestMultiAndObsIntegration(t *testing.T) {
	var buf bytes.Buffer
	em := NewEmitter(&buf)
	rec := NewRecorder("test", nil)
	o := &obs.Obs{Events: Multi(em, rec)}
	if !o.EventsEnabled() {
		t.Fatal("EventsEnabled should be true with a sink attached")
	}
	o.Emit(EvOptimizeEnd, map[string]any{
		"problem": "l1", "status": "ok", "energy_pj": 2.0, "cycles": 3.0, "edp": 6.0,
	})
	em.Close()
	if !strings.Contains(buf.String(), `"optimize_end"`) {
		t.Fatalf("emitter missed the event:\n%s", buf.String())
	}
	man := rec.Finish(nil, nil)
	if len(man.Layers) != 1 || man.Layers[0].EDP != 6.0 {
		t.Fatalf("recorder missed the event: %+v", man.Layers)
	}
	var nilObs *obs.Obs
	nilObs.Emit(EvRunEnd, nil) // must not panic
	if nilObs.EventsEnabled() {
		t.Fatal("nil Obs should report events disabled")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of no sinks should be nil")
	}
}
