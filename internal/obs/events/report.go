package events

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"repro/internal/floats"
)

// LoadManifests loads several manifests, skipping corrupt ones with a
// warning on warnw (the partial-file policy: a crashed run's leftovers
// must not abort a report over the healthy runs). It fails only when
// nothing loadable remains.
func LoadManifests(paths []string, warnw io.Writer) ([]*Manifest, error) {
	var out []*Manifest
	for _, p := range paths {
		m, err := LoadManifest(p)
		if err != nil {
			fmt.Fprintf(warnw, "tlreport: warning: ignoring %s: %v\n", p, err)
			continue
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no readable manifests among %d path(s)", len(paths))
	}
	return out, nil
}

// WriteTable renders one or more manifests as an aligned per-layer
// table in the shape of the results/*.tsv artifacts: one row per layer
// occurrence, the headline EDP/energy/delay columns per manifest, and a
// totals row. Rows are aligned positionally (manifests of the same
// configuration have identical row sequences).
func WriteTable(w io.Writer, ms []*Manifest) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "layer"
	for _, m := range ms {
		id := m.RunID
		if len(ms) == 1 {
			id = ""
		} else if len(id) > 8 {
			id = "[" + id[len(id)-8:] + "]"
		}
		header += fmt.Sprintf("\tpJ/MAC%s\tcycles%s\tEDP%s", id, id, id)
	}
	fmt.Fprintln(tw, header)
	rows := 0
	for _, m := range ms {
		if len(m.Layers) > rows {
			rows = len(m.Layers)
		}
	}
	for i := 0; i < rows; i++ {
		name := "-"
		cols := ""
		for _, m := range ms {
			if i >= len(m.Layers) {
				cols += "\t-\t-\t-"
				continue
			}
			l := m.Layers[i]
			name = l.Name
			cols += fmt.Sprintf("\t%.3f\t%.4g\t%.4g", l.EnergyPerMAC, l.Cycles, l.EDP)
		}
		fmt.Fprintf(tw, "%s%s\n", name, cols)
	}
	totals := "total"
	for _, m := range ms {
		totals += fmt.Sprintf("\t%.4g pJ\t%.4g\t%.4g", m.Totals.EnergyPJ, m.Totals.Cycles, m.Totals.EDP)
	}
	fmt.Fprintln(tw, totals)
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, m := range ms {
		fmt.Fprintf(w, "# run %s: %s, %d layers, wall %s, %d GPs (%d fresh)",
			m.RunID, m.Tool, m.Totals.Layers,
			(time.Duration(m.WallUS) * time.Microsecond).Round(time.Millisecond),
			m.Totals.PairsSolved, m.Totals.FreshSolves)
		if m.Cache != nil {
			fmt.Fprintf(w, ", cache hit rate %.1f%%", 100*m.Cache.HitRate)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// DiffOptions sets the per-metric regression tolerances as fractions
// (0.05 = a 5% increase is tolerated). Zero values select defaults.
type DiffOptions struct {
	// EDPTol bounds per-layer and total EDP growth. Default 0.02.
	EDPTol float64
	// EnergyTol bounds per-layer energy growth. Default 0.02.
	EnergyTol float64
	// DelayTol bounds per-layer delay (cycles) growth. Default 0.02.
	DelayTol float64
	// WallTol bounds total wall-time growth. Wall clocks are noisy, so
	// the default is loose: 0.50.
	WallTol float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.EDPTol == 0 {
		o.EDPTol = 0.02
	}
	if o.EnergyTol == 0 {
		o.EnergyTol = 0.02
	}
	if o.DelayTol == 0 {
		o.DelayTol = 0.02
	}
	if o.WallTol == 0 {
		o.WallTol = 0.50
	}
	return o
}

// Delta is one metric comparison between two runs.
type Delta struct {
	Layer  string  `json:"layer"` // "" for run-level metrics
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Ratio is New/Old (+Inf when Old is zero and New is not).
	Ratio float64 `json:"ratio"`
}

// DiffResult is the outcome of comparing two manifests.
type DiffResult struct {
	// Regressions are deltas that exceeded their tolerance.
	Regressions []Delta
	// Improvements are deltas that moved the other way by more than the
	// same tolerance (reported for symmetry, never fatal).
	Improvements []Delta
	// MissingLayers counts rows present in one run but not the other —
	// a configuration drift signal.
	MissingLayers int
}

// HasRegressions reports whether the diff should fail a gate.
func (d *DiffResult) HasRegressions() bool {
	return len(d.Regressions) > 0 || d.MissingLayers > 0
}

// Diff compares two manifests layer by layer and at the run level
// (total EDP, wall time). Layers are matched by name when every name is
// unique within both runs — parallel whole-network runs record layers in
// completion order, which is not stable across runs — and positionally
// otherwise (repeated layer occurrences, e.g. per-epoch re-solves, keep
// their row sequence). A self-diff is always clean.
func Diff(oldM, newM *Manifest, opts DiffOptions) *DiffResult {
	opts = opts.withDefaults()
	d := &DiffResult{}
	if pairs, ok := matchLayersByName(oldM.Layers, newM.Layers); ok {
		d.MissingLayers = len(oldM.Layers) + len(newM.Layers) - 2*len(pairs)
		for _, p := range pairs {
			d.compareLayer(p[0], p[1], opts)
		}
	} else {
		n := len(oldM.Layers)
		if len(newM.Layers) < n {
			n = len(newM.Layers)
		}
		d.MissingLayers = len(oldM.Layers) + len(newM.Layers) - 2*n
		for i := 0; i < n; i++ {
			d.compareLayer(&oldM.Layers[i], &newM.Layers[i], opts)
		}
	}
	d.compare("", "total_edp", oldM.Totals.EDP, newM.Totals.EDP, opts.EDPTol)
	d.compare("", "wall_us", float64(oldM.WallUS), float64(newM.WallUS), opts.WallTol)
	return d
}

// matchLayersByName pairs layer rows by name. It succeeds only when
// names are unique within each run (the common single-solve-per-layer
// shape); any duplicate name falls the diff back to positional pairing.
// Rows whose name exists on one side only are left unpaired and counted
// by the caller as missing.
func matchLayersByName(oldL, newL []LayerResult) (pairs [][2]*LayerResult, ok bool) {
	newByName := make(map[string]*LayerResult, len(newL))
	for i := range newL {
		if _, dup := newByName[newL[i].Name]; dup {
			return nil, false
		}
		newByName[newL[i].Name] = &newL[i]
	}
	seen := make(map[string]bool, len(oldL))
	for i := range oldL {
		if seen[oldL[i].Name] {
			return nil, false
		}
		seen[oldL[i].Name] = true
		if nl := newByName[oldL[i].Name]; nl != nil {
			pairs = append(pairs, [2]*LayerResult{&oldL[i], nl})
		}
	}
	return pairs, true
}

// compareLayer diffs the headline metrics of one matched layer pair.
func (d *DiffResult) compareLayer(ol, nl *LayerResult, opts DiffOptions) {
	name := nl.Name
	if ol.Name != nl.Name {
		name = ol.Name + "->" + nl.Name
	}
	d.compare(name, "edp", ol.EDP, nl.EDP, opts.EDPTol)
	d.compare(name, "energy_pj", ol.EnergyPJ, nl.EnergyPJ, opts.EnergyTol)
	d.compare(name, "cycles", ol.Cycles, nl.Cycles, opts.DelayTol)
}

// compare classifies one metric pair against a tolerance.
func (d *DiffResult) compare(layer, metric string, oldV, newV, tol float64) {
	if floats.Eq(oldV, newV) {
		return
	}
	var ratio float64
	switch {
	case oldV != 0:
		ratio = newV / oldV
	case newV > 0:
		ratio = math.Inf(1)
	default:
		return
	}
	delta := Delta{Layer: layer, Metric: metric, Old: oldV, New: newV, Ratio: ratio}
	switch {
	case newV > oldV*(1+tol):
		d.Regressions = append(d.Regressions, delta)
	case newV < oldV*(1-tol):
		d.Improvements = append(d.Improvements, delta)
	}
}

// WriteDiff renders a diff as text.
func (d *DiffResult) WriteDiff(w io.Writer) error {
	if d.MissingLayers > 0 {
		fmt.Fprintf(w, "LAYOUT: %d layer row(s) present in only one run (configuration drift?)\n", d.MissingLayers)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	writeDeltas := func(label string, ds []Delta) {
		for _, dl := range ds {
			layer := dl.Layer
			if layer == "" {
				layer = "(run)"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.6g\t->\t%.6g\t(%+.1f%%)\n",
				label, layer, dl.Metric, dl.Old, dl.New, 100*(dl.Ratio-1))
		}
	}
	writeDeltas("REGRESSION", d.Regressions)
	writeDeltas("improvement", d.Improvements)
	if err := tw.Flush(); err != nil {
		return err
	}
	if !d.HasRegressions() && len(d.Improvements) == 0 {
		fmt.Fprintln(w, "no differences beyond tolerance")
	}
	fmt.Fprintf(w, "%d regression(s), %d improvement(s)\n", len(d.Regressions), len(d.Improvements))
	return nil
}
