package events

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
)

// ManifestSchema tags the manifest format, gating decode exactly like
// the event-stream and cache schemas.
const ManifestSchema = "thistle-manifest-v1"

// LayerResult is one optimize outcome row of a manifest: the unit
// tlreport aggregates and diffs. Name repeats when a run optimizes the
// same problem several times (e.g. fig5 solves each layer fixed and
// co-designed); rows are in run order and matched positionally within a
// name by tlreport.
type LayerResult struct {
	Name string `json:"name"`
	// Sig is the solve-cache content signature of the request (hex),
	// tying the row back to internal/cache's addressing.
	Sig          string  `json:"sig,omitempty"`
	EnergyPJ     float64 `json:"energy_pj"`
	Cycles       float64 `json:"cycles"`
	EDP          float64 `json:"edp"`
	EnergyPerMAC float64 `json:"energy_per_mac,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`
	PairsSolved  int64   `json:"pairs_solved,omitempty"`
	FreshSolves  int64   `json:"fresh_solves,omitempty"`
	Candidates   int64   `json:"candidates,omitempty"`
	FromCache    bool    `json:"from_cache,omitempty"`
	// Reused marks a row fanned out by cross-layer dedup rather than
	// solved (experiments.OptimizeLayers signature groups).
	Reused bool  `json:"reused,omitempty"`
	WallUS int64 `json:"wall_us,omitempty"`
}

// Totals aggregates the per-layer rows.
type Totals struct {
	Layers      int     `json:"layers"`
	EnergyPJ    float64 `json:"energy_pj"`
	Cycles      float64 `json:"cycles"`
	EDP         float64 `json:"edp"`
	PairsSolved int64   `json:"pairs_solved"`
	FreshSolves int64   `json:"fresh_solves"`
}

// CacheStats mirrors internal/cache.Stats without importing it, keeping
// this package free of the optimizer's type graph.
type CacheStats struct {
	Hits              int64   `json:"hits"`
	Misses            int64   `json:"misses"`
	DiskHits          int64   `json:"disk_hits,omitempty"`
	SingleflightWaits int64   `json:"singleflight_waits,omitempty"`
	Stores            int64   `json:"stores,omitempty"`
	Evictions         int64   `json:"evictions,omitempty"`
	HitRate           float64 `json:"hit_rate"`
}

// Manifest is the durable record of one run: identity, environment,
// per-layer results, totals, cache effectiveness, and the final metrics
// snapshot (whose histogram rows carry p50/p95/p99). It is written
// atomically (temp file + rename) so readers never observe a partial
// manifest, and loaded tolerantly (corrupt files are reported, not
// misread).
type Manifest struct {
	Schema string `json:"schema"`
	RunID  string `json:"run_id"`
	// RequestID is the client-correlatable request identifier when the
	// run was executed by thistled (the X-Request-ID the response
	// echoed); empty for CLI runs. It is the join key across access
	// logs, traces, and this manifest.
	RequestID string        `json:"request_id,omitempty"`
	Tool      string        `json:"tool"`
	Args      []string      `json:"args,omitempty"`
	GitRev    string        `json:"git_rev,omitempty"`
	GoVersion string        `json:"go_version"`
	StartTime string        `json:"start_time"`
	WallUS    int64         `json:"wall_us"`
	Layers    []LayerResult `json:"layers,omitempty"`
	Totals    Totals        `json:"totals"`
	Cache     *CacheStats   `json:"cache,omitempty"`
	Metrics   *obs.Snapshot `json:"metrics,omitempty"`
}

// ErrCorruptManifest reports an unreadable or schema-mismatched
// manifest file (e.g. a partial write from a crashed run).
var ErrCorruptManifest = errors.New("events: corrupt manifest")

// WriteManifest writes m atomically: the JSON is staged in a temp file
// in the destination directory and renamed into place, so a crash mid-
// write leaves either the previous manifest or none — never a partial
// one at the final path.
func WriteManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir, base := splitPath(path)
	tmp, err := os.CreateTemp(dir, "."+base+"-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup; report the write error
		return werr
	}
	return nil
}

func splitPath(path string) (dir, base string) {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1], path[i+1:]
		}
	}
	return ".", path
}

// LoadManifest reads and schema-checks one manifest. Partial or
// mangled files return an error wrapping ErrCorruptManifest so callers
// can warn and skip rather than abort a multi-manifest report.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptManifest, path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("%w: %s: schema %q, want %q", ErrCorruptManifest, path, m.Schema, ManifestSchema)
	}
	return &m, nil
}

// Recorder accumulates a run's manifest from the event stream: it
// implements obs.EventSink and builds per-layer rows from optimize_end,
// layer_reused, and mapper_end events, so the layers below the CLI need
// no knowledge of manifests. It also tracks live progress for the
// -status-addr /statusz endpoint. A nil *Recorder is a no-op sink.
type Recorder struct {
	mu    sync.Mutex
	man   Manifest
	start time.Time

	// Live progress for /statusz.
	total   int
	current string
}

// NewRecorder starts a run record, stamping identity and environment.
func NewRecorder(tool string, args []string) *Recorder {
	now := time.Now()
	return &Recorder{
		start: now,
		man: Manifest{
			Schema:    ManifestSchema,
			RunID:     newRunID(now),
			Tool:      tool,
			Args:      args,
			GitRev:    vcsRevision(),
			GoVersion: runtime.Version(),
			StartTime: now.UTC().Format(time.RFC3339),
		},
	}
}

// newRunID builds a unique run identifier: UTC timestamp plus random
// suffix, so IDs sort chronologically and never collide.
func newRunID(now time.Time) string {
	var b [4]byte
	suffix := "00000000"
	if _, err := rand.Read(b[:]); err == nil {
		suffix = hex.EncodeToString(b[:])
	}
	return now.UTC().Format("20060102T150405") + "-" + suffix
}

// vcsRevision extracts the git revision stamped into the binary by the
// Go toolchain ("" when built without VCS info). A locally modified
// tree is marked with a "+dirty" suffix.
func vcsRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	return rev + dirty
}

// BuildRevision returns the git revision the Go toolchain stamped into
// the running binary — the same value manifests record as git_rev —
// or "" when built without VCS info. CLIs print it for -version so a
// trace file or manifest can be correlated to a build from the command
// line alone.
func BuildRevision() string { return vcsRevision() }

// SetRequestID stamps the serving-layer request identifier onto the
// run record (no-op on a nil receiver). Call it before StartFields or
// Finish so the ID reaches both the event stream and the manifest.
func (r *Recorder) SetRequestID(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.man.RequestID = id
}

// RunID returns the run's identifier.
func (r *Recorder) RunID() string {
	if r == nil {
		return ""
	}
	return r.man.RunID
}

// StartFields returns the run_start event payload matching this
// record, or nil for a nil receiver.
func (r *Recorder) StartFields() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := map[string]any{
		"run_id":     r.man.RunID,
		"tool":       r.man.Tool,
		"go_version": r.man.GoVersion,
		"git_rev":    r.man.GitRev,
		"args":       r.man.Args,
		"start_time": r.man.StartTime,
	}
	if r.man.RequestID != "" {
		f["request_id"] = r.man.RequestID
	}
	return f
}

// Emit consumes one event, folding row-bearing types into the manifest.
// Implements obs.EventSink.
func (r *Recorder) Emit(typ string, fields map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch typ {
	case EvLayersTotal:
		r.total = int(fnum(fields, "total"))
	case EvOptimizeStart:
		r.current = fstr(fields, "problem")
	case EvOptimizeEnd:
		if fstr(fields, "status") != "ok" {
			return
		}
		r.man.Layers = append(r.man.Layers, rowFromFields(fields, false))
	case EvLayerReused:
		r.man.Layers = append(r.man.Layers, rowFromFields(fields, true))
	case EvMapperEnd:
		row := rowFromFields(fields, false)
		row.Name = row.Name + "/mapper"
		r.man.Layers = append(r.man.Layers, row)
	}
}

// rowFromFields decodes the shared row payload of an event.
func rowFromFields(fields map[string]any, reused bool) LayerResult {
	return LayerResult{
		Name:         fstr(fields, "problem"),
		Sig:          fstr(fields, "sig"),
		EnergyPJ:     fnum(fields, "energy_pj"),
		Cycles:       fnum(fields, "cycles"),
		EDP:          fnum(fields, "edp"),
		EnergyPerMAC: fnum(fields, "energy_per_mac"),
		IPC:          fnum(fields, "ipc"),
		PairsSolved:  int64(fnum(fields, "pairs_solved")),
		FreshSolves:  int64(fnum(fields, "fresh_solves")),
		Candidates:   int64(fnum(fields, "candidates")),
		FromCache:    fbool(fields, "from_cache"),
		Reused:       reused,
		WallUS:       int64(fnum(fields, "wall_us")),
	}
}

// Finish stamps wall time and totals and attaches the optional cache
// stats and metrics snapshot, returning the completed manifest. The
// recorder can keep receiving events afterwards, but they will not be
// reflected in the returned copy.
func (r *Recorder) Finish(cs *CacheStats, metrics *obs.Snapshot) *Manifest {
	if r == nil {
		return &Manifest{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.man.WallUS = time.Since(r.start).Microseconds()
	r.man.Cache = cs
	r.man.Metrics = metrics
	var t Totals
	for _, l := range r.man.Layers {
		t.Layers++
		t.EnergyPJ += l.EnergyPJ
		t.Cycles += l.Cycles
		t.EDP += l.EDP
		t.PairsSolved += l.PairsSolved
		t.FreshSolves += l.FreshSolves
	}
	r.man.Totals = t
	out := r.man
	out.Layers = append([]LayerResult(nil), r.man.Layers...)
	return &out
}

// EndFields returns the run_end event payload for a finished manifest.
func (m *Manifest) EndFields() map[string]any {
	return map[string]any{
		"layers":       int64(m.Totals.Layers),
		"energy_pj":    m.Totals.EnergyPJ,
		"cycles":       m.Totals.Cycles,
		"edp":          m.Totals.EDP,
		"wall_us":      m.WallUS,
		"fresh_solves": m.Totals.FreshSolves,
	}
}

// Status is a point-in-time view of run progress for /statusz.
type Status struct {
	RunID   string        `json:"run_id"`
	Tool    string        `json:"tool"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Total   int           `json:"total_layers"`
	Done    int           `json:"done_layers"`
	Current string        `json:"current,omitempty"`
	Layers  []LayerResult `json:"layers,omitempty"`
}

// Status snapshots live progress.
func (r *Recorder) Status() Status {
	if r == nil {
		return Status{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Status{
		RunID:   r.man.RunID,
		Tool:    r.man.Tool,
		Elapsed: time.Since(r.start),
		Total:   r.total,
		Done:    len(r.man.Layers),
		Current: r.current,
		Layers:  append([]LayerResult(nil), r.man.Layers...),
	}
}

// fnum reads a numeric field however JSON or the in-process emitter
// typed it.
func fnum(fields map[string]any, key string) float64 {
	switch v := fields[key].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case int:
		return float64(v)
	case json.Number:
		f, _ := v.Float64()
		return f
	}
	return 0
}

func fstr(fields map[string]any, key string) string {
	s, _ := fields[key].(string)
	return s
}

func fbool(fields map[string]any, key string) bool {
	b, _ := fields[key].(bool)
	return b
}
