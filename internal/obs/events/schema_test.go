package events

import (
	"strings"
	"testing"
)

// TestSchemaCoversAllEventTypes pins the schema table to the declared
// event-type constants: every Ev* constant has a spec and every spec
// key is a declared constant.
func TestSchemaCoversAllEventTypes(t *testing.T) {
	all := []string{
		EvRunStart, EvRunEnd, EvLayersTotal, EvOptimizeStart, EvOptimizeEnd,
		EvLayerReused, EvSolveEnd, EvCentering, EvMapperEnd, EvModelValidate,
	}
	schema := Schema()
	if len(schema) != len(all) {
		t.Errorf("Schema() has %d entries, want %d", len(schema), len(all))
	}
	for _, typ := range all {
		spec, ok := schema[typ]
		if !ok {
			t.Errorf("Schema() missing event type %q", typ)
			continue
		}
		if len(spec.Required) == 0 {
			t.Errorf("Schema()[%q] has no required fields", typ)
		}
		for field, kind := range spec.Required {
			if _, dup := spec.Optional[field]; dup {
				t.Errorf("Schema()[%q]: field %q is both required and optional", typ, field)
			}
			if kind == "" {
				t.Errorf("Schema()[%q]: field %q has empty kind", typ, field)
			}
		}
	}
}

func TestFieldKindCheckValue(t *testing.T) {
	cases := []struct {
		kind FieldKind
		v    any
		ok   bool
	}{
		{KindString, "x", true},
		{KindString, 3.0, false},
		{KindBool, true, true},
		{KindBool, "true", false},
		{KindInt, 3.0, true},     // JSON integers decode as float64
		{KindInt, 3.5, false},    // fractional is not an int
		{KindInt, "3", false},    //
		{KindFloat, 3.5, true},   //
		{KindFloat, 3.0, true},   // integral floats are floats
		{KindFloat, true, false}, //
		{KindAny, []any{"a"}, true},
		{KindAny, nil, true},
	}
	for _, c := range cases {
		err := c.kind.CheckValue(c.v)
		if (err == nil) != c.ok {
			t.Errorf("%s.CheckValue(%#v): got err=%v, want ok=%v", c.kind, c.v, err, c.ok)
		}
	}
}

// TestValidateChecksFieldKinds exercises the dynamic side of the shared
// schema: a required field carried with the wrong kind fails
// validation, an unknown field on a known type is only a warning.
func TestValidateChecksFieldKinds(t *testing.T) {
	var b strings.Builder
	e := NewEmitter(&b)
	e.Emit(EvRunStart, map[string]any{"run_id": "r1", "tool": "test", "go_version": "go"})
	e.Emit(EvSolveEnd, map[string]any{"status": "optimal", "newton": "seven", "centerings": 1})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(strings.NewReader(b.String())); err == nil {
		t.Fatal("Validate accepted a string-valued newton field")
	}

	b.Reset()
	e = NewEmitter(&b)
	e.Emit(EvRunStart, map[string]any{"run_id": "r1", "tool": "test", "go_version": "go"})
	e.Emit(EvSolveEnd, map[string]any{
		"status": "optimal", "newton": 7, "centerings": 1, "newtonn": 8,
	})
	e.Emit(EvRunEnd, map[string]any{
		"layers": 1, "energy_pj": 1.0, "cycles": 2.0, "edp": 2.0, "wall_us": 10,
	})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := Validate(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	found := false
	for _, w := range sum.Warnings {
		if strings.Contains(w, `unknown field "newtonn"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an unknown-field warning for newtonn, got %v", sum.Warnings)
	}
}
