package events

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestStatusServer(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("solver.solves").Add(3)
	reg.Histogram("solver.solve_duration").Observe(5 * time.Microsecond)
	rec := NewRecorder("test", nil)
	rec.Emit(EvLayersTotal, map[string]any{"total": 2})
	rec.Emit(EvOptimizeEnd, map[string]any{
		"problem": "l1", "status": "ok", "energy_pj": 10.0, "cycles": 20.0, "edp": 200.0,
	})
	rec.Emit(EvOptimizeStart, map[string]any{"problem": "l2"})

	srv, err := StartStatusServer("127.0.0.1:0", reg, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "thistle_solver_solves_total 3") ||
		!strings.Contains(metrics, "thistle_solver_solve_duration_seconds_count 1") {
		t.Fatalf("/metrics:\n%s", metrics)
	}
	statusz := get("/statusz")
	for _, want := range []string{"1/2 layers done", "solving l2", "l1"} {
		if !strings.Contains(statusz, want) {
			t.Fatalf("/statusz missing %q:\n%s", want, statusz)
		}
	}
	if idx := get("/"); !strings.Contains(idx, "/statusz") {
		t.Fatalf("index page:\n%s", idx)
	}
}
