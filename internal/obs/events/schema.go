package events

import (
	"fmt"
	"math"
)

// FieldKind classifies the value a thistle-events-v1 field may carry,
// both as the Go value handed to Emit and as the JSON value it decodes
// back to. The kinds are deliberately coarse — the stream is telemetry,
// not an API — but they are exactly what the tlvet eventfields analyzer
// enforces statically at Emit call sites and what Validate enforces
// dynamically on decoded streams, so a producer and a consumer can
// never disagree about a field's shape.
type FieldKind string

// Field kinds. KindInt accepts any Go integer (JSON: a number with an
// integral value); KindFloat additionally accepts fractional numbers
// (an integer is a valid float field); KindAny is unconstrained (used
// for structured values such as the run_start args list).
const (
	KindString FieldKind = "string"
	KindInt    FieldKind = "int"
	KindFloat  FieldKind = "float"
	KindBool   FieldKind = "bool"
	KindAny    FieldKind = "any"
)

// EventSpec describes one event type of the thistle-events-v1 schema:
// the fields every instance must carry and the optional fields a
// well-formed producer may add. Fields outside Required ∪ Optional are
// schema violations at Emit call sites (tlvet eventfields) and warnings
// when read back (Validate) — warnings rather than errors so newer
// streams stay readable by older binaries.
type EventSpec struct {
	Required map[string]FieldKind
	Optional map[string]FieldKind
}

// Kind returns the declared kind of a field and whether the field is
// part of the spec at all.
func (s EventSpec) Kind(field string) (FieldKind, bool) {
	if k, ok := s.Required[field]; ok {
		return k, true
	}
	k, ok := s.Optional[field]
	return k, ok
}

// Schema returns the thistle-events-v1 event table: event type →
// field specification. It is the single source of truth shared by the
// stream validator (tlreport validate, via Validate) and the tlvet
// eventfields analyzer, so the two cannot drift apart. The returned map
// is freshly built on each call; callers may mutate their copy.
func Schema() map[string]EventSpec {
	row := func(req, opt map[string]FieldKind) EventSpec {
		return EventSpec{Required: req, Optional: opt}
	}
	// layerRow is the shared optional payload of the row-bearing events
	// the manifest Recorder folds into per-layer results.
	layerRow := func(extra map[string]FieldKind) map[string]FieldKind {
		m := map[string]FieldKind{
			"energy_pj":      KindFloat,
			"cycles":         KindFloat,
			"edp":            KindFloat,
			"energy_per_mac": KindFloat,
			"ipc":            KindFloat,
		}
		for k, v := range extra {
			m[k] = v
		}
		return m
	}
	return map[string]EventSpec{
		EvRunStart: row(
			map[string]FieldKind{"run_id": KindString, "tool": KindString, "go_version": KindString},
			map[string]FieldKind{"git_rev": KindString, "args": KindAny, "start_time": KindString, "request_id": KindString},
		),
		EvRunEnd: row(
			map[string]FieldKind{
				"layers": KindInt, "energy_pj": KindFloat, "cycles": KindFloat,
				"edp": KindFloat, "wall_us": KindInt,
			},
			map[string]FieldKind{"fresh_solves": KindInt},
		),
		EvLayersTotal: row(
			map[string]FieldKind{"total": KindInt},
			nil,
		),
		EvOptimizeStart: row(
			map[string]FieldKind{"problem": KindString},
			map[string]FieldKind{"sig": KindString, "mode": KindString, "criterion": KindString},
		),
		EvOptimizeEnd: row(
			map[string]FieldKind{"problem": KindString, "status": KindString},
			layerRow(map[string]FieldKind{
				"sig": KindString, "wall_us": KindInt, "error": KindString,
				"pairs_solved": KindInt, "fresh_solves": KindInt,
				"candidates": KindInt, "from_cache": KindBool,
			}),
		),
		EvLayerReused: row(
			map[string]FieldKind{"problem": KindString, "from": KindString},
			layerRow(map[string]FieldKind{"sig": KindString}),
		),
		EvSolveEnd: row(
			map[string]FieldKind{"status": KindString, "newton": KindInt, "centerings": KindInt},
			map[string]FieldKind{
				"objective": KindFloat, "wall_us": KindInt,
				"gap": KindFloat, "phase1": KindBool,
				"warm_start": KindBool, "phase1_skipped": KindBool,
			},
		),
		EvCentering: row(
			map[string]FieldKind{"step": KindInt, "gap": KindFloat, "newton": KindInt},
			map[string]FieldKind{"t": KindFloat, "backtracks": KindInt, "converged": KindBool},
		),
		EvMapperEnd: row(
			map[string]FieldKind{"problem": KindString, "trials": KindInt},
			layerRow(map[string]FieldKind{"valid": KindInt, "from_cache": KindBool}),
		),
		EvModelValidate: row(
			map[string]FieldKind{"problem": KindString, "valid": KindBool},
			map[string]FieldKind{
				"violations": KindInt, "energy_pj": KindFloat, "cycles": KindFloat,
				"edp": KindFloat, "from_cache": KindBool,
			},
		),
	}
}

// CheckValue reports whether a JSON-decoded field value conforms to the
// kind. Integers arrive from encoding/json as float64, so KindInt
// accepts any number with an integral value.
func (k FieldKind) CheckValue(v any) error {
	switch k {
	case KindAny:
		return nil
	case KindString:
		if _, ok := v.(string); ok {
			return nil
		}
	case KindBool:
		if _, ok := v.(bool); ok {
			return nil
		}
	case KindInt:
		if f, ok := v.(float64); ok && math.Trunc(f) == f {
			return nil
		}
	case KindFloat:
		if _, ok := v.(float64); ok {
			return nil
		}
	}
	return fmt.Errorf("value %v (%T) is not a valid %s", v, v, k)
}
