package events

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/obs"
)

// StatusServer serves live run telemetry over HTTP for long whole-
// network runs: /metrics in Prometheus text format from the registry,
// /statusz as a human-readable progress page backed by the Recorder.
type StatusServer struct {
	srv  *http.Server
	addr string
}

// StartStatusServer listens on addr (e.g. "localhost:9090") and serves
// in a background goroutine. The registry and recorder may each be nil
// (their endpoint then reports an empty snapshot).
func StartStatusServer(addr string, reg *obs.Registry, rec *Recorder) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.Snapshot().WritePrometheus(w) // best effort: the client may be gone
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeStatus(w, rec.Status())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "thistle run status: /statusz (progress), /metrics (prometheus)")
	})
	s := &StatusServer{
		srv:  &http.Server{Handler: mux},
		addr: ln.Addr().String(),
	}
	//tlvet:ignore goscheduler -- status-server accept loop: long-lived, owned and shut down by StatusServer.Close
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful when addr had port 0).
func (s *StatusServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Close shuts the listener down.
func (s *StatusServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// writeStatus renders the /statusz page.
func writeStatus(w http.ResponseWriter, st Status) {
	fmt.Fprintf(w, "run %s (%s), elapsed %s\n", st.RunID, st.Tool, st.Elapsed.Round(time.Millisecond))
	if st.Total > 0 {
		fmt.Fprintf(w, "progress: %d/%d layers done", st.Done, st.Total)
	} else {
		fmt.Fprintf(w, "progress: %d layers done", st.Done)
	}
	if st.Current != "" {
		fmt.Fprintf(w, ", solving %s", st.Current)
	}
	fmt.Fprintln(w)
	if len(st.Layers) == 0 {
		return
	}
	fmt.Fprintln(w, "\nlayer  pJ/MAC  cycles  EDP  wall")
	for _, l := range st.Layers {
		note := ""
		if l.FromCache {
			note = " (cached)"
		} else if l.Reused {
			note = " (reused)"
		}
		fmt.Fprintf(w, "%s  %.3f  %.4g  %.4g  %s%s\n",
			l.Name, l.EnergyPerMAC, l.Cycles, l.EDP,
			(time.Duration(l.WallUS) * time.Microsecond).Round(time.Millisecond), note)
	}
}
