// Package events is the durable-record layer of the reproduction's
// observability stack: where internal/obs's spans and metrics die with
// the process, this package writes machine-readable artifacts that
// survive it — a schema-versioned JSONL event stream covering the whole
// run lifecycle (run start/end, per-layer optimize outcomes, per-
// centering solver convergence, cache hits, model validation) and a
// final per-run manifest (run identity, per-layer EDP/energy/delay,
// cache stats, metrics snapshot) written atomically. cmd/tlreport loads
// manifests back to render aggregate tables and diff runs for
// regressions, making every optimization run a reproducible, comparable
// data point.
//
// The package plugs into the existing telemetry plumbing through
// obs.EventSink: an Emitter (JSONL writer) and a Recorder (manifest
// builder) both implement it, and the solver, core, and experiments
// layers emit through the nil-safe obs.Obs.Emit hook they already
// carry. Nothing below the CLI layer imports this package.
package events

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// SchemaVersion tags the event-stream format. It is written into the
// run_start event of every stream; Validate rejects streams written by
// an incompatible format instead of misreading them.
const SchemaVersion = "thistle-events-v1"

// Event is one line of the JSONL stream. Seq is strictly increasing
// within a stream (assigned by the Emitter under its lock, so events
// from parallel solver goroutines are totally ordered). TimeUS is
// microseconds since the stream was opened — relative, so identical
// runs produce comparable streams. Schema is set on run_start only.
type Event struct {
	Schema string         `json:"schema,omitempty"`
	Seq    int64          `json:"seq"`
	TimeUS int64          `json:"t_us"`
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Event types emitted by the pipeline, outermost to innermost. The
// canonical declarations live in package obs (so the solver, core, and
// experiments layers can emit them without importing this package);
// they are re-exported here under the same names for the CLI layer.
// Schema (schema.go) describes the fields each type carries.
const (
	EvRunStart      = obs.EvRunStart
	EvRunEnd        = obs.EvRunEnd
	EvLayersTotal   = obs.EvLayersTotal
	EvOptimizeStart = obs.EvOptimizeStart
	EvOptimizeEnd   = obs.EvOptimizeEnd
	EvLayerReused   = obs.EvLayerReused
	EvSolveEnd      = obs.EvSolveEnd
	EvCentering     = obs.EvCentering
	EvMapperEnd     = obs.EvMapperEnd
	EvModelValidate = obs.EvModelValidate
)

// Emitter writes the JSONL stream. It is safe for concurrent use; Emit
// never returns an error (the stream is telemetry, not a correctness
// dependency) — the first write failure is latched and reported by
// Close. A nil *Emitter discards everything.
type Emitter struct {
	mu    sync.Mutex
	w     *bufio.Writer
	f     *os.File
	seq   int64
	start time.Time
	err   error
}

// NewEmitter wraps a writer. The caller owns the writer's lifetime;
// Close flushes but does not close it.
func NewEmitter(w io.Writer) *Emitter {
	return &Emitter{w: bufio.NewWriter(w), start: time.Now()}
}

// Create opens path for writing and returns an emitter that owns the
// file (Close closes it).
func Create(path string) (*Emitter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	e := NewEmitter(f)
	e.f = f
	return e, nil
}

// Emit appends one event. Implements obs.EventSink.
func (e *Emitter) Emit(typ string, fields map[string]any) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	e.seq++
	ev := Event{
		Seq:    e.seq,
		TimeUS: time.Since(e.start).Microseconds(),
		Type:   typ,
		Fields: fields,
	}
	if typ == EvRunStart {
		ev.Schema = SchemaVersion
	}
	data, err := json.Marshal(ev)
	if err != nil {
		e.err = err
		return
	}
	data = append(data, '\n')
	if _, err := e.w.Write(data); err != nil {
		e.err = err
	}
}

// Close flushes the stream (and closes the file when the emitter owns
// one), returning the first error encountered over the stream's life.
func (e *Emitter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.w.Flush(); e.err == nil {
		e.err = err
	}
	if e.f != nil {
		if err := e.f.Close(); e.err == nil {
			e.err = err
		}
		e.f = nil
	}
	return e.err
}

// ReadStream parses a JSONL event stream. A truncated final line (the
// process died mid-write) is tolerated and reported via the returned
// warning list, mirroring the manifest's partial-file policy; any other
// malformed line is an error.
func ReadStream(r io.Reader) ([]Event, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	var pending string // last line, held back until we know another follows
	line := 0
	for sc.Scan() {
		if pending != "" {
			var ev Event
			if err := json.Unmarshal([]byte(pending), &ev); err != nil {
				return nil, nil, fmt.Errorf("events: line %d: %w", line, err)
			}
			events = append(events, ev)
		}
		pending = sc.Text()
		line++
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	var warnings []string
	if pending != "" {
		var ev Event
		if err := json.Unmarshal([]byte(pending), &ev); err != nil {
			warnings = append(warnings, fmt.Sprintf("ignoring truncated final line %d: %v", line, err))
		} else {
			events = append(events, ev)
		}
	}
	return events, warnings, nil
}

// ErrBadStream reports a structurally invalid event stream.
var ErrBadStream = errors.New("events: invalid stream")

// StreamSummary is what Validate learned about a stream.
type StreamSummary struct {
	Events   int
	ByType   map[string]int
	RunID    string
	Complete bool // a run_end event was present
	Warnings []string
}

// Validate checks a stream against the schema table (Schema): the
// first event must be run_start carrying the current SchemaVersion and
// its required fields, sequence numbers must be strictly increasing,
// and every known event type must carry its required fields with
// schema-conformant values. Unknown event types pass validation and
// unknown fields on known types are warnings (forward compatibility);
// a missing run_end (crash) and a truncated final line are also
// warnings, not errors.
func Validate(r io.Reader) (*StreamSummary, error) {
	events, warnings, err := ReadStream(r)
	if err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("%w: empty stream", ErrBadStream)
	}
	first := events[0]
	if first.Type != EvRunStart {
		return nil, fmt.Errorf("%w: first event is %q, want %q", ErrBadStream, first.Type, EvRunStart)
	}
	if first.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrBadStream, first.Schema, SchemaVersion)
	}
	schema := Schema()
	sum := &StreamSummary{ByType: map[string]int{}, Warnings: warnings}
	prevSeq := int64(0)
	for i, ev := range events {
		if ev.Seq <= prevSeq {
			return nil, fmt.Errorf("%w: event %d: seq %d not increasing (previous %d)", ErrBadStream, i, ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		if spec, known := schema[ev.Type]; known {
			// Iterate both field maps in sorted order so the first
			// error reported — and the order of unknown-field warnings
			// — is deterministic run to run.
			for _, field := range sortedKeys(spec.Required) {
				kind := spec.Required[field]
				v, ok := ev.Fields[field]
				if !ok {
					return nil, fmt.Errorf("%w: event %d (%s): missing required field %q", ErrBadStream, i, ev.Type, field)
				}
				if err := kind.CheckValue(v); err != nil {
					return nil, fmt.Errorf("%w: event %d (%s): field %q: %v", ErrBadStream, i, ev.Type, field, err)
				}
			}
			for _, field := range sortedKeys(ev.Fields) {
				v := ev.Fields[field]
				kind, known := spec.Kind(field)
				if !known {
					sum.Warnings = append(sum.Warnings,
						fmt.Sprintf("event %d (%s): unknown field %q", i, ev.Type, field))
					continue
				}
				if _, req := spec.Required[field]; req {
					continue // already checked
				}
				if err := kind.CheckValue(v); err != nil {
					return nil, fmt.Errorf("%w: event %d (%s): field %q: %v", ErrBadStream, i, ev.Type, field, err)
				}
			}
		}
		sum.Events++
		sum.ByType[ev.Type]++
		if ev.Type == EvRunEnd {
			sum.Complete = true
		}
	}
	if id, ok := first.Fields["run_id"].(string); ok {
		sum.RunID = id
	}
	if !sum.Complete {
		sum.Warnings = append(sum.Warnings, "no run_end event: the run did not finish cleanly")
	}
	return sum, nil
}

// Multi fans one event out to several sinks, skipping nils. It returns
// nil when no sink remains, which keeps obs.EventsEnabled a meaningful
// fast-path guard.
func Multi(sinks ...sink) sink {
	var active []sink
	for _, s := range sinks {
		if s != nil {
			active = append(active, s)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	}
	return multiSink(active)
}

// sink is the consumer side of the event stream; obs must not know this
// package, so the shared interface is declared there.
type sink = obs.EventSink

type multiSink []sink

func (m multiSink) Emit(typ string, fields map[string]any) {
	for _, s := range m {
		s.Emit(typ, fields)
	}
}

// sortedKeys returns m's keys in sorted order, for deterministic
// iteration over field maps in validation and reporting paths.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
