// Package events is the durable-record layer of the reproduction's
// observability stack: where internal/obs's spans and metrics die with
// the process, this package writes machine-readable artifacts that
// survive it — a schema-versioned JSONL event stream covering the whole
// run lifecycle (run start/end, per-layer optimize outcomes, per-
// centering solver convergence, cache hits, model validation) and a
// final per-run manifest (run identity, per-layer EDP/energy/delay,
// cache stats, metrics snapshot) written atomically. cmd/tlreport loads
// manifests back to render aggregate tables and diff runs for
// regressions, making every optimization run a reproducible, comparable
// data point.
//
// The package plugs into the existing telemetry plumbing through
// obs.EventSink: an Emitter (JSONL writer) and a Recorder (manifest
// builder) both implement it, and the solver, core, and experiments
// layers emit through the nil-safe obs.Obs.Emit hook they already
// carry. Nothing below the CLI layer imports this package.
package events

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// SchemaVersion tags the event-stream format. It is written into the
// run_start event of every stream; Validate rejects streams written by
// an incompatible format instead of misreading them.
const SchemaVersion = "thistle-events-v1"

// Event is one line of the JSONL stream. Seq is strictly increasing
// within a stream (assigned by the Emitter under its lock, so events
// from parallel solver goroutines are totally ordered). TimeUS is
// microseconds since the stream was opened — relative, so identical
// runs produce comparable streams. Schema is set on run_start only.
type Event struct {
	Schema string         `json:"schema,omitempty"`
	Seq    int64          `json:"seq"`
	TimeUS int64          `json:"t_us"`
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Event types emitted by the pipeline, outermost to innermost.
const (
	// EvRunStart opens every stream: run_id, tool, go_version, git_rev,
	// args, start_time.
	EvRunStart = "run_start"
	// EvRunEnd closes a stream with run totals.
	EvRunEnd = "run_end"
	// EvLayersTotal announces how many layers a sweep will optimize
	// (drives the -status-addr progress display).
	EvLayersTotal = "layers_total"
	// EvOptimizeStart marks one core.Optimize entry: problem, mode,
	// criterion, and the solve-cache content signature.
	EvOptimizeStart = "optimize_start"
	// EvOptimizeEnd carries the optimize outcome: the design point's
	// energy/cycles/EDP, search effort, and cache disposition.
	EvOptimizeEnd = "optimize_end"
	// EvLayerReused marks a layer served by cross-layer dedup in
	// experiments.OptimizeLayers (same signature as an earlier layer).
	EvLayerReused = "layer_reused"
	// EvSolveEnd summarizes one GP barrier solve: status, Newton
	// iterations, centerings, objective, wall time.
	EvSolveEnd = "solve_end"
	// EvCentering is one barrier centering step: duality gap, Newton
	// count, line-search backtracks, convergence.
	EvCentering = "centering"
	// EvMapperEnd summarizes one randomized-mapper search.
	EvMapperEnd = "mapper_end"
	// EvModelValidate carries a tlmodel constraint-check outcome.
	EvModelValidate = "model_validate"
)

// requiredFields lists, per known event type, the fields Validate
// demands. Unknown event types pass validation (forward compatibility);
// known types missing required fields fail it.
var requiredFields = map[string][]string{
	EvRunStart:      {"run_id", "tool", "go_version"},
	EvRunEnd:        {"layers", "energy_pj", "cycles", "edp", "wall_us"},
	EvLayersTotal:   {"total"},
	EvOptimizeStart: {"problem"},
	EvOptimizeEnd:   {"problem", "status"},
	EvLayerReused:   {"problem", "from"},
	EvSolveEnd:      {"status", "newton", "centerings"},
	EvCentering:     {"step", "gap", "newton"},
	EvMapperEnd:     {"problem", "trials"},
	EvModelValidate: {"problem", "valid"},
}

// Emitter writes the JSONL stream. It is safe for concurrent use; Emit
// never returns an error (the stream is telemetry, not a correctness
// dependency) — the first write failure is latched and reported by
// Close. A nil *Emitter discards everything.
type Emitter struct {
	mu    sync.Mutex
	w     *bufio.Writer
	f     *os.File
	seq   int64
	start time.Time
	err   error
}

// NewEmitter wraps a writer. The caller owns the writer's lifetime;
// Close flushes but does not close it.
func NewEmitter(w io.Writer) *Emitter {
	return &Emitter{w: bufio.NewWriter(w), start: time.Now()}
}

// Create opens path for writing and returns an emitter that owns the
// file (Close closes it).
func Create(path string) (*Emitter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	e := NewEmitter(f)
	e.f = f
	return e, nil
}

// Emit appends one event. Implements obs.EventSink.
func (e *Emitter) Emit(typ string, fields map[string]any) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	e.seq++
	ev := Event{
		Seq:    e.seq,
		TimeUS: time.Since(e.start).Microseconds(),
		Type:   typ,
		Fields: fields,
	}
	if typ == EvRunStart {
		ev.Schema = SchemaVersion
	}
	data, err := json.Marshal(ev)
	if err != nil {
		e.err = err
		return
	}
	data = append(data, '\n')
	if _, err := e.w.Write(data); err != nil {
		e.err = err
	}
}

// Close flushes the stream (and closes the file when the emitter owns
// one), returning the first error encountered over the stream's life.
func (e *Emitter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.w.Flush(); e.err == nil {
		e.err = err
	}
	if e.f != nil {
		if err := e.f.Close(); e.err == nil {
			e.err = err
		}
		e.f = nil
	}
	return e.err
}

// ReadStream parses a JSONL event stream. A truncated final line (the
// process died mid-write) is tolerated and reported via the returned
// warning list, mirroring the manifest's partial-file policy; any other
// malformed line is an error.
func ReadStream(r io.Reader) ([]Event, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	var pending string // last line, held back until we know another follows
	line := 0
	for sc.Scan() {
		if pending != "" {
			var ev Event
			if err := json.Unmarshal([]byte(pending), &ev); err != nil {
				return nil, nil, fmt.Errorf("events: line %d: %w", line, err)
			}
			events = append(events, ev)
		}
		pending = sc.Text()
		line++
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	var warnings []string
	if pending != "" {
		var ev Event
		if err := json.Unmarshal([]byte(pending), &ev); err != nil {
			warnings = append(warnings, fmt.Sprintf("ignoring truncated final line %d: %v", line, err))
		} else {
			events = append(events, ev)
		}
	}
	return events, warnings, nil
}

// ErrBadStream reports a structurally invalid event stream.
var ErrBadStream = errors.New("events: invalid stream")

// StreamSummary is what Validate learned about a stream.
type StreamSummary struct {
	Events   int
	ByType   map[string]int
	RunID    string
	Complete bool // a run_end event was present
	Warnings []string
}

// Validate checks a stream against the schema: the first event must be
// run_start carrying the current SchemaVersion and its required fields,
// sequence numbers must be strictly increasing, and every known event
// type must carry its required fields. A missing run_end (crash) and a
// truncated final line are warnings, not errors.
func Validate(r io.Reader) (*StreamSummary, error) {
	events, warnings, err := ReadStream(r)
	if err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("%w: empty stream", ErrBadStream)
	}
	first := events[0]
	if first.Type != EvRunStart {
		return nil, fmt.Errorf("%w: first event is %q, want %q", ErrBadStream, first.Type, EvRunStart)
	}
	if first.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrBadStream, first.Schema, SchemaVersion)
	}
	sum := &StreamSummary{ByType: map[string]int{}, Warnings: warnings}
	prevSeq := int64(0)
	for i, ev := range events {
		if ev.Seq <= prevSeq {
			return nil, fmt.Errorf("%w: event %d: seq %d not increasing (previous %d)", ErrBadStream, i, ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		if req, known := requiredFields[ev.Type]; known {
			for _, field := range req {
				if _, ok := ev.Fields[field]; !ok {
					return nil, fmt.Errorf("%w: event %d (%s): missing required field %q", ErrBadStream, i, ev.Type, field)
				}
			}
		}
		sum.Events++
		sum.ByType[ev.Type]++
		if ev.Type == EvRunEnd {
			sum.Complete = true
		}
	}
	if id, ok := first.Fields["run_id"].(string); ok {
		sum.RunID = id
	}
	if !sum.Complete {
		sum.Warnings = append(sum.Warnings, "no run_end event: the run did not finish cleanly")
	}
	return sum, nil
}

// Multi fans one event out to several sinks, skipping nils. It returns
// nil when no sink remains, which keeps obs.EventsEnabled a meaningful
// fast-path guard.
func Multi(sinks ...sink) sink {
	var active []sink
	for _, s := range sinks {
		if s != nil {
			active = append(active, s)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	}
	return multiSink(active)
}

// sink mirrors obs.EventSink without importing it (obs must not know
// this package; the interfaces are structurally identical).
type sink interface {
	Emit(typ string, fields map[string]any)
}

type multiSink []sink

func (m multiSink) Emit(typ string, fields map[string]any) {
	for _, s := range m {
		s.Emit(typ, fields)
	}
}
