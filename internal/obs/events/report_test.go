package events

import (
	"strings"
	"testing"
)

func TestDiffSelfIsClean(t *testing.T) {
	m := sampleManifest("r1", 200)
	d := Diff(m, m, DiffOptions{})
	if d.HasRegressions() || len(d.Improvements) != 0 {
		t.Fatalf("self-diff not clean: %+v", d)
	}
	var sb strings.Builder
	if err := d.WriteDiff(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no differences beyond tolerance") {
		t.Fatalf("diff output:\n%s", sb.String())
	}
}

func TestDiffFlagsEDPRegression(t *testing.T) {
	oldM := sampleManifest("r1", 200)
	newM := sampleManifest("r2", 220) // +10% EDP on layer l1, beyond the 2% default
	newM.Totals.EDP = 1540            // +10% on the run total too
	d := Diff(oldM, newM, DiffOptions{})
	if !d.HasRegressions() {
		t.Fatal("10% EDP growth not flagged")
	}
	foundLayer, foundTotal := false, false
	for _, r := range d.Regressions {
		if r.Layer == "l1" && r.Metric == "edp" {
			foundLayer = true
			if r.Ratio < 1.09 || r.Ratio > 1.11 {
				t.Fatalf("ratio = %v, want ~1.10", r.Ratio)
			}
		}
		if r.Layer == "" && r.Metric == "total_edp" {
			foundTotal = true
		}
	}
	if !foundLayer || !foundTotal {
		t.Fatalf("missing expected regressions: %+v", d.Regressions)
	}
	var sb strings.Builder
	if err := d.WriteDiff(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("diff output missing REGRESSION marker:\n%s", sb.String())
	}
}

func TestDiffToleranceAbsorbsSmallGrowth(t *testing.T) {
	oldM := sampleManifest("r1", 200)
	newM := sampleManifest("r2", 202) // +1%: inside the 2% default
	newM.Totals.EDP = 1402
	if d := Diff(oldM, newM, DiffOptions{}); d.HasRegressions() {
		t.Fatalf("1%% growth flagged despite 2%% tolerance: %+v", d.Regressions)
	}
	// A tightened tolerance flags the same delta.
	if d := Diff(oldM, newM, DiffOptions{EDPTol: 0.005}); !d.HasRegressions() {
		t.Fatal("1% growth not flagged at 0.5% tolerance")
	}
}

func TestDiffReportsImprovements(t *testing.T) {
	oldM := sampleManifest("r1", 200)
	newM := sampleManifest("r2", 100) // EDP halved
	newM.Totals.EDP = 1300
	d := Diff(oldM, newM, DiffOptions{})
	if d.HasRegressions() {
		t.Fatalf("improvement classified as regression: %+v", d.Regressions)
	}
	if len(d.Improvements) == 0 {
		t.Fatal("halved EDP not reported as improvement")
	}
}

func TestDiffMissingLayers(t *testing.T) {
	oldM := sampleManifest("r1", 200)
	newM := sampleManifest("r2", 200)
	newM.Layers = newM.Layers[:1]
	d := Diff(oldM, newM, DiffOptions{})
	if d.MissingLayers != 1 || !d.HasRegressions() {
		t.Fatalf("missing layer must fail the gate: %+v", d)
	}
}

func TestDiffWallToleranceIsLoose(t *testing.T) {
	oldM := sampleManifest("r1", 200)
	newM := sampleManifest("r2", 200)
	newM.WallUS = 1400 // +40%: inside the 50% default wall tolerance
	if d := Diff(oldM, newM, DiffOptions{}); d.HasRegressions() {
		t.Fatalf("40%% wall growth flagged: %+v", d.Regressions)
	}
	newM.WallUS = 1600 // +60%: beyond it
	if d := Diff(oldM, newM, DiffOptions{}); !d.HasRegressions() {
		t.Fatal("60% wall growth not flagged")
	}
}

func TestWriteTableMultiRun(t *testing.T) {
	a := sampleManifest("20260805T000000-aaaaaaaa", 200)
	b := sampleManifest("20260805T000001-bbbbbbbb", 220)
	var sb strings.Builder
	if err := WriteTable(&sb, []*Manifest{a, b}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"l1", "l2", "total", "[aaaaaaaa]", "[bbbbbbbb]", "# run"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
