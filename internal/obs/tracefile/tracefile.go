// Package tracefile reads the Chrome trace-event JSON files the obs
// layer writes via -trace-out (schema thistle-trace-v1) and answers the
// profiling questions tlreport trace asks of them: where is the
// critical path, which stage owns the wall clock (self-time), and how
// much of the run was spent waiting on the scheduler rather than
// computing. It is a consumer-side companion to obs.WriteChromeTrace —
// the hierarchy is rebuilt from the span_id/parent_id args the writer
// stamps into every event.
package tracefile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// SchedWaitSpan is the span name the pipeline scheduler records for a
// blocking Acquire; aggregate queue-wait attribution sums these.
const SchedWaitSpan = "sched-wait"

// Span is one reconstructed span of a trace file.
type Span struct {
	ID       int64
	ParentID int64 // 0 for roots
	Name     string
	StartUS  int64
	DurUS    int64
	Args     map[string]any
	Parent   *Span
	Children []*Span
}

// EndUS returns the span's end timestamp.
func (s *Span) EndUS() int64 { return s.StartUS + s.DurUS }

// Trace is one parsed thistle-trace-v1 file.
type Trace struct {
	// Meta is the file's otherData: schema, trace_id, tool, git_rev,
	// run_id, clamped_spans.
	Meta map[string]string
	// Roots are the top-level spans, in file (canonical preorder) order.
	Roots []*Span
	// Spans is every span, in file order.
	Spans []*Span
}

// TraceID returns the file's trace identity ("" when absent).
func (t *Trace) TraceID() string { return t.Meta["trace_id"] }

// Read parses and validates a thistle-trace-v1 Chrome trace file: the
// schema tag must match, every complete event needs a positive-or-zero
// duration and a valid span_id, parent references must resolve to an
// earlier span, and children must lie within their parent's bounds
// (the writer clamps, so an escaping child means a corrupt file).
func Read(r io.Reader) (*Trace, error) {
	var file obs.ChromeTraceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("tracefile: decode: %w", err)
	}
	if got := file.OtherData["schema"]; got != obs.ChromeTraceSchema {
		return nil, fmt.Errorf("tracefile: schema %q, want %q", got, obs.ChromeTraceSchema)
	}
	tr := &Trace{Meta: file.OtherData}
	byID := make(map[int64]*Span)
	for i, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			continue // metadata (process/thread names)
		case "X":
		default:
			return nil, fmt.Errorf("tracefile: event %d: unsupported phase %q", i, ev.Ph)
		}
		if ev.Dur < 0 {
			return nil, fmt.Errorf("tracefile: event %d (%s): negative duration %d", i, ev.Name, ev.Dur)
		}
		id, err := argInt(ev.Args, "span_id")
		if err != nil {
			return nil, fmt.Errorf("tracefile: event %d (%s): %w", i, ev.Name, err)
		}
		if id <= 0 || byID[id] != nil {
			return nil, fmt.Errorf("tracefile: event %d (%s): invalid or duplicate span_id %d", i, ev.Name, id)
		}
		s := &Span{ID: id, Name: ev.Name, StartUS: ev.TS, DurUS: ev.Dur, Args: ev.Args}
		if _, ok := ev.Args["parent_id"]; ok {
			pid, err := argInt(ev.Args, "parent_id")
			if err != nil {
				return nil, fmt.Errorf("tracefile: event %d (%s): %w", i, ev.Name, err)
			}
			p := byID[pid]
			if p == nil {
				return nil, fmt.Errorf("tracefile: event %d (%s): parent_id %d not seen", i, ev.Name, pid)
			}
			if s.StartUS < p.StartUS || s.EndUS() > p.EndUS() {
				return nil, fmt.Errorf("tracefile: event %d (%s): escapes parent %s bounds", i, ev.Name, p.Name)
			}
			s.ParentID = pid
			s.Parent = p
			p.Children = append(p.Children, s)
		} else {
			tr.Roots = append(tr.Roots, s)
		}
		byID[id] = s
		tr.Spans = append(tr.Spans, s)
	}
	if len(tr.Spans) == 0 {
		return nil, fmt.Errorf("tracefile: no spans")
	}
	return tr, nil
}

// argInt extracts an integer-valued arg (encoding/json decodes numbers
// as float64).
func argInt(args map[string]any, key string) (int64, error) {
	v, ok := args[key]
	if !ok {
		return 0, fmt.Errorf("missing %s arg", key)
	}
	f, ok := v.(float64)
	if !ok || f != float64(int64(f)) {
		return 0, fmt.Errorf("%s arg %v is not an integer", key, v)
	}
	return int64(f), nil
}

// CriticalPath returns the dominant chain of spans: starting from the
// longest root, each step descends into the child with the largest
// duration (ties: later end, then lower ID, so the path is
// deterministic). For a pipeline trace this walks optimize → slowest
// placement → slowest stage → slowest GP pair, answering "where did
// the wall clock go" one level at a time.
func (t *Trace) CriticalPath() []*Span {
	pick := func(cands []*Span) *Span {
		var best *Span
		for _, s := range cands {
			if best == nil {
				best = s
				continue
			}
			switch {
			case s.DurUS != best.DurUS:
				if s.DurUS > best.DurUS {
					best = s
				}
			case s.EndUS() != best.EndUS():
				if s.EndUS() > best.EndUS() {
					best = s
				}
			case s.ID < best.ID:
				best = s
			}
		}
		return best
	}
	var path []*Span
	for s := pick(t.Roots); s != nil; s = pick(s.Children) {
		path = append(path, s)
	}
	return path
}

// SelfTime is one span name's aggregate self-time: the wall clock its
// spans held exclusively, i.e. their durations minus their children's.
type SelfTime struct {
	Name   string
	Count  int
	SelfUS int64
	// TotalUS is the summed (inclusive) duration of the name's spans.
	TotalUS int64
}

// SelfTimes aggregates per-name self-time over the whole trace, sorted
// by self-time descending (ties by name). A span whose concurrent
// children overlap can cover more child-time than its own duration;
// self-time is clamped at zero rather than going negative.
func (t *Trace) SelfTimes() []SelfTime {
	acc := map[string]*SelfTime{}
	for _, s := range t.Spans {
		var childUS int64
		for _, c := range s.Children {
			childUS += c.DurUS
		}
		self := s.DurUS - childUS
		if self < 0 {
			self = 0
		}
		a := acc[s.Name]
		if a == nil {
			a = &SelfTime{Name: s.Name}
			acc[s.Name] = a
		}
		a.Count++
		a.SelfUS += self
		a.TotalUS += s.DurUS
	}
	out := make([]SelfTime, 0, len(acc))
	for _, a := range acc {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfUS != out[j].SelfUS {
			return out[i].SelfUS > out[j].SelfUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// QueueWait is the aggregate scheduler queue-wait attribution of one
// waiting site (the sched-wait span's parent name).
type QueueWait struct {
	// Under is the parent span name the waits occurred beneath
	// ("(root)" for parentless waits).
	Under   string
	Count   int
	TotalUS int64
	MaxUS   int64
}

// QueueWaits aggregates every sched-wait span by the span it waited
// under, sorted by total wait descending (ties by name). The summed
// TotalUS over all entries is the run's aggregate queue wait.
func (t *Trace) QueueWaits() []QueueWait {
	acc := map[string]*QueueWait{}
	for _, s := range t.Spans {
		if s.Name != SchedWaitSpan {
			continue
		}
		under := "(root)"
		if s.Parent != nil {
			under = s.Parent.Name
		}
		a := acc[under]
		if a == nil {
			a = &QueueWait{Under: under}
			acc[under] = a
		}
		a.Count++
		a.TotalUS += s.DurUS
		if s.DurUS > a.MaxUS {
			a.MaxUS = s.DurUS
		}
	}
	out := make([]QueueWait, 0, len(acc))
	for _, a := range acc {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalUS != out[j].TotalUS {
			return out[i].TotalUS > out[j].TotalUS
		}
		return out[i].Under < out[j].Under
	})
	return out
}

// WallUS returns the trace's total wall clock: the latest end over the
// root spans (roots all share the first span's start as epoch 0).
func (t *Trace) WallUS() int64 {
	var end int64
	for _, r := range t.Roots {
		if r.EndUS() > end {
			end = r.EndUS()
		}
	}
	return end
}
