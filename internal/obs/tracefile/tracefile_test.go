package tracefile

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// buildTrace writes a synthetic pipeline-shaped trace through the real
// writer and reads it back: root optimize 0–100ms, a solve stage
// 10–90ms with two gp-pair children (one preceded by a sched-wait),
// and a short validate stage 90–95ms.
func buildTrace(t *testing.T) *Trace {
	t.Helper()
	tr := obs.NewTracer()
	epoch := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := epoch
	tr.Clock(func() time.Time { return now })
	at := func(ms int) { now = epoch.Add(time.Duration(ms) * time.Millisecond) }

	root := tr.StartSpan(nil, "optimize")
	at(10)
	solve := tr.StartSpan(root, "stage:solve")
	wait := tr.StartSpan(solve, SchedWaitSpan)
	at(25)
	wait.End()
	p1 := tr.StartSpan(solve, "gp-pair")
	at(80)
	p1.End()
	p2 := tr.StartSpan(solve, "gp-pair")
	at(90)
	p2.End()
	solve.End()
	val := tr.StartSpan(root, "stage:validate")
	at(95)
	val.End()
	at(100)
	root.End()

	tr.SetTraceID(obs.DeriveTraceID("run-tf"))
	var buf bytes.Buffer
	if _, err := tr.WriteChromeTrace(&buf, map[string]string{"tool": "test"}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestReadRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	if tr.TraceID() != obs.DeriveTraceID("run-tf") {
		t.Fatalf("trace ID lost: %q", tr.TraceID())
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "optimize" {
		t.Fatalf("roots wrong: %+v", tr.Roots)
	}
	if len(tr.Spans) != 6 {
		t.Fatalf("span count = %d, want 6", len(tr.Spans))
	}
	if got := tr.WallUS(); got != 100_000 {
		t.Fatalf("wall = %d, want 100000", got)
	}
}

func TestCriticalPath(t *testing.T) {
	tr := buildTrace(t)
	var names []string
	for _, s := range tr.CriticalPath() {
		names = append(names, s.Name)
	}
	want := "optimize > stage:solve > gp-pair"
	if got := strings.Join(names, " > "); got != want {
		t.Fatalf("critical path %q, want %q", got, want)
	}
	// The chosen gp-pair is the longer one (55ms, not 10ms).
	leaf := tr.CriticalPath()[2]
	if leaf.DurUS != 55_000 {
		t.Fatalf("critical gp-pair dur = %d, want 55000", leaf.DurUS)
	}
}

func TestSelfTimes(t *testing.T) {
	tr := buildTrace(t)
	byName := map[string]SelfTime{}
	for _, st := range tr.SelfTimes() {
		byName[st.Name] = st
	}
	// stage:solve 10–90 minus children (15 wait + 55 + 10 pairs) = 0.
	if got := byName["stage:solve"]; got.SelfUS != 0 || got.TotalUS != 80_000 {
		t.Fatalf("stage:solve self/total = %d/%d, want 0/80000", got.SelfUS, got.TotalUS)
	}
	// gp-pair: two spans, fully self.
	if got := byName["gp-pair"]; got.Count != 2 || got.SelfUS != 65_000 {
		t.Fatalf("gp-pair = %+v, want count 2 self 65000", got)
	}
	// optimize 0–100 minus stages (80 + 5) = 15.
	if got := byName["optimize"]; got.SelfUS != 15_000 {
		t.Fatalf("optimize self = %d, want 15000", got.SelfUS)
	}
	// Sorted descending by self-time.
	sts := tr.SelfTimes()
	for i := 1; i < len(sts); i++ {
		if sts[i].SelfUS > sts[i-1].SelfUS {
			t.Fatalf("self-times not sorted: %+v", sts)
		}
	}
}

func TestQueueWaits(t *testing.T) {
	tr := buildTrace(t)
	qs := tr.QueueWaits()
	if len(qs) != 1 {
		t.Fatalf("queue-wait groups = %d, want 1", len(qs))
	}
	q := qs[0]
	if q.Under != "stage:solve" || q.Count != 1 || q.TotalUS != 15_000 || q.MaxUS != 15_000 {
		t.Fatalf("queue wait = %+v", q)
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":     `{`,
		"wrong schema": `{"traceEvents":[],"otherData":{"schema":"nope"}}`,
		"no spans":     `{"traceEvents":[],"otherData":{"schema":"thistle-trace-v1"}}`,
		"missing span_id": `{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":0,"args":{}}
		],"otherData":{"schema":"thistle-trace-v1"}}`,
		"negative dur": `{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":-5,"pid":1,"tid":0,"args":{"span_id":1}}
		],"otherData":{"schema":"thistle-trace-v1"}}`,
		"dangling parent": `{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":0,"args":{"span_id":1,"parent_id":7}}
		],"otherData":{"schema":"thistle-trace-v1"}}`,
		"child escapes parent": `{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":0,"args":{"span_id":1}},
			{"name":"b","ph":"X","ts":3,"dur":9,"pid":1,"tid":0,"args":{"span_id":2,"parent_id":1}}
		],"otherData":{"schema":"thistle-trace-v1"}}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted invalid input", name)
		}
	}
}

func TestReadSkipsMetadataEvents(t *testing.T) {
	in := `{"traceEvents":[
		{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"x"}},
		{"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":0,"args":{"span_id":1}}
	],"otherData":{"schema":"thistle-trace-v1"}}`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "a" {
		t.Fatalf("spans = %+v", tr.Spans)
	}
}
