// Package arch holds the architecture and technology models of the
// reproduction: the 45 nm technology constants of the paper's Table III,
// the analytical per-access-energy models of Eq. 4 (ε_R = σ_R·R,
// ε_S = σ_S·√S — the paper's closed-form reductions of the Accelergy and
// Cacti tools), the linear area model of Eq. 5, and the Eyeriss baseline
// configuration used throughout the evaluation.
package arch

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadArch reports an invalid architecture configuration.
var ErrBadArch = errors.New("arch: invalid architecture")

// Tech is a set of technology constants (the paper's Table III, 45 nm).
// Units: areas in µm², energies in pJ, bandwidths in words/cycle.
type Tech struct {
	AreaMAC      float64 // µm² per MAC unit
	AreaRegister float64 // µm² per register word
	AreaSRAMWord float64 // µm² per SRAM word
	EnergyMAC    float64 // pJ per int16 MAC
	// SigmaR is the register energy constant: ε_R = SigmaR·R pJ for a
	// register file of R words (Eq. 4).
	SigmaR float64
	// SigmaS is the SRAM energy constant: ε_S = SigmaS·√S pJ for an SRAM
	// of S words (Eq. 4). Table III prints "17.88" with an empty unit
	// cell; we interpret it as 17.88×10⁻³ pJ/(word·√word), which
	// reproduces the paper's 20–30 pJ/MAC Eyeriss band (see DESIGN.md).
	SigmaS float64
	// EnergyDRAM is the pJ per DRAM word access.
	EnergyDRAM float64
	// EnergyNoCHop is the pJ per word-hop of the on-chip network (the
	// inter-PE data movement the paper notes "could be included in a
	// similar manner" but does not model). Zero (the default, matching
	// the paper) disables NoC energy; when positive, each SRAM↔register
	// word is charged for ≈ √P mesh hops.
	EnergyNoCHop float64
	// Bandwidths in words per cycle (Fig. 3(a) example values).
	BWDRAM float64
	BWSRAM float64
	BWReg  float64
	// WordBits is the primitive word width.
	WordBits int
}

// Tech45nm returns the paper's Table III constants.
func Tech45nm() Tech {
	return Tech{
		AreaMAC:      1239.5,
		AreaRegister: 19.874,
		AreaSRAMWord: 6.806,
		EnergyMAC:    2.2,
		SigmaR:       9.06719e-3,
		SigmaS:       17.88e-3,
		EnergyDRAM:   128,
		BWDRAM:       8,
		BWSRAM:       80,
		BWReg:        4,
		WordBits:     16,
	}
}

// Arch is a concrete accelerator configuration: P processing elements,
// R registers per PE, and an SRAM scratchpad of S words.
type Arch struct {
	Name string
	PEs  int64 // P
	Regs int64 // R, words per PE
	SRAM int64 // S, words (shared scratchpad)
	Tech Tech
}

// Validate checks that the configuration is physically meaningful.
func (a *Arch) Validate() error {
	if a.PEs < 1 || a.Regs < 1 || a.SRAM < 1 {
		return fmt.Errorf("%w: P=%d R=%d S=%d", ErrBadArch, a.PEs, a.Regs, a.SRAM)
	}
	return nil
}

// RegEnergy returns the per-access register-file energy ε_R = σ_R·R (pJ).
func (a *Arch) RegEnergy() float64 { return a.Tech.SigmaR * float64(a.Regs) }

// SRAMEnergy returns the per-access SRAM energy ε_S = σ_S·√S (pJ).
func (a *Arch) SRAMEnergy() float64 { return a.Tech.SigmaS * math.Sqrt(float64(a.SRAM)) }

// Area returns the chip area of Eq. 5:
// (Area_R·R + Area_MAC)·P + Area_S·S (µm²).
func (a *Arch) Area() float64 {
	return (a.Tech.AreaRegister*float64(a.Regs)+a.Tech.AreaMAC)*float64(a.PEs) +
		a.Tech.AreaSRAMWord*float64(a.SRAM)
}

// String renders the configuration.
func (a *Arch) String() string {
	return fmt.Sprintf("%s{P=%d, R=%d, S=%d words, area=%.0fµm²}",
		a.Name, a.PEs, a.Regs, a.SRAM, a.Area())
}

// Eyeriss returns the paper's baseline configuration: 168 PEs, 512
// registers per PE, 128 KB scratchpad (65536 16-bit words), with 45 nm
// technology constants.
func Eyeriss() Arch {
	return Arch{
		Name: "eyeriss",
		PEs:  168,
		Regs: 512,
		SRAM: 128 * 1024 / 2, // 128 KB of 16-bit words
		Tech: Tech45nm(),
	}
}

// EyerissAreaBudget returns the total area of the Eyeriss baseline — the
// budget the co-design optimization must respect (the paper's equal-area
// constraint).
func EyerissAreaBudget() float64 {
	e := Eyeriss()
	return e.Area()
}

// CactiSqrtModel approximates per-access SRAM energy for a capacity of s
// words using the σ·√S model. Exposed for the model-validation tests
// that check the shape properties the paper cites from Cacti.
func CactiSqrtModel(sigma float64, words float64) float64 {
	return sigma * math.Sqrt(words)
}
