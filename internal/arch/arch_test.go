package arch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable3Constants(t *testing.T) {
	tech := Tech45nm()
	if tech.AreaMAC != 1239.5 || tech.AreaRegister != 19.874 || tech.AreaSRAMWord != 6.806 {
		t.Fatalf("area constants wrong: %+v", tech)
	}
	if tech.EnergyMAC != 2.2 || tech.EnergyDRAM != 128 {
		t.Fatalf("energy constants wrong: %+v", tech)
	}
	if tech.SigmaR != 9.06719e-3 {
		t.Fatalf("SigmaR = %v", tech.SigmaR)
	}
	if tech.WordBits != 16 {
		t.Fatalf("WordBits = %d", tech.WordBits)
	}
}

func TestEyerissBaseline(t *testing.T) {
	e := Eyeriss()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.PEs != 168 || e.Regs != 512 || e.SRAM != 65536 {
		t.Fatalf("Eyeriss config wrong: %+v", e)
	}
	// ε_R = σ_R·512 ≈ 4.64 pJ: together with the 2.2 pJ MAC this puts the
	// per-MAC floor (4ε_R + ε_op) at ≈ 20.8 pJ, inside the paper's
	// reported 20–30 pJ/MAC Eyeriss band.
	er := e.RegEnergy()
	if math.Abs(er-4.6424) > 1e-3 {
		t.Fatalf("Eyeriss ε_R = %v, want ≈4.642", er)
	}
	floor := 4*er + e.Tech.EnergyMAC
	if floor < 20 || floor > 30 {
		t.Fatalf("Eyeriss per-MAC floor = %v, want in [20, 30]", floor)
	}
	// ε_S = σ_S·√65536 = 17.88e-3·256 ≈ 4.58 pJ.
	es := e.SRAMEnergy()
	if math.Abs(es-4.577) > 1e-2 {
		t.Fatalf("Eyeriss ε_S = %v, want ≈4.58", es)
	}
}

func TestEyerissArea(t *testing.T) {
	e := Eyeriss()
	want := (19.874*512+1239.5)*168 + 6.806*65536
	if math.Abs(e.Area()-want) > 1e-6*want {
		t.Fatalf("Area = %v, want %v", e.Area(), want)
	}
	if EyerissAreaBudget() != e.Area() {
		t.Fatal("EyerissAreaBudget mismatch")
	}
}

func TestValidate(t *testing.T) {
	bad := []Arch{
		{PEs: 0, Regs: 1, SRAM: 1},
		{PEs: 1, Regs: 0, SRAM: 1},
		{PEs: 1, Regs: 1, SRAM: 0},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Fatalf("Validate(%+v) should fail", a)
		}
	}
	good := Arch{PEs: 1, Regs: 1, SRAM: 1, Tech: Tech45nm()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: the Eq. 4 energy models are monotone in capacity, and the
// SRAM model exhibits the square-root shape (doubling capacity increases
// energy by exactly √2).
func TestQuickEnergyModelShape(t *testing.T) {
	tech := Tech45nm()
	f := func(rRaw, sRaw uint16) bool {
		r := int64(rRaw%1024) + 1
		s := int64(sRaw)*16 + 16
		a := Arch{PEs: 1, Regs: r, SRAM: s, Tech: tech}
		b := Arch{PEs: 1, Regs: 2 * r, SRAM: 2 * s, Tech: tech}
		if b.RegEnergy() <= a.RegEnergy() || b.SRAMEnergy() <= a.SRAMEnergy() {
			return false
		}
		ratio := b.SRAMEnergy() / a.SRAMEnergy()
		return math.Abs(ratio-math.Sqrt2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: area is linear in each parameter (Eq. 5 structure).
func TestQuickAreaLinear(t *testing.T) {
	tech := Tech45nm()
	f := func(p8, r8, s8 uint8) bool {
		p := int64(p8%64) + 1
		r := int64(r8) + 1
		s := int64(s8)*64 + 64
		base := Arch{PEs: p, Regs: r, SRAM: s, Tech: tech}
		dp := Arch{PEs: p + 1, Regs: r, SRAM: s, Tech: tech}
		ds := Arch{PEs: p, Regs: r, SRAM: s + 1, Tech: tech}
		// Adding one PE adds (AreaR·R + AreaMAC); adding one SRAM word
		// adds AreaS.
		wantDP := tech.AreaRegister*float64(r) + tech.AreaMAC
		wantDS := tech.AreaSRAMWord
		return math.Abs(dp.Area()-base.Area()-wantDP) < 1e-6 &&
			math.Abs(ds.Area()-base.Area()-wantDS) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCactiSqrtModel(t *testing.T) {
	if got := CactiSqrtModel(2, 16); got != 8 {
		t.Fatalf("CactiSqrtModel = %v, want 8", got)
	}
}
