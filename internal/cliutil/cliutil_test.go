package cliutil

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/obs/tracefile"
)

// parseFlags registers the shared block on a fresh FlagSet and parses
// args, mirroring what each CLI's main does.
func parseFlags(t *testing.T, args ...string) *Flags {
	t.Helper()
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &f
}

// TestRuntimeAllOff: with no flags the runtime is the zero-overhead
// fast path — nil Obs, nil cache — yet every lifecycle method still
// works.
func TestRuntimeAllOff(t *testing.T) {
	f := parseFlags(t)
	rt, err := f.Setup("test", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Obs != nil {
		t.Fatalf("all-off runtime has Obs %v", rt.Obs)
	}
	c := OpenCache[int](rt, "test")
	if c != nil {
		t.Fatalf("all-off runtime has cache %v", c)
	}
	if rt.ShowCacheStats() {
		t.Fatal("ShowCacheStats true without -cache-stats")
	}
	var out bytes.Buffer
	if err := rt.Finish(&out, c.Stats()); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeFullStack wires every feature at once — verbosity,
// metrics, cache, events, manifest — and checks the pieces land where
// the CLIs expect them: a shared Obs with metrics on, a working cache,
// an events file with run_start/run_end, and a manifest that folds in
// the cache counters.
func TestRuntimeFullStack(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "events.jsonl")
	manifestPath := filepath.Join(dir, "manifest.json")
	var warn bytes.Buffer
	f := parseFlags(t,
		"-v", "warn", "-metrics",
		"-cache", "-cache-stats",
		"-events", eventsPath, "-manifest", manifestPath,
	)
	rt, err := f.Setup("test", []string{"-arg"}, &warn)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Obs == nil || !rt.Obs.MetricsEnabled() || !rt.Obs.EventsEnabled() {
		t.Fatal("full-stack runtime missing obs features")
	}
	if !rt.ShowCacheStats() {
		t.Fatal("ShowCacheStats false with -cache-stats")
	}
	c := OpenCache[int](rt, "test")
	if c == nil {
		t.Fatal("cache not built despite -cache")
	}
	key := cache.Key{Component: "test", Params: []cache.Param{cache.ParamInt("k", 1)}}
	v, hit, err := c.Do(key.Signature(), func() (int, error) { return 42, nil })
	if err != nil || v != 42 || hit {
		t.Fatalf("cache Do = %v, hit=%v, %v", v, hit, err)
	}
	if v, hit, _ = c.Do(key.Signature(), func() (int, error) { return 0, nil }); v != 42 || !hit {
		t.Fatalf("cache hit = %v (hit=%v), want 42", v, hit)
	}
	var metricsOut bytes.Buffer
	if err := rt.Finish(&metricsOut, c.Stats()); err != nil {
		t.Fatal(err)
	}
	rt.Close()

	raw, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	stream := string(raw)
	for _, ev := range []string{"run_start", "run_end"} {
		if !strings.Contains(stream, ev) {
			t.Errorf("event stream missing %s:\n%s", ev, stream)
		}
	}
	var manifest struct {
		Tool  string `json:"tool"`
		Cache *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	mraw, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mraw, &manifest); err != nil {
		t.Fatal(err)
	}
	if manifest.Tool != "test" {
		t.Errorf("manifest tool = %q", manifest.Tool)
	}
	if manifest.Cache == nil || manifest.Cache.Hits != 1 || manifest.Cache.Misses != 1 {
		t.Errorf("manifest cache stats = %+v, want 1 hit / 1 miss", manifest.Cache)
	}
	if warn.Len() != 0 {
		t.Errorf("unexpected warnings: %s", warn.String())
	}
}

// TestManifestCacheStats: an unused cache is omitted from the manifest
// entirely rather than reported as all-zero.
func TestManifestCacheStats(t *testing.T) {
	if got := manifestCacheStats(cache.Stats{}); got != nil {
		t.Fatalf("unused cache produced stats block %+v", got)
	}
	s := cache.Stats{Hits: 3, Misses: 1, Stores: 1}
	got := manifestCacheStats(s)
	if got == nil || got.Hits != 3 || got.Misses != 1 || got.HitRate != s.HitRate() {
		t.Fatalf("manifestCacheStats = %+v", got)
	}
}

// TestTraceOut wires -trace-out (plus -events so a run ID exists) and
// checks Finish writes a Chrome trace that the tracefile reader
// accepts, with the trace ID derived from the run ID and the runtime
// metadata (tool, run_id) in otherData.
func TestTraceOut(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace.json")
	eventsPath := filepath.Join(dir, "events.jsonl")
	f := parseFlags(t, "-trace-out", tracePath, "-events", eventsPath)
	rt, err := f.Setup("test", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Obs == nil || rt.Obs.Tracer == nil {
		t.Fatal("-trace-out did not enable the tracer")
	}
	runID := f.Events.Recorder().RunID()
	if runID == "" {
		t.Fatal("no run ID despite -events")
	}
	if got := rt.Obs.Tracer.TraceID(); got != obs.DeriveTraceID(runID) {
		t.Fatalf("trace ID %q not derived from run ID %q", got, runID)
	}

	root := rt.Obs.StartSpan(nil, "optimize")
	child := rt.Obs.StartSpan(root, "stage:solve")
	child.End()
	root.End()
	if err := rt.Finish(io.Discard, cache.Stats{}); err != nil {
		t.Fatal(err)
	}
	rt.Close()

	raw, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	trc, err := tracefile.Read(raw)
	if err != nil {
		t.Fatalf("trace file unreadable: %v", err)
	}
	if trc.TraceID() != obs.DeriveTraceID(runID) {
		t.Fatalf("serialized trace ID = %q", trc.TraceID())
	}
	if trc.Meta["tool"] != "test" || trc.Meta["run_id"] != runID {
		t.Fatalf("trace meta = %v", trc.Meta)
	}
	if len(trc.Spans) != 2 || trc.Roots[0].Name != "optimize" {
		t.Fatalf("trace spans = %+v", trc.Spans)
	}
}

// TestVersionFlag: -version is recognized by the shared block and
// HandleVersion prints the stamped revision exactly once.
func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	f := parseFlags(t)
	if f.HandleVersion("test", &out) || out.Len() != 0 {
		t.Fatal("HandleVersion fired without -version")
	}
	f = parseFlags(t, "-version")
	if !f.HandleVersion("test", &out) {
		t.Fatal("HandleVersion ignored -version")
	}
	got := strings.TrimSpace(out.String())
	if got != VersionString("test") || !strings.HasPrefix(got, "test ") {
		t.Fatalf("version line = %q", got)
	}
	if len(got) <= len("test ") {
		t.Fatal("version line carries no revision")
	}
}
