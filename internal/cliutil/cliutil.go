// Package cliutil assembles the runtime shared by every Thistle CLI:
// the observability bundle (leveled logs, trace/metrics sinks, CPU and
// heap profiles), the content-addressed result cache, and the run-record
// event stream, all configured by one common flag block. The four
// commands (thistle, experiments, tlmapper, tlmodel) used to copy this
// wiring; they now differ only in their tool name and cached value type.
//
// Usage:
//
//	var rf cliutil.Flags
//	rf.Register(flag.CommandLine)
//	flag.Parse()
//	rt, err := rf.Setup("mytool", os.Args[1:], os.Stderr)
//	if err != nil { return err }
//	defer rt.Close()
//	c := cliutil.OpenCache[*core.Result](rt, "optimize")
//	... run using rt.Obs and c ...
//	return rt.Finish(os.Stdout, c.Stats())
package cliutil

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/obs/events"
)

// Flags is the shared CLI flag block: obs (verbosity, trace, metrics,
// profiles), cache (enable, dir, capacity, stats), events (event
// stream, manifest, status server), and -version.
type Flags struct {
	Obs    obs.Flags
	Cache  cache.Flags
	Events events.Flags

	// Version is the shared -version flag; mains call HandleVersion
	// right after flag parsing.
	Version bool
}

// Register installs every shared flag on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	f.Obs.Register(fs)
	f.Cache.Register(fs)
	f.Events.Register(fs)
	fs.BoolVar(&f.Version, "version", false, "print the tool name and build git revision, then exit")
}

// VersionString formats tool's -version line from the git revision the
// toolchain stamped into the binary — the same value run manifests
// record as git_rev, so a binary, its manifests, and its trace files
// can be correlated from the CLI alone.
func VersionString(tool string) string {
	rev := events.BuildRevision()
	if rev == "" {
		rev = "unknown (built without VCS info)"
	}
	return tool + " " + rev
}

// HandleVersion prints the version line to w and reports true when the
// user passed -version; mains return immediately on true.
func (f *Flags) HandleVersion(tool string, w io.Writer) bool {
	if !f.Version {
		return false
	}
	fmt.Fprintln(w, VersionString(tool))
	return true
}

// Runtime is one CLI invocation's assembled shared runtime. The zero
// value is not useful; build one with Flags.Setup.
type Runtime struct {
	// Obs is the telemetry bundle (nil-safe: a run with no telemetry
	// flags yields a nil *Obs whose methods all no-op).
	Obs   *obs.Obs
	flags *Flags
}

// Setup assembles the runtime after flag parsing: the obs bundle first,
// then the event stream wrapping it (emitting run_start and, when
// requested, serving the live status endpoint). tool and args name the
// invocation in the run record; warnings go to warnw.
func (f *Flags) Setup(tool string, args []string, warnw io.Writer) (*Runtime, error) {
	o, err := f.Obs.Setup(warnw)
	if err != nil {
		return nil, err
	}
	if o, err = f.Events.Setup(o, tool, args, warnw); err != nil {
		f.Obs.Close()
		return nil, err
	}
	// Stamp trace identity: the trace ID is derived from the run ID so a
	// -trace-out file correlates to the run's manifest and event stream;
	// without an event stream the tracer derives its own stable ID.
	if o != nil && o.Tracer != nil {
		meta := map[string]string{"tool": tool}
		if rev := events.BuildRevision(); rev != "" {
			meta["git_rev"] = rev
		}
		if runID := f.Events.Recorder().RunID(); runID != "" {
			o.Tracer.SetTraceID(obs.DeriveTraceID(runID))
			meta["run_id"] = runID
		}
		f.Obs.TraceMeta = meta
	}
	return &Runtime{Obs: o, flags: f}, nil
}

// OpenCache builds the tool's result cache from the shared flags, or
// nil when caching is off (the nil cache's methods are no-ops where it
// matters: Stats returns zeros).
func OpenCache[V any](rt *Runtime, component string) *cache.Cache[V] {
	return cache.Setup[V](&rt.flags.Cache, component, rt.Obs)
}

// ShowCacheStats reports whether the user asked for a cache-stats dump.
func (rt *Runtime) ShowCacheStats() bool { return rt.flags.Cache.ShowStats }

// Close releases the event stream and the obs outputs (trace file,
// profiles). Call it via defer right after Setup.
func (rt *Runtime) Close() {
	rt.flags.Events.Close()
	rt.flags.Obs.Close()
}

// Finish completes the run record: the event stream's run_end and
// manifest (folding in the cache counters when the cache was used),
// then the obs finishers (metrics dump to metricsOut, profile flush).
// Both run even if the first fails, so a broken manifest sink cannot
// suppress the metrics dump; the first error wins.
func (rt *Runtime) Finish(metricsOut io.Writer, stats cache.Stats) error {
	errEv := rt.flags.Events.Finish(manifestCacheStats(stats))
	errObs := rt.flags.Obs.Finish(metricsOut)
	if errEv != nil {
		return errEv
	}
	return errObs
}

// manifestCacheStats converts a cache's counters for the manifest,
// returning nil for an unused cache (so the manifest omits the block).
func manifestCacheStats(s cache.Stats) *events.CacheStats {
	if s.Hits+s.Misses == 0 {
		return nil
	}
	return &events.CacheStats{
		Hits:              s.Hits,
		Misses:            s.Misses,
		DiskHits:          s.DiskHits,
		SingleflightWaits: s.SingleflightWaits,
		Stores:            s.Stores,
		Evictions:         s.Evictions,
		HitRate:           s.HitRate(),
	}
}
