package workloads

import "testing"

func TestTable2Shapes(t *testing.T) {
	rn := ResNet18()
	if len(rn) != 12 {
		t.Fatalf("ResNet-18 layers = %d, want 12", len(rn))
	}
	yolo := Yolo9000()
	if len(yolo) != 11 {
		t.Fatalf("Yolo-9000 layers = %d, want 11", len(yolo))
	}
	// Spot-check rows straight from Table II.
	l1 := rn[0]
	if l1.K != 64 || l1.C != 3 || l1.HIn != 224 || l1.RS != 7 || l1.Stride != 2 {
		t.Fatalf("ResNet L1 = %+v", l1)
	}
	if l1.HOut() != 112 {
		t.Fatalf("ResNet L1 HOut = %d, want 112", l1.HOut())
	}
	l12 := rn[11]
	if l12.K != 512 || l12.C != 512 || l12.HIn != 7 || l12.RS != 3 || l12.Stride != 1 {
		t.Fatalf("ResNet L12 = %+v", l12)
	}
	y11 := yolo[10]
	if y11.K != 28269 || y11.C != 1024 || y11.HIn != 17 || y11.RS != 1 {
		t.Fatalf("Yolo L11 = %+v", y11)
	}
	for _, l := range All() {
		if l.Stride != 1 && l.Stride != 2 {
			t.Fatalf("%s has stride %d", l.Name(), l.Stride)
		}
		if l.HIn%l.Stride != 0 {
			t.Fatalf("%s HIn %d not divisible by stride", l.Name(), l.HIn)
		}
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("All = %d layers, want 23", len(all))
	}
	l, ok := ByName("yolo9000_L3")
	if !ok || l.K != 128 || l.C != 64 {
		t.Fatalf("ByName = %+v, %v", l, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName false positive")
	}
}

func TestProblemsValidate(t *testing.T) {
	for _, l := range All() {
		p, err := l.Problem()
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		if p.Ops() != l.MACs() {
			t.Fatalf("%s: Ops %d != MACs %d", l.Name(), p.Ops(), l.MACs())
		}
	}
}

func TestMACCounts(t *testing.T) {
	// ResNet L2: 64·64·56·56·3·3.
	l := ResNet18()[1]
	if got := l.MACs(); got != 64*64*56*56*9 {
		t.Fatalf("MACs = %d", got)
	}
}

func TestMatMulPresets(t *testing.T) {
	ps := MatMulPresets()
	if len(ps) != 3 {
		t.Fatalf("presets = %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
