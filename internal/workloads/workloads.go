// Package workloads encodes the evaluation workloads of the paper's
// Table II: all convolution layers of ResNet-18 and Yolo-9000 (batch 1),
// plus matrix-multiplication presets used by the overview examples.
//
// Table II conventions: K = output channels, C = input channels, H = W =
// input image height/width, R = S = kernel size, stride 2 where marked,
// else 1. The loop-nest IR uses output feature-map extents, so H_out =
// ceil(H_in/stride) (all Table II shapes divide evenly; the 7×7 stride-2
// ResNet stem uses the conventional 112×112 output).
package workloads

import (
	"fmt"

	"repro/internal/loopnest"
)

// Layer is one Table II row.
type Layer struct {
	Pipeline string // "resnet18" or "yolo9000"
	Index    int    // 1-based layer number as in Table II
	K, C     int64
	HIn      int64 // input image height/width (Table II's H/W column)
	RS       int64 // kernel size (R = S)
	Stride   int64
}

// Name returns a stable identifier like "resnet18_L4".
func (l Layer) Name() string {
	return fmt.Sprintf("%s_L%d", l.Pipeline, l.Index)
}

// HOut returns the output feature-map extent.
func (l Layer) HOut() int64 { return l.HIn / l.Stride }

// Problem converts the layer to the loop-nest IR.
func (l Layer) Problem() (*loopnest.Problem, error) {
	return loopnest.Conv2D(loopnest.Conv2DConfig{
		Name:    l.Name(),
		N:       1,
		K:       l.K,
		C:       l.C,
		H:       l.HOut(),
		W:       l.HOut(),
		R:       l.RS,
		S:       l.RS,
		StrideX: l.Stride,
		StrideY: l.Stride,
	})
}

// MACs returns the layer's multiply-accumulate count.
func (l Layer) MACs() int64 {
	h := l.HOut()
	return l.K * l.C * h * h * l.RS * l.RS
}

// ResNet18 returns the 12 convolution stages of Table II (left columns
// give Yolo; these are the right columns).
func ResNet18() []Layer {
	rows := []struct {
		k, c, h, rs, stride int64
	}{
		{64, 3, 224, 7, 2},
		{64, 64, 56, 3, 1},
		{64, 64, 56, 1, 1},
		{128, 64, 56, 3, 2},
		{128, 64, 56, 1, 2},
		{128, 128, 28, 3, 1},
		{256, 128, 28, 3, 2},
		{256, 128, 28, 1, 1},
		{256, 256, 14, 3, 1},
		{512, 256, 14, 3, 2},
		{512, 256, 14, 1, 2},
		{512, 512, 7, 3, 1},
	}
	out := make([]Layer, len(rows))
	for i, r := range rows {
		out[i] = Layer{
			Pipeline: "resnet18", Index: i + 1,
			K: r.k, C: r.c, HIn: r.h, RS: r.rs, Stride: r.stride,
		}
	}
	return out
}

// Yolo9000 returns the 11 convolution stages of Table II.
func Yolo9000() []Layer {
	rows := []struct {
		k, c, h, rs int64
	}{
		{32, 3, 544, 3},
		{64, 32, 272, 3},
		{128, 64, 136, 3},
		{64, 128, 136, 1},
		{256, 128, 68, 3},
		{128, 256, 68, 1},
		{512, 256, 34, 3},
		{256, 512, 34, 1},
		{1024, 512, 17, 3},
		{512, 1024, 17, 1},
		{28269, 1024, 17, 1},
	}
	out := make([]Layer, len(rows))
	for i, r := range rows {
		out[i] = Layer{
			Pipeline: "yolo9000", Index: i + 1,
			K: r.k, C: r.c, HIn: r.h, RS: r.rs, Stride: 1,
		}
	}
	return out
}

// All returns both pipelines concatenated (ResNet-18 first), the layer
// set the paper's figures sweep.
func All() []Layer {
	return append(ResNet18(), Yolo9000()...)
}

// ByName finds a layer by its Name() identifier.
func ByName(name string) (Layer, bool) {
	for _, l := range All() {
		if l.Name() == name {
			return l, true
		}
	}
	return Layer{}, false
}

// MatMulPresets returns the matrix-multiplication problems used by the
// quickstart example and the Fig. 1 sanity benchmarks.
func MatMulPresets() []*loopnest.Problem {
	return []*loopnest.Problem{
		loopnest.MatMul(256, 256, 256),
		loopnest.MatMul(1024, 1024, 1024),
		loopnest.MatMul(4096, 512, 128),
	}
}
