package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workloads"
)

func quickCfg() Config {
	all := workloads.All()
	return Config{Quick: true, Layers: []workloads.Layer{all[5], all[14]}, Seed: 3}
}

func TestTable2(t *testing.T) {
	e, err := Table2(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Labels) != 23 || len(e.Series) != 6 {
		t.Fatalf("table2 shape: %d labels, %d series", len(e.Labels), len(e.Series))
	}
	var buf bytes.Buffer
	e.Render(&buf)
	if !strings.Contains(buf.String(), "resnet18_L1") || !strings.Contains(buf.String(), "yolo9000_L11") {
		t.Fatalf("render missing layers:\n%s", buf.String())
	}
}

func TestTable3(t *testing.T) {
	e, err := Table3(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Labels) != 7 {
		t.Fatalf("table3 rows = %d", len(e.Labels))
	}
	if e.Series[0].Values[0] != 1239.5 {
		t.Fatalf("AreaMAC = %v", e.Series[0].Values[0])
	}
}

// TestFig4Quick checks the core Fig. 4 claims on a 2-layer subset:
// Thistle and Mapper both land in a sane Eyeriss band, with Thistle at
// least as good (EnergyUp ≥ ~1).
func TestFig4Quick(t *testing.T) {
	e, err := Fig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Labels {
		th := e.Series[0].Values[i]
		mp := e.Series[1].Values[i]
		up := e.Series[2].Values[i]
		if th < 18 || th > 35 {
			t.Errorf("%s: thistle %.2f pJ/MAC outside Eyeriss band", e.Labels[i], th)
		}
		if up < 0.95 {
			t.Errorf("%s: EnergyUp %.3f < 0.95 (mapper %.2f beat thistle %.2f)",
				e.Labels[i], up, mp, th)
		}
	}
}

// TestFig5Quick: co-design must cut pJ/MAC well below the Eyeriss line
// (the paper reports ~4-6x, reaching ~5 pJ/MAC).
func TestFig5Quick(t *testing.T) {
	e, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Labels {
		base := e.Series[0].Values[i]
		cd := e.Series[1].Values[i]
		if cd >= base {
			t.Errorf("%s: codesign %.2f did not improve on Eyeriss %.2f", e.Labels[i], cd, base)
		}
		if cd > 10 {
			t.Errorf("%s: codesign %.2f pJ/MAC > 10 (paper: <10 for all layers)", e.Labels[i], cd)
		}
	}
}

// TestFig6Quick: the single shared architecture should stay well below
// the Eyeriss line and not far above layer-wise.
func TestFig6Quick(t *testing.T) {
	e, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Labels {
		eyeriss := e.Series[0].Values[i]
		lw := e.Series[1].Values[i]
		single := e.Series[2].Values[i]
		if single >= eyeriss {
			t.Errorf("%s: single-arch %.2f not better than Eyeriss %.2f", e.Labels[i], single, eyeriss)
		}
		// Layer-wise should be at least roughly as good as the shared
		// architecture; a small inversion is possible because the
		// integerization is not globally optimal.
		if single < 0.9*lw {
			t.Errorf("%s: single-arch %.2f far below layer-wise %.2f", e.Labels[i], single, lw)
		}
	}
	if len(e.Notes) == 0 || !strings.Contains(e.Notes[0], "energy-dominant layer") {
		t.Fatalf("missing dominant-layer note: %v", e.Notes)
	}
}

// TestFig7Quick: Thistle IPC must be within the theoretical max and at
// least match the mapper (speedup ≥ ~1).
func TestFig7Quick(t *testing.T) {
	e, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Labels {
		th := e.Series[0].Values[i]
		if th > 168+1e-9 {
			t.Errorf("%s: IPC %.1f exceeds the 168-PE maximum", e.Labels[i], th)
		}
		if e.Series[2].Values[i] < 0.95 {
			t.Errorf("%s: speedup %.3f < 0.95", e.Labels[i], e.Series[2].Values[i])
		}
	}
}

// TestFig8Quick: layer-wise co-design throughput should exceed Eyeriss
// substantially (the paper reports order-of-magnitude gains).
func TestFig8Quick(t *testing.T) {
	e, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Labels {
		eyeriss := e.Series[0].Values[i]
		lw := e.Series[1].Values[i]
		if lw <= eyeriss {
			t.Errorf("%s: layer-wise IPC %.1f not above Eyeriss %.1f", e.Labels[i], lw, eyeriss)
		}
	}
}

func TestRunnersRegistry(t *testing.T) {
	rs := AllRunners()
	for _, id := range Order() {
		if rs[id] == nil {
			t.Fatalf("missing runner %s", id)
		}
	}
	if len(rs) != len(Order()) {
		t.Fatalf("registry size %d != order size %d", len(rs), len(Order()))
	}
}

func TestExtEDPQuick(t *testing.T) {
	e, err := ExtEDP(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Labels {
		en, de, ed := e.Series[0].Values[i], e.Series[1].Values[i], e.Series[2].Values[i]
		best := en
		if de < best {
			best = de
		}
		if ed > 1.05*best {
			t.Errorf("%s: EDP design %.4g worse than best single-objective %.4g", e.Labels[i], ed, best)
		}
	}
}

func TestExtNoCQuick(t *testing.T) {
	e, err := ExtNoC(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Labels {
		if e.Series[1].Values[i] <= e.Series[0].Values[i] {
			t.Errorf("%s: NoC-modeled energy not above baseline", e.Labels[i])
		}
		// The paper's observation: the NoC component stays non-dominant.
		if e.Series[2].Values[i] > 50 {
			t.Errorf("%s: NoC component %.1f%% dominates", e.Labels[i], e.Series[2].Values[i])
		}
	}
}

func TestRenderBars(t *testing.T) {
	e := &Experiment{
		ID: "x", Title: "t", Unit: "u",
		Labels: []string{"a", "b"},
		Series: []Series{{Name: "s", Values: []float64{1, 2}}},
	}
	var buf bytes.Buffer
	e.RenderBars(&buf)
	out := buf.String()
	if !strings.Contains(out, "########") || !strings.Contains(out, "max 2.000") {
		t.Fatalf("bars output:\n%s", out)
	}
}
