package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/workloads"
)

// ExtEDP evaluates the energy-delay-product objective the paper mentions
// but does not explore: for each layer on the fixed Eyeriss
// architecture, it reports the EDP achieved by the energy-optimal,
// delay-optimal, and EDP-optimal dataflows. Expected shape: the EDP
// column is the minimum of the three (up to integerization slack).
func ExtEDP(cfg Config) (*Experiment, error) {
	cfg = extLayers(cfg).withDefaults()
	eyeriss := arch.Eyeriss()
	series := []Series{
		{Name: "energy_design_EDP"},
		{Name: "delay_design_EDP"},
		{Name: "edp_design_EDP"},
	}
	crits := []model.Criterion{model.MinEnergy, model.MinDelay, model.MinEDP}
	ctx, span := cfg.startSpan("ext_edp")
	defer span.End()
	for _, l := range cfg.Layers {
		cfg.progress("ext_edp %s", l.Name())
		lctx, lspan := layerSpan(ctx, l)
		for ci, crit := range crits {
			res, err := thistleFixed(lctx, l, &eyeriss, crit)
			if err != nil {
				lspan.End()
				return nil, fmt.Errorf("%s (%v): %w", l.Name(), crit, err)
			}
			edp := res.Best.Report.Energy * res.Best.Report.Cycles
			series[ci].Values = append(series[ci].Values, edp/1e12) // pJ·cycles → µJ·cycles-ish scale
		}
		lspan.End()
	}
	return &Experiment{
		ID:     "ext_edp",
		Title:  "Extension: energy-delay product objective on Eyeriss (lower is better)",
		Unit:   "pJ·cycles × 1e12",
		Labels: layerNames(cfg.Layers),
		Series: series,
		Notes: []string{
			"EDP = posynomial energy × delay variable stays DGP-valid (paper Section I notes the objective is expressible)",
		},
	}, nil
}

// ExtNoC evaluates the inter-PE network energy extension (the paper's
// "could be included in a similar manner"): energy-optimal dataflows on
// Eyeriss with the mesh-hop model disabled vs enabled, and the number of
// PEs the NoC-aware optimizer chooses to use.
func ExtNoC(cfg Config) (*Experiment, error) {
	cfg = extLayers(cfg).withDefaults()
	base := arch.Eyeriss()
	noc := arch.Eyeriss()
	noc.Tech.EnergyNoCHop = 0.1 // pJ per word-hop
	series := []Series{
		{Name: "no_noc_pJ_per_MAC"},
		{Name: "noc_pJ_per_MAC"},
		{Name: "noc_component_pct"},
	}
	ctx, span := cfg.startSpan("ext_noc")
	defer span.End()
	for _, l := range cfg.Layers {
		cfg.progress("ext_noc %s", l.Name())
		lctx, lspan := layerSpan(ctx, l)
		rb, err := thistleFixed(lctx, l, &base, model.MinEnergy)
		if err != nil {
			lspan.End()
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		rn, err := thistleFixed(lctx, l, &noc, model.MinEnergy)
		lspan.End()
		if err != nil {
			return nil, fmt.Errorf("%s noc: %w", l.Name(), err)
		}
		series[0].Values = append(series[0].Values, rb.Best.Report.EnergyPerMAC)
		series[1].Values = append(series[1].Values, rn.Best.Report.EnergyPerMAC)
		series[2].Values = append(series[2].Values,
			100*rn.Best.Report.Breakdown.NoC/rn.Best.Report.Energy)
	}
	return &Experiment{
		ID:     "ext_noc",
		Title:  "Extension: inter-PE network energy (0.1 pJ/word-hop mesh model) on Eyeriss",
		Unit:   "pJ/MAC",
		Labels: layerNames(cfg.Layers),
		Series: series,
		Notes: []string{
			"the paper omits NoC energy after observing it is non-dominant; the extension confirms the component stays small",
		},
	}, nil
}

// extLayers restricts extension sweeps to a representative subset by
// default (extensions are not paper figures; full sweeps are opt-in via
// cfg.Layers).
func extLayers(cfg Config) Config {
	if cfg.Layers == nil && !cfg.Quick {
		all := workloads.All()
		cfg.Layers = []workloads.Layer{all[0], all[5], all[11], all[13], all[18], all[22]}
	}
	return cfg
}
