package experiments

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// eventLog is a concurrency-safe obs.EventSink recording emitted events
// in order.
type eventLog struct {
	mu     sync.Mutex
	types  []string
	fields []map[string]any
}

func (s *eventLog) Emit(typ string, fields map[string]any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.types = append(s.types, typ)
	s.fields = append(s.fields, fields)
}

func (s *eventLog) byType(typ string) []map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []map[string]any
	for i, t := range s.types {
		if t == typ {
			out = append(out, s.fields[i])
		}
	}
	return out
}

// rename returns a copy of l under a different pipeline name: same
// shape, same solve signature (names are excluded from the canonical
// problem hash), different Name().
func rename(l workloads.Layer, pipeline string) workloads.Layer {
	l.Pipeline = pipeline
	return l
}

// TestOptimizeLayersDedupProvenance pins the deterministic-provenance
// contract: with groups solved concurrently and in whatever order they
// finish, every layer_reused event must still name the FIRST layer in
// input order that carries the signature as its "from", and the events
// themselves appear in input order. The layer list interleaves two
// distinct shapes, each with renamed aliases, so getting provenance
// from completion order (or from the map iteration over groups) would
// be caught.
func TestOptimizeLayersDedupProvenance(t *testing.T) {
	all := workloads.All()
	a, b := all[5], all[14]
	layers := []workloads.Layer{
		a,                  // 0: owner of shape A
		b,                  // 1: owner of shape B
		rename(a, "alias"), // 2: reused from 0
		rename(b, "alias"), // 3: reused from 1
		rename(a, "again"), // 4: reused from 0 (not from 2)
	}
	log := &eventLog{}
	ctx := obs.NewContext(context.Background(), &obs.Obs{Events: log})
	eyeriss := arch.Eyeriss()
	opts := core.Options{Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &eyeriss, Parallel: 4}
	results, err := OptimizeLayers(ctx, layers, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(layers) {
		t.Fatalf("got %d results for %d layers", len(results), len(layers))
	}
	// Deduplicated entries share the owner's result pointer.
	if results[2] != results[0] || results[4] != results[0] || results[3] != results[1] {
		t.Fatal("deduplicated layers do not share the owner's result")
	}
	if results[0] == results[1] {
		t.Fatal("distinct shapes collapsed onto one result")
	}
	reused := log.byType(obs.EvLayerReused)
	want := []struct{ problem, from string }{
		{layers[2].Name(), a.Name()},
		{layers[3].Name(), b.Name()},
		{layers[4].Name(), a.Name()},
	}
	if len(reused) != len(want) {
		t.Fatalf("got %d layer_reused events, want %d", len(reused), len(want))
	}
	for i, w := range want {
		if got := reused[i]["problem"]; got != w.problem {
			t.Errorf("event %d: problem = %v, want %s", i, got, w.problem)
		}
		if got := reused[i]["from"]; got != w.from {
			t.Errorf("event %d: from = %v, want %s", i, got, w.from)
		}
		if reused[i]["energy_pj"] == nil || reused[i]["sig"] == nil {
			t.Errorf("event %d: missing report fields: %v", i, reused[i])
		}
	}
	// The total event arrives before any reuse report.
	totals := log.byType(obs.EvLayersTotal)
	if len(totals) != 1 || totals[0]["total"] != len(layers) {
		t.Fatalf("layers_total events = %v", totals)
	}
}

// TestOptimizeLayersError: a failing solve surfaces as an error
// attributed to the owning layer, never as a bare cancellation. A
// single signature group (layer plus alias) keeps the attribution
// deterministic: the group owner is the first layer in input order.
func TestOptimizeLayersError(t *testing.T) {
	all := workloads.All()
	bad := arch.Arch{Name: "toosmall", PEs: 4, Regs: 2, SRAM: 2048, Tech: arch.Tech45nm()}
	layers := []workloads.Layer{all[5], rename(all[5], "alias")}
	opts := core.Options{Criterion: model.MinEnergy, Mode: core.FixedArch, Arch: &bad, Parallel: 2}
	_, err := OptimizeLayers(context.Background(), layers, opts, nil)
	if err == nil {
		t.Fatal("expected error from infeasible architecture")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("real failure reported as cancellation: %v", err)
	}
	if got, want := err.Error(), layers[0].Name()+": "; !strings.HasPrefix(got, want) {
		t.Fatalf("error %q not attributed to owning layer %s", got, layers[0].Name())
	}
}
