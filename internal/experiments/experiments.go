// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): the workload/technology tables (II, III), the
// fixed-Eyeriss energy and throughput comparisons between Thistle and the
// Mapper baseline (Figs. 4, 7), the layer-wise architecture-dataflow
// co-design results (Figs. 5, 8), and the single-architecture-for-all-
// layers studies (Figs. 6, 8).
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/loopnest"
	"repro/internal/mapper"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// Config tunes an experiment run.
type Config struct {
	// Layers defaults to all 23 Table II layers.
	Layers []workloads.Layer
	// Quick reduces mapper budgets and layer counts for tests/benches.
	Quick bool
	// Seed makes mapper runs deterministic.
	Seed int64
	// Verbose writes progress lines to Progress.
	Progress io.Writer
	// Obs receives telemetry from the experiment runs: a span per
	// experiment with per-layer children (each wrapping its Thistle and
	// mapper sub-runs), plus the core/solver/mapper counters. Nil
	// disables it.
	Obs *obs.Obs
	// Cache memoizes Thistle solves by content signature across layers
	// and experiments. The paper's sweeps re-solve the same (shape ×
	// architecture × criterion) problem repeatedly — Figs. 4, 5, and 6
	// all need the energy-optimal Eyeriss dataflow of every layer, for
	// example — so one shared cache removes most of the duplicate GP
	// work. Nil disables memoization.
	Cache *core.SolveCache
}

func (c Config) withDefaults() Config {
	if c.Layers == nil {
		if c.Quick {
			all := workloads.All()
			// A small representative subset: early, middle, late layers of
			// each pipeline.
			c.Layers = []workloads.Layer{all[1], all[7], all[13], all[18]}
		} else {
			c.Layers = workloads.All()
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) mapperOptions(crit model.Criterion) mapper.Options {
	o := mapper.Options{Criterion: crit, Seed: c.Seed}
	if c.Quick {
		o.Threads = 2
		o.MaxTrials = 1500
		o.Victory = 500
	} else {
		o.Threads = 8
		o.MaxTrials = 20000
		o.Victory = 4000
	}
	return o
}

func (c Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// startSpan opens the root span of one experiment, returning a context
// that carries the telemetry bundle and the solve cache for the
// per-layer sub-runs.
func (c Config) startSpan(id string) (context.Context, *obs.Span) {
	ctx := obs.NewContext(context.Background(), c.Obs)
	ctx = core.ContextWithCache(ctx, c.Cache)
	return obs.StartSpan(ctx, "experiment", obs.String("id", id))
}

// layerSpan opens a per-layer child span inside an experiment.
func layerSpan(ctx context.Context, l workloads.Layer) (context.Context, *obs.Span) {
	return obs.StartSpan(ctx, "layer", obs.String("name", l.Name()))
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Values []float64
}

// Experiment is a regenerated table or figure.
type Experiment struct {
	ID     string // "fig4", "table2", ...
	Title  string
	Unit   string
	Labels []string // x-axis labels (layer names)
	Series []Series
	Notes  []string
}

// Render writes the experiment as an aligned text table.
func (e *Experiment) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s", e.ID, e.Title)
	if e.Unit != "" {
		fmt.Fprintf(w, " [%s]", e.Unit)
	}
	fmt.Fprintln(w)
	header := append([]string{"layer"}, names(e.Series)...)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for i, label := range e.Labels {
		row := []string{label}
		for _, s := range e.Series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.3f", s.Values[i]))
			} else {
				row = append(row, "-")
			}
		}
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

func names(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// layerNames extracts x-axis labels.
func layerNames(ls []workloads.Layer) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.Name()
	}
	return out
}

// thistleFixed runs Thistle dataflow optimization on a fixed architecture.
func thistleFixed(ctx context.Context, l workloads.Layer, a *arch.Arch, crit model.Criterion) (*core.Result, error) {
	p, err := l.Problem()
	if err != nil {
		return nil, err
	}
	return core.OptimizeContext(ctx, p, core.Options{Criterion: crit, Mode: core.FixedArch, Arch: a})
}

// thistleCoDesign runs full architecture-dataflow co-design at the
// Eyeriss-equal area budget.
func thistleCoDesign(ctx context.Context, l workloads.Layer, crit model.Criterion) (*core.Result, error) {
	p, err := l.Problem()
	if err != nil {
		return nil, err
	}
	return core.OptimizeContext(ctx, p, core.Options{Criterion: crit, Mode: core.CoDesign})
}

// Table2 renders the workload table.
func Table2(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	e := &Experiment{
		ID:     "table2",
		Title:  "Conv2D operator configurations (Table II)",
		Labels: layerNames(cfg.Layers),
		Series: []Series{
			{Name: "K"}, {Name: "C"}, {Name: "H=W(in)"}, {Name: "R=S"},
			{Name: "stride"}, {Name: "MMACs"},
		},
	}
	for _, l := range cfg.Layers {
		e.Series[0].Values = append(e.Series[0].Values, float64(l.K))
		e.Series[1].Values = append(e.Series[1].Values, float64(l.C))
		e.Series[2].Values = append(e.Series[2].Values, float64(l.HIn))
		e.Series[3].Values = append(e.Series[3].Values, float64(l.RS))
		e.Series[4].Values = append(e.Series[4].Values, float64(l.Stride))
		e.Series[5].Values = append(e.Series[5].Values, float64(l.MACs())/1e6)
	}
	return e, nil
}

// Table3 renders the technology-parameter table.
func Table3(Config) (*Experiment, error) {
	t := arch.Tech45nm()
	e := &Experiment{
		ID:    "table3",
		Title: "Architecture parameters (Table III, 45nm)",
		Labels: []string{
			"area_per_MAC_um2", "area_per_register_um2", "area_per_SRAM_word_um2",
			"energy_per_MAC_pJ", "register_energy_const", "SRAM_energy_const",
			"energy_per_DRAM_access_pJ",
		},
		Series: []Series{{Name: "value", Values: []float64{
			t.AreaMAC, t.AreaRegister, t.AreaSRAMWord,
			t.EnergyMAC, t.SigmaR, t.SigmaS, t.EnergyDRAM,
		}}},
		Notes: []string{
			"SRAM energy-constant interpreted as pJ/(word*sqrt(word)) x 10^-3; see DESIGN.md",
		},
	}
	return e, nil
}

// Fig4 compares energy between the Mapper baseline and Thistle on the
// fixed Eyeriss architecture (pJ/MAC, lower is better), plus the
// EnergyUp = Mapper/Thistle ratio line.
func Fig4(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	eyeriss := arch.Eyeriss()
	thistle := Series{Name: "thistle_pJ_per_MAC"}
	mapperS := Series{Name: "mapper_pJ_per_MAC"}
	up := Series{Name: "energy_up"}
	ctx, span := cfg.startSpan("fig4")
	defer span.End()
	for _, l := range cfg.Layers {
		cfg.progress("fig4 %s", l.Name())
		lctx, lspan := layerSpan(ctx, l)
		res, err := thistleFixed(lctx, l, &eyeriss, model.MinEnergy)
		if err != nil {
			lspan.End()
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		p, err := l.Problem()
		if err != nil {
			lspan.End()
			return nil, err
		}
		mo := cfg.mapperOptions(model.MinEnergy)
		mo.Obs = cfg.Obs
		mo.Span = lspan
		ms, err := mapper.Search(p, &eyeriss, mo)
		lspan.End()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		thistle.Values = append(thistle.Values, res.Best.Report.EnergyPerMAC)
		mapperS.Values = append(mapperS.Values, ms.Report.EnergyPerMAC)
		up.Values = append(up.Values, ms.Report.EnergyPerMAC/res.Best.Report.EnergyPerMAC)
	}
	return &Experiment{
		ID:     "fig4",
		Title:  "Energy: Timeloop-Mapper-substitute vs Thistle, Eyeriss architecture",
		Unit:   "pJ/MAC",
		Labels: layerNames(cfg.Layers),
		Series: []Series{thistle, mapperS, up},
	}, nil
}

// Fig5 compares the best Eyeriss dataflow against layer-wise co-designed
// architectures at equal area (energy criterion).
func Fig5(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	eyeriss := arch.Eyeriss()
	base := Series{Name: "eyeriss_pJ_per_MAC"}
	codesign := Series{Name: "codesign_pJ_per_MAC"}
	var notes []string
	ctx, span := cfg.startSpan("fig5")
	defer span.End()
	for _, l := range cfg.Layers {
		cfg.progress("fig5 %s", l.Name())
		lctx, lspan := layerSpan(ctx, l)
		rb, err := thistleFixed(lctx, l, &eyeriss, model.MinEnergy)
		if err != nil {
			lspan.End()
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		rc, err := thistleCoDesign(lctx, l, model.MinEnergy)
		lspan.End()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		base.Values = append(base.Values, rb.Best.Report.EnergyPerMAC)
		codesign.Values = append(codesign.Values, rc.Best.Report.EnergyPerMAC)
		notes = append(notes, fmt.Sprintf("%s codesign arch: %s", l.Name(), rc.Best.Arch.String()))
	}
	return &Experiment{
		ID:     "fig5",
		Title:  "Energy: Eyeriss vs layer-wise co-designed architecture (equal area)",
		Unit:   "pJ/MAC",
		Labels: layerNames(cfg.Layers),
		Series: []Series{base, codesign},
		Notes:  notes,
	}, nil
}

// OptimizeLayers runs the Thistle flow for every layer with shared
// options, deduplicating across layers: layers whose problems share a
// solve signature (same shape, same options — see core.SolveSignature)
// are grouped, each group is solved exactly once, and the group's
// result is fanned back out to every member. Groups are solved
// concurrently, but total leaf compute stays bounded: every group draws
// from one pipeline scheduler — the one already on ctx
// (pipeline.ContextWithScheduler) or a fresh one sized by
// opts.Parallel — so submitting N layers never multiplies the
// configured concurrency by N. Grouping happens before any solve, so
// each signature's owner (the "from" layer of the layer_reused events)
// is always the first layer in input order, independent of completion
// order.
//
// The returned slice is index-aligned with layers; deduplicated entries
// share one *Result (treat them as immutable). A solve cache on the
// context additionally memoizes groups across separate OptimizeLayers
// calls and process restarts. The dedup count is recorded on the obs
// counter "experiments.layers_deduped". On failure, the first solve
// error in input order is returned (cancellation of the siblings is
// reported only when no layer failed on its own).
func OptimizeLayers(ctx context.Context, layers []workloads.Layer, opts core.Options, progress func(workloads.Layer)) ([]*core.Result, error) {
	o := obs.FromContext(ctx)
	if o.EventsEnabled() {
		o.Emit(obs.EvLayersTotal, map[string]any{"total": len(layers)})
	}
	// Group by signature before solving anything, in input order.
	probs := make([]*loopnest.Problem, len(layers))
	sigs := make([]cache.Signature, len(layers))
	first := make(map[cache.Signature]int, len(layers))
	owners := make([]int, 0, len(layers)) // group owners, in input order
	for i, l := range layers {
		p, err := l.Problem()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		probs[i] = p
		sigs[i] = core.SolveSignature(p, opts)
		if _, ok := first[sigs[i]]; !ok {
			first[sigs[i]] = i
			owners = append(owners, i)
		}
	}
	// One shared admission bound for every group's leaf compute.
	if pipeline.SchedulerFromContext(ctx) == nil {
		ctx = pipeline.ContextWithScheduler(ctx, pipeline.NewScheduler(opts.Parallel))
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Solve each group concurrently. The goroutines are orchestration —
	// they hold no scheduler tokens; the GP solves and integerization
	// searches they trigger do.
	outs := make([]*core.Result, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for gi, i := range owners {
		if progress != nil {
			progress(layers[i])
		}
		wg.Add(1)
		go func(gi, i int) {
			defer wg.Done()
			lctx, lspan := layerSpan(cctx, layers[i])
			r, err := core.OptimizeContext(lctx, probs[i], opts)
			lspan.End()
			if err != nil {
				errs[gi] = err
				cancel() // stop admitting the other groups' leaf jobs
				return
			}
			outs[gi] = r
		}(gi, i)
	}
	wg.Wait()
	// Deterministic error: the first real failure in input order beats
	// the cancellations it caused in sibling groups.
	var firstErr error
	for gi, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("%s: %w", layers[owners[gi]].Name(), err)
		if !errors.Is(err, context.Canceled) {
			return nil, wrapped
		}
		if firstErr == nil {
			firstErr = wrapped
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Fan the group results back out and report reuse in input order.
	results := make([]*core.Result, len(layers))
	ownerOut := make(map[cache.Signature]*core.Result, len(owners))
	for gi, i := range owners {
		ownerOut[sigs[i]] = outs[gi]
	}
	deduped := 0
	for i, l := range layers {
		results[i] = ownerOut[sigs[i]]
		j := first[sigs[i]]
		if j == i {
			continue
		}
		deduped++
		if o.EventsEnabled() {
			// A reused row with the source layer's numbers, so
			// manifests of deduplicated whole-network runs still
			// cover every layer (see events.Schema).
			rep := results[i].Best.Report
			o.Emit(obs.EvLayerReused, map[string]any{
				"problem":        l.Name(),
				"from":           layers[j].Name(),
				"sig":            sigs[i].Short(),
				"energy_pj":      rep.Energy,
				"cycles":         rep.Cycles,
				"edp":            rep.Energy * rep.Cycles,
				"energy_per_mac": rep.EnergyPerMAC,
				"ipc":            rep.IPC,
			})
		}
	}
	if deduped > 0 {
		o.Counter("experiments.layers_deduped").Add(int64(deduped))
		if o.Enabled(obs.Info) {
			o.Logf(obs.Info, "dedup: %d of %d layers shared a solve signature", deduped, len(layers))
		}
	}
	return results, nil
}

// codesignAll runs layer-wise co-design for every layer and returns the
// per-layer results, solving each distinct layer shape once.
func codesignAll(ctx context.Context, cfg Config, crit model.Criterion) ([]*core.Result, error) {
	return OptimizeLayers(ctx, cfg.Layers, core.Options{Criterion: crit, Mode: core.CoDesign},
		func(l workloads.Layer) { cfg.progress("codesign(%v) %s", crit, l.Name()) })
}

// dominantIndex returns the layer index whose layer-wise design has the
// largest total cost (energy in pJ or delay in cycles).
func dominantIndex(results []*core.Result, crit model.Criterion) int {
	best, bestV := 0, -1.0
	for i, r := range results {
		v := model.Score(crit, r.Best.Report)
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Fig6 shows energy for (1) Eyeriss, (2) layer-wise optimal architecture,
// and (3) one fixed architecture chosen from the energy-dominant layer.
func Fig6(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	eyeriss := arch.Eyeriss()
	ctx, span := cfg.startSpan("fig6")
	defer span.End()
	lw, err := codesignAll(ctx, cfg, model.MinEnergy)
	if err != nil {
		return nil, err
	}
	dom := dominantIndex(lw, model.MinEnergy)
	fixed := lw[dom].Best.Arch
	fixed.Name = "fixed_" + cfg.Layers[dom].Name()

	base := Series{Name: "eyeriss_pJ_per_MAC"}
	layerwise := Series{Name: "layerwise_pJ_per_MAC"}
	single := Series{Name: "single_arch_pJ_per_MAC"}
	for i, l := range cfg.Layers {
		cfg.progress("fig6 %s", l.Name())
		lctx, lspan := layerSpan(ctx, l)
		rb, err := thistleFixed(lctx, l, &eyeriss, model.MinEnergy)
		if err != nil {
			lspan.End()
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		rf, err := thistleFixed(lctx, l, &fixed, model.MinEnergy)
		lspan.End()
		if err != nil {
			return nil, fmt.Errorf("%s single-arch: %w", l.Name(), err)
		}
		base.Values = append(base.Values, rb.Best.Report.EnergyPerMAC)
		layerwise.Values = append(layerwise.Values, lw[i].Best.Report.EnergyPerMAC)
		single.Values = append(single.Values, rf.Best.Report.EnergyPerMAC)
	}
	return &Experiment{
		ID:     "fig6",
		Title:  "Energy: Eyeriss vs layer-wise vs single architecture from the energy-dominant layer",
		Unit:   "pJ/MAC",
		Labels: layerNames(cfg.Layers),
		Series: []Series{base, layerwise, single},
		Notes: []string{fmt.Sprintf("energy-dominant layer: %s, architecture: %s",
			cfg.Layers[dom].Name(), fixed.String())},
	}, nil
}

// Fig7 compares throughput (MAC IPC) between the Mapper baseline and
// Thistle on the fixed Eyeriss architecture, plus the speedup line.
func Fig7(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	eyeriss := arch.Eyeriss()
	thistle := Series{Name: "thistle_IPC"}
	mapperS := Series{Name: "mapper_IPC"}
	speedup := Series{Name: "speedup"}
	ctx, span := cfg.startSpan("fig7")
	defer span.End()
	for _, l := range cfg.Layers {
		cfg.progress("fig7 %s", l.Name())
		lctx, lspan := layerSpan(ctx, l)
		res, err := thistleFixed(lctx, l, &eyeriss, model.MinDelay)
		if err != nil {
			lspan.End()
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		p, err := l.Problem()
		if err != nil {
			lspan.End()
			return nil, err
		}
		mo := cfg.mapperOptions(model.MinDelay)
		mo.Obs = cfg.Obs
		mo.Span = lspan
		ms, err := mapper.Search(p, &eyeriss, mo)
		lspan.End()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		thistle.Values = append(thistle.Values, res.Best.Report.IPC)
		mapperS.Values = append(mapperS.Values, ms.Report.IPC)
		speedup.Values = append(speedup.Values, res.Best.Report.IPC/ms.Report.IPC)
	}
	return &Experiment{
		ID:     "fig7",
		Title:  "Throughput: Timeloop-Mapper-substitute vs Thistle, Eyeriss architecture (max IPC 168)",
		Unit:   "MAC IPC",
		Labels: layerNames(cfg.Layers),
		Series: []Series{thistle, mapperS, speedup},
	}, nil
}

// Fig8 shows throughput for (1) Eyeriss, (2) layer-wise co-designed
// architectures, and (3) one fixed architecture from the delay-dominant
// layer.
func Fig8(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	eyeriss := arch.Eyeriss()
	ctx, span := cfg.startSpan("fig8")
	defer span.End()
	lw, err := codesignAll(ctx, cfg, model.MinDelay)
	if err != nil {
		return nil, err
	}
	dom := dominantIndex(lw, model.MinDelay)
	fixed := lw[dom].Best.Arch
	fixed.Name = "fixed_" + cfg.Layers[dom].Name()

	base := Series{Name: "eyeriss_IPC"}
	layerwise := Series{Name: "layerwise_IPC"}
	single := Series{Name: "single_arch_IPC"}
	for i, l := range cfg.Layers {
		cfg.progress("fig8 %s", l.Name())
		lctx, lspan := layerSpan(ctx, l)
		rb, err := thistleFixed(lctx, l, &eyeriss, model.MinDelay)
		if err != nil {
			lspan.End()
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
		rf, err := thistleFixed(lctx, l, &fixed, model.MinDelay)
		lspan.End()
		if err != nil {
			return nil, fmt.Errorf("%s single-arch: %w", l.Name(), err)
		}
		base.Values = append(base.Values, rb.Best.Report.IPC)
		layerwise.Values = append(layerwise.Values, lw[i].Best.Report.IPC)
		single.Values = append(single.Values, rf.Best.Report.IPC)
	}
	return &Experiment{
		ID:     "fig8",
		Title:  "Delay: Eyeriss vs layer-wise vs single architecture from the delay-dominant layer",
		Unit:   "MAC IPC",
		Labels: layerNames(cfg.Layers),
		Series: []Series{base, layerwise, single},
		Notes: []string{fmt.Sprintf("delay-dominant layer: %s, architecture: %s",
			cfg.Layers[dom].Name(), fixed.String())},
	}, nil
}

// Runner is a table/figure generator.
type Runner func(Config) (*Experiment, error)

// All maps experiment ids to runners.
func AllRunners() map[string]Runner {
	return map[string]Runner{
		"table2":  Table2,
		"table3":  Table3,
		"fig4":    Fig4,
		"fig5":    Fig5,
		"fig6":    Fig6,
		"fig7":    Fig7,
		"fig8":    Fig8,
		"ext_edp": ExtEDP,
		"ext_noc": ExtNoC,
	}
}

// Order lists experiment ids: the paper's tables and figures first, then
// the extensions this reproduction adds (EDP objective, NoC energy).
func Order() []string {
	return []string{"table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "ext_edp", "ext_noc"}
}

// RenderBars writes, per series, a crude textual bar chart (one row per
// layer, bar length proportional to the value within the series' own
// range) so result shapes are inspectable straight from a terminal.
func (e *Experiment) RenderBars(w io.Writer) {
	const width = 40
	fmt.Fprintf(w, "== %s: %s [%s]\n", e.ID, e.Title, e.Unit)
	for _, s := range e.Series {
		if len(s.Values) == 0 {
			continue
		}
		maxV := s.Values[0]
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
		fmt.Fprintf(w, "-- %s (max %.3f)\n", s.Name, maxV)
		for i, v := range s.Values {
			n := 0
			if maxV > 0 {
				n = int(v / maxV * width)
			}
			label := ""
			if i < len(e.Labels) {
				label = e.Labels[i]
			}
			fmt.Fprintf(w, "%-14s %8.3f |%s\n", label, v, strings.Repeat("#", n))
		}
	}
}
