// Package refsim is an independent oracle for the paper's Algorithm 1:
// it computes the exact data traffic of a concrete mapping by brute-force
// enumeration of the iteration space — walking every MAC, attributing
// each tensor access to the copy event that staged it, and counting
// distinct addresses per copy — with no reference to the symbolic
// footprint/volume formulas. Agreement between this oracle and the
// analytical model on strided convolutions (where halo and hoisting
// off-by-ones would show) is the strongest correctness evidence for the
// symbolic construction.
//
// Cost is O(iteration space), so the oracle is only usable on small
// problems; the dataflow/model packages remain the fast path.
package refsim

import (
	"errors"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// ErrTooLarge reports an iteration space beyond the enumeration budget.
var ErrTooLarge = errors.New("refsim: iteration space too large")

// MaxPoints bounds the enumerated iteration space.
const MaxPoints = 1 << 22

// loopRef is one concrete loop of the flattened nest, outermost first.
type loopRef struct {
	level int
	iter  int
	trip  int64
	// stride is the contribution of one step of this loop to the global
	// iterator value (the product of this iterator's trips at all inner
	// levels).
	stride int64
}

// Traffic computes, per copy boundary and per tensor, the exact word
// traffic of the mapping (read-write tensors doubled, read-only tensors
// multicast across PEs), by address-set counting.
func Traffic(n *dataflow.Nest, m *model.Mapping) ([][]int64, error) {
	if err := n.CheckTrips(m.Trips); err != nil {
		return nil, err
	}
	if n.Prob.Ops() > MaxPoints {
		return nil, fmt.Errorf("%w: %d points", ErrTooLarge, n.Prob.Ops())
	}

	trip := func(li, it int) int64 {
		if li < len(m.Trips) && it < len(m.Trips[li]) && m.Trips[li][it] > 0 {
			return m.Trips[li][it]
		}
		return 1
	}
	// Per-level loop order: mapping perms for copy levels, Active order
	// otherwise. Unit-trip loops are kept: the paper's Algorithm 1
	// operates on symbolic trip counts, so a *present* loop pins the
	// hoist point even when its integer trip turns out to be 1. The
	// oracle follows the same copy-placement convention so that it
	// verifies the data-movement arithmetic (footprints, halos,
	// multicast) rather than a different hoisting policy; see the
	// "unit-trip hoisting" note in DESIGN.md.
	levelLoops := make([][]int, len(n.Levels))
	for li := range n.Levels {
		lvl := &n.Levels[li]
		order := lvl.Active
		if lvl.Kind == dataflow.Temporal && lvl.Copy && li < len(m.Perms) && len(m.Perms[li]) > 0 {
			order = m.Perms[li]
		}
		levelLoops[li] = append(levelLoops[li], order...)
	}
	// Pinned level-0 trips (untiled kernel loops) are real loops too.
	// Include every level-0 iterator with trip > 1 even if not in Active.
	{
		seen := map[int]bool{}
		for _, it := range levelLoops[0] {
			seen[it] = true
		}
		for it := range n.Prob.Iters {
			if !seen[it] && trip(0, it) > 1 {
				levelLoops[0] = append(levelLoops[0], it)
			}
		}
	}

	// Flatten outermost → innermost and compute iterator strides.
	var flat []loopRef
	for li := len(n.Levels) - 1; li >= 0; li-- {
		for _, it := range levelLoops[li] {
			inner := int64(1)
			for lj := 0; lj < li; lj++ {
				inner *= trip(lj, it)
			}
			flat = append(flat, loopRef{level: li, iter: it, trip: trip(li, it), stride: inner})
		}
	}

	// Copy boundaries, inner to outer, and each tensor's grouping set:
	// the flat-loop indices whose values identify one copy event.
	var copyLevels []int
	for li := range n.Levels {
		if n.Levels[li].Kind == dataflow.Temporal && n.Levels[li].Copy {
			copyLevels = append(copyLevels, li)
		}
	}
	nt := len(n.Prob.Tensors)
	groupLoops := make([][][]int, len(copyLevels)) // [boundary][tensor] -> flat indices
	for b, cl := range copyLevels {
		groupLoops[b] = make([][]int, nt)
		for ti, t := range n.Prob.Tensors {
			var idxs []int
			for fi, lr := range flat {
				switch {
				case lr.level > cl:
					// Loops above the copy level all re-execute the copy,
					// except spatial loops over iterators absent from a
					// read-only tensor: those PEs receive the identical
					// words by multicast, counted once (the paper's rule).
					// Present spatial iterators group per PE, so halo
					// overlap between adjacent PEs is counted per PE,
					// matching the footprint×trips arithmetic.
					if n.Levels[lr.level].Kind == dataflow.Spatial && !t.ReadWrite && !t.Uses(lr.iter) {
						continue
					}
					idxs = append(idxs, fi)
				case lr.level == cl:
					// Loops of the copy level strictly outside the
					// innermost present loop re-execute the copy; the
					// innermost present loop's whole range is merged into
					// a single copy (Algorithm 1's replace step rewrites
					// the extent rather than multiplying the volume), so
					// it does not group.
					if levelHasPresentAfter(flat, fi, cl, t) {
						idxs = append(idxs, fi)
					}
				}
			}
			groupLoops[b][ti] = idxs
		}
	}

	// Tensor dimension strides for address linearization.
	dimStride := make([][]int64, nt)
	for ti := range n.Prob.Tensors {
		dims := n.Prob.Tensors[ti].Dims
		dimStride[ti] = make([]int64, len(dims))
		s := int64(1)
		for d := len(dims) - 1; d >= 0; d-- {
			dimStride[ti][d] = s
			ext := int64(1)
			for _, term := range dims[d].Terms {
				ext += term.Stride * (n.Prob.Iters[term.Iter].Extent - 1)
			}
			s *= ext
		}
	}

	// Enumerate the iteration space with an odometer over flat loops.
	counts := make([][]map[[2]int64]struct{}, len(copyLevels))
	for b := range counts {
		counts[b] = make([]map[[2]int64]struct{}, nt)
		for ti := range counts[b] {
			counts[b][ti] = map[[2]int64]struct{}{}
		}
	}
	idx := make([]int64, len(flat))
	iterVal := make([]int64, len(n.Prob.Iters))
	for {
		// Global iterator values.
		for i := range iterVal {
			iterVal[i] = 0
		}
		for fi, lr := range flat {
			iterVal[lr.iter] += idx[fi] * lr.stride
		}
		for ti, t := range n.Prob.Tensors {
			// Address of this access.
			addr := int64(0)
			for d, ie := range t.Dims {
				v := int64(0)
				for _, term := range ie.Terms {
					v += term.Stride * iterVal[term.Iter]
				}
				addr += v * dimStride[ti][d]
			}
			for b := range copyLevels {
				// Group id: mixed-radix over the grouping loops.
				g := int64(0)
				for _, fi := range groupLoops[b][ti] {
					g = g*flat[fi].trip + idx[fi]
				}
				counts[b][ti][[2]int64{g, addr}] = struct{}{}
			}
		}
		// Advance odometer (innermost fastest).
		k := len(flat) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < flat[k].trip {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}

	out := make([][]int64, len(copyLevels))
	for b := range copyLevels {
		out[b] = make([]int64, nt)
		for ti, t := range n.Prob.Tensors {
			words := int64(len(counts[b][ti]))
			if t.ReadWrite {
				words *= 2
			}
			out[b][ti] = words
		}
	}
	return out, nil
}

// levelHasPresentAfter reports whether, within the copy level cl, a loop
// strictly deeper than flat position fi uses an iterator present in the
// tensor. If so, the copy sits inside the loop at fi (it cannot be
// hoisted past the deeper present loop).
func levelHasPresentAfter(flat []loopRef, fi, cl int, t loopnest.Tensor) bool {
	for j := fi + 1; j < len(flat) && flat[j].level == cl; j++ {
		if t.Uses(flat[j].iter) {
			return true
		}
	}
	return false
}
