package refsim

import (
	"math/rand"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// checkAgainstModel verifies the oracle against the symbolic Algorithm-1
// volumes for one mapping, per boundary and per tensor.
func checkAgainstModel(t *testing.T, n *dataflow.Nest, m *model.Mapping) {
	t.Helper()
	got, err := Traffic(n, m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := n.ComputeVolumes(m.Perms)
	if err != nil {
		t.Fatal(err)
	}
	x := n.Assignment(n.Vars.Len(), m.Trips)
	for b := range got {
		for ti := range got[b] {
			want := v.Traffic[b][ti].Eval(x)
			if float64(got[b][ti]) != want {
				t.Errorf("boundary %d tensor %s: oracle %d, Algorithm 1 %v (trips %v, perms %v)",
					b, n.Prob.Tensors[ti].Name, got[b][ti], want, m.Trips, m.Perms)
			}
		}
	}
}

func TestOracleMatmulPaperMapping(t *testing.T) {
	p := loopnest.MatMul(16, 16, 16)
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := &model.Mapping{
		Perms: dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}),
		Trips: [][]int64{
			{2, 2, 2},
			{2, 2, 2},
			{2, 2, 1},
			{2, 2, 4},
		},
	}
	checkAgainstModel(t, n, m)
}

// TestOracleConvStrided is the load-bearing case: strided convolution
// with pinned 3×3 kernels, where halo extents (2t_h + t_r − 2 style) and
// hoisting interact. Any off-by-one in Algorithm 1 or in the extent
// formulas would break the exact agreement.
func TestOracleConvStrided(t *testing.T) {
	for _, stride := range []int64{1, 2} {
		p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
			Name: "c", N: 1, K: 4, C: 4, H: 8, W: 8, R: 3, S: 3,
			StrideX: stride, StrideY: stride,
		})
		if err != nil {
			t.Fatal(err)
		}
		n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m := model.UniformMapping(n)
		// k: 1·2·2·1, c: 2·1·1·2, h: 2·1·2·2, w: 1·2·1·4.
		set := func(it int, a, b, c2, d int64) {
			m.Trips[0][it], m.Trips[1][it], m.Trips[2][it], m.Trips[3][it] = a, b, c2, d
		}
		set(loopnest.ConvK, 1, 2, 2, 1)
		set(loopnest.ConvC, 2, 1, 1, 2)
		set(loopnest.ConvH, 2, 1, 2, 2)
		set(loopnest.ConvW, 1, 2, 1, 4)
		m.Perms[dataflow.StandardLevelL1] = []int{loopnest.ConvK, loopnest.ConvC, loopnest.ConvH, loopnest.ConvW}
		m.Perms[dataflow.StandardLevelSRAM] = []int{loopnest.ConvW, loopnest.ConvH, loopnest.ConvC, loopnest.ConvK}
		checkAgainstModel(t, n, m)
	}
}

// TestOracleDilatedConv covers the dilation extension. Dilated kernels
// touch non-contiguous addresses, while the footprint model (like the
// paper's) uses the rectangular bounding box; the model is therefore an
// upper bound rather than exact here, tight when register tiles span
// enough output positions to fill the holes.
func TestOracleDilatedConv(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "d", N: 1, K: 4, C: 2, H: 6, W: 6, R: 3, S: 3,
		StrideX: 1, StrideY: 1, DilationX: 2, DilationY: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := model.UniformMapping(n)
	set := func(it int, a, b, c2, d int64) {
		m.Trips[0][it], m.Trips[1][it], m.Trips[2][it], m.Trips[3][it] = a, b, c2, d
	}
	set(loopnest.ConvK, 2, 1, 2, 1)
	set(loopnest.ConvC, 1, 2, 1, 1)
	set(loopnest.ConvH, 3, 1, 1, 2)
	set(loopnest.ConvW, 1, 2, 3, 1)
	m.Perms[dataflow.StandardLevelL1] = []int{loopnest.ConvC, loopnest.ConvW, loopnest.ConvK, loopnest.ConvH}
	m.Perms[dataflow.StandardLevelSRAM] = []int{loopnest.ConvH, loopnest.ConvK, loopnest.ConvC, loopnest.ConvW}
	got, err := Traffic(n, m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := n.ComputeVolumes(m.Perms)
	if err != nil {
		t.Fatal(err)
	}
	x := n.Assignment(n.Vars.Len(), m.Trips)
	for b := range got {
		for ti := range got[b] {
			bound := v.Traffic[b][ti].Eval(x)
			if float64(got[b][ti]) > bound {
				t.Errorf("boundary %d tensor %s: oracle %d exceeds model bound %v",
					b, n.Prob.Tensors[ti].Name, got[b][ti], bound)
			}
		}
	}
}

// TestOracleRandomMappings fuzzes mappings of a small conv and a small
// matmul against the symbolic volumes.
func TestOracleRandomMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	probs := []*loopnest.Problem{
		loopnest.MatMul(8, 12, 8),
	}
	if conv, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "f", N: 1, K: 4, C: 3, H: 6, W: 6, R: 3, S: 3, StrideX: 1, StrideY: 1,
	}); err == nil {
		probs = append(probs, conv)
	}
	for _, p := range probs {
		n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 12; trial++ {
			m := randomMapping(rng, n)
			checkAgainstModel(t, n, m)
		}
	}
}

func randomMapping(rng *rand.Rand, n *dataflow.Nest) *model.Mapping {
	m := model.UniformMapping(n)
	for it, iter := range n.Prob.Iters {
		// Collect the levels where the iterator is free.
		var free []int
		pinned := int64(1)
		for li := range n.Levels {
			if n.Levels[li].Trips[it] == -1 {
				continue
			}
			isPinned := false
			for _, pin := range n.Pins {
				if n.IterOfVar(pin.Var) == it {
					// The pin could be at any level; identify by var.
					for lj := range n.Levels {
						if n.Levels[lj].Trips[it] == pin.Var && lj == li {
							isPinned = true
							pinned *= int64(pin.Value)
						}
					}
				}
			}
			if !isPinned {
				free = append(free, li)
			}
		}
		rest := iter.Extent / pinned
		for pos, li := range free {
			if pos == len(free)-1 {
				m.Trips[li][it] = rest
				break
			}
			ds := divisorsOf(rest)
			d := ds[rng.Intn(len(ds))]
			m.Trips[li][it] = d
			rest /= d
		}
	}
	for li := range n.Levels {
		lvl := &n.Levels[li]
		if lvl.Kind == dataflow.Temporal && lvl.Copy {
			perm := append([]int(nil), lvl.Active...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			m.Perms[li] = perm
		}
	}
	return m
}

func divisorsOf(n int64) []int64 {
	var out []int64
	for d := int64(1); d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

func TestOracleRejectsHugeSpaces(t *testing.T) {
	p := loopnest.MatMul(1024, 1024, 1024)
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := model.UniformMapping(n)
	if _, err := Traffic(n, m); err == nil {
		t.Fatal("expected ErrTooLarge")
	}
}
