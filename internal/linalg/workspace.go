package linalg

import "math"

// Workspace holds reusable scratch buffers for the in-place variants of
// the package's factor-and-solve kernels. The barrier solver runs a
// Newton iteration hundreds of times per GP, and every iteration used to
// clone its Hessian (up to twelve times, once per regularization
// attempt) and allocate a fresh solution vector; with a Workspace the
// same factor buffer is reused for every attempt of every iteration.
//
// Buffers grow on demand and are retained at high-water mark, so a
// Workspace sized by its first few solves stops allocating entirely.
// The zero value is ready to use. A Workspace is not safe for concurrent
// use; pool instances instead of sharing one.
type Workspace struct {
	fact *Dense    // factorization scratch (SolveSPDTo, CholeskyInto)
	hz   *Dense    // H·Z intermediate (CongruentTransformTo)
	elim *Dense    // Gaussian-elimination working copy (SolveWithNullspaceInto)
	rhs  []float64 // elimination right-hand side
	x0   []float64 // particular solution (owned, returned as view)
	z    *Dense    // nullspace basis (owned, returned as view)
	pcol []int     // pivot column per eliminated row
	ispv []bool    // pivot-column marks
}

// dense resizes *m to rows×cols, reusing its backing array when large
// enough, and returns it. Contents are unspecified.
func (ws *Workspace) dense(m **Dense, rows, cols int) *Dense {
	n := rows * cols
	if *m == nil || cap((*m).Data) < n {
		*m = &Dense{Rows: rows, Cols: cols, Data: make([]float64, n)}
		return *m
	}
	(*m).Rows, (*m).Cols, (*m).Data = rows, cols, (*m).Data[:n]
	return *m
}

// vec resizes *v to n, reusing capacity. Contents are unspecified.
func (ws *Workspace) vec(v *[]float64, n int) []float64 {
	if cap(*v) < n {
		*v = make([]float64, n)
	}
	*v = (*v)[:n]
	return *v
}

// CholeskyInto factors the symmetric positive-definite a into dst (which
// must be a.Rows×a.Cols; dst == a factors in place) and behaves exactly
// like Cholesky otherwise.
func CholeskyInto(dst, a *Dense) error {
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("linalg: CholeskyInto dimension mismatch")
	}
	if dst != a {
		copy(dst.Data, a.Data)
	}
	return Cholesky(dst)
}

// SolveSPDTo is SolveSPD writing the solution into dst (length a.Rows;
// dst may alias b). It performs the identical escalating-regularization
// attempts — the factor scratch lives in the workspace, so steady-state
// calls do not allocate. a and b are not modified.
func (ws *Workspace) SolveSPDTo(dst []float64, a *Dense, b []float64) error {
	n := a.Rows
	if len(dst) != n || len(b) != n {
		panic("linalg: SolveSPDTo dimension mismatch")
	}
	reg := 0.0
	maxDiag := 1e-12
	for i := 0; i < n; i++ {
		if d := math.Abs(a.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	l := ws.dense(&ws.fact, n, n)
	for attempt := 0; attempt < 12; attempt++ {
		copy(l.Data, a.Data)
		if reg > 0 {
			for i := 0; i < n; i++ {
				l.Add(i, i, reg)
			}
		}
		if err := Cholesky(l); err == nil {
			copy(dst, b)
			CholSolve(l, dst)
			ok := true
			for _, v := range dst {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					ok = false
					break
				}
			}
			if ok {
				return nil
			}
		}
		if reg == 0 {
			reg = 1e-10 * maxDiag
		} else {
			reg *= 100
		}
	}
	return ErrSingular
}

// CongruentTransformTo computes Zᵀ·H·Z into dst (which is resized to
// z.Cols×z.Cols and returned), using workspace scratch for the H·Z
// intermediate. dst must not alias z or h.
func (ws *Workspace) CongruentTransformTo(dst *Dense, z, h *Dense) *Dense {
	if h.Cols != z.Rows {
		panic("linalg: dimension mismatch in CongruentTransformTo")
	}
	hz := ws.dense(&ws.hz, h.Rows, z.Cols)
	for i := range hz.Data {
		hz.Data[i] = 0
	}
	for i := 0; i < h.Rows; i++ {
		for k := 0; k < h.Cols; k++ {
			a := h.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < z.Cols; j++ {
				hz.Add(i, j, a*z.At(k, j))
			}
		}
	}
	if dst.Rows != z.Cols || dst.Cols != z.Cols {
		panic("linalg: CongruentTransformTo dst dimension mismatch")
	}
	for i := 0; i < z.Cols; i++ {
		for j := 0; j < z.Cols; j++ {
			s := 0.0
			for k := 0; k < z.Rows; k++ {
				s += z.At(k, i) * hz.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

// SolveWithNullspaceInto is SolveWithNullspace returning workspace-owned
// results: x0 and z are views into the workspace and remain valid only
// until the next SolveWithNullspaceInto call. Callers that outlive that
// window (or share results across goroutines) must deep-copy. a and b
// are not modified.
func (ws *Workspace) SolveWithNullspaceInto(a *Dense, b []float64) (x0 []float64, z *Dense, err error) {
	m, n := a.Rows, a.Cols
	w := ws.dense(&ws.elim, m, n)
	copy(w.Data, a.Data)
	rhs := ws.vec(&ws.rhs, m)
	copy(rhs, b)

	const tol = 1e-11
	if cap(ws.pcol) < n {
		ws.pcol = make([]int, 0, n)
	}
	pivotCol := ws.pcol[:0]
	isPivot := ws.ispv
	if cap(isPivot) < n {
		isPivot = make([]bool, n)
		ws.ispv = isPivot
	}
	isPivot = isPivot[:n]
	for i := range isPivot {
		isPivot[i] = false
	}
	row := 0
	for col := 0; col < n && row < m; col++ {
		best, bestAbs := -1, tol
		for i := row; i < m; i++ {
			if ab := math.Abs(w.At(i, col)); ab > bestAbs {
				best, bestAbs = i, ab
			}
		}
		if best < 0 {
			continue
		}
		if best != row {
			for j := 0; j < n; j++ {
				w.Data[row*n+j], w.Data[best*n+j] = w.Data[best*n+j], w.Data[row*n+j]
			}
			rhs[row], rhs[best] = rhs[best], rhs[row]
		}
		p := w.At(row, col)
		for i := 0; i < m; i++ {
			if i == row {
				continue
			}
			f := w.At(i, col) / p
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				w.Add(i, j, -f*w.At(row, j))
			}
			rhs[i] -= f * rhs[row]
		}
		pivotCol = append(pivotCol, col)
		isPivot[col] = true
		row++
	}
	ws.pcol = pivotCol
	scale := 1.0
	for _, v := range b {
		if ab := math.Abs(v); ab > scale {
			scale = ab
		}
	}
	for i := row; i < m; i++ {
		if math.Abs(rhs[i]) > 1e-8*scale {
			return nil, nil, ErrInconsistent
		}
	}
	x0 = ws.vec(&ws.x0, n)
	for i := range x0 {
		x0[i] = 0
	}
	for r, c := range pivotCol {
		x0[c] = rhs[r] / w.At(r, c)
	}
	nFree := n - len(pivotCol)
	z = ws.dense(&ws.z, n, nFree)
	for i := range z.Data {
		z.Data[i] = 0
	}
	fc := 0
	for col := 0; col < n; col++ {
		if isPivot[col] {
			continue
		}
		z.Set(col, fc, 1)
		for r, c := range pivotCol {
			z.Set(c, fc, -w.At(r, col)/w.At(r, c))
		}
		fc++
	}
	return x0, z, nil
}
