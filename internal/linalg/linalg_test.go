package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("At/Set/Add wrong: %+v", m)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulVecAndTrans(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := []float64{1, -1}
	y := make([]float64, 3)
	a.MulVec(x, y)
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
	z := make([]float64, 2)
	a.MulTransVec([]float64{1, 1, 1}, z)
	if z[0] != 9 || z[1] != 12 {
		t.Fatalf("MulTransVec = %v", z)
	}
}

func TestMulMatrix(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %+v", c)
			}
		}
	}
}

func TestCongruentTransform(t *testing.T) {
	h := FromRows([][]float64{{2, 1}, {1, 3}})
	z := FromRows([][]float64{{1}, {1}})
	r := CongruentTransform(z, h)
	if r.Rows != 1 || r.Cols != 1 || r.At(0, 0) != 7 {
		t.Fatalf("Z^T H Z = %+v, want [[7]]", r)
	}
}

func TestCholeskyAndSolve(t *testing.T) {
	// SPD matrix.
	a := FromRows([][]float64{
		{4, 2, 0.6},
		{2, 5, 1.5},
		{0.6, 1.5, 3.8},
	})
	xTrue := []float64{1, -2, 3}
	b := make([]float64, 3)
	a.MulVec(xTrue, b)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-10) {
			t.Fatalf("SolveSPD = %v, want %v", x, xTrue)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if err := Cholesky(a.Clone()); err == nil {
		t.Fatal("expected ErrSingular for indefinite matrix")
	}
	// SolveSPD regularizes, so it should still return something finite
	// for a PSD-but-singular matrix.
	s := FromRows([][]float64{{1, 1}, {1, 1}})
	x, err := SolveSPD(s, []float64{2, 2})
	if err != nil {
		t.Fatalf("SolveSPD on singular PSD failed: %v", err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite solution %v", x)
		}
	}
}

func TestSolveWithNullspaceSquare(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	x0, z, err := SolveWithNullspace(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if z.Cols != 0 {
		t.Fatalf("full-rank square system should have empty nullspace, got %d cols", z.Cols)
	}
	if !almostEq(x0[0], 1, 1e-10) || !almostEq(x0[1], 3, 1e-10) {
		t.Fatalf("x0 = %v, want [1 3]", x0)
	}
}

func TestSolveWithNullspaceUnderdetermined(t *testing.T) {
	// x + y + z = 6 — a plane; nullspace dim 2.
	a := FromRows([][]float64{{1, 1, 1}})
	b := []float64{6}
	x0, z, err := SolveWithNullspace(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if z.Cols != 2 {
		t.Fatalf("nullspace dim = %d, want 2", z.Cols)
	}
	// x0 solves the system.
	sum := x0[0] + x0[1] + x0[2]
	if !almostEq(sum, 6, 1e-10) {
		t.Fatalf("particular solution invalid: %v", x0)
	}
	// Each nullspace column maps to zero.
	for c := 0; c < z.Cols; c++ {
		s := z.At(0, c) + z.At(1, c) + z.At(2, c)
		if math.Abs(s) > 1e-10 {
			t.Fatalf("nullspace column %d not in kernel", c)
		}
	}
}

func TestSolveWithNullspaceRedundantAndInconsistent(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}})
	if _, _, err := SolveWithNullspace(a, []float64{3, 6}); err != nil {
		t.Fatalf("redundant consistent system failed: %v", err)
	}
	if _, _, err := SolveWithNullspace(a, []float64{3, 7}); err != ErrInconsistent {
		t.Fatalf("expected ErrInconsistent, got %v", err)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2")
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[0] != 3 || y[2] != 7 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 {
		t.Fatalf("Scale = %v", y)
	}
}

// Property: for random SPD systems A = M·Mᵀ + I, SolveSPD recovers a
// solution with small residual.
func TestQuickSolveSPDResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := NewDense(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += m.At(i, k) * m.At(j, k)
				}
				a.Set(i, j, s)
			}
			a.Add(i, i, 1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		r := make([]float64, n)
		a.MulVec(x, r)
		for i := range r {
			if !almostEq(r[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: x0 + Z·z satisfies A·x = b for random z.
func TestQuickNullspaceParameterization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		n := m + 1 + rng.Intn(3)
		a := NewDense(m, n)
		for i := range a.Data {
			a.Data[i] = float64(rng.Intn(7) - 3)
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		a.MulVec(xs, b)
		x0, z, err := SolveWithNullspace(a, b)
		if err != nil {
			return false
		}
		zc := make([]float64, z.Cols)
		for i := range zc {
			zc[i] = rng.NormFloat64()
		}
		x := append([]float64(nil), x0...)
		tmp := make([]float64, n)
		z.MulVec(zc, tmp)
		AXPY(1, tmp, x)
		chk := make([]float64, m)
		a.MulVec(x, chk)
		for i := range chk {
			if !almostEq(chk[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
