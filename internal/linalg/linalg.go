// Package linalg provides the small dense linear algebra kernels needed by
// the geometric-programming solver: vectors, row-major matrices, Cholesky
// factorization with adaptive diagonal regularization, and Gaussian
// elimination with partial pivoting for particular solutions and nullspace
// bases of underdetermined systems.
//
// Problem sizes in this repository are tiny (tens of variables), so the
// implementations favor clarity and numerical robustness over blocking or
// vectorization.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve meets a matrix
// that is singular to working precision.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrInconsistent is returned by SolveWithNullspace when the system
// A·x = b has no solution.
var ErrInconsistent = errors.New("linalg: inconsistent linear system")

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zero Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have the same
// length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all entries to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = A·x. y must have length Rows, x length Cols.
func (m *Dense) MulVec(x, y []float64) {
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// MulTransVec computes y = Aᵀ·x. y must have length Cols, x length Rows.
func (m *Dense) MulTransVec(x, y []float64) {
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			y[j] += a * xi
		}
	}
}

// Mul returns A·B as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic("linalg: dimension mismatch in Mul")
	}
	r := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				r.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return r
}

// CongruentTransform returns Zᵀ·H·Z for the symmetric matrix H; the result
// is the reduced Hessian used after equality elimination.
func CongruentTransform(z, h *Dense) *Dense {
	var ws Workspace
	return ws.CongruentTransformTo(NewDense(z.Cols, z.Cols), z, h)
}

// Cholesky factors the symmetric positive-definite matrix A in place into
// L (lower triangle) with A = L·Lᵀ. Returns ErrSingular when a pivot is
// not positive. Only the lower triangle of A is read.
func Cholesky(a *Dense) error {
	n := a.Rows
	if n != a.Cols {
		panic("linalg: Cholesky requires square matrix")
	}
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			l := a.At(j, k)
			d -= l * l
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrSingular
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	// Zero the strict upper triangle so the result is exactly L.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}

// CholSolve solves L·Lᵀ·x = b given the Cholesky factor L (as produced by
// Cholesky). b is overwritten with the solution.
func CholSolve(l *Dense, b []float64) {
	n := l.Rows
	// Forward substitution L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * b[k]
		}
		b[i] = s / l.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * b[k]
		}
		b[i] = s / l.At(i, i)
	}
}

// SolveSPD solves A·x = b for symmetric positive-definite A, adding
// an escalating diagonal regularization when the plain factorization
// fails (as happens near-singular Hessians during Newton iterations).
// A and b are not modified; the solution is returned.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	x := make([]float64, a.Rows)
	var ws Workspace
	if err := ws.SolveSPDTo(x, a, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveWithNullspace solves the (possibly underdetermined, possibly
// redundant) system A·x = b by Gaussian elimination with partial
// pivoting. It returns a particular solution x0 and a matrix Z whose
// columns form a basis of the nullspace of A, so that every solution is
// x0 + Z·z. Returns ErrInconsistent when no solution exists.
func SolveWithNullspace(a *Dense, b []float64) (x0 []float64, z *Dense, err error) {
	var ws Workspace
	x0v, zv, err := ws.SolveWithNullspaceInto(a, b)
	if err != nil {
		return nil, nil, err
	}
	return append([]float64(nil), x0v...), zv.Clone(), nil
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AXPY computes y += alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}
