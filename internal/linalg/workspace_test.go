package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds A = M·Mᵀ + I for a well-conditioned SPD system and a
// matching right-hand side.
func randSPD(rng *rand.Rand, n int) (*Dense, []float64) {
	m := NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += m.At(i, k) * m.At(j, k)
			}
			a.Set(i, j, s)
		}
		a.Add(i, i, 1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic on dimension mismatch", name)
		}
	}()
	f()
}

func TestCholeskyIntoMatchesCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, _ := randSPD(rng, 5)
	want := a.Clone()
	if err := Cholesky(want); err != nil {
		t.Fatal(err)
	}

	// Separate destination: a stays untouched, dst matches bit-for-bit.
	orig := a.Clone()
	dst := NewDense(5, 5)
	if err := CholeskyInto(dst, a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("CholeskyInto modified its input")
		}
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("CholeskyInto differs from Cholesky at %d: %v vs %v", i, dst.Data[i], want.Data[i])
		}
	}

	// Aliased destination: dst == a factors in place.
	if err := CholeskyInto(a, a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != want.Data[i] {
			t.Fatal("in-place CholeskyInto differs from Cholesky")
		}
	}
}

func TestSolveSPDToMatchesSolveSPD(t *testing.T) {
	var ws Workspace
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a, b := randSPD(rng, n)
		want, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		aOrig, bOrig := a.Clone(), append([]float64(nil), b...)

		// The same workspace is reused across every quick-check system,
		// so stale factor contents from a previous (differently sized)
		// solve must never leak into the next one.
		dst := make([]float64, n)
		if err := ws.SolveSPDTo(dst, a, b); err != nil {
			return false
		}
		for i := range want {
			if dst[i] != want[i] {
				return false
			}
		}
		for i := range a.Data {
			if a.Data[i] != aOrig.Data[i] {
				return false
			}
		}
		for i := range b {
			if b[i] != bOrig[i] {
				return false
			}
		}

		// dst may alias b.
		if err := ws.SolveSPDTo(b, a, b); err != nil {
			return false
		}
		for i := range want {
			if b[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCongruentTransformToMatchesAllocating(t *testing.T) {
	var ws Workspace
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		k := 1 + rng.Intn(n)
		h, _ := randSPD(rng, n)
		z := NewDense(n, k)
		for i := range z.Data {
			z.Data[i] = rng.NormFloat64()
		}
		want := CongruentTransform(z, h)
		dst := NewDense(k, k)
		ws.CongruentTransformTo(dst, z, h)
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWithNullspaceIntoMatchesAllocating(t *testing.T) {
	var ws Workspace
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		n := m + rng.Intn(4)
		a := NewDense(m, n)
		for i := range a.Data {
			a.Data[i] = float64(rng.Intn(7) - 3)
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		a.MulVec(xs, b)
		aOrig, bOrig := a.Clone(), append([]float64(nil), b...)

		wantX, wantZ, wantErr := SolveWithNullspace(a, b)
		gotX, gotZ, gotErr := ws.SolveWithNullspaceInto(a, b)
		if (wantErr == nil) != (gotErr == nil) {
			return false
		}
		if wantErr != nil {
			return true
		}
		for i := range wantX {
			if gotX[i] != wantX[i] {
				return false
			}
		}
		if gotZ.Rows != wantZ.Rows || gotZ.Cols != wantZ.Cols {
			return false
		}
		for i := range wantZ.Data {
			if gotZ.Data[i] != wantZ.Data[i] {
				return false
			}
		}
		for i := range a.Data {
			if a.Data[i] != aOrig.Data[i] {
				return false
			}
		}
		for i := range b {
			if b[i] != bOrig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWithNullspaceIntoInconsistent(t *testing.T) {
	var ws Workspace
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, _, err := ws.SolveWithNullspaceInto(a, []float64{1, 2}); err != ErrInconsistent {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

// Workspace-owned results are views: the next call overwrites them.
func TestSolveWithNullspaceIntoResultsAreViews(t *testing.T) {
	var ws Workspace
	a := FromRows([][]float64{{1, 0, 0}})
	x1, z1, err := ws.SolveWithNullspaceInto(a, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if x1[0] != 2 || z1.Cols != 2 {
		t.Fatalf("unexpected first solution x=%v z=%dx%d", x1, z1.Rows, z1.Cols)
	}
	b := FromRows([][]float64{{1, 0, 0}})
	x2, _, err := ws.SolveWithNullspaceInto(b, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if &x1[0] != &x2[0] {
		t.Fatal("expected x0 buffer reuse across calls")
	}
	if x1[0] != 5 {
		t.Fatal("expected the first result to be overwritten (it is a view)")
	}
}

func TestInPlaceDimensionMismatchPanics(t *testing.T) {
	var ws Workspace
	a := NewDense(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	mustPanic(t, "CholeskyInto", func() { _ = CholeskyInto(NewDense(2, 3), a) })
	mustPanic(t, "SolveSPDTo dst", func() { _ = ws.SolveSPDTo(make([]float64, 2), a, make([]float64, 3)) })
	mustPanic(t, "SolveSPDTo b", func() { _ = ws.SolveSPDTo(make([]float64, 3), a, make([]float64, 2)) })
	z := NewDense(2, 2)
	mustPanic(t, "CongruentTransformTo inner", func() { ws.CongruentTransformTo(NewDense(2, 2), z, a) })
	z3 := NewDense(3, 2)
	mustPanic(t, "CongruentTransformTo dst", func() { ws.CongruentTransformTo(NewDense(3, 3), z3, a) })
}
