package specs

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/yamlite"
)

func TestProblemRoundTripConv(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "l4", N: 1, K: 128, C: 64, H: 28, W: 28, R: 3, S: 3,
		StrideX: 2, StrideY: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	node := FromProblem(p)
	text := yamlite.Encode(node)
	if !strings.Contains(text, "2*H+R") {
		t.Fatalf("projection missing stride:\n%s", text)
	}
	parsed, err := yamlite.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProblem(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != p.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back.String(), p.String())
	}
}

func TestProblemRoundTripMatmul(t *testing.T) {
	p := loopnest.MatMul(64, 32, 16)
	back, err := ParseProblem(FromProblem(p))
	if err != nil {
		t.Fatal(err)
	}
	if back.Ops() != p.Ops() || len(back.Tensors) != 3 || !back.Tensors[2].ReadWrite {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestParseProblemErrors(t *testing.T) {
	bad := []string{
		"foo: 1",
		"problem:\n  shape:\n    name: x\n",
		"problem:\n  shape:\n    name: x\n    dimensions:\n      - I\n    data-spaces:\n      - name: A\n        projection:\n          - J\n  instance:\n    I: 4\n",
	}
	for _, src := range bad {
		n, err := yamlite.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseProblem(n); err == nil {
			t.Fatalf("ParseProblem(%q) should fail", src)
		}
	}
}

func TestArchRoundTrip(t *testing.T) {
	e := arch.Eyeriss()
	node := FromArch(&e)
	text := yamlite.Encode(node)
	if !strings.Contains(text, "PE[0..167]") {
		t.Fatalf("PE array missing:\n%s", text)
	}
	parsed, err := yamlite.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseArch(parsed, arch.Tech45nm())
	if err != nil {
		t.Fatal(err)
	}
	if back.PEs != 168 || back.Regs != 512 || back.SRAM != 65536 {
		t.Fatalf("arch round trip = %+v", back)
	}
}

func TestParsePEArray(t *testing.T) {
	if n, ok := parsePEArray("PE[0..15]"); !ok || n != 16 {
		t.Fatalf("parsePEArray = %d, %v", n, ok)
	}
	for _, s := range []string{"PE", "PE[0..]", "PE[5..1]", "Chip"} {
		if _, ok := parsePEArray(s); ok {
			t.Fatalf("parsePEArray(%q) should fail", s)
		}
	}
}

func standardSetup(t *testing.T) (*dataflow.Nest, *model.Mapping, *loopnest.Problem) {
	t.Helper()
	p := loopnest.MatMul(64, 64, 64)
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := &model.Mapping{
		Perms: dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}),
		Trips: [][]int64{
			{4, 4, 4},
			{2, 2, 4},
			{2, 2, 1},
			{4, 4, 4},
		},
	}
	return n, m, p
}

func TestMappingRoundTrip(t *testing.T) {
	n, m, _ := standardSetup(t)
	node, err := FromMapping(n, m)
	if err != nil {
		t.Fatal(err)
	}
	text := yamlite.Encode(node)
	if !strings.Contains(text, "target: DRAM") || !strings.Contains(text, "type: spatial") {
		t.Fatalf("mapping text:\n%s", text)
	}
	parsed, err := yamlite.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseMapping(parsed, n)
	if err != nil {
		t.Fatal(err)
	}
	for li := range m.Trips {
		for it := range m.Trips[li] {
			if m.Trips[li][it] != back.Trips[li][it] {
				t.Fatalf("trips differ at level %d iter %d: %d vs %d",
					li, it, m.Trips[li][it], back.Trips[li][it])
			}
		}
	}
	// Evaluation must agree exactly.
	e := arch.Eyeriss()
	ev := model.NewEvaluator(n)
	r1, err := ev.Evaluate(&e, m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ev.Evaluate(&e, back)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Energy != r2.Energy || r1.Cycles != r2.Cycles {
		t.Fatalf("round-tripped mapping evaluates differently: %v vs %v", r1.Energy, r2.Energy)
	}
}

func TestMappingPermConvention(t *testing.T) {
	n, m, _ := standardSetup(t)
	node, err := FromMapping(n, m)
	if err != nil {
		t.Fatal(err)
	}
	// SRAM perm outer-to-inner i,k,j → Timeloop (innermost first): J K I.
	text := yamlite.Encode(node)
	if !strings.Contains(text, "permutation: J K I") {
		t.Fatalf("unexpected permutation rendering:\n%s", text)
	}
}

func TestParseMappingErrors(t *testing.T) {
	n, _, _ := standardSetup(t)
	cases := []string{
		"mapping: x",
		"mapping:\n  - type: temporal\n",
		"mapping:\n  - target: DRAM\n    type: temporal\n    factors: Z=4\n",
		"mapping:\n  - target: WAT\n    type: temporal\n    factors: I=4\n",
	}
	for _, src := range cases {
		node, err := yamlite.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseMapping(node, n); err == nil {
			t.Fatalf("ParseMapping(%q) should fail", src)
		}
	}
}

func TestDesignBundle(t *testing.T) {
	n, m, p := standardSetup(t)
	e := arch.Eyeriss()
	text, err := DesignBundle(p, &e, n, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"problem:", "architecture:", "mapping:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("bundle missing %q:\n%s", want, text)
		}
	}
	// The bundle must be parseable as one document.
	if _, err := yamlite.Parse(text); err != nil {
		t.Fatal(err)
	}
}

func TestSortedFactors(t *testing.T) {
	if got := SortedFactors("K=4 C=1 A=9"); got != "A=9 C=1 K=4" {
		t.Fatalf("SortedFactors = %q", got)
	}
}

func TestParseConstraints(t *testing.T) {
	n, _, _ := standardSetup(t)
	doc := `
constraints:
  - target: SRAM
    type: spatial
    factors: I=8 J=8
  - target: DRAM
    type: temporal
    permutation: J K I
`
	node, err := yamlite.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := ParseConstraints(node, n)
	if err != nil {
		t.Fatal(err)
	}
	if cons.FixedTrips[dataflow.StandardLevelSpatial][0] != 8 ||
		cons.FixedTrips[dataflow.StandardLevelSpatial][1] != 8 {
		t.Fatalf("spatial trips = %v", cons.FixedTrips)
	}
	// Permutation "J K I" innermost-first → outer-to-inner i, k, j.
	perm := cons.FixedPerms[dataflow.StandardLevelSRAM]
	want := []int{0, 2, 1}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestParseConstraintsErrors(t *testing.T) {
	n, _, _ := standardSetup(t)
	cases := []string{
		"foo: 1",
		"constraints:\n  - type: temporal\n",
		"constraints:\n  - target: DRAM\n",
		"constraints:\n  - target: WAT\n    type: temporal\n",
		"constraints:\n  - target: DRAM\n    type: temporal\n    factors: Z=4\n",
		"constraints:\n  - target: DRAM\n    type: temporal\n    factors: I=x\n",
		"constraints:\n  - target: DRAM\n    type: temporal\n    factors: I\n",
		"constraints:\n  - target: DRAM\n    type: temporal\n    permutation: Q K I\n",
	}
	for _, src := range cases {
		node, err := yamlite.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseConstraints(node, n); err == nil {
			t.Fatalf("ParseConstraints(%q) should fail", src)
		}
	}
}
