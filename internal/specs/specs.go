// Package specs reads and writes Timeloop-style specification documents
// (the paper's Fig. 3): problem descriptions (dimensions, data spaces
// with projections, instance sizes), architecture descriptions (the
// DRAM/SRAM/PE-array subtree), and mappings (per-target factors and
// permutations). Thistle design points are exported in this format so
// that, as in the paper's evaluation flow, the optimizer's output is a
// specification the accelerator model consumes.
package specs

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/mapper"
	"repro/internal/model"
	"repro/internal/yamlite"
)

// ErrBadSpec reports malformed specification content.
var ErrBadSpec = errors.New("specs: invalid specification")

// ---------- Problem specs (Fig. 3(b)) ----------

// FromProblem renders a loop-nest problem as a Timeloop-style problem
// spec node.
func FromProblem(p *loopnest.Problem) *yamlite.Node {
	shape := yamlite.NewMap()
	shape.Set("name", yamlite.NewScalar(p.Name))
	dims := yamlite.NewSeq()
	for _, it := range p.Iters {
		dims.Append(yamlite.NewScalar(strings.ToUpper(it.Name)))
	}
	shape.Set("dimensions", dims)
	spaces := yamlite.NewSeq()
	for _, t := range p.Tensors {
		ds := yamlite.NewMap()
		ds.Set("name", yamlite.NewScalar(t.Name))
		proj := yamlite.NewSeq()
		for _, d := range t.Dims {
			proj.Append(yamlite.NewScalar(formatIndexExpr(p, d)))
		}
		ds.Set("projection", proj)
		if t.ReadWrite {
			ds.Set("read-write", yamlite.NewBool(true))
		}
		spaces.Append(ds)
	}
	shape.Set("data-spaces", spaces)
	inst := yamlite.NewMap()
	for _, it := range p.Iters {
		inst.Set(strings.ToUpper(it.Name), yamlite.NewInt(it.Extent))
	}
	root := yamlite.NewMap()
	prob := yamlite.NewMap()
	prob.Set("shape", shape)
	prob.Set("instance", inst)
	root.Set("problem", prob)
	return root
}

func formatIndexExpr(p *loopnest.Problem, e loopnest.IndexExpr) string {
	parts := make([]string, 0, len(e.Terms))
	for _, t := range e.Terms {
		name := strings.ToUpper(p.Iters[t.Iter].Name)
		if t.Stride == 1 {
			parts = append(parts, name)
		} else {
			parts = append(parts, fmt.Sprintf("%d*%s", t.Stride, name))
		}
	}
	return strings.Join(parts, "+")
}

// ParseProblem reconstructs a loop-nest problem from a problem spec.
func ParseProblem(root *yamlite.Node) (*loopnest.Problem, error) {
	prob := root.Get("problem")
	if prob == nil {
		return nil, fmt.Errorf("%w: missing problem", ErrBadSpec)
	}
	shape := prob.Get("shape")
	inst := prob.Get("instance")
	if shape == nil || inst == nil {
		return nil, fmt.Errorf("%w: missing shape/instance", ErrBadSpec)
	}
	name, _ := shape.Get("name").Str()
	dimsNode := shape.Get("dimensions")
	if dimsNode == nil || dimsNode.Kind != yamlite.Seq {
		return nil, fmt.Errorf("%w: missing dimensions", ErrBadSpec)
	}
	p := &loopnest.Problem{Name: name}
	index := map[string]int{}
	for _, d := range dimsNode.Items {
		dn, err := d.Str()
		if err != nil {
			return nil, fmt.Errorf("%w: bad dimension: %v", ErrBadSpec, err)
		}
		ext, err := inst.Get(dn).Int()
		if err != nil {
			return nil, fmt.Errorf("%w: missing instance extent for %s", ErrBadSpec, dn)
		}
		index[dn] = len(p.Iters)
		p.Iters = append(p.Iters, loopnest.Iter{Name: strings.ToLower(dn), Extent: ext})
	}
	spaces := shape.Get("data-spaces")
	if spaces == nil || spaces.Kind != yamlite.Seq {
		return nil, fmt.Errorf("%w: missing data-spaces", ErrBadSpec)
	}
	for _, ds := range spaces.Items {
		tname, err := ds.Get("name").Str()
		if err != nil {
			return nil, fmt.Errorf("%w: data space without name", ErrBadSpec)
		}
		t := loopnest.Tensor{Name: tname}
		if rw := ds.Get("read-write"); rw != nil {
			v, err := rw.Bool()
			if err != nil {
				return nil, fmt.Errorf("%w: bad read-write on %s", ErrBadSpec, tname)
			}
			t.ReadWrite = v
		}
		proj := ds.Get("projection")
		if proj == nil || proj.Kind != yamlite.Seq {
			return nil, fmt.Errorf("%w: missing projection on %s", ErrBadSpec, tname)
		}
		for _, pe := range proj.Items {
			s, err := pe.Str()
			if err != nil {
				return nil, fmt.Errorf("%w: bad projection on %s", ErrBadSpec, tname)
			}
			ie, err := parseIndexExpr(s, index)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrBadSpec, tname, err)
			}
			t.Dims = append(t.Dims, ie)
		}
		p.Tensors = append(p.Tensors, t)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseIndexExpr(s string, index map[string]int) (loopnest.IndexExpr, error) {
	var e loopnest.IndexExpr
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		stride := int64(1)
		name := part
		if i := strings.Index(part, "*"); i >= 0 {
			v, err := strconv.ParseInt(strings.TrimSpace(part[:i]), 10, 64)
			if err != nil {
				return e, fmt.Errorf("bad stride in %q", part)
			}
			stride = v
			name = strings.TrimSpace(part[i+1:])
		}
		it, ok := index[name]
		if !ok {
			return e, fmt.Errorf("unknown dimension %q", name)
		}
		e.Terms = append(e.Terms, loopnest.IndexTerm{Iter: it, Stride: stride})
	}
	return e, nil
}

// ---------- Architecture specs (Fig. 3(a)) ----------

// FromArch renders an architecture as the three-level subtree of
// Fig. 3(a): DRAM at the system level, a chip with the shared SRAM, and
// a PE array with a register file and MAC unit per PE.
func FromArch(a *arch.Arch) *yamlite.Node {
	dram := yamlite.NewMap()
	dram.Set("attributes", yamlite.NewMap().
		Set("read_bandwidth", yamlite.NewFloat(a.Tech.BWDRAM)).
		Set("type", yamlite.NewScalar("LPDDR4")).
		Set("word-bits", yamlite.NewInt(int64(a.Tech.WordBits))).
		Set("write_bandwidth", yamlite.NewFloat(a.Tech.BWDRAM)))
	dram.Set("class", yamlite.NewScalar("DRAM"))
	dram.Set("name", yamlite.NewScalar("DRAM"))

	sram := yamlite.NewMap()
	sram.Set("attributes", yamlite.NewMap().
		Set("depth", yamlite.NewInt(a.SRAM)).
		Set("read_bandwidth", yamlite.NewFloat(a.Tech.BWSRAM)).
		Set("word-bits", yamlite.NewInt(int64(a.Tech.WordBits))).
		Set("write_bandwidth", yamlite.NewFloat(a.Tech.BWSRAM)))
	sram.Set("class", yamlite.NewScalar("SRAM"))
	sram.Set("name", yamlite.NewScalar("SRAM"))

	regfile := yamlite.NewMap()
	regfile.Set("attributes", yamlite.NewMap().
		Set("depth", yamlite.NewInt(a.Regs)).
		Set("read_bandwidth", yamlite.NewFloat(a.Tech.BWReg)).
		Set("word-bits", yamlite.NewInt(int64(a.Tech.WordBits))).
		Set("write_bandwidth", yamlite.NewFloat(a.Tech.BWReg)))
	regfile.Set("class", yamlite.NewScalar("regfile"))
	regfile.Set("name", yamlite.NewScalar("RegisterFile"))

	macc := yamlite.NewMap()
	macc.Set("attributes", yamlite.NewMap().
		Set("datawidth", yamlite.NewInt(int64(a.Tech.WordBits))))
	macc.Set("class", yamlite.NewScalar("intmac"))
	macc.Set("name", yamlite.NewScalar("MACC"))

	pe := yamlite.NewMap()
	pe.Set("name", yamlite.NewScalar(fmt.Sprintf("PE[0..%d]", a.PEs-1)))
	pe.Set("local", yamlite.NewSeq(regfile, macc))

	chip := yamlite.NewMap()
	chip.Set("name", yamlite.NewScalar("Chip"))
	chip.Set("local", yamlite.NewSeq(sram))
	chip.Set("subtree", yamlite.NewSeq(pe))

	system := yamlite.NewMap()
	system.Set("name", yamlite.NewScalar("system"))
	system.Set("local", yamlite.NewSeq(dram))
	system.Set("subtree", yamlite.NewSeq(chip))

	archNode := yamlite.NewMap()
	archNode.Set("version", yamlite.NewScalar("A.3"))
	archNode.Set("technology", yamlite.NewScalar("45nm"))
	archNode.Set("subtree", yamlite.NewSeq(system))

	root := yamlite.NewMap()
	root.Set("architecture", archNode)
	return root
}

// ParseArch extracts the architecture parameters (PE count, register
// depth, SRAM depth) from an architecture spec, filling energy/area
// constants from tech.
func ParseArch(root *yamlite.Node, tech arch.Tech) (arch.Arch, error) {
	a := arch.Arch{Name: "parsed", Tech: tech}
	an := root.Get("architecture")
	if an == nil {
		return a, fmt.Errorf("%w: missing architecture", ErrBadSpec)
	}
	var walk func(n *yamlite.Node) error
	walk = func(n *yamlite.Node) error {
		if name := n.Get("name"); name != nil {
			if s, err := name.Str(); err == nil {
				if cnt, ok := parsePEArray(s); ok {
					a.PEs = cnt
				}
			}
		}
		if local := n.Get("local"); local != nil && local.Kind == yamlite.Seq {
			for _, comp := range local.Items {
				class, _ := comp.Get("class").Str()
				depthNode := comp.Get("attributes").Get("depth")
				switch class {
				case "SRAM":
					if depthNode == nil {
						return fmt.Errorf("%w: SRAM without depth", ErrBadSpec)
					}
					d, err := depthNode.Int()
					if err != nil {
						return err
					}
					a.SRAM = d
				case "regfile":
					if depthNode == nil {
						return fmt.Errorf("%w: regfile without depth", ErrBadSpec)
					}
					d, err := depthNode.Int()
					if err != nil {
						return err
					}
					a.Regs = d
				}
			}
		}
		if sub := n.Get("subtree"); sub != nil && sub.Kind == yamlite.Seq {
			for _, child := range sub.Items {
				if err := walk(child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(an); err != nil {
		return a, err
	}
	if err := a.Validate(); err != nil {
		return a, fmt.Errorf("%w: incomplete architecture: %v", ErrBadSpec, err)
	}
	return a, nil
}

// parsePEArray extracts the instance count from names like "PE[0..167]".
func parsePEArray(s string) (int64, bool) {
	if !strings.HasPrefix(s, "PE[") || !strings.HasSuffix(s, "]") {
		return 0, false
	}
	body := s[3 : len(s)-1]
	parts := strings.Split(body, "..")
	if len(parts) != 2 {
		return 0, false
	}
	lo, err1 := strconv.ParseInt(parts[0], 10, 64)
	hi, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil || hi < lo {
		return 0, false
	}
	return hi - lo + 1, true
}

// ---------- Mapping specs (Fig. 3(d)) ----------

// targets of the standard nest levels, outermost first in the emitted
// document (Timeloop convention).
var levelTargets = map[int]struct {
	target string
	kind   string
}{
	dataflow.StandardLevelSRAM:    {"DRAM", "temporal"},
	dataflow.StandardLevelSpatial: {"SRAM", "spatial"},
	dataflow.StandardLevelL1:      {"SRAM", "temporal"},
	dataflow.StandardLevelReg:     {"RegisterFile", "temporal"},
}

// FromMapping renders a concrete mapping of a standard nest in the
// Fig. 3(d) style: one block per level with target, type, factors
// (trip counts, e.g. "K=4 C=1 H=2 W=2"), and permutation (Timeloop's
// innermost-to-outermost letter order).
func FromMapping(n *dataflow.Nest, m *model.Mapping) (*yamlite.Node, error) {
	if err := n.CheckTrips(m.Trips); err != nil {
		return nil, err
	}
	seq := yamlite.NewSeq()
	order := []int{
		dataflow.StandardLevelSRAM,
		dataflow.StandardLevelSpatial,
		dataflow.StandardLevelL1,
		dataflow.StandardLevelReg,
	}
	for _, li := range order {
		t := levelTargets[li]
		entry := yamlite.NewMap()
		entry.Set("target", yamlite.NewScalar(t.target))
		entry.Set("type", yamlite.NewScalar(t.kind))
		var facts []string
		for it, iter := range n.Prob.Iters {
			v := int64(1)
			if li < len(m.Trips) && it < len(m.Trips[li]) && m.Trips[li][it] > 0 {
				v = m.Trips[li][it]
			}
			facts = append(facts, fmt.Sprintf("%s=%d", strings.ToUpper(iter.Name), v))
		}
		entry.Set("factors", yamlite.NewScalar(strings.Join(facts, " ")))
		if t.kind == "temporal" && li < len(m.Perms) && len(m.Perms[li]) > 0 {
			// Timeloop permutations are innermost-to-outermost.
			perm := m.Perms[li]
			letters := make([]string, 0, len(perm))
			for i := len(perm) - 1; i >= 0; i-- {
				letters = append(letters, strings.ToUpper(n.Prob.Iters[perm[i]].Name))
			}
			entry.Set("permutation", yamlite.NewScalar(strings.Join(letters, " ")))
		}
		seq.Append(entry)
	}
	root := yamlite.NewMap()
	root.Set("mapping", seq)
	return root, nil
}

// ParseMapping reconstructs a Mapping for the given standard nest from a
// mapping spec.
func ParseMapping(root *yamlite.Node, n *dataflow.Nest) (*model.Mapping, error) {
	mp := root.Get("mapping")
	if mp == nil || mp.Kind != yamlite.Seq {
		return nil, fmt.Errorf("%w: missing mapping", ErrBadSpec)
	}
	m := &model.Mapping{
		Perms: make([][]int, len(n.Levels)),
		Trips: make([][]int64, len(n.Levels)),
	}
	for li := range n.Levels {
		m.Trips[li] = make([]int64, len(n.Prob.Iters))
		for i := range m.Trips[li] {
			m.Trips[li][i] = 1
		}
	}
	iterIdx := map[string]int{}
	for i, it := range n.Prob.Iters {
		iterIdx[strings.ToUpper(it.Name)] = i
	}
	// Inverse of levelTargets: (target, type) → level index.
	levelOf := map[string]int{}
	for li, t := range levelTargets {
		levelOf[t.target+"/"+t.kind] = li
	}
	for _, entry := range mp.Items {
		target, err := entry.Get("target").Str()
		if err != nil {
			return nil, fmt.Errorf("%w: entry without target", ErrBadSpec)
		}
		kind, err := entry.Get("type").Str()
		if err != nil {
			return nil, fmt.Errorf("%w: entry without type", ErrBadSpec)
		}
		li, ok := levelOf[target+"/"+kind]
		if !ok {
			return nil, fmt.Errorf("%w: unknown target/type %s/%s", ErrBadSpec, target, kind)
		}
		facts, err := entry.Get("factors").Str()
		if err != nil {
			return nil, fmt.Errorf("%w: entry without factors", ErrBadSpec)
		}
		for _, f := range strings.Fields(facts) {
			kv := strings.SplitN(f, "=", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("%w: bad factor %q", ErrBadSpec, f)
			}
			it, ok := iterIdx[kv[0]]
			if !ok {
				return nil, fmt.Errorf("%w: unknown dimension %q", ErrBadSpec, kv[0])
			}
			v, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("%w: bad factor value %q", ErrBadSpec, f)
			}
			m.Trips[li][it] = v
		}
		if permStr := entry.Get("permutation"); permStr != nil {
			s, err := permStr.Str()
			if err != nil {
				return nil, fmt.Errorf("%w: bad permutation", ErrBadSpec)
			}
			var perm []int
			// Spec order is innermost-to-outermost; internal order is
			// outer-to-inner.
			fields := strings.Fields(s)
			for i := len(fields) - 1; i >= 0; i-- {
				it, ok := iterIdx[fields[i]]
				if !ok {
					return nil, fmt.Errorf("%w: unknown dimension %q in permutation", ErrBadSpec, fields[i])
				}
				perm = append(perm, it)
			}
			// Keep only iterators active at this level, preserving order.
			var filtered []int
			active := map[int]bool{}
			for _, a := range n.Levels[li].Active {
				active[a] = true
			}
			for _, it := range perm {
				if active[it] {
					filtered = append(filtered, it)
				}
			}
			m.Perms[li] = filtered
		}
	}
	if err := n.CheckTrips(m.Trips); err != nil {
		return nil, err
	}
	return m, nil
}

// DesignBundle renders the full specification set of a design point —
// problem, architecture, mapping — as one document.
func DesignBundle(p *loopnest.Problem, a *arch.Arch, n *dataflow.Nest, m *model.Mapping) (string, error) {
	mapNode, err := FromMapping(n, m)
	if err != nil {
		return "", err
	}
	root := yamlite.NewMap()
	root.Set("problem", FromProblem(p).Get("problem"))
	root.Set("architecture", FromArch(a).Get("architecture"))
	root.Set("mapping", mapNode.Get("mapping"))
	return yamlite.Encode(root), nil
}

// SortedFactors is a helper that renders factors deterministically for
// tests and goldens.
func SortedFactors(facts string) string {
	fs := strings.Fields(facts)
	sort.Strings(fs)
	return strings.Join(fs, " ")
}

// ParseConstraints reads a Timeloop-style constraints document into
// mapper search constraints. The format mirrors mapping entries but is
// partial: factors pin only the dimensions listed, and permutation (when
// present) pins the level's loop order.
//
//	constraints:
//	  - target: SRAM
//	    type: spatial
//	    factors: K=8 C=8
//	  - target: DRAM
//	    type: temporal
//	    permutation: W H C K N
func ParseConstraints(root *yamlite.Node, n *dataflow.Nest) (*mapper.Constraints, error) {
	cn := root.Get("constraints")
	if cn == nil || cn.Kind != yamlite.Seq {
		return nil, fmt.Errorf("%w: missing constraints", ErrBadSpec)
	}
	iterIdx := map[string]int{}
	for i, it := range n.Prob.Iters {
		iterIdx[strings.ToUpper(it.Name)] = i
	}
	levelOf := map[string]int{}
	for li, t := range levelTargets {
		levelOf[t.target+"/"+t.kind] = li
	}
	out := &mapper.Constraints{
		FixedTrips: map[int]map[int]int64{},
		FixedPerms: map[int][]int{},
	}
	for _, entry := range cn.Items {
		target, err := entry.Get("target").Str()
		if err != nil {
			return nil, fmt.Errorf("%w: constraint without target", ErrBadSpec)
		}
		kind, err := entry.Get("type").Str()
		if err != nil {
			return nil, fmt.Errorf("%w: constraint without type", ErrBadSpec)
		}
		li, ok := levelOf[target+"/"+kind]
		if !ok {
			return nil, fmt.Errorf("%w: unknown constraint target/type %s/%s", ErrBadSpec, target, kind)
		}
		if facts := entry.Get("factors"); facts != nil {
			s, err := facts.Str()
			if err != nil {
				return nil, fmt.Errorf("%w: bad factors", ErrBadSpec)
			}
			for _, f := range strings.Fields(s) {
				kv := strings.SplitN(f, "=", 2)
				if len(kv) != 2 {
					return nil, fmt.Errorf("%w: bad factor %q", ErrBadSpec, f)
				}
				it, ok := iterIdx[kv[0]]
				if !ok {
					return nil, fmt.Errorf("%w: unknown dimension %q", ErrBadSpec, kv[0])
				}
				v, err := strconv.ParseInt(kv[1], 10, 64)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("%w: bad factor value %q", ErrBadSpec, f)
				}
				if out.FixedTrips[li] == nil {
					out.FixedTrips[li] = map[int]int64{}
				}
				out.FixedTrips[li][it] = v
			}
		}
		if permNode := entry.Get("permutation"); permNode != nil {
			s, err := permNode.Str()
			if err != nil {
				return nil, fmt.Errorf("%w: bad permutation", ErrBadSpec)
			}
			fields := strings.Fields(s)
			var perm []int
			for i := len(fields) - 1; i >= 0; i-- { // innermost-first convention
				it, ok := iterIdx[fields[i]]
				if !ok {
					return nil, fmt.Errorf("%w: unknown dimension %q in permutation", ErrBadSpec, fields[i])
				}
				perm = append(perm, it)
			}
			var filtered []int
			active := map[int]bool{}
			for _, a := range n.Levels[li].Active {
				active[a] = true
			}
			for _, it := range perm {
				if active[it] {
					filtered = append(filtered, it)
				}
			}
			out.FixedPerms[li] = filtered
		}
	}
	return out, nil
}
