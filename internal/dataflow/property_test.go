package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/loopnest"
)

// divisorsOf returns the sorted divisors of n (test-local to avoid an
// import cycle with the mapper package).
func divisorsOf(n int64) []int64 {
	var out []int64
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if d != n/d {
				out = append(out, n/d)
			}
		}
	}
	return out
}

// randomTrips factorizes each iterator's tileable extent into the active
// levels uniformly at random.
func randomTrips(rng *rand.Rand, n *Nest) [][]int64 {
	trips := make([][]int64, len(n.Levels))
	for li := range trips {
		trips[li] = make([]int64, len(n.Prob.Iters))
		for it := range trips[li] {
			trips[li][it] = 1
		}
	}
	pinned := make([]int64, len(n.Prob.Iters))
	for i := range pinned {
		pinned[i] = 1
	}
	for _, pin := range n.Pins {
		it := n.IterOfVar(pin.Var)
		li := n.levelOfVar(pin.Var)
		trips[li][it] = int64(pin.Value)
		pinned[it] *= int64(pin.Value)
	}
	for it, iter := range n.Prob.Iters {
		rest := iter.Extent / pinned[it]
		var free []int
		for li := range n.Levels {
			if n.Levels[li].Trips[it] == -1 {
				continue
			}
			already := false
			for _, pin := range n.Pins {
				if n.IterOfVar(pin.Var) == it && n.levelOfVar(pin.Var) == li {
					already = true
				}
			}
			if !already {
				free = append(free, li)
			}
		}
		for pos, li := range free {
			if pos == len(free)-1 {
				trips[li][it] = rest
				break
			}
			ds := divisorsOf(rest)
			d := ds[rng.Intn(len(ds))]
			trips[li][it] = d
			rest /= d
		}
	}
	return trips
}

func randomPerm(rng *rand.Rand, active []int) []int {
	p := append([]int(nil), active...)
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// TestQuickTrafficConservation: for random valid mappings of a conv
// layer, the DRAM-boundary traffic of each read-only tensor is at least
// its full size (every element crosses at least once), and the
// read-write tensor moves at least twice its size (read + write-back).
// The SRAM→register traffic is at least the DRAM traffic's share of
// compulsory reads as well — every word consumed must reach registers.
func TestQuickTrafficConservation(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "cons", N: 1, K: 16, C: 8, H: 12, W: 12, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := StandardNest(p, StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trips := randomTrips(rng, n)
		if err := n.CheckTrips(trips); err != nil {
			t.Fatalf("generator produced bad trips: %v", err)
		}
		perms := StandardPerms(
			randomPerm(rng, n.Levels[StandardLevelL1].Active),
			randomPerm(rng, n.Levels[StandardLevelSRAM].Active),
		)
		v, err := n.ComputeVolumes(perms)
		if err != nil {
			return false
		}
		x := n.Assignment(n.Vars.Len(), trips)
		for ti, tensor := range p.Tensors {
			size := float64(p.TensorSize(ti))
			min := size
			if tensor.ReadWrite {
				min = 2 * size
			}
			dram := v.Traffic[1][ti].Eval(x)
			if dram < min-1e-6 {
				t.Logf("tensor %s: DRAM traffic %v < size bound %v (trips %v)", tensor.Name, dram, min, trips)
				return false
			}
			reg := v.Traffic[0][ti].Eval(x)
			if reg <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFootprintsWithinTop: every tensor's SRAM footprint is at most
// its full size, and the register footprint at most the SRAM footprint
// (buffers nest).
func TestQuickFootprintNesting(t *testing.T) {
	p := loopnest.MatMul(48, 36, 60)
	n, err := StandardNest(p, StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trips := randomTrips(rng, n)
		perms := StandardPerms(
			randomPerm(rng, n.Levels[StandardLevelL1].Active),
			randomPerm(rng, n.Levels[StandardLevelSRAM].Active),
		)
		v, err := n.ComputeVolumes(perms)
		if err != nil {
			return false
		}
		x := n.Assignment(n.Vars.Len(), trips)
		for ti := range p.Tensors {
			reg := v.Footprint[0][ti].Eval(x)
			sram := v.Footprint[1][ti].Eval(x)
			top := v.TopFootprint[ti].Eval(x)
			if !(reg >= 1 && reg <= sram+1e-9 && sram <= top+1e-9) {
				t.Logf("tensor %d: reg %v sram %v top %v", ti, reg, sram, top)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRelaxationUpperBounds: the posynomial relaxation never
// underestimates traffic or footprints at integer points.
func TestQuickRelaxationUpperBounds(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "relax", N: 1, K: 8, C: 8, H: 12, W: 12, R: 3, S: 3,
		StrideX: 2, StrideY: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := StandardNest(p, StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trips := randomTrips(rng, n)
		perms := StandardPerms(
			randomPerm(rng, n.Levels[StandardLevelL1].Active),
			randomPerm(rng, n.Levels[StandardLevelSRAM].Active),
		)
		v, err := n.ComputeVolumes(perms)
		if err != nil {
			return false
		}
		x := n.Assignment(n.Vars.Len(), trips)
		for b := 0; b < 2; b++ {
			if v.SumTraffic(b, true).Eval(x) < v.SumTraffic(b, false).Eval(x)-1e-6 {
				return false
			}
			if v.SumFootprint(b, true).Eval(x) < v.SumFootprint(b, false).Eval(x)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
