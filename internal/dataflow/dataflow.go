// Package dataflow models the multi-level tiled execution of a loop-nest
// problem on a spatial accelerator, implementing the paper's Algorithm 1:
// inner-to-outer construction of symbolic data-footprint (DF) and
// data-volume (DV) expressions per tensor and per tiling level, in terms
// of per-level trip-count variables.
//
// The standard nest mirrors Fig. 1 of the paper, inner to outer:
//
//	level 0  register tile      (temporal; data resides in registers)
//	level 1  register-tile loops (temporal; copies SRAM → registers)
//	level 2  PE grid            (spatial; multicast for read-only tensors)
//	level 3  SRAM-tile loops    (temporal; copies DRAM → SRAM)
//
// Trip-count variables follow the paper's notation: the product of an
// iterator's trip counts across all levels equals the full loop extent.
package dataflow

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/loopnest"
)

// ErrBadNest reports an invalid nest configuration.
var ErrBadNest = errors.New("dataflow: invalid nest")

// LevelKind distinguishes sequential loop levels from the spatial PE grid.
type LevelKind int

const (
	// Temporal levels are sequential loops.
	Temporal LevelKind = iota
	// Spatial levels distribute iterations across processing elements.
	// Data for iterators absent from a tensor's subscripts is multicast
	// (counted once) for read-only tensors.
	Spatial
)

// LevelConfig describes one tiling level of a nest.
type LevelConfig struct {
	Name string
	Kind LevelKind
	// Copy marks temporal levels whose loops surround an explicit data
	// copy into the buffer level just below (e.g. the register-tile
	// loops copy SRAM → registers).
	Copy bool
	// Active lists the iterators that may have trip count > 1 at this
	// level. Iterators absent from Active have trip exactly 1 here.
	Active []int
	// Fixed pins the trip counts of a subset of Active to constants
	// (e.g. an untiled full kernel loop). Fixed trip counts of 1 should
	// instead be expressed by omitting the iterator from Active.
	Fixed map[int]int64
	// ReductionMulticast, on spatial levels, extends multicast counting
	// to read-write tensors (free spatial reduction). When false (the
	// default, matching the paper's conservative treatment), each PE
	// along an absent dimension of a read-write tensor contributes its
	// own partial-sum traffic.
	ReductionMulticast bool
}

// Level is a configured tiling level with its trip-count variables.
type Level struct {
	LevelConfig
	// Trips maps iterator index → trip-count variable. Iterators not
	// active at this level map to expr.NoVar. Note that at level 0 every
	// iterator has a variable (possibly pinned to 1) so that extent
	// expressions stay iterator-tagged for Algorithm 1's replace step.
	Trips []expr.VarID
}

// TripOf returns the trip variable of iterator it, or expr.NoVar.
func (l *Level) TripOf(it int) expr.VarID { return l.Trips[it] }

// Pin records a variable whose value is fixed by the nest configuration.
type Pin struct {
	Var   expr.VarID
	Value float64
}

// Nest is a problem together with its tiling levels and trip variables.
type Nest struct {
	Prob   *loopnest.Problem
	Vars   *expr.VarSet
	Levels []Level // index 0 = innermost
	// Pins lists trip variables with configuration-fixed values
	// (including level-0 placeholders pinned to 1).
	Pins []Pin

	iterOfVar []int // VarID → iterator index (−1 for foreign vars)
}

// NewNest builds a nest over the problem with the given level
// configurations (ordered inner to outer). Level 0 must be temporal and
// non-copy; it is the innermost tile whose data resides in the lowest
// buffer level.
func NewNest(p *loopnest.Problem, cfgs []LevelConfig) (*Nest, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(cfgs) < 2 {
		return nil, fmt.Errorf("%w: need at least two levels", ErrBadNest)
	}
	if cfgs[0].Kind != Temporal || cfgs[0].Copy {
		return nil, fmt.Errorf("%w: level 0 must be temporal and non-copy", ErrBadNest)
	}
	n := &Nest{Prob: p, Vars: &expr.VarSet{}}
	for li, cfg := range cfgs {
		lvl := Level{LevelConfig: cfg, Trips: make([]expr.VarID, len(p.Iters))}
		for i := range lvl.Trips {
			lvl.Trips[i] = expr.NoVar
		}
		active := make(map[int]bool, len(cfg.Active))
		for _, it := range cfg.Active {
			if it < 0 || it >= len(p.Iters) {
				return nil, fmt.Errorf("%w: level %s references iterator %d", ErrBadNest, cfg.Name, it)
			}
			if active[it] {
				return nil, fmt.Errorf("%w: level %s repeats iterator %d", ErrBadNest, cfg.Name, it)
			}
			active[it] = true
		}
		for it := range p.Iters {
			needVar := active[it] || li == 0
			if !needVar {
				continue
			}
			v := n.Vars.NewVar(fmt.Sprintf("%s_%s", cfg.Name, p.Iters[it].Name))
			lvl.Trips[it] = v
			n.iterOfVar = append(n.iterOfVar, it)
			if fixed, ok := cfg.Fixed[it]; ok {
				if !active[it] {
					return nil, fmt.Errorf("%w: level %s fixes inactive iterator %d", ErrBadNest, cfg.Name, it)
				}
				if fixed < 1 {
					return nil, fmt.Errorf("%w: level %s fixes iterator %d to %d", ErrBadNest, cfg.Name, it, fixed)
				}
				n.Pins = append(n.Pins, Pin{Var: v, Value: float64(fixed)})
			} else if !active[it] {
				// Level-0 placeholder for an iterator tiled elsewhere.
				n.Pins = append(n.Pins, Pin{Var: v, Value: 1})
			}
		}
		n.Levels = append(n.Levels, lvl)
	}
	return n, nil
}

// IterOfVar maps a trip variable back to its iterator, or −1 for
// variables not owned by the nest (architecture variables registered
// later on the same VarSet).
func (n *Nest) IterOfVar(v expr.VarID) int {
	if int(v) < len(n.iterOfVar) {
		return n.iterOfVar[v]
	}
	return -1
}

// DimTripVars returns the trip variables of iterator it across all
// levels (inner to outer), skipping levels where it is inactive (and not
// level 0).
func (n *Nest) DimTripVars(it int) []expr.VarID {
	var out []expr.VarID
	for _, lvl := range n.Levels {
		if v := lvl.Trips[it]; v != expr.NoVar {
			out = append(out, v)
		}
	}
	return out
}

// regFootprint builds DF⁰ for tensor t: the product over tensor
// dimensions of the extent polynomial Σⱼ strideⱼ·tripⱼ − (Σⱼ strideⱼ − 1)
// using the level-0 trip variables.
func (n *Nest) regFootprint(t loopnest.Tensor) expr.Product {
	l0 := &n.Levels[0]
	var factors []expr.Poly
	for _, dim := range t.Dims {
		var poly expr.Poly
		strideSum := int64(0)
		for _, term := range dim.Terms {
			poly = append(poly, expr.MonoPow(float64(term.Stride), l0.Trips[term.Iter], 1))
			strideSum += term.Stride
		}
		if c := strideSum - 1; c != 0 {
			poly = append(poly, expr.Const(-float64(c)))
		}
		poly.Canon()
		factors = append(factors, poly)
	}
	return expr.ProductOf(factors...)
}

// constructExpr is the paper's Algorithm 1: given the footprint df at the
// next-lower level and the outer-to-inner iterator permutation of a
// temporal level, it returns the footprint and per-execution data volume
// at this level. Iterators in perm must be active at the level.
func (n *Nest) constructExpr(level int, perm []int, t loopnest.Tensor, df expr.Product) (dfOut, dvOut expr.Product) {
	lvl := &n.Levels[level]
	dfOut = df.Clone()
	dvOut = df.Clone()
	canHoist := true
	iterOf := n.IterOfVar
	for k := len(perm) - 1; k >= 0; k-- {
		it := perm[k]
		c := lvl.Trips[it]
		present := t.Uses(it)
		if canHoist {
			if present {
				canHoist = false
				dfOut.ScaleVarMonomials(iterOf, it, c)
				dvOut.ScaleVarMonomials(iterOf, it, c)
			}
			// Absent before the innermost present iterator: the copy is
			// hoisted above this loop; no change.
		} else {
			if present {
				dfOut.ScaleVarMonomials(iterOf, it, c)
			}
			dvOut.MulVar(c)
		}
	}
	return dfOut, dvOut
}

// advanceSpatial returns df advanced across a spatial level (present
// iterators expand the footprint) and the traffic multiplier for volumes
// recorded at inner levels: present iterators always multiply; absent
// iterators multiply only when multicast does not apply to the tensor.
func (n *Nest) advanceSpatial(level int, t loopnest.Tensor, df expr.Product) (dfOut expr.Product, factor expr.Product) {
	lvl := &n.Levels[level]
	dfOut = df.Clone()
	factor = expr.Product{}
	for _, it := range lvl.Active {
		c := lvl.Trips[it]
		if t.Uses(it) {
			dfOut.ScaleVarMonomials(n.IterOfVar, it, c)
			factor.MulVar(c)
		} else if t.ReadWrite && !lvl.ReductionMulticast {
			factor.MulVar(c)
		}
	}
	return dfOut, factor
}

// advanceTemporalAll returns the product of all trip variables of a
// temporal level, the multiplier applied to inner-level volumes by loops
// above their copy level.
func (n *Nest) advanceTemporalAll(level int) expr.Product {
	lvl := &n.Levels[level]
	f := expr.Product{}
	for _, it := range lvl.Active {
		f.MulVar(lvl.Trips[it])
	}
	return f
}

// Boundary identifies one buffer level of the memory hierarchy, inner to
// outer (0 = the lowest buffer, registers in the standard nest).
type Boundary struct {
	// Name is the copy level's name.
	Name string
	// CopyLevel is the temporal level whose loops surround copies into
	// this buffer.
	CopyLevel int
}

// Volumes holds the symbolic footprint and traffic expressions of a nest
// for one choice of per-level permutations.
type Volumes struct {
	Nest *Nest
	// Boundaries lists the buffer levels, inner to outer.
	Boundaries []Boundary
	// Footprint[b][t] is the buffer size tensor t needs at boundary b.
	Footprint [][]expr.Product
	// Traffic[b][t] is the total data volume moved across boundary b for
	// tensor t over the whole execution, including the ×2 for read-write
	// tensors (read + write-back).
	Traffic [][]expr.Product
	// TopFootprint[t] is the footprint after the outermost level (the
	// full tensor slice touched; equals the tensor size symbolically).
	TopFootprint []expr.Product
}

// ComputeVolumes runs Algorithm 1 across all levels. perms[l] gives the
// outer-to-inner iterator order for each temporal copy level l (entries
// for other levels are ignored and may be nil). Each perm must be a
// permutation of the level's Active set.
func (n *Nest) ComputeVolumes(perms [][]int) (*Volumes, error) {
	if len(perms) != len(n.Levels) {
		return nil, fmt.Errorf("%w: got %d perms for %d levels", ErrBadNest, len(perms), len(n.Levels))
	}
	for li := range n.Levels {
		lvl := &n.Levels[li]
		if lvl.Copy {
			if err := checkPerm(perms[li], lvl.Active); err != nil {
				return nil, fmt.Errorf("level %s: %w", lvl.Name, err)
			}
		}
	}
	v := &Volumes{Nest: n}
	nt := len(n.Prob.Tensors)
	df := make([]expr.Product, nt)
	for ti, t := range n.Prob.Tensors {
		df[ti] = n.regFootprint(t)
	}
	for li := 1; li < len(n.Levels); li++ {
		lvl := &n.Levels[li]
		switch {
		case lvl.Kind == Temporal && lvl.Copy:
			foot := make([]expr.Product, nt)
			traf := make([]expr.Product, nt)
			var mult expr.Product
			for ti, t := range n.Prob.Tensors {
				foot[ti] = df[ti].Clone()
				newDF, dv := n.constructExpr(li, perms[li], t, df[ti])
				if t.ReadWrite {
					dv.MulMono(expr.Const(2))
				}
				traf[ti] = dv
				df[ti] = newDF
			}
			mult = n.advanceTemporalAll(li)
			// Inner traffic re-executes once per iteration of this level.
			for b := range v.Traffic {
				for ti := range v.Traffic[b] {
					v.Traffic[b][ti].Factors = append(v.Traffic[b][ti].Factors, mult.Clone().Factors...)
				}
			}
			v.Boundaries = append(v.Boundaries, Boundary{Name: lvl.Name, CopyLevel: li})
			v.Footprint = append(v.Footprint, foot)
			v.Traffic = append(v.Traffic, traf)
		case lvl.Kind == Temporal && !lvl.Copy:
			mult := n.advanceTemporalAll(li)
			for b := range v.Traffic {
				for ti := range v.Traffic[b] {
					v.Traffic[b][ti].Factors = append(v.Traffic[b][ti].Factors, mult.Clone().Factors...)
				}
			}
			for ti, t := range n.Prob.Tensors {
				for _, it := range lvl.Active {
					if t.Uses(it) {
						df[ti].ScaleVarMonomials(n.IterOfVar, it, lvl.Trips[it])
					}
				}
			}
		case lvl.Kind == Spatial:
			for ti, t := range n.Prob.Tensors {
				newDF, factor := n.advanceSpatial(li, t, df[ti])
				df[ti] = newDF
				for b := range v.Traffic {
					v.Traffic[b][ti].Factors = append(v.Traffic[b][ti].Factors, factor.Clone().Factors...)
				}
			}
		}
	}
	v.TopFootprint = df
	return v, nil
}

func checkPerm(perm, active []int) error {
	if len(perm) != len(active) {
		return fmt.Errorf("%w: perm length %d, active %d", ErrBadNest, len(perm), len(active))
	}
	want := map[int]bool{}
	for _, it := range active {
		want[it] = true
	}
	seen := map[int]bool{}
	for _, it := range perm {
		if !want[it] || seen[it] {
			return fmt.Errorf("%w: perm %v is not a permutation of %v", ErrBadNest, perm, active)
		}
		seen[it] = true
	}
	return nil
}

// Folded returns a copy of the volumes with the nest's pinned trip
// variables constant-folded into every expression. Folding before the
// posynomial relaxation makes stride-1 convolution extents exact (e.g.
// t_h + t_r − 1 with t_r pinned to 3 becomes t_h + 2, which has no
// negative constant to drop), tightening the geometric programs.
func (v *Volumes) Folded() *Volumes {
	vals := map[expr.VarID]float64{}
	for _, pin := range v.Nest.Pins {
		vals[pin.Var] = pin.Value
	}
	fold := func(in [][]expr.Product) [][]expr.Product {
		out := make([][]expr.Product, len(in))
		for b := range in {
			out[b] = make([]expr.Product, len(in[b]))
			for ti := range in[b] {
				out[b][ti] = in[b][ti].SubstConst(vals)
			}
		}
		return out
	}
	top := make([]expr.Product, len(v.TopFootprint))
	for ti := range v.TopFootprint {
		top[ti] = v.TopFootprint[ti].SubstConst(vals)
	}
	return &Volumes{
		Nest:         v.Nest,
		Boundaries:   append([]Boundary(nil), v.Boundaries...),
		Footprint:    fold(v.Footprint),
		Traffic:      fold(v.Traffic),
		TopFootprint: top,
	}
}

// SumTraffic returns the sum over tensors of the expanded traffic
// polynomials at boundary b. relax applies the posynomial relaxation.
func (v *Volumes) SumTraffic(b int, relax bool) expr.Poly {
	var sum expr.Poly
	for ti := range v.Traffic[b] {
		sum = sum.Add(v.Traffic[b][ti].Expand(relax))
	}
	return sum
}

// SumFootprint returns the sum over tensors of the expanded footprint
// polynomials at boundary b.
func (v *Volumes) SumFootprint(b int, relax bool) expr.Poly {
	var sum expr.Poly
	for ti := range v.Footprint[b] {
		sum = sum.Add(v.Footprint[b][ti].Expand(relax))
	}
	return sum
}

// EvalTraffic evaluates the exact total traffic at boundary b under the
// assignment x.
func (v *Volumes) EvalTraffic(b int, x []float64) float64 {
	s := 0.0
	for ti := range v.Traffic[b] {
		s += v.Traffic[b][ti].Eval(x)
	}
	return s
}

// EvalFootprint evaluates the exact total footprint at boundary b under
// the assignment x.
func (v *Volumes) EvalFootprint(b int, x []float64) float64 {
	s := 0.0
	for ti := range v.Footprint[b] {
		s += v.Footprint[b][ti].Eval(x)
	}
	return s
}

// String renders all expressions for debugging.
func (v *Volumes) String() string {
	var b strings.Builder
	for bi, bd := range v.Boundaries {
		fmt.Fprintf(&b, "boundary %d (%s):\n", bi, bd.Name)
		for ti, t := range v.Nest.Prob.Tensors {
			fmt.Fprintf(&b, "  DF_%s = %s\n", t.Name, v.Footprint[bi][ti].String(v.Nest.Vars))
			fmt.Fprintf(&b, "  DV_%s = %s\n", t.Name, v.Traffic[bi][ti].String(v.Nest.Vars))
		}
	}
	return b.String()
}

// PermClass is one equivalence class of iterator permutations at a copy
// level: all member permutations induce identical DF/DV expressions, so
// only the representative needs to be optimized.
type PermClass struct {
	Perm []int  // representative, outer-to-inner
	Key  string // canonical signature
	Size int    // number of permutations collapsed into this class
}

// EnumerateClasses enumerates the distinct permutation classes of the
// copy level li by brute-force permutation generation plus signature
// deduplication — the paper's hoist-prefix pruning falls out of the
// signature equality. syms lists involutions (each a set of disjoint
// iterator pairs swapped together) under which the problem is invariant
// (the paper's H/W symmetry, which for convolution swaps h↔w jointly
// with r↔s); classes equivalent under an involution are merged.
func (n *Nest) EnumerateClasses(li int, syms []Involution) ([]PermClass, error) {
	if li <= 0 || li >= len(n.Levels) {
		return nil, fmt.Errorf("%w: level %d out of range", ErrBadNest, li)
	}
	lvl := &n.Levels[li]
	if lvl.Kind != Temporal || !lvl.Copy {
		return nil, fmt.Errorf("%w: level %s is not a copy level", ErrBadNest, lvl.Name)
	}
	// Footprints below this level are permutation-independent: compute
	// them by advancing through the lower levels.
	nt := len(n.Prob.Tensors)
	df := make([]expr.Product, nt)
	for ti, t := range n.Prob.Tensors {
		df[ti] = n.regFootprint(t)
	}
	for lj := 1; lj < li; lj++ {
		lower := &n.Levels[lj]
		for ti, t := range n.Prob.Tensors {
			for _, it := range lower.Active {
				if t.Uses(it) {
					df[ti].ScaleVarMonomials(n.IterOfVar, it, lower.Trips[it])
				}
			}
		}
	}

	// Variable swap maps for symmetry canonicalization: each involution
	// swaps the full trip-variable chains of its iterator pairs.
	var swaps []map[expr.VarID]expr.VarID
	for _, inv := range syms {
		swap := map[expr.VarID]expr.VarID{}
		valid := true
		for _, pr := range inv {
			a := n.DimTripVars(pr[0])
			b := n.DimTripVars(pr[1])
			if len(a) != len(b) {
				valid = false
				break
			}
			for i := range a {
				swap[a[i]] = b[i]
				swap[b[i]] = a[i]
			}
		}
		if valid && len(swap) > 0 {
			swaps = append(swaps, swap)
		}
	}

	// Key construction is the enumeration hot path: one key per tensor
	// per permutation per involution. A shared KeyBuf plus two swapped
	// byte buffers keeps the whole dedup loop allocation-free except for
	// the first sighting of each distinct class (the map-key string).
	var kb expr.KeyBuf
	var keyBuf, bestBuf []byte
	dvs := make([]expr.Product, nt)
	canonical := func(perm []int) []byte {
		for ti, t := range n.Prob.Tensors {
			_, dv := n.constructExpr(li, perm, t, df[ti])
			dvs[ti] = dv
		}
		bestBuf = bestBuf[:0]
		for ti := range dvs {
			if ti > 0 {
				bestBuf = append(bestBuf, ';')
			}
			bestBuf = kb.AppendProductKey(bestBuf, dvs[ti], nil)
		}
		for _, swap := range swaps {
			keyBuf = keyBuf[:0]
			for ti := range dvs {
				if ti > 0 {
					keyBuf = append(keyBuf, ';')
				}
				keyBuf = kb.AppendProductKey(keyBuf, dvs[ti], swap)
			}
			if bytes.Compare(keyBuf, bestBuf) < 0 {
				bestBuf, keyBuf = keyBuf, bestBuf
			}
		}
		return bestBuf
	}

	classes := map[string]*PermClass{}
	var order []string
	permute(append([]int(nil), lvl.Active...), func(perm []int) {
		key := canonical(perm)
		if c, ok := classes[string(key)]; ok {
			c.Size++
			return
		}
		ks := string(key)
		classes[ks] = &PermClass{Perm: append([]int(nil), perm...), Key: ks, Size: 1}
		order = append(order, ks)
	})
	sort.Strings(order)
	out := make([]PermClass, 0, len(classes))
	for _, k := range order {
		out = append(out, *classes[k])
	}
	return out, nil
}

// permute invokes fn with every permutation of s (Heap's algorithm). fn
// must not retain s.
func permute(s []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(s)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				s[i], s[k-1] = s[k-1], s[i]
			} else {
				s[0], s[k-1] = s[k-1], s[0]
			}
		}
	}
	if len(s) == 0 {
		fn(s)
		return
	}
	rec(len(s))
}

// Involution is a set of disjoint iterator pairs that are swapped
// simultaneously.
type Involution [][2]int

// SymmetricInvolutions returns the involutions under which the problem is
// invariant, considering single pairs and joint two-pair swaps (the
// paper's H/W symmetry, which for convolution requires swapping h↔w and
// r↔s together). Only pairs with equal extents are considered.
func SymmetricInvolutions(p *loopnest.Problem) []Involution {
	var candidates [][2]int
	for a := 0; a < len(p.Iters); a++ {
		for b := a + 1; b < len(p.Iters); b++ {
			if p.Iters[a].Extent == p.Iters[b].Extent {
				candidates = append(candidates, [2]int{a, b})
			}
		}
	}
	var out []Involution
	for _, pr := range candidates {
		if invariantUnder(p, Involution{pr}) {
			out = append(out, Involution{pr})
		}
	}
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			a, b := candidates[i], candidates[j]
			if a[0] == b[0] || a[0] == b[1] || a[1] == b[0] || a[1] == b[1] {
				continue // not disjoint
			}
			inv := Involution{a, b}
			// Skip if each pair is independently a symmetry (the joint
			// swap is then redundant for canonicalization purposes).
			if invariantUnder(p, Involution{a}) && invariantUnder(p, Involution{b}) {
				continue
			}
			if invariantUnder(p, inv) {
				out = append(out, inv)
			}
		}
	}
	return out
}

// invariantUnder reports whether every tensor's subscript multiset is
// unchanged by the involution.
func invariantUnder(p *loopnest.Problem, inv Involution) bool {
	swapIt := func(it int) int {
		for _, pr := range inv {
			switch it {
			case pr[0]:
				return pr[1]
			case pr[1]:
				return pr[0]
			}
		}
		return it
	}
	dimKey := func(d loopnest.IndexExpr, mapped bool) string {
		terms := make([]string, 0, len(d.Terms))
		for _, t := range d.Terms {
			it := t.Iter
			if mapped {
				it = swapIt(it)
			}
			terms = append(terms, fmt.Sprintf("%d*%d", t.Stride, it))
		}
		sort.Strings(terms)
		return strings.Join(terms, "+")
	}
	for _, t := range p.Tensors {
		orig := make([]string, len(t.Dims))
		swapped := make([]string, len(t.Dims))
		for i, d := range t.Dims {
			orig[i] = dimKey(d, false)
			swapped[i] = dimKey(d, true)
		}
		sort.Strings(orig)
		sort.Strings(swapped)
		for i := range orig {
			if orig[i] != swapped[i] {
				return false
			}
		}
	}
	return true
}
