package dataflow

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/loopnest"
)

// RSPlacement selects at which level the untiled convolution kernel loops
// (r, s) execute (the paper prunes tiling of these loops because kernel
// extents are small odd numbers).
type RSPlacement int

const (
	// RSAtRegister places the full r/s loops inside the register tile
	// (weights for a full kernel window resident in the register file).
	RSAtRegister RSPlacement = iota
	// RSAtLevel1 places the full r/s loops among the register-tile loops
	// (matching the worked example of the paper's Table I).
	RSAtLevel1
)

func (r RSPlacement) String() string {
	switch r {
	case RSAtRegister:
		return "rs_at_register"
	case RSAtLevel1:
		return "rs_at_level1"
	default:
		return fmt.Sprintf("rs_placement(%d)", int(r))
	}
}

// StandardOptions configures StandardNest.
type StandardOptions struct {
	// RS selects the placement of untiled small loops (see RSPlacement).
	RS RSPlacement
	// UntiledMax is the extent threshold at or below which an iterator
	// named "r" or "s" is considered an untiled kernel loop. Iterators
	// with extent 1 are always dropped everywhere. Default 0 treats all
	// "r"/"s" iterators as untiled regardless of extent.
	UntiledMax int64
	// ReductionMulticast enables free spatial reduction for read-write
	// tensors at the PE level (off by default; see LevelConfig).
	ReductionMulticast bool
}

// StandardLevelReg, StandardLevelL1, StandardLevelSpatial, and
// StandardLevelSRAM are the level indices of the standard nest.
const (
	StandardLevelReg     = 0
	StandardLevelL1      = 1
	StandardLevelSpatial = 2
	StandardLevelSRAM    = 3
)

// StandardNest builds the paper's three-level-memory nest (Fig. 1):
// register tile, register-tile loops (SRAM→register copies), spatial PE
// grid, and SRAM-tile loops (DRAM→SRAM copies).
//
// Iterators with extent 1 are inactive at every level. Iterators named
// "r" or "s" (convolution kernel loops) are untiled: their full extents
// are pinned at the level chosen by opts.RS.
func StandardNest(p *loopnest.Problem, opts StandardOptions) (*Nest, error) {
	var tiled, untiled []int
	for i, it := range p.Iters {
		if it.Extent == 1 {
			continue
		}
		if (it.Name == "r" || it.Name == "s") && (opts.UntiledMax == 0 || it.Extent <= opts.UntiledMax) {
			untiled = append(untiled, i)
		} else {
			tiled = append(tiled, i)
		}
	}
	fixedFor := func(level int) ([]int, map[int]int64) {
		active := append([]int(nil), tiled...)
		fixed := map[int]int64{}
		place := StandardLevelReg
		if opts.RS == RSAtLevel1 {
			place = StandardLevelL1
		}
		if level == place {
			for _, it := range untiled {
				active = append(active, it)
				fixed[it] = p.Iters[it].Extent
			}
		}
		return active, fixed
	}
	l0Active, l0Fixed := fixedFor(StandardLevelReg)
	l1Active, l1Fixed := fixedFor(StandardLevelL1)
	cfgs := []LevelConfig{
		{Name: "reg", Kind: Temporal, Active: l0Active, Fixed: l0Fixed},
		{Name: "q", Kind: Temporal, Copy: true, Active: l1Active, Fixed: l1Fixed},
		{Name: "p", Kind: Spatial, Active: append([]int(nil), tiled...), ReductionMulticast: opts.ReductionMulticast},
		{Name: "t", Kind: Temporal, Copy: true, Active: append([]int(nil), tiled...)},
	}
	return NewNest(p, cfgs)
}

// StandardPerms assembles the per-level permutation slice expected by
// ComputeVolumes for a standard nest from the two copy-level orders.
func StandardPerms(l1, sram []int) [][]int {
	return [][]int{nil, l1, nil, sram}
}

// SpatialTripVars returns the trip variables of the spatial level of a
// standard nest (the PE-grid extents the paper calls P_i).
func (n *Nest) SpatialTripVars() []expr.VarID {
	for li := range n.Levels {
		if n.Levels[li].Kind == Spatial {
			var out []expr.VarID
			for _, it := range n.Levels[li].Active {
				out = append(out, n.Levels[li].Trips[it])
			}
			return out
		}
	}
	return nil
}

// DimEqualities returns, for every iterator of the problem, the monomial
// that must equal the iterator's full extent: the product of its trip
// variables across all levels. Iterators with extent 1 and no variables
// are skipped.
func (n *Nest) DimEqualities() []DimEquality {
	var out []DimEquality
	for it := range n.Prob.Iters {
		vars := n.DimTripVars(it)
		if len(vars) == 0 {
			continue
		}
		out = append(out, DimEquality{
			Iter:   it,
			Vars:   vars,
			Extent: n.Prob.Iters[it].Extent,
		})
	}
	return out
}

// DimEquality states that the product of Vars equals Extent.
type DimEquality struct {
	Iter   int
	Vars   []expr.VarID
	Extent int64
}

// Assignment builds a full variable assignment (indexed by VarID over the
// nest's VarSet, extended to total variables) from per-level trip values.
// trips[li][it] gives the trip of iterator it at level li; entries for
// variables the nest does not have are ignored. Pinned variables receive
// their pinned values. Missing entries default to 1.
func (n *Nest) Assignment(total int, trips [][]int64) []float64 {
	return n.AssignmentInto(make([]float64, total), trips)
}

// AssignmentInto is Assignment writing into the caller-owned dst (whose
// length fixes the variable count), so evaluation loops can reuse one
// buffer. Returns dst.
func (n *Nest) AssignmentInto(dst []float64, trips [][]int64) []float64 {
	x := dst
	for i := range x {
		x[i] = 1
	}
	for li := range n.Levels {
		for it, v := range n.Levels[li].Trips {
			if v == expr.NoVar {
				continue
			}
			if li < len(trips) && it < len(trips[li]) && trips[li][it] > 0 {
				x[v] = float64(trips[li][it])
			}
		}
	}
	for _, pin := range n.Pins {
		x[pin.Var] = pin.Value
	}
	return x
}

// CheckTrips validates that per-level trips multiply to the full extents
// and respect pinned values.
func (n *Nest) CheckTrips(trips [][]int64) error {
	if len(trips) != len(n.Levels) {
		return fmt.Errorf("%w: got %d levels of trips, want %d", ErrBadNest, len(trips), len(n.Levels))
	}
	for it, iter := range n.Prob.Iters {
		prod := int64(1)
		for li := range n.Levels {
			tv := int64(1)
			if it < len(trips[li]) && trips[li][it] > 0 {
				tv = trips[li][it]
			}
			if n.Levels[li].Trips[it] == expr.NoVar && tv != 1 {
				return fmt.Errorf("%w: iterator %s has trip %d at inactive level %s", ErrBadNest, iter.Name, tv, n.Levels[li].Name)
			}
			prod *= tv
		}
		if prod != iter.Extent {
			return fmt.Errorf("%w: iterator %s trips multiply to %d, want %d", ErrBadNest, iter.Name, prod, iter.Extent)
		}
	}
	for _, pin := range n.Pins {
		it := n.IterOfVar(pin.Var)
		li := n.levelOfVar(pin.Var)
		tv := int64(1)
		if li >= 0 && li < len(trips) && it < len(trips[li]) && trips[li][it] > 0 {
			tv = trips[li][it]
		}
		if float64(tv) != pin.Value {
			return fmt.Errorf("%w: iterator %s pinned to %g at level %s but trip is %d",
				ErrBadNest, n.Prob.Iters[it].Name, pin.Value, n.Levels[li].Name, tv)
		}
	}
	return nil
}

// levelOfVar finds the level owning a trip variable, or −1.
func (n *Nest) levelOfVar(v expr.VarID) int {
	for li := range n.Levels {
		for _, tv := range n.Levels[li].Trips {
			if tv == v {
				return li
			}
		}
	}
	return -1
}
