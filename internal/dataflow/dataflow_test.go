package dataflow

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/loopnest"
)

const (
	itI = 0
	itJ = 1
	itK = 2
)

// matmulNest builds the standard nest for a 64³ matmul.
func matmulNest(t *testing.T) *Nest {
	t.Helper()
	p := loopnest.MatMul(64, 64, 64)
	n, err := StandardNest(p, StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// matmulTrips builds trips matching the paper's Fig. 1 shape:
// per dimension d: reg r_d, L1 q_d, spatial p_d, SRAM t_d with
// r·q·p·t = 64. k is not parallelized (p_k = 1), as in the paper.
func matmulTrips() [][]int64 {
	return [][]int64{
		{4, 4, 4}, // reg
		{2, 2, 4}, // q
		{2, 2, 1}, // spatial
		{4, 4, 4}, // sram
	}
}

func computeMatmulVolumes(t *testing.T, n *Nest) *Volumes {
	t.Helper()
	// SRAM perm (outer→inner) = i, k, j; L1 perm = i, j, k (paper Fig. 1).
	v, err := n.ComputeVolumes(StandardPerms([]int{itI, itJ, itK}, []int{itI, itK, itJ}))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMatmulEq1 checks the DRAM→SRAM volumes against the closed forms of
// the paper's Eq. 1 (doubling C for read+write).
func TestMatmulEq1(t *testing.T) {
	n := matmulNest(t)
	v := computeMatmulVolumes(t, n)
	x := n.Assignment(n.Vars.Len(), matmulTrips())
	if err := n.CheckTrips(matmulTrips()); err != nil {
		t.Fatal(err)
	}
	const (
		N  = 64.0
		Si = 4 * 2 * 2 // r·q·p for i
		Sk = 4 * 4 * 1
	)
	wantA := N * N          // Ni·Nk
	wantB := N * N * N / Si // NiNjNk/Si
	wantC := 2 * N * N * N / Sk
	sramB := 1 // boundary index: 0 = registers, 1 = SRAM
	got := []float64{
		v.Traffic[sramB][0].Eval(x),
		v.Traffic[sramB][1].Eval(x),
		v.Traffic[sramB][2].Eval(x),
	}
	if got[0] != wantA || got[1] != wantB || got[2] != wantC {
		t.Fatalf("DRAM→SRAM volumes = %v, want [%v %v %v]", got, wantA, wantB, wantC)
	}
}

// TestMatmulEq2 checks the SRAM→register volumes against Eq. 2 with
// P_k = 1 (the paper's simplification).
func TestMatmulEq2(t *testing.T) {
	n := matmulNest(t)
	v := computeMatmulVolumes(t, n)
	x := n.Assignment(n.Vars.Len(), matmulTrips())
	const (
		N  = 64.0
		Rj = 4.0
		Pj = 2.0
		Ri = 4.0
		Pi = 2.0
		Sk = 16.0
	)
	wantA := N * N * N / (Rj * Pj)
	wantB := N * N * N / (Ri * Pi)
	wantC := 2 * N * N * N / Sk
	got := []float64{
		v.Traffic[0][0].Eval(x),
		v.Traffic[0][1].Eval(x),
		v.Traffic[0][2].Eval(x),
	}
	if got[0] != wantA || got[1] != wantB || got[2] != wantC {
		t.Fatalf("SRAM→reg volumes = %v, want [%v %v %v]", got, wantA, wantB, wantC)
	}
}

func TestMatmulFootprints(t *testing.T) {
	n := matmulNest(t)
	v := computeMatmulVolumes(t, n)
	x := n.Assignment(n.Vars.Len(), matmulTrips())
	// Register tile: A r_i·r_k = 16, B 16, C 16.
	for ti := 0; ti < 3; ti++ {
		if got := v.Footprint[0][ti].Eval(x); got != 16 {
			t.Fatalf("reg footprint[%d] = %v, want 16", ti, got)
		}
	}
	// SRAM: A S_i·S_k = 16·16, B S_k·S_j, C S_i·S_j.
	wants := []float64{16 * 16, 16 * 16, 16 * 16}
	for ti := 0; ti < 3; ti++ {
		if got := v.Footprint[1][ti].Eval(x); got != wants[ti] {
			t.Fatalf("SRAM footprint[%d] = %v, want %v", ti, got, wants[ti])
		}
	}
	// Top: full matrices 64×64.
	for ti := 0; ti < 3; ti++ {
		if got := v.TopFootprint[ti].Eval(x); got != 64*64 {
			t.Fatalf("top footprint[%d] = %v, want 4096", ti, got)
		}
	}
	if got := v.SumFootprint(1, false).Eval(x); got != 3*256 {
		t.Fatalf("SumFootprint = %v", got)
	}
	if got := v.EvalFootprint(1, x); got != 3*256 {
		t.Fatalf("EvalFootprint = %v", got)
	}
	if got, want := v.EvalTraffic(1, x), v.SumTraffic(1, false).Eval(x); got != want {
		t.Fatalf("EvalTraffic %v != SumTraffic %v", got, want)
	}
}

// TestMulticastReadWrite: with p_k > 1 a read-write tensor (C) pays
// spatial reduction traffic, while read-only tensors multicast.
func TestMulticastReadWrite(t *testing.T) {
	n := matmulNest(t)
	v := computeMatmulVolumes(t, n)
	trips := [][]int64{
		{4, 4, 4},
		{2, 2, 2},
		{2, 2, 2}, // p_k = 2 now
		{4, 4, 4},
	}
	if err := n.CheckTrips(trips); err != nil {
		t.Fatal(err)
	}
	x := n.Assignment(n.Vars.Len(), trips)
	N := 64.0
	// A: NiNjNk/(Rj·Pj); the p_k multicast means k-parallel PEs share A? No:
	// A uses k, so p_k multiplies footprint, not multicast. j is absent in
	// A: multicast across p_j.
	wantA := N * N * N / (4 * 2)
	if got := v.Traffic[0][0].Eval(x); got != wantA {
		t.Fatalf("A S→R = %v, want %v", got, wantA)
	}
	// C: absent iterator k at spatial level, read-write ⇒ ×p_k, no
	// multicast: 2·NiNjNk/(r_k·q_k) with r_k·q_k = 8.
	wantC := 2 * N * N * N / 8
	if got := v.Traffic[0][2].Eval(x); got != wantC {
		t.Fatalf("C S→R = %v, want %v", got, wantC)
	}
}

// TestReductionMulticastOption: enabling ReductionMulticast restores
// multicast counting for read-write tensors.
func TestReductionMulticastOption(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	n, err := StandardNest(p, StandardOptions{ReductionMulticast: true})
	if err != nil {
		t.Fatal(err)
	}
	v := computeMatmulVolumes(t, n)
	trips := [][]int64{
		{4, 4, 4},
		{2, 2, 2},
		{2, 2, 2},
		{4, 4, 4},
	}
	x := n.Assignment(n.Vars.Len(), trips)
	N := 64.0
	// With free spatial reduction, C's S→R volume is 2·NiNjNk/(S_k) with
	// S_k = r·q·p = 16.
	wantC := 2 * N * N * N / 16
	if got := v.Traffic[0][2].Eval(x); got != wantC {
		t.Fatalf("C S→R = %v, want %v", got, wantC)
	}
}

// TestTableI reproduces the paper's Table I step-by-step result: the
// level-1 data volumes of In and Out for the convolution access
// In[n][c][h+r][2w+s] under the level-1 permutation ⟨w,n,k,h,c,s,r⟩
// with r and s tiled at level 1 (symbolic q_r, q_s).
func TestTableI(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "tableI", N: 4, K: 4, C: 4, H: 8, W: 8, R: 3, S: 3,
		StrideX: 1, StrideY: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 3, 4, 5, 6}
	n, err := NewNest(p, []LevelConfig{
		{Name: "r", Kind: Temporal, Active: all},
		{Name: "q", Kind: Temporal, Copy: true, Active: all},
	})
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{loopnest.ConvW, loopnest.ConvN, loopnest.ConvK,
		loopnest.ConvH, loopnest.ConvC, loopnest.ConvS, loopnest.ConvR}
	v, err := n.ComputeVolumes([][]int{nil, perm})
	if err != nil {
		t.Fatal(err)
	}
	// Variable lookup helpers.
	l0, l1 := &n.Levels[0], &n.Levels[1]
	r := func(it int) expr.VarID { return l0.Trips[it] }
	q := func(it int) expr.VarID { return l1.Trips[it] }
	cN, cK, cC, cR, cS, cH, cW := loopnest.ConvN, loopnest.ConvK, loopnest.ConvC,
		loopnest.ConvR, loopnest.ConvS, loopnest.ConvH, loopnest.ConvW

	// Expected DV¹_In = q_w q_n q_k q_h q_c q_s ·
	//   r_n · r_c · (r_h + q_r·r_r − 1) · (2r_w + r_s − 2).
	wantIn := expr.ProductOf(
		expr.PolyFrom(expr.Mono(1, r(cN))),
		expr.PolyFrom(expr.Mono(1, r(cC))),
		expr.PolyFrom(expr.Mono(1, r(cH)), expr.Mono(1, q(cR), r(cR)), expr.Const(-1)),
		expr.PolyFrom(expr.Mono(2, r(cW)), expr.Mono(1, r(cS)), expr.Const(-2)),
		expr.PolyFrom(expr.Mono(1, q(cS))),
		expr.PolyFrom(expr.Mono(1, q(cC))),
		expr.PolyFrom(expr.Mono(1, q(cH))),
		expr.PolyFrom(expr.Mono(1, q(cK))),
		expr.PolyFrom(expr.Mono(1, q(cN))),
		expr.PolyFrom(expr.Mono(1, q(cW))),
	)
	if got, want := v.Traffic[0][0].Key(), wantIn.Key(); got != want {
		t.Fatalf("DV1_In =\n  %s\nwant\n  %s",
			v.Traffic[0][0].String(n.Vars), wantIn.String(n.Vars))
	}

	// Expected DV¹_Out = 2 q_w q_n q_k · (r_n r_k q_h r_h r_w).
	wantOut := expr.ProductOf(
		expr.PolyFrom(expr.Mono(1, r(cN))),
		expr.PolyFrom(expr.Mono(1, r(cK))),
		expr.PolyFrom(expr.Mono(1, q(cH), r(cH))),
		expr.PolyFrom(expr.Mono(1, r(cW))),
		expr.PolyFrom(expr.Mono(1, q(cK))),
		expr.PolyFrom(expr.Mono(1, q(cN))),
		expr.PolyFrom(expr.Mono(1, q(cW))),
		expr.PolyFrom(expr.Const(2)),
	)
	if got, want := v.Traffic[0][2].Key(), wantOut.Key(); got != want {
		t.Fatalf("DV1_Out =\n  %s\nwant\n  %s",
			v.Traffic[0][2].String(n.Vars), wantOut.String(n.Vars))
	}

	// Expected DV¹_Ker = q_w q_n q_k q_h q_c q_s · (r_k r_c q_r r_r r_s).
	wantKer := expr.ProductOf(
		expr.PolyFrom(expr.Mono(1, r(cK))),
		expr.PolyFrom(expr.Mono(1, r(cC))),
		expr.PolyFrom(expr.Mono(1, q(cR), r(cR))),
		expr.PolyFrom(expr.Mono(1, r(cS))),
		expr.PolyFrom(expr.Mono(1, q(cS))),
		expr.PolyFrom(expr.Mono(1, q(cC))),
		expr.PolyFrom(expr.Mono(1, q(cH))),
		expr.PolyFrom(expr.Mono(1, q(cK))),
		expr.PolyFrom(expr.Mono(1, q(cN))),
		expr.PolyFrom(expr.Mono(1, q(cW))),
	)
	if got, want := v.Traffic[0][1].Key(), wantKer.Key(); got != want {
		t.Fatalf("DV1_Ker =\n  %s\nwant\n  %s",
			v.Traffic[0][1].String(n.Vars), wantKer.String(n.Vars))
	}
}

func TestEnumerateClassesMatmul(t *testing.T) {
	n := matmulNest(t)
	classes, err := n.EnumerateClasses(StandardLevelL1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) < 2 || len(classes) > 6 {
		t.Fatalf("matmul L1 classes = %d, want within [2, 6]", len(classes))
	}
	total := 0
	for _, c := range classes {
		total += c.Size
		if len(c.Perm) != 3 {
			t.Fatalf("class perm %v", c.Perm)
		}
	}
	if total != 6 {
		t.Fatalf("class sizes sum to %d, want 6", total)
	}
	// Classes must have distinct keys.
	seen := map[string]bool{}
	for _, c := range classes {
		if seen[c.Key] {
			t.Fatalf("duplicate class key %q", c.Key)
		}
		seen[c.Key] = true
	}
}

func TestEnumerateClassesConvSymmetry(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "sym", N: 1, K: 16, C: 16, H: 14, W: 14, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := StandardNest(p, StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	syms := SymmetricInvolutions(p)
	if len(syms) == 0 {
		t.Fatal("expected at least one involution for a square conv")
	}
	with, err := n.EnumerateClasses(StandardLevelSRAM, syms)
	if err != nil {
		t.Fatal(err)
	}
	without, err := n.EnumerateClasses(StandardLevelSRAM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(with) >= len(without) {
		t.Fatalf("symmetry pruning had no effect: %d vs %d", len(with), len(without))
	}
	t.Logf("SRAM-level classes: %d without symmetry, %d with", len(without), len(with))
}

func TestSymmetricInvolutions(t *testing.T) {
	// Square stride-1 conv: joint (h,w)+(r,s) swap is a symmetry.
	p, _ := loopnest.Conv2D(loopnest.Conv2DConfig{
		N: 1, K: 8, C: 8, H: 14, W: 14, R: 3, S: 3, StrideX: 1, StrideY: 1,
	})
	syms := SymmetricInvolutions(p)
	foundJoint := false
	for _, inv := range syms {
		if len(inv) == 2 {
			foundJoint = true
		}
	}
	if !foundJoint {
		t.Fatalf("expected joint (h,w)(r,s) involution, got %v", syms)
	}
	// Different strides: no symmetry.
	p2, _ := loopnest.Conv2D(loopnest.Conv2DConfig{
		N: 1, K: 8, C: 8, H: 14, W: 14, R: 3, S: 3, StrideX: 2, StrideY: 1,
	})
	if got := SymmetricInvolutions(p2); len(got) != 0 {
		t.Fatalf("expected no involutions for asymmetric strides, got %v", got)
	}
	// Matmul: no involutions (tensors distinguish i and j).
	if got := SymmetricInvolutions(loopnest.MatMul(8, 8, 8)); len(got) != 0 {
		t.Fatalf("matmul involutions = %v, want none", got)
	}
}

func TestStandardNestDropsUnitAndUntiledIters(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "u", N: 1, K: 8, C: 8, H: 8, W: 8, R: 3, S: 3, StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := StandardNest(p, StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Batch n has extent 1: inactive at every level (only level-0
	// placeholder var pinned to 1).
	if got := len(n.DimTripVars(loopnest.ConvN)); got != 1 {
		t.Fatalf("batch trip vars = %d, want 1 (placeholder)", got)
	}
	// r, s pinned to full extent at level 0.
	foundPin := 0
	for _, pin := range n.Pins {
		if it := n.IterOfVar(pin.Var); (it == loopnest.ConvR || it == loopnest.ConvS) && pin.Value == 3 {
			foundPin++
		}
	}
	if foundPin != 2 {
		t.Fatalf("r/s extent pins = %d, want 2", foundPin)
	}
	// L1 active set excludes r, s, n.
	for _, it := range n.Levels[StandardLevelL1].Active {
		if it == loopnest.ConvR || it == loopnest.ConvS || it == loopnest.ConvN {
			t.Fatalf("L1 active contains %d", it)
		}
	}
}

func TestStandardNestRSAtLevel1(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "rs1", N: 1, K: 8, C: 8, H: 8, W: 8, R: 3, S: 3, StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := StandardNest(p, StandardOptions{RS: RSAtLevel1})
	if err != nil {
		t.Fatal(err)
	}
	active := n.Levels[StandardLevelL1].Active
	hasR := false
	for _, it := range active {
		if it == loopnest.ConvR {
			hasR = true
		}
	}
	if !hasR {
		t.Fatal("RSAtLevel1 should place r in L1 active set")
	}
	if n.Levels[StandardLevelL1].Fixed[loopnest.ConvR] != 3 {
		t.Fatal("r should be fixed to its extent at L1")
	}
}

func TestCheckTripsRejectsBadProducts(t *testing.T) {
	n := matmulNest(t)
	bad := [][]int64{
		{4, 4, 4},
		{2, 2, 4},
		{2, 2, 1},
		{4, 4, 2}, // k product = 32 ≠ 64
	}
	if err := n.CheckTrips(bad); err == nil {
		t.Fatal("expected product error")
	}
	if err := n.CheckTrips(bad[:2]); err == nil {
		t.Fatal("expected level-count error")
	}
}

func TestComputeVolumesValidatesPerms(t *testing.T) {
	n := matmulNest(t)
	if _, err := n.ComputeVolumes(StandardPerms([]int{itI, itJ}, []int{itI, itK, itJ})); err == nil {
		t.Fatal("expected short-perm error")
	}
	if _, err := n.ComputeVolumes(StandardPerms([]int{itI, itI, itJ}, []int{itI, itK, itJ})); err == nil {
		t.Fatal("expected duplicate-perm error")
	}
	if _, err := n.ComputeVolumes(nil); err == nil {
		t.Fatal("expected level-count error")
	}
}

func TestNewNestValidation(t *testing.T) {
	p := loopnest.MatMul(8, 8, 8)
	if _, err := NewNest(p, nil); err == nil {
		t.Fatal("expected too-few-levels error")
	}
	if _, err := NewNest(p, []LevelConfig{
		{Name: "a", Kind: Spatial, Active: []int{0}},
		{Name: "b", Kind: Temporal, Copy: true, Active: []int{0}},
	}); err == nil {
		t.Fatal("expected level-0-kind error")
	}
	if _, err := NewNest(p, []LevelConfig{
		{Name: "a", Kind: Temporal, Active: []int{0, 0}},
		{Name: "b", Kind: Temporal, Copy: true, Active: []int{0}},
	}); err == nil {
		t.Fatal("expected repeat-iterator error")
	}
	if _, err := NewNest(p, []LevelConfig{
		{Name: "a", Kind: Temporal, Active: []int{9}},
		{Name: "b", Kind: Temporal, Copy: true, Active: []int{0}},
	}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestSpatialTripVarsAndDimEqualities(t *testing.T) {
	n := matmulNest(t)
	sp := n.SpatialTripVars()
	if len(sp) != 3 {
		t.Fatalf("spatial trip vars = %d, want 3", len(sp))
	}
	eqs := n.DimEqualities()
	if len(eqs) != 3 {
		t.Fatalf("dim equalities = %d, want 3", len(eqs))
	}
	for _, eq := range eqs {
		if eq.Extent != 64 || len(eq.Vars) != 4 {
			t.Fatalf("equality %+v", eq)
		}
	}
}

func TestVolumesString(t *testing.T) {
	n := matmulNest(t)
	v := computeMatmulVolumes(t, n)
	s := v.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}

// TestVolumesFolded: folding pinned trips preserves exact evaluation and
// removes the negative extent constants for stride-1 kernels.
func TestVolumesFolded(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "fold", N: 1, K: 16, C: 16, H: 14, W: 14, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := StandardNest(p, StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	active := n.Levels[StandardLevelL1].Active
	v, err := n.ComputeVolumes(StandardPerms(active, n.Levels[StandardLevelSRAM].Active))
	if err != nil {
		t.Fatal(err)
	}
	f := v.Folded()
	trips := [][]int64{
		{1, 2, 2, 3, 3, 2, 2},
		{1, 2, 2, 1, 1, 1, 1},
		{1, 2, 2, 1, 1, 7, 7},
		{1, 2, 2, 1, 1, 1, 1},
	}
	if err := n.CheckTrips(trips); err != nil {
		t.Fatal(err)
	}
	x := n.Assignment(n.Vars.Len(), trips)
	for b := 0; b < 2; b++ {
		if got, want := f.EvalTraffic(b, x), v.EvalTraffic(b, x); got != want {
			t.Fatalf("folded traffic[%d] = %v, want %v", b, got, want)
		}
		if got, want := f.EvalFootprint(b, x), v.EvalFootprint(b, x); got != want {
			t.Fatalf("folded footprint[%d] = %v, want %v", b, got, want)
		}
	}
	// Stride-1 conv with pinned 3×3 kernel: the folded register footprint
	// relaxes exactly (no negative constants left to drop).
	exact := f.SumFootprint(0, false)
	relaxed := f.SumFootprint(0, true)
	if exact.Key() != relaxed.Key() {
		t.Fatalf("folded stride-1 footprint should be exact:\nexact   %s\nrelaxed %s",
			exact.String(n.Vars), relaxed.String(n.Vars))
	}
	// The unfolded version is not exact.
	if v.SumFootprint(0, false).Key() == v.SumFootprint(0, true).Key() {
		t.Fatal("unfolded footprint unexpectedly exact")
	}
}
