package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestGracefulDrain exercises the SIGTERM path as cmd/thistled drives
// it: Drain stops admissions (healthz flips to 503, new optimize
// requests are rejected with "draining") but waits for the in-flight
// request, which still completes with 200.
func TestGracefulDrain(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2})
	st := installStub(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		resp, _ := postOptimize(t, ts, tinyConv)
		inflight <- resp.StatusCode
	}()
	<-st.started // the request is executing

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitFor(t, srv.Draining)

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || strings.TrimSpace(string(body)) != "draining" {
		t.Errorf("healthz while draining = %d %q, want 503 draining", resp.StatusCode, body)
	}

	resp, data := postOptimize(t, ts, tinyConv)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("optimize while draining = %d, want 503; body: %s", resp.StatusCode, data)
	}
	if code := errorCode(t, data); code != "draining" {
		t.Errorf("error code = %q, want draining", code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("draining rejection missing Retry-After")
	}

	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(st.release)
	if status := <-inflight; status != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", status)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Errorf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the in-flight request finished")
	}
}

func TestDrainTimeout(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1})
	st := installStub(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		postOptimize(t, ts, tinyConv)
	}()
	<-st.started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Error("Drain returned nil despite a stuck in-flight request")
	}
	close(st.release)
	<-done
}

func TestDrainIdleReturnsImmediately(t *testing.T) {
	srv := New(Config{})
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain on idle server: %v", err)
	}
	if !srv.Draining() {
		t.Error("Draining() false after Drain")
	}
}

// waitFor polls cond until true or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
