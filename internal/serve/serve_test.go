package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// tinyConv is the small problem every solving test uses: cold solve in
// tens of milliseconds, so the suite stays -short friendly.
const tinyConv = `{"conv": {"k": 8, "c": 8, "h": 4, "r": 2}}`

func postOptimize(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/optimize: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, data
}

func decodeOK(t *testing.T, resp *http.Response, data []byte) *OptimizeResponse {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", resp.StatusCode, data)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &out
}

func errorCode(t *testing.T, data []byte) string {
	t.Helper()
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding error envelope: %v (body: %s)", err, data)
	}
	return env.Error.Code
}

func TestOptimizeEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postOptimize(t, ts, tinyConv)
	out := decodeOK(t, resp, data)
	if out.RunID == "" {
		t.Error("response missing run_id")
	}
	if len(out.Results) != 1 {
		t.Fatalf("got %d result rows, want 1", len(out.Results))
	}
	row := out.Results[0]
	if row.Problem != "conv_k8_c8_h4_r2" {
		t.Errorf("problem = %q", row.Problem)
	}
	if row.EnergyPJ <= 0 || row.Cycles <= 0 || row.EDP <= 0 {
		t.Errorf("implausible result row: %+v", row)
	}
	if row.Sig == "" {
		t.Error("result row missing solve signature")
	}
	if row.FromCache {
		t.Error("cold solve marked from_cache")
	}

	var man struct {
		Schema string `json:"schema"`
		RunID  string `json:"run_id"`
		Tool   string `json:"tool"`
		Layers []struct {
			Name string `json:"name"`
		} `json:"layers"`
	}
	if err := json.Unmarshal(out.Manifest, &man); err != nil {
		t.Fatalf("decoding manifest: %v", err)
	}
	if man.Schema != "thistle-manifest-v1" {
		t.Errorf("manifest schema = %q", man.Schema)
	}
	if man.RunID != out.RunID {
		t.Errorf("manifest run_id %q != response run_id %q", man.RunID, out.RunID)
	}
	if man.Tool != "thistled" {
		t.Errorf("manifest tool = %q", man.Tool)
	}
	if len(man.Layers) != 1 || man.Layers[0].Name != "conv_k8_c8_h4_r2" {
		t.Errorf("manifest layers = %+v", man.Layers)
	}

	// Second identical request: served from the shared cache.
	resp, data = postOptimize(t, ts, tinyConv)
	out = decodeOK(t, resp, data)
	if !out.Results[0].FromCache {
		t.Error("repeated request not served from cache")
	}
	if st := srv.Cache().Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats after repeat: %+v", st)
	}
}

func TestOptimizeTraceAndEvents(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postOptimize(t, ts, `{"conv": {"k": 8, "c": 8, "h": 4, "r": 2}, "trace": true, "events": true}`)
	out := decodeOK(t, resp, data)
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(out.Trace, &trace); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
	if got := trace.OtherData["schema"]; got != "thistle-trace-v1" {
		t.Errorf("trace schema = %q", got)
	}
	if got := trace.OtherData["run_id"]; got != out.RunID {
		t.Errorf("trace run_id = %q, want %q", got, out.RunID)
	}
	if out.EventsJSONL == "" {
		t.Fatal("no events stream returned")
	}
	first := strings.SplitN(out.EventsJSONL, "\n", 2)[0]
	if !strings.Contains(first, `"thistle-events-v1"`) || !strings.Contains(first, `"run_start"`) {
		t.Errorf("events stream does not start with a schema-tagged run_start: %s", first)
	}
	if !strings.Contains(out.EventsJSONL, `"run_end"`) {
		t.Error("events stream missing run_end")
	}
}

func TestBadRequests(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"no selector", `{}`, 400, "bad_request"},
		{"two selectors", `{"layer": "resnet18_L1", "pipeline": "resnet18"}`, 400, "bad_request"},
		{"unknown field", `{"layer": "resnet18_L1", "bogus": 1}`, 400, "bad_request"},
		{"unknown layer", `{"layer": "vgg16_L1"}`, 400, "bad_request"},
		{"unknown pipeline", `{"pipeline": "vgg16"}`, 400, "bad_request"},
		{"bad criterion", tinyConv[:len(tinyConv)-1] + `, "criterion": "power"}`, 400, "bad_request"},
		{"bad mode", tinyConv[:len(tinyConv)-1] + `, "mode": "auto"}`, 400, "bad_request"},
		{"negative deadline", tinyConv[:len(tinyConv)-1] + `, "deadline_ms": -1}`, 400, "bad_request"},
		{"malformed json", `{"layer": `, 400, "bad_request"},
		{"trailing document", `{"layer": "resnet18_L1"} {"layer": "resnet18_L2"}`, 400, "bad_request"},
		{"bad problem yaml", `{"problem_yaml": "not: a: problem"}`, 400, "bad_request"},
		{"bad conv shape", `{"conv": {"k": 0, "c": 8, "h": 4, "r": 2}}`, 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postOptimize(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, tc.status, data)
			}
			if code := errorCode(t, data); code != tc.code {
				t.Errorf("error code = %q, want %q", code, tc.code)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/optimize status = %d, want 405", resp.StatusCode)
	}
}

func TestDeadlineExceededMidSolve(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A 1 ms deadline expires before any real solve finishes; the
	// cancellation must propagate through the pipeline and come back as
	// 504, not hang or 500.
	resp, data := postOptimize(t, ts, `{"layer": "resnet18_L1", "deadline_ms": 1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body: %s", resp.StatusCode, data)
	}
	if code := errorCode(t, data); code != "deadline_exceeded" {
		t.Errorf("error code = %q, want deadline_exceeded", code)
	}
}

// blockingStub swaps the server's run hook for one that parks until
// released, making admission states (queue full, draining) deterministic.
type blockingStub struct {
	started chan string   // receives one value per stub invocation
	release chan struct{} // closed (or sent to) to let invocations finish
}

func installStub(srv *Server) *blockingStub {
	st := &blockingStub{started: make(chan string, 16), release: make(chan struct{})}
	srv.run = func(ctx context.Context, req *OptimizeRequest, w *work) (*OptimizeResponse, *apiError) {
		st.started <- w.desc
		select {
		case <-st.release:
		case <-ctx.Done():
			return nil, &apiError{status: http.StatusGatewayTimeout, Code: "deadline_exceeded", Message: ctx.Err().Error()}
		}
		return &OptimizeResponse{RunID: "stub", Manifest: json.RawMessage(`{}`)}, nil
	}
	return st
}

func TestQueueFull429(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: -1, RetryAfter: 7 * time.Second})
	st := installStub(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, data := postOptimize(t, ts, tinyConv)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first request status = %d; body: %s", resp.StatusCode, data)
		}
	}()
	<-st.started // the only slot is now held

	resp, data := postOptimize(t, ts, tinyConv)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429; body: %s", resp.StatusCode, data)
	}
	if code := errorCode(t, data); code != "queue_full" {
		t.Errorf("error code = %q, want queue_full", code)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", ra)
	}

	close(st.release)
	<-done

	// With the slot free again, requests are admitted once more.
	resp, data = postOptimize(t, ts, tinyConv)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release request status = %d; body: %s", resp.StatusCode, data)
	}
}

func TestQueuedRequestAdmittedAfterRelease(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 4})
	st := installStub(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			resp, data := postOptimize(t, ts, tinyConv)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d; body: %s", resp.StatusCode, data)
			}
		}()
	}
	// Both requests eventually run: the first immediately, the second
	// after queuing for the released slot.
	<-st.started
	close(st.release)
	<-st.started
	wg.Wait()
}

func TestSingleflightCoalescing(t *testing.T) {
	srv := New(Config{MaxConcurrent: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 4
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, data := postOptimize(t, ts, tinyConv)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d status = %d; body: %s", i, resp.StatusCode, data)
				return
			}
			bodies[i] = data
		}(i)
	}
	wg.Wait()

	// However the n identical requests interleaved, the underlying
	// solve ran exactly once: one miss+store, n-1 hits (singleflight
	// waits if they overlapped the solve, memory hits if they trailed it).
	st := srv.Cache().Stats()
	if st.Misses != 1 || st.Stores != 1 {
		t.Errorf("cache ran the solve %d times (stores %d), want exactly 1: %+v", st.Misses, st.Stores, st)
	}
	if st.Hits != n-1 {
		t.Errorf("cache hits = %d, want %d: %+v", st.Hits, n-1, st)
	}

	// And every response carries the same design point.
	var want OptimizeResponse
	if err := json.Unmarshal(bodies[0], &want); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		var got OptimizeResponse
		if err := json.Unmarshal(bodies[i], &got); err != nil {
			t.Fatal(err)
		}
		wj, _ := json.Marshal(want.Results[0].EDP)
		gj, _ := json.Marshal(got.Results[0].EDP)
		if !bytes.Equal(wj, gj) {
			t.Errorf("request %d EDP %s != request 0 EDP %s", i, gj, wj)
		}
	}
}

// TestServerMatchesCLI proves the service path (JSON request → resolve →
// shared scheduler/cache → response) returns byte-identical per-layer
// results to the library path the thistle CLI drives with its default
// flags.
func TestServerMatchesCLI(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postOptimize(t, ts, tinyConv)
	out := decodeOK(t, resp, data)

	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "conv_k8_c8_h4_r2", N: 1, K: 8, C: 8, H: 4, W: 4, R: 2, S: 2,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Eyeriss()
	res, err := core.Optimize(p, core.Options{Arch: &a, Criterion: model.MinEnergy, Mode: core.FixedArch})
	if err != nil {
		t.Fatal(err)
	}
	dp := res.Best
	want := LayerOutcome{
		Problem:      p.Name,
		Sig:          core.SolveSignature(p, core.Options{Arch: &a}).Short(),
		PEs:          dp.Arch.PEs,
		Regs:         dp.Arch.Regs,
		SRAMWords:    dp.Arch.SRAM,
		EnergyPJ:     dp.Report.Energy,
		EnergyPerMAC: dp.Report.EnergyPerMAC,
		Cycles:       dp.Report.Cycles,
		EDP:          dp.Report.Energy * dp.Report.Cycles,
		IPC:          dp.Report.IPC,
		Utilization:  dp.Report.Utilization,
	}
	// Byte-identical: compare the JSON serializations, which preserve
	// full float precision.
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(out.Results[0])
	if !bytes.Equal(wj, gj) {
		t.Errorf("server row differs from CLI-equivalent row:\nserver: %s\ncli:    %s", gj, wj)
	}
}

func TestSpecBundleRequest(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postOptimize(t, ts, tinyConv[:len(tinyConv)-1]+`, "specs": true}`)
	out := decodeOK(t, resp, data)
	sb := out.Results[0].SpecBundle
	if !strings.Contains(sb, "problem:") || !strings.Contains(sb, "architecture:") || !strings.Contains(sb, "mapping:") {
		t.Errorf("spec bundle missing sections:\n%s", sb)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(data)
	}

	if code, body := get("/v1/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz = %d %q", code, body)
	}
	// One real request so the metric families exist.
	if resp, data := postOptimize(t, ts, tinyConv); resp.StatusCode != 200 {
		t.Fatalf("optimize failed: %s", data)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	for _, want := range []string{
		"thistle_serve_requests_total 1",
		"thistle_serve_requests_ok_total 1",
		"thistle_serve_in_flight 0",
		"thistle_serve_queue_depth 0",
		"thistle_serve_request_latency",
		"thistle_cache_miss_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	code, body = get("/statusz")
	if code != 200 {
		t.Fatalf("statusz status = %d", code)
	}
	for _, want := range []string{"thistled serving", "admission:", "latency: p50", "cache:", "recent requests"} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q in:\n%s", want, body)
		}
	}
}

func TestSpoolDir(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{SpoolDir: dir})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postOptimize(t, ts, `{"conv": {"k": 8, "c": 8, "h": 4, "r": 2}, "trace": true, "events": true}`)
	out := decodeOK(t, resp, data)
	for _, suffix := range []string{".manifest.json", ".events.jsonl", ".trace.json"} {
		path := fmt.Sprintf("%s/%s%s", dir, out.RunID, suffix)
		if _, err := os.ReadFile(path); err != nil {
			t.Errorf("spooled %s unreadable: %v", suffix, err)
		}
	}
}
