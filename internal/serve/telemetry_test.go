package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/obs/timeseries"
)

func TestVarzEndpoint(t *testing.T) {
	srv := New(Config{SampleInterval: -1}) // on-demand sampling only
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, data := postOptimize(t, ts, tinyConv); resp.StatusCode != 200 {
		t.Fatalf("optimize failed: %s", data)
	}

	resp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var varz struct {
		Schema string `json:"schema"`
		Rounds int64  `json:"rounds"`
		Series []struct {
			Name    string `json:"name"`
			Kind    string `json:"kind"`
			Samples []struct {
				T int64   `json:"t"`
				V float64 `json:"v"`
			} `json:"samples"`
		} `json:"series"`
		SLO []SLOStatus `json:"slo"`
	}
	if err := json.Unmarshal(data, &varz); err != nil {
		t.Fatalf("decoding /varz: %v\n%s", err, data)
	}
	if varz.Schema != timeseries.SchemaVersion {
		t.Fatalf("schema = %q, want %q", varz.Schema, timeseries.SchemaVersion)
	}
	if varz.Rounds < 1 {
		t.Fatalf("rounds = %d, want >= 1 (SampleIfStale on read)", varz.Rounds)
	}
	byName := map[string]float64{}
	for _, s := range varz.Series {
		if len(s.Samples) > 0 {
			byName[s.Name] = s.Samples[len(s.Samples)-1].V
		}
	}
	if byName["serve.requests"] < 1 {
		t.Fatalf("serve.requests series = %v, want >= 1; series: %v", byName["serve.requests"], byName)
	}
	for _, want := range []string{"serve.request.latency.count", "serve.request.latency.p95_ms"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing derived series %s", want)
		}
	}
	if len(varz.SLO) != 2 {
		t.Fatalf("slo block = %+v, want availability+latency", varz.SLO)
	}
	if varz.SLO[0].SLO != "availability" || varz.SLO[0].Good < 1 {
		t.Fatalf("availability slo = %+v", varz.SLO[0])
	}
}

// TestRequestIDJoinsAllRecords is the acceptance-criteria test: an
// inbound X-Request-ID must be echoed on the response and appear
// verbatim in the manifest, the run_start event, the trace metadata
// (with the trace ID derived from it), and the access log.
func TestRequestIDJoinsAllRecords(t *testing.T) {
	var logBuf syncBuffer
	srv := New(Config{AccessLog: &logBuf, AccessLogSample: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const reqID = "client-abc.123"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/optimize",
		strings.NewReader(tinyConv[:len(tinyConv)-1]+`, "trace": true, "events": true}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(RequestIDHeader); got != reqID {
		t.Fatalf("echoed id = %q, want %q", got, reqID)
	}

	var out OptimizeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}

	// Manifest carries the ID verbatim.
	var man events.Manifest
	if err := json.Unmarshal(out.Manifest, &man); err != nil {
		t.Fatal(err)
	}
	if man.RequestID != reqID {
		t.Fatalf("manifest request_id = %q, want %q", man.RequestID, reqID)
	}

	// run_start event carries it.
	var runStart struct {
		Fields struct {
			RequestID string `json:"request_id"`
		} `json:"fields"`
	}
	firstLine := out.EventsJSONL[:strings.IndexByte(out.EventsJSONL, '\n')]
	if err := json.Unmarshal([]byte(firstLine), &runStart); err != nil {
		t.Fatal(err)
	}
	if runStart.Fields.RequestID != reqID {
		t.Fatalf("run_start request_id = %q, want %q", runStart.Fields.RequestID, reqID)
	}

	// Trace metadata carries it verbatim and the trace ID derives from it.
	var trace struct {
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(out.Trace, &trace); err != nil {
		t.Fatal(err)
	}
	if trace.OtherData["request_id"] != reqID {
		t.Fatalf("trace request_id = %q, want %q", trace.OtherData["request_id"], reqID)
	}
	wantTraceID := obs.DeriveTraceID(reqID)
	if got := trace.OtherData["trace_id"]; got != wantTraceID {
		t.Fatalf("trace_id = %q, want DeriveTraceID(%q) = %q", got, reqID, wantTraceID)
	}

	// Access log joins on the same key and carries run and trace IDs.
	lines := logLines(t, &logBuf)
	if len(lines) != 1 {
		t.Fatalf("access log has %d lines, want 1:\n%s", len(lines), logBuf.String())
	}
	rec := lines[0]
	if rec.RequestID != reqID || rec.RunID != man.RunID || rec.TraceID != wantTraceID {
		t.Fatalf("access line = %+v, want request_id %q run %q trace %q", rec, reqID, man.RunID, wantTraceID)
	}
	if rec.Status != 200 || rec.Layers != 1 {
		t.Fatalf("access line = %+v", rec)
	}
}

// TestRequestIDOnErrorPaths asserts every response carries an ID —
// including the rejection paths that never reach the optimizer.
func TestRequestIDOnErrorPaths(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: -1})
	defer srv.Close()
	st := installStub(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Generated when absent: 405 path.
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	gen := resp.Header.Get(RequestIDHeader)
	if !strings.HasPrefix(gen, "req-") {
		t.Fatalf("405 response id = %q, want generated req-…", gen)
	}

	// Echoed on 429 while the lone slot is held.
	done := make(chan struct{})
	go func() {
		defer close(done)
		postOptimize(t, ts, tinyConv)
	}()
	<-st.started
	req, _ := http.NewRequest("POST", ts.URL+"/v1/optimize", strings.NewReader(tinyConv))
	req.Header.Set(RequestIDHeader, "shed-me-1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp2.StatusCode)
	}
	if got := resp2.Header.Get(RequestIDHeader); got != "shed-me-1" {
		t.Fatalf("429 echoed id = %q, want shed-me-1", got)
	}
	close(st.release)
	<-done

	// Hostile inbound IDs are sanitized, not echoed raw.
	req3, _ := http.NewRequest("POST", ts.URL+"/v1/optimize", strings.NewReader(tinyConv))
	req3.Header.Set(RequestIDHeader, "ok{bad}chars")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if got := resp3.Header.Get(RequestIDHeader); got != "okbadchars" {
		t.Fatalf("sanitized echo = %q, want okbadchars", got)
	}
}

// TestMetricsExpositionValid validates the live /metrics payload —
// registry families plus the appended thistle_slo_* block — against the
// exposition grammar.
func TestMetricsExpositionValid(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, data := postOptimize(t, ts, tinyConv); resp.StatusCode != 200 {
		t.Fatalf("optimize failed: %s", data)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := obs.ValidateExposition(bytes.NewReader(data)); err != nil {
		t.Fatalf("live /metrics invalid: %v", err)
	}
	for _, want := range []string{
		"thistle_slo_objective{slo=\"availability\"}",
		"thistle_slo_burn_rate{slo=\"latency\",window=\"5m\"}",
		"thistle_slo_events_total{slo=\"availability\",outcome=\"good\"} 1",
		"# HELP thistle_serve_requests_total",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestStatuszRecentRingConcurrent hammers the recent-request ring from
// many writers while readers render /statusz — the race gate covers it.
func TestStatuszRecentRingConcurrent(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				srv.record(reqStatus{
					RunID:   fmt.Sprintf("run-%d-%d", w, i),
					Summary: "load",
					Outcome: "ok",
					Layers:  1,
					Wall:    time.Duration(i) * time.Microsecond,
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rr := httptest.NewRecorder()
				req := httptest.NewRequest("GET", "/statusz", nil)
				srv.Handler().ServeHTTP(rr, req)
				if rr.Code != 200 {
					t.Errorf("statusz status = %d", rr.Code)
					return
				}
			}
		}()
	}
	wg.Wait()

	srv.mu.Lock()
	n := len(srv.recent)
	srv.mu.Unlock()
	if n != 32 {
		t.Fatalf("ring holds %d entries, want cap 32", n)
	}
}

// TestStatuszShowsSLOAndTrends asserts the human page gained the SLO
// block and (after enough samples) the sparkline trends.
func TestStatuszShowsSLOAndTrends(t *testing.T) {
	srv := New(Config{SampleInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, data := postOptimize(t, ts, tinyConv); resp.StatusCode != 200 {
		t.Fatalf("optimize failed: %s", data)
	}
	// Force a second sampling round so rate series have >= 2 samples.
	srv.collector.SampleNow()
	srv.collector.SampleNow()

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(data)
	for _, want := range []string{"slo availability: GREEN", "slo latency:", "trends (last", "qps"} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q:\n%s", want, body)
		}
	}
}
