package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the header the server honors inbound and echoes on
// every response, error paths included. The same value lands in the
// run's manifest (request_id), its trace ID seed, and the access log —
// one key joins all four records.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds an inbound ID; longer values are truncated so
// a hostile client cannot bloat every record that carries the key.
const maxRequestIDLen = 64

type requestIDKey struct{}

// RequestIDFromContext returns the request ID the middleware assigned
// ("" outside a request).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// sanitizeRequestID keeps the charset that is safe in headers, JSON
// logs, and filenames ([A-Za-z0-9._-]); anything else is dropped. An
// inbound ID that sanitizes to empty is treated as absent.
func sanitizeRequestID(id string) string {
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out = append(out, c)
		}
	}
	return string(out)
}

// newRequestID generates a server-assigned ID for requests that arrive
// without one.
func newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-000000000000"
	}
	return "req-" + hex.EncodeToString(b[:])
}

// accessRecord is one structured access-log line (JSON, one per line).
type accessRecord struct {
	Time      string  `json:"ts"`
	RequestID string  `json:"request_id"`
	RunID     string  `json:"run_id,omitempty"`
	TraceID   string  `json:"trace_id,omitempty"`
	Remote    string  `json:"remote,omitempty"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	Code      string  `json:"code,omitempty"` // API error code on failures
	Request   string  `json:"request,omitempty"`
	Layers    int     `json:"layers,omitempty"`
	WallMS    float64 `json:"wall_ms"`
	Sampled   bool    `json:"sampled,omitempty"` // true when kept by sampling, not by a force rule
}

// accessLogger writes sampled structured access logs. Sampling keeps
// high-QPS logs bounded without losing the lines that matter: every
// non-200 and every slow request is always written; fast successes are
// kept 1-in-N.
type accessLogger struct {
	mu     sync.Mutex
	w      io.Writer
	sample int64 // keep 1 in sample fast successes (≤1: keep all)
	slow   time.Duration
	n      atomic.Int64
}

func newAccessLogger(w io.Writer, sample int, slow time.Duration) *accessLogger {
	if w == nil {
		return nil
	}
	if slow <= 0 {
		slow = time.Second
	}
	return &accessLogger{w: w, sample: int64(sample), slow: slow}
}

// log writes one record if it passes the keep rules. Nil-safe.
func (l *accessLogger) log(rec accessRecord) {
	if l == nil {
		return
	}
	forced := rec.Status != http.StatusOK || time.Duration(rec.WallMS*float64(time.Millisecond)) >= l.slow
	if !forced {
		if l.sample > 1 && l.n.Add(1)%l.sample != 1 {
			return
		}
		rec.Sampled = true
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(data) // best effort: logging must not fail requests
}

// statusRecorder captures the response status for the access line.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// requestIDMiddleware assigns (or adopts) the request ID, echoes it on
// the response before any handler writes, stashes it in the context,
// and emits the access-log line for optimize requests once the handler
// returns. Because it wraps the whole mux, rejection paths (405, 429,
// 503, 404) echo the ID too.
func (s *Server) requestIDMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)

		// Only the optimize endpoint gets access-log lines; probe
		// endpoints (/metrics, /statusz, healthz) would drown the log.
		if s.accessLog == nil || r.URL.Path != "/v1/optimize" {
			next.ServeHTTP(w, r.WithContext(ctx))
			return
		}
		sr := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sr, r.WithContext(ctx))
		wall := time.Since(t0)
		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		rec := accessRecord{
			Time:      t0.UTC().Format(time.RFC3339Nano),
			RequestID: id,
			Remote:    r.RemoteAddr,
			Method:    r.Method,
			Path:      r.URL.Path,
			Status:    status,
			WallMS:    float64(wall) / float64(time.Millisecond),
		}
		if d, ok := s.takeDetail(id); ok {
			rec.RunID = d.runID
			rec.TraceID = d.traceID
			rec.Code = d.code
			rec.Request = d.summary
			rec.Layers = d.layers
		}
		s.accessLog.log(rec)
	})
}

// reqDetail carries per-request fields from the handler to the
// middleware's access line (keyed by request ID, removed on read).
type reqDetail struct {
	runID   string
	traceID string
	code    string
	summary string
	layers  int
}

func (s *Server) noteDetail(id string, d reqDetail) {
	if s.accessLog == nil || id == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.details == nil {
		s.details = map[string]reqDetail{}
	}
	s.details[id] = d
}

func (s *Server) takeDetail(id string) (reqDetail, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.details[id]
	if ok {
		delete(s.details, id)
	}
	return d, ok
}
