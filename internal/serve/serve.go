// Package serve implements thistled, the long-running optimization
// service: an HTTP/JSON front end over the staged pipeline that turns
// the one-shot thistle CLI into a daemon serving many concurrent
// clients from one process.
//
// The production concerns are the point of the package:
//
//   - ONE cross-request pipeline.Scheduler bounds total leaf compute
//     (GP solves, integerization searches), so any number of concurrent
//     requests cannot oversubscribe the box;
//   - ONE shared content-addressed core.SolveCache spans requests:
//     same-signature solves from different clients coalesce onto a
//     single in-flight solve (singleflight) and later requests are
//     served from memory or the disk tier;
//   - admission control: at most MaxConcurrent requests execute while
//     up to QueueDepth wait; beyond that the server sheds load with
//     429 (queue full) or 503 (draining), both carrying Retry-After;
//   - per-request deadlines honor context cancellation end-to-end
//     through the pipeline (a dead request stops consuming scheduler
//     tokens at the next admission point);
//   - graceful drain: Drain stops admissions and waits for in-flight
//     requests, whose manifests are flushed as they finish.
//
// Every request gets a run ID and a thistle-manifest-v1 manifest;
// optionally a thistle-events-v1 stream and a thistle-trace-v1 Chrome
// trace, so tlreport show/diff/validate/trace work on server-side runs
// unchanged. See docs/API.md for the HTTP surface and
// docs/OPERATIONS.md for running it in production.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/loopnest"
	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/obs/timeseries"
	"repro/internal/pipeline"
	"repro/internal/specs"
)

// Config sizes the server. Zero values select defaults; see each field.
type Config struct {
	// Parallel sizes the shared cross-request scheduler: the total
	// number of leaf compute jobs (GP solves, integerization searches)
	// in flight across ALL requests (0: NumCPU).
	Parallel int
	// MaxConcurrent bounds requests executing simultaneously
	// (0: NumCPU, min 2). More concurrency than Parallel does not add
	// compute — it adds coalescing: overlapping same-signature requests
	// singleflight onto one solve.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot
	// (0: 64; negative: no queue, reject immediately when busy).
	QueueDepth int
	// DefaultDeadline applies when a request carries no deadline_ms
	// (0: 2m).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines (0: 10m).
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 429/503 (0: 1s).
	RetryAfter time.Duration
	// SpoolDir, when set, persists each request's run record on
	// completion: <run_id>.manifest.json always, plus .events.jsonl
	// and .trace.json when the request asked for them.
	SpoolDir string
	// Cache is the shared solve cache (nil: a private in-memory cache,
	// so coalescing works even without explicit configuration).
	Cache *core.SolveCache
	// Obs is the server-wide telemetry bundle. Its Metrics registry
	// backs /metrics and the serve.* gauges and histograms; its Log
	// receives request logs. Nil allocates a metrics-only bundle.
	Obs *obs.Obs
	// SLO configures availability/latency objective tracking (zero
	// value: 99% availability, 95% of requests under DefaultDeadline;
	// Availability < 0 disables tracking).
	SLO SLOConfig
	// SampleInterval is the /varz time-series sampling cadence
	// (0: 5s; negative: no background sampler — /varz still samples
	// on-demand at the default cadence).
	SampleInterval time.Duration
	// SampleWindow is how much history /varz retains (0: 30m).
	SampleWindow time.Duration
	// AccessLog, when set, receives one JSON line per optimize request
	// (subject to AccessLogSample; non-200 and slow requests always
	// log). Nil disables access logging.
	AccessLog io.Writer
	// AccessLogSample keeps 1 in N fast successful requests (≤1: all).
	AccessLogSample int
	// AccessLogSlow is the wall time beyond which a request always logs
	// (0: 1s).
	AccessLogSlow time.Duration
}

func (c Config) withDefaults() Config {
	if c.Parallel < 1 {
		c.Parallel = runtime.NumCPU()
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = runtime.NumCPU()
		if c.MaxConcurrent < 2 {
			c.MaxConcurrent = 2
		}
	}
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 5 * time.Second
	}
	if c.SampleWindow <= 0 {
		c.SampleWindow = 30 * time.Minute
	}
	if c.AccessLogSlow <= 0 {
		c.AccessLogSlow = time.Second
	}
	if c.Obs == nil {
		c.Obs = &obs.Obs{Metrics: obs.NewRegistry()}
	} else if c.Obs.Metrics == nil {
		c.Obs.Metrics = obs.NewRegistry()
	}
	if c.Cache == nil {
		c.Cache = core.NewSolveCache(cache.Options{Obs: c.Obs})
	}
	return c
}

// reqStatus is one finished (or running) request's /statusz row.
type reqStatus struct {
	RunID   string
	Summary string
	Outcome string // "running", "ok", or an error code
	Layers  int
	Wall    time.Duration
}

// Server is the thistled HTTP service. Build one with New, expose
// Handler on an http.Server, and call Drain before shutting down.
type Server struct {
	cfg       Config
	o         *obs.Obs
	sched     *pipeline.Scheduler
	cache     *core.SolveCache
	mux       *http.ServeMux
	handler   http.Handler // mux wrapped in the request-ID middleware
	start     time.Time
	collector *timeseries.Collector
	slo       *sloSet
	accessLog *accessLogger

	// Admission state: active holds one token per executing request;
	// queued counts requests waiting for a token.
	active   chan struct{}
	queued   atomic.Int64
	draining atomic.Bool
	inflight sync.WaitGroup

	// run executes one admitted work unit; swapped in tests for a
	// controllable stub.
	run func(ctx context.Context, req *OptimizeRequest, w *work) (*OptimizeResponse, *apiError)

	// Metric handles (nil-safe when the registry is off, which New
	// never produces — the service always has one).
	queueGauge  *obs.Gauge
	flightGauge *obs.Gauge
	latency     *obs.Histogram
	reqTotal    *obs.Counter
	reqOK       *obs.Counter
	reqErr      *obs.Counter
	rejQueue    *obs.Counter
	rejDrain    *obs.Counter
	deadlines   *obs.Counter

	mu      sync.Mutex
	recent  []reqStatus          // guarded by mu; newest first, capped
	details map[string]reqDetail // guarded by mu; request ID → access-log detail, taken on log
}

// New assembles a server from the config. The scheduler and cache it
// creates (or adopts) are shared by every request for the server's
// lifetime.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		o:      cfg.Obs,
		sched:  pipeline.NewScheduler(cfg.Parallel),
		cache:  cfg.Cache,
		start:  time.Now(),
		active: make(chan struct{}, cfg.MaxConcurrent),

		queueGauge:  cfg.Obs.Gauge("serve.queue_depth"),
		flightGauge: cfg.Obs.Gauge("serve.in_flight"),
		latency:     cfg.Obs.Histogram("serve.request.latency"),
		reqTotal:    cfg.Obs.Counter("serve.requests"),
		reqOK:       cfg.Obs.Counter("serve.requests_ok"),
		reqErr:      cfg.Obs.Counter("serve.requests_error"),
		rejQueue:    cfg.Obs.Counter("serve.rejected_queue_full"),
		rejDrain:    cfg.Obs.Counter("serve.rejected_draining"),
		deadlines:   cfg.Obs.Counter("serve.deadline_exceeded"),
	}
	s.run = s.runWork
	s.slo = newSLOSet(cfg.SLO, cfg.DefaultDeadline, nil)
	s.accessLog = newAccessLogger(cfg.AccessLog, cfg.AccessLogSample, cfg.AccessLogSlow)

	interval := cfg.SampleInterval
	background := interval > 0
	if !background {
		interval = 5 * time.Second
	}
	capacity := int(cfg.SampleWindow / interval)
	if capacity < 2 {
		capacity = 2
	}
	s.collector = timeseries.New(cfg.Obs.Metrics, timeseries.Options{Interval: interval, Capacity: capacity})
	if background {
		s.collector.Start()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/optimize", s.handleOptimize)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/varz", s.handleVarz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "thistled: POST /v1/optimize (optimize), /v1/healthz (health), /statusz (progress), /metrics (prometheus), /varz (time series)")
	})
	s.mux = mux
	s.handler = s.requestIDMiddleware(mux)
	return s
}

// Handler returns the service's HTTP handler: the mux wrapped in the
// request-ID middleware, so every response — including rejections and
// 404s — carries X-Request-ID.
func (s *Server) Handler() http.Handler { return s.handler }

// Close releases background resources (the /varz sampler). It does not
// drain; call Drain first for a graceful shutdown.
func (s *Server) Close() { s.collector.Stop() }

// Scheduler exposes the shared admission bound (for tests and stats).
func (s *Server) Scheduler() *pipeline.Scheduler { return s.sched }

// Cache exposes the shared solve cache (for tests and stats).
func (s *Server) Cache() *core.SolveCache { return s.cache }

// Drain stops admitting optimize requests (new ones get 503 and
// /v1/healthz reports draining) and waits for every in-flight request
// to finish — flushing its manifest — or for ctx to expire, whichever
// comes first. Idempotent; callers follow with http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	//tlvet:ignore goscheduler -- drain watcher: exits when the inflight WaitGroup drains; bounded by request lifecycle
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with requests in flight: %w", ctx.Err())
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit implements admission control: it returns a release func once
// the request holds an execution slot, or the rejection to send. The
// bounded queue is the difference between "slow" and "down": requests
// beyond MaxConcurrent wait (counted in serve.queue_depth), requests
// beyond MaxConcurrent+QueueDepth are shed with 429 immediately.
func (s *Server) admit(ctx context.Context) (func(), *apiError) {
	if s.draining.Load() {
		s.rejDrain.Inc()
		return nil, &apiError{
			status: http.StatusServiceUnavailable, retryAfter: s.cfg.RetryAfter,
			Code: "draining", Message: "server is draining; retry against another replica",
		}
	}
	acquired := func() func() {
		s.inflight.Add(1)
		s.flightGauge.Add(1)
		return func() {
			<-s.active
			s.flightGauge.Add(-1)
			s.inflight.Done()
		}
	}
	select {
	case s.active <- struct{}{}:
		return acquired(), nil
	default:
	}
	if q := s.queued.Add(1); q > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.rejQueue.Inc()
		return nil, &apiError{
			status: http.StatusTooManyRequests, retryAfter: s.cfg.RetryAfter,
			Code: "queue_full", Message: fmt.Sprintf("request queue is full (%d executing, %d queued)", s.cfg.MaxConcurrent, s.cfg.QueueDepth),
		}
	}
	s.queueGauge.Add(1)
	defer func() {
		s.queued.Add(-1)
		s.queueGauge.Add(-1)
	}()
	select {
	case s.active <- struct{}{}:
		return acquired(), nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.deadlines.Inc()
			return nil, &apiError{
				status: http.StatusGatewayTimeout,
				Code:   "deadline_exceeded", Message: "deadline expired while queued",
			}
		}
		return nil, &apiError{
			status: http.StatusServiceUnavailable, retryAfter: s.cfg.RetryAfter,
			Code: "canceled", Message: "request canceled while queued",
		}
	}
}

// handleOptimize is POST /v1/optimize: decode, resolve, admit, run.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &apiError{status: http.StatusMethodNotAllowed, Code: "method_not_allowed", Message: "use POST"})
		return
	}
	s.reqTotal.Inc()
	req, aerr := decodeRequest(r)
	if aerr != nil {
		s.reqErr.Inc()
		writeError(w, aerr)
		return
	}
	wk, aerr := resolve(req)
	if aerr != nil {
		s.reqErr.Inc()
		writeError(w, aerr)
		return
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	// The client closing the connection cancels r.Context(), so an
	// abandoned request stops consuming scheduler tokens at the next
	// admission point — same path as a deadline.
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	release, aerr := s.admit(ctx)
	if aerr != nil {
		s.reqErr.Inc()
		writeError(w, aerr)
		return
	}
	defer release()

	t0 := time.Now()
	resp, aerr := s.run(ctx, req, wk)
	wall := time.Since(t0)
	s.latency.Observe(wall)
	s.slo.observe(aerr == nil, wall)
	reqID := RequestIDFromContext(r.Context())

	if aerr != nil {
		s.reqErr.Inc()
		if aerr.Code == "deadline_exceeded" {
			s.deadlines.Inc()
		}
		s.record(reqStatus{Summary: wk.summary(), Outcome: aerr.Code, Wall: wall})
		s.noteDetail(reqID, reqDetail{code: aerr.Code, summary: wk.summary()})
		if s.o.Enabled(obs.Info) {
			s.o.Logf(obs.Info, "serve: %s -> %s (%s)", wk.summary(), aerr.Code, wall.Round(time.Millisecond))
		}
		writeError(w, aerr)
		return
	}
	s.reqOK.Inc()
	s.record(reqStatus{RunID: resp.RunID, Summary: wk.summary(), Outcome: "ok", Layers: len(resp.Results), Wall: wall})
	detail := reqDetail{runID: resp.RunID, summary: wk.summary(), layers: len(resp.Results)}
	if len(resp.Trace) > 0 {
		detail.traceID = obs.DeriveTraceID(traceSeed(reqID, resp.RunID))
	}
	s.noteDetail(reqID, detail)
	if s.o.Enabled(obs.Info) {
		s.o.Logf(obs.Info, "serve: %s -> ok run %s, %d layers (%s)", wk.summary(), resp.RunID, len(resp.Results), wall.Round(time.Millisecond))
	}
	writeJSON(w, http.StatusOK, resp)
}

// runWork executes one admitted request end to end: per-request run
// record and trace, shared scheduler and cache, spool on completion.
func (s *Server) runWork(ctx context.Context, req *OptimizeRequest, wk *work) (*OptimizeResponse, *apiError) {
	rec := events.NewRecorder("thistled", requestArgs(req, wk))
	// The middleware's request ID joins every record this run writes:
	// it lands verbatim in the manifest and run_start event, and seeds
	// the trace ID, so access-log lines, manifests, event streams, and
	// traces all correlate on the one key the client saw echoed.
	reqID := RequestIDFromContext(ctx)
	rec.SetRequestID(reqID)
	sinks := []obs.EventSink{rec}
	var evBuf bytes.Buffer
	var em *events.Emitter
	if req.Events {
		em = events.NewEmitter(&evBuf)
		sinks = append(sinks, em)
	}
	ro := &obs.Obs{
		Log: s.o.Log,
		// Shared registry: per-request pipeline/cache/solver metrics
		// aggregate into the service-wide /metrics surface.
		Metrics: s.o.Metrics,
		Events:  events.Multi(sinks...),
	}
	if req.Trace {
		ro.Tracer = obs.NewTracer()
		ro.Tracer.SetTraceID(obs.DeriveTraceID(traceSeed(reqID, rec.RunID())))
	}
	ro.Emit(events.EvRunStart, rec.StartFields())

	rctx := obs.NewContext(ctx, ro)
	rctx = pipeline.ContextWithScheduler(rctx, s.sched)
	rctx = core.ContextWithCache(rctx, s.cache)

	var results []*core.Result
	var probs []*loopnest.Problem
	var err error
	if wk.prob != nil {
		probs = []*loopnest.Problem{wk.prob}
		var res *core.Result
		res, err = core.OptimizeContext(rctx, wk.prob, wk.opts)
		results = []*core.Result{res}
	} else {
		probs = make([]*loopnest.Problem, len(wk.layers))
		for i, l := range wk.layers {
			p, perr := l.Problem()
			if perr != nil {
				return nil, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: perr.Error()}
			}
			probs[i] = p
		}
		results, err = experiments.OptimizeLayers(rctx, wk.layers, wk.opts, nil)
	}
	if err != nil {
		return nil, optimizeError(ctx, err)
	}

	rows := make([]LayerOutcome, len(results))
	for i, res := range results {
		row, aerr := outcomeRow(probs[i], res, wk)
		if aerr != nil {
			return nil, aerr
		}
		rows[i] = row
	}

	// Finish the run record. The manifest carries the request's view of
	// the shared cache (service-lifetime counters), tying hit-ratio
	// telemetry to every audit record.
	man := rec.Finish(manifestCacheStats(s.cache.Stats()), nil)
	ro.Emit(events.EvRunEnd, man.EndFields())
	manJSON, jerr := json.Marshal(man)
	if jerr != nil {
		return nil, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: jerr.Error()}
	}
	resp := &OptimizeResponse{RunID: rec.RunID(), Results: rows, Manifest: manJSON}

	if em != nil {
		if cerr := em.Close(); cerr != nil {
			return nil, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: cerr.Error()}
		}
		resp.EventsJSONL = evBuf.String()
	}
	if ro.Tracer != nil {
		meta := map[string]string{"tool": "thistled", "run_id": rec.RunID()}
		if reqID != "" {
			meta["request_id"] = reqID
		}
		if rev := events.BuildRevision(); rev != "" {
			meta["git_rev"] = rev
		}
		var tbuf bytes.Buffer
		if _, terr := ro.Tracer.WriteChromeTrace(&tbuf, meta); terr != nil {
			return nil, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: terr.Error()}
		}
		resp.Trace = json.RawMessage(tbuf.Bytes())
	}

	s.spool(man, resp)
	return resp, nil
}

// outcomeRow renders one result row (and its optional spec bundle),
// stamping the solve signature so rows tie back to cache addressing.
func outcomeRow(p *loopnest.Problem, res *core.Result, wk *work) (LayerOutcome, *apiError) {
	dp := res.Best
	rep := dp.Report
	row := LayerOutcome{
		Problem:      p.Name,
		Sig:          core.SolveSignature(p, wk.opts).Short(),
		PEs:          dp.Arch.PEs,
		Regs:         dp.Arch.Regs,
		SRAMWords:    dp.Arch.SRAM,
		EnergyPJ:     rep.Energy,
		EnergyPerMAC: rep.EnergyPerMAC,
		Cycles:       rep.Cycles,
		EDP:          rep.Energy * rep.Cycles,
		IPC:          rep.IPC,
		Utilization:  rep.Utilization,
		FromCache:    res.Stats.FromCache,
	}
	if wk.specs {
		nest, err := core.NestFor(p, dp)
		if err != nil {
			return row, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
		}
		bundle, err := specs.DesignBundle(p, &dp.Arch, nest, dp.Mapping)
		if err != nil {
			return row, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
		}
		row.SpecBundle = bundle
	}
	return row, nil
}

// optimizeError maps an optimize failure to the API error space.
func optimizeError(ctx context.Context, err error) *apiError {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || (ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded)):
		return &apiError{status: http.StatusGatewayTimeout, Code: "deadline_exceeded", Message: "deadline expired mid-solve: " + err.Error()}
	case errors.Is(err, context.Canceled) || (ctx.Err() != nil && errors.Is(ctx.Err(), context.Canceled)):
		return &apiError{status: http.StatusServiceUnavailable, Code: "canceled", Message: "request canceled mid-solve"}
	case errors.Is(err, core.ErrNoDesign):
		return &apiError{status: http.StatusUnprocessableEntity, Code: "no_design", Message: err.Error()}
	default:
		return &apiError{status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
	}
}

// spool persists the request's run record under SpoolDir (best effort:
// a full disk must not fail the response that already computed).
func (s *Server) spool(man *events.Manifest, resp *OptimizeResponse) {
	dir := s.cfg.SpoolDir
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.o.Logf(obs.Warn, "serve: spool dir %s: %v", dir, err)
		return
	}
	base := filepath.Join(dir, man.RunID)
	if err := events.WriteManifest(base+".manifest.json", man); err != nil {
		s.o.Logf(obs.Warn, "serve: spool manifest: %v", err)
	}
	if resp.EventsJSONL != "" {
		if err := os.WriteFile(base+".events.jsonl", []byte(resp.EventsJSONL), 0o644); err != nil {
			s.o.Logf(obs.Warn, "serve: spool events: %v", err)
		}
	}
	if len(resp.Trace) > 0 {
		if err := os.WriteFile(base+".trace.json", append([]byte(nil), resp.Trace...), 0o644); err != nil {
			s.o.Logf(obs.Warn, "serve: spool trace: %v", err)
		}
	}
}

// manifestCacheStats mirrors cliutil's conversion (serve cannot import
// cliutil: the CLI runtime sits above the service layer).
func manifestCacheStats(st cache.Stats) *events.CacheStats {
	if st.Hits+st.Misses == 0 {
		return nil
	}
	return &events.CacheStats{
		Hits:              st.Hits,
		Misses:            st.Misses,
		DiskHits:          st.DiskHits,
		SingleflightWaits: st.SingleflightWaits,
		Stores:            st.Stores,
		Evictions:         st.Evictions,
		HitRate:           st.HitRate(),
	}
}

// record keeps the newest requests for /statusz.
func (s *Server) record(st reqStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recent = append([]reqStatus{st}, s.recent...)
	if len(s.recent) > 32 {
		s.recent = s.recent[:32]
	}
}

// handleHealthz is the load-balancer probe: 200 "ok" while serving,
// 503 "draining" once Drain has been called.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// traceSeed picks the trace-ID derivation seed: the client-correlatable
// request ID when the middleware assigned one, else the run ID (the
// pre-middleware behavior, still used by direct callers in tests).
func traceSeed(reqID, runID string) string {
	if reqID != "" {
		return reqID
	}
	return runID
}

// handleMetrics serves the shared registry in Prometheus text format —
// the same exporter the batch CLIs mount behind -status-addr — plus
// the thistle_slo_* objective families.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// Best effort below: the client may be gone mid-write.
	_ = s.o.Metrics.Snapshot().WritePrometheus(w)
	_ = s.slo.writePrometheus(w)
}

// varzResponse is the /varz body: the thistle-timeseries-v1 snapshot
// with the SLO block attached, which is everything cmd/tlmon renders.
type varzResponse struct {
	timeseries.Snapshot
	SLO []SLOStatus `json:"slo,omitempty"`
}

// handleVarz serves the sampled time-series state as JSON. A read
// samples on demand when the retained state is staler than one
// interval, so scripts probing a quiet server still see fresh data.
func (s *Server) handleVarz(w http.ResponseWriter, _ *http.Request) {
	s.collector.SampleIfStale()
	w.Header().Set("Content-Type", "application/json")
	resp := varzResponse{Snapshot: s.collector.Snapshot(), SLO: s.slo.statuses()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp) // best effort: the client may be gone
}

// handleStatusz renders the human-readable service page: uptime,
// admission state, request-latency quantiles, cache effectiveness,
// and the most recent requests.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	state := "serving"
	if s.draining.Load() {
		state = "draining"
	}
	fmt.Fprintf(w, "thistled %s, uptime %s\n", state, time.Since(s.start).Round(time.Second))
	fmt.Fprintf(w, "admission: %d executing (max %d), %d queued (max %d), scheduler width %d\n",
		len(s.active), s.cfg.MaxConcurrent, s.queued.Load(), s.cfg.QueueDepth, s.sched.Size())
	fmt.Fprintf(w, "requests: %d total, %d ok, %d errors (rejected: %d queue-full, %d draining)\n",
		s.reqTotal.Value(), s.reqOK.Value(), s.reqErr.Value(), s.rejQueue.Value(), s.rejDrain.Value())
	for _, h := range s.o.Metrics.Snapshot().Histograms {
		if h.Name == "serve.request.latency" && h.Count > 0 {
			fmt.Fprintf(w, "latency: p50 %s, p95 %s, p99 %s (mean %s over %d requests)\n",
				time.Duration(h.P50NS).Round(time.Microsecond),
				time.Duration(h.P95NS).Round(time.Microsecond),
				time.Duration(h.P99NS).Round(time.Microsecond),
				h.Mean().Round(time.Microsecond), h.Count)
		}
	}
	cs := s.cache.Stats()
	fmt.Fprintf(w, "cache: %d hits / %d misses (%.1f%% hit rate), %d entries, %d singleflight waits\n",
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Entries, cs.SingleflightWaits)
	s.slo.writeStatusz(w)
	s.writeSparklines(w)

	s.mu.Lock()
	recent := append([]reqStatus(nil), s.recent...)
	s.mu.Unlock()
	if len(recent) == 0 {
		return
	}
	fmt.Fprintln(w, "\nrecent requests (newest first):")
	fmt.Fprintln(w, "run_id  outcome  layers  wall  request")
	for _, r := range recent {
		id := r.RunID
		if id == "" {
			id = "-"
		}
		fmt.Fprintf(w, "%s  %s  %d  %s  %s\n", id, r.Outcome, r.Layers, r.Wall.Round(time.Millisecond), r.Summary)
	}
}

// sparkWidth is how many trailing samples each /statusz sparkline shows
// (30 samples × the 5s default interval = 2.5 minutes of history).
const sparkWidth = 30

// writeSparklines renders the /varz series the eye wants on /statusz:
// request rate, p95 latency, queue depth, and cache hit rate over the
// sampler's recent history. Quiet until the sampler has ≥2 rounds.
func (s *Server) writeSparklines(w io.Writer) {
	s.collector.SampleIfStale()
	qps := timeseries.Tail(s.collector.Rates("serve.requests"), sparkWidth)
	if len(qps) < 2 {
		return
	}
	p95 := timeseries.Tail(s.collector.Values("serve.request.latency.p95_ms"), sparkWidth)
	queue := timeseries.Tail(s.collector.Values("serve.queue_depth"), sparkWidth)
	fmt.Fprintf(w, "\ntrends (last %d samples @ %s):\n", len(qps), s.collector.Interval())
	fmt.Fprintf(w, "  qps    %s  now %.2f/s\n", timeseries.Spark(qps), qps[len(qps)-1])
	if len(p95) > 0 {
		fmt.Fprintf(w, "  p95    %s  now %.1fms\n", timeseries.Spark(p95), p95[len(p95)-1])
	}
	if len(queue) > 0 {
		fmt.Fprintf(w, "  queue  %s  now %.0f\n", timeseries.Spark(queue), queue[len(queue)-1])
	}
	hits := timeseries.Tail(s.collector.Rates("cache.hit"), sparkWidth)
	misses := timeseries.Tail(s.collector.Rates("cache.miss"), sparkWidth)
	if ratios, ok := hitRatios(hits, misses); ok {
		fmt.Fprintf(w, "  cache  %s  now %.0f%% hit\n", timeseries.Spark(ratios), ratios[len(ratios)-1])
	}
}

// hitRatios derives a per-sample cache hit-rate series (percent) from
// aligned hit/miss rate series; samples with no traffic carry the
// previous ratio so the sparkline stays readable.
func hitRatios(hits, misses []float64) ([]float64, bool) {
	n := len(hits)
	if len(misses) < n {
		n = len(misses)
	}
	if n == 0 {
		return nil, false
	}
	// Align from the tail: both series sample the same rounds, but one
	// may have existed for more of them.
	hits = hits[len(hits)-n:]
	misses = misses[len(misses)-n:]
	out := make([]float64, n)
	prev := 0.0
	any := false
	for i := 0; i < n; i++ {
		total := hits[i] + misses[i]
		if total > 0 {
			prev = 100 * hits[i] / total
			any = true
		}
		out[i] = prev
	}
	return out, any
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // best effort: the client may be gone
}

// writeError writes the error envelope, with Retry-After on load-shed
// responses so well-behaved clients back off a sensible amount.
func writeError(w http.ResponseWriter, aerr *apiError) {
	if aerr.retryAfter > 0 {
		secs := int(aerr.retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, aerr.status, map[string]*apiError{"error": aerr})
}
