package serve

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc-123_x.y", "abc-123_x.y"},
		{"", ""},
		{"has spaces\tand\ncontrol", "hasspacesandcontrol"},
		{`"quoted"{json}`, "quotedjson"},
		{strings.Repeat("a", 100), strings.Repeat("a", 64)},
		{"héllo", "hllo"},
	}
	for _, tc := range cases {
		if got := sanitizeRequestID(tc.in); got != tc.want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNewRequestIDShape(t *testing.T) {
	a, b := newRequestID(), newRequestID()
	if !strings.HasPrefix(a, "req-") || len(a) != 16 {
		t.Fatalf("id %q, want req-<12 hex>", a)
	}
	if a == b {
		t.Fatalf("consecutive ids collide: %q", a)
	}
	if sanitizeRequestID(a) != a {
		t.Fatalf("generated id %q does not survive its own sanitizer", a)
	}
}

// logLines decodes every access-log line written so far.
func logLines(t *testing.T, buf *syncBuffer) []accessRecord {
	t.Helper()
	var out []accessRecord
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var rec accessRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad access-log line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

// syncBuffer is a mutex-guarded string buffer (the logger serializes
// writes, but tests read concurrently with the server).
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestAccessLoggerSampling(t *testing.T) {
	var buf syncBuffer
	l := newAccessLogger(&buf, 3, time.Second)

	// 9 fast successes at 1-in-3 → 3 lines.
	for i := 0; i < 9; i++ {
		l.log(accessRecord{Status: 200, WallMS: 5})
	}
	if got := len(logLines(t, &buf)); got != 3 {
		t.Fatalf("sampled %d lines, want 3", got)
	}
	for _, rec := range logLines(t, &buf) {
		if !rec.Sampled {
			t.Fatalf("kept-by-sampling line not marked sampled: %+v", rec)
		}
	}

	// Errors and slow requests always log, unmarked.
	l.log(accessRecord{Status: 429, WallMS: 1})
	l.log(accessRecord{Status: 200, WallMS: 5000})
	lines := logLines(t, &buf)
	if len(lines) != 5 {
		t.Fatalf("after forced lines: %d, want 5", len(lines))
	}
	if lines[3].Sampled || lines[4].Sampled {
		t.Fatalf("forced lines marked sampled: %+v", lines[3:])
	}
}

func TestAccessLoggerKeepAll(t *testing.T) {
	var buf syncBuffer
	l := newAccessLogger(&buf, 1, time.Second)
	for i := 0; i < 4; i++ {
		l.log(accessRecord{Status: 200, WallMS: 1})
	}
	if got := len(logLines(t, &buf)); got != 4 {
		t.Fatalf("sample=1 kept %d of 4", got)
	}
}

func TestAccessLoggerNil(t *testing.T) {
	if l := newAccessLogger(nil, 1, 0); l != nil {
		t.Fatal("nil writer should produce nil logger")
	}
	var l *accessLogger
	l.log(accessRecord{Status: 500}) // must not panic
}
