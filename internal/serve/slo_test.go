package serve

import (
	"strings"
	"testing"
	"time"
)

// sloClock is a settable clock for burn-rate tests.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestSLOSet(cfg SLOConfig) (*sloSet, *sloClock) {
	clk := &sloClock{t: time.Unix(1_700_000_000, 0)}
	return newSLOSet(cfg, 2*time.Minute, clk.now), clk
}

func TestSLOGreenWhenHealthy(t *testing.T) {
	s, clk := newTestSLOSet(SLOConfig{})
	for i := 0; i < 200; i++ {
		s.observe(true, 10*time.Millisecond)
		clk.advance(time.Second)
	}
	for _, st := range s.statuses() {
		if st.State != "green" {
			t.Errorf("slo %s state = %q, want green (%+v)", st.SLO, st.State, st)
		}
		if st.Bad != 0 || st.Good != 200 {
			t.Errorf("slo %s good/bad = %d/%d, want 200/0", st.SLO, st.Good, st.Bad)
		}
		if st.BudgetRemaining != 1 {
			t.Errorf("slo %s budget = %v, want 1", st.SLO, st.BudgetRemaining)
		}
	}
}

func TestSLORedOnSustainedFailures(t *testing.T) {
	// 50% failures against a 99% objective is a 50× burn — far over the
	// 14.4 fast threshold on both windows once sustained.
	s, clk := newTestSLOSet(SLOConfig{})
	for i := 0; i < 600; i++ {
		s.observe(i%2 == 0, 10*time.Millisecond)
		clk.advance(time.Second)
	}
	st := s.statuses()[0] // availability
	if st.State != "red" {
		t.Fatalf("state = %q, want red (%+v)", st.State, st)
	}
	if st.Burn5m < burnFast || st.Burn1h < burnFast {
		t.Fatalf("burns = %v/%v, want both >= %v", st.Burn5m, st.Burn1h, burnFast)
	}
	if st.BudgetRemaining != 0 {
		t.Fatalf("budget = %v, want 0", st.BudgetRemaining)
	}
}

func TestSLOYellowOnFreshBurst(t *testing.T) {
	s, clk := newTestSLOSet(SLOConfig{})
	// An hour of clean traffic...
	for i := 0; i < 3600; i++ {
		s.observe(true, 10*time.Millisecond)
		clk.advance(time.Second)
	}
	// ...then a 2-minute total outage: the 5m window burns hot, but the
	// 1h window has not yet crossed the fast threshold → yellow, not red.
	for i := 0; i < 120; i++ {
		s.observe(false, 10*time.Millisecond)
		clk.advance(time.Second)
	}
	st := s.statuses()[0]
	if st.State != "yellow" {
		t.Fatalf("state = %q, want yellow (burn 5m %v, 1h %v)", st.State, st.Burn5m, st.Burn1h)
	}
	if st.Burn5m < burnFast {
		t.Fatalf("burn 5m = %v, want >= %v", st.Burn5m, burnFast)
	}
	if st.Burn1h >= burnFast {
		t.Fatalf("burn 1h = %v, want < %v for the yellow case", st.Burn1h, burnFast)
	}
}

func TestSLOBurnDecaysAsWindowRolls(t *testing.T) {
	s, clk := newTestSLOSet(SLOConfig{})
	for i := 0; i < 60; i++ {
		s.observe(false, time.Millisecond)
		clk.advance(time.Second)
	}
	hot := s.statuses()[0].Burn5m
	// 10 minutes of silence pushes the outage out of the 5m window.
	clk.advance(10 * time.Minute)
	cold := s.statuses()[0].Burn5m
	if hot <= 0 {
		t.Fatalf("burn during outage = %v, want > 0", hot)
	}
	if cold != 0 {
		t.Fatalf("burn 5m after window rolled = %v, want 0", cold)
	}
	// The 1h window still remembers.
	if b := s.statuses()[0].Burn1h; b <= 0 {
		t.Fatalf("burn 1h = %v, want > 0", b)
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	s, clk := newTestSLOSet(SLOConfig{LatencyTarget: 100 * time.Millisecond})
	for i := 0; i < 100; i++ {
		// Success, but half the requests blow the latency target.
		wall := 10 * time.Millisecond
		if i%2 == 0 {
			wall = 500 * time.Millisecond
		}
		s.observe(true, wall)
		clk.advance(time.Second)
	}
	sts := s.statuses()
	if sts[0].SLO != "availability" || sts[1].SLO != "latency" {
		t.Fatalf("statuses = %v", sts)
	}
	if sts[0].Bad != 0 {
		t.Fatalf("availability bad = %d, want 0", sts[0].Bad)
	}
	if sts[1].Bad != 50 || sts[1].Good != 50 {
		t.Fatalf("latency good/bad = %d/%d, want 50/50", sts[1].Good, sts[1].Bad)
	}
	if sts[1].TargetMS != 100 {
		t.Fatalf("latency target = %dms, want 100", sts[1].TargetMS)
	}
	// A failed request is latency-bad even when fast.
	s.observe(false, time.Millisecond)
	if got := s.statuses()[1].Bad; got != 51 {
		t.Fatalf("latency bad after failure = %d, want 51", got)
	}
}

func TestSLODisabled(t *testing.T) {
	s, _ := newTestSLOSet(SLOConfig{Availability: -1})
	if s != nil {
		t.Fatal("negative availability should disable tracking")
	}
	s.observe(true, time.Millisecond) // nil-safe
	if got := s.statuses(); got != nil {
		t.Fatalf("statuses on nil set = %v", got)
	}
	var sb strings.Builder
	s.writeStatusz(&sb)
	if err := s.writePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil set wrote %q (err %v)", sb.String(), err)
	}
}

func TestSLOPrometheusAndStatuszRendering(t *testing.T) {
	s, clk := newTestSLOSet(SLOConfig{})
	s.observe(true, time.Millisecond)
	s.observe(false, time.Millisecond)
	clk.advance(time.Second)

	var prom strings.Builder
	if err := s.writePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`thistle_slo_objective{slo="availability"} 0.99`,
		`thistle_slo_burn_rate{slo="availability",window="5m"}`,
		`thistle_slo_burn_rate{slo="latency",window="1h"}`,
		`thistle_slo_budget_remaining{slo="availability"}`,
		`thistle_slo_status{slo="availability"}`,
		`thistle_slo_events_total{slo="availability",outcome="good"} 1`,
		`thistle_slo_events_total{slo="availability",outcome="bad"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}

	var statusz strings.Builder
	s.writeStatusz(&statusz)
	if !strings.Contains(statusz.String(), "slo availability:") ||
		!strings.Contains(statusz.String(), "slo latency:") {
		t.Fatalf("statusz block missing slo lines:\n%s", statusz.String())
	}
}
