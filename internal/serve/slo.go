package serve

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SLOConfig declares the service objectives the server tracks:
// availability (fraction of admitted requests answered 200) and latency
// (fraction of admitted requests finishing under a wall-time target).
// Both are evaluated as multi-window burn rates — how fast the error
// budget is being spent over the last 5 minutes and the last hour —
// which is what distinguishes "a blip" from "an incident" without
// waiting a month to find out.
type SLOConfig struct {
	// Availability is the success-fraction objective (0: 0.99, i.e. 99%
	// of admitted requests succeed; negative disables SLO tracking
	// entirely).
	Availability float64
	// LatencyObjective is the fraction of requests that must finish
	// under LatencyTarget (0: 0.95).
	LatencyObjective float64
	// LatencyTarget is the wall-time budget a "fast" request finishes
	// within (0: the server's DefaultDeadline — by default a request is
	// latency-bad exactly when it risks its deadline).
	LatencyTarget time.Duration
}

func (c SLOConfig) withDefaults(defaultDeadline time.Duration) SLOConfig {
	if c.Availability == 0 {
		c.Availability = 0.99
	}
	if c.LatencyObjective == 0 {
		c.LatencyObjective = 0.95
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = defaultDeadline
	}
	return c
}

// Burn-rate thresholds (Google SRE workbook, multi-window multi-burn):
// a 14.4× burn exhausts a 30-day budget in ~2 days — page-worthy when
// sustained across both the fast and slow window; a 1× burn on the slow
// window alone is "watch it".
const (
	burnFast = 14.4
	burnSlow = 1.0
)

// SLO window geometry: a 1h ring of 10s buckets; the 5m fast window is
// the newest 30 buckets of the same ring.
const (
	sloBucketLen   = 10 * time.Second
	sloRingBuckets = 360
	sloFastBuckets = 30
)

// sloBucket accumulates one 10s interval's outcomes.
type sloBucket struct {
	epoch int64 // bucket index since the unix epoch; stale slots are skipped
	good  int64
	bad   int64
}

// sloTracker evaluates one objective over the shared ring geometry.
// Lock-free it is not — one mutex guards the ring — but observe is a
// few adds on a per-request path that just did seconds of solving.
type sloTracker struct {
	name      string
	objective float64

	mu       sync.Mutex
	ring     [sloRingBuckets]sloBucket // guarded by mu
	lifeGood int64                     // guarded by mu
	lifeBad  int64                     // guarded by mu
}

func newSLOTracker(name string, objective float64) *sloTracker {
	return &sloTracker{name: name, objective: objective}
}

func (t *sloTracker) observe(good bool, now time.Time) {
	epoch := now.UnixNano() / int64(sloBucketLen)
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.ring[epoch%sloRingBuckets]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	if good {
		b.good++
		t.lifeGood++
	} else {
		b.bad++
		t.lifeBad++
	}
}

// windowLocked sums the newest n buckets ending at now. Callers hold
// t.mu.
func (t *sloTracker) windowLocked(now time.Time, n int) (good, bad int64) {
	epoch := now.UnixNano() / int64(sloBucketLen)
	for i := 0; i < n; i++ {
		e := epoch - int64(i)
		b := &t.ring[e%sloRingBuckets]
		if b.epoch == e {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// burnRate is badFraction / errorBudget: 1.0 means the budget is being
// spent exactly as fast as the objective allows; 14.4 means a 30-day
// budget dies in ~2 days. An idle window burns nothing.
func burnRate(good, bad int64, objective float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - objective
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget
}

// SLOStatus is one objective's public state: rendered on /statusz,
// embedded in /varz, and exported as thistle_slo_* families.
type SLOStatus struct {
	SLO             string  `json:"slo"`
	Objective       float64 `json:"objective"`
	TargetMS        int64   `json:"target_ms,omitempty"`
	Burn5m          float64 `json:"burn_5m"`
	Burn1h          float64 `json:"burn_1h"`
	BudgetRemaining float64 `json:"budget_remaining"`
	State           string  `json:"state"` // "green", "yellow", "red"
	Good            int64   `json:"good"`
	Bad             int64   `json:"bad"`
}

func (t *sloTracker) status(now time.Time) SLOStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	g5, b5 := t.windowLocked(now, sloFastBuckets)
	g1, b1 := t.windowLocked(now, sloRingBuckets)
	st := SLOStatus{
		SLO:       t.name,
		Objective: t.objective,
		Burn5m:    burnRate(g5, b5, t.objective),
		Burn1h:    burnRate(g1, b1, t.objective),
		Good:      t.lifeGood,
		Bad:       t.lifeBad,
	}
	st.BudgetRemaining = 1 - st.Burn1h
	if st.BudgetRemaining < 0 {
		st.BudgetRemaining = 0
	}
	if st.BudgetRemaining > 1 {
		st.BudgetRemaining = 1
	}
	// Multi-window logic: red needs BOTH windows burning fast (a
	// sustained incident, not a blip); yellow is either a fresh fast
	// burn or a slow window already over budget.
	switch {
	case st.Burn5m >= burnFast && st.Burn1h >= burnFast:
		st.State = "red"
	case st.Burn5m >= burnFast || st.Burn1h >= burnSlow:
		st.State = "yellow"
	default:
		st.State = "green"
	}
	return st
}

// sloSet is the server's objectives: availability plus latency, sharing
// one observation point per admitted request.
type sloSet struct {
	cfg          SLOConfig
	availability *sloTracker
	latency      *sloTracker
	now          func() time.Time
}

// newSLOSet builds the trackers, or returns nil when tracking is
// disabled (negative availability objective).
func newSLOSet(cfg SLOConfig, defaultDeadline time.Duration, now func() time.Time) *sloSet {
	if cfg.Availability < 0 {
		return nil
	}
	cfg = cfg.withDefaults(defaultDeadline)
	if now == nil {
		now = time.Now
	}
	return &sloSet{
		cfg:          cfg,
		availability: newSLOTracker("availability", cfg.Availability),
		latency:      newSLOTracker("latency", cfg.LatencyObjective),
		now:          now,
	}
}

// observe records one admitted request's outcome. Nil-safe, so the
// request path need not branch on whether tracking is enabled.
func (s *sloSet) observe(ok bool, wall time.Duration) {
	if s == nil {
		return
	}
	now := s.now()
	s.availability.observe(ok, now)
	// A failed request is also a latency violation: the client did not
	// get a timely good answer. Counting it keeps the two objectives
	// consistent under e.g. deadline storms.
	s.latency.observe(ok && wall <= s.cfg.LatencyTarget, now)
}

// statuses returns each objective's current state (nil receiver: none).
func (s *sloSet) statuses() []SLOStatus {
	if s == nil {
		return nil
	}
	now := s.now()
	av := s.availability.status(now)
	lat := s.latency.status(now)
	lat.TargetMS = s.cfg.LatencyTarget.Milliseconds()
	return []SLOStatus{av, lat}
}

// writePrometheus appends the thistle_slo_* families to a /metrics
// response. These are hand-labeled families (the registry has no label
// support), emitted in a fixed order so the exposition stays
// deterministic and grammar-valid.
func (s *sloSet) writePrometheus(w io.Writer) error {
	sts := s.statuses()
	if len(sts) == 0 {
		return nil
	}
	var b []byte
	appendf := func(format string, args ...any) {
		b = fmt.Appendf(b, format, args...)
	}
	appendf("# HELP thistle_slo_objective Configured objective as a success fraction\n# TYPE thistle_slo_objective gauge\n")
	for _, st := range sts {
		appendf("thistle_slo_objective{slo=%q} %g\n", st.SLO, st.Objective)
	}
	appendf("# HELP thistle_slo_burn_rate Error budget burn rate over the window (1 = budget spent exactly at objective rate)\n# TYPE thistle_slo_burn_rate gauge\n")
	for _, st := range sts {
		appendf("thistle_slo_burn_rate{slo=%q,window=\"5m\"} %g\n", st.SLO, st.Burn5m)
		appendf("thistle_slo_burn_rate{slo=%q,window=\"1h\"} %g\n", st.SLO, st.Burn1h)
	}
	appendf("# HELP thistle_slo_budget_remaining Fraction of the 1h error budget left (0 = exhausted)\n# TYPE thistle_slo_budget_remaining gauge\n")
	for _, st := range sts {
		appendf("thistle_slo_budget_remaining{slo=%q} %g\n", st.SLO, st.BudgetRemaining)
	}
	appendf("# HELP thistle_slo_status Alert state: 0 green, 1 yellow, 2 red\n# TYPE thistle_slo_status gauge\n")
	for _, st := range sts {
		appendf("thistle_slo_status{slo=%q} %d\n", st.SLO, sloStateValue(st.State))
	}
	appendf("# HELP thistle_slo_events_total Admitted requests by SLO outcome\n# TYPE thistle_slo_events_total counter\n")
	for _, st := range sts {
		appendf("thistle_slo_events_total{slo=%q,outcome=\"good\"} %d\n", st.SLO, st.Good)
		appendf("thistle_slo_events_total{slo=%q,outcome=\"bad\"} %d\n", st.SLO, st.Bad)
	}
	_, err := w.Write(b)
	return err
}

func sloStateValue(state string) int {
	switch state {
	case "red":
		return 2
	case "yellow":
		return 1
	default:
		return 0
	}
}

// writeStatusz renders the red/yellow/green SLO block for /statusz.
func (s *sloSet) writeStatusz(w io.Writer) {
	sts := s.statuses()
	if len(sts) == 0 {
		return
	}
	for _, st := range sts {
		target := ""
		if st.TargetMS > 0 {
			target = fmt.Sprintf(" (target %s)", time.Duration(st.TargetMS)*time.Millisecond)
		}
		fmt.Fprintf(w, "slo %s: %s — objective %.4g%%%s, burn 5m %.2f / 1h %.2f, budget %.0f%%, %d good / %d bad\n",
			st.SLO, stateBadge(st.State), 100*st.Objective, target,
			st.Burn5m, st.Burn1h, 100*st.BudgetRemaining, st.Good, st.Bad)
	}
}

func stateBadge(state string) string {
	switch state {
	case "red":
		return "RED"
	case "yellow":
		return "YELLOW"
	default:
		return "GREEN"
	}
}
