package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/specs"
	"repro/internal/workloads"
	"repro/internal/yamlite"
)

// OptimizeRequest is the POST /v1/optimize body. Exactly one workload
// selector must be set: Layer, Layers, Pipeline, ProblemYAML, or Conv.
// The remaining fields mirror the thistle CLI's flags; zero values
// select the same defaults the CLI uses, so a request with only a
// selector returns byte-identical results to `thistle -layer <name>`.
type OptimizeRequest struct {
	// Layer names one Table II layer (e.g. "resnet18_L6").
	Layer string `json:"layer,omitempty"`
	// Layers names several Table II layers, optimized as one batch with
	// cross-layer signature dedup (same as `thistle -pipeline`).
	Layers []string `json:"layers,omitempty"`
	// Pipeline names a whole network: "resnet18", "yolo9000", or "all".
	Pipeline string `json:"pipeline,omitempty"`
	// ProblemYAML is a Timeloop-style problem spec document (the same
	// text `thistle -problem <file>` reads).
	ProblemYAML string `json:"problem_yaml,omitempty"`
	// Conv is the JSON mirror of a problem spec: an explicit Conv2D
	// shape built exactly like the CLI's -K/-C/-H flags.
	Conv *ConvSpec `json:"conv,omitempty"`

	// ArchYAML is a Timeloop-style architecture spec; empty selects
	// Eyeriss, like the CLI.
	ArchYAML string `json:"arch_yaml,omitempty"`
	// Criterion is "energy" (default), "delay", or "edp".
	Criterion string `json:"criterion,omitempty"`
	// Mode is "fixed" (default) or "codesign".
	Mode string `json:"mode,omitempty"`
	// AreaUM2 is the co-design area budget in um^2 (0: Eyeriss-equal).
	AreaUM2 float64 `json:"area_um2,omitempty"`
	// NDiv is the divisor-candidate width per tile variable (0: default).
	NDiv int `json:"ndiv,omitempty"`
	// NoCPJ is the NoC energy per word-hop in pJ (0 disables, the
	// paper's setting).
	NoCPJ float64 `json:"noc_pj,omitempty"`

	// DeadlineMS bounds the request's wall time in milliseconds. 0
	// selects the server's default deadline; values above the server's
	// maximum are clamped to it.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Specs adds the Timeloop-style spec bundle to each result row.
	Specs bool `json:"specs,omitempty"`
	// Trace captures a per-request Chrome trace (thistle-trace-v1,
	// `tlreport trace`-readable) and returns it in the response.
	Trace bool `json:"trace,omitempty"`
	// Events returns the request's thistle-events-v1 JSONL stream in
	// the response.
	Events bool `json:"events,omitempty"`
}

// ConvSpec mirrors loopnest.Conv2DConfig as lowercase JSON: an explicit
// Conv2D problem. H and W are the OUTPUT feature-map sizes (w defaults
// to h, s to r, strides and dilations to 1, n to 1).
type ConvSpec struct {
	Name      string `json:"name,omitempty"`
	N         int64  `json:"n,omitempty"`
	K         int64  `json:"k"`
	C         int64  `json:"c"`
	H         int64  `json:"h"`
	W         int64  `json:"w,omitempty"`
	R         int64  `json:"r"`
	S         int64  `json:"s,omitempty"`
	StrideX   int64  `json:"stride_x,omitempty"`
	StrideY   int64  `json:"stride_y,omitempty"`
	DilationX int64  `json:"dilation_x,omitempty"`
	DilationY int64  `json:"dilation_y,omitempty"`
}

// LayerOutcome is one per-layer result row of an OptimizeResponse,
// pairing the design point's architecture and report with the solve
// signature that addresses it in the cache.
type LayerOutcome struct {
	Problem      string  `json:"problem"`
	Sig          string  `json:"sig"`
	PEs          int64   `json:"pes"`
	Regs         int64   `json:"regs"`
	SRAMWords    int64   `json:"sram_words"`
	EnergyPJ     float64 `json:"energy_pj"`
	EnergyPerMAC float64 `json:"energy_per_mac"`
	Cycles       float64 `json:"cycles"`
	EDP          float64 `json:"edp"`
	IPC          float64 `json:"ipc"`
	Utilization  float64 `json:"utilization"`
	FromCache    bool    `json:"from_cache,omitempty"`
	SpecBundle   string  `json:"spec_bundle,omitempty"`
}

// OptimizeResponse is the POST /v1/optimize success body: the
// per-request run ID, one result row per requested layer (in request
// order), and the request's thistle-manifest-v1 run manifest. Trace and
// EventsJSONL are present only when requested; saved to files they are
// readable by `tlreport trace` and `tlreport validate` unchanged.
type OptimizeResponse struct {
	RunID       string          `json:"run_id"`
	Results     []LayerOutcome  `json:"results"`
	Manifest    json.RawMessage `json:"manifest"`
	Trace       json.RawMessage `json:"trace,omitempty"`
	EventsJSONL string          `json:"events_jsonl,omitempty"`
}

// apiError is the error envelope every non-2xx response carries (under
// an "error" key), plus transport details that go into headers.
type apiError struct {
	status     int
	retryAfter time.Duration

	Code    string `json:"code"`
	Message string `json:"message"`
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, Code: "bad_request", Message: fmt.Sprintf(format, args...)}
}

// work is one admitted request resolved to solvable form.
type work struct {
	// layers is the named-layer path (batch-deduped); prob the
	// spec-derived single-problem path. Exactly one is set.
	layers []workloads.Layer
	prob   *loopnest.Problem
	opts   core.Options
	specs  bool
	desc   string // compact selector description for statusz/args
}

// resolve validates an OptimizeRequest and builds the work unit,
// mirroring the thistle CLI's flag handling (same defaults, same
// criterion/mode spellings) so server and CLI results agree byte for
// byte.
func resolve(req *OptimizeRequest) (*work, *apiError) {
	w := &work{specs: req.Specs}

	selectors := 0
	for _, set := range []bool{req.Layer != "", len(req.Layers) > 0, req.Pipeline != "", req.ProblemYAML != "", req.Conv != nil} {
		if set {
			selectors++
		}
	}
	if selectors == 0 {
		return nil, badRequest("no workload selected: set one of layer, layers, pipeline, problem_yaml, conv")
	}
	if selectors > 1 {
		return nil, badRequest("exactly one of layer, layers, pipeline, problem_yaml, conv may be set")
	}

	switch {
	case req.Layer != "":
		l, ok := workloads.ByName(req.Layer)
		if !ok {
			return nil, badRequest("unknown layer %q (try resnet18_L1..L12, yolo9000_L1..L11)", req.Layer)
		}
		w.layers = []workloads.Layer{l}
		w.desc = "layer=" + req.Layer
	case len(req.Layers) > 0:
		for _, name := range req.Layers {
			l, ok := workloads.ByName(name)
			if !ok {
				return nil, badRequest("unknown layer %q (try resnet18_L1..L12, yolo9000_L1..L11)", name)
			}
			w.layers = append(w.layers, l)
		}
		w.desc = fmt.Sprintf("layers=%d", len(req.Layers))
	case req.Pipeline != "":
		switch req.Pipeline {
		case "resnet18":
			w.layers = workloads.ResNet18()
		case "yolo9000":
			w.layers = workloads.Yolo9000()
		case "all":
			w.layers = workloads.All()
		default:
			return nil, badRequest("unknown pipeline %q (resnet18 | yolo9000 | all)", req.Pipeline)
		}
		w.desc = "pipeline=" + req.Pipeline
	case req.ProblemYAML != "":
		node, err := yamlite.Parse(req.ProblemYAML)
		if err != nil {
			return nil, badRequest("problem_yaml: %v", err)
		}
		p, err := specs.ParseProblem(node)
		if err != nil {
			return nil, badRequest("problem_yaml: %v", err)
		}
		w.prob = p
		w.desc = "problem=" + p.Name
	case req.Conv != nil:
		p, err := req.Conv.problem()
		if err != nil {
			return nil, badRequest("conv: %v", err)
		}
		w.prob = p
		w.desc = "conv=" + p.Name
	}

	a := arch.Eyeriss()
	if req.ArchYAML != "" {
		node, err := yamlite.Parse(req.ArchYAML)
		if err != nil {
			return nil, badRequest("arch_yaml: %v", err)
		}
		a, err = specs.ParseArch(node, arch.Tech45nm())
		if err != nil {
			return nil, badRequest("arch_yaml: %v", err)
		}
	}
	a.Tech.EnergyNoCHop = req.NoCPJ

	w.opts = core.Options{Arch: &a, NDiv: req.NDiv, AreaBudget: req.AreaUM2}
	switch req.Criterion {
	case "", "energy":
		w.opts.Criterion = model.MinEnergy
	case "delay":
		w.opts.Criterion = model.MinDelay
	case "edp":
		w.opts.Criterion = model.MinEDP
	default:
		return nil, badRequest("unknown criterion %q (energy | delay | edp)", req.Criterion)
	}
	switch req.Mode {
	case "", "fixed":
		w.opts.Mode = core.FixedArch
	case "codesign":
		w.opts.Mode = core.CoDesign
	default:
		return nil, badRequest("unknown mode %q (fixed | codesign)", req.Mode)
	}
	if req.NDiv < 0 {
		return nil, badRequest("ndiv must be >= 0")
	}
	if req.DeadlineMS < 0 {
		return nil, badRequest("deadline_ms must be >= 0")
	}
	return w, nil
}

// problem converts the JSON mirror to a loop-nest problem.
func (c *ConvSpec) problem() (*loopnest.Problem, error) {
	cfg := loopnest.Conv2DConfig{
		Name: c.Name, N: c.N, K: c.K, C: c.C, H: c.H, W: c.W, R: c.R, S: c.S,
		StrideX: c.StrideX, StrideY: c.StrideY,
		DilationX: c.DilationX, DilationY: c.DilationY,
	}
	if cfg.N == 0 {
		cfg.N = 1
	}
	if cfg.W == 0 {
		cfg.W = cfg.H
	}
	if cfg.S == 0 {
		cfg.S = cfg.R
	}
	if cfg.StrideX == 0 {
		cfg.StrideX = 1
	}
	if cfg.StrideY == 0 {
		cfg.StrideY = 1
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("conv_k%d_c%d_h%d_r%d", cfg.K, cfg.C, cfg.H, cfg.R)
	}
	return loopnest.Conv2D(cfg)
}

// decodeRequest reads and strictly validates the request body: unknown
// fields are rejected so typos fail loudly instead of silently running
// the default workload.
func decodeRequest(r *http.Request) (*OptimizeRequest, *apiError) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req OptimizeRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("decoding request body: %v", err)
	}
	// Trailing garbage after the JSON document is a malformed request.
	if dec.More() {
		return nil, badRequest("request body holds more than one JSON document")
	}
	return &req, nil
}

// requestArgs renders the manifest's args list for a request, so a
// server-side manifest records what was asked just like a CLI manifest
// records os.Args.
func requestArgs(req *OptimizeRequest, w *work) []string {
	args := []string{w.desc}
	if req.Criterion != "" {
		args = append(args, "criterion="+req.Criterion)
	}
	if req.Mode != "" {
		args = append(args, "mode="+req.Mode)
	}
	if req.NDiv != 0 {
		args = append(args, fmt.Sprintf("ndiv=%d", req.NDiv))
	}
	if req.AreaUM2 != 0 {
		args = append(args, fmt.Sprintf("area_um2=%g", req.AreaUM2))
	}
	if req.Trace {
		args = append(args, "trace")
	}
	return args
}

// summary is the one-line request description shown on /statusz.
func (w *work) summary() string {
	parts := []string{w.desc, w.opts.Criterion.String(), w.opts.Mode.String()}
	return strings.Join(parts, " ")
}
