// Package model is the reproduction's substitute for the Timeloop
// accelerator model: it evaluates a concrete integer mapping (per-level
// trip counts plus per-level loop permutations) of a loop-nest problem on
// an architecture, producing exact per-boundary access counts (with
// spatial multicast), an energy breakdown per the paper's Eq. 3, a delay
// estimate (maximum over component throughputs, Section V.B), and
// capacity/utilization checks.
//
// Exactness note: unlike the geometric-program relaxation, evaluation
// here uses the exact footprint/volume expressions including the negative
// constants of convolution extents.
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/expr"
)

// ErrBadMapping reports a structurally invalid mapping.
var ErrBadMapping = errors.New("model: invalid mapping")

// Criterion selects an optimization objective for searches and
// comparisons over reports.
type Criterion int

const (
	// MinEnergy minimizes total pJ.
	MinEnergy Criterion = iota
	// MinDelay minimizes total cycles.
	MinDelay
	// MinEDP minimizes the energy-delay product (pJ·cycles) — the
	// objective the paper mentions as expressible but does not evaluate.
	MinEDP
)

func (c Criterion) String() string {
	switch c {
	case MinDelay:
		return "delay"
	case MinEDP:
		return "edp"
	default:
		return "energy"
	}
}

// Score extracts the criterion's objective value from a report.
func Score(c Criterion, r *Report) float64 {
	switch c {
	case MinDelay:
		return r.Cycles
	case MinEDP:
		return r.Energy * r.Cycles
	default:
		return r.Energy
	}
}

// Mapping is a concrete design point: integer trip counts per level per
// iterator and iterator orders for the temporal copy levels.
type Mapping struct {
	// Perms[l] is the outer-to-inner iterator order of copy level l
	// (nil for non-copy levels), as accepted by Nest.ComputeVolumes.
	Perms [][]int
	// Trips[l][it] is the integer trip count of iterator it at level l
	// (0 entries mean 1).
	Trips [][]int64
}

// Clone returns a deep copy of the mapping.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{
		Perms: make([][]int, len(m.Perms)),
		Trips: make([][]int64, len(m.Trips)),
	}
	for i, p := range m.Perms {
		if p != nil {
			c.Perms[i] = append([]int(nil), p...)
		}
	}
	for i, t := range m.Trips {
		c.Trips[i] = append([]int64(nil), t...)
	}
	return c
}

// EnergyBreakdown itemizes the Eq. 3 energy components (pJ).
type EnergyBreakdown struct {
	Compute float64 // (4ε_R + ε_op)·N_ops
	RegFile float64 // ε_R · S↔R traffic
	SRAM    float64 // ε_S · (S↔R + D↔S traffic)
	DRAM    float64 // ε_D · D↔S traffic
	NoC     float64 // ε_hop · √P · S↔R traffic (optional extension)
}

// Total sums the components.
func (b EnergyBreakdown) Total() float64 {
	return b.Compute + b.RegFile + b.SRAM + b.DRAM + b.NoC
}

// Report is the evaluation result for one mapping on one architecture.
type Report struct {
	Ops          int64
	Energy       float64 // pJ
	EnergyPerMAC float64 // pJ/MAC
	Breakdown    EnergyBreakdown

	Cycles float64
	IPC    float64 // MACs per cycle

	PEsUsed     int64
	Utilization float64 // PEsUsed / PEs

	// TrafficSR and TrafficDS are total words moved across the
	// SRAM↔register and DRAM↔SRAM boundaries (read-write tensors
	// counted twice per the paper).
	TrafficSR float64
	TrafficDS float64
	// RegFootprint and SRAMFootprint are the exact buffer requirements.
	RegFootprint  float64
	SRAMFootprint float64

	// Violations lists capacity/shape constraint failures; empty means
	// the mapping is valid for the architecture.
	Violations []string
}

// Valid reports whether the mapping satisfied all constraints.
func (r *Report) Valid() bool { return len(r.Violations) == 0 }

// Clone returns a deep copy of r. Session-owned reports are only valid
// until the session's next Evaluate call; keep a Clone instead.
func (r *Report) Clone() *Report {
	c := *r
	if r.Violations != nil {
		c.Violations = append([]string(nil), r.Violations...)
	}
	return &c
}

// Evaluator evaluates mappings of one nest, caching the symbolic volume
// expressions per permutation choice (they are trip-value independent).
// It is safe for concurrent use.
type Evaluator struct {
	Nest *dataflow.Nest

	mu    sync.Mutex
	cache map[string]*dataflow.Volumes // guarded by mu
}

// NewEvaluator wraps a nest.
func NewEvaluator(n *dataflow.Nest) *Evaluator {
	return &Evaluator{Nest: n, cache: map[string]*dataflow.Volumes{}}
}

func permKey(perms [][]int) string {
	var b strings.Builder
	for _, p := range perms {
		for _, it := range p {
			fmt.Fprintf(&b, "%d,", it)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// volumes returns (possibly cached) symbolic volumes for a permutation
// choice.
func (e *Evaluator) volumes(perms [][]int) (*dataflow.Volumes, error) {
	key := permKey(perms)
	e.mu.Lock()
	v, ok := e.cache[key]
	e.mu.Unlock()
	if ok {
		return v, nil
	}
	v, err := e.Nest.ComputeVolumes(perms)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.cache[key] = v
	e.mu.Unlock()
	return v, nil
}

// Evaluate computes the report for a mapping on the architecture. The
// nest must be a standard 3-level-memory nest (two copy boundaries:
// registers and SRAM). Mappings that violate capacities still produce a
// full report, with Violations populated, so searches can reject them.
func (e *Evaluator) Evaluate(a *arch.Arch, m *Mapping) (*Report, error) {
	v, err := e.volumes(m.Perms)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMapping, err)
	}
	s := EvalSession{e: e, vols: v}
	return s.Evaluate(a, m)
}

// EvalSession evaluates many mappings that share one permutation choice
// — the shape of the integerization search, which streams thousands of
// trip-count variants of a single relaxed solution. The session pins the
// (cached) symbolic volumes once and reuses its assignment buffer and
// Report across calls, so steady-state evaluation does not allocate.
//
// The returned *Report is owned by the session and overwritten by the
// next Evaluate call; callers that keep one must Clone it. A session is
// not safe for concurrent use (create one per goroutine; they share the
// evaluator's locked volume cache).
type EvalSession struct {
	e    *Evaluator
	vols *dataflow.Volumes
	x    []float64
	rep  Report
	// Quick elides the formatted violation messages: an invalid mapping
	// gets a static placeholder instead. Validity (Report.Valid) is
	// unchanged; searches that only filter on it avoid the fmt cost.
	Quick bool
}

// Quick-mode violation placeholders (see EvalSession.Quick).
var (
	violRegQuick  = "register footprint over capacity"
	violSRAMQuick = "SRAM footprint over capacity"
	violPEQuick   = "PEs used over capacity"
)

// Session pins the symbolic volumes for one permutation choice,
// computing (or fetching from the evaluator's cache) them once.
func (e *Evaluator) Session(perms [][]int) (*EvalSession, error) {
	v, err := e.volumes(perms)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMapping, err)
	}
	return &EvalSession{e: e, vols: v}, nil
}

// Evaluate computes the report for a mapping whose Perms match the
// session's. See Evaluator.Evaluate for semantics and EvalSession for
// the ownership rules of the returned Report.
func (s *EvalSession) Evaluate(a *arch.Arch, m *Mapping) (*Report, error) {
	e := s.e
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := e.Nest.CheckTrips(m.Trips); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMapping, err)
	}
	v := s.vols
	if len(v.Boundaries) != 2 {
		return nil, fmt.Errorf("%w: need exactly 2 memory boundaries, nest has %d", ErrBadMapping, len(v.Boundaries))
	}
	if n := e.Nest.Vars.Len(); cap(s.x) < n {
		s.x = make([]float64, n)
	} else {
		s.x = s.x[:n]
	}
	x := e.Nest.AssignmentInto(s.x, m.Trips)

	viols := s.rep.Violations[:0]
	r := &s.rep
	*r = Report{Ops: e.Nest.Prob.Ops()}
	r.TrafficSR = v.EvalTraffic(0, x)
	r.TrafficDS = v.EvalTraffic(1, x)
	r.RegFootprint = v.EvalFootprint(0, x)
	r.SRAMFootprint = v.EvalFootprint(1, x)

	// PEs used: product of spatial trips.
	r.PEsUsed = 1
	for li := range e.Nest.Levels {
		if e.Nest.Levels[li].Kind != dataflow.Spatial {
			continue
		}
		for _, it := range e.Nest.Levels[li].Active {
			if tv := tripAt(m.Trips, li, it); tv > 1 {
				r.PEsUsed *= tv
			}
		}
	}
	r.Utilization = float64(r.PEsUsed) / float64(a.PEs)

	// Energy per Eq. 3 (plus the optional NoC extension).
	epsR := a.RegEnergy()
	epsS := a.SRAMEnergy()
	epsD := a.Tech.EnergyDRAM
	ops := float64(r.Ops)
	r.Breakdown = EnergyBreakdown{
		Compute: (4*epsR + a.Tech.EnergyMAC) * ops,
		RegFile: epsR * r.TrafficSR,
		SRAM:    epsS * (r.TrafficSR + r.TrafficDS),
		DRAM:    epsD * r.TrafficDS,
	}
	if a.Tech.EnergyNoCHop > 0 {
		r.Breakdown.NoC = a.Tech.EnergyNoCHop * math.Sqrt(float64(r.PEsUsed)) * r.TrafficSR
	}
	r.Energy = r.Breakdown.Total()
	r.EnergyPerMAC = r.Energy / ops

	// Delay: max over component throughputs (Section V.B).
	compute := ops / float64(r.PEsUsed)
	regPort := 4 * ops / (float64(r.PEsUsed) * a.Tech.BWReg)
	sram := (r.TrafficSR + r.TrafficDS) / a.Tech.BWSRAM
	dram := r.TrafficDS / a.Tech.BWDRAM
	r.Cycles = math.Max(math.Max(compute, regPort), math.Max(sram, dram))
	r.IPC = ops / r.Cycles

	// Capacity constraints.
	if r.RegFootprint > float64(a.Regs) {
		if s.Quick {
			viols = append(viols, violRegQuick)
		} else {
			viols = append(viols, fmt.Sprintf("register footprint %.0f > %d", r.RegFootprint, a.Regs))
		}
	}
	if r.SRAMFootprint > float64(a.SRAM) {
		if s.Quick {
			viols = append(viols, violSRAMQuick)
		} else {
			viols = append(viols, fmt.Sprintf("SRAM footprint %.0f > %d", r.SRAMFootprint, a.SRAM))
		}
	}
	if r.PEsUsed > a.PEs {
		if s.Quick {
			viols = append(viols, violPEQuick)
		} else {
			viols = append(viols, fmt.Sprintf("PEs used %d > %d", r.PEsUsed, a.PEs))
		}
	}
	if len(viols) > 0 {
		r.Violations = viols
	}
	return r, nil
}

func tripAt(trips [][]int64, li, it int) int64 {
	if li < len(trips) && it < len(trips[li]) && trips[li][it] > 0 {
		return trips[li][it]
	}
	return 1
}

// UniformMapping builds a trivial valid mapping that executes everything
// sequentially on one PE with unit tiles everywhere except level 0 trips
// forced by pins. It is the fallback/sanity mapping: the full extent of
// every free iterator is placed at the outermost (SRAM-tile) level.
func UniformMapping(n *dataflow.Nest) *Mapping {
	nl := len(n.Levels)
	ni := len(n.Prob.Iters)
	m := &Mapping{Perms: make([][]int, nl), Trips: make([][]int64, nl)}
	for li := 0; li < nl; li++ {
		m.Trips[li] = make([]int64, ni)
		for it := range m.Trips[li] {
			m.Trips[li][it] = 1
		}
	}
	// Pins (untiled full loops at their placement level).
	pinnedTotal := make([]int64, ni)
	for it := range pinnedTotal {
		pinnedTotal[it] = 1
	}
	for _, pin := range n.Pins {
		it := n.IterOfVar(pin.Var)
		li := levelOf(n, pin.Var)
		m.Trips[li][it] = int64(pin.Value)
		pinnedTotal[it] *= int64(pin.Value)
	}
	// Remaining extent at the outermost level where the iterator is active.
	for it, iter := range n.Prob.Iters {
		rest := iter.Extent / pinnedTotal[it]
		if rest <= 1 {
			continue
		}
		for li := nl - 1; li >= 0; li-- {
			if n.Levels[li].Trips[it] != expr.NoVar {
				m.Trips[li][it] *= rest
				break
			}
		}
	}
	// Copy-level perms: active iterators in declaration order.
	for li := 0; li < nl; li++ {
		lvl := &n.Levels[li]
		if lvl.Kind == dataflow.Temporal && lvl.Copy {
			perm := append([]int(nil), lvl.Active...)
			sort.Ints(perm)
			m.Perms[li] = perm
		}
	}
	return m
}

func levelOf(n *dataflow.Nest, v expr.VarID) int {
	for li := range n.Levels {
		for _, tv := range n.Levels[li].Trips {
			if tv == v {
				return li
			}
		}
	}
	return -1
}
