package model

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
)

func matmulSetup(t *testing.T) (*Evaluator, *Mapping) {
	t.Helper()
	p := loopnest.MatMul(64, 64, 64)
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := &Mapping{
		Perms: dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}),
		Trips: [][]int64{
			{4, 4, 4},
			{2, 2, 4},
			{2, 2, 1},
			{4, 4, 4},
		},
	}
	return NewEvaluator(n), m
}

func TestEvaluateMatmulEnergy(t *testing.T) {
	ev, m := matmulSetup(t)
	a := arch.Eyeriss()
	r, err := ev.Evaluate(&a, m)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Valid() {
		t.Fatalf("violations: %v", r.Violations)
	}
	if r.Ops != 64*64*64 {
		t.Fatalf("Ops = %d", r.Ops)
	}
	// Exact traffic values from the dataflow tests.
	N := 64.0 * 64 * 64
	wantSR := N/(4*2) + N/(4*2) + 2*N/16
	wantDS := 64.0*64 + N/16 + 2*N/16
	if r.TrafficSR != wantSR || r.TrafficDS != wantDS {
		t.Fatalf("traffic = %v/%v, want %v/%v", r.TrafficSR, r.TrafficDS, wantSR, wantDS)
	}
	epsR, epsS, epsD := a.RegEnergy(), a.SRAMEnergy(), a.Tech.EnergyDRAM
	wantEnergy := (4*epsR+2.2)*N + epsR*wantSR + epsS*(wantSR+wantDS) + epsD*wantDS
	if math.Abs(r.Energy-wantEnergy) > 1e-6*wantEnergy {
		t.Fatalf("energy = %v, want %v", r.Energy, wantEnergy)
	}
	if math.Abs(r.EnergyPerMAC-wantEnergy/N) > 1e-9 {
		t.Fatalf("pJ/MAC = %v", r.EnergyPerMAC)
	}
	if math.Abs(r.Breakdown.Total()-r.Energy) > 1e-9 {
		t.Fatal("breakdown doesn't sum")
	}
}

func TestEvaluateMatmulDelay(t *testing.T) {
	ev, m := matmulSetup(t)
	a := arch.Eyeriss()
	r, err := ev.Evaluate(&a, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.PEsUsed != 4 {
		t.Fatalf("PEsUsed = %d, want 4 (2·2·1)", r.PEsUsed)
	}
	ops := float64(r.Ops)
	compute := ops / 4
	regPort := 4 * ops / (4 * a.Tech.BWReg)
	sram := (r.TrafficSR + r.TrafficDS) / a.Tech.BWSRAM
	dram := r.TrafficDS / a.Tech.BWDRAM
	want := math.Max(math.Max(compute, regPort), math.Max(sram, dram))
	if r.Cycles != want {
		t.Fatalf("cycles = %v, want %v", r.Cycles, want)
	}
	if math.Abs(r.IPC-ops/want) > 1e-9 {
		t.Fatalf("IPC = %v", r.IPC)
	}
	if math.Abs(r.Utilization-4.0/168) > 1e-12 {
		t.Fatalf("utilization = %v", r.Utilization)
	}
}

func TestEvaluateDetectsViolations(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(n)
	// Tiny architecture that cannot hold the tiles.
	a := arch.Arch{Name: "tiny", PEs: 2, Regs: 8, SRAM: 64, Tech: arch.Tech45nm()}
	m := &Mapping{
		Perms: dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}),
		Trips: [][]int64{
			{4, 4, 4},
			{2, 2, 4},
			{2, 2, 1},
			{4, 4, 4},
		},
	}
	r, err := ev.Evaluate(&a, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Valid() || len(r.Violations) != 3 {
		t.Fatalf("violations = %v, want 3 (regs, sram, PEs)", r.Violations)
	}
}

func TestEvaluateRejectsBadTrips(t *testing.T) {
	ev, m := matmulSetup(t)
	a := arch.Eyeriss()
	bad := m.Clone()
	bad.Trips[3][0] = 2 // i product now 32
	if _, err := ev.Evaluate(&a, bad); err == nil {
		t.Fatal("expected trip validation error")
	}
	badArch := arch.Arch{}
	if _, err := ev.Evaluate(&badArch, m); err == nil {
		t.Fatal("expected arch validation error")
	}
}

func TestEvaluatorCaching(t *testing.T) {
	ev, m := matmulSetup(t)
	a := arch.Eyeriss()
	r1, err := ev.Evaluate(&a, m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ev.Evaluate(&a, m)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Energy != r2.Energy || r1.Cycles != r2.Cycles {
		t.Fatal("cached evaluation differs")
	}
	if len(ev.cache) != 1 {
		t.Fatalf("cache size = %d, want 1", len(ev.cache))
	}
}

func TestMappingClone(t *testing.T) {
	_, m := matmulSetup(t)
	c := m.Clone()
	c.Trips[0][0] = 99
	c.Perms[1][0] = 99
	if m.Trips[0][0] == 99 || m.Perms[1][0] == 99 {
		t.Fatal("Clone aliases memory")
	}
}

func TestUniformMappingConv(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "c", N: 1, K: 16, C: 8, H: 14, W: 14, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := UniformMapping(n)
	if err := n.CheckTrips(m.Trips); err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(n)
	a := arch.Eyeriss()
	r, err := ev.Evaluate(&a, m)
	if err != nil {
		t.Fatal(err)
	}
	// One PE, so IPC ≤ 1.
	if r.PEsUsed != 1 || r.IPC > 1 {
		t.Fatalf("uniform mapping should be sequential: PEs=%d IPC=%v", r.PEsUsed, r.IPC)
	}
	// Register footprint: with r,s pinned at level 0, the register tile
	// holds a 3×3 kernel window: In (3)(3)=9, Ker 9, Out 1 → 19 words.
	if r.RegFootprint != 19 {
		t.Fatalf("reg footprint = %v, want 19", r.RegFootprint)
	}
	if !r.Valid() {
		t.Fatalf("violations: %v", r.Violations)
	}
}

// Energy conservation property: doubling DRAM traffic (via a worse SRAM
// tiling) must not decrease total energy.
func TestEnergyMonotoneInTraffic(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(n)
	a := arch.Eyeriss()
	good := &Mapping{
		Perms: dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}),
		Trips: [][]int64{{4, 4, 4}, {4, 4, 4}, {2, 2, 1}, {2, 2, 4}},
	}
	bad := &Mapping{
		Perms: dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}),
		Trips: [][]int64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {64, 64, 64}},
	}
	rg, err := ev.Evaluate(&a, good)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ev.Evaluate(&a, bad)
	if err != nil {
		t.Fatal(err)
	}
	if rb.TrafficDS <= rg.TrafficDS {
		t.Fatalf("expected worse DRAM traffic: %v vs %v", rb.TrafficDS, rg.TrafficDS)
	}
	if rb.Energy <= rg.Energy {
		t.Fatalf("energy not monotone: %v vs %v", rb.Energy, rg.Energy)
	}
}
