package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// smallConv builds a small conv layer that still exercises the full
// flow (multiple permutation classes, both RS placements) quickly.
func smallConv(t *testing.T, name string) *loopnest.Problem {
	t.Helper()
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: name, N: 1, K: 16, C: 16, H: 7, W: 7, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestOptimizeCacheStats is the regression test for the dedup-aware
// stats: a cached run must keep reporting the original search effort
// (PairsSolved, Candidates) while reporting zero fresh solves, and a
// fresh run must report both counters equal.
func TestOptimizeCacheStats(t *testing.T) {
	p := smallConv(t, "cached_layer")
	a := arch.Eyeriss()
	sc := NewSolveCache(cache.Options{})
	opts := Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a, Cache: sc}

	r1, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.FromCache {
		t.Error("first run reported FromCache")
	}
	if r1.Stats.PairsSolved == 0 {
		t.Fatal("first run solved no GPs")
	}
	if r1.Stats.FreshSolves != r1.Stats.PairsSolved {
		t.Errorf("fresh run: FreshSolves = %d, want PairsSolved = %d",
			r1.Stats.FreshSolves, r1.Stats.PairsSolved)
	}

	// Same shape under a different layer name: the cross-layer dedup
	// case must hit.
	r2, err := Optimize(smallConv(t, "same_shape_other_name"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats.FromCache {
		t.Fatal("second run did not hit the cache")
	}
	if r2.Stats.FreshSolves != 0 {
		t.Errorf("cached run: FreshSolves = %d, want 0", r2.Stats.FreshSolves)
	}
	if r2.Stats.PairsSolved != r1.Stats.PairsSolved {
		t.Errorf("cached run must preserve the original effort: PairsSolved = %d, want %d",
			r2.Stats.PairsSolved, r1.Stats.PairsSolved)
	}
	if r2.Stats.Candidates != r1.Stats.Candidates {
		t.Errorf("cached run: Candidates = %d, want %d", r2.Stats.Candidates, r1.Stats.Candidates)
	}
	if s := sc.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", s)
	}

	// The cached entry itself must stay unpolluted by the per-caller
	// stats copy: a third request still reports the original effort.
	r3, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Stats.FromCache || r3.Stats.PairsSolved != r1.Stats.PairsSolved {
		t.Errorf("third run stats = %+v", r3.Stats)
	}
}

// TestOptimizeCacheIdenticalResults: with the cache on (miss then hit)
// and off, the selected design must be exactly the same.
func TestOptimizeCacheIdenticalResults(t *testing.T) {
	p := smallConv(t, "identical")
	a := arch.Eyeriss()
	base := Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a}

	off, err := Optimize(p, base)
	if err != nil {
		t.Fatal(err)
	}
	withCache := base
	withCache.Cache = NewSolveCache(cache.Options{})
	miss, err := Optimize(p, withCache)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := Optimize(p, withCache)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		got  *Result
	}{{"cold cache", miss}, {"warm cache", hit}} {
		if !reflect.DeepEqual(off.Best.Report, tc.got.Best.Report) {
			t.Errorf("%s: report differs: %+v vs %+v", tc.name, off.Best.Report, tc.got.Best.Report)
		}
		if !reflect.DeepEqual(off.Best.Mapping, tc.got.Best.Mapping) {
			t.Errorf("%s: mapping differs", tc.name)
		}
		if off.Best.Arch != tc.got.Best.Arch {
			t.Errorf("%s: arch differs: %v vs %v", tc.name, off.Best.Arch, tc.got.Best.Arch)
		}
	}
}

// TestOptimizeCacheFromContext: a cache attached to the context is
// picked up when Options.Cache is unset.
func TestOptimizeCacheFromContext(t *testing.T) {
	p := smallConv(t, "ctx_layer")
	a := arch.Eyeriss()
	sc := NewSolveCache(cache.Options{})
	ctx := ContextWithCache(context.Background(), sc)
	opts := Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a}
	if _, err := OptimizeContext(ctx, p, opts); err != nil {
		t.Fatal(err)
	}
	r, err := OptimizeContext(ctx, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.FromCache {
		t.Error("context-attached cache was not used")
	}
	// And ContextWithCache(nil) must be a no-op.
	if got := CacheFromContext(ContextWithCache(context.Background(), nil)); got != nil {
		t.Error("nil cache attached to context")
	}
}

// TestSolveSignatureOptionSensitivity: option changes that alter the
// result must change the signature; resolved defaults must not.
func TestSolveSignatureOptionSensitivity(t *testing.T) {
	p := smallConv(t, "sig")
	a := arch.Eyeriss()
	base := Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a}
	s0 := SolveSignature(p, base)

	explicit := base
	explicit.NDiv = 2 // the MinEnergy default
	explicit.TopClasses = 3
	if SolveSignature(p, explicit) != s0 {
		t.Error("explicitly spelling out defaults changed the signature")
	}

	ndiv := base
	ndiv.NDiv = 3
	if SolveSignature(p, ndiv) == s0 {
		t.Error("NDiv change did not change the signature")
	}

	codesign := base
	codesign.Mode = CoDesign
	if SolveSignature(p, codesign) == s0 {
		t.Error("mode change did not change the signature")
	}

	crit := base
	crit.Criterion = model.MinDelay
	if SolveSignature(p, crit) == s0 {
		t.Error("criterion change did not change the signature")
	}

	// Parallelism must NOT be part of the signature.
	par := base
	par.Parallel = 1
	if SolveSignature(p, par) != s0 {
		t.Error("worker count changed the signature")
	}
}
