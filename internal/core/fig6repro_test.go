package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
)

// TestOptimizeStemOnTinyRegisterArch reproduces the Fig. 6 failure mode:
// the 7×7 stride-2 ResNet stem must be mappable onto an architecture
// with a 4-word register file (the energy-dominant layer's co-designed
// architecture), which requires the level-1 kernel-loop placement and a
// relaxation-slackened GP capacity bound.
func TestOptimizeStemOnTinyRegisterArch(t *testing.T) {
	tiny := arch.Arch{Name: "domarch", PEs: 896, Regs: 4, SRAM: 8192, Tech: arch.Tech45nm()}
	p := testLayer(t, "resnet18_L1")
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &tiny})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Best.Report
	if !rep.Valid() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.RegFootprint > 4 {
		t.Fatalf("register footprint %v > 4", rep.RegFootprint)
	}
}
