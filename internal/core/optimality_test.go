package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/mapper"
	"repro/internal/model"
)

// TestOptimalityAgainstExhaustive validates the paper's central claim —
// that the GP formulation + integerization finds (near-)optimal designs
// — by comparing Thistle against a complete enumeration of the mapping
// space on problems small enough to enumerate. Thistle must come within
// a few percent of the true optimum on every case and criterion.
func TestOptimalityAgainstExhaustive(t *testing.T) {
	cases := []struct {
		name string
		prob func() (*loopnest.Problem, error)
		a    arch.Arch
	}{
		{
			name: "matmul8",
			prob: func() (*loopnest.Problem, error) { return loopnest.MatMul(8, 8, 8), nil },
			a:    arch.Arch{Name: "t", PEs: 16, Regs: 64, SRAM: 512, Tech: arch.Tech45nm()},
		},
		{
			name: "matmul_16x8x4",
			prob: func() (*loopnest.Problem, error) { return loopnest.MatMul(16, 8, 4), nil },
			a:    arch.Arch{Name: "t", PEs: 8, Regs: 48, SRAM: 384, Tech: arch.Tech45nm()},
		},
		{
			name: "conv_tiny",
			prob: func() (*loopnest.Problem, error) {
				return loopnest.Conv2D(loopnest.Conv2DConfig{
					Name: "tiny", N: 1, K: 4, C: 4, H: 6, W: 6, R: 3, S: 3,
					StrideX: 1, StrideY: 1,
				})
			},
			a: arch.Arch{Name: "t", PEs: 16, Regs: 128, SRAM: 1024, Tech: arch.Tech45nm()},
		},
	}
	for _, tc := range cases {
		for _, crit := range []model.Criterion{model.MinEnergy, model.MinDelay} {
			t.Run(tc.name+"/"+crit.String(), func(t *testing.T) {
				p, err := tc.prob()
				if err != nil {
					t.Fatal(err)
				}
				// Ground truth: complete enumeration. The exhaustive
				// oracle uses the register placement of the kernel loops,
				// so pin Thistle to the same sub-space for a fair
				// optimality comparison.
				exh, err := mapper.Exhaustive(p, &tc.a, crit, dataflow.StandardOptions{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := Optimize(p, Options{
					Criterion:    crit,
					Mode:         FixedArch,
					Arch:         &tc.a,
					RSPlacements: []dataflow.RSPlacement{dataflow.RSAtRegister},
					NDiv:         3,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := model.Score(crit, res.Best.Report)
				want := model.Score(crit, exh.Report)
				t.Logf("thistle %.6g vs exhaustive optimum %.6g (ratio %.4f, %d mappings enumerated)",
					got, want, got/want, exh.Trials)
				if got < want-1e-6 {
					t.Fatalf("thistle %.6g beat the exhaustive optimum %.6g — oracle bug", got, want)
				}
				if got > 1.06*want {
					t.Fatalf("thistle %.6g more than 6%% above the true optimum %.6g", got, want)
				}
			})
		}
	}
}
