package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/solver"
)

// ErrNoDesign is returned when no feasible design point was found.
var ErrNoDesign = errors.New("core: no feasible design point")

// Options configures an Optimize run. Zero values select defaults.
type Options struct {
	// Criterion is energy or delay minimization.
	Criterion model.Criterion
	// Mode selects fixed-architecture dataflow optimization or co-design.
	Mode Mode
	// Arch is the target architecture (FixedArch) or, in CoDesign mode,
	// supplies the technology constants. Defaults to Eyeriss.
	Arch *arch.Arch
	// AreaBudget bounds the chip area in CoDesign mode. Defaults to the
	// Eyeriss-equal area of the paper's evaluation.
	AreaBudget float64
	// NDiv is the paper's n: divisor candidates per tile variable
	// (default 2).
	NDiv int
	// NPow2 is the paper's N: power-of-two candidates per capacity
	// variable (default 2).
	NPow2 int
	// MinUtilization filters fixed-arch integer candidates (default 0,
	// i.e. disabled; the paper mentions a threshold without a value).
	MinUtilization float64
	// MaxCandidates caps the integerization cross product (default 65536).
	MaxCandidates int
	// TopClasses is how many best GP class pairs are integerized
	// (default 3).
	TopClasses int
	// Parallel is the GP-solving worker count (default NumCPU).
	Parallel int
	// Nest customizes the tiling structure. Nest.RS is ignored when
	// RSPlacements is nil (the default), which tries both placements.
	Nest dataflow.StandardOptions
	// RSPlacements lists the placements of the untiled kernel loops to
	// try, keeping the best feasible design. Nil tries both the register
	// tile and the level-1 loops (layers with tiny register budgets are
	// only feasible with the latter); problems without untiled kernel
	// loops run once.
	RSPlacements []dataflow.RSPlacement
	// Solver tunes the interior-point method.
	Solver solver.Options
	// DisablePruning turns off hoist-prefix/symmetry class dedup and
	// enumerates raw permutations (for the pruning ablation).
	DisablePruning bool
	// Cache, when non-nil, memoizes whole Optimize results by content
	// signature (see SolveSignature): a repeated (problem shape ×
	// architecture × options) request returns the cached design point
	// without formulating or solving anything, and concurrent requests
	// for the same signature collapse onto a single solve. A cache
	// attached to the context via ContextWithCache is used when this
	// field is nil.
	Cache *SolveCache
}

func (o Options) withDefaults() Options {
	if o.Arch == nil {
		e := arch.Eyeriss()
		o.Arch = &e
	}
	if o.AreaBudget == 0 {
		o.AreaBudget = arch.EyerissAreaBudget()
	}
	if o.NDiv == 0 {
		o.NDiv = 2
		if o.Criterion != model.MinEnergy {
			// Delay (and EDP) quality hinges on hitting the exact
			// PE-maximizing divisor combinations, which a width-2 ladder
			// around the relaxed solution can miss.
			o.NDiv = 3
		}
	}
	if o.NPow2 == 0 {
		o.NPow2 = 2
	}
	if o.MaxCandidates == 0 {
		// Evaluations are microseconds each; a generous cap lets the
		// width-3 delay ladder cover its full cross product.
		o.MaxCandidates = 1 << 20
	}
	if o.TopClasses == 0 {
		o.TopClasses = 3
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.NumCPU()
	}
	if o.Solver.Tol == 0 {
		// The integerization step only needs ~2 significant digits from
		// the relaxation; a loose gap keeps thousands of solves fast.
		o.Solver.Tol = 1e-6
	}
	return o
}

// DesignPoint is one complete optimized design.
type DesignPoint struct {
	Arch    arch.Arch
	Mapping *model.Mapping
	Report  *model.Report
	// PermL1 and PermSRAM are the copy-level loop orders (outer-to-inner).
	PermL1, PermSRAM []int
	// NestOptions records the tiling structure the mapping was built for
	// (notably the kernel-loop placement); required to re-evaluate or
	// export the mapping.
	NestOptions dataflow.StandardOptions
	// GPObjective is the relaxed optimum of the geometric program the
	// point was integerized from.
	GPObjective float64
}

// Stats summarizes the search effort. PairsSolved, Candidates, and the
// related counters always describe the search that produced the
// returned design — even when that search happened in an earlier run
// and the result was served from a SolveCache. FreshSolves and
// FromCache describe what this invocation actually did, so cached runs
// never report a misleading "0 GPs solved" (nor pretend to have solved
// GPs they reused).
type Stats struct {
	ClassesL1, ClassesSRAM int
	// PairsSolved is the total number of permutation-pair GPs behind
	// the returned design (deduplicated search effort).
	PairsSolved int
	Infeasible  int
	Suboptimal  int
	Candidates  int
	NewtonIters int
	// FreshSolves is the number of GPs this invocation solved itself:
	// equal to PairsSolved on a cache miss (or with caching off), 0
	// when the result came from the solve cache.
	FreshSolves int
	// FromCache marks a result served from a SolveCache. The Best
	// design point is shared with the cache — treat it as immutable.
	FromCache bool
}

// Result is the outcome of an Optimize run.
type Result struct {
	Best  *DesignPoint
	Stats Stats
}

// solvedPair records one GP solution.
type solvedPair struct {
	permL1, permSRAM []int
	x                []float64
	objective        float64
}

// Optimize runs the Thistle flow for one problem, trying each configured
// placement of the untiled kernel loops and returning the best design.
func Optimize(p *loopnest.Problem, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), p, opts)
}

// OptimizeContext is Optimize with telemetry and caching: when ctx
// carries an obs bundle (obs.NewContext), the run records a span tree
// (per RS placement, per permutation-pair GP solve with its formulate
// and phase-I/II children, integerization and model evaluation), search
// counters, and leveled progress logs. A bare context makes every hook
// a nil no-op. When a SolveCache is configured (Options.Cache or
// ContextWithCache), the run is memoized by content signature and a
// repeated request short-circuits before class enumeration and GP
// formulation; see SolveSignature for what the signature covers.
func OptimizeContext(ctx context.Context, p *loopnest.Problem, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	o := obs.FromContext(ctx)
	ctx, span := obs.StartSpan(ctx, "optimize",
		obs.String("problem", p.Name), obs.String("mode", opts.Mode.String()))
	defer span.End()
	sc := opts.Cache
	if sc == nil {
		sc = CacheFromContext(ctx)
	}
	// The run-event stream gets an optimize_start/optimize_end pair per
	// request; optimize_end carries the full row the manifest recorder
	// folds into the per-layer table (see events.Schema).
	emit := o.EventsEnabled()
	var sig cache.Signature
	haveSig := sc != nil || emit
	if haveSig {
		sig = solveKey(p, opts).Signature()
	}
	var t0 time.Time
	if emit {
		t0 = time.Now()
		o.Emit(obs.EvOptimizeStart, map[string]any{
			"problem":   p.Name,
			"sig":       sig.Short(),
			"mode":      opts.Mode.String(),
			"criterion": opts.Criterion.String(),
		})
	}
	finish := func(res *Result, err error) (*Result, error) {
		if emit {
			f := map[string]any{
				"problem": p.Name,
				"sig":     sig.Short(),
				"wall_us": time.Since(t0).Microseconds(),
			}
			if err != nil || res == nil || res.Best == nil {
				f["status"] = "error"
				if err != nil {
					f["error"] = err.Error()
				}
			} else {
				rep := res.Best.Report
				f["status"] = "ok"
				f["energy_pj"] = rep.Energy
				f["cycles"] = rep.Cycles
				f["edp"] = rep.Energy * rep.Cycles
				f["energy_per_mac"] = rep.EnergyPerMAC
				f["ipc"] = rep.IPC
				f["pairs_solved"] = res.Stats.PairsSolved
				f["fresh_solves"] = res.Stats.FreshSolves
				f["candidates"] = res.Stats.Candidates
				f["from_cache"] = res.Stats.FromCache
			}
			o.Emit(obs.EvOptimizeEnd, f)
		}
		return res, err
	}
	if sc == nil {
		return finish(optimizePlacements(ctx, p, opts, o))
	}
	span.Annotate(obs.String("cache_sig", sig.Short()))
	res, hit, err := sc.Do(sig, func() (*Result, error) {
		return optimizePlacements(ctx, p, opts, o)
	})
	if err != nil {
		return finish(nil, err)
	}
	if !hit {
		span.SetAttr("cache", "miss")
		return finish(res, nil)
	}
	span.SetAttr("cache", "hit")
	if o.Enabled(obs.Info) {
		o.Logf(obs.Info, "optimize %s: served from cache (sig %s, %d GPs reused)",
			p.Name, sig.Short(), res.Stats.PairsSolved)
	}
	// Hand back a copy of the Result shell so the caller sees this
	// invocation's effort (zero fresh solves) without mutating the
	// cached entry; the design point itself is shared and immutable.
	out := *res
	out.Stats.FreshSolves = 0
	out.Stats.FromCache = true
	return finish(&out, nil)
}

// optimizePlacements runs the uncached flow: one optimizeOne pass per
// configured RS placement, keeping the best design and accumulating
// search-effort stats across placements.
func optimizePlacements(ctx context.Context, p *loopnest.Problem, opts Options, o *obs.Obs) (*Result, error) {
	placements := opts.RSPlacements
	if placements == nil {
		placements = []dataflow.RSPlacement{dataflow.RSAtRegister}
		if hasUntiledKernelLoops(p) {
			placements = append(placements, dataflow.RSAtLevel1)
		}
	}
	if o.Enabled(obs.Info) {
		o.Logf(obs.Info, "optimize %s: criterion=%v mode=%v placements=%d",
			p.Name, opts.Criterion, opts.Mode, len(placements))
	}
	var best *Result
	var combined Stats
	var firstErr error
	for _, rs := range placements {
		po := opts
		po.Nest.RS = rs
		pctx, pspan := obs.StartSpan(ctx, "rs-placement", obs.String("rs", rs.String()))
		res, err := optimizeOne(pctx, p, po)
		if res != nil {
			// Accumulate search effort across placements — including
			// placements that found no design but still solved GPs —
			// instead of overwriting with the best placement's counts.
			combined.ClassesL1 += res.Stats.ClassesL1
			combined.ClassesSRAM += res.Stats.ClassesSRAM
			combined.PairsSolved += res.Stats.PairsSolved
			combined.Candidates += res.Stats.Candidates
			combined.NewtonIters += res.Stats.NewtonIters
			combined.Infeasible += res.Stats.Infeasible
			combined.Suboptimal += res.Stats.Suboptimal
			pspan.Annotate(
				obs.Int("classes_l1", res.Stats.ClassesL1),
				obs.Int("classes_sram", res.Stats.ClassesSRAM),
				obs.Int("pairs_solved", res.Stats.PairsSolved),
			)
		}
		pspan.End()
		if err != nil {
			if o.Enabled(obs.Debug) {
				o.Logf(obs.Debug, "optimize %s: placement %v failed: %v", p.Name, rs, err)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || model.Score(po.Criterion, res.Best.Report) < model.Score(po.Criterion, best.Best.Report) {
			best = res
		}
	}
	if best == nil {
		return nil, firstErr
	}
	combined.FreshSolves = combined.PairsSolved
	best.Stats = combined
	if o.Enabled(obs.Info) {
		o.Logf(obs.Info, "optimize %s: done, %d GPs solved (%d newton iters), %d integer candidates",
			p.Name, combined.PairsSolved, combined.NewtonIters, combined.Candidates)
	}
	return best, nil
}

// hasUntiledKernelLoops reports whether the problem has kernel iterators
// (named r/s) with extent > 1, i.e. whether the two RS placements differ.
func hasUntiledKernelLoops(p *loopnest.Problem) bool {
	for _, name := range []string{"r", "s"} {
		if i := p.IterIndex(name); i >= 0 && p.Iters[i].Extent > 1 {
			return true
		}
	}
	return false
}

// optimizeOne runs the flow for one fixed nest configuration.
func optimizeOne(ctx context.Context, p *loopnest.Problem, opts Options) (*Result, error) {
	if err := opts.Arch.Validate(); err != nil {
		return nil, err
	}
	o := obs.FromContext(ctx)
	tracing := o.TracingEnabled()
	parent := obs.SpanFromContext(ctx)
	nest, err := dataflow.StandardNest(p, opts.Nest)
	if err != nil {
		return nil, err
	}

	// Architecture variables (registered on the shared VarSet so they can
	// appear in the same GP as the trip counts), and the delay variable.
	av := &archVars{mode: opts.Mode, tech: opts.Arch.Tech, fixed: *opts.Arch, budget: opts.AreaBudget}
	if opts.Mode == CoDesign {
		av.varR = nest.Vars.NewVar("arch_R")
		av.varS = nest.Vars.NewVar("arch_S")
		av.varP = nest.Vars.NewVar("arch_P")
	}
	varT := nest.Vars.NewVar("delay_T")

	// Permutation classes at both copy levels.
	enumSpan := o.StartSpan(parent, "enumerate-classes")
	var syms []dataflow.Involution
	if !opts.DisablePruning {
		syms = dataflow.SymmetricInvolutions(p)
	}
	classesL1, err := enumerate(nest, dataflow.StandardLevelL1, syms, opts.DisablePruning)
	if err != nil {
		enumSpan.End()
		return nil, err
	}
	classesSRAM, err := enumerate(nest, dataflow.StandardLevelSRAM, syms, opts.DisablePruning)
	if err != nil {
		enumSpan.End()
		return nil, err
	}
	if enumSpan != nil {
		enumSpan.Annotate(obs.Int("classes_l1", len(classesL1)), obs.Int("classes_sram", len(classesSRAM)))
		enumSpan.End()
	}
	if o.MetricsEnabled() {
		// Per-placement class counts, plus running totals across the run.
		rs := opts.Nest.RS.String()
		o.Gauge("core.classes_l1." + rs).Set(int64(len(classesL1)))
		o.Gauge("core.classes_sram." + rs).Set(int64(len(classesSRAM)))
		o.Counter("core.classes_l1").Add(int64(len(classesL1)))
		o.Counter("core.classes_sram").Add(int64(len(classesSRAM)))
	}
	if o.Enabled(obs.Debug) {
		o.Logf(obs.Debug, "optimize %s: placement %v: %d x %d permutation classes",
			p.Name, opts.Nest.RS, len(classesL1), len(classesSRAM))
	}

	stats := Stats{ClassesL1: len(classesL1), ClassesSRAM: len(classesSRAM)}

	// Solve one GP per class pair, in parallel. When every strict GP is
	// infeasible (tiny capacities plus the posynomial overestimate), a
	// second pass loosens the capacity bounds by the relaxation's
	// worst-case slack (see buildGP).
	type job struct{ l1, sram []int }
	jobs := make([]job, 0, len(classesL1)*len(classesSRAM))
	for _, c1 := range classesL1 {
		for _, c3 := range classesSRAM {
			jobs = append(jobs, job{c1.Perm, c3.Perm})
		}
	}
	// Hoisted metric handles: nil no-ops when telemetry is off, so the
	// worker loop pays only nil checks.
	pairsC := o.Counter("core.pairs_solved")
	infeasC := o.Counter("core.gp_infeasible")
	subC := o.Counter("core.gp_suboptimal")
	solvePass := func(capSlack bool) ([]solvedPair, error) {
		passSpan := o.StartSpan(parent, "gp-solve-pass")
		if passSpan != nil {
			passSpan.Annotate(obs.Int("jobs", len(jobs)), obs.Attr{Key: "cap_slack", Value: capSlack})
		}
		defer passSpan.End()
		var (
			mu     sync.Mutex
			solved []solvedPair
			wg     sync.WaitGroup
		)
		next := make(chan job)
		workers := opts.Parallel
		if workers > len(jobs) {
			workers = len(jobs)
		}
		var firstErr error
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range next {
					var pairSpan *obs.Span
					if tracing {
						pairSpan = o.StartSpan(passSpan, "gp-pair",
							obs.Stringer("perm_l1", j.l1), obs.Stringer("perm_sram", j.sram))
					}
					perms := dataflow.StandardPerms(j.l1, j.sram)
					fspan := o.StartSpan(pairSpan, "formulate")
					f, err := buildGP(nest, perms, av, opts.Criterion, varT, capSlack)
					fspan.End()
					if err != nil {
						pairSpan.End()
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						continue
					}
					sopts := opts.Solver
					sopts.Obs = o
					sopts.Span = pairSpan
					res, err := f.solve(sopts)
					pairsC.Inc()
					mu.Lock()
					stats.PairsSolved++
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
					} else {
						switch res.Status {
						case solver.Infeasible:
							stats.Infeasible++
							infeasC.Inc()
						case solver.Suboptimal:
							stats.Suboptimal++
							subC.Inc()
							fallthrough
						case solver.Optimal:
							stats.NewtonIters += res.Newton
							solved = append(solved, solvedPair{
								permL1: j.l1, permSRAM: j.sram,
								x: res.X, objective: res.Objective,
							})
						}
					}
					mu.Unlock()
					if pairSpan != nil {
						if err == nil {
							pairSpan.Annotate(
								obs.String("status", res.Status.String()),
								obs.Int("newton", res.Newton),
								obs.Float("objective", res.Objective),
							)
						}
						pairSpan.End()
					}
				}
			}()
		}
		for _, j := range jobs {
			next <- j
		}
		close(next)
		wg.Wait()
		return solved, firstErr
	}
	solved, firstErr := solvePass(false)
	if firstErr != nil {
		return nil, firstErr
	}
	if len(solved) == 0 {
		solved, firstErr = solvePass(true)
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if len(solved) == 0 {
		return &Result{Stats: stats}, fmt.Errorf("%w: all %d permutation classes infeasible", ErrNoDesign, len(jobs))
	}

	// Integerize the best few class pairs and evaluate with the model.
	// Ties on the objective are broken by permutation order so the
	// selected top set — and therefore the final design — is identical
	// across runs regardless of worker completion order (cached and
	// uncached runs must produce byte-identical results).
	sort.Slice(solved, func(i, j int) bool {
		//tlvet:ignore floateq -- sort comparator: tolerance-based equality breaks strict weak ordering
		if solved[i].objective != solved[j].objective {
			return solved[i].objective < solved[j].objective
		}
		if c := slices.Compare(solved[i].permL1, solved[j].permL1); c != 0 {
			return c < 0
		}
		return slices.Compare(solved[i].permSRAM, solved[j].permSRAM) < 0
	})
	top := opts.TopClasses
	if top > len(solved) {
		top = len(solved)
	}
	ev := model.NewEvaluator(nest)
	iopt := intOptions{
		nDiv:    opts.NDiv,
		nPow2:   opts.NPow2,
		minUtil: opts.MinUtilization,
		maxCand: opts.MaxCandidates,
	}
	candC := o.Counter("core.int_candidates")
	// integerizeOne converts one relaxed solution to the best integer
	// design, recording an integerize span whose model-eval child covers
	// the streamed candidate evaluation.
	integerizeOne := func(x []float64, sp solvedPair) (*candidate, *model.Report, int) {
		var ispan *obs.Span
		if tracing {
			ispan = o.StartSpan(parent, "integerize", obs.Float("gp_objective", sp.objective))
		}
		evalSpan := o.StartSpan(ispan, "model-eval")
		perms := dataflow.StandardPerms(sp.permL1, sp.permSRAM)
		c, rep, visited := searchIntegerCandidates(ev, nest, perms, x, av, iopt, opts.Criterion)
		candC.Add(int64(visited))
		if evalSpan != nil {
			evalSpan.SetAttr("candidates", int64(visited))
			evalSpan.End()
			ispan.SetAttr("found", c != nil)
			ispan.End()
		}
		return c, rep, visited
	}
	var best *DesignPoint
	for _, sp := range solved[:top] {
		c, rep, visited := integerizeOne(sp.x, sp)
		stats.Candidates += visited
		if c == nil {
			continue
		}
		if best == nil || model.Score(opts.Criterion, rep) < model.Score(opts.Criterion, best.Report) {
			best = &DesignPoint{
				Arch:        c.archCfg,
				Mapping:     c.mapping,
				Report:      rep,
				PermL1:      sp.permL1,
				PermSRAM:    sp.permSRAM,
				NestOptions: opts.Nest,
				GPObjective: sp.objective,
			}
		}
	}
	if best == nil {
		// Fallback ladder: on tight architectures the divisor ladder
		// around the relaxed solution can miss every exactly-feasible
		// integer point. Shrink the solution geometrically toward the
		// minimal (all-ones) tiling — x^λ stays ≥ 1 — and retry.
		for _, lambda := range []float64{0.5, 0.25, 0} {
			for _, sp := range solved[:top] {
				shrunk := append([]float64(nil), sp.x...)
				for i := range shrunk {
					if shrunk[i] > 1 {
						shrunk[i] = math.Pow(shrunk[i], lambda)
					}
				}
				c, rep, visited := integerizeOne(shrunk, sp)
				stats.Candidates += visited
				if c == nil {
					continue
				}
				if best == nil || model.Score(opts.Criterion, rep) < model.Score(opts.Criterion, best.Report) {
					best = &DesignPoint{
						Arch:        c.archCfg,
						Mapping:     c.mapping,
						Report:      rep,
						PermL1:      sp.permL1,
						PermSRAM:    sp.permSRAM,
						NestOptions: opts.Nest,
						GPObjective: sp.objective,
					}
				}
			}
			if best != nil {
				break
			}
		}
	}
	if best == nil {
		return &Result{Stats: stats}, fmt.Errorf("%w: no integer candidate satisfied the constraints", ErrNoDesign)
	}
	return &Result{Best: best, Stats: stats}, nil
}

// enumerate returns permutation classes, or every raw permutation when
// pruning is disabled (ablation mode).
func enumerate(nest *dataflow.Nest, level int, syms []dataflow.Involution, raw bool) ([]dataflow.PermClass, error) {
	if !raw {
		return nest.EnumerateClasses(level, syms)
	}
	// Raw mode: every permutation of the active set becomes its own
	// "class".
	lvl := nest.Levels[level]
	var out []dataflow.PermClass
	permuteAll(append([]int(nil), lvl.Active...), func(p []int) {
		out = append(out, dataflow.PermClass{Perm: append([]int(nil), p...), Size: 1})
	})
	return out, nil
}

func permuteAll(s []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(s)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				s[i], s[k-1] = s[k-1], s[i]
			} else {
				s[0], s[k-1] = s[k-1], s[0]
			}
		}
	}
	if len(s) == 0 {
		fn(s)
		return
	}
	rec(len(s))
}

// EvaluateOn re-evaluates a design point's mapping on a different
// architecture (used by the single-architecture-for-all-layers
// experiments, where a layer's mapping must be re-optimized for a fixed
// architecture chosen from another layer). The nest is rebuilt from the
// design point's recorded options.
func EvaluateOn(p *loopnest.Problem, a *arch.Arch, dp *DesignPoint) (*model.Report, error) {
	nest, err := dataflow.StandardNest(p, dp.NestOptions)
	if err != nil {
		return nil, err
	}
	ev := model.NewEvaluator(nest)
	return ev.Evaluate(a, dp.Mapping)
}

// NestFor rebuilds the nest a design point's mapping refers to (for spec
// export or inspection).
func NestFor(p *loopnest.Problem, dp *DesignPoint) (*dataflow.Nest, error) {
	return dataflow.StandardNest(p, dp.NestOptions)
}

// SolveCache memoizes complete Optimize results keyed by content
// signature. Share one across layers, experiments, and runs (via the
// persistent tier) to deduplicate repeated solves: CNNs reuse a handful
// of layer shapes, so whole-network sweeps hit the cache heavily.
type SolveCache = cache.Cache[*Result]

// NewSolveCache builds a solve cache; see cache.Options for the
// capacity, persistence, and telemetry knobs.
func NewSolveCache(opts cache.Options) *SolveCache {
	if opts.Component == "" {
		opts.Component = "optimize"
	}
	return cache.New[*Result](opts)
}

type cacheCtxKey struct{}

// ContextWithCache attaches a solve cache to the context, where
// OptimizeContext finds it when Options.Cache is nil. A nil cache
// returns the context unchanged.
func ContextWithCache(ctx context.Context, c *SolveCache) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, cacheCtxKey{}, c)
}

// CacheFromContext returns the attached solve cache, or nil.
func CacheFromContext(ctx context.Context) *SolveCache {
	c, _ := ctx.Value(cacheCtxKey{}).(*SolveCache)
	return c
}

// SolveSignature returns the content signature OptimizeContext memoizes
// under: a stable hash of the canonicalized problem (shape and kernel
// roles, not names), the architecture's configuration and technology
// constants (not its name), and every result-affecting option —
// criterion, mode, area budget, integerization widths, candidate caps,
// nest structure, RS placements, pruning ablation, and solver
// tolerances. Worker counts and telemetry handles are excluded: they
// cannot change the result. Options are resolved to their defaults
// first, so an explicit default and a zero value hash equal. Callers
// use it to group problems that a shared cache would deduplicate.
func SolveSignature(p *loopnest.Problem, opts Options) cache.Signature {
	return solveKey(p, opts.withDefaults()).Signature()
}

// solveKey flattens resolved options into a cache key. opts must
// already have defaults applied.
func solveKey(p *loopnest.Problem, opts Options) cache.Key {
	s := opts.Solver
	return cache.Key{
		Component:    "optimize",
		Problem:      p,
		Arch:         opts.Arch,
		Criterion:    opts.Criterion,
		Nest:         opts.Nest,
		RSPlacements: opts.RSPlacements,
		Params: []cache.Param{
			cache.ParamString("mode", opts.Mode.String()),
			cache.ParamFloat("area_budget", opts.AreaBudget),
			cache.ParamInt("ndiv", int64(opts.NDiv)),
			cache.ParamInt("npow2", int64(opts.NPow2)),
			cache.ParamFloat("min_utilization", opts.MinUtilization),
			cache.ParamInt("max_candidates", int64(opts.MaxCandidates)),
			cache.ParamInt("top_classes", int64(opts.TopClasses)),
			cache.ParamBool("disable_pruning", opts.DisablePruning),
			cache.ParamFloat("solver.tol", s.Tol),
			cache.ParamFloat("solver.newton_tol", s.NewtonTol),
			cache.ParamFloat("solver.mu", s.Mu),
			cache.ParamFloat("solver.t0", s.T0),
			cache.ParamInt("solver.max_newton", int64(s.MaxNewton)),
			cache.ParamInt("solver.max_centering", int64(s.MaxCentering)),
			cache.ParamFloat("solver.box", s.Box),
		},
	}
}
