// Package core implements the Thistle optimizer of the paper: for a
// loop-nest problem it enumerates pruned tile-loop permutation classes,
// generates one constrained geometric program per class combination
// (dataflow-only for a fixed architecture, or architecture-dataflow
// co-design under an area budget), solves them with the interior-point
// backend, converts the real solutions to integer mappings via
// divisor-ladder candidate generation, evaluates the candidates with the
// Timeloop-substitute model, and returns the best design point.
//
// The staged flow itself lives in internal/pipeline (Enumerate →
// Formulate → Solve → Integerize → Validate → Select, sharing one
// bounded scheduler); this package is the stable facade that layers
// result caching and the run-event stream on top of it. The optimizer's
// option, result, and error types are aliases of the pipeline's, so the
// two packages' values interchange freely.
package core

import (
	"context"
	"time"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// ErrNoDesign is returned when no feasible design point was found.
var ErrNoDesign = pipeline.ErrNoDesign

// Mode selects between dataflow-only optimization on a fixed architecture
// and full architecture-dataflow co-design.
type Mode = pipeline.Mode

const (
	// FixedArch optimizes the dataflow for a given architecture (the
	// paper's Figs. 4 and 7 setting).
	FixedArch = pipeline.FixedArch
	// CoDesign additionally optimizes P, R, and S under an area budget
	// (Figs. 5, 6, and 8).
	CoDesign = pipeline.CoDesign
)

// Options configures an Optimize run. Zero values select defaults.
type Options = pipeline.Options

// DesignPoint is one complete optimized design.
type DesignPoint = pipeline.DesignPoint

// Stats summarizes the search effort behind a Result.
type Stats = pipeline.Stats

// Result is the outcome of an Optimize run.
type Result = pipeline.Result

// Optimize runs the Thistle flow for one problem, trying each configured
// placement of the untiled kernel loops and returning the best design.
func Optimize(p *loopnest.Problem, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), p, opts)
}

// OptimizeContext is Optimize with telemetry and caching: when ctx
// carries an obs bundle (obs.NewContext), the run records a span tree
// (per RS placement, per permutation-pair GP solve with its formulate
// and phase-I/II children, integerization and model evaluation), search
// counters, and leveled progress logs. A bare context makes every hook
// a nil no-op. When a SolveCache is configured (Options.Cache or
// ContextWithCache), the run is memoized by content signature and a
// repeated request short-circuits before class enumeration and GP
// formulation; see SolveSignature for what the signature covers.
//
// The search itself is delegated to pipeline.Execute. A scheduler
// attached to ctx (pipeline.ContextWithScheduler) bounds this call's
// leaf compute jointly with every other optimization sharing it;
// otherwise the run gets its own bound of Options.Parallel.
func OptimizeContext(ctx context.Context, p *loopnest.Problem, opts Options) (*Result, error) {
	opts = opts.WithDefaults()
	o := obs.FromContext(ctx)
	ctx, span := obs.StartSpan(ctx, "optimize",
		obs.String("problem", p.Name), obs.String("mode", opts.Mode.String()))
	defer span.End()
	sc := opts.Cache
	if sc == nil {
		sc = CacheFromContext(ctx)
	}
	// The run-event stream gets an optimize_start/optimize_end pair per
	// request; optimize_end carries the full row the manifest recorder
	// folds into the per-layer table (see events.Schema).
	emit := o.EventsEnabled()
	var sig cache.Signature
	haveSig := sc != nil || emit
	if haveSig {
		sig = solveKey(p, opts).Signature()
	}
	var t0 time.Time
	if emit {
		//tlvet:ignore wallclock -- telemetry: wall_us on optimize events; never feeds solve results
		t0 = time.Now()
		o.Emit(obs.EvOptimizeStart, map[string]any{
			"problem":   p.Name,
			"sig":       sig.Short(),
			"mode":      opts.Mode.String(),
			"criterion": opts.Criterion.String(),
		})
	}
	finish := func(res *Result, err error) (*Result, error) {
		if emit {
			f := map[string]any{
				"problem": p.Name,
				"sig":     sig.Short(),
				//tlvet:ignore wallclock -- telemetry: wall_us on optimize events; never feeds solve results
				"wall_us": time.Since(t0).Microseconds(),
			}
			if err != nil || res == nil || res.Best == nil {
				f["status"] = "error"
				if err != nil {
					f["error"] = err.Error()
				}
			} else {
				rep := res.Best.Report
				f["status"] = "ok"
				f["energy_pj"] = rep.Energy
				f["cycles"] = rep.Cycles
				f["edp"] = rep.Energy * rep.Cycles
				f["energy_per_mac"] = rep.EnergyPerMAC
				f["ipc"] = rep.IPC
				f["pairs_solved"] = res.Stats.PairsSolved
				f["fresh_solves"] = res.Stats.FreshSolves
				f["candidates"] = res.Stats.Candidates
				f["from_cache"] = res.Stats.FromCache
			}
			o.Emit(obs.EvOptimizeEnd, f)
		}
		return res, err
	}
	if sc == nil {
		return finish(pipeline.Execute(ctx, p, opts))
	}
	span.Annotate(obs.String("cache_sig", sig.Short()))
	res, hit, err := sc.Do(sig, func() (*Result, error) {
		return pipeline.Execute(ctx, p, opts)
	})
	if err != nil {
		return finish(nil, err)
	}
	if !hit {
		span.SetAttr("cache", "miss")
		return finish(res, nil)
	}
	span.SetAttr("cache", "hit")
	if o.Enabled(obs.Info) {
		o.Logf(obs.Info, "optimize %s: served from cache (sig %s, %d GPs reused)",
			p.Name, sig.Short(), res.Stats.PairsSolved)
	}
	// Hand back a copy of the Result shell so the caller sees this
	// invocation's effort (zero fresh solves) without mutating the
	// cached entry; the design point itself is shared and immutable.
	out := *res
	out.Stats.FreshSolves = 0
	out.Stats.FromCache = true
	return finish(&out, nil)
}

// EvaluateOn re-evaluates a design point's mapping on a different
// architecture (used by the single-architecture-for-all-layers
// experiments, where a layer's mapping must be re-optimized for a fixed
// architecture chosen from another layer). The nest is rebuilt from the
// design point's recorded options.
func EvaluateOn(p *loopnest.Problem, a *arch.Arch, dp *DesignPoint) (*model.Report, error) {
	nest, err := dataflow.StandardNest(p, dp.NestOptions)
	if err != nil {
		return nil, err
	}
	ev := model.NewEvaluator(nest)
	return ev.Evaluate(a, dp.Mapping)
}

// NestFor rebuilds the nest a design point's mapping refers to (for spec
// export or inspection).
func NestFor(p *loopnest.Problem, dp *DesignPoint) (*dataflow.Nest, error) {
	return dataflow.StandardNest(p, dp.NestOptions)
}

// SolveCache memoizes complete Optimize results keyed by content
// signature. Share one across layers, experiments, and runs (via the
// persistent tier) to deduplicate repeated solves: CNNs reuse a handful
// of layer shapes, so whole-network sweeps hit the cache heavily.
type SolveCache = cache.Cache[*Result]

// NewSolveCache builds a solve cache; see cache.Options for the
// capacity, persistence, and telemetry knobs.
func NewSolveCache(opts cache.Options) *SolveCache {
	if opts.Component == "" {
		opts.Component = "optimize"
	}
	return cache.New[*Result](opts)
}

type cacheCtxKey struct{}

// ContextWithCache attaches a solve cache to the context, where
// OptimizeContext finds it when Options.Cache is nil. A nil cache
// returns the context unchanged.
func ContextWithCache(ctx context.Context, c *SolveCache) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, cacheCtxKey{}, c)
}

// CacheFromContext returns the attached solve cache, or nil.
func CacheFromContext(ctx context.Context) *SolveCache {
	c, _ := ctx.Value(cacheCtxKey{}).(*SolveCache)
	return c
}

// SolveSignature returns the content signature OptimizeContext memoizes
// under: a stable hash of the canonicalized problem (shape and kernel
// roles, not names), the architecture's configuration and technology
// constants (not its name), and every result-affecting option —
// criterion, mode, area budget, integerization widths, candidate caps,
// nest structure, RS placements, pruning ablation, and solver
// tolerances. Worker counts and telemetry handles are excluded: they
// cannot change the result. Options are resolved to their defaults
// first, so an explicit default and a zero value hash equal. Callers
// use it to group problems that a shared cache would deduplicate.
func SolveSignature(p *loopnest.Problem, opts Options) cache.Signature {
	return solveKey(p, opts.WithDefaults()).Signature()
}

// solveKey flattens resolved options into a cache key. opts must
// already have defaults applied.
func solveKey(p *loopnest.Problem, opts Options) cache.Key {
	s := opts.Solver
	return cache.Key{
		Component:    "optimize",
		Problem:      p,
		Arch:         opts.Arch,
		Criterion:    opts.Criterion,
		Nest:         opts.Nest,
		RSPlacements: opts.RSPlacements,
		Params: []cache.Param{
			cache.ParamString("mode", opts.Mode.String()),
			cache.ParamFloat("area_budget", opts.AreaBudget),
			cache.ParamInt("ndiv", int64(opts.NDiv)),
			cache.ParamInt("npow2", int64(opts.NPow2)),
			cache.ParamFloat("min_utilization", opts.MinUtilization),
			cache.ParamInt("max_candidates", int64(opts.MaxCandidates)),
			cache.ParamInt("top_classes", int64(opts.TopClasses)),
			cache.ParamBool("disable_pruning", opts.DisablePruning),
			cache.ParamFloat("solver.tol", s.Tol),
			cache.ParamFloat("solver.newton_tol", s.NewtonTol),
			cache.ParamFloat("solver.mu", s.Mu),
			cache.ParamFloat("solver.t0", s.T0),
			cache.ParamInt("solver.max_newton", int64(s.MaxNewton)),
			cache.ParamInt("solver.max_centering", int64(s.MaxCentering)),
			cache.ParamFloat("solver.box", s.Box),
		},
	}
}
