package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/solver"
)

// ErrNoDesign is returned when no feasible design point was found.
var ErrNoDesign = errors.New("core: no feasible design point")

// Options configures an Optimize run. Zero values select defaults.
type Options struct {
	// Criterion is energy or delay minimization.
	Criterion model.Criterion
	// Mode selects fixed-architecture dataflow optimization or co-design.
	Mode Mode
	// Arch is the target architecture (FixedArch) or, in CoDesign mode,
	// supplies the technology constants. Defaults to Eyeriss.
	Arch *arch.Arch
	// AreaBudget bounds the chip area in CoDesign mode. Defaults to the
	// Eyeriss-equal area of the paper's evaluation.
	AreaBudget float64
	// NDiv is the paper's n: divisor candidates per tile variable
	// (default 2).
	NDiv int
	// NPow2 is the paper's N: power-of-two candidates per capacity
	// variable (default 2).
	NPow2 int
	// MinUtilization filters fixed-arch integer candidates (default 0,
	// i.e. disabled; the paper mentions a threshold without a value).
	MinUtilization float64
	// MaxCandidates caps the integerization cross product (default 65536).
	MaxCandidates int
	// TopClasses is how many best GP class pairs are integerized
	// (default 3).
	TopClasses int
	// Parallel is the GP-solving worker count (default NumCPU).
	Parallel int
	// Nest customizes the tiling structure. Nest.RS is ignored when
	// RSPlacements is nil (the default), which tries both placements.
	Nest dataflow.StandardOptions
	// RSPlacements lists the placements of the untiled kernel loops to
	// try, keeping the best feasible design. Nil tries both the register
	// tile and the level-1 loops (layers with tiny register budgets are
	// only feasible with the latter); problems without untiled kernel
	// loops run once.
	RSPlacements []dataflow.RSPlacement
	// Solver tunes the interior-point method.
	Solver solver.Options
	// DisablePruning turns off hoist-prefix/symmetry class dedup and
	// enumerates raw permutations (for the pruning ablation).
	DisablePruning bool
}

func (o Options) withDefaults() Options {
	if o.Arch == nil {
		e := arch.Eyeriss()
		o.Arch = &e
	}
	if o.AreaBudget == 0 {
		o.AreaBudget = arch.EyerissAreaBudget()
	}
	if o.NDiv == 0 {
		o.NDiv = 2
		if o.Criterion != model.MinEnergy {
			// Delay (and EDP) quality hinges on hitting the exact
			// PE-maximizing divisor combinations, which a width-2 ladder
			// around the relaxed solution can miss.
			o.NDiv = 3
		}
	}
	if o.NPow2 == 0 {
		o.NPow2 = 2
	}
	if o.MaxCandidates == 0 {
		// Evaluations are microseconds each; a generous cap lets the
		// width-3 delay ladder cover its full cross product.
		o.MaxCandidates = 1 << 20
	}
	if o.TopClasses == 0 {
		o.TopClasses = 3
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.NumCPU()
	}
	if o.Solver.Tol == 0 {
		// The integerization step only needs ~2 significant digits from
		// the relaxation; a loose gap keeps thousands of solves fast.
		o.Solver.Tol = 1e-6
	}
	return o
}

// DesignPoint is one complete optimized design.
type DesignPoint struct {
	Arch    arch.Arch
	Mapping *model.Mapping
	Report  *model.Report
	// PermL1 and PermSRAM are the copy-level loop orders (outer-to-inner).
	PermL1, PermSRAM []int
	// NestOptions records the tiling structure the mapping was built for
	// (notably the kernel-loop placement); required to re-evaluate or
	// export the mapping.
	NestOptions dataflow.StandardOptions
	// GPObjective is the relaxed optimum of the geometric program the
	// point was integerized from.
	GPObjective float64
}

// Stats summarizes the search effort.
type Stats struct {
	ClassesL1, ClassesSRAM int
	PairsSolved            int
	Infeasible             int
	Suboptimal             int
	Candidates             int
	NewtonIters            int
}

// Result is the outcome of an Optimize run.
type Result struct {
	Best  *DesignPoint
	Stats Stats
}

// solvedPair records one GP solution.
type solvedPair struct {
	permL1, permSRAM []int
	x                []float64
	objective        float64
}

// Optimize runs the Thistle flow for one problem, trying each configured
// placement of the untiled kernel loops and returning the best design.
func Optimize(p *loopnest.Problem, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	placements := opts.RSPlacements
	if placements == nil {
		placements = []dataflow.RSPlacement{dataflow.RSAtRegister}
		if hasUntiledKernelLoops(p) {
			placements = append(placements, dataflow.RSAtLevel1)
		}
	}
	var best *Result
	var combined Stats
	var firstErr error
	for _, rs := range placements {
		o := opts
		o.Nest.RS = rs
		res, err := optimizeOne(p, o)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		combined.PairsSolved += res.Stats.PairsSolved
		combined.Candidates += res.Stats.Candidates
		combined.NewtonIters += res.Stats.NewtonIters
		combined.Infeasible += res.Stats.Infeasible
		combined.Suboptimal += res.Stats.Suboptimal
		if best == nil || model.Score(o.Criterion, res.Best.Report) < model.Score(o.Criterion, best.Best.Report) {
			best = res
		}
	}
	if best == nil {
		return nil, firstErr
	}
	combined.ClassesL1 = best.Stats.ClassesL1
	combined.ClassesSRAM = best.Stats.ClassesSRAM
	best.Stats = combined
	return best, nil
}

// hasUntiledKernelLoops reports whether the problem has kernel iterators
// (named r/s) with extent > 1, i.e. whether the two RS placements differ.
func hasUntiledKernelLoops(p *loopnest.Problem) bool {
	for _, name := range []string{"r", "s"} {
		if i := p.IterIndex(name); i >= 0 && p.Iters[i].Extent > 1 {
			return true
		}
	}
	return false
}

// optimizeOne runs the flow for one fixed nest configuration.
func optimizeOne(p *loopnest.Problem, opts Options) (*Result, error) {
	if err := opts.Arch.Validate(); err != nil {
		return nil, err
	}
	nest, err := dataflow.StandardNest(p, opts.Nest)
	if err != nil {
		return nil, err
	}

	// Architecture variables (registered on the shared VarSet so they can
	// appear in the same GP as the trip counts), and the delay variable.
	av := &archVars{mode: opts.Mode, tech: opts.Arch.Tech, fixed: *opts.Arch, budget: opts.AreaBudget}
	if opts.Mode == CoDesign {
		av.varR = nest.Vars.NewVar("arch_R")
		av.varS = nest.Vars.NewVar("arch_S")
		av.varP = nest.Vars.NewVar("arch_P")
	}
	varT := nest.Vars.NewVar("delay_T")

	// Permutation classes at both copy levels.
	var syms []dataflow.Involution
	if !opts.DisablePruning {
		syms = dataflow.SymmetricInvolutions(p)
	}
	classesL1, err := enumerate(nest, dataflow.StandardLevelL1, syms, opts.DisablePruning)
	if err != nil {
		return nil, err
	}
	classesSRAM, err := enumerate(nest, dataflow.StandardLevelSRAM, syms, opts.DisablePruning)
	if err != nil {
		return nil, err
	}

	stats := Stats{ClassesL1: len(classesL1), ClassesSRAM: len(classesSRAM)}

	// Solve one GP per class pair, in parallel. When every strict GP is
	// infeasible (tiny capacities plus the posynomial overestimate), a
	// second pass loosens the capacity bounds by the relaxation's
	// worst-case slack (see buildGP).
	type job struct{ l1, sram []int }
	jobs := make([]job, 0, len(classesL1)*len(classesSRAM))
	for _, c1 := range classesL1 {
		for _, c3 := range classesSRAM {
			jobs = append(jobs, job{c1.Perm, c3.Perm})
		}
	}
	solvePass := func(capSlack bool) ([]solvedPair, error) {
		var (
			mu     sync.Mutex
			solved []solvedPair
			wg     sync.WaitGroup
		)
		next := make(chan job)
		workers := opts.Parallel
		if workers > len(jobs) {
			workers = len(jobs)
		}
		var firstErr error
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range next {
					perms := dataflow.StandardPerms(j.l1, j.sram)
					f, err := buildGP(nest, perms, av, opts.Criterion, varT, capSlack)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						continue
					}
					res, err := f.solve(opts.Solver)
					mu.Lock()
					stats.PairsSolved++
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
					} else {
						switch res.Status {
						case solver.Infeasible:
							stats.Infeasible++
						case solver.Suboptimal:
							stats.Suboptimal++
							fallthrough
						case solver.Optimal:
							stats.NewtonIters += res.Newton
							solved = append(solved, solvedPair{
								permL1: j.l1, permSRAM: j.sram,
								x: res.X, objective: res.Objective,
							})
						}
					}
					mu.Unlock()
				}
			}()
		}
		for _, j := range jobs {
			next <- j
		}
		close(next)
		wg.Wait()
		return solved, firstErr
	}
	solved, firstErr := solvePass(false)
	if firstErr != nil {
		return nil, firstErr
	}
	if len(solved) == 0 {
		solved, firstErr = solvePass(true)
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if len(solved) == 0 {
		return &Result{Stats: stats}, fmt.Errorf("%w: all %d permutation classes infeasible", ErrNoDesign, len(jobs))
	}

	// Integerize the best few class pairs and evaluate with the model.
	sort.Slice(solved, func(i, j int) bool { return solved[i].objective < solved[j].objective })
	top := opts.TopClasses
	if top > len(solved) {
		top = len(solved)
	}
	ev := model.NewEvaluator(nest)
	iopt := intOptions{
		nDiv:    opts.NDiv,
		nPow2:   opts.NPow2,
		minUtil: opts.MinUtilization,
		maxCand: opts.MaxCandidates,
	}
	var best *DesignPoint
	for _, sp := range solved[:top] {
		perms := dataflow.StandardPerms(sp.permL1, sp.permSRAM)
		c, rep, visited := searchIntegerCandidates(ev, nest, perms, sp.x, av, iopt, opts.Criterion)
		stats.Candidates += visited
		if c == nil {
			continue
		}
		if best == nil || model.Score(opts.Criterion, rep) < model.Score(opts.Criterion, best.Report) {
			best = &DesignPoint{
				Arch:        c.archCfg,
				Mapping:     c.mapping,
				Report:      rep,
				PermL1:      sp.permL1,
				PermSRAM:    sp.permSRAM,
				NestOptions: opts.Nest,
				GPObjective: sp.objective,
			}
		}
	}
	if best == nil {
		// Fallback ladder: on tight architectures the divisor ladder
		// around the relaxed solution can miss every exactly-feasible
		// integer point. Shrink the solution geometrically toward the
		// minimal (all-ones) tiling — x^λ stays ≥ 1 — and retry.
		for _, lambda := range []float64{0.5, 0.25, 0} {
			for _, sp := range solved[:top] {
				shrunk := append([]float64(nil), sp.x...)
				for i := range shrunk {
					if shrunk[i] > 1 {
						shrunk[i] = math.Pow(shrunk[i], lambda)
					}
				}
				perms := dataflow.StandardPerms(sp.permL1, sp.permSRAM)
				c, rep, visited := searchIntegerCandidates(ev, nest, perms, shrunk, av, iopt, opts.Criterion)
				stats.Candidates += visited
				if c == nil {
					continue
				}
				if best == nil || model.Score(opts.Criterion, rep) < model.Score(opts.Criterion, best.Report) {
					best = &DesignPoint{
						Arch:        c.archCfg,
						Mapping:     c.mapping,
						Report:      rep,
						PermL1:      sp.permL1,
						PermSRAM:    sp.permSRAM,
						NestOptions: opts.Nest,
						GPObjective: sp.objective,
					}
				}
			}
			if best != nil {
				break
			}
		}
	}
	if best == nil {
		return &Result{Stats: stats}, fmt.Errorf("%w: no integer candidate satisfied the constraints", ErrNoDesign)
	}
	return &Result{Best: best, Stats: stats}, nil
}

// enumerate returns permutation classes, or every raw permutation when
// pruning is disabled (ablation mode).
func enumerate(nest *dataflow.Nest, level int, syms []dataflow.Involution, raw bool) ([]dataflow.PermClass, error) {
	if !raw {
		return nest.EnumerateClasses(level, syms)
	}
	// Raw mode: every permutation of the active set becomes its own
	// "class".
	lvl := nest.Levels[level]
	var out []dataflow.PermClass
	permuteAll(append([]int(nil), lvl.Active...), func(p []int) {
		out = append(out, dataflow.PermClass{Perm: append([]int(nil), p...), Size: 1})
	})
	return out, nil
}

func permuteAll(s []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(s)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				s[i], s[k-1] = s[k-1], s[i]
			} else {
				s[0], s[k-1] = s[k-1], s[0]
			}
		}
	}
	if len(s) == 0 {
		fn(s)
		return
	}
	rec(len(s))
}

// EvaluateOn re-evaluates a design point's mapping on a different
// architecture (used by the single-architecture-for-all-layers
// experiments, where a layer's mapping must be re-optimized for a fixed
// architecture chosen from another layer). The nest is rebuilt from the
// design point's recorded options.
func EvaluateOn(p *loopnest.Problem, a *arch.Arch, dp *DesignPoint) (*model.Report, error) {
	nest, err := dataflow.StandardNest(p, dp.NestOptions)
	if err != nil {
		return nil, err
	}
	ev := model.NewEvaluator(nest)
	return ev.Evaluate(a, dp.Mapping)
}

// NestFor rebuilds the nest a design point's mapping refers to (for spec
// export or inspection).
func NestFor(p *loopnest.Problem, dp *DesignPoint) (*dataflow.Nest, error) {
	return dataflow.StandardNest(p, dp.NestOptions)
}
