package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// TestSmokeFixedArchEnergy is the first end-to-end exercise of the full
// Thistle flow: optimize a ResNet-18-like layer's dataflow on the Eyeriss
// architecture for energy. The paper's Fig. 4 band is 20–30 pJ/MAC.
func TestSmokeFixedArchEnergy(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "resnet_l6", N: 1, K: 128, C: 128, H: 28, W: 28, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stats: %+v", res.Stats)
	t.Logf("best: arch=%s pJ/MAC=%.2f IPC=%.1f perms L1=%v SRAM=%v",
		res.Best.Arch.String(), res.Best.Report.EnergyPerMAC, res.Best.Report.IPC,
		res.Best.PermL1, res.Best.PermSRAM)
	t.Logf("breakdown: %+v", res.Best.Report.Breakdown)
	if !res.Best.Report.Valid() {
		t.Fatalf("violations: %v", res.Best.Report.Violations)
	}
	if res.Best.Report.EnergyPerMAC < 20 || res.Best.Report.EnergyPerMAC > 32 {
		t.Fatalf("pJ/MAC = %v, expected in the paper's 20–30 band", res.Best.Report.EnergyPerMAC)
	}
}

// TestSmokeCoDesignEnergy: co-design at Eyeriss-equal area should reach
// the ~5 pJ/MAC regime the paper reports in Fig. 5.
func TestSmokeCoDesignEnergy(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "resnet_l6", N: 1, K: 128, C: 128, H: 28, W: 28, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: CoDesign})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stats: %+v", res.Stats)
	t.Logf("best: arch=%s pJ/MAC=%.2f", res.Best.Arch.String(), res.Best.Report.EnergyPerMAC)
	if res.Best.Arch.Area() > arch.EyerissAreaBudget() {
		t.Fatalf("area %v exceeds budget %v", res.Best.Arch.Area(), arch.EyerissAreaBudget())
	}
	if res.Best.Report.EnergyPerMAC > 10 {
		t.Fatalf("co-design pJ/MAC = %v, expected < 10 per Fig. 5", res.Best.Report.EnergyPerMAC)
	}
}
