package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// TestOptimizeEDP exercises the energy-delay-product objective (the
// paper mentions EDP is expressible in the framework but does not
// evaluate it): the EDP-optimal design must have EDP no worse than
// either single-objective design.
func TestOptimizeEDP(t *testing.T) {
	p := testLayer(t, "resnet18_L6")
	a := arch.Eyeriss()
	edp := func(r *model.Report) float64 { return r.Energy * r.Cycles }

	rE, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	rD, err := Optimize(p, Options{Criterion: model.MinDelay, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	rEDP, err := Optimize(p, Options{Criterion: model.MinEDP, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	if !rEDP.Best.Report.Valid() {
		t.Fatalf("violations: %v", rEDP.Best.Report.Violations)
	}
	got := edp(rEDP.Best.Report)
	// Allow a small integerization slack.
	if got > 1.05*edp(rE.Best.Report) && got > 1.05*edp(rD.Best.Report) {
		t.Fatalf("EDP design (%.4g) worse than both energy (%.4g) and delay (%.4g) designs",
			got, edp(rE.Best.Report), edp(rD.Best.Report))
	}
	if model.MinEDP.String() != "edp" {
		t.Fatal("criterion string")
	}
	if model.Score(model.MinEDP, rEDP.Best.Report) != got {
		t.Fatal("Score(MinEDP) wrong")
	}
}

// TestOptimizeEDPCoDesign: EDP co-design must stay within the area
// budget and find an intermediate point (neither the tiny-register
// energy design nor necessarily the max-PE delay design).
func TestOptimizeEDPCoDesign(t *testing.T) {
	p := testLayer(t, "resnet18_L9")
	res, err := Optimize(p, Options{Criterion: model.MinEDP, Mode: CoDesign})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Arch.Area() > arch.EyerissAreaBudget()*1.0001 {
		t.Fatalf("area over budget: %v", res.Best.Arch.Area())
	}
	if !res.Best.Report.Valid() {
		t.Fatalf("violations: %v", res.Best.Report.Violations)
	}
}

// TestNoCEnergyExtension: enabling the inter-PE network model must
// increase evaluated energy (extra component) and steer the optimizer
// toward designs with less multicast traffic per PE.
func TestNoCEnergyExtension(t *testing.T) {
	p := testLayer(t, "resnet18_L6")
	base := arch.Eyeriss()
	noc := arch.Eyeriss()
	noc.Tech.EnergyNoCHop = 0.1 // pJ per word-hop

	rb, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &base})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &noc})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Best.Report.Breakdown.NoC <= 0 {
		t.Fatal("NoC component missing from breakdown")
	}
	if rb.Best.Report.Breakdown.NoC != 0 {
		t.Fatal("NoC component should be zero when disabled")
	}
	if rn.Best.Report.Energy <= rb.Best.Report.Energy {
		t.Fatalf("NoC-modeled energy %.4g not above baseline %.4g",
			rn.Best.Report.Energy, rb.Best.Report.Energy)
	}
	// The breakdown must still sum.
	if got := rn.Best.Report.Breakdown.Total(); got != rn.Best.Report.Energy {
		t.Fatalf("breakdown total %v != energy %v", got, rn.Best.Report.Energy)
	}
}

// TestOptimizeDilatedConv: a dilated convolution (the paper's "handled
// similarly" remark) flows through Algorithm 1, the GP, and the model.
func TestOptimizeDilatedConv(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "dilated", N: 1, K: 32, C: 32, H: 28, W: 28, R: 3, S: 3,
		StrideX: 1, StrideY: 1, DilationX: 2, DilationY: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The input subscript is h + 2r: full input extent 28 + 2·2 = 32.
	if got := p.TensorSize(0); got != 32*32*32 {
		t.Fatalf("dilated In size = %d, want %d", got, 32*32*32)
	}
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Report.Valid() {
		t.Fatalf("violations: %v", res.Best.Report.Violations)
	}
	if res.Best.Report.EnergyPerMAC < 15 || res.Best.Report.EnergyPerMAC > 40 {
		t.Fatalf("dilated pJ/MAC = %v out of sane range", res.Best.Report.EnergyPerMAC)
	}
}

func TestConv2DRejectsBadDilation(t *testing.T) {
	_, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		N: 1, K: 1, C: 1, H: 4, W: 4, R: 3, S: 3,
		StrideX: 1, StrideY: 1, DilationX: -1, DilationY: 1,
	})
	if err == nil {
		t.Fatal("expected dilation error")
	}
}
