package core_test

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// ExampleOptimize runs the full Thistle flow on a small matrix
// multiplication for a fixed tiny architecture.
func ExampleOptimize() {
	prob := loopnest.MatMul(64, 64, 64)
	a := arch.Arch{Name: "tiny", PEs: 16, Regs: 64, SRAM: 4096, Tech: arch.Tech45nm()}
	res, err := core.Optimize(prob, core.Options{
		Criterion: model.MinEnergy,
		Mode:      core.FixedArch,
		Arch:      &a,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", res.Best.Report.Valid())
	fmt.Println("PEs used <= 16:", res.Best.Report.PEsUsed <= 16)
	fmt.Println("register footprint <= 64:", res.Best.Report.RegFootprint <= 64)
	// Output:
	// valid: true
	// PEs used <= 16: true
	// register footprint <= 64: true
}
