package core

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/workloads"
)

func testLayer(t *testing.T, name string) *loopnest.Problem {
	t.Helper()
	l, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown layer %s", name)
	}
	p, err := l.Problem()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptimizeMatmulEnergy(t *testing.T) {
	p := loopnest.MatMul(256, 256, 256)
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Report.Valid() {
		t.Fatalf("violations: %v", res.Best.Report.Violations)
	}
	// The relaxed GP objective is exact for matmul (no −1 extents), so
	// it must lower-bound the integer result up to integerization loss.
	gpPerMAC := res.Best.GPObjective / float64(p.Ops())
	intPerMAC := res.Best.Report.EnergyPerMAC
	if intPerMAC < gpPerMAC*0.999 {
		t.Fatalf("integer result %.4f below GP bound %.4f", intPerMAC, gpPerMAC)
	}
	if intPerMAC > gpPerMAC*1.5 {
		t.Fatalf("integerization lost too much: %.4f vs bound %.4f", intPerMAC, gpPerMAC)
	}
}

func TestOptimizeDelayFixedArch(t *testing.T) {
	p := testLayer(t, "resnet18_L9")
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{Criterion: model.MinDelay, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Best.Report
	if !rep.Valid() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.IPC > 168 {
		t.Fatalf("IPC %v exceeds PE count", rep.IPC)
	}
	// Delay optimization should use a large fraction of the array on a
	// layer with ample parallelism.
	if rep.IPC < 84 {
		t.Fatalf("IPC %v below half the array; delay objective not effective", rep.IPC)
	}
}

func TestOptimizeDelayCoDesign(t *testing.T) {
	p := testLayer(t, "resnet18_L9")
	a := arch.Eyeriss()
	fixed, err := Optimize(p, Options{Criterion: model.MinDelay, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Optimize(p, Options{Criterion: model.MinDelay, Mode: CoDesign})
	if err != nil {
		t.Fatal(err)
	}
	if cd.Best.Arch.Area() > arch.EyerissAreaBudget()*1.0001 {
		t.Fatalf("co-design area %v over budget", cd.Best.Arch.Area())
	}
	// Co-design should buy many more PEs than Eyeriss's 168 by shrinking
	// register files (the paper's Fig. 8 orders-of-magnitude claim).
	if cd.Best.Report.IPC < 2*fixed.Best.Report.IPC {
		t.Fatalf("co-design IPC %.0f not well above fixed-arch IPC %.0f",
			cd.Best.Report.IPC, fixed.Best.Report.IPC)
	}
}

func TestOptimizeSmallArch(t *testing.T) {
	// A tiny architecture forces tight capacity constraints.
	p := loopnest.MatMul(64, 64, 64)
	a := arch.Arch{Name: "tiny", PEs: 4, Regs: 32, SRAM: 2048, Tech: arch.Tech45nm()}
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Best.Report
	if !rep.Valid() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.RegFootprint > 32 || rep.SRAMFootprint > 2048 || rep.PEsUsed > 4 {
		t.Fatalf("capacities not respected: %+v", rep)
	}
}

func TestOptimizeInfeasibleArch(t *testing.T) {
	// Register file too small to hold even one word per tensor (the
	// level-1 kernel-loop placement needs at least 3 register words).
	p := testLayer(t, "resnet18_L6")
	a := arch.Arch{Name: "toosmall", PEs: 4, Regs: 2, SRAM: 2048, Tech: arch.Tech45nm()}
	_, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestOptimizeRejectsBadArch(t *testing.T) {
	p := loopnest.MatMul(8, 8, 8)
	bad := arch.Arch{}
	if _, err := Optimize(p, Options{Arch: &bad}); err == nil {
		t.Fatal("expected arch validation error")
	}
}

func TestOptimizeStrideTwoLayer(t *testing.T) {
	p := testLayer(t, "resnet18_L4") // 3×3 stride-2
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Report.Valid() {
		t.Fatalf("violations: %v", res.Best.Report.Violations)
	}
}

func TestOptimizeSevenBySevenStem(t *testing.T) {
	p := testLayer(t, "resnet18_L1") // 7×7 stride-2, C=3
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Report.Valid() {
		t.Fatalf("violations: %v", res.Best.Report.Violations)
	}
	// The 7×7 window pins 49 In + 49 Ker words into the register tile.
	if res.Best.Report.RegFootprint < 99 {
		t.Fatalf("register footprint %v below the pinned kernel window", res.Best.Report.RegFootprint)
	}
}

func TestOptimizeHugeChannelLayer(t *testing.T) {
	p := testLayer(t, "yolo9000_L11") // K=28269 (divisors include prime 349)
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Report.Valid() {
		t.Fatalf("violations: %v", res.Best.Report.Violations)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	p := testLayer(t, "resnet18_L8")
	a := arch.Eyeriss()
	opts := Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a, Parallel: 2}
	r1, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best.Report.Energy != r2.Best.Report.Energy {
		t.Fatalf("non-deterministic: %v vs %v", r1.Best.Report.Energy, r2.Best.Report.Energy)
	}
}

func TestOptimizeRSAtLevel1(t *testing.T) {
	p := testLayer(t, "resnet18_L12")
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{
		Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a,
		RSPlacements: []dataflow.RSPlacement{dataflow.RSAtLevel1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Report.Valid() {
		t.Fatalf("violations: %v", res.Best.Report.Violations)
	}
}

func TestModeAndUtilizationOptions(t *testing.T) {
	p := loopnest.MatMul(128, 128, 128)
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{
		Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a,
		MinUtilization: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Either the threshold was met, or the fallback kicked in (still a
	// valid design).
	if !res.Best.Report.Valid() {
		t.Fatal("invalid design")
	}
	if FixedArch.String() != "fixedarch" || CoDesign.String() != "codesign" {
		t.Fatal("Mode strings")
	}
}

func TestEvaluateOn(t *testing.T) {
	p := testLayer(t, "resnet18_L8")
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EvaluateOn(p, &a, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Energy-res.Best.Report.Energy) > 1e-6*res.Best.Report.Energy {
		t.Fatalf("re-evaluation differs: %v vs %v", rep.Energy, res.Best.Report.Energy)
	}
}

func TestGPObjectiveTracksCriterion(t *testing.T) {
	// For delay, GPObjective is the relaxed cycle count; it must be
	// within the same magnitude as the model-evaluated cycles.
	p := testLayer(t, "resnet18_L9")
	a := arch.Eyeriss()
	res, err := Optimize(p, Options{Criterion: model.MinDelay, Mode: FixedArch, Arch: &a})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Best.Report.Cycles / res.Best.GPObjective
	if ratio < 0.5 || ratio > 20 {
		t.Fatalf("cycles %.4g vs GP bound %.4g (ratio %.2f)",
			res.Best.Report.Cycles, res.Best.GPObjective, ratio)
	}
}
