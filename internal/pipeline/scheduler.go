package pipeline

import (
	"context"
	"runtime"
	"sync"
)

// Scheduler is the run-wide admission bound for leaf compute jobs: GP
// solves and integerization searches acquire a token before running, so
// total CPU-bound concurrency stays at the configured width no matter
// how many layers, RS placements, and permutation pairs are in flight.
// Orchestration goroutines (per-layer, per-placement fan-out) never
// hold tokens — only leaf work does — so nesting cannot deadlock the
// semaphore.
//
// One scheduler is created per Optimize call (sized by
// Options.Parallel) unless the caller attached a shared one to the
// context with ContextWithScheduler; batch drivers like
// experiments.OptimizeLayers do exactly that, which is what lets them
// submit every layer concurrently without oversubscribing CPUs.
type Scheduler struct {
	sem chan struct{}
}

// NewScheduler builds a scheduler admitting at most n concurrent jobs.
// n < 1 defaults to NumCPU.
func NewScheduler(n int) *Scheduler {
	if n < 1 {
		n = runtime.NumCPU()
	}
	return &Scheduler{sem: make(chan struct{}, n)}
}

// Size returns the admission bound.
func (s *Scheduler) Size() int {
	if s == nil {
		return 1
	}
	return cap(s.sem)
}

// acquire blocks until a token is free or ctx is cancelled.
func (s *Scheduler) acquire(ctx context.Context) error {
	// Prefer reporting cancellation even when a token is also free.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Scheduler) release() { <-s.sem }

// ForEach runs fn(0..n-1), each call holding one scheduler token, and
// waits for every started call to finish. Admission honors context
// cancellation: no new job starts after ctx is cancelled or after any
// job returns an error (in-flight jobs run to completion). The returned
// error is deterministic regardless of completion order — the error of
// the lowest index that failed — except that a context cancellation
// observed at admission time is reported as ctx.Err() when no job
// failed first.
//
// A nil Scheduler runs the jobs sequentially on the calling goroutine,
// still honoring cancellation between jobs.
func (s *Scheduler) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if s == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
		stop     bool
	)
	record := func(i int, err error) {
		mu.Lock()
		if err != nil {
			stop = true
			if errIdx < 0 || i < errIdx {
				errIdx, firstErr = i, err
			}
		}
		mu.Unlock()
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return stop
	}
	var admitErr error
	for i := 0; i < n; i++ {
		if stopped() {
			break
		}
		if err := s.acquire(ctx); err != nil {
			admitErr = err
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer s.release()
			record(i, fn(i))
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return admitErr
}

type schedCtxKey struct{}

// ContextWithScheduler attaches a shared scheduler to the context,
// where the pipeline (and the core facade) find it; per-call schedulers
// are then skipped, so every optimization submitted under the context
// draws from one admission bound. A nil scheduler returns the context
// unchanged.
func ContextWithScheduler(ctx context.Context, s *Scheduler) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, schedCtxKey{}, s)
}

// SchedulerFromContext returns the attached scheduler, or nil.
func SchedulerFromContext(ctx context.Context) *Scheduler {
	s, _ := ctx.Value(schedCtxKey{}).(*Scheduler)
	return s
}
