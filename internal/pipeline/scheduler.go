package pipeline

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Scheduler is the run-wide admission bound for leaf compute jobs: GP
// solves and integerization searches acquire a token before running, so
// total CPU-bound concurrency stays at the configured width no matter
// how many layers, RS placements, and permutation pairs are in flight.
// Orchestration goroutines (per-layer, per-placement fan-out) never
// hold tokens — only leaf work does — so nesting cannot deadlock the
// semaphore.
//
// One scheduler is created per Optimize call (sized by
// Options.Parallel) unless the caller attached a shared one to the
// context with ContextWithScheduler; batch drivers like
// experiments.OptimizeLayers do exactly that, which is what lets them
// submit every layer concurrently without oversubscribing CPUs.
// Admission telemetry: every Acquire observes its queue wait in the
// pipeline.sched.wait histogram, and two live gauges —
// pipeline.sched.queue_depth (goroutines blocked in Acquire) and
// pipeline.sched.in_flight (tokens held) — appear on /statusz and the
// Prometheus export like any other registry metric. Acquires that
// actually block additionally record a "sched-wait" child span under
// the context's current span, which is what lets tlreport trace
// attribute wall-clock to queueing rather than compute.
type Scheduler struct {
	sem chan struct{}
	// met caches the metric handles resolved from the first Acquire
	// context whose Obs has metrics enabled, so Release needs no context
	// and steady-state admission touches only atomics.
	met atomic.Pointer[schedMetrics]
}

// schedMetrics is the scheduler's resolved metric handle set.
type schedMetrics struct {
	wait       *obs.Histogram
	queueDepth *obs.Gauge
	inFlight   *obs.Gauge
}

// noSchedMetrics marks "resolution attempted, metrics disabled" so
// metric-less runs don't retry the registry lookup on every Acquire.
var noSchedMetrics = &schedMetrics{}

// metrics resolves (once) and returns the scheduler's metric handles,
// or nil when the run has no metrics registry. A shared scheduler first
// used by a metric-less run upgrades when a registry-bearing context
// shows up; all handle fields are nil-safe either way.
func (s *Scheduler) metrics(o *obs.Obs) *schedMetrics {
	m := s.met.Load()
	if m != nil && (m != noSchedMetrics || !o.MetricsEnabled()) {
		if m == noSchedMetrics {
			return nil
		}
		return m
	}
	if !o.MetricsEnabled() {
		s.met.CompareAndSwap(nil, noSchedMetrics)
		return nil
	}
	m = &schedMetrics{
		wait:       o.Histogram("pipeline.sched.wait"),
		queueDepth: o.Gauge("pipeline.sched.queue_depth"),
		inFlight:   o.Gauge("pipeline.sched.in_flight"),
	}
	s.met.Store(m)
	return m
}

// NewScheduler builds a scheduler admitting at most n concurrent jobs.
// n < 1 defaults to NumCPU.
func NewScheduler(n int) *Scheduler {
	if n < 1 {
		n = runtime.NumCPU()
	}
	return &Scheduler{sem: make(chan struct{}, n)}
}

// Size returns the admission bound.
func (s *Scheduler) Size() int {
	if s == nil {
		return 1
	}
	return cap(s.sem)
}

// Acquire blocks until a token is free or ctx is cancelled, recording
// queue-wait telemetry from the context's Obs: the wait duration always
// lands in the pipeline.sched.wait histogram (zero for uncontended
// admission), and an acquire that actually blocks also records a
// "sched-wait" child span under the context's current span. A nil
// scheduler admits immediately.
func (s *Scheduler) Acquire(ctx context.Context) error {
	if s == nil {
		return ctx.Err()
	}
	// Prefer reporting cancellation even when a token is also free.
	if err := ctx.Err(); err != nil {
		return err
	}
	o := obs.FromContext(ctx)
	m := s.metrics(o)
	select {
	case s.sem <- struct{}{}:
		// Uncontended fast path: no span — a trace flooded with
		// zero-length sched-wait spans would bury the signal.
		if m != nil {
			m.wait.Observe(0)
			m.inFlight.Add(1)
		}
		return nil
	default:
	}
	span := o.StartSpan(obs.SpanFromContext(ctx), "sched-wait")
	//tlvet:ignore wallclock -- telemetry: queue wait feeds the pipeline.sched.wait histogram and span attrs only
	start := time.Now()
	if m != nil {
		m.queueDepth.Add(1)
	}
	var err error
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		err = ctx.Err()
	}
	//tlvet:ignore wallclock -- telemetry: queue wait feeds the pipeline.sched.wait histogram and span attrs only
	wait := time.Since(start)
	if m != nil {
		m.queueDepth.Add(-1)
		m.wait.Observe(wait)
		if err == nil {
			m.inFlight.Add(1)
		}
	}
	if span != nil {
		span.SetAttr("wait_us", wait.Microseconds())
		span.End()
	}
	return err
}

// Release returns a token acquired with Acquire. Nil-safe.
func (s *Scheduler) Release() {
	if s == nil {
		return
	}
	<-s.sem
	if m := s.met.Load(); m != nil {
		m.inFlight.Add(-1)
	}
}

// ForEach runs fn(0..n-1), each call holding one scheduler token, and
// waits for every started call to finish. Admission honors context
// cancellation: no new job starts after ctx is cancelled or after any
// job returns an error (in-flight jobs run to completion). The returned
// error is deterministic regardless of completion order — the error of
// the lowest index that failed — except that a context cancellation
// observed at admission time is reported as ctx.Err() when no job
// failed first.
//
// A nil Scheduler runs the jobs sequentially on the calling goroutine,
// still honoring cancellation between jobs.
func (s *Scheduler) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if s == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
		stop     bool
	)
	record := func(i int, err error) {
		mu.Lock()
		if err != nil {
			stop = true
			if errIdx < 0 || i < errIdx {
				errIdx, firstErr = i, err
			}
		}
		mu.Unlock()
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return stop
	}
	var admitErr error
	for i := 0; i < n; i++ {
		if stopped() {
			break
		}
		if err := s.Acquire(ctx); err != nil {
			admitErr = err
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer s.Release()
			record(i, fn(i))
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return admitErr
}

type schedCtxKey struct{}

// ContextWithScheduler attaches a shared scheduler to the context,
// where the pipeline (and the core facade) find it; per-call schedulers
// are then skipped, so every optimization submitted under the context
// draws from one admission bound. A nil scheduler returns the context
// unchanged.
func ContextWithScheduler(ctx context.Context, s *Scheduler) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, schedCtxKey{}, s)
}

// SchedulerFromContext returns the attached scheduler, or nil.
func SchedulerFromContext(ctx context.Context) *Scheduler {
	s, _ := ctx.Value(schedCtxKey{}).(*Scheduler)
	return s
}
