package pipeline

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/gp"
	"repro/internal/model"
	"repro/internal/solver"
)

// archVars holds the symbolic or constant architecture parameters of one
// formulation.
type archVars struct {
	mode Mode
	tech arch.Tech
	// Fixed-architecture constants (FixedArch mode).
	fixed arch.Arch
	// Co-design variables.
	varR, varS, varP expr.VarID
	budget           float64
}

// regCapacity returns the register-capacity bound as a monomial (constant
// or the R variable).
func (av *archVars) regCapacity() expr.Monomial {
	if av.mode == CoDesign {
		return expr.MonoPow(1, av.varR, 1)
	}
	return expr.Const(float64(av.fixed.Regs))
}

func (av *archVars) sramCapacity() expr.Monomial {
	if av.mode == CoDesign {
		return expr.MonoPow(1, av.varS, 1)
	}
	return expr.Const(float64(av.fixed.SRAM))
}

func (av *archVars) peCapacity() expr.Monomial {
	if av.mode == CoDesign {
		return expr.MonoPow(1, av.varP, 1)
	}
	return expr.Const(float64(av.fixed.PEs))
}

// regEnergy returns ε_R as a monomial: σ_R·R (Eq. 4), constant when the
// architecture is fixed.
func (av *archVars) regEnergy() expr.Monomial {
	if av.mode == CoDesign {
		return expr.MonoPow(av.tech.SigmaR, av.varR, 1)
	}
	return expr.Const(av.fixed.RegEnergy())
}

// sramEnergy returns ε_S as a monomial: σ_S·√S (Eq. 4).
func (av *archVars) sramEnergy() expr.Monomial {
	if av.mode == CoDesign {
		return expr.MonoPow(av.tech.SigmaS, av.varS, 0.5)
	}
	return expr.Const(av.fixed.SRAMEnergy())
}

// formulation is one geometric program for one permutation-class pair.
// It is built in two steps: newFormulation computes the traffic and
// footprint posynomials and the objective (enough to evaluate the cheap
// pruning bound, see boundCtx), and finish lowers everything into the
// constrained program. Pruned pairs never pay for finish.
type formulation struct {
	nest *dataflow.Nest
	vols *dataflow.Volumes
	prog *gp.Program
	av   *archVars
	crit model.Criterion
	varT expr.VarID // delay variable (MinDelay only)

	// Relaxed posynomials shared by the pruning bound and the program.
	trafficSR, trafficDS expr.Poly
	regFoot, sramFoot    expr.Poly
	objective            expr.Poly
	ops                  float64
}

// buildGP constructs the constrained geometric program for one choice of
// copy-level permutations (the paper's Eq. 3 / Eq. 5 generalized to CNNs
// via the Algorithm-1 expressions). varT is the delay variable, used only
// for the MinDelay criterion.
func buildGP(nest *dataflow.Nest, perms [][]int, av *archVars, crit model.Criterion, varT expr.VarID, capSlack bool) (*formulation, error) {
	f, err := newFormulation(nest, perms, av, crit, varT)
	if err != nil {
		return nil, err
	}
	if err := f.finish(capSlack); err != nil {
		return nil, err
	}
	return f, nil
}

// newFormulation computes the data-volume posynomials and the objective
// for one permutation pair without building the full program.
func newFormulation(nest *dataflow.Nest, perms [][]int, av *archVars, crit model.Criterion, varT expr.VarID) (*formulation, error) {
	vols, err := nest.ComputeVolumes(perms)
	if err != nil {
		return nil, err
	}
	if len(vols.Boundaries) != 2 {
		return nil, fmt.Errorf("core: nest must have exactly 2 memory boundaries, got %d", len(vols.Boundaries))
	}
	f := &formulation{nest: nest, vols: vols, av: av, crit: crit, varT: varT}

	// Constant-fold pinned trips before relaxing: stride-1 kernel extents
	// become exact posynomials (see Volumes.Folded).
	folded := vols.Folded()
	f.trafficSR = folded.SumTraffic(0, true)
	f.trafficDS = folded.SumTraffic(1, true)
	f.regFoot = folded.SumFootprint(0, true)
	f.sramFoot = folded.SumFootprint(1, true)
	f.ops = float64(nest.Prob.Ops())

	// Total energy per Eq. 3:
	//   (4ε_R + ε_op)·N_ops + (ε_R + ε_S)·DVol^{S↔R} + (ε_S + ε_D)·DVol^{D↔S}
	// plus the optional NoC term (see Tech.EnergyNoCHop).
	energy := expr.PolyConst(av.tech.EnergyMAC * f.ops)
	energy = energy.AddMono(av.regEnergy().Mul(expr.Const(4 * f.ops)))
	energy = energy.Add(f.trafficSR.MulMono(av.regEnergy()))
	energy = energy.Add(f.trafficSR.MulMono(av.sramEnergy()))
	energy = energy.Add(f.trafficDS.MulMono(av.sramEnergy()))
	energy = energy.Add(f.trafficDS.Scale(av.tech.EnergyDRAM))
	if av.tech.EnergyNoCHop > 0 {
		// Mesh traversal: each SRAM↔register word travels ≈ √P hops.
		hop := expr.Const(av.tech.EnergyNoCHop)
		for _, pv := range nest.SpatialTripVars() {
			hop = hop.Mul(expr.MonoPow(1, pv, 0.5))
		}
		energy = energy.Add(f.trafficSR.MulMono(hop))
	}

	switch crit {
	case model.MinEnergy:
		f.objective = energy
	case model.MinDelay:
		// minimize T subject to each component delay ≤ T.
		f.objective = expr.PolyFrom(expr.MonoPow(1, varT, 1))
	case model.MinEDP:
		// minimize energy·T — a posynomial times a monomial is still a
		// posynomial, so the energy-delay product stays DGP-valid.
		f.objective = energy.MulMono(expr.MonoPow(1, varT, 1))
	default:
		return nil, fmt.Errorf("core: unknown criterion %v", crit)
	}
	return f, nil
}

// finish lowers the formulation into its constrained geometric program.
func (f *formulation) finish(capSlack bool) error {
	nest, av, varT := f.nest, f.av, f.varT
	vols := f.vols
	regFoot, sramFoot := f.regFoot, f.sramFoot
	prog := gp.New(nest.Vars)
	f.prog = prog

	// Delay components ≤ T (Section V.B), used by the delay and EDP
	// objectives.
	addDelay := func() error {
		tMono := expr.MonoPow(1, varT, 1)
		peInv := expr.Const(f.ops)
		for _, pv := range nest.SpatialTripVars() {
			peInv = peInv.Mul(expr.MonoPow(1, pv, -1))
		}
		if err := prog.AddLessEq("delay:compute", expr.PolyFrom(peInv), tMono); err != nil {
			return err
		}
		regPort := peInv.Mul(expr.Const(4 / av.tech.BWReg))
		if err := prog.AddLessEq("delay:regfile", expr.PolyFrom(regPort), tMono); err != nil {
			return err
		}
		sramTraffic := f.trafficSR.Add(f.trafficDS)
		if err := prog.AddLessEq("delay:sram", sramTraffic, tMono.Mul(expr.Const(av.tech.BWSRAM))); err != nil {
			return err
		}
		return prog.AddLessEq("delay:dram", f.trafficDS, tMono.Mul(expr.Const(av.tech.BWDRAM)))
	}

	// Objective (built by newFormulation), then the delay coupling
	// constraints for the criteria that reference T.
	if err := prog.SetObjective(f.objective); err != nil {
		return err
	}
	if f.crit == model.MinDelay || f.crit == model.MinEDP {
		if err := addDelay(); err != nil {
			return err
		}
	}

	// Capacity constraints. The posynomial relaxation over-approximates
	// convolution footprints (it drops the negative extent constants), so
	// a strict relaxed bound can render the GP infeasible even when
	// minimal integer tilings fit — e.g. stride-2 layers on tiny register
	// files. With capSlack (used as a second pass when every strict GP is
	// infeasible), the capacities are scaled by the worst-case relative
	// overestimate, which occurs at the all-ones point; exact footprints
	// are re-enforced during integerization either way.
	slackR, slackS := 1.0, 1.0
	if capSlack {
		ones := onesAssignment(nest)
		slackR = relaxSlack(vols, 0, regFoot, ones)
		slackS = relaxSlack(vols, 1, sramFoot, ones)
	}
	if err := prog.AddLessEq("cap:registers", regFoot,
		av.regCapacity().Mul(expr.Const(slackR))); err != nil {
		return err
	}
	if err := prog.AddLessEq("cap:sram", sramFoot,
		av.sramCapacity().Mul(expr.Const(slackS))); err != nil {
		return err
	}
	peProd := expr.Const(1)
	for _, pv := range nest.SpatialTripVars() {
		peProd = peProd.Mul(expr.MonoPow(1, pv, 1))
	}
	if err := prog.AddLessEq("cap:pes", expr.PolyFrom(peProd), av.peCapacity()); err != nil {
		return err
	}

	// Co-design: the Eq. 5 area constraint and positivity of the
	// architecture variables.
	if av.mode == CoDesign {
		area := expr.PolyFrom(
			expr.Monomial{Coeff: av.tech.AreaRegister, Terms: []expr.Term{{Var: av.varR, Exp: 1}, {Var: av.varP, Exp: 1}}},
			expr.MonoPow(av.tech.AreaMAC, av.varP, 1),
			expr.MonoPow(av.tech.AreaSRAMWord, av.varS, 1),
		)
		if err := prog.AddLessEq("area", area, expr.Const(av.budget)); err != nil {
			return err
		}
		for _, v := range []expr.VarID{av.varR, av.varS, av.varP} {
			if err := prog.AddLowerBound("arch>=1", v, 1); err != nil {
				return err
			}
		}
	}

	// Loop-extent equalities: the trip counts of each iterator multiply
	// to its full extent.
	for _, eq := range nest.DimEqualities() {
		lhs := expr.Const(1)
		for _, v := range eq.Vars {
			lhs = lhs.Mul(expr.MonoPow(1, v, 1))
		}
		name := fmt.Sprintf("extent:%s", nest.Prob.Iters[eq.Iter].Name)
		if err := prog.AddMonoEq(name, lhs, expr.Const(float64(eq.Extent))); err != nil {
			return err
		}
	}
	// Pinned trips (untiled loops, placeholders). Pinned variables are
	// handled purely by equalities — adding an x ≥ 1 barrier constraint
	// for a variable pinned to exactly 1 would leave the feasible set
	// with an empty strict interior, defeating the barrier method.
	pinned := map[expr.VarID]bool{}
	for _, pin := range nest.Pins {
		pinned[pin.Var] = true
		if err := prog.AddMonoEq("pin", expr.MonoPow(1, pin.Var, 1), expr.Const(pin.Value)); err != nil {
			return err
		}
	}
	// Free trip counts are at least 1.
	for it := range nest.Prob.Iters {
		for _, v := range nest.DimTripVars(it) {
			if pinned[v] {
				continue
			}
			if err := prog.AddLowerBound("trip>=1", v, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// onesAssignment builds the minimal-tiling point: every free trip 1,
// pinned trips at their values.
func onesAssignment(nest *dataflow.Nest) []float64 {
	x := make([]float64, nest.Vars.Len())
	for i := range x {
		x[i] = 1
	}
	for _, pin := range nest.Pins {
		x[pin.Var] = pin.Value
	}
	return x
}

// relaxSlack returns relaxed/exact footprint at the minimal-tiling point
// for boundary b (≥ 1), the worst-case relative overestimate of the
// posynomial relaxation.
func relaxSlack(vols *dataflow.Volumes, b int, relaxed expr.Poly, ones []float64) float64 {
	exact := vols.EvalFootprint(b, ones)
	if exact <= 0 {
		return 1
	}
	r := relaxed.Eval(ones) / exact
	if r < 1 {
		return 1
	}
	return r
}

// hint builds an initial guess: extents spread evenly across levels,
// Eyeriss-like architecture values, and a generous delay.
func (f *formulation) hint() []float64 {
	x := make([]float64, f.nest.Vars.Len())
	for i := range x {
		x[i] = 1
	}
	for it, iter := range f.nest.Prob.Iters {
		vars := f.nest.DimTripVars(it)
		if len(vars) == 0 {
			continue
		}
		per := math.Pow(float64(iter.Extent), 1/float64(len(vars)))
		for _, v := range vars {
			x[v] = per
		}
	}
	for _, pin := range f.nest.Pins {
		x[pin.Var] = pin.Value
	}
	if f.av.mode == CoDesign {
		x[f.av.varR] = 64
		x[f.av.varS] = 16384
		x[f.av.varP] = 128
	}
	if int(f.varT) < len(x) && f.varT >= 0 {
		x[f.varT] = float64(f.nest.Prob.Ops())
	}
	return x
}

// solve runs the GP from the cold analytic hint.
func (f *formulation) solve(opts solver.Options) (gp.Result, error) {
	return f.solveFrom(nil, opts)
}

// solveFrom runs the GP starting from xHint (a point in the original
// positive variables, typically a neighboring pair's solution); nil
// falls back to the cold analytic hint.
func (f *formulation) solveFrom(xHint []float64, opts solver.Options) (gp.Result, error) {
	if xHint == nil {
		xHint = f.hint()
	}
	return f.prog.Solve(xHint, opts)
}
