package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestForEachBoundedConcurrency checks the admission invariant: no more
// than Size() jobs run at once, no matter how many are submitted.
func TestForEachBoundedConcurrency(t *testing.T) {
	const width, jobs = 3, 20
	s := NewScheduler(width)
	if s.Size() != width {
		t.Fatalf("Size() = %d, want %d", s.Size(), width)
	}
	var inFlight, peak, total atomic.Int64
	err := s.ForEach(context.Background(), jobs, func(i int) error {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		total.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != jobs {
		t.Fatalf("ran %d jobs, want %d", total.Load(), jobs)
	}
	if p := peak.Load(); p > width {
		t.Fatalf("peak concurrency %d exceeds scheduler width %d", p, width)
	}
}

// TestForEachCancellation cancels the context while a job is in flight
// and later indices are still waiting for admission: ForEach must stop
// admitting, return ctx.Err(), and not run the remaining jobs.
func TestForEachCancellation(t *testing.T) {
	s := NewScheduler(1)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := s.ForEach(ctx, 10, func(i int) error {
		started.Add(1)
		if i == 0 {
			cancel() // cancel while holding the only token
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach after cancel = %v, want context.Canceled", err)
	}
	if n := started.Load(); n != 1 {
		t.Fatalf("%d jobs started after cancellation, want 1", n)
	}
	// A pre-cancelled context admits nothing at all, with or without a
	// scheduler.
	for _, sched := range []*Scheduler{s, nil} {
		var ran atomic.Int64
		err := sched.ForEach(ctx, 5, func(i int) error { ran.Add(1); return nil })
		if !errors.Is(err, context.Canceled) || ran.Load() != 0 {
			t.Fatalf("pre-cancelled ForEach (sched=%v): err=%v ran=%d", sched != nil, err, ran.Load())
		}
	}
}

// TestForEachLowestIndexError: whichever job finishes first, the
// returned error belongs to the lowest failing index, so callers see a
// deterministic error regardless of goroutine interleaving.
func TestForEachLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	s := NewScheduler(4)
	for trial := 0; trial < 20; trial++ {
		var gate sync.WaitGroup
		gate.Add(2)
		err := s.ForEach(context.Background(), 4, func(i int) error {
			switch i {
			case 1:
				gate.Done()
				gate.Wait() // fail together with index 3
				time.Sleep(time.Millisecond)
				return errLow
			case 3:
				gate.Done()
				gate.Wait()
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errLow)
		}
	}
}

// TestForEachNilScheduler: a nil scheduler degrades to a sequential
// loop that still stops at the first error.
func TestForEachNilScheduler(t *testing.T) {
	var s *Scheduler
	if s.Size() != 1 {
		t.Fatalf("nil Size() = %d, want 1", s.Size())
	}
	boom := errors.New("boom")
	var order []int
	err := s.ForEach(context.Background(), 5, func(i int) error {
		order = append(order, i)
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("sequential order = %v, want [0 1 2]", order)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAcquireQueueWaitTelemetry drives one contended acquire through
// an instrumented context and checks all three signals: the wait
// histogram (observed for both the uncontended and the blocking
// acquire), the live queue-depth/in-flight gauges, and the sched-wait
// child span recorded under the context's current span.
func TestAcquireQueueWaitTelemetry(t *testing.T) {
	s := NewScheduler(1)
	o := &obs.Obs{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()}
	pass := o.Tracer.StartSpan(nil, "pass")
	ctx := obs.ContextWithSpan(obs.NewContext(context.Background(), o), pass)

	if err := s.Acquire(ctx); err != nil { // uncontended
		t.Fatal(err)
	}
	if got := o.Gauge("pipeline.sched.in_flight").Value(); got != 1 {
		t.Fatalf("in_flight after acquire = %d, want 1", got)
	}

	done := make(chan error, 1)
	go func() { done <- s.Acquire(ctx) }()
	waitFor(t, "second acquire to block", func() bool {
		return o.Gauge("pipeline.sched.queue_depth").Value() == 1
	})
	s.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := o.Gauge("pipeline.sched.queue_depth").Value(); got != 0 {
		t.Fatalf("queue_depth after admission = %d, want 0", got)
	}
	if got := o.Gauge("pipeline.sched.in_flight").Value(); got != 1 {
		t.Fatalf("in_flight = %d, want 1", got)
	}
	s.Release()
	if got := o.Gauge("pipeline.sched.in_flight").Value(); got != 0 {
		t.Fatalf("in_flight after release = %d, want 0", got)
	}

	snap := o.Metrics.Snapshot()
	var hist *obs.HistogramValue
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "pipeline.sched.wait" {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil || hist.Count != 2 {
		t.Fatalf("pipeline.sched.wait histogram = %+v, want 2 observations", hist)
	}

	pass.End()
	tree := o.Tracer.Tree()
	var waits int
	for _, c := range tree[0].Children {
		if c.Name == "sched-wait" {
			waits++
			if c.DurUS < 0 {
				t.Fatal("sched-wait span never ended")
			}
			if _, ok := c.Attrs["wait_us"]; !ok {
				t.Fatalf("sched-wait span missing wait_us attr: %+v", c.Attrs)
			}
		}
	}
	if waits != 1 {
		t.Fatalf("%d sched-wait spans, want 1 (only the blocking acquire records one)", waits)
	}
}

// TestAcquireCancellationTelemetry cancels a blocked acquire and checks
// the gauges settle back: the waiter leaves the queue and never counts
// as in-flight.
func TestAcquireCancellationTelemetry(t *testing.T) {
	s := NewScheduler(1)
	o := &obs.Obs{Metrics: obs.NewRegistry()}
	ctx, cancel := context.WithCancel(obs.NewContext(context.Background(), o))
	defer cancel()
	if err := s.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Acquire(ctx) }()
	waitFor(t, "acquire to block", func() bool {
		return o.Gauge("pipeline.sched.queue_depth").Value() == 1
	})
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked Acquire after cancel = %v, want context.Canceled", err)
	}
	if got := o.Gauge("pipeline.sched.queue_depth").Value(); got != 0 {
		t.Fatalf("queue_depth after cancel = %d, want 0", got)
	}
	if got := o.Gauge("pipeline.sched.in_flight").Value(); got != 1 {
		t.Fatalf("in_flight = %d, want 1 (only the first acquire)", got)
	}
	s.Release()
}

// TestAcquireNilSchedulerAndNoObs: both degenerate paths stay no-ops.
func TestAcquireNilSchedulerAndNoObs(t *testing.T) {
	var nilS *Scheduler
	if err := nilS.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	nilS.Release() // must not panic

	s := NewScheduler(2)
	if err := s.Acquire(context.Background()); err != nil { // no Obs in ctx
		t.Fatal(err)
	}
	s.Release()
}

// TestSchedulerContext round-trips a scheduler through a context and
// checks the nil conventions on both ends.
func TestSchedulerContext(t *testing.T) {
	ctx := context.Background()
	if got := SchedulerFromContext(ctx); got != nil {
		t.Fatalf("empty context carries scheduler %v", got)
	}
	if got := ContextWithScheduler(ctx, nil); got != ctx {
		t.Fatal("attaching a nil scheduler should return the context unchanged")
	}
	s := NewScheduler(2)
	ctx2 := ContextWithScheduler(ctx, s)
	if got := SchedulerFromContext(ctx2); got != s {
		t.Fatalf("round-trip = %v, want %v", got, s)
	}
}
