package pipeline

import (
	"math"

	"repro/internal/dataflow"
	"repro/internal/expr"
)

// boundCtx precomputes the class-independent variable ranges used to
// lower-bound a pair's GP objective before the full program is built.
// Every permutation pair of one run shares the same loop extents, pins,
// and architecture envelope; only the traffic polynomials differ. The
// ranges it derives:
//
//   - Free trip variables of iterator i multiply to the iterator's free
//     extent E_i (the extent with pinned trips divided out) and are each
//     at least 1 (hence at most E_i).
//   - The delay variable T is at least ops/maxPEs: the compute-delay
//     constraint forces T ≥ ops/∏P, and the PE product is capped by the
//     PE capacity (fixed arch) or the area budget (co-design).
//   - Architecture variables are at least 1; in co-design mode the area
//     budget caps each one (used only for negative exponents, which the
//     current objectives do not produce — kept for validity).
//
// A boundCtx is immutable after construction and safe for concurrent use.
type boundCtx struct {
	groupOf   []int     // VarID → iterator group index, or −1
	groupExt  []float64 // free extent per group
	groupVars []int     // free trip variables per group
	tVar      expr.VarID
	tMin      float64
	lo        []float64 // per-variable lower bound (default 1)
	hi        []float64 // per-variable upper bound (default +Inf)
}

// newBoundCtx derives the variable ranges for one run configuration.
func newBoundCtx(nest *dataflow.Nest, av *archVars, varT expr.VarID) *boundCtx {
	n := nest.Vars.Len()
	bc := &boundCtx{
		groupOf: make([]int, n),
		tVar:    varT,
		lo:      make([]float64, n),
		hi:      make([]float64, n),
	}
	for i := range bc.groupOf {
		bc.groupOf[i] = -1
		bc.lo[i] = 1
		bc.hi[i] = math.Inf(1)
	}
	pinned := make(map[expr.VarID]float64, len(nest.Pins))
	for _, pin := range nest.Pins {
		pinned[pin.Var] = pin.Value
		// Pinned trips are constant-folded out of the relaxed polynomials;
		// should one survive, its range is a point.
		bc.lo[pin.Var], bc.hi[pin.Var] = pin.Value, pin.Value
	}
	for _, eq := range nest.DimEqualities() {
		ext := float64(eq.Extent)
		free := 0
		for _, v := range eq.Vars {
			if pv, ok := pinned[v]; ok {
				if pv > 0 {
					ext /= pv
				}
				continue
			}
			free++
		}
		if free == 0 || ext < 1 {
			continue
		}
		g := len(bc.groupExt)
		bc.groupExt = append(bc.groupExt, ext)
		bc.groupVars = append(bc.groupVars, free)
		for _, v := range eq.Vars {
			if _, ok := pinned[v]; ok {
				continue
			}
			bc.groupOf[v] = g
		}
	}
	maxPEs := math.Inf(1)
	if av.mode == CoDesign {
		if av.tech.AreaMAC > 0 {
			bc.hi[av.varP] = av.budget / av.tech.AreaMAC
			maxPEs = bc.hi[av.varP]
		}
		if av.tech.AreaRegister > 0 {
			bc.hi[av.varR] = av.budget / av.tech.AreaRegister
		}
		if av.tech.AreaSRAMWord > 0 {
			bc.hi[av.varS] = av.budget / av.tech.AreaSRAMWord
		}
	} else {
		maxPEs = float64(av.fixed.PEs)
	}
	if ops := float64(nest.Prob.Ops()); maxPEs > 0 && !math.IsInf(maxPEs, 1) {
		bc.tMin = ops / maxPEs
	}
	return bc
}

// lowerBound returns a valid lower bound on obj over the GP's feasible
// region by minimizing each monomial independently over the variable
// ranges. For the trip variables of one iterator (product fixed to the
// free extent E, each variable in [1, E]) the monomial's factor
// ∏ v^e is at least E^ē where ē is the minimum exponent across the
// whole group, counting absent variables as exponent 0: writing
// ∏ v^e = E^ē · ∏ v^(e−ē) makes every remaining exponent nonnegative.
// A full chain with uniform exponent e therefore contributes exactly
// E^e — the compulsory "every tensor crosses DRAM at least once" terms
// survive the bound at full strength. Returns −Inf (prune nothing) when
// a negative coefficient sneaks in.
func (bc *boundCtx) lowerBound(obj expr.Poly) float64 {
	nG := len(bc.groupExt)
	cnt := make([]int, nG)
	minE := make([]float64, nG)
	touched := make([]int, 0, nG)
	total := 0.0
	for _, m := range obj {
		if m.Coeff < 0 {
			return math.Inf(-1)
		}
		factor := m.Coeff
		touched = touched[:0]
		for _, t := range m.Terms {
			v, e := t.Var, t.Exp
			if int(v) < len(bc.groupOf) {
				if g := bc.groupOf[v]; g >= 0 {
					if cnt[g] == 0 {
						touched = append(touched, g)
						minE[g] = e
					} else if e < minE[g] {
						minE[g] = e
					}
					cnt[g]++
					continue
				}
			}
			if v == bc.tVar {
				if e >= 0 {
					factor *= math.Pow(bc.tMin, e)
				} else {
					factor = 0 // T is unbounded above
				}
				continue
			}
			lo, hi := 1.0, math.Inf(1)
			if int(v) < len(bc.lo) {
				lo, hi = bc.lo[v], bc.hi[v]
			}
			if e >= 0 {
				factor *= math.Pow(lo, e)
			} else if math.IsInf(hi, 1) {
				factor = 0
			} else {
				factor *= math.Pow(hi, e)
			}
		}
		for _, g := range touched {
			e := minE[g]
			if cnt[g] < bc.groupVars[g] && e > 0 {
				e = 0
			}
			if e != 0 {
				factor *= math.Pow(bc.groupExt[g], e)
			}
			cnt[g] = 0
		}
		total += factor
	}
	return total
}
