package pipeline

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/solver"
)

// solveStage runs one GP per class pair through the shared scheduler.
// When every strict GP is infeasible (tiny capacities plus the
// posynomial overestimate), a second pass loosens the capacity bounds
// by the relaxation's worst-case slack (see buildGP). The surviving
// solutions are sorted by objective with a permutation-order tie-break,
// so the top set — and therefore the final design — is identical across
// runs regardless of scheduler width or completion order (cached and
// uncached runs must produce byte-identical results).
type solveStage struct{}

func (solveStage) Name() string { return "solve" }

func (solveStage) Run(r *Run) error {
	solved, err := r.solvePass(false)
	if err != nil {
		return err
	}
	if len(solved) == 0 {
		solved, err = r.solvePass(true)
		if err != nil {
			return err
		}
	}
	if len(solved) == 0 {
		return fmt.Errorf("%w: all %d permutation classes infeasible", ErrNoDesign, len(r.jobs))
	}
	sort.Slice(solved, func(i, j int) bool {
		//tlvet:ignore floateq -- sort comparator: tolerance-based equality breaks strict weak ordering
		if solved[i].objective != solved[j].objective {
			return solved[i].objective < solved[j].objective
		}
		if c := slices.Compare(solved[i].permL1, solved[j].permL1); c != 0 {
			return c < 0
		}
		return slices.Compare(solved[i].permSRAM, solved[j].permSRAM) < 0
	})
	r.solved = solved
	return nil
}

// solvePass submits every pair job to the scheduler and collects the
// feasible solutions in job order. Per-job results land in distinct
// slots, so only the shared stats need a lock; admission stops at the
// first error or context cancellation.
func (r *Run) solvePass(capSlack bool) ([]solvedPair, error) {
	o := r.obs
	tracing := o.TracingEnabled()
	passSpan := o.StartSpan(r.parent, "gp-solve-pass")
	if passSpan != nil {
		passSpan.Annotate(obs.Int("jobs", len(r.jobs)), obs.Attr{Key: "cap_slack", Value: capSlack})
	}
	defer passSpan.End()
	// Hoisted metric handles: nil no-ops when telemetry is off, so the
	// job body pays only nil checks.
	pairsC := o.Counter("core.pairs_solved")
	infeasC := o.Counter("core.gp_infeasible")
	subC := o.Counter("core.gp_suboptimal")
	results := make([]*solvedPair, len(r.jobs))
	var mu sync.Mutex
	// Admission happens under the pass span so scheduler queue waits
	// show up as its sched-wait children.
	ctx := obs.ContextWithSpan(r.ctx, passSpan)
	err := r.sched.ForEach(ctx, len(r.jobs), func(i int) error {
		j := r.jobs[i]
		var pairSpan *obs.Span
		if tracing {
			pairSpan = o.StartSpan(passSpan, "gp-pair",
				obs.Stringer("perm_l1", j.l1), obs.Stringer("perm_sram", j.sram))
		}
		perms := dataflow.StandardPerms(j.l1, j.sram)
		fspan := o.StartSpan(pairSpan, "formulate")
		f, err := buildGP(r.nest, perms, r.av, r.opts.Criterion, r.varT, capSlack)
		fspan.End()
		if err != nil {
			pairSpan.End()
			return err
		}
		sopts := r.opts.Solver
		sopts.Obs = o
		sopts.Span = pairSpan
		res, err := f.solve(sopts)
		pairsC.Inc()
		mu.Lock()
		r.stats.PairsSolved++
		if err == nil {
			switch res.Status {
			case solver.Infeasible:
				r.stats.Infeasible++
				infeasC.Inc()
			case solver.Suboptimal:
				r.stats.Suboptimal++
				subC.Inc()
				fallthrough
			case solver.Optimal:
				r.stats.NewtonIters += res.Newton
				results[i] = &solvedPair{
					permL1: j.l1, permSRAM: j.sram,
					x: res.X, objective: res.Objective,
				}
			}
		}
		mu.Unlock()
		if pairSpan != nil {
			if err == nil {
				pairSpan.Annotate(
					obs.String("status", res.Status.String()),
					obs.Int("newton", res.Newton),
					obs.Float("objective", res.Objective),
				)
			}
			pairSpan.End()
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	solved := make([]solvedPair, 0, len(results))
	for _, sp := range results {
		if sp != nil {
			solved = append(solved, *sp)
		}
	}
	return solved, nil
}
