package pipeline

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/solver"
)

// solveStage runs one GP per class pair through the shared scheduler.
// When every strict GP is infeasible (tiny capacities plus the
// posynomial overestimate), a second pass loosens the capacity bounds
// by the relaxation's worst-case slack (see buildGP). The surviving
// solutions are sorted by objective with a permutation-order tie-break,
// so the top set — and therefore the final design — is identical across
// runs regardless of scheduler width or completion order (cached and
// uncached runs must produce byte-identical results).
type solveStage struct{}

func (solveStage) Name() string { return "solve" }

func (solveStage) Run(r *Run) error {
	solved, err := r.solvePass(false)
	if err != nil {
		return err
	}
	if len(solved) == 0 {
		solved, err = r.solvePass(true)
		if err != nil {
			return err
		}
	}
	if len(solved) == 0 {
		return fmt.Errorf("%w: all %d permutation classes infeasible", ErrNoDesign, len(r.jobs))
	}
	sort.Slice(solved, func(i, j int) bool {
		//tlvet:ignore floateq -- sort comparator: tolerance-based equality breaks strict weak ordering
		if solved[i].objective != solved[j].objective {
			return solved[i].objective < solved[j].objective
		}
		if c := slices.Compare(solved[i].permL1, solved[j].permL1); c != 0 {
			return c < 0
		}
		return slices.Compare(solved[i].permSRAM, solved[j].permSRAM) < 0
	})
	r.solved = solved
	return nil
}

// solvePass solves the pair jobs in two deterministic phases and
// collects the feasible solutions in job order.
//
// The job list is the L1×SRAM class cross product, laid out as
// contiguous groups of len(classesSRAM) jobs sharing one L1 class.
// Phase A cold-solves the first job of every group; the TopClasses-th
// smallest feasible seed objective becomes the global prune threshold.
// Phase B walks each group sequentially, warm-starting every solve from
// the group's previous solution and skipping pairs whose objective
// lower bound (boundCtx) exceeds the threshold.
//
// Both optimizations preserve the exact result set. Warm starts only
// move the interior-point starting iterate. Pruning is conservative: a
// pruned pair's true optimum exceeds the threshold, and at least
// TopClasses deterministically-chosen solves sit at or below it, so the
// pruned pair could never have entered the integerized top set. The
// threshold tightens per group using only that group's own solves plus
// the global seeds, keeping every decision independent of scheduler
// width and completion order. Per-job results land in distinct slots,
// so only the shared stats need a lock; admission stops at the first
// error or context cancellation.
func (r *Run) solvePass(capSlack bool) ([]solvedPair, error) {
	o := r.obs
	tracing := o.TracingEnabled()
	passSpan := o.StartSpan(r.parent, "gp-solve-pass")
	if passSpan != nil {
		passSpan.Annotate(obs.Int("jobs", len(r.jobs)), obs.Attr{Key: "cap_slack", Value: capSlack})
	}
	defer passSpan.End()
	// Hoisted metric handles: nil no-ops when telemetry is off, so the
	// job body pays only nil checks.
	pairsC := o.Counter("core.pairs_solved")
	infeasC := o.Counter("core.gp_infeasible")
	subC := o.Counter("core.gp_suboptimal")
	prunedC := o.Counter("core.pairs_pruned")
	results := make([]*solvedPair, len(r.jobs))
	var mu sync.Mutex
	// Admission happens under the pass span so scheduler queue waits
	// show up as its sched-wait children.
	ctx := obs.ContextWithSpan(r.ctx, passSpan)

	// solveJob formulates and solves job i on the given workspace.
	// xHint, when non-nil, warm-starts the solve from a neighboring
	// solution (positive space). bound, when non-nil, may prune the pair
	// after the cheap half of formulation; pruned pairs return nil.
	solveJob := func(i int, ws *solver.Workspace, xHint []float64, bound func(*formulation) bool) (*solvedPair, error) {
		j := r.jobs[i]
		var pairSpan *obs.Span
		if tracing {
			pairSpan = o.StartSpan(passSpan, "gp-pair",
				obs.Stringer("perm_l1", j.l1), obs.Stringer("perm_sram", j.sram))
		}
		perms := dataflow.StandardPerms(j.l1, j.sram)
		fspan := o.StartSpan(pairSpan, "formulate")
		f, err := newFormulation(r.nest, perms, r.av, r.opts.Criterion, r.varT)
		if err != nil {
			fspan.End()
			pairSpan.End()
			return nil, err
		}
		if bound != nil && bound(f) {
			fspan.End()
			prunedC.Inc()
			mu.Lock()
			r.stats.Pruned++
			mu.Unlock()
			if pairSpan != nil {
				pairSpan.Annotate(obs.String("status", "pruned"))
				pairSpan.End()
			}
			return nil, nil
		}
		err = f.finish(capSlack)
		fspan.End()
		if err != nil {
			pairSpan.End()
			return nil, err
		}
		if xHint != nil && coldHintFeasible(f) {
			// A strictly feasible cold hint beats the neighbor's solution:
			// the analytic hint is well-centered, while a neighboring
			// optimum hugs its active constraints and costs extra damped
			// Newton steps at the first centerings (measured ~15% more
			// iterations on the Table II layers). The warm hint pays off
			// exactly when the cold hint would force a phase-I solve that
			// the neighbor's point can skip.
			xHint = nil
		}
		sopts := r.opts.Solver
		sopts.Obs = o
		sopts.Span = pairSpan
		sopts.Workspace = ws
		sopts.WarmStart = xHint != nil
		res, err := f.solveFrom(xHint, sopts)
		pairsC.Inc()
		var sp *solvedPair
		mu.Lock()
		r.stats.PairsSolved++
		if err == nil {
			switch res.Status {
			case solver.Infeasible:
				r.stats.Infeasible++
				infeasC.Inc()
			case solver.Suboptimal:
				r.stats.Suboptimal++
				subC.Inc()
				fallthrough
			case solver.Optimal:
				r.stats.NewtonIters += res.Newton
				sp = &solvedPair{
					permL1: j.l1, permSRAM: j.sram,
					x: res.X, objective: res.Objective,
				}
				results[i] = sp
			}
		}
		mu.Unlock()
		if pairSpan != nil {
			if err == nil {
				pairSpan.Annotate(
					obs.String("status", res.Status.String()),
					obs.Int("newton", res.Newton),
					obs.Float("objective", res.Objective),
				)
			}
			pairSpan.End()
		}
		return sp, err
	}

	// The formulate stage lays out jobs as nGroups contiguous groups of
	// groupSize (one group per L1 class, one job per SRAM class).
	groupSize := len(r.classesSRAM)
	if groupSize == 0 || len(r.jobs) == 0 {
		return nil, nil
	}
	nGroups := len(r.jobs) / groupSize
	warm := !r.opts.DisableWarmStart
	prune := !r.opts.DisableBoundPruning

	// Phase A: cold-solve each group's first pair. Seeds are never
	// pruned, so the threshold below is derived from a fixed job set.
	err := r.sched.ForEach(ctx, nGroups, func(g int) error {
		ws := r.getWS()
		defer r.putWS(ws)
		_, err := solveJob(g*groupSize, ws, nil, nil)
		return err
	})
	if err != nil {
		return nil, err
	}

	// Prune threshold: with k = TopClasses, only the k smallest
	// objectives survive into integerization, and the seeds already
	// supply candidates at or below their k-th smallest — any pair whose
	// objective provably exceeds it is skippable. Fewer than k feasible
	// seeds means no pruning (threshold +Inf), which also keeps the
	// capSlack retry exact: a pass with zero feasible solves never
	// pruned anything.
	k := r.opts.TopClasses
	var seedObjs []float64
	if prune {
		seedObjs = make([]float64, 0, nGroups)
		for g := 0; g < nGroups; g++ {
			if sp := results[g*groupSize]; sp != nil {
				seedObjs = append(seedObjs, sp.objective)
			}
		}
		sort.Float64s(seedObjs)
	}
	var bc *boundCtx
	if prune {
		bc = newBoundCtx(r.nest, r.av, r.varT)
	}

	// Phase B: walk each group sequentially, chaining warm starts and
	// tightening the group-local threshold as solutions arrive. The
	// threshold set is the global seeds plus this group's completed
	// solves — never another group's — so pruning decisions do not
	// depend on cross-group timing.
	err = r.sched.ForEach(ctx, nGroups, func(g int) error {
		ws := r.getWS()
		defer r.putWS(ws)
		var known []float64
		threshold := math.Inf(1)
		if prune {
			known = append(make([]float64, 0, len(seedObjs)+groupSize-1), seedObjs...)
			if len(known) >= k {
				threshold = known[k-1]
			}
		}
		var hint []float64
		if seed := results[g*groupSize]; warm && seed != nil {
			hint = seed.x
		}
		for idx := 1; idx < groupSize; idx++ {
			var bound func(*formulation) bool
			if prune {
				bound = func(f *formulation) bool {
					return bc.lowerBound(f.objective) > threshold
				}
			}
			sp, err := solveJob(g*groupSize+idx, ws, hint, bound)
			if err != nil {
				return err
			}
			if sp == nil {
				continue
			}
			if warm {
				hint = sp.x
			}
			if prune {
				pos := sort.SearchFloat64s(known, sp.objective)
				known = append(known, 0)
				copy(known[pos+1:], known[pos:])
				known[pos] = sp.objective
				if len(known) >= k {
					threshold = known[k-1]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	solved := make([]solvedPair, 0, len(results))
	for _, sp := range results {
		if sp != nil {
			solved = append(solved, *sp)
		}
	}
	return solved, nil
}

// coldHintFeasible reports whether the formulation's analytic hint lies
// strictly inside every inequality constraint (in the original positive
// variables; the solver re-checks after projecting onto the equality
// manifold either way, so this is a routing heuristic, not a proof).
func coldHintFeasible(f *formulation) bool {
	x := f.hint()
	for _, c := range f.prog.Ineq {
		if c.Eval(x) >= 1 {
			return false
		}
	}
	return true
}
