package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/workloads"
)

// TestExecuteSchedulingIndependent is the refactor's core promise: the
// selected design point is a pure function of (problem, options), not
// of how wide the scheduler happens to be or how its goroutines
// interleave. A single-token scheduler (strictly sequential leaf work),
// a wide one, and a repeated wide run must all select byte-identical
// results — including the search statistics, which count work, not
// threads.
func TestExecuteSchedulingIndependent(t *testing.T) {
	l, ok := workloads.ByName("resnet18_L9")
	if !ok {
		t.Fatal("unknown layer resnet18_L9")
	}
	p, err := l.Problem()
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Eyeriss()
	run := func(parallel int) *Result {
		t.Helper()
		res, err := Execute(context.Background(),
			p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for name, res := range map[string]*Result{
		"parallel=8":        run(8),
		"parallel=8 repeat": run(8),
		"parallel=3":        run(3),
	} {
		if !reflect.DeepEqual(seq.Best, res.Best) {
			t.Errorf("%s: design point differs from sequential run\nseq:  %+v\ngot:  %+v",
				name, seq.Best, res.Best)
		}
		if seq.Stats != res.Stats {
			t.Errorf("%s: stats differ from sequential run\nseq: %+v\ngot: %+v",
				name, seq.Stats, res.Stats)
		}
	}
}

// TestExecuteSharedSchedulerMatchesOwn: attaching a shared scheduler to
// the context (the OptimizeLayers batch path) must not change the
// result either.
func TestExecuteSharedSchedulerMatchesOwn(t *testing.T) {
	p := loopnest.MatMul(128, 128, 128)
	a := arch.Eyeriss()
	opts := Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a, Parallel: 4}
	own, err := Execute(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithScheduler(context.Background(), NewScheduler(2))
	shared, err := Execute(ctx, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(own.Best, shared.Best) || own.Stats != shared.Stats {
		t.Fatalf("shared-scheduler run differs:\nown:    %+v / %+v\nshared: %+v / %+v",
			own.Best, own.Stats, shared.Best, shared.Stats)
	}
}

// TestExecuteAblationsIdentical: warm starts and bound pruning are
// performance switches, not search switches — disabling either (or
// both) must reproduce the default run's design point and statistics
// exactly. Only Stats.Pruned may differ, and on workloads where the
// bound never fires even that matches.
func TestExecuteAblationsIdentical(t *testing.T) {
	l, ok := workloads.ByName("resnet18_L9")
	if !ok {
		t.Fatal("unknown layer resnet18_L9")
	}
	p, err := l.Problem()
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Eyeriss()
	base := Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a, Parallel: 4}
	run := func(opts Options) *Result {
		t.Helper()
		res, err := Execute(context.Background(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def := run(base)
	for name, opts := range map[string]func(Options) Options{
		"no warm start":    func(o Options) Options { o.DisableWarmStart = true; return o },
		"no bound pruning": func(o Options) Options { o.DisableBoundPruning = true; return o },
		"both off": func(o Options) Options {
			o.DisableWarmStart, o.DisableBoundPruning = true, true
			return o
		},
	} {
		res := run(opts(base))
		if !reflect.DeepEqual(def.Best, res.Best) {
			t.Errorf("%s: design point differs from default run", name)
		}
		ds, rs := def.Stats, res.Stats
		ds.Pruned, rs.Pruned = 0, 0
		ds.NewtonIters, rs.NewtonIters = 0, 0 // iterate counts legitimately differ
		if ds != rs {
			t.Errorf("%s: stats differ from default run\ndef: %+v\ngot: %+v", name, ds, rs)
		}
	}
}

// TestWorkspacePoolSharedScheduler hammers the per-run workspace pool:
// several concurrent Execute calls share one narrow scheduler, so pool
// gets/puts from different runs interleave on the same OS threads. Run
// with -race this is the pool's data-race gate; the results must also
// match an isolated sequential run exactly.
func TestWorkspacePoolSharedScheduler(t *testing.T) {
	l, ok := workloads.ByName("resnet18_L9")
	if !ok {
		t.Fatal("unknown layer resnet18_L9")
	}
	p, err := l.Problem()
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Eyeriss()
	opts := Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a, Parallel: 4}
	want, err := Execute(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithScheduler(context.Background(), NewScheduler(3))
	const runs = 4
	results := make([]*Result, runs)
	errs := make([]error, runs)
	done := make(chan int, runs)
	for i := 0; i < runs; i++ {
		go func(i int) {
			results[i], errs[i] = Execute(ctx, p, opts)
			done <- i
		}(i)
	}
	for i := 0; i < runs; i++ {
		<-done
	}
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(want.Best, results[i].Best) || want.Stats != results[i].Stats {
			t.Errorf("run %d differs from isolated run", i)
		}
	}
}

// TestExecuteCancelled: a cancelled context must surface promptly as a
// context error, not as a spurious "all classes infeasible".
func TestExecuteCancelled(t *testing.T) {
	p := loopnest.MatMul(256, 256, 256)
	a := arch.Eyeriss()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Execute(ctx, p, Options{Criterion: model.MinEnergy, Mode: FixedArch, Arch: &a})
	if err == nil {
		t.Fatal("expected error from cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled chain", err)
	}
}
