// Package pipeline implements the Thistle optimization flow as a
// sequence of explicit stages sharing a per-run context:
//
//	Enumerate → Formulate → Solve → Integerize → Validate → Select
//
// Enumerate produces the pruned tile-loop permutation classes at both
// copy levels; Formulate builds one job per class pair over the shared
// geometric-program variable set; Solve runs the interior-point backend
// over the jobs (with a capacity-slack retry pass when every strict GP
// is infeasible); Integerize converts the best relaxed solutions to
// integer mappings via divisor-ladder candidate generation; Validate
// re-checks the surviving candidates against the analytical model; and
// Select picks the winner with a deterministic, scheduling-independent
// tie-break.
//
// Leaf compute — GP solves and integerization searches — is admitted
// through a single bounded Scheduler shared by every placement (and,
// when the caller attaches one to the context, every layer of a batch
// run), so concurrency is capped once instead of per call site.
// Orchestration goroutines never hold scheduler tokens.
//
// The package is the engine behind the public core.Optimize facade; it
// keeps the facade's observability contract, emitting the historical
// span names ("rs-placement", "enumerate-classes", "gp-solve-pass",
// "gp-pair", "formulate", "integerize", "model-eval") and "core.*"
// metric names, plus a per-stage duration histogram
// "pipeline.stage.<name>".
package pipeline

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/solver"
)

// Run is the per-run context shared by the stages of one optimization
// pass (one problem, one RS placement). Stages communicate exclusively
// through it: each stage reads what its predecessors produced and adds
// its own products, so the executor can instrument every boundary
// uniformly.
type Run struct {
	ctx   context.Context
	prob  *loopnest.Problem
	opts  Options // defaults applied
	obs   *obs.Obs
	sched *Scheduler
	// parent is the enclosing placement span; stage spans hang off it.
	parent *obs.Span

	// Built by the executor before the first stage.
	nest *dataflow.Nest
	av   *archVars
	varT expr.VarID

	// Stage products, in pipeline order.
	classesL1, classesSRAM []dataflow.PermClass // Enumerate
	jobs                   []pairJob            // Formulate
	solved                 []solvedPair         // Solve (sorted, deterministic)
	cands                  []*integerized       // Integerize, filtered by Validate
	best                   *DesignPoint         // Select

	// Solver-workspace pool for the solve stage: every pair GP of a run
	// shares one equality system, so a recycled workspace almost always
	// hits its equality-elimination cache. Sized implicitly by the
	// scheduler width (a workspace is only out of the pool while a job
	// holds it).
	wsMu   sync.Mutex
	wsFree []*solver.Workspace

	stats Stats
}

// getWS takes a solver workspace from the run's pool (or makes one).
func (r *Run) getWS() *solver.Workspace {
	r.wsMu.Lock()
	defer r.wsMu.Unlock()
	if n := len(r.wsFree); n > 0 {
		ws := r.wsFree[n-1]
		r.wsFree = r.wsFree[:n-1]
		return ws
	}
	return solver.NewWorkspace()
}

// putWS returns a workspace to the pool for the next job.
func (r *Run) putWS(ws *solver.Workspace) {
	r.wsMu.Lock()
	r.wsFree = append(r.wsFree, ws)
	r.wsMu.Unlock()
}

// Context returns the run's context (cancelling it stops admission of
// new leaf jobs).
func (r *Run) Context() context.Context { return r.ctx }

// Problem returns the problem under optimization.
func (r *Run) Problem() *loopnest.Problem { return r.prob }

// Options returns the run's resolved options.
func (r *Run) Options() Options { return r.opts }

// Stats returns the search-effort counters accumulated so far.
func (r *Run) Stats() Stats { return r.stats }

// pairJob is one permutation-class pair to be solved as a GP.
type pairJob struct {
	l1, sram []int
}

// integerized is one pair's best integer design, in solved-pair order.
type integerized struct {
	pair solvedPair
	cand *candidate
	rep  *model.Report
}

// Stage is one step of the optimization pipeline. Stages are executed
// in order against a shared *Run; a stage returning an error aborts the
// run (ErrNoDesign-wrapped errors still surface the accumulated Stats).
type Stage interface {
	// Name is the stage's identifier, used for the per-stage duration
	// histogram ("pipeline.stage.<name>") and debug logs.
	Name() string
	Run(*Run) error
}

// Stages returns the standard stage sequence of one optimization pass.
func Stages() []Stage {
	return []Stage{
		enumerateStage{},
		formulateStage{},
		solveStage{},
		integerizeStage{},
		validateStage{},
		selectStage{},
	}
}

// Execute runs the full flow for one problem: one staged pass per
// configured RS placement (all placements in flight concurrently,
// drawing leaf work from one scheduler), keeping the best design and
// accumulating search-effort stats across placements. Selection is
// deterministic and scheduling-independent: placements are merged in
// configuration order and candidate ties are broken by permutation
// order, so the same inputs produce byte-identical results at any
// scheduler width.
func Execute(ctx context.Context, p *loopnest.Problem, opts Options) (*Result, error) {
	opts = opts.WithDefaults()
	o := obs.FromContext(ctx)
	sched := SchedulerFromContext(ctx)
	if sched == nil {
		sched = NewScheduler(opts.Parallel)
		ctx = ContextWithScheduler(ctx, sched)
	}
	placements := opts.RSPlacements
	if placements == nil {
		placements = []dataflow.RSPlacement{dataflow.RSAtRegister}
		if hasUntiledKernelLoops(p) {
			placements = append(placements, dataflow.RSAtLevel1)
		}
	}
	if o.Enabled(obs.Info) {
		o.Logf(obs.Info, "optimize %s: criterion=%v mode=%v placements=%d",
			p.Name, opts.Criterion, opts.Mode, len(placements))
	}
	// Placement passes are orchestration: they run as plain goroutines
	// (no scheduler tokens) and compete only through the leaf jobs they
	// submit. Results are merged in placement order below, so the
	// concurrency here cannot change the selected design.
	type placementOut struct {
		res *Result
		err error
	}
	outs := make([]placementOut, len(placements))
	var wg sync.WaitGroup
	for i, rs := range placements {
		po := opts
		po.Nest.RS = rs
		wg.Add(1)
		go func(i int, rs dataflow.RSPlacement, po Options) {
			defer wg.Done()
			pctx, pspan := obs.StartSpan(ctx, "rs-placement", obs.String("rs", rs.String()))
			res, err := executeOne(pctx, p, po, sched)
			if res != nil {
				pspan.Annotate(
					obs.Int("classes_l1", res.Stats.ClassesL1),
					obs.Int("classes_sram", res.Stats.ClassesSRAM),
					obs.Int("pairs_solved", res.Stats.PairsSolved),
				)
			}
			pspan.End()
			outs[i] = placementOut{res, err}
		}(i, rs, po)
	}
	wg.Wait()

	var best *Result
	var combined Stats
	var firstErr error
	for i, out := range outs {
		if out.res != nil {
			// Accumulate search effort across placements — including
			// placements that found no design but still solved GPs —
			// instead of overwriting with the best placement's counts.
			combined.ClassesL1 += out.res.Stats.ClassesL1
			combined.ClassesSRAM += out.res.Stats.ClassesSRAM
			combined.PairsSolved += out.res.Stats.PairsSolved
			combined.Candidates += out.res.Stats.Candidates
			combined.NewtonIters += out.res.Stats.NewtonIters
			combined.Infeasible += out.res.Stats.Infeasible
			combined.Suboptimal += out.res.Stats.Suboptimal
			combined.Pruned += out.res.Stats.Pruned
		}
		if out.err != nil {
			if o.Enabled(obs.Debug) {
				o.Logf(obs.Debug, "optimize %s: placement %v failed: %v", p.Name, placements[i], out.err)
			}
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		if best == nil || model.Score(opts.Criterion, out.res.Best.Report) < model.Score(opts.Criterion, best.Best.Report) {
			best = out.res
		}
	}
	if best == nil {
		return nil, firstErr
	}
	combined.FreshSolves = combined.PairsSolved
	best.Stats = combined
	if o.Enabled(obs.Info) {
		o.Logf(obs.Info, "optimize %s: done, %d GPs solved (%d newton iters), %d integer candidates",
			p.Name, combined.PairsSolved, combined.NewtonIters, combined.Candidates)
	}
	return best, nil
}

// executeOne runs the staged pipeline for one fixed nest configuration.
func executeOne(ctx context.Context, p *loopnest.Problem, opts Options, sched *Scheduler) (*Result, error) {
	if err := opts.Arch.Validate(); err != nil {
		return nil, err
	}
	o := obs.FromContext(ctx)
	nest, err := dataflow.StandardNest(p, opts.Nest)
	if err != nil {
		return nil, err
	}
	// Architecture variables (registered on the shared VarSet so they can
	// appear in the same GP as the trip counts), and the delay variable.
	av := &archVars{mode: opts.Mode, tech: opts.Arch.Tech, fixed: *opts.Arch, budget: opts.AreaBudget}
	if opts.Mode == CoDesign {
		av.varR = nest.Vars.NewVar("arch_R")
		av.varS = nest.Vars.NewVar("arch_S")
		av.varP = nest.Vars.NewVar("arch_P")
	}
	varT := nest.Vars.NewVar("delay_T")

	r := &Run{
		ctx:    ctx,
		prob:   p,
		opts:   opts,
		obs:    o,
		sched:  sched,
		parent: obs.SpanFromContext(ctx),
		nest:   nest,
		av:     av,
		varT:   varT,
	}
	for _, st := range Stages() {
		//tlvet:ignore wallclock -- telemetry: stage duration feeds the pipeline.stage.* histogram only
		start := time.Now()
		// Each stage runs under its own "stage:<name>" span: spans the
		// stage opens (and the scheduler's sched-wait children, which
		// follow the context's current span) nest beneath it. Stages run
		// sequentially on this goroutine, so the swap is safe.
		stageSpan := o.StartSpan(r.parent, "stage:"+st.Name())
		var prevParent *obs.Span
		var prevCtx context.Context
		if stageSpan != nil {
			prevParent, prevCtx = r.parent, r.ctx
			r.parent = stageSpan
			r.ctx = obs.ContextWithSpan(r.ctx, stageSpan)
		}
		err := st.Run(r)
		if stageSpan != nil {
			r.parent, r.ctx = prevParent, prevCtx
			stageSpan.End()
		}
		if o.MetricsEnabled() {
			//tlvet:ignore wallclock -- telemetry: stage duration feeds the pipeline.stage.* histogram only
			o.Histogram("pipeline.stage." + st.Name()).Observe(time.Since(start))
		}
		if err != nil {
			if errors.Is(err, ErrNoDesign) {
				// The search effort behind a no-design outcome still
				// counts toward the cross-placement totals.
				return &Result{Stats: r.stats}, err
			}
			return nil, err
		}
	}
	return &Result{Best: r.best, Stats: r.stats}, nil
}

// hasUntiledKernelLoops reports whether the problem has kernel iterators
// (named r/s) with extent > 1, i.e. whether the two RS placements differ.
func hasUntiledKernelLoops(p *loopnest.Problem) bool {
	for _, name := range []string{"r", "s"} {
		if i := p.IterIndex(name); i >= 0 && p.Iters[i].Extent > 1 {
			return true
		}
	}
	return false
}

// enumerateStage produces the permutation classes at both copy levels.
type enumerateStage struct{}

func (enumerateStage) Name() string { return "enumerate" }

func (enumerateStage) Run(r *Run) error {
	o := r.obs
	enumSpan := o.StartSpan(r.parent, "enumerate-classes")
	var syms []dataflow.Involution
	if !r.opts.DisablePruning {
		syms = dataflow.SymmetricInvolutions(r.prob)
	}
	classesL1, err := enumerate(r.nest, dataflow.StandardLevelL1, syms, r.opts.DisablePruning)
	if err != nil {
		enumSpan.End()
		return err
	}
	classesSRAM, err := enumerate(r.nest, dataflow.StandardLevelSRAM, syms, r.opts.DisablePruning)
	if err != nil {
		enumSpan.End()
		return err
	}
	if enumSpan != nil {
		enumSpan.Annotate(obs.Int("classes_l1", len(classesL1)), obs.Int("classes_sram", len(classesSRAM)))
		enumSpan.End()
	}
	if o.MetricsEnabled() {
		// Per-placement class counts, plus running totals across the run.
		rs := r.opts.Nest.RS.String()
		o.Gauge("core.classes_l1." + rs).Set(int64(len(classesL1)))
		o.Gauge("core.classes_sram." + rs).Set(int64(len(classesSRAM)))
		o.Counter("core.classes_l1").Add(int64(len(classesL1)))
		o.Counter("core.classes_sram").Add(int64(len(classesSRAM)))
	}
	if o.Enabled(obs.Debug) {
		o.Logf(obs.Debug, "optimize %s: placement %v: %d x %d permutation classes",
			r.prob.Name, r.opts.Nest.RS, len(classesL1), len(classesSRAM))
	}
	r.classesL1, r.classesSRAM = classesL1, classesSRAM
	r.stats.ClassesL1 = len(classesL1)
	r.stats.ClassesSRAM = len(classesSRAM)
	return nil
}

// enumerate returns permutation classes, or every raw permutation when
// pruning is disabled (ablation mode).
func enumerate(nest *dataflow.Nest, level int, syms []dataflow.Involution, raw bool) ([]dataflow.PermClass, error) {
	if !raw {
		return nest.EnumerateClasses(level, syms)
	}
	// Raw mode: every permutation of the active set becomes its own
	// "class".
	lvl := nest.Levels[level]
	var out []dataflow.PermClass
	permuteAll(append([]int(nil), lvl.Active...), func(p []int) {
		out = append(out, dataflow.PermClass{Perm: append([]int(nil), p...), Size: 1})
	})
	return out, nil
}

func permuteAll(s []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(s)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				s[i], s[k-1] = s[k-1], s[i]
			} else {
				s[0], s[k-1] = s[k-1], s[0]
			}
		}
	}
	if len(s) == 0 {
		fn(s)
		return
	}
	rec(len(s))
}

// formulateStage turns the class cross product into the GP job list.
// The per-pair posynomial construction itself stays lazy — each solve
// job builds (and discards) its program right before solving, keeping
// peak memory proportional to the scheduler width rather than the
// job count.
type formulateStage struct{}

func (formulateStage) Name() string { return "formulate" }

func (formulateStage) Run(r *Run) error {
	r.jobs = make([]pairJob, 0, len(r.classesL1)*len(r.classesSRAM))
	for _, c1 := range r.classesL1 {
		for _, c3 := range r.classesSRAM {
			r.jobs = append(r.jobs, pairJob{c1.Perm, c3.Perm})
		}
	}
	return nil
}
