package pipeline

import (
	"errors"
	"runtime"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/dataflow"
	"repro/internal/model"
	"repro/internal/solver"
)

// ErrNoDesign is returned when no feasible design point was found.
var ErrNoDesign = errors.New("core: no feasible design point")

// Mode selects between dataflow-only optimization on a fixed architecture
// and full architecture-dataflow co-design.
type Mode int

const (
	// FixedArch optimizes the dataflow for a given architecture (the
	// paper's Figs. 4 and 7 setting).
	FixedArch Mode = iota
	// CoDesign additionally optimizes P, R, and S under an area budget
	// (Figs. 5, 6, and 8).
	CoDesign
)

// String returns the CLI spelling of the mode ("fixed" or "codesign").
func (m Mode) String() string {
	if m == CoDesign {
		return "codesign"
	}
	return "fixedarch"
}

// Options configures an Optimize run. Zero values select defaults.
type Options struct {
	// Criterion is energy or delay minimization.
	Criterion model.Criterion
	// Mode selects fixed-architecture dataflow optimization or co-design.
	Mode Mode
	// Arch is the target architecture (FixedArch) or, in CoDesign mode,
	// supplies the technology constants. Defaults to Eyeriss.
	Arch *arch.Arch
	// AreaBudget bounds the chip area in CoDesign mode. Defaults to the
	// Eyeriss-equal area of the paper's evaluation.
	AreaBudget float64
	// NDiv is the paper's n: divisor candidates per tile variable
	// (default 2).
	NDiv int
	// NPow2 is the paper's N: power-of-two candidates per capacity
	// variable (default 2).
	NPow2 int
	// MinUtilization filters fixed-arch integer candidates (default 0,
	// i.e. disabled; the paper mentions a threshold without a value).
	MinUtilization float64
	// MaxCandidates caps the integerization cross product (default 65536).
	MaxCandidates int
	// TopClasses is how many best GP class pairs are integerized
	// (default 3).
	TopClasses int
	// Parallel sizes the run's bounded scheduler: the maximum number of
	// leaf compute jobs (GP solves, integerization searches) in flight
	// at once (default NumCPU). When a scheduler is attached to the
	// context (ContextWithScheduler), that scheduler's size wins, so
	// batch drivers submitting many layers concurrently share one bound
	// instead of multiplying it.
	Parallel int
	// Nest customizes the tiling structure. Nest.RS is ignored when
	// RSPlacements is nil (the default), which tries both placements.
	Nest dataflow.StandardOptions
	// RSPlacements lists the placements of the untiled kernel loops to
	// try, keeping the best feasible design. Nil tries both the register
	// tile and the level-1 loops (layers with tiny register budgets are
	// only feasible with the latter); problems without untiled kernel
	// loops run once.
	RSPlacements []dataflow.RSPlacement
	// Solver tunes the interior-point method.
	Solver solver.Options
	// DisablePruning turns off hoist-prefix/symmetry class dedup and
	// enumerates raw permutations (for the pruning ablation).
	DisablePruning bool
	// DisableBoundPruning turns off the objective-lower-bound class
	// pruning in the solve stage: every pair GP is formulated and solved
	// even when a cheap bound proves it can never enter the integerized
	// top set. Results are identical either way (the bound is
	// conservative and the prune threshold is derived only from
	// deterministically-ordered solves); this is an escape hatch and
	// ablation knob, so it is excluded from the solve signature.
	DisableBoundPruning bool
	// DisableWarmStart makes every pair GP start from the cold analytic
	// hint instead of chaining the previous solution of its L1 group.
	// Warm starts only change the interior-point iteration count, not
	// the optimum; like DisableBoundPruning this is an escape hatch
	// excluded from the solve signature.
	DisableWarmStart bool
	// Cache, when non-nil, memoizes whole Optimize results by content
	// signature (see core.SolveSignature): a repeated (problem shape ×
	// architecture × options) request returns the cached design point
	// without formulating or solving anything, and concurrent requests
	// for the same signature collapse onto a single solve. The cache is
	// consulted by the core facade, not by the pipeline stages. A cache
	// attached to the context via core.ContextWithCache is used when
	// this field is nil.
	Cache *cache.Cache[*Result]
}

// WithDefaults resolves zero option values to their defaults. The core
// facade applies it before both executing the pipeline and computing a
// solve signature, so an explicit default and a zero value behave (and
// hash) identically.
func (o Options) WithDefaults() Options {
	if o.Arch == nil {
		e := arch.Eyeriss()
		o.Arch = &e
	}
	if o.AreaBudget == 0 {
		o.AreaBudget = arch.EyerissAreaBudget()
	}
	if o.NDiv == 0 {
		o.NDiv = 2
		if o.Criterion != model.MinEnergy {
			// Delay (and EDP) quality hinges on hitting the exact
			// PE-maximizing divisor combinations, which a width-2 ladder
			// around the relaxed solution can miss.
			o.NDiv = 3
		}
	}
	if o.NPow2 == 0 {
		o.NPow2 = 2
	}
	if o.MaxCandidates == 0 {
		// Evaluations are microseconds each; a generous cap lets the
		// width-3 delay ladder cover its full cross product.
		o.MaxCandidates = 1 << 20
	}
	if o.TopClasses == 0 {
		o.TopClasses = 3
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.NumCPU()
	}
	if o.Solver.Tol == 0 {
		// The integerization step only needs ~2 significant digits from
		// the relaxation; a loose gap keeps thousands of solves fast.
		o.Solver.Tol = 1e-6
	}
	return o
}

// DesignPoint is one complete optimized design.
type DesignPoint struct {
	Arch    arch.Arch
	Mapping *model.Mapping
	Report  *model.Report
	// PermL1 and PermSRAM are the copy-level loop orders (outer-to-inner).
	PermL1, PermSRAM []int
	// NestOptions records the tiling structure the mapping was built for
	// (notably the kernel-loop placement); required to re-evaluate or
	// export the mapping.
	NestOptions dataflow.StandardOptions
	// GPObjective is the relaxed optimum of the geometric program the
	// point was integerized from.
	GPObjective float64
}

// Stats summarizes the search effort. PairsSolved, Candidates, and the
// related counters always describe the search that produced the
// returned design — even when that search happened in an earlier run
// and the result was served from a SolveCache. FreshSolves and
// FromCache describe what this invocation actually did, so cached runs
// never report a misleading "0 GPs solved" (nor pretend to have solved
// GPs they reused).
type Stats struct {
	ClassesL1, ClassesSRAM int
	// PairsSolved is the total number of permutation-pair GPs behind
	// the returned design (deduplicated search effort).
	PairsSolved int
	Infeasible  int
	Suboptimal  int
	Candidates  int
	NewtonIters int
	// Pruned counts pair GPs skipped by the bound-based class pruning:
	// their objective lower bound already exceeded the running top-k
	// threshold, so they were never formulated in full or solved. Not
	// included in PairsSolved.
	Pruned int
	// FreshSolves is the number of GPs this invocation solved itself:
	// equal to PairsSolved on a cache miss (or with caching off), 0
	// when the result came from the solve cache.
	FreshSolves int
	// FromCache marks a result served from a SolveCache. The Best
	// design point is shared with the cache — treat it as immutable.
	FromCache bool
}

// Result is the outcome of an Optimize run.
type Result struct {
	Best  *DesignPoint
	Stats Stats
}

// solvedPair records one GP solution.
type solvedPair struct {
	permL1, permSRAM []int
	x                []float64
	objective        float64
}
