package pipeline

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/solver"
)

func buildTestFormulation(t *testing.T, mode Mode, crit model.Criterion) (*formulation, *dataflow.Nest, *archVars) {
	t.Helper()
	p := loopnest.MatMul(64, 64, 64)
	nest, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := arch.Eyeriss()
	av := &archVars{mode: mode, tech: e.Tech, fixed: e, budget: arch.EyerissAreaBudget()}
	if mode == CoDesign {
		av.varR = nest.Vars.NewVar("arch_R")
		av.varS = nest.Vars.NewVar("arch_S")
		av.varP = nest.Vars.NewVar("arch_P")
	}
	varT := nest.Vars.NewVar("delay_T")
	perms := dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1})
	f, err := buildGP(nest, perms, av, crit, varT, false)
	if err != nil {
		t.Fatal(err)
	}
	return f, nest, av
}

func TestBuildGPEnergyFixedArchStructure(t *testing.T) {
	f, _, _ := buildTestFormulation(t, FixedArch, model.MinEnergy)
	names := strings.Join(f.prog.ConstraintNames(), ",")
	for _, want := range []string{"cap:registers", "cap:sram", "cap:pes", "trip>=1"} {
		if !strings.Contains(names, want) {
			t.Fatalf("missing constraint %q in %s", want, names)
		}
	}
	if strings.Contains(names, "area") {
		t.Fatal("fixed-arch GP must not have an area constraint")
	}
	if strings.Contains(names, "delay:") {
		t.Fatal("energy GP must not have delay constraints")
	}
	// 3 dims × 4 levels product equalities = 3 equalities, no pins for
	// matmul (all iterators free).
	if len(f.prog.Eq) != 3 {
		t.Fatalf("equalities = %d, want 3", len(f.prog.Eq))
	}
}

func TestBuildGPCoDesignStructure(t *testing.T) {
	f, _, _ := buildTestFormulation(t, CoDesign, model.MinEnergy)
	names := strings.Join(f.prog.ConstraintNames(), ",")
	if !strings.Contains(names, "area") || !strings.Contains(names, "arch>=1") {
		t.Fatalf("co-design constraints missing: %s", names)
	}
}

func TestBuildGPDelayStructure(t *testing.T) {
	f, _, _ := buildTestFormulation(t, FixedArch, model.MinDelay)
	names := strings.Join(f.prog.ConstraintNames(), ",")
	for _, want := range []string{"delay:compute", "delay:regfile", "delay:sram", "delay:dram"} {
		if !strings.Contains(names, want) {
			t.Fatalf("missing %q in %s", want, names)
		}
	}
	if !f.prog.Objective.IsMonomial() {
		t.Fatal("delay objective should be the single variable T")
	}
}

// TestGPSolutionFeasibleExactly: the solver's relaxed solution must
// satisfy the GP's own constraints.
func TestGPSolutionFeasibleExactly(t *testing.T) {
	for _, mode := range []Mode{FixedArch, CoDesign} {
		f, _, _ := buildTestFormulation(t, mode, model.MinEnergy)
		res, err := f.solve(solver.Options{Tol: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == solver.Infeasible {
			t.Fatalf("mode %v infeasible", mode)
		}
		if bad := f.prog.CheckFeasible(res.X, 1e-4); len(bad) > 0 {
			t.Fatalf("mode %v: violated %v", mode, bad)
		}
	}
}

// TestGPEnergyDecreasesWithLooserArea: a larger area budget can only
// improve the co-design optimum.
func TestGPEnergyDecreasesWithLooserArea(t *testing.T) {
	p := loopnest.MatMul(256, 256, 256)
	small, err := Execute(context.Background(), p, Options{
		Criterion: model.MinEnergy, Mode: CoDesign, AreaBudget: arch.EyerissAreaBudget() / 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Execute(context.Background(), p, Options{
		Criterion: model.MinEnergy, Mode: CoDesign, AreaBudget: arch.EyerissAreaBudget(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.Best.Report.EnergyPerMAC > small.Best.Report.EnergyPerMAC*1.02 {
		t.Fatalf("larger budget worse: %.3f vs %.3f",
			big.Best.Report.EnergyPerMAC, small.Best.Report.EnergyPerMAC)
	}
}

// TestHintWithinDomain: the initial hint must be strictly positive for
// every variable.
func TestHintWithinDomain(t *testing.T) {
	f, nest, _ := buildTestFormulation(t, CoDesign, model.MinDelay)
	h := f.hint()
	if len(h) != nest.Vars.Len() {
		t.Fatalf("hint length %d != vars %d", len(h), nest.Vars.Len())
	}
	for i, v := range h {
		if v <= 0 {
			t.Fatalf("hint[%d] = %v", i, v)
		}
	}
}

func TestArchVarsAccessors(t *testing.T) {
	e := arch.Eyeriss()
	fixed := &archVars{mode: FixedArch, tech: e.Tech, fixed: e}
	if fixed.regCapacity().Coeff != 512 || fixed.sramCapacity().Coeff != 65536 ||
		fixed.peCapacity().Coeff != 168 {
		t.Fatal("fixed capacities wrong")
	}
	if fixed.regEnergy().Coeff != e.RegEnergy() {
		t.Fatal("fixed regEnergy wrong")
	}
	if fixed.sramEnergy().Coeff != e.SRAMEnergy() {
		t.Fatal("fixed sramEnergy wrong")
	}
	_, _, av := buildTestFormulation(t, CoDesign, model.MinEnergy)
	if av.regCapacity().IsConst() || av.sramEnergy().IsConst() {
		t.Fatal("co-design accessors should reference variables")
	}
	// ε_S = σ_S·S^0.5.
	m := av.sramEnergy()
	if len(m.Terms) != 1 || m.Terms[0].Exp != 0.5 {
		t.Fatalf("sramEnergy = %+v, want exponent 0.5", m)
	}
}
