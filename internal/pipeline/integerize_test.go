package pipeline

import "testing"

func TestNClosest(t *testing.T) {
	cands := []int64{1, 2, 4, 8, 16, 32}
	got := nClosest(cands, 7, 2)
	if len(got) != 2 || got[0] != 8 || got[1] != 4 {
		t.Fatalf("nClosest = %v", got)
	}
	if got := nClosest(cands, 0.5, 1); got[0] != 1 {
		t.Fatalf("nClosest low = %v", got)
	}
	if got := nClosest(nil, 5, 2); got != nil {
		t.Fatalf("nClosest nil = %v", got)
	}
	if got := nClosest(cands, 100, 99); len(got) != len(cands) {
		t.Fatalf("nClosest clamp = %v", got)
	}
}

func TestPow2Candidates(t *testing.T) {
	got := pow2Candidates(12, 2)
	if len(got) != 2 || got[0] != 8 || got[1] != 16 {
		t.Fatalf("pow2Candidates(12, 2) = %v", got)
	}
	got = pow2Candidates(12, 3)
	if len(got) != 3 || got[0] != 4 || got[2] != 16 {
		t.Fatalf("pow2Candidates(12, 3) = %v", got)
	}
	got = pow2Candidates(0.3, 2)
	for _, v := range got {
		if v < 1 {
			t.Fatalf("pow2Candidates below 1: %v", got)
		}
	}
}
