package pipeline

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/obs"
)

// validateStage re-checks every surviving integer candidate against the
// analytical model before selection: the mapping must evaluate cleanly
// on its architecture and satisfy the exact capacity constraints. The
// integerize search only ever emits valid candidates, so this is
// defense-in-depth — a regression in candidate generation surfaces here
// as a warning (and a dropped candidate) instead of as a silently
// infeasible "best" design.
type validateStage struct{}

func (validateStage) Name() string { return "validate" }

func (validateStage) Run(r *Run) error {
	if len(r.cands) == 0 {
		return nil
	}
	o := r.obs
	ev := model.NewEvaluator(r.nest)
	kept := r.cands[:0]
	for _, c := range r.cands {
		rep, err := ev.Evaluate(&c.cand.archCfg, c.cand.mapping)
		if err != nil || !rep.Valid() {
			o.Counter("core.validate_dropped").Inc()
			if o.Enabled(obs.Warn) {
				o.Logf(obs.Warn, "optimize %s: dropping invalid integer candidate (perms %v/%v): err=%v",
					r.prob.Name, c.pair.permL1, c.pair.permSRAM, err)
			}
			continue
		}
		// Keep the report produced during the search: it is the one the
		// candidate was scored with, so selection stays byte-identical.
		kept = append(kept, c)
	}
	r.cands = kept
	return nil
}

// selectStage picks the winning candidate. Candidates arrive in
// solved-pair order (objective, then permutation tie-break) and the
// comparison is strict, so the result is independent of scheduler width
// and completion order.
type selectStage struct{}

func (selectStage) Name() string { return "select" }

func (selectStage) Run(r *Run) error {
	var best *DesignPoint
	for _, c := range r.cands {
		if best == nil || model.Score(r.opts.Criterion, c.rep) < model.Score(r.opts.Criterion, best.Report) {
			best = &DesignPoint{
				Arch:        c.cand.archCfg,
				Mapping:     c.cand.mapping,
				Report:      c.rep,
				PermL1:      c.pair.permL1,
				PermSRAM:    c.pair.permSRAM,
				NestOptions: r.opts.Nest,
				GPObjective: c.pair.objective,
			}
		}
	}
	if best == nil {
		return fmt.Errorf("%w: no integer candidate satisfied the constraints", ErrNoDesign)
	}
	r.best = best
	return nil
}
