package pipeline

import (
	"math"
	"slices"
	"sync"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/obs"
)

// intOptions tunes the real-to-integer conversion (Section IV of the
// paper: N closest powers of two for memory capacities, n closest
// divisors per tile-size variable level by level, cross product, filter,
// evaluate with the model).
type intOptions struct {
	nDiv    int     // divisor candidates per variable (paper's n, 2–3)
	nPow2   int     // power-of-two candidates per capacity
	minUtil float64 // minimum PE utilization for fixed-arch candidates
	maxCand int     // cap on the candidate cross product
}

// integerizeStage converts the best TopClasses relaxed solutions to
// integer designs. Each pair's divisor-ladder search is a leaf compute
// job admitted through the shared scheduler; results land in per-pair
// slots and are compacted in solved-pair order, so parallelism cannot
// change which candidates survive. When no pair yields an integer point,
// a fallback ladder shrinks the relaxed solutions geometrically toward
// the all-ones tiling (x^λ stays ≥ 1) and retries.
type integerizeStage struct{}

func (integerizeStage) Name() string { return "integerize" }

func (integerizeStage) Run(r *Run) error {
	top := r.opts.TopClasses
	if top > len(r.solved) {
		top = len(r.solved)
	}
	// One evaluator shared by every job: model.Evaluator is documented
	// safe for concurrent use (its volume cache is internally locked).
	ev := model.NewEvaluator(r.nest)
	iopt := intOptions{
		nDiv:    r.opts.NDiv,
		nPow2:   r.opts.NPow2,
		minUtil: r.opts.MinUtilization,
		maxCand: r.opts.MaxCandidates,
	}
	candC := r.obs.Counter("core.int_candidates")

	// integerizePass converts each of the top pairs under shrink(x) and
	// returns the surviving candidates in pair order.
	integerizePass := func(shrink func([]float64) []float64) ([]*integerized, error) {
		out := make([]*integerized, top)
		var mu sync.Mutex
		err := r.sched.ForEach(r.ctx, top, func(i int) error {
			sp := r.solved[i]
			c, rep, visited := r.integerizeOne(ev, iopt, candC, shrink(sp.x), sp)
			mu.Lock()
			r.stats.Candidates += visited
			mu.Unlock()
			if c != nil {
				out[i] = &integerized{pair: sp, cand: c, rep: rep}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		cands := out[:0]
		for _, c := range out {
			if c != nil {
				cands = append(cands, c)
			}
		}
		return cands, nil
	}

	identity := func(x []float64) []float64 { return x }
	cands, err := integerizePass(identity)
	if err != nil {
		return err
	}
	if len(cands) == 0 {
		// Fallback ladder: on tight architectures the divisor ladder
		// around the relaxed solution can miss every exactly-feasible
		// integer point. Shrink the solution geometrically toward the
		// minimal (all-ones) tiling and retry.
		for _, lambda := range []float64{0.5, 0.25, 0} {
			cands, err = integerizePass(func(x []float64) []float64 {
				shrunk := append([]float64(nil), x...)
				for i := range shrunk {
					if shrunk[i] > 1 {
						shrunk[i] = math.Pow(shrunk[i], lambda)
					}
				}
				return shrunk
			})
			if err != nil {
				return err
			}
			if len(cands) > 0 {
				break
			}
		}
	}
	r.cands = cands
	return nil
}

// integerizeOne converts one relaxed solution to the best integer
// design, recording an integerize span whose model-eval child covers
// the streamed candidate evaluation.
func (r *Run) integerizeOne(ev *model.Evaluator, iopt intOptions, candC *obs.Counter, x []float64, sp solvedPair) (*candidate, *model.Report, int) {
	o := r.obs
	var ispan *obs.Span
	if o.TracingEnabled() {
		ispan = o.StartSpan(r.parent, "integerize", obs.Float("gp_objective", sp.objective))
	}
	evalSpan := o.StartSpan(ispan, "model-eval")
	perms := dataflow.StandardPerms(sp.permL1, sp.permSRAM)
	c, rep, visited := searchIntegerCandidates(ev, r.nest, perms, x, r.av, iopt, r.opts.Criterion)
	candC.Add(int64(visited))
	if evalSpan != nil {
		evalSpan.SetAttr("candidates", int64(visited))
		evalSpan.End()
		ispan.SetAttr("found", c != nil)
		ispan.End()
	}
	return c, rep, visited
}

// dimCandidate is one integer tiling of a single iterator: SRAM tile S,
// per-PE tile Q, register tile R (S = N/t·..., with R | Q | S | N).
type dimCandidate struct {
	iter    int
	regTile int64 // R
	peTile  int64 // Q
	sramT   int64 // S
}

// nClosest returns the k values from sorted candidates closest to target
// in log space (ratio distance), deduplicated.
func nClosest(cands []int64, target float64, k int) []int64 {
	if len(cands) == 0 {
		return nil
	}
	if target < 1 {
		target = 1
	}
	type scored struct {
		v int64
		d float64
	}
	s := make([]scored, len(cands))
	for i, c := range cands {
		s[i] = scored{c, math.Abs(math.Log(float64(c)) - math.Log(target))}
	}
	slices.SortFunc(s, func(a, b scored) int {
		//tlvet:ignore floateq -- sort comparator: tolerance-based equality breaks strict weak ordering
		if a.d != b.d {
			if a.d < b.d {
				return -1
			}
			return 1
		}
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		}
		return 0
	})
	if k > len(s) {
		k = len(s)
	}
	out := make([]int64, 0, k)
	for _, c := range s[:k] {
		out = append(out, c.v)
	}
	return out
}

// pow2Candidates returns the n powers of two nearest to target (at least
// 1, ascending).
func pow2Candidates(target float64, n int) []int64 {
	if target < 1 {
		target = 1
	}
	exp := math.Log2(target)
	lo := int(math.Floor(exp))
	var out []int64
	for i := 0; i < n; i++ {
		// Alternate around the floor: lo, lo+1, lo−1, lo+2, ...
		var e int
		switch {
		case i == 0:
			e = lo
		case i%2 == 1:
			e = lo + (i+1)/2
		default:
			e = lo - i/2
		}
		if e < 0 {
			continue
		}
		out = append(out, int64(1)<<uint(e))
	}
	slices.Sort(out)
	return out
}

// dimCandidates generates up to n³ integer tilings for one free iterator
// following the paper's divisor ladder: SRAM tile candidates from the
// divisors of the extent, per-PE tile candidates from the divisors of
// each SRAM candidate, register tile candidates from the divisors of each
// per-PE candidate.
func dimCandidates(n *dataflow.Nest, it int, x []float64, opt intOptions) []dimCandidate {
	extent := n.Prob.Iters[it].Extent
	lv := make([]float64, 0, 4)
	for _, v := range n.DimTripVars(it) {
		lv = append(lv, x[v])
	}
	if len(lv) != 4 {
		return nil // pinned or unit iterator: no free tiling
	}
	realReg := lv[0]
	realPE := lv[0] * lv[1]
	realSRAM := lv[0] * lv[1] * lv[2]
	var out []dimCandidate
	for _, s := range nClosest(loopnest.Divisors(extent), realSRAM, opt.nDiv) {
		for _, q := range nClosest(loopnest.Divisors(s), realPE, opt.nDiv) {
			for _, r := range nClosest(loopnest.Divisors(q), realReg, opt.nDiv) {
				out = append(out, dimCandidate{iter: it, regTile: r, peTile: q, sramT: s})
			}
		}
	}
	// Deduplicate.
	slices.SortFunc(out, func(a, b dimCandidate) int {
		if a.sramT != b.sramT {
			if a.sramT < b.sramT {
				return -1
			}
			return 1
		}
		if a.peTile != b.peTile {
			if a.peTile < b.peTile {
				return -1
			}
			return 1
		}
		switch {
		case a.regTile < b.regTile:
			return -1
		case a.regTile > b.regTile:
			return 1
		}
		return 0
	})
	ded := out[:0]
	for i, c := range out {
		if i == 0 || c != out[i-1] {
			ded = append(ded, c)
		}
	}
	return ded
}

// candidate is one fully integer design point before model evaluation.
type candidate struct {
	archCfg arch.Arch
	mapping *model.Mapping
}

// searchIntegerCandidates streams the integer candidate space — the
// cross product of per-dimension divisor-ladder tilings and (in
// co-design mode) power-of-two capacities — directly through model
// evaluation, keeping only the best valid design. Streaming avoids
// materializing the cross product (which reaches millions of mappings at
// ladder width 3), and the visit counter caps runaway spaces without
// biasing which region gets cut: the cap applies to evaluations, and the
// ladder orders each dimension's choices by proximity to the relaxed
// solution, so the nearest region is covered first.
func searchIntegerCandidates(ev *model.Evaluator, n *dataflow.Nest, perms [][]int, x []float64, av *archVars, opt intOptions, crit model.Criterion) (best *candidate, bestRep *model.Report, visited int) {
	var freeIters []int
	for it := range n.Prob.Iters {
		if len(n.DimTripVars(it)) == 4 {
			freeIters = append(freeIters, it)
		}
	}
	perDim := make([][]dimCandidate, len(freeIters))
	for i, it := range freeIters {
		perDim[i] = dimCandidates(n, it, x, opt)
		if len(perDim[i]) == 0 {
			return nil, nil, 0
		}
	}
	var archs []arch.Arch
	if av.mode == CoDesign {
		for _, r := range pow2Candidates(x[av.varR], opt.nPow2) {
			for _, s := range pow2Candidates(x[av.varS], opt.nPow2) {
				archs = append(archs, arch.Arch{
					Name: "codesign", Regs: r, SRAM: s, PEs: 1, Tech: av.tech,
				})
			}
		}
	} else {
		archs = []arch.Arch{av.fixed}
	}

	// All candidates of this search share one permutation choice, so pin
	// the symbolic volumes in a session and stream every mapping through
	// it. Quick mode skips formatted violation messages — rejected
	// reports are discarded, and the winner (valid by construction) has
	// none.
	sess, err := ev.Session(perms)
	if err != nil {
		return nil, nil, 0
	}
	sess.Quick = true

	// One mapping, mutated per leaf: every leaf overwrites all four trip
	// levels of every free iterator, and consider() clones on keep, so
	// reuse cannot leak state between candidates.
	m := buildMapping(n, perms, nil)

	consider := func(c *candidate, minUtil float64) {
		rep, err := sess.Evaluate(&c.archCfg, c.mapping)
		if err != nil || !rep.Valid() {
			return
		}
		if av.mode == FixedArch && rep.Utilization < minUtil {
			return
		}
		if bestRep == nil || model.Score(crit, rep) < model.Score(crit, bestRep) {
			cc := *c
			cc.mapping = c.mapping.Clone()
			best, bestRep = &cc, rep.Clone()
		}
	}

	run := func(minUtil float64) {
		dims := make([]dimCandidate, 0, len(perDim))
		var rec func(i int)
		rec = func(i int) {
			if visited >= opt.maxCand {
				return
			}
			if i == len(perDim) {
				applyDims(n, m, dims)
				for _, a := range archs {
					ac := a
					if av.mode == CoDesign {
						pes := int64(1)
						for _, d := range dims {
							pes *= d.sramT / d.peTile
						}
						ac.PEs = pes
						if ac.Area() > av.budget {
							continue
						}
					}
					visited++
					consider(&candidate{archCfg: ac, mapping: m}, minUtil)
				}
				return
			}
			for _, c := range perDim[i] {
				dims = append(dims, c)
				rec(i + 1)
				dims = dims[:len(dims)-1]
			}
		}
		rec(0)
	}
	run(opt.minUtil)
	if best == nil && opt.minUtil > 0 {
		visited = 0
		run(0)
	}
	return best, bestRep, visited
}

// buildMapping converts per-iterator tiling choices into a Mapping over
// the standard nest, starting from the pinned base.
func buildMapping(n *dataflow.Nest, perms [][]int, dims []dimCandidate) *model.Mapping {
	m := model.UniformMapping(n)
	m.Perms = make([][]int, len(perms))
	for i, p := range perms {
		if p != nil {
			m.Perms[i] = append([]int(nil), p...)
		}
	}
	applyDims(n, m, dims)
	return m
}

// applyDims writes per-iterator tiling choices into an existing mapping
// (all four standard levels of each chosen iterator are overwritten).
func applyDims(n *dataflow.Nest, m *model.Mapping, dims []dimCandidate) {
	for _, d := range dims {
		extent := n.Prob.Iters[d.iter].Extent
		m.Trips[dataflow.StandardLevelReg][d.iter] = d.regTile
		m.Trips[dataflow.StandardLevelL1][d.iter] = d.peTile / d.regTile
		m.Trips[dataflow.StandardLevelSpatial][d.iter] = d.sramT / d.peTile
		m.Trips[dataflow.StandardLevelSRAM][d.iter] = extent / d.sramT
	}
}
