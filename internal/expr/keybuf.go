package expr

import (
	"bytes"
	"slices"
	"strconv"
)

// KeyBuf amortizes canonical-key construction across many Product.Key
// computations. The hot caller is dataflow.(*Nest).EnumerateClasses,
// which keys every tensor's data-volume product for every permutation
// (and once more per symmetry involution): with the naive Key() that is
// a Clone+Canon+fmt.Fprintf storm on every call. A KeyBuf instead copies
// each factor into reusable scratch arrays, canonicalizes in place, and
// renders with strconv append calls, so steady-state key construction
// performs no allocations at all.
//
// The rendered bytes are exactly Product.Key()'s output (and, with a
// non-nil subst, exactly Product.RenameVars(subst).Key()); keys produced
// either way compare equal. A KeyBuf is not safe for concurrent use.
type KeyBuf struct {
	terms     []Term   // term arena backing the scratch factor copies
	poly      Poly     // scratch factor copy (canonicalized in place)
	monoTerms []Term   // scratch for the merged single-monomial factor
	tmp       Poly     // scratch for the final monomial canon
	keys      [][]byte // per-poly-factor key buffers, reused across calls
	keyViews  [][]byte // the populated prefix of keys, sorted per call
}

// AppendProductKey appends the canonical key of pr — with every variable
// v first replaced by subst[v] when subst is non-nil — to dst and
// returns the extended slice. The result is byte-for-byte identical to
// pr.RenameVars(subst).Key() (or pr.Key() for a nil subst).
func (kb *KeyBuf) AppendProductKey(dst []byte, pr Product, subst map[VarID]VarID) []byte {
	// Merged single-monomial factor, seeded with the constant 1 exactly
	// like Product.Key.
	mono := Monomial{Coeff: 1, Terms: kb.monoTerms[:0]}
	kb.keyViews = kb.keyViews[:0]
	for _, f := range pr.Factors {
		g := kb.copyFactor(f, subst)
		g.Canon()
		if g.IsMonomial() {
			// Mirror mono = mono.Mul(g[0]): append both term lists, then
			// canonicalize, so exponent merging happens in the same order
			// (and therefore with the same rounding) as Monomial.Mul.
			mono.Coeff *= g[0].Coeff
			mono.Terms = append(mono.Terms, g[0].Terms...)
			mono.Canon()
			continue
		}
		ki := len(kb.keyViews)
		if ki == len(kb.keys) {
			kb.keys = append(kb.keys, nil)
		}
		kb.keys[ki] = appendPolyKey(kb.keys[ki][:0], g)
		kb.keyViews = append(kb.keyViews, kb.keys[ki])
	}
	kb.monoTerms = mono.Terms[:0]
	slices.SortFunc(kb.keyViews, bytes.Compare)
	// Poly{mono}.Key() canonicalizes once more, which can drop a
	// zero-coefficient monomial entirely; replicate via the tmp scratch.
	kb.tmp = append(kb.tmp[:0], mono)
	kb.tmp.Canon()
	dst = appendPolyKey(dst, kb.tmp)
	for _, k := range kb.keyViews {
		dst = append(dst, '|')
		dst = append(dst, k...)
	}
	return dst
}

// copyFactor deep-copies f into the KeyBuf scratch arena, applying the
// variable substitution. The returned Poly is owned by the KeyBuf and
// valid until the next copyFactor call's canonicalization completes.
func (kb *KeyBuf) copyFactor(f Poly, subst map[VarID]VarID) Poly {
	kb.poly = kb.poly[:0]
	kb.terms = kb.terms[:0]
	off := 0
	for _, m := range f {
		for _, t := range m.Terms {
			if subst != nil {
				if nv, ok := subst[t.Var]; ok {
					t.Var = nv
				}
			}
			kb.terms = append(kb.terms, t)
		}
		kb.poly = append(kb.poly, Monomial{Coeff: m.Coeff, Terms: kb.terms[off:len(kb.terms):len(kb.terms)]})
		off = len(kb.terms)
	}
	// Growth of kb.terms may have copied earlier monomials' backing; fix
	// the views up so every monomial aliases the final arena.
	off = 0
	for i := range kb.poly {
		n := len(kb.poly[i].Terms)
		kb.poly[i].Terms = kb.terms[off : off+n : off+n]
		off += n
	}
	return kb.poly
}

// appendPolyKey renders the canonical polynomial q in Poly.Key's format
// ("coeff@var^exp…+…") using strconv appends. strconv.AppendFloat with
// 'g'/-1 is exactly fmt's %g for float64, so the bytes match Poly.Key.
func appendPolyKey(dst []byte, q Poly) []byte {
	for i, m := range q {
		if i > 0 {
			dst = append(dst, '+')
		}
		dst = strconv.AppendFloat(dst, m.Coeff, 'g', -1, 64)
		for _, t := range m.Terms {
			dst = append(dst, '@')
			dst = strconv.AppendInt(dst, int64(t.Var), 10)
			dst = append(dst, '^')
			dst = strconv.AppendFloat(dst, t.Exp, 'g', -1, 64)
		}
	}
	return dst
}
