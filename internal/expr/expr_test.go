package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func newVars(t *testing.T, names ...string) (*VarSet, []VarID) {
	t.Helper()
	vs := &VarSet{}
	ids := make([]VarID, len(names))
	for i, n := range names {
		ids[i] = vs.NewVar(n)
	}
	return vs, ids
}

func TestVarSet(t *testing.T) {
	vs := &VarSet{}
	a := vs.NewVar("a")
	b := vs.NewVar("b")
	if vs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", vs.Len())
	}
	if vs.Name(a) != "a" || vs.Name(b) != "b" {
		t.Fatalf("names wrong: %q %q", vs.Name(a), vs.Name(b))
	}
	if got := vs.Name(VarID(99)); got != "v99" {
		t.Fatalf("out-of-range name = %q", got)
	}
}

func TestMonomialCanonMergesAndSorts(t *testing.T) {
	_, ids := newVars(t, "x", "y")
	x, y := ids[0], ids[1]
	m := Monomial{Coeff: 3, Terms: []Term{{y, 2}, {x, 1}, {y, -2}}}
	m.Canon()
	if len(m.Terms) != 1 || m.Terms[0].Var != x || m.Terms[0].Exp != 1 {
		t.Fatalf("canon wrong: %+v", m)
	}
}

func TestMonomialMulPowEval(t *testing.T) {
	_, ids := newVars(t, "x", "y")
	x, y := ids[0], ids[1]
	m := Mono(2, x, y).Mul(MonoPow(3, x, 2)) // 6 x^3 y
	if got := m.Eval([]float64{2, 5}); got != 6*8*5 {
		t.Fatalf("eval = %v, want 240", got)
	}
	inv := m.Inv()
	if got := inv.Eval([]float64{2, 5}); math.Abs(got-1.0/240) > 1e-15 {
		t.Fatalf("inv eval = %v", got)
	}
	sq := Mono(4, x).Pow(0.5) // 2 x^0.5
	if got := sq.Eval([]float64{9, 1}); math.Abs(got-6) > 1e-12 {
		t.Fatalf("pow eval = %v, want 6", got)
	}
}

func TestMonomialHasVarIsConst(t *testing.T) {
	_, ids := newVars(t, "x", "y")
	x, y := ids[0], ids[1]
	m := Mono(2, x)
	if !m.HasVar(x) || m.HasVar(y) || m.IsConst() {
		t.Fatalf("predicates wrong on %+v", m)
	}
	if !Const(5).IsConst() {
		t.Fatal("Const should be const")
	}
}

func TestPolyCanonMergesDuplicates(t *testing.T) {
	_, ids := newVars(t, "x", "y")
	x, y := ids[0], ids[1]
	p := PolyFrom(Mono(1, x, y), Mono(2, y, x), Mono(3, x), Mono(-3, x), Const(7))
	if len(p) != 2 {
		t.Fatalf("canon kept %d monomials (%v), want 2", len(p), p)
	}
	// Constant and 3*x*y remain.
	if got := p.Eval([]float64{2, 5}); got != 3*10+7 {
		t.Fatalf("eval = %v, want 37", got)
	}
}

func TestPolyArithmetic(t *testing.T) {
	_, ids := newVars(t, "x", "y")
	x, y := ids[0], ids[1]
	p := PolyFrom(Mono(1, x), Const(1))  // x + 1
	q := PolyFrom(Mono(1, y), Const(-1)) // y - 1
	r := p.Mul(q)                        // x*y - x + y - 1
	at := func(xs, ys float64) float64 { return r.Eval([]float64{xs, ys}) }
	if got := at(3, 4); got != (3+1)*(4-1) {
		t.Fatalf("mul eval = %v, want 12", got)
	}
	s := p.Add(q) // x + y
	if got := s.Eval([]float64{3, 4}); got != 7 {
		t.Fatalf("add eval = %v, want 7", got)
	}
	sc := p.Scale(2)
	if got := sc.Eval([]float64{3, 0}); got != 8 {
		t.Fatalf("scale eval = %v, want 8", got)
	}
	mm := p.MulMono(Mono(2, y))
	if got := mm.Eval([]float64{3, 4}); got != 2*4*(3+1) {
		t.Fatalf("mulmono eval = %v, want 32", got)
	}
}

func TestPolyPredicates(t *testing.T) {
	_, ids := newVars(t, "x")
	x := ids[0]
	if !PolyConst(3).IsConstant() || !PolyConst(3).IsMonomial() {
		t.Fatal("const poly predicates")
	}
	if PolyConst(0) != nil {
		t.Fatal("PolyConst(0) should be nil")
	}
	p := PolyFrom(Mono(1, x), Const(-1))
	if p.AllPositive() {
		t.Fatal("AllPositive on signomial")
	}
	dp := p.DropNegativeConstants()
	if !dp.AllPositive() || len(dp) != 1 {
		t.Fatalf("DropNegativeConstants wrong: %v", dp)
	}
	if !p.HasVar(x) {
		t.Fatal("HasVar")
	}
	vars := map[VarID]bool{}
	p.Vars(vars)
	if !vars[x] || len(vars) != 1 {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestPolyKeyStructural(t *testing.T) {
	_, ids := newVars(t, "x", "y")
	x, y := ids[0], ids[1]
	a := PolyFrom(Mono(1, x), Mono(2, y))
	b := PolyFrom(Mono(2, y), Mono(1, x))
	if a.Key() != b.Key() {
		t.Fatalf("keys differ for equal polys: %q vs %q", a.Key(), b.Key())
	}
	c := PolyFrom(Mono(1, y), Mono(2, x))
	if a.Key() == c.Key() {
		t.Fatal("keys equal for different polys")
	}
}

func TestPolyRenameVars(t *testing.T) {
	_, ids := newVars(t, "h", "w")
	h, w := ids[0], ids[1]
	p := PolyFrom(Mono(1, h), Mono(2, w))
	q := p.RenameVars(map[VarID]VarID{h: w, w: h})
	want := PolyFrom(Mono(1, w), Mono(2, h))
	if q.Key() != want.Key() {
		t.Fatalf("rename = %v, want %v", q, want)
	}
}

func TestProductEvalExpand(t *testing.T) {
	vs, ids := newVars(t, "x", "y")
	x, y := ids[0], ids[1]
	ext := PolyFrom(Mono(1, x), Mono(1, y), Const(-1)) // x + y - 1
	pr := ProductOf(ext)
	pr.MulVar(x)
	pr.MulMono(Mono(2, y))
	// 2*x*y*(x+y-1)
	xs := []float64{3, 4}
	if got, want := pr.Eval(xs), 2.0*3*4*(3+4-1); got != want {
		t.Fatalf("eval = %v, want %v", got, want)
	}
	exact := pr.Expand(false)
	if got := exact.Eval(xs); got != pr.Eval(xs) {
		t.Fatalf("expand(false) eval = %v, want %v", got, pr.Eval(xs))
	}
	relaxed := pr.Expand(true) // 2*x*y*(x+y)
	if !relaxed.AllPositive() {
		t.Fatalf("relaxed not posynomial: %s", relaxed.String(vs))
	}
	if got, want := relaxed.Eval(xs), 2.0*3*4*(3+4); got != want {
		t.Fatalf("relaxed eval = %v, want %v", got, want)
	}
}

func TestProductScaleVarMonomials(t *testing.T) {
	vs, ids := newVars(t, "r_h", "r_r", "q_h")
	rh, rr, qh := ids[0], ids[1], ids[2]
	iterOf := func(v VarID) int {
		switch v {
		case rh, qh:
			return 0 // iterator h
		case rr:
			return 1 // iterator r
		}
		return -1
	}
	ext := PolyFrom(Mono(1, rh), Mono(1, rr), Const(-1))
	pr := ProductOf(ext)
	pr.ScaleVarMonomials(iterOf, 0, qh)
	want := "(-1 + r_h*q_h + r_r)"
	if got := pr.String(vs); got != want {
		t.Fatalf("scaled = %q, want %q", got, want)
	}
	if !pr.HasIter(iterOf, 1) || !pr.HasIter(iterOf, 0) {
		t.Fatal("HasIter false negative")
	}
	if pr.HasIter(iterOf, 5) {
		t.Fatal("HasIter false positive")
	}
}

func TestProductKeyOrderIndependent(t *testing.T) {
	_, ids := newVars(t, "x", "y")
	x, y := ids[0], ids[1]
	ext := PolyFrom(Mono(1, x), Mono(1, y))
	a := ProductOf(ext, Poly{Mono(2, x)})
	b := ProductOf(Poly{Mono(2, x)}, ext)
	if a.Key() != b.Key() {
		t.Fatalf("product keys differ: %q vs %q", a.Key(), b.Key())
	}
	// Monomial factors merge: x * 2y  ==  2xy as a single factor.
	c := ProductOf(Poly{Mono(1, x)}, Poly{Mono(2, y)})
	d := ProductOf(Poly{Mono(2, x, y)})
	if c.Key() != d.Key() {
		t.Fatalf("merged monomial keys differ: %q vs %q", c.Key(), d.Key())
	}
}

func TestStringRendering(t *testing.T) {
	vs, ids := newVars(t, "x", "y")
	x, y := ids[0], ids[1]
	m := Mono(2, x, y)
	if got := m.String(vs); got != "2*x*y" {
		t.Fatalf("mono string = %q", got)
	}
	if got := MonoPow(1, x, -1).String(vs); got != "x^-1" {
		t.Fatalf("pow string = %q", got)
	}
	p := PolyFrom(Mono(1, x), Const(-1))
	if got := p.String(vs); !strings.Contains(got, "x") {
		t.Fatalf("poly string = %q", got)
	}
	if got := Poly(nil).String(vs); got != "0" {
		t.Fatalf("zero poly string = %q", got)
	}
	if got := (Product{}).String(vs); got != "1" {
		t.Fatalf("empty product string = %q", got)
	}
}

// Property: Expand(false) equals the product of factor evaluations for
// random small polynomials and assignments.
func TestQuickExpandMatchesEval(t *testing.T) {
	f := func(c1, c2, c3 int8, x0, x1 uint8) bool {
		vs := &VarSet{}
		x := vs.NewVar("x")
		y := vs.NewVar("y")
		f1 := PolyFrom(Mono(float64(c1), x), Const(float64(c2)))
		f2 := PolyFrom(Mono(float64(c3), y), Mono(1, x, y))
		pr := ProductOf(f1, f2)
		xs := []float64{float64(x0%7) + 1, float64(x1%7) + 1}
		a := pr.Eval(xs)
		b := pr.Expand(false).Eval(xs)
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Poly.Add/Mul agree with pointwise arithmetic.
func TestQuickPolyRing(t *testing.T) {
	f := func(a1, a2, b1, b2 int8, xv uint8) bool {
		vs := &VarSet{}
		x := vs.NewVar("x")
		p := PolyFrom(Mono(float64(a1), x), Const(float64(a2)))
		q := PolyFrom(Mono(float64(b1), x), Const(float64(b2)))
		xs := []float64{float64(xv%9) + 1}
		sum := p.Add(q).Eval(xs)
		prod := p.Mul(q).Eval(xs)
		pe, qe := p.Eval(xs), q.Eval(xs)
		return math.Abs(sum-(pe+qe)) < 1e-9*(1+math.Abs(pe+qe)) &&
			math.Abs(prod-pe*qe) < 1e-9*(1+math.Abs(pe*qe))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Canon is idempotent and preserves value.
func TestQuickCanonIdempotent(t *testing.T) {
	f := func(cs [4]int8, xv uint8) bool {
		vs := &VarSet{}
		x := vs.NewVar("x")
		y := vs.NewVar("y")
		p := Poly{
			Mono(float64(cs[0]), x), Mono(float64(cs[1]), x),
			Mono(float64(cs[2]), y, x), Const(float64(cs[3])),
		}
		xs := []float64{float64(xv%5) + 1, 2}
		before := p.Clone().Eval(xs)
		p.Canon()
		after1 := p.Eval(xs)
		k1 := p.Key()
		p.Canon()
		return math.Abs(before-after1) < 1e-9*(1+math.Abs(before)) && p.Key() == k1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolySubstConst(t *testing.T) {
	_, ids := newVars(t, "h", "r")
	h, r := ids[0], ids[1]
	// t_h + t_r − 1 with t_r = 3 → t_h + 2.
	p := PolyFrom(Mono(1, h), Mono(1, r), Const(-1))
	q := p.SubstConst(map[VarID]float64{r: 3})
	want := PolyFrom(Mono(1, h), Const(2))
	if q.Key() != want.Key() {
		t.Fatalf("SubstConst = %v, want %v", q, want)
	}
	if !q.AllPositive() {
		t.Fatal("folded poly should be a posynomial")
	}
	// Exponents are honored: 2·r^2 with r=3 → 18.
	e := PolyFrom(MonoPow(2, r, 2)).SubstConst(map[VarID]float64{r: 3})
	if len(e) != 1 || e[0].Coeff != 18 || !e[0].IsConst() {
		t.Fatalf("SubstConst exp = %v", e)
	}
}

func TestProductSubstConst(t *testing.T) {
	_, ids := newVars(t, "h", "r")
	h, r := ids[0], ids[1]
	pr := ProductOf(
		PolyFrom(Mono(1, h), Mono(1, r), Const(-1)),
		PolyFrom(Mono(1, r)),
	)
	q := pr.SubstConst(map[VarID]float64{r: 3})
	x := []float64{5, 999} // r's slot ignored after folding
	if got, want := q.Eval(x), (5.0+3-1)*3; got != want {
		t.Fatalf("folded eval = %v, want %v", got, want)
	}
	if !q.Expand(true).AllPositive() {
		t.Fatal("folded product should expand to posynomial")
	}
}
