package expr

import (
	"math/rand"
	"testing"
)

// randProduct builds a random factored expression shaped like the
// dataflow DF/DV products: monomial factors plus small signomial
// factors with occasional duplicate variables and negative constants.
func randProduct(rng *rand.Rand) Product {
	pr := Product{}
	nf := 1 + rng.Intn(6)
	for f := 0; f < nf; f++ {
		nm := 1 + rng.Intn(3)
		var p Poly
		for m := 0; m < nm; m++ {
			mono := Monomial{Coeff: float64(rng.Intn(9) - 3)}
			if mono.Coeff == 0 {
				mono.Coeff = 1.5
			}
			for t := 0; t < rng.Intn(4); t++ {
				mono.Terms = append(mono.Terms, Term{
					Var: VarID(rng.Intn(8)),
					Exp: float64(1 + rng.Intn(3)),
				})
			}
			p = append(p, mono)
		}
		pr.Factors = append(pr.Factors, p)
	}
	return pr
}

// TestKeyBufMatchesProductKey quick-checks that the allocation-free key
// builder renders byte-identical output to Product.Key and
// Product.RenameVars().Key — the property EnumerateClasses' dedup
// depends on.
func TestKeyBufMatchesProductKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	subst := map[VarID]VarID{0: 1, 1: 0, 4: 5, 5: 4}
	var kb KeyBuf
	var buf []byte
	for i := 0; i < 500; i++ {
		pr := randProduct(rng)
		want := pr.Key()
		buf = kb.AppendProductKey(buf[:0], pr, nil)
		if got := string(buf); got != want {
			t.Fatalf("case %d: AppendProductKey = %q, Key() = %q", i, got, want)
		}
		want = pr.RenameVars(subst).Key()
		buf = kb.AppendProductKey(buf[:0], pr, subst)
		if got := string(buf); got != want {
			t.Fatalf("case %d (renamed): AppendProductKey = %q, Key() = %q", i, got, want)
		}
	}
}

// TestKeyBufPrefixAppend verifies the builder appends to (rather than
// replaces) dst, which EnumerateClasses relies on when joining
// per-tensor keys with ';'.
func TestKeyBufPrefixAppend(t *testing.T) {
	pr := ProductOf(PolyFrom(MonoPow(2, 3, 1)))
	var kb KeyBuf
	out := kb.AppendProductKey([]byte("pre;"), pr, nil)
	want := "pre;" + pr.Key()
	if string(out) != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}
