// Package expr implements the symbolic algebra used throughout the
// reproduction of the Thistle optimizer (CGO 2022): positive variables,
// monomials c·∏xᵢ^aᵢ, polynomials (sums of monomials, possibly with
// negative coefficients, i.e. signomials), and factored products of
// polynomials.
//
// The dataflow package builds data-footprint (DF) and data-volume (DV)
// expressions in factored form, where each factor is either a single
// monomial (a trip-count multiplier) or a convolution extent such as
// (q_h·r_h + q_r·r_r − 1). Keeping the factored structure allows
//
//   - exact integer evaluation (used by the Timeloop-substitute model and
//     the integerization filter), and
//   - the posynomial relaxation required for geometric programming
//     (dropping the negative constant of each factor before expanding),
//
// to share one construction.
package expr

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
)

// VarID identifies a variable within a VarSet. Variables are strictly
// positive reals (the geometric-programming domain).
type VarID int32

// NoVar is a sentinel for "no variable" (e.g. a trip count fixed to 1).
const NoVar VarID = -1

// VarSet owns the variables of one optimization problem. The zero value is
// ready to use.
type VarSet struct {
	names []string
}

// NewVar registers a fresh variable and returns its id.
func (vs *VarSet) NewVar(name string) VarID {
	vs.names = append(vs.names, name)
	return VarID(len(vs.names) - 1)
}

// Len reports the number of registered variables.
func (vs *VarSet) Len() int { return len(vs.names) }

// Name returns the name given to v at registration.
func (vs *VarSet) Name(v VarID) string {
	if v < 0 || int(v) >= len(vs.names) {
		return fmt.Sprintf("v%d", v)
	}
	return vs.names[v]
}

// Term is one factor xᵛ^Exp of a monomial.
type Term struct {
	Var VarID
	Exp float64
}

// Monomial is Coeff·∏ terms. Terms are kept sorted by Var with no
// duplicates and no zero exponents; use Canon after manual construction.
type Monomial struct {
	Coeff float64
	Terms []Term
}

// Mono builds a monomial from a coefficient and variables, each with
// exponent 1. Repeated variables accumulate.
func Mono(coeff float64, vars ...VarID) Monomial {
	m := Monomial{Coeff: coeff}
	for _, v := range vars {
		m.Terms = append(m.Terms, Term{Var: v, Exp: 1})
	}
	m.Canon()
	return m
}

// MonoPow builds the single-variable monomial coeff·v^exp.
func MonoPow(coeff float64, v VarID, exp float64) Monomial {
	m := Monomial{Coeff: coeff, Terms: []Term{{Var: v, Exp: exp}}}
	m.Canon()
	return m
}

// Const builds the constant monomial c.
func Const(c float64) Monomial { return Monomial{Coeff: c} }

// Canon sorts the terms by variable, merges duplicates, and removes zero
// exponents, in place.
func (m *Monomial) Canon() {
	if len(m.Terms) == 0 {
		return
	}
	slices.SortFunc(m.Terms, termCmp)
	out := m.Terms[:0]
	for _, t := range m.Terms {
		if n := len(out); n > 0 && out[n-1].Var == t.Var {
			out[n-1].Exp += t.Exp
		} else {
			out = append(out, t)
		}
	}
	n := 0
	for _, t := range out {
		if t.Exp != 0 {
			out[n] = t
			n++
		}
	}
	m.Terms = out[:n]
}

// Clone returns a deep copy of m.
func (m Monomial) Clone() Monomial {
	c := m
	c.Terms = append([]Term(nil), m.Terms...)
	return c
}

// IsConst reports whether m has no variables.
func (m Monomial) IsConst() bool { return len(m.Terms) == 0 }

// HasVar reports whether m references v.
func (m Monomial) HasVar(v VarID) bool {
	for _, t := range m.Terms {
		if t.Var == v {
			return true
		}
	}
	return false
}

// Mul returns m·o as a new canonical monomial.
func (m Monomial) Mul(o Monomial) Monomial {
	r := Monomial{Coeff: m.Coeff * o.Coeff}
	r.Terms = make([]Term, 0, len(m.Terms)+len(o.Terms))
	r.Terms = append(r.Terms, m.Terms...)
	r.Terms = append(r.Terms, o.Terms...)
	r.Canon()
	return r
}

// MulVar returns m·v (exponent 1) as a new monomial.
func (m Monomial) MulVar(v VarID) Monomial {
	return m.Mul(MonoPow(1, v, 1))
}

// Pow returns m^p as a new monomial. For negative or fractional p the
// coefficient must be positive.
func (m Monomial) Pow(p float64) Monomial {
	r := Monomial{Coeff: math.Pow(m.Coeff, p)}
	r.Terms = make([]Term, len(m.Terms))
	for i, t := range m.Terms {
		r.Terms[i] = Term{Var: t.Var, Exp: t.Exp * p}
	}
	r.Canon()
	return r
}

// Inv returns 1/m.
func (m Monomial) Inv() Monomial { return m.Pow(-1) }

// Eval evaluates m at the assignment x (indexed by VarID).
func (m Monomial) Eval(x []float64) float64 {
	v := m.Coeff
	for _, t := range m.Terms {
		if t.Exp == 1 {
			v *= x[t.Var]
		} else {
			v *= math.Pow(x[t.Var], t.Exp)
		}
	}
	return v
}

// sameExps reports whether two canonical monomials have identical
// variable/exponent structure.
func sameExps(a, b Monomial) bool {
	if len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			return false
		}
	}
	return true
}

// termCmp orders terms by variable (the Canon sort key).
func termCmp(a, b Term) int {
	switch {
	case a.Var < b.Var:
		return -1
	case a.Var > b.Var:
		return 1
	}
	return 0
}

// expsCmp orders canonical monomials by their exponent vectors.
func expsCmp(a, b Monomial) int {
	for i := 0; i < len(a.Terms) && i < len(b.Terms); i++ {
		if a.Terms[i].Var != b.Terms[i].Var {
			if a.Terms[i].Var < b.Terms[i].Var {
				return -1
			}
			return 1
		}
		if a.Terms[i].Exp != b.Terms[i].Exp {
			if a.Terms[i].Exp < b.Terms[i].Exp {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a.Terms) < len(b.Terms):
		return -1
	case len(a.Terms) > len(b.Terms):
		return 1
	}
	return 0
}

// String renders m using the variable names in vs.
func (m Monomial) String(vs *VarSet) string {
	if m.IsConst() {
		return fmt.Sprintf("%g", m.Coeff)
	}
	var b strings.Builder
	if m.Coeff != 1 {
		fmt.Fprintf(&b, "%g*", m.Coeff)
	}
	for i, t := range m.Terms {
		if i > 0 {
			b.WriteByte('*')
		}
		b.WriteString(vs.Name(t.Var))
		if t.Exp != 1 {
			fmt.Fprintf(&b, "^%g", t.Exp)
		}
	}
	return b.String()
}

// Poly is a sum of monomials. Coefficients may be negative (signomial);
// geometric-program lowering rejects or relaxes negative terms. A nil or
// empty Poly is the zero polynomial. Keep canonical via Canon.
type Poly []Monomial

// PolyFrom builds a canonical polynomial from monomials.
func PolyFrom(ms ...Monomial) Poly {
	p := make(Poly, 0, len(ms))
	for _, m := range ms {
		p = append(p, m.Clone())
	}
	p.Canon()
	return p
}

// PolyConst returns the constant polynomial c (empty when c == 0).
func PolyConst(c float64) Poly {
	if c == 0 {
		return nil
	}
	return Poly{Const(c)}
}

// Canon sorts the monomials by exponent structure, merges monomials with
// identical structure, and drops zero coefficients, in place; returns the
// canonical polynomial.
func (p *Poly) Canon() Poly {
	q := *p
	for i := range q {
		q[i].Canon()
	}
	slices.SortFunc(q, expsCmp)
	out := q[:0]
	for _, m := range q {
		if n := len(out); n > 0 && sameExps(out[n-1], m) {
			out[n-1].Coeff += m.Coeff
		} else {
			out = append(out, m)
		}
	}
	n := 0
	for _, m := range out {
		if m.Coeff != 0 {
			out[n] = m
			n++
		}
	}
	*p = out[:n]
	return *p
}

// Clone returns a deep copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	for i, m := range p {
		q[i] = m.Clone()
	}
	return q
}

// Add returns p+q as a new canonical polynomial.
func (p Poly) Add(q Poly) Poly {
	r := make(Poly, 0, len(p)+len(q))
	for _, m := range p {
		r = append(r, m.Clone())
	}
	for _, m := range q {
		r = append(r, m.Clone())
	}
	r.Canon()
	return r
}

// AddMono returns p+m as a new canonical polynomial.
func (p Poly) AddMono(m Monomial) Poly { return p.Add(Poly{m}) }

// MulMono returns p·m as a new canonical polynomial.
func (p Poly) MulMono(m Monomial) Poly {
	r := make(Poly, len(p))
	for i, pm := range p {
		r[i] = pm.Mul(m)
	}
	r.Canon()
	return r
}

// Mul returns p·q fully expanded as a new canonical polynomial.
func (p Poly) Mul(q Poly) Poly {
	r := make(Poly, 0, len(p)*len(q))
	for _, pm := range p {
		for _, qm := range q {
			r = append(r, pm.Mul(qm))
		}
	}
	r.Canon()
	return r
}

// Scale returns c·p.
func (p Poly) Scale(c float64) Poly {
	return p.MulMono(Const(c))
}

// Eval evaluates p at the assignment x.
func (p Poly) Eval(x []float64) float64 {
	s := 0.0
	for _, m := range p {
		s += m.Eval(x)
	}
	return s
}

// IsMonomial reports whether p consists of a single monomial.
func (p Poly) IsMonomial() bool { return len(p) == 1 }

// IsConstant reports whether p is a constant (including zero).
func (p Poly) IsConstant() bool {
	for _, m := range p {
		if !m.IsConst() {
			return false
		}
	}
	return true
}

// AllPositive reports whether every coefficient is positive (a true
// posynomial).
func (p Poly) AllPositive() bool {
	for _, m := range p {
		if m.Coeff <= 0 {
			return false
		}
	}
	return true
}

// DropNegativeConstants returns a copy of p without its negative
// constant monomials (the posynomial relaxation used when lowering
// convolution extents to geometric-program form). Negative coefficients on
// monomials that contain variables are returned unchanged; callers must
// check AllPositive afterwards.
func (p Poly) DropNegativeConstants() Poly {
	q := make(Poly, 0, len(p))
	for _, m := range p {
		if m.IsConst() && m.Coeff < 0 {
			continue
		}
		q = append(q, m.Clone())
	}
	return q.Canon()
}

// HasVar reports whether any monomial references v.
func (p Poly) HasVar(v VarID) bool {
	for _, m := range p {
		if m.HasVar(v) {
			return true
		}
	}
	return false
}

// Vars appends the distinct variables referenced by p to dst.
func (p Poly) Vars(dst map[VarID]bool) {
	for _, m := range p {
		for _, t := range m.Terms {
			dst[t.Var] = true
		}
	}
}

// String renders p using the names in vs.
func (p Poly) String(vs *VarSet) string {
	if len(p) == 0 {
		return "0"
	}
	parts := make([]string, len(p))
	for i, m := range p {
		parts[i] = m.String(vs)
	}
	return strings.Join(parts, " + ")
}

// Key returns a canonical, name-independent serialization of p, used for
// structural deduplication (permutation-class pruning). Two polynomials
// over the same VarSet have equal keys iff they are structurally equal
// after Canon.
func (p Poly) Key() string {
	q := p.Clone()
	q.Canon()
	var b strings.Builder
	for i, m := range q {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%g", m.Coeff)
		for _, t := range m.Terms {
			fmt.Fprintf(&b, "@%d^%g", t.Var, t.Exp)
		}
	}
	return b.String()
}

// SubstConst returns a copy of p with every variable in vals replaced by
// its constant value (folded into coefficients). Canonicalization merges
// the resulting like terms, so pinned-variable extents such as
// t_h + t_r − 1 with t_r = 3 collapse to the true posynomial t_h + 2.
func (p Poly) SubstConst(vals map[VarID]float64) Poly {
	q := make(Poly, 0, len(p))
	for _, m := range p {
		nm := Monomial{Coeff: m.Coeff}
		for _, t := range m.Terms {
			if c, ok := vals[t.Var]; ok {
				nm.Coeff *= math.Pow(c, t.Exp)
			} else {
				nm.Terms = append(nm.Terms, t)
			}
		}
		q = append(q, nm)
	}
	return q.Canon()
}

// RenameVars returns a copy of p with every variable v replaced by
// subst[v] (identity when subst[v] == v). Used by symmetry pruning, which
// swaps the h/w variables and compares canonical keys.
func (p Poly) RenameVars(subst map[VarID]VarID) Poly {
	q := p.Clone()
	for i := range q {
		for j := range q[i].Terms {
			if nv, ok := subst[q[i].Terms[j].Var]; ok {
				q[i].Terms[j].Var = nv
			}
		}
	}
	q.Canon()
	return q
}

// Product is a product of polynomial factors: the factored form of a
// data-footprint or data-volume expression. The empty Product is the
// constant 1.
type Product struct {
	Factors []Poly
}

// ProductOf builds a product from deep copies of the given factors.
func ProductOf(factors ...Poly) Product {
	pr := Product{Factors: make([]Poly, len(factors))}
	for i, f := range factors {
		pr.Factors[i] = f.Clone()
	}
	return pr
}

// Clone returns a deep copy of pr.
func (pr Product) Clone() Product {
	c := Product{Factors: make([]Poly, len(pr.Factors))}
	for i, f := range pr.Factors {
		c.Factors[i] = f.Clone()
	}
	return c
}

// MulMono appends the monomial m as a new factor.
func (pr *Product) MulMono(m Monomial) {
	pr.Factors = append(pr.Factors, Poly{m.Clone()})
}

// MulVar appends the variable v as a new factor.
func (pr *Product) MulVar(v VarID) { pr.MulMono(MonoPow(1, v, 1)) }

// Eval evaluates the product exactly (including negative constants in
// factors) at the assignment x.
func (pr Product) Eval(x []float64) float64 {
	v := 1.0
	for _, f := range pr.Factors {
		v *= f.Eval(x)
	}
	return v
}

// Expand multiplies all factors into a single canonical polynomial. With
// relax true, each factor first drops its negative constant monomials
// (the posynomial relaxation); the result is then guaranteed
// all-positive if each factor's variable terms are positive.
func (pr Product) Expand(relax bool) Poly {
	r := PolyConst(1)
	for _, f := range pr.Factors {
		g := f
		if relax {
			g = f.DropNegativeConstants()
		}
		r = r.Mul(g)
	}
	return r
}

// ScaleVarMonomials multiplies, in every factor, every monomial that
// references a variable for which ofIter returns it, by the variable c.
// This implements Algorithm 1's replace(E, c^{l-1}, c^l·c^{l-1}) step
// under the invariant that each monomial references the trip-count
// variables of at most one iterator (which holds for all DF/DV
// expressions built by the dataflow package).
func (pr *Product) ScaleVarMonomials(ofIter func(VarID) int, it int, c VarID) {
	for fi := range pr.Factors {
		changed := false
		f := pr.Factors[fi]
		for mi := range f {
			hit := false
			for _, t := range f[mi].Terms {
				if ofIter(t.Var) == it {
					hit = true
					break
				}
			}
			if hit {
				f[mi] = f[mi].MulVar(c)
				changed = true
			}
		}
		if changed {
			pr.Factors[fi] = f.Canon()
		}
	}
}

// HasIter reports whether any factor references a variable belonging to
// iterator it (per ofIter).
func (pr Product) HasIter(ofIter func(VarID) int, it int) bool {
	for _, f := range pr.Factors {
		for _, m := range f {
			for _, t := range m.Terms {
				if ofIter(t.Var) == it {
					return true
				}
			}
		}
	}
	return false
}

// String renders the product using the names in vs.
func (pr Product) String(vs *VarSet) string {
	if len(pr.Factors) == 0 {
		return "1"
	}
	parts := make([]string, len(pr.Factors))
	for i, f := range pr.Factors {
		if f.IsMonomial() || f.IsConstant() {
			parts[i] = f.String(vs)
		} else {
			parts[i] = "(" + f.String(vs) + ")"
		}
	}
	return strings.Join(parts, " * ")
}

// Key returns a canonical serialization of the product for structural
// deduplication. Factors are individually canonicalized and sorted so that
// factor order does not affect the key. Single-monomial factors are
// merged into one monomial factor first.
func (pr Product) Key() string {
	mono := Const(1)
	var polys []string
	for _, f := range pr.Factors {
		g := f.Clone()
		g.Canon()
		if g.IsMonomial() {
			mono = mono.Mul(g[0])
			continue
		}
		polys = append(polys, g.Key())
	}
	sort.Strings(polys)
	var b strings.Builder
	b.WriteString(Poly{mono}.Key())
	for _, s := range polys {
		b.WriteByte('|')
		b.WriteString(s)
	}
	return b.String()
}

// SubstConst returns a copy with the given variables folded into the
// factor coefficients (see Poly.SubstConst).
func (pr Product) SubstConst(vals map[VarID]float64) Product {
	c := Product{Factors: make([]Poly, len(pr.Factors))}
	for i, f := range pr.Factors {
		c.Factors[i] = f.SubstConst(vals)
	}
	return c
}

// RenameVars returns a copy with variables substituted per subst (see
// Poly.RenameVars).
func (pr Product) RenameVars(subst map[VarID]VarID) Product {
	c := Product{Factors: make([]Poly, len(pr.Factors))}
	for i, f := range pr.Factors {
		c.Factors[i] = f.RenameVars(subst)
	}
	return c
}
