// Package gp represents geometric programs (GPs) over the symbolic
// expressions of package expr and lowers them to the log-space convex
// form solved by package solver. This pairing is the repository's
// substitute for the CVXPY disciplined-geometric-programming stack used
// by the Thistle paper.
//
// A geometric program in standard form is
//
//	minimize   f0(x)                 (posynomial)
//	subject to fi(x) ≤ 1             (posynomials)
//	           gj(x) = 1             (monomials)
//	           x > 0
//
// With the substitution y = log x every posynomial becomes a log-sum-exp
// function and every monomial equality a linear equation, yielding a
// convex program.
package gp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/expr"
	"repro/internal/floats"
	"repro/internal/linalg"
	"repro/internal/solver"
)

// ErrNotPosynomial is returned when an objective or constraint contains a
// non-positive coefficient (after any relaxation the caller performed).
var ErrNotPosynomial = errors.New("gp: expression is not a posynomial")

// ErrBadConstraint is returned for structurally invalid constraints, such
// as an equality between non-monomials.
var ErrBadConstraint = errors.New("gp: invalid constraint")

// Program is a geometric program under construction. Create with New,
// populate with AddConstraint*/SetObjective, then call Solve.
type Program struct {
	Vars      *expr.VarSet
	Objective expr.Poly       // posynomial, minimized
	Ineq      []expr.Poly     // each means poly ≤ 1
	Eq        []expr.Monomial // each means mono = 1
	names     []string        // optional labels parallel to Ineq (diagnostics)
}

// New creates an empty program over the given variable set.
func New(vars *expr.VarSet) *Program {
	return &Program{Vars: vars}
}

// SetObjective sets the posynomial objective to minimize.
func (p *Program) SetObjective(obj expr.Poly) error {
	if len(obj) == 0 {
		return fmt.Errorf("%w: empty objective", ErrBadConstraint)
	}
	if !obj.AllPositive() {
		return fmt.Errorf("%w: objective %s", ErrNotPosynomial, obj.String(p.Vars))
	}
	p.Objective = obj.Clone()
	return nil
}

// AddLessEq adds the constraint lhs ≤ rhs where lhs is a posynomial and
// rhs a monomial (the DGP-valid form). Internally stored as lhs/rhs ≤ 1.
func (p *Program) AddLessEq(name string, lhs expr.Poly, rhs expr.Monomial) error {
	if len(lhs) == 0 {
		return nil // 0 ≤ rhs is vacuous for positive monomials
	}
	if !lhs.AllPositive() {
		return fmt.Errorf("%w: %s: %s", ErrNotPosynomial, name, lhs.String(p.Vars))
	}
	if rhs.Coeff <= 0 {
		return fmt.Errorf("%w: %s: non-positive bound", ErrBadConstraint, name)
	}
	p.Ineq = append(p.Ineq, lhs.MulMono(rhs.Inv()))
	p.names = append(p.names, name)
	return nil
}

// AddUpperBound adds x ≤ c for a single variable.
func (p *Program) AddUpperBound(name string, v expr.VarID, c float64) error {
	return p.AddLessEq(name, expr.PolyFrom(expr.MonoPow(1, v, 1)), expr.Const(c))
}

// AddLowerBound adds x ≥ c (c > 0) for a single variable, i.e. c/x ≤ 1.
func (p *Program) AddLowerBound(name string, v expr.VarID, c float64) error {
	if c <= 0 {
		return fmt.Errorf("%w: %s: non-positive lower bound", ErrBadConstraint, name)
	}
	return p.AddLessEq(name, expr.PolyFrom(expr.MonoPow(c, v, -1)), expr.Const(1))
}

// AddMonoEq adds the monomial equality lhs = rhs (both monomials with
// positive coefficients). Internally stored as lhs/rhs = 1.
func (p *Program) AddMonoEq(name string, lhs, rhs expr.Monomial) error {
	if lhs.Coeff <= 0 || rhs.Coeff <= 0 {
		return fmt.Errorf("%w: %s: equality with non-positive coefficient", ErrBadConstraint, name)
	}
	p.Eq = append(p.Eq, lhs.Mul(rhs.Inv()))
	return nil
}

// ConstraintNames returns the labels of the inequality constraints, in
// order, for diagnostics.
func (p *Program) ConstraintNames() []string {
	return append([]string(nil), p.names...)
}

// Result reports the solution of a GP.
type Result struct {
	// X is the optimal point in the original (positive) variables,
	// indexed by VarID.
	X []float64
	// Objective is the posynomial objective value at X.
	Objective float64
	Status    solver.Status
	Newton    int
}

// lowerPoly converts a posynomial to a log-sum-exp over n variables.
func lowerPoly(poly expr.Poly, n int) (solver.LSE, error) {
	if !poly.AllPositive() {
		return solver.LSE{}, ErrNotPosynomial
	}
	f := solver.LSE{A: make([][]float64, len(poly)), B: make([]float64, len(poly))}
	for k, m := range poly {
		row := make([]float64, n)
		for _, t := range m.Terms {
			row[t.Var] += t.Exp
		}
		f.A[k] = row
		f.B[k] = math.Log(m.Coeff)
	}
	return f, nil
}

// Lower converts the program to the solver's log-space form.
func (p *Program) Lower() (*solver.Problem, error) {
	n := p.Vars.Len()
	if n == 0 {
		return nil, fmt.Errorf("%w: no variables", ErrBadConstraint)
	}
	obj, err := lowerPoly(p.Objective, n)
	if err != nil {
		return nil, fmt.Errorf("lowering objective: %w", err)
	}
	prob := &solver.Problem{N: n, Obj: obj}
	for i, c := range p.Ineq {
		f, err := lowerPoly(c, n)
		if err != nil {
			return nil, fmt.Errorf("lowering constraint %q: %w", p.names[i], err)
		}
		prob.Ineq = append(prob.Ineq, f)
	}
	if len(p.Eq) > 0 {
		aeq := linalg.NewDense(len(p.Eq), n)
		beq := make([]float64, len(p.Eq))
		for i, m := range p.Eq {
			for _, t := range m.Terms {
				aeq.Add(i, int(t.Var), t.Exp)
			}
			beq[i] = -math.Log(m.Coeff)
		}
		prob.Aeq = aeq
		prob.Beq = beq
	}
	return prob, nil
}

// Solve lowers and solves the program. xHint, when non-nil, is an initial
// guess in the original positive variables (values ≤ 0 are treated as 1).
func (p *Program) Solve(xHint []float64, opts solver.Options) (Result, error) {
	prob, err := p.Lower()
	if err != nil {
		return Result{}, err
	}
	var yHint []float64
	if xHint != nil {
		yHint = make([]float64, len(xHint))
		for i, v := range xHint {
			if v > 0 {
				yHint[i] = math.Log(v)
			}
		}
	}
	res, err := solver.Solve(prob, yHint, opts)
	if err != nil {
		return Result{}, err
	}
	out := Result{Status: res.Status, Newton: res.Newton}
	if res.Status == solver.Infeasible {
		return out, nil
	}
	out.X = make([]float64, len(res.Y))
	for i, y := range res.Y {
		out.X[i] = math.Exp(y)
	}
	out.Objective = p.Objective.Eval(out.X)
	return out, nil
}

// CheckFeasible evaluates all constraints at x and returns the names of
// violated inequality constraints (relative violation beyond tol) and
// equalities off by more than tol.
func (p *Program) CheckFeasible(x []float64, tol float64) []string {
	var bad []string
	for i, c := range p.Ineq {
		if c.Eval(x) > 1+tol {
			bad = append(bad, p.names[i])
		}
	}
	for _, m := range p.Eq {
		if v := m.Eval(x); !floats.EqTol(v, 1, tol) {
			bad = append(bad, fmt.Sprintf("equality %s", m.String(p.Vars)))
		}
	}
	return bad
}
