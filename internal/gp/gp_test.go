package gp

import (
	"math"
	"testing"

	"repro/internal/expr"
	"repro/internal/solver"
)

// buildSimple returns a GP: minimize x + y subject to x·y ≥ 4
// (4/(x·y) ≤ 1). Optimum x = y = 2, objective 4.
func buildSimple(t *testing.T) (*Program, expr.VarID, expr.VarID) {
	t.Helper()
	vs := &expr.VarSet{}
	x := vs.NewVar("x")
	y := vs.NewVar("y")
	p := New(vs)
	if err := p.SetObjective(expr.PolyFrom(expr.Mono(1, x), expr.Mono(1, y))); err != nil {
		t.Fatal(err)
	}
	lhs := expr.PolyFrom(expr.Monomial{Coeff: 4, Terms: []expr.Term{{Var: x, Exp: -1}, {Var: y, Exp: -1}}})
	if err := p.AddLessEq("xy>=4", lhs, expr.Const(1)); err != nil {
		t.Fatal(err)
	}
	return p, x, y
}

func TestSolveSimpleGP(t *testing.T) {
	p, x, y := buildSimple(t)
	res, err := p.Solve(nil, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-4) > 1e-4 {
		t.Fatalf("objective = %v, want 4", res.Objective)
	}
	if math.Abs(res.X[x]-2) > 1e-3 || math.Abs(res.X[y]-2) > 1e-3 {
		t.Fatalf("X = %v, want [2 2]", res.X)
	}
	if bad := p.CheckFeasible(res.X, 1e-6); len(bad) != 0 {
		t.Fatalf("violations: %v", bad)
	}
}

func TestSolveWithMonomialEquality(t *testing.T) {
	// minimize x + 2y s.t. x·y = 8 → x = 2y ⇒ 2y² = 8 ⇒ y = 2, x = 4.
	vs := &expr.VarSet{}
	x := vs.NewVar("x")
	y := vs.NewVar("y")
	p := New(vs)
	if err := p.SetObjective(expr.PolyFrom(expr.Mono(1, x), expr.Mono(2, y))); err != nil {
		t.Fatal(err)
	}
	if err := p.AddMonoEq("xy=8", expr.Mono(1, x, y), expr.Const(8)); err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(nil, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[x]-4) > 1e-3 || math.Abs(res.X[y]-2) > 1e-3 {
		t.Fatalf("X = %v, want [4 2]", res.X)
	}
}

func TestBounds(t *testing.T) {
	// minimize 1/x with x ≤ 10 → x = 10.
	vs := &expr.VarSet{}
	x := vs.NewVar("x")
	p := New(vs)
	if err := p.SetObjective(expr.PolyFrom(expr.MonoPow(1, x, -1))); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound("x<=10", x, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLowerBound("x>=1", x, 1); err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve([]float64{2}, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[x]-10) > 1e-2 {
		t.Fatalf("x = %v, want 10", res.X[x])
	}
}

func TestRejectsSignomials(t *testing.T) {
	vs := &expr.VarSet{}
	x := vs.NewVar("x")
	p := New(vs)
	bad := expr.PolyFrom(expr.Mono(1, x), expr.Const(-1))
	if err := p.SetObjective(bad); err == nil {
		t.Fatal("expected error for signomial objective")
	}
	if err := p.AddLessEq("bad", bad, expr.Const(1)); err == nil {
		t.Fatal("expected error for signomial constraint")
	}
	if err := p.AddLessEq("badrhs", expr.PolyFrom(expr.Mono(1, x)), expr.Const(-2)); err == nil {
		t.Fatal("expected error for non-positive bound")
	}
	if err := p.AddMonoEq("badeq", expr.Const(-1), expr.Const(1)); err == nil {
		t.Fatal("expected error for negative equality")
	}
	if err := p.AddLowerBound("badlb", x, 0); err == nil {
		t.Fatal("expected error for non-positive lower bound")
	}
	if err := p.SetObjective(nil); err == nil {
		t.Fatal("expected error for empty objective")
	}
}

func TestVacuousAndNames(t *testing.T) {
	vs := &expr.VarSet{}
	x := vs.NewVar("x")
	p := New(vs)
	if err := p.AddLessEq("vacuous", nil, expr.Const(1)); err != nil {
		t.Fatal(err)
	}
	if len(p.Ineq) != 0 {
		t.Fatal("vacuous constraint should be dropped")
	}
	_ = p.AddUpperBound("ub", x, 5)
	names := p.ConstraintNames()
	if len(names) != 1 || names[0] != "ub" {
		t.Fatalf("names = %v", names)
	}
}

func TestInfeasibleGP(t *testing.T) {
	vs := &expr.VarSet{}
	x := vs.NewVar("x")
	p := New(vs)
	if err := p.SetObjective(expr.PolyFrom(expr.Mono(1, x))); err != nil {
		t.Fatal(err)
	}
	_ = p.AddUpperBound("x<=1", x, 1)
	_ = p.AddLowerBound("x>=2", x, 2)
	res, err := p.Solve(nil, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestCheckFeasibleReportsViolations(t *testing.T) {
	p, x, y := buildSimple(t)
	bad := p.CheckFeasible(map2slice(x, 1, y, 1), 1e-9) // x·y = 1 < 4 violates
	if len(bad) != 1 || bad[0] != "xy>=4" {
		t.Fatalf("violations = %v", bad)
	}
}

func map2slice(x expr.VarID, xv float64, y expr.VarID, yv float64) []float64 {
	out := make([]float64, 2)
	out[x] = xv
	out[y] = yv
	return out
}

// A GP mirroring the paper's matmul dataflow shape: minimize total
// "volume" N²·(1/a + 1/b) s.t. a·b ≤ C — optimum at a = b = √C.
func TestSolveMatmulLikeGP(t *testing.T) {
	const C = 256.0
	vs := &expr.VarSet{}
	a := vs.NewVar("a")
	b := vs.NewVar("b")
	p := New(vs)
	obj := expr.PolyFrom(expr.MonoPow(1e6, a, -1), expr.MonoPow(1e6, b, -1))
	if err := p.SetObjective(obj); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLessEq("cap", expr.PolyFrom(expr.Mono(1, a, b)), expr.Const(C)); err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(nil, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[a]-16) > 0.05 || math.Abs(res.X[b]-16) > 0.05 {
		t.Fatalf("X = %v, want [16 16]", res.X)
	}
}

// Fractional exponents (the co-design √S term) must round-trip.
func TestFractionalExponent(t *testing.T) {
	// minimize s^0.5 + 100/s → d/ds: 0.5 s^-0.5 − 100 s^-2 = 0 ⇒
	// s^1.5 = 200 ⇒ s = 200^(2/3).
	vs := &expr.VarSet{}
	s := vs.NewVar("s")
	p := New(vs)
	obj := expr.PolyFrom(expr.MonoPow(1, s, 0.5), expr.MonoPow(100, s, -1))
	if err := p.SetObjective(obj); err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(nil, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(200, 2.0/3.0)
	if math.Abs(res.X[s]-want) > 1e-2*want {
		t.Fatalf("s = %v, want %v", res.X[s], want)
	}
}
