package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func fdCheckGrad(t *testing.T, f *LSE, y []float64) {
	t.Helper()
	n := len(y)
	g := make([]float64, n)
	f.Eval(y, g, nil)
	const h = 1e-6
	for i := 0; i < n; i++ {
		yp := append([]float64(nil), y...)
		ym := append([]float64(nil), y...)
		yp[i] += h
		ym[i] -= h
		fd := (f.Value(yp) - f.Value(ym)) / (2 * h)
		if math.Abs(fd-g[i]) > 1e-5*(1+math.Abs(fd)) {
			t.Fatalf("grad[%d] = %v, finite-diff %v", i, g[i], fd)
		}
	}
}

func fdCheckHess(t *testing.T, f *LSE, y []float64) {
	t.Helper()
	n := len(y)
	h := linalg.NewDense(n, n)
	f.Eval(y, nil, h)
	const eps = 1e-5
	for i := 0; i < n; i++ {
		gp := make([]float64, n)
		gm := make([]float64, n)
		yp := append([]float64(nil), y...)
		ym := append([]float64(nil), y...)
		yp[i] += eps
		ym[i] -= eps
		f.Eval(yp, gp, nil)
		f.Eval(ym, gm, nil)
		for j := 0; j < n; j++ {
			fd := (gp[j] - gm[j]) / (2 * eps)
			if math.Abs(fd-h.At(i, j)) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("hess[%d,%d] = %v, finite-diff %v", i, j, h.At(i, j), fd)
			}
		}
	}
}

func TestLSEDerivatives(t *testing.T) {
	f := LSE{
		A: [][]float64{{1, 2}, {-1, 0.5}, {0, -2}},
		B: []float64{0.1, -0.3, 0.7},
	}
	for _, y := range [][]float64{{0, 0}, {1, -1}, {-2, 3}, {0.5, 0.5}} {
		fdCheckGrad(t, &f, y)
		fdCheckHess(t, &f, y)
	}
}

func TestLSEValueStability(t *testing.T) {
	// Large offsets must not overflow.
	f := LSE{A: [][]float64{{1}, {1}}, B: []float64{1000, 1000}}
	got := f.Value([]float64{0})
	want := 1000 + math.Log(2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Value = %v, want %v", got, want)
	}
}

func TestLinear(t *testing.T) {
	f := Linear([]float64{2, -1}, 3)
	if got := f.Value([]float64{1, 4}); got != 2-4+3 {
		t.Fatalf("linear value = %v, want 1", got)
	}
	if f.Terms() != 1 {
		t.Fatal("linear should be single-term")
	}
}

func TestCompose(t *testing.T) {
	f := LSE{A: [][]float64{{1, 1}, {2, -1}}, B: []float64{0, 1}}
	y0 := []float64{0.5, -0.5}
	z := linalg.FromRows([][]float64{{1}, {2}})
	g := f.Compose(y0, z)
	for _, zv := range []float64{-1, 0, 0.7} {
		y := []float64{y0[0] + zv, y0[1] + 2*zv}
		if a, b := g.Value([]float64{zv}), f.Value(y); math.Abs(a-b) > 1e-12 {
			t.Fatalf("compose mismatch at z=%v: %v vs %v", zv, a, b)
		}
	}
}

func TestExtendDim(t *testing.T) {
	f := LSE{A: [][]float64{{1, 2}}, B: []float64{0.5}}
	g := f.ExtendDim(3, -1)
	y := []float64{1, 2}
	s := 0.75
	if a, b := g.Value([]float64{1, 2, s}), f.Value(y)-s; math.Abs(a-b) > 1e-12 {
		t.Fatalf("ExtendDim mismatch: %v vs %v", a, b)
	}
}

// solveGP2 is the classic tiny GP: minimize x + y subject to x·y ≥ 1,
// whose optimum is x = y = 1 (objective 2). In log space: minimize
// log(e^y1 + e^y2) subject to −y1 − y2 ≤ 0.
func TestSolveTinyGP(t *testing.T) {
	p := &Problem{
		N:    2,
		Obj:  LSE{A: [][]float64{{1, 0}, {0, 1}}, B: []float64{0, 0}},
		Ineq: []LSE{Linear([]float64{-1, -1}, 0)},
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-math.Log(2)) > 1e-5 {
		t.Fatalf("objective = %v, want log 2", res.Objective)
	}
	for i, v := range res.Y {
		if math.Abs(v) > 1e-4 {
			t.Fatalf("y[%d] = %v, want 0", i, v)
		}
	}
}

func TestSolveWithEquality(t *testing.T) {
	// minimize x + y s.t. x·y = 6 → x = y = √6, objective 2√6.
	// Log space: min log(e^y1+e^y2) s.t. y1 + y2 = log 6.
	p := &Problem{
		N:   2,
		Obj: LSE{A: [][]float64{{1, 0}, {0, 1}}, B: []float64{0, 0}},
		Aeq: linalg.FromRows([][]float64{{1, 1}}),
		Beq: []float64{math.Log(6)},
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	want := math.Log(2 * math.Sqrt(6))
	if math.Abs(res.Objective-want) > 1e-5 {
		t.Fatalf("objective = %v, want %v", res.Objective, want)
	}
	if math.Abs(res.Y[0]-res.Y[1]) > 1e-4 {
		t.Fatalf("asymmetric solution %v", res.Y)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ 0.5 and x ≥ 2 cannot hold: y ≤ log 0.5, −y ≤ −log 2.
	p := &Problem{
		N:   1,
		Obj: Linear([]float64{1}, 0),
		Ineq: []LSE{
			Linear([]float64{1}, -math.Log(0.5)),
			Linear([]float64{-1}, math.Log(2)),
		},
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestSolveInconsistentEquality(t *testing.T) {
	p := &Problem{
		N:   2,
		Obj: Linear([]float64{1, 0}, 0),
		Aeq: linalg.FromRows([][]float64{{1, 1}, {2, 2}}),
		Beq: []float64{0, 1},
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestSolveFullyDeterminedByEqualities(t *testing.T) {
	p := &Problem{
		N:   2,
		Obj: LSE{A: [][]float64{{1, 0}}, B: []float64{0}},
		Aeq: linalg.FromRows([][]float64{{1, 0}, {0, 1}}),
		Beq: []float64{1, 2},
		Ineq: []LSE{
			Linear([]float64{1, 0}, -3), // y1 ≤ 3: satisfied
		},
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Y[0]-1) > 1e-12 || math.Abs(res.Y[1]-2) > 1e-12 {
		t.Fatalf("result = %+v", res)
	}
	// Now make the fixed point violate an inequality.
	p.Ineq = []LSE{Linear([]float64{1, 0}, 5)} // y1 + 5 ≤ 0: violated
	res, err = Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestSolveUnconstrained(t *testing.T) {
	// minimize log(e^{y} + e^{−y}): optimum at y = 0, value log 2.
	p := &Problem{
		N:   1,
		Obj: LSE{A: [][]float64{{1}, {-1}}, B: []float64{0, 0}},
	}
	res, err := Solve(p, []float64{3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Y[0]) > 1e-5 || math.Abs(res.Objective-math.Log(2)) > 1e-8 {
		t.Fatalf("result = %+v", res)
	}
}

func TestSolveActiveConstraint(t *testing.T) {
	// minimize 1/x (log: −y) subject to x ≤ 5 (y ≤ log 5) → x = 5.
	p := &Problem{
		N:    1,
		Obj:  Linear([]float64{-1}, 0),
		Ineq: []LSE{Linear([]float64{1}, -math.Log(5))},
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Exp(res.Y[0])-5) > 1e-3 {
		t.Fatalf("x = %v, want 5", math.Exp(res.Y[0]))
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Suboptimal.String() != "suboptimal" ||
		Infeasible.String() != "infeasible" || Status(42).String() == "" {
		t.Fatal("Status strings")
	}
}

// Property: for random feasible GP-like problems minimize c·y subject to
// box constraints l ≤ y ≤ u, the solver returns y within the box and at
// the correct corner (sign-dependent).
func TestQuickBoxLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		c := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		var ineq []LSE
		for i := 0; i < n; i++ {
			c[i] = rng.NormFloat64()
			if math.Abs(c[i]) < 0.1 {
				c[i] = 0.5
			}
			lo[i] = -1 - rng.Float64()
			hi[i] = 1 + rng.Float64()
			ei := make([]float64, n)
			ei[i] = 1
			ineq = append(ineq, Linear(ei, -hi[i])) // y_i ≤ hi
			mi := make([]float64, n)
			mi[i] = -1
			ineq = append(ineq, Linear(mi, lo[i])) // y_i ≥ lo
		}
		p := &Problem{N: n, Obj: Linear(c, 0), Ineq: ineq}
		res, err := Solve(p, nil, Options{})
		if err != nil || res.Status == Infeasible {
			return false
		}
		for i := 0; i < n; i++ {
			want := hi[i]
			if c[i] > 0 {
				want = lo[i]
			}
			if math.Abs(res.Y[i]-want) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
