package solver

import (
	"repro/internal/linalg"
)

// Workspace holds every reusable buffer of a barrier solve: the linalg
// factor scratch, the Newton-iteration vectors and Hessians, the arena
// backing composed log-sum-exp functions, and a cache of the equality
// elimination (particular solution, nullspace basis, composed box
// constraints). The pipeline solves hundreds of GPs per placement that
// share one equality system — identical extent-product and pin
// constraints — so the cache turns an O(N³) elimination plus 2N box
// compositions per solve into a content-equality check.
//
// The zero value is ready to use (NewWorkspace is provided for clarity).
// A Workspace is not safe for concurrent use: pool instances, one per
// in-flight solve. All returned Results hold freshly allocated memory;
// nothing a caller keeps aliases the workspace.
type Workspace struct {
	// Lin is the dense linear-algebra scratch (Cholesky factors,
	// nullspace elimination) shared by every solve on this workspace.
	Lin linalg.Workspace

	// Equality-elimination cache, keyed by problem dimension, equality
	// content, and box bound.
	eqValid   bool
	cachedN   int
	cachedBox float64
	cachedAeq *linalg.Dense // deep copy; nil means "no equalities"
	cachedBeq []float64
	yPart     []float64
	zBasis    *linalg.Dense
	boxComp   []LSE // box constraints composed against zBasis
	ztz       *linalg.Dense
	ztzValid  bool

	// Composed-function scratch: per-solve objective and inequality
	// headers whose row and offset slices are reused at high-water mark.
	objScratch  LSE
	ineqScratch []LSE
	ineqList    []LSE

	// Phase-I scratch: extended constraints, objective/floor rows, and
	// the extended iterate.
	extScratch []LSE
	extList    []LSE
	floorLSE   LSE
	phObjLSE   LSE
	phX        []float64

	// Newton scratch, sized to the largest dimension seen.
	g, gTmp, negG, dir, zTrial []float64
	h, hTmp                    *linalg.Dense
	evalU, evalP               []float64 // LSE evaluation scratch (max K)

	// Hint-projection and recovery scratch.
	hintD, hintRhs, hintSol, recTmp []float64
}

// NewWorkspace returns an empty workspace (equivalent to new(Workspace)).
func NewWorkspace() *Workspace { return &Workspace{} }

// growF resizes *v to n reusing capacity; contents are unspecified.
func growF(v *[]float64, n int) []float64 {
	if cap(*v) < n {
		*v = make([]float64, n)
	}
	*v = (*v)[:n]
	return *v
}

// growLSEs resizes *v to n, preserving existing element headers (whose
// row/offset slices are the reusable storage) rather than zeroing them.
func growLSEs(v *[]LSE, n int) []LSE {
	if cap(*v) < n {
		*v = append((*v)[:cap(*v)], make([]LSE, n-cap(*v))...)
	}
	*v = (*v)[:n]
	return *v
}

// growDense resizes *m to rows×cols reusing its backing array; contents
// are unspecified.
func growDense(m **linalg.Dense, rows, cols int) *linalg.Dense {
	n := rows * cols
	if *m == nil || cap((*m).Data) < n {
		*m = linalg.NewDense(rows, cols)
		return *m
	}
	(*m).Rows, (*m).Cols, (*m).Data = rows, cols, (*m).Data[:n]
	return *m
}

// composeInto writes f composed with the affine map y = y0 + Z·z into
// dst, reusing dst's row and offset storage. Numerically identical to
// LSE.Compose.
func composeInto(dst *LSE, f *LSE, y0 []float64, z *linalg.Dense) {
	k := len(f.B)
	if cap(dst.A) < k {
		dst.A = make([][]float64, k)
	}
	dst.A = dst.A[:k]
	dst.B = growF(&dst.B, k)
	for i := 0; i < k; i++ {
		row := growF(&dst.A[i], z.Cols)
		z.MulTransVec(f.A[i], row)
		dst.B[i] = f.B[i] + linalg.Dot(f.A[i], y0)
	}
}

// linearInto builds the affine LSE a·y + b into dst, reusing dst's
// storage (a is copied). Numerically identical to Linear.
func linearInto(dst *LSE, a []float64, b float64) {
	if cap(dst.A) < 1 {
		dst.A = make([][]float64, 1)
	}
	dst.A = dst.A[:1]
	row := growF(&dst.A[0], len(a))
	copy(row, a)
	dst.A[0] = row
	dst.B = growF(&dst.B, 1)
	dst.B[0] = b
}

// extendInto writes f over a space widened to newDim with coefficient
// coefLast on the final coordinate into dst, reusing dst's storage.
// Numerically identical to LSE.ExtendDim.
func extendInto(dst *LSE, f *LSE, newDim int, coefLast float64) {
	k := len(f.B)
	if cap(dst.A) < k {
		dst.A = make([][]float64, k)
	}
	dst.A = dst.A[:k]
	dst.B = growF(&dst.B, k)
	copy(dst.B, f.B)
	for i := 0; i < k; i++ {
		row := growF(&dst.A[i], newDim)
		nc := copy(row, f.A[i])
		for j := nc; j < newDim; j++ {
			row[j] = 0
		}
		row[newDim-1] = coefLast
		dst.A[i] = row
	}
}

// sameFloats reports exact element-wise equality.
func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//tlvet:ignore floateq -- cache key: exact content identity decides reuse; any difference must miss
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// eliminate returns the equality elimination for p — the particular
// solution yPart, nullspace basis zBasis, and the box constraints
// |y_i| ≤ box composed against that basis — from cache when p carries
// the same equalities, dimension, and box bound as the previous solve.
// The returned slices are workspace-owned and must be treated read-only.
func (ws *Workspace) eliminate(p *Problem, box float64) (yPart []float64, zBasis *linalg.Dense, boxComp []LSE, err error) {
	hasEq := p.Aeq != nil && p.Aeq.Rows > 0
	if ws.eqValid && ws.cachedN == p.N && sameBox(ws.cachedBox, box) {
		switch {
		case !hasEq && ws.cachedAeq == nil:
			return ws.yPart, ws.zBasis, ws.boxComp, nil
		case hasEq && ws.cachedAeq != nil &&
			ws.cachedAeq.Rows == p.Aeq.Rows && ws.cachedAeq.Cols == p.Aeq.Cols &&
			sameFloats(ws.cachedAeq.Data, p.Aeq.Data) && sameFloats(ws.cachedBeq, p.Beq):
			return ws.yPart, ws.zBasis, ws.boxComp, nil
		}
	}
	ws.eqValid = false
	ws.ztzValid = false
	if hasEq {
		x0, z, serr := ws.Lin.SolveWithNullspaceInto(p.Aeq, p.Beq)
		if serr != nil {
			return nil, nil, nil, serr
		}
		ws.yPart = append(ws.yPart[:0], x0...)
		zb := growDense(&ws.zBasis, z.Rows, z.Cols)
		copy(zb.Data, z.Data)
		ca := growDense(&ws.cachedAeq, p.Aeq.Rows, p.Aeq.Cols)
		copy(ca.Data, p.Aeq.Data)
		ws.cachedBeq = append(ws.cachedBeq[:0], p.Beq...)
	} else {
		ws.yPart = growF(&ws.yPart, p.N)
		for i := range ws.yPart {
			ws.yPart[i] = 0
		}
		zb := growDense(&ws.zBasis, p.N, p.N)
		for i := range zb.Data {
			zb.Data[i] = 0
		}
		for i := 0; i < p.N; i++ {
			zb.Set(i, i, 1)
		}
		ws.cachedAeq = nil
	}
	// Compose the box constraints once per cache fill; every solve that
	// hits the cache reuses them read-only.
	if box > 0 {
		raw := boxConstraints(p.N, box)
		ws.boxComp = growLSEs(&ws.boxComp, len(raw))
		for i := range raw {
			composeInto(&ws.boxComp[i], &raw[i], ws.yPart, ws.zBasis)
		}
	} else {
		ws.boxComp = ws.boxComp[:0]
	}
	ws.cachedN = p.N
	ws.cachedBox = box
	ws.eqValid = true
	return ws.yPart, ws.zBasis, ws.boxComp, nil
}

// sameBox compares box bounds for cache keying.
func sameBox(a, b float64) bool {
	//tlvet:ignore floateq -- cache key: the box bound is a configuration constant, compared for identity
	return a == b
}
