package solver

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/events"
)

// sinkLog is a concurrency-safe obs.EventSink capturing emitted events.
type sinkLog struct {
	mu     sync.Mutex
	types  []string
	fields []map[string]any
}

func (s *sinkLog) Emit(typ string, fields map[string]any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.types = append(s.types, typ)
	s.fields = append(s.fields, fields)
}

func (s *sinkLog) last(typ string) map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.types) - 1; i >= 0; i-- {
		if s.types[i] == typ {
			return s.fields[i]
		}
	}
	return nil
}

// tinyGP is the classic minimize x+y s.t. x·y ≥ 1 in log space; from
// the origin the constraint is active (boundary), so phase I runs.
func tinyGP() *Problem {
	return &Problem{
		N:    2,
		Obj:  LSE{A: [][]float64{{1, 0}, {0, 1}}, B: []float64{0, 0}},
		Ineq: []LSE{Linear([]float64{-1, -1}, 0)},
	}
}

// TestSolveConvergenceTelemetry checks the Result's convergence fields:
// the certified gap is below tolerance for an optimal solve and the
// phase-I flag reflects whether a feasibility search ran.
func TestSolveConvergenceTelemetry(t *testing.T) {
	res, err := Solve(tinyGP(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !res.PhaseI {
		t.Fatal("origin start sits on the constraint boundary: phase I should run")
	}
	if res.Gap <= 0 || res.Gap >= 1e-8 {
		t.Fatalf("final gap %g not in (0, tol)", res.Gap)
	}

	// A strictly feasible warm hint skips phase I.
	res2, err := Solve(tinyGP(), []float64{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != Optimal || res2.PhaseI {
		t.Fatalf("warm solve = status %v phase1 %v, want optimal without phase I", res2.Status, res2.PhaseI)
	}

	// Infeasible problems report PhaseI and a zero (uncertified) gap.
	infeas := &Problem{
		N:   1,
		Obj: Linear([]float64{1}, 0),
		Ineq: []LSE{
			Linear([]float64{1}, -math.Log(0.5)),
			Linear([]float64{-1}, math.Log(2)),
		},
	}
	res3, err := Solve(infeas, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Status != Infeasible || !res3.PhaseI || res3.Gap != 0 {
		t.Fatalf("infeasible solve = %+v, want infeasible via phase I with gap 0", res3)
	}
}

// TestSolveEndEventFields checks the solve_end payload carries the new
// gap/phase1 fields and that every field conforms to the
// thistle-events-v1 schema (the dynamic twin of the tlvet eventfields
// analyzer).
func TestSolveEndEventFields(t *testing.T) {
	sink := &sinkLog{}
	o := &obs.Obs{Events: sink}
	res, err := Solve(tinyGP(), nil, Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	ev := sink.last(obs.EvSolveEnd)
	if ev == nil {
		t.Fatal("no solve_end emitted")
	}
	if ev["gap"] != res.Gap {
		t.Fatalf("solve_end gap = %v, want %v", ev["gap"], res.Gap)
	}
	if ev["phase1"] != res.PhaseI {
		t.Fatalf("solve_end phase1 = %v, want %v", ev["phase1"], res.PhaseI)
	}
	spec, ok := events.Schema()[obs.EvSolveEnd]
	if !ok {
		t.Fatal("solve_end missing from schema")
	}
	for field := range ev {
		if _, ok := spec.Kind(field); !ok {
			t.Errorf("solve_end field %q not declared in events.Schema()", field)
		}
	}
	for field := range spec.Required {
		if _, ok := ev[field]; !ok {
			t.Errorf("solve_end missing required field %q", field)
		}
	}
}

// TestSolveSpanConvergenceAttrs checks the solve span is annotated with
// the convergence telemetry.
func TestSolveSpanConvergenceAttrs(t *testing.T) {
	o := &obs.Obs{Tracer: obs.NewTracer()}
	res, err := Solve(tinyGP(), nil, Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	tree := o.Tracer.Tree()
	if len(tree) != 1 || tree[0].Name != "solve" {
		t.Fatalf("span forest = %+v", tree)
	}
	attrs := tree[0].Attrs
	if attrs["gap"] != res.Gap || attrs["phase1"] != res.PhaseI {
		t.Fatalf("solve span attrs = %v, want gap %v phase1 %v", attrs, res.Gap, res.PhaseI)
	}
	if attrs["newton"] != int64(res.Newton) || attrs["status"] != "optimal" {
		t.Fatalf("solve span attrs = %v", attrs)
	}
	// Phase I ran, so a phase-i child span must exist.
	var names []string
	for _, c := range tree[0].Children {
		names = append(names, c.Name)
	}
	if len(names) != 2 || names[0] != "phase-i" || names[1] != "phase-ii" {
		t.Fatalf("solve children = %v, want [phase-i phase-ii]", names)
	}
}
