package solver

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// Status classifies the outcome of a Solve call.
type Status int

const (
	// Optimal means the barrier method converged to the duality-gap
	// tolerance.
	Optimal Status = iota
	// Suboptimal means iteration limits were hit; the returned point is
	// feasible but the gap tolerance was not certified.
	Suboptimal
	// Infeasible means phase I could not find a strictly feasible point.
	Infeasible
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Suboptimal:
		return "suboptimal"
	case Infeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrBadProblem reports a structurally invalid problem (dimension
// mismatches, inconsistent equalities).
var ErrBadProblem = errors.New("solver: invalid problem")

// Problem is a convex program in log-space (see package comment).
type Problem struct {
	N    int   // dimension of y
	Obj  LSE   // objective f0
	Ineq []LSE // constraints fi(y) ≤ 0
	// Optional equality constraints Aeq·y = Beq. Nil Aeq means none.
	Aeq *linalg.Dense
	Beq []float64
}

// Options tunes the interior-point method. Zero values select defaults.
type Options struct {
	// Tol is the target duality gap m/t. Default 1e-8.
	Tol float64
	// NewtonTol is the Newton-decrement^2/2 tolerance per centering step.
	// Default 1e-10.
	NewtonTol float64
	// Mu is the barrier parameter multiplier. Default 20.
	Mu float64
	// T0 is the initial barrier parameter. Default 1.
	T0 float64
	// MaxNewton bounds Newton iterations per centering step. Default 200.
	MaxNewton int
	// MaxCentering bounds outer barrier updates. Default 100.
	MaxCentering int
	// Box bounds every coordinate: |y_i| ≤ Box, added as constraints.
	// This keeps phase I bounded when the feasible set is unbounded.
	// Default 60 (generous for log-space trip counts); negative disables.
	Box float64
	// Obs receives solver telemetry: phase spans, Newton-iteration and
	// line-search-backtrack counters, and Trace-level stall diagnostics.
	// Nil disables all of it at the cost of a few nil checks.
	Obs *obs.Obs
	// Span, when tracing, parents this solve's phase spans (so each GP
	// solve nests under its caller's span). May be nil.
	Span *obs.Span
	// Workspace supplies reusable solve scratch and the equality-
	// elimination cache (see Workspace). Nil uses a fresh workspace per
	// call. Results are identical either way; reuse only changes
	// allocation behavior.
	Workspace *Workspace
	// WarmStart marks the hint as seeded from a neighboring solution.
	// It does not change the algorithm — the hint is honored either way —
	// only the telemetry: warm-started solves report warm_start and
	// phase1_skipped on solve_end events and count into the
	// solver.warmstart.hit / solver.warmstart.miss counters (hit means
	// the hint was already strictly feasible, so phase I was skipped).
	WarmStart bool
}

func (o Options) withDefaults() Options {
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.NewtonTol == 0 {
		o.NewtonTol = 1e-10
	}
	if o.Mu == 0 {
		o.Mu = 20
	}
	if o.T0 == 0 {
		o.T0 = 1
	}
	if o.MaxNewton == 0 {
		o.MaxNewton = 200
	}
	if o.MaxCentering == 0 {
		o.MaxCentering = 100
	}
	if o.Box == 0 {
		o.Box = 60
	}
	return o
}

// Result reports the solution of a Solve call, including the
// convergence telemetry the warm-start work needs: how much of the
// budget went to feasibility search vs. path following, and how tight
// the final certificate is.
type Result struct {
	Y          []float64 // point in the original y space
	Objective  float64   // f0(Y)
	Status     Status
	Newton     int // total Newton iterations
	Centerings int
	// Gap is the final duality gap m/t of the barrier path (0 when the
	// problem had no inequality constraints or was fully determined).
	Gap float64
	// PhaseI reports whether the solve needed a phase-I feasibility
	// search; false means the starting point (origin or warm hint) was
	// already strictly feasible.
	PhaseI bool
}

// Solve minimizes the problem starting from the hint y0 (projected onto
// the equality manifold; pass nil for the origin). The returned point is
// strictly feasible unless Status == Infeasible.
func Solve(p *Problem, yHint []float64, opts Options) (Result, error) {
	opts = opts.withDefaults()
	o := opts.Obs
	span := o.StartSpan(opts.Span, "solve")
	opts.Span = span // parent for the phase spans
	var t0 time.Time
	hist := o.Histogram("solver.solve_duration")
	if hist != nil || o.EventsEnabled() {
		//tlvet:ignore wallclock -- telemetry: solve duration feeds the solver.solve_duration histogram and solve_end event only
		t0 = time.Now()
	}
	res, err := solve(p, yHint, opts)
	if hist != nil {
		//tlvet:ignore wallclock -- telemetry: solve duration feeds the solver.solve_duration histogram only
		hist.Observe(time.Since(t0))
	}
	if o.EventsEnabled() {
		o.Emit(obs.EvSolveEnd, map[string]any{
			"status":     res.Status.String(),
			"newton":     res.Newton,
			"centerings": res.Centerings,
			"objective":  res.Objective,
			"gap":        res.Gap,
			"phase1":     res.PhaseI,
			"warm_start": opts.WarmStart,
			"phase1_skipped": opts.WarmStart &&
				res.Status != Infeasible && !res.PhaseI,
			//tlvet:ignore wallclock -- telemetry: wall_us on solve_end events; never feeds solve results
			"wall_us": time.Since(t0).Microseconds(),
		})
	}
	o.Counter("solver.solves").Inc()
	o.Counter("solver.newton_iters").Add(int64(res.Newton))
	if res.Status == Infeasible {
		o.Counter("solver.infeasible").Inc()
	}
	if opts.WarmStart {
		if res.Status != Infeasible && !res.PhaseI {
			o.Counter("solver.warmstart.hit").Inc()
		} else {
			o.Counter("solver.warmstart.miss").Inc()
		}
	}
	if span != nil {
		span.Annotate(
			obs.Int("newton", res.Newton),
			obs.Int("centerings", res.Centerings),
			obs.String("status", res.Status.String()),
			obs.Float("gap", res.Gap),
			obs.Bool("phase1", res.PhaseI),
		)
		span.End()
	}
	return res, err
}

func solve(p *Problem, yHint []float64, opts Options) (Result, error) {
	if p.N <= 0 {
		return Result{}, fmt.Errorf("%w: N = %d", ErrBadProblem, p.N)
	}
	ws := opts.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}

	// Eliminate equality constraints: y = yPart + Z·z (cached across
	// solves that share the same equality system and box bound).
	if p.Aeq != nil && p.Aeq.Rows > 0 && (p.Aeq.Cols != p.N || len(p.Beq) != p.Aeq.Rows) {
		return Result{}, fmt.Errorf("%w: equality dimensions", ErrBadProblem)
	}
	yPart, zBasis, boxComp, elimErr := ws.eliminate(p, opts.Box)
	if elimErr != nil {
		return Result{Status: Infeasible}, nil
	}
	nz := zBasis.Cols

	// Compose all functions with the affine map. Box constraints on the
	// original coordinates keep every subproblem (notably phase I)
	// bounded; their composed forms come from the elimination cache.
	composeInto(&ws.objScratch, &p.Obj, yPart, zBasis)
	obj := ws.objScratch
	ws.ineqScratch = growLSEs(&ws.ineqScratch, len(p.Ineq))
	ineq := ws.ineqList[:0]
	for i := range p.Ineq {
		composeInto(&ws.ineqScratch[i], &p.Ineq[i], yPart, zBasis)
		ineq = append(ineq, ws.ineqScratch[i])
	}
	ineq = append(ineq, boxComp...)
	ws.ineqList = ineq

	recover := func(z []float64) []float64 {
		y := append([]float64(nil), yPart...)
		tmp := growF(&ws.recTmp, p.N)
		zBasis.MulVec(z, tmp)
		linalg.AXPY(1, tmp, y)
		return y
	}

	if nz == 0 {
		// Fully determined by equalities; just check feasibility.
		z := []float64{}
		for i := range ineq {
			if ineq[i].Value(z) >= 0 {
				return Result{Status: Infeasible}, nil
			}
		}
		y := recover(z)
		return Result{Y: y, Objective: p.Obj.Value(y), Status: Optimal}, nil
	}

	// Initial z: project the hint onto the manifold coordinates.
	z := make([]float64, nz)
	if yHint != nil {
		ws.projectHint(yHint, yPart, zBasis, z)
	}

	totalNewton := 0
	usedPhaseI := false

	// Phase I if the initial point is not strictly feasible.
	if !strictlyFeasible(ineq, z, 1e-9) {
		usedPhaseI = true
		ph := opts.Obs.StartSpan(opts.Span, "phase-i")
		opts.Obs.Counter("solver.phase1_runs").Inc()
		var ok bool
		var n int
		z, ok, n = phaseI(ws, ineq, z, opts)
		totalNewton += n
		if ph != nil {
			ph.Annotate(obs.Int("newton", n), obs.Attr{Key: "feasible", Value: ok})
			ph.End()
		}
		if !ok {
			return Result{Status: Infeasible, Newton: totalNewton, PhaseI: true}, nil
		}
	}

	// Phase II: barrier path following.
	ph2 := opts.Obs.StartSpan(opts.Span, "phase-ii")
	ph2Newton := totalNewton
	m := len(ineq)
	t := opts.T0
	centerings := 0
	status := Optimal
	finalGap := 0.0
	emit := opts.Obs.EventsEnabled()
	if m == 0 {
		// Unconstrained: single Newton minimization of the objective.
		n, _, converged := newtonMinimize(ws, &obj, nil, 1, z, opts, nil)
		totalNewton += n
		if !converged {
			status = Suboptimal
		}
	} else {
		for centerings < opts.MaxCentering {
			n, bt, converged := newtonMinimize(ws, &obj, ineq, t, z, opts, nil)
			totalNewton += n
			centerings++
			if !converged {
				status = Suboptimal
			}
			gap := float64(m) / t
			finalGap = gap
			if emit {
				opts.Obs.Emit(obs.EvCentering, map[string]any{
					"step":       centerings,
					"t":          t,
					"gap":        gap,
					"newton":     n,
					"backtracks": bt,
					"converged":  converged,
				})
			}
			if gap < opts.Tol {
				break
			}
			t *= opts.Mu
		}
		if float64(m)/t >= opts.Tol {
			status = Suboptimal
		}
	}
	if ph2 != nil {
		ph2.Annotate(obs.Int("newton", totalNewton-ph2Newton), obs.Int("centerings", centerings))
		ph2.End()
	}

	y := recover(z)
	return Result{
		Y:          y,
		Objective:  p.Obj.Value(y),
		Status:     status,
		Newton:     totalNewton,
		Centerings: centerings,
		Gap:        finalGap,
		PhaseI:     usedPhaseI,
	}, nil
}

// boxConstraints returns the 2n constraints |y_i| ≤ box.
func boxConstraints(n int, box float64) []LSE {
	out := make([]LSE, 0, 2*n)
	for i := 0; i < n; i++ {
		hi := make([]float64, n)
		hi[i] = 1
		out = append(out, Linear(hi, -box))
		lo := make([]float64, n)
		lo[i] = -1
		out = append(out, Linear(lo, -box))
	}
	return out
}

func identity(n int) *linalg.Dense {
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// projectHint solves min ||yPart + Z z − yHint||² for z. The Gram
// matrix ZᵀZ depends only on the nullspace basis, so it is cached with
// the equality elimination and rebuilt only when the basis changes.
func (ws *Workspace) projectHint(yHint, yPart []float64, zb *linalg.Dense, z []float64) {
	n, nz := zb.Rows, zb.Cols
	d := growF(&ws.hintD, n)
	for i := 0; i < n; i++ {
		d[i] = yHint[i] - yPart[i]
	}
	rhs := growF(&ws.hintRhs, nz)
	zb.MulTransVec(d, rhs)
	if !ws.ztzValid || ws.ztz == nil || ws.ztz.Rows != nz {
		ztz := growDense(&ws.ztz, nz, nz)
		for i := 0; i < nz; i++ {
			for j := 0; j < nz; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += zb.At(k, i) * zb.At(k, j)
				}
				ztz.Set(i, j, s)
			}
		}
		ws.ztzValid = true
	}
	sol := growF(&ws.hintSol, nz)
	if err := ws.Lin.SolveSPDTo(sol, ws.ztz, rhs); err == nil {
		copy(z, sol)
	}
}

func strictlyFeasible(ineq []LSE, z []float64, margin float64) bool {
	for i := range ineq {
		if ineq[i].Value(z) > -margin {
			return false
		}
	}
	return true
}

// phaseI finds a strictly feasible point by minimizing s subject to
// fi(z) ≤ s over the extended variable (z, s), stopping as soon as
// s < 0 at a centered point. Returns the feasible z and success.
func phaseI(ws *Workspace, ineq []LSE, z0 []float64, opts Options) ([]float64, bool, int) {
	nz := len(z0)
	dim := nz + 1
	// Extended constraints fi(z) − s ≤ 0 plus a floor s ≥ −1
	// (−s − 1 ≤ 0) to keep the problem bounded.
	ws.extScratch = growLSEs(&ws.extScratch, len(ineq)+1)
	ext := ws.extList[:0]
	for i := range ineq {
		extendInto(&ws.extScratch[i], &ineq[i], dim, -1)
		ext = append(ext, ws.extScratch[i])
	}
	fl := &ws.extScratch[len(ineq)]
	floor := growF(&ws.hintD, dim) // hintD is free during phase I
	for i := range floor {
		floor[i] = 0
	}
	floor[dim-1] = -1
	linearInto(fl, floor, -1)
	ext = append(ext, *fl)
	ws.extList = ext

	// Objective: minimize s.
	objA := floor // reuse: only the last coordinate differs
	objA[dim-1] = 1
	obj := ws.phObjLSE
	linearInto(&obj, objA, 0)
	ws.phObjLSE = obj

	// Strictly feasible start: s = max fi(z0) + 1.
	x := growF(&ws.phX, dim)
	copy(x, z0)
	maxF := math.Inf(-1)
	for i := range ineq {
		if v := ineq[i].Value(z0); v > maxF {
			maxF = v
		}
	}
	x[dim-1] = maxF + 1

	total := 0
	t := opts.T0
	// Stop a centering step as soon as the slack is clearly negative and
	// the underlying point is strictly feasible.
	stop := func(x []float64) bool {
		return x[dim-1] < -1e-6 && strictlyFeasible(ineq, x[:nz], 0)
	}
	for c := 0; c < opts.MaxCentering; c++ {
		n, _, _ := newtonMinimize(ws, &obj, ext, t, x, opts, stop)
		total += n
		if x[dim-1] < -1e-7 {
			out := append([]float64(nil), x[:nz]...)
			if strictlyFeasible(ineq, out, 0) {
				return out, true, total
			}
		}
		if float64(len(ext))/t < opts.Tol {
			break
		}
		t *= opts.Mu
	}
	out := append([]float64(nil), x[:nz]...)
	return out, strictlyFeasible(ineq, out, 0), total
}

// newtonMinimize minimizes t·f0(z) − Σ log(−fi(z)) over z in place,
// returning the Newton iteration count, the line-search backtrack
// count, and whether the decrement tolerance was reached. f0 may be
// nil-adjacent only via ineq==nil unconstrained mode (then the barrier
// term is absent).
func newtonMinimize(ws *Workspace, f0 *LSE, ineq []LSE, t float64, z []float64, opts Options, stop func([]float64) bool) (iters, bt int, converged bool) {
	n := len(z)
	log := opts.Obs.Logger()
	backtracks := opts.Obs.Counter("solver.linesearch_backtracks")
	g := growF(&ws.g, n)
	h := growDense(&ws.h, n, n)
	gTmp := growF(&ws.gTmp, n)
	hTmp := growDense(&ws.hTmp, n, n)

	// evalLSE routes multi-term evaluations through workspace scratch so
	// the inner loop stays allocation-free (the single-term fast path
	// inside Eval never needed scratch).
	evalLSE := func(f *LSE, y []float64, g []float64, h *linalg.Dense) float64 {
		k := len(f.B)
		if k == 1 {
			return f.Eval(y, g, h)
		}
		return f.evalScratch(y, g, h, growF(&ws.evalU, k), growF(&ws.evalP, k))
	}

	eval := func(z []float64, needDeriv bool) (float64, bool) {
		var val float64
		if needDeriv {
			val = t * evalLSE(f0, z, g, h)
			linalg.Scale(t, g)
			for i := range h.Data {
				h.Data[i] *= t
			}
		} else {
			val = t * f0.Value(z)
		}
		for i := range ineq {
			// Affine constraints (single-term LSEs: box walls, trip lower
			// bounds — the bulk of every GP here) have an exactly-zero
			// Hessian, so skip both its evaluation and its accumulation;
			// only the rank-1 barrier curvature inv²·g·gᵀ remains.
			affine := ineq[i].Terms() == 1
			var fi float64
			if needDeriv {
				if affine {
					fi = ineq[i].Eval(z, gTmp, nil)
				} else {
					fi = evalLSE(&ineq[i], z, gTmp, hTmp)
				}
			} else {
				fi = ineq[i].Value(z)
			}
			if fi >= 0 {
				if needDeriv && log.Enabled(obs.Trace) {
					log.Tracef("solver: constraint %d value %g at newton entry", i, fi)
				}
				return math.Inf(1), false
			}
			val -= math.Log(-fi)
			if needDeriv {
				inv := -1.0 / fi // positive
				linalg.AXPY(inv, gTmp, g)
				inv2 := inv * inv
				if affine {
					for r := 0; r < n; r++ {
						gr := gTmp[r]
						for c := 0; c <= r; c++ {
							v := inv2 * gr * gTmp[c]
							h.Add(r, c, v)
							if c != r {
								h.Add(c, r, v)
							}
						}
					}
					continue
				}
				for r := 0; r < n; r++ {
					gr := gTmp[r]
					for c := 0; c <= r; c++ {
						v := inv2*gr*gTmp[c] + inv*hTmp.At(r, c)
						h.Add(r, c, v)
						if c != r {
							h.Add(c, r, v)
						}
					}
				}
			}
		}
		return val, true
	}

	zTrial := growF(&ws.zTrial, n)
	negG := growF(&ws.negG, n)
	dir := growF(&ws.dir, n)
	for it := 0; it < opts.MaxNewton; it++ {
		val, ok := eval(z, true)
		if !ok {
			if log.Enabled(obs.Trace) {
				log.Tracef("solver: eval infeasible at start of newton iter %d (t=%g)", it, t)
			}
			return it, bt, false // should not happen from a feasible start
		}
		for i := range g {
			negG[i] = -g[i]
		}
		d := dir
		if err := ws.Lin.SolveSPDTo(d, h, negG); err != nil {
			// Fall back to steepest descent.
			d = negG
		}
		lambda2 := -linalg.Dot(g, d)
		if lambda2 <= 0 {
			// Not a descent direction (numerical trouble): use gradient.
			d = negG
			lambda2 = linalg.Dot(g, g)
		}
		if lambda2/2 <= opts.NewtonTol {
			return it + 1, bt, true
		}
		// Backtracking line search (Armijo, alpha=0.25, beta=0.5), with
		// implicit feasibility filtering via +Inf values.
		step := 1.0
		improved := false
		for ls := 0; ls < 60; ls++ {
			copy(zTrial, z)
			linalg.AXPY(step, d, zTrial)
			if tv, tok := eval(zTrial, false); tok && tv <= val-0.25*step*lambda2 {
				copy(z, zTrial)
				improved = true
				bt += ls
				backtracks.Add(int64(ls))
				break
			}
			step *= 0.5
		}
		if !improved {
			bt += 60
			backtracks.Add(60)
			// No progress possible at machine precision.
			if log.Enabled(obs.Trace) {
				log.Tracef("solver: line search stalled at iter %d t=%g val=%g lambda2=%g", it, t, val, lambda2)
			}
			return it + 1, bt, true
		}
		if stop != nil && stop(z) {
			return it + 1, bt, true
		}
	}
	return opts.MaxNewton, bt, false
}
