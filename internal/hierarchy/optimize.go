package hierarchy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/gp"
	"repro/internal/loopnest"
	"repro/internal/mapper"
	"repro/internal/solver"
)

// OptimizeOptions tunes OptimizeEnergy.
type OptimizeOptions struct {
	// NDiv is the divisor-ladder width per tile variable (default 2).
	NDiv int
	// TopClasses is how many best class combinations are integerized
	// (default 3).
	TopClasses int
	// MaxCombos caps the permutation-class cross product (default 4096).
	MaxCombos int
	// MaxEvals caps integer-candidate evaluations per combination
	// (default 1<<18).
	MaxEvals int
	// Solver tunes the interior-point backend.
	Solver solver.Options
}

func (o OptimizeOptions) withDefaults() OptimizeOptions {
	if o.NDiv == 0 {
		o.NDiv = 2
	}
	if o.TopClasses == 0 {
		o.TopClasses = 3
	}
	if o.MaxCombos == 0 {
		o.MaxCombos = 4096
	}
	if o.MaxEvals == 0 {
		o.MaxEvals = 1 << 18
	}
	if o.Solver.Tol == 0 {
		o.Solver.Tol = 1e-6
	}
	return o
}

// Design is an optimized deep-hierarchy design point.
type Design struct {
	Trips       [][]int64
	Perms       [][]int
	Report      *Report
	GPObjective float64
	// Combos counts the permutation-class combinations solved.
	Combos int
}

// OptimizeEnergy minimizes energy for a problem on a fixed deep
// hierarchy: one geometric program per combination of permutation
// classes across all copy levels, then divisor-ladder integerization
// validated by Evaluate.
func OptimizeEnergy(p *loopnest.Problem, c *Config, opts OptimizeOptions) (*Design, error) {
	opts = opts.withDefaults()
	nest, err := BuildNest(p, c)
	if err != nil {
		return nil, err
	}
	copyLevels := CopyLevels(nest)
	syms := dataflow.SymmetricInvolutions(p)

	// Permutation classes per copy level, then their cross product.
	classes := make([][]dataflow.PermClass, len(copyLevels))
	combos := 1
	for i, li := range copyLevels {
		cs, err := nest.EnumerateClasses(li, syms)
		if err != nil {
			return nil, err
		}
		classes[i] = cs
		combos *= len(cs)
	}
	if combos > opts.MaxCombos {
		return nil, fmt.Errorf("hierarchy: %d permutation-class combinations exceed the %d cap", combos, opts.MaxCombos)
	}

	type solved struct {
		perms     [][]int
		x         []float64
		objective float64
	}
	var sols []solved
	choice := make([]int, len(copyLevels))
	for {
		perms := make([][]int, len(nest.Levels))
		for i, li := range copyLevels {
			perms[li] = classes[i][choice[i]].Perm
		}
		f, err := buildDeepGP(nest, perms, c)
		if err != nil {
			return nil, err
		}
		res, err := f.Solve(hintFor(nest), opts.Solver)
		if err != nil {
			return nil, err
		}
		if res.Status != solver.Infeasible {
			sols = append(sols, solved{perms: perms, x: res.X, objective: res.Objective})
		}
		// Odometer.
		k := 0
		for k < len(choice) {
			choice[k]++
			if choice[k] < len(classes[k]) {
				break
			}
			choice[k] = 0
			k++
		}
		if k == len(choice) {
			break
		}
	}
	if len(sols) == 0 {
		return nil, fmt.Errorf("hierarchy: all %d class combinations infeasible", combos)
	}
	sort.Slice(sols, func(i, j int) bool { return sols[i].objective < sols[j].objective })
	top := opts.TopClasses
	if top > len(sols) {
		top = len(sols)
	}

	var best *Design
	for _, s := range sols[:top] {
		trips, rep := integerizeDeep(nest, c, s.perms, s.x, opts)
		if rep == nil {
			continue
		}
		if best == nil || rep.Energy < best.Report.Energy {
			best = &Design{
				Trips: trips, Perms: s.perms, Report: rep,
				GPObjective: s.objective, Combos: combos,
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("hierarchy: no integer candidate satisfied the constraints")
	}
	best.Combos = combos
	return best, nil
}

// buildDeepGP assembles the energy GP for the deep nest (the Eq. 3
// pattern generalized over N boundaries).
func buildDeepGP(nest *dataflow.Nest, perms [][]int, c *Config) (*gp.Program, error) {
	vols, err := nest.ComputeVolumes(perms)
	if err != nil {
		return nil, err
	}
	folded := vols.Folded()
	prog := gp.New(nest.Vars)
	ops := float64(nest.Prob.Ops())

	obj := expr.PolyConst((4*c.Buffers[0].Energy + c.MACEnergy) * ops)
	for b := range c.Buffers {
		traffic := folded.SumTraffic(b, true)
		obj = obj.Add(traffic.Scale(c.Buffers[b].Energy + c.outerEnergy(b)))
	}
	if err := prog.SetObjective(obj); err != nil {
		return nil, err
	}
	for b := range c.Buffers {
		foot := folded.SumFootprint(b, true)
		name := fmt.Sprintf("cap:%s", c.Buffers[b].Name)
		if err := prog.AddLessEq(name, foot, expr.Const(float64(c.Buffers[b].Words))); err != nil {
			return nil, err
		}
	}
	peProd := expr.Const(1)
	for _, pv := range nest.SpatialTripVars() {
		peProd = peProd.Mul(expr.MonoPow(1, pv, 1))
	}
	if err := prog.AddLessEq("cap:pes", expr.PolyFrom(peProd), expr.Const(float64(c.PEs))); err != nil {
		return nil, err
	}
	for _, eq := range nest.DimEqualities() {
		lhs := expr.Const(1)
		for _, v := range eq.Vars {
			lhs = lhs.Mul(expr.MonoPow(1, v, 1))
		}
		if err := prog.AddMonoEq("extent", lhs, expr.Const(float64(eq.Extent))); err != nil {
			return nil, err
		}
	}
	pinned := map[expr.VarID]bool{}
	for _, pin := range nest.Pins {
		pinned[pin.Var] = true
		if err := prog.AddMonoEq("pin", expr.MonoPow(1, pin.Var, 1), expr.Const(pin.Value)); err != nil {
			return nil, err
		}
	}
	for it := range nest.Prob.Iters {
		for _, v := range nest.DimTripVars(it) {
			if pinned[v] {
				continue
			}
			if err := prog.AddLowerBound("trip>=1", v, 1); err != nil {
				return nil, err
			}
		}
	}
	return prog, nil
}

func hintFor(nest *dataflow.Nest) []float64 {
	x := make([]float64, nest.Vars.Len())
	for i := range x {
		x[i] = 1
	}
	for it, iter := range nest.Prob.Iters {
		vars := nest.DimTripVars(it)
		if len(vars) == 0 {
			continue
		}
		per := math.Pow(float64(iter.Extent), 1/float64(len(vars)))
		for _, v := range vars {
			x[v] = per
		}
	}
	for _, pin := range nest.Pins {
		x[pin.Var] = pin.Value
	}
	return x
}

// integerizeDeep converts the relaxed solution to integer trips via a
// generalized divisor ladder (outermost cumulative tile inward), streams
// the cross product through Evaluate, and returns the best valid design.
func integerizeDeep(nest *dataflow.Nest, c *Config, perms [][]int, x []float64, opts OptimizeOptions) ([][]int64, *Report) {
	type dimChoice struct {
		iter   int
		levels []int     // nest levels with free trips, inner to outer
		trips  [][]int64 // candidate trip vectors (parallel to levels)
	}
	var dims []dimChoice
	for it := range nest.Prob.Iters {
		var levels []int
		pinnedLevels := map[int]bool{}
		for _, pin := range nest.Pins {
			if nest.IterOfVar(pin.Var) == it {
				for li := range nest.Levels {
					if nest.Levels[li].Trips[it] == pin.Var {
						pinnedLevels[li] = true
					}
				}
			}
		}
		for li := range nest.Levels {
			if nest.Levels[li].Trips[it] != expr.NoVar && !pinnedLevels[li] {
				levels = append(levels, li)
			}
		}
		if len(levels) < 2 {
			continue
		}
		// Real cumulative tiles, inner to outer (excluding the outermost
		// level, whose trip is determined by the extent).
		real := make([]float64, len(levels))
		prod := 1.0
		for i, li := range levels {
			prod *= x[nest.Levels[li].Trips[it]]
			real[i] = prod
		}
		cands := ladder(nest.Prob.Iters[it].Extent, real[:len(real)-1], opts.NDiv)
		dims = append(dims, dimChoice{iter: it, levels: levels, trips: cands})
	}

	base := make([][]int64, len(nest.Levels))
	for li := range base {
		base[li] = make([]int64, len(nest.Prob.Iters))
		for i := range base[li] {
			base[li][i] = 1
		}
	}
	for _, pin := range nest.Pins {
		it := nest.IterOfVar(pin.Var)
		for li := range nest.Levels {
			if nest.Levels[li].Trips[it] == pin.Var {
				base[li][it] = int64(pin.Value)
			}
		}
	}

	var bestTrips [][]int64
	var bestRep *Report
	evals := 0
	idx := make([]int, len(dims))
	for {
		trips := make([][]int64, len(base))
		for li := range base {
			trips[li] = append([]int64(nil), base[li]...)
		}
		for di, d := range dims {
			f := d.trips[idx[di]]
			for i, li := range d.levels {
				trips[li][d.iter] = f[i]
			}
		}
		rep, err := Evaluate(c, nest, trips, perms)
		evals++
		if err == nil && rep.Valid() {
			if bestRep == nil || rep.Energy < bestRep.Energy {
				bestTrips, bestRep = trips, rep
			}
		}
		if evals >= opts.MaxEvals {
			break
		}
		k := 0
		for k < len(dims) {
			idx[k]++
			if idx[k] < len(dims[k].trips) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == len(dims) {
			break
		}
	}
	return bestTrips, bestRep
}

// ladder generates candidate trip vectors for one iterator: cumulative
// tile sizes are chosen from divisors (outermost inward, each dividing
// the previous), n nearest to the relaxed cumulative tiles; the returned
// vectors hold the per-level trips.
func ladder(extent int64, realCum []float64, n int) [][]int64 {
	var out [][]int64
	var rec func(pos int, remaining int64, chosen []int64)
	rec = func(pos int, remaining int64, chosen []int64) {
		if pos < 0 {
			trips := make([]int64, len(realCum)+1)
			prev := int64(1)
			for i, cum := range chosen {
				trips[i] = cum / prev
				prev = cum
			}
			trips[len(realCum)] = extent / prev
			out = append(out, trips)
			return
		}
		// Choose the cumulative tile at position pos (inner to outer):
		// must divide the next-outer cumulative tile (remaining).
		for _, d := range nearestDivisors(remaining, realCum[pos], n) {
			chosen[pos] = d
			rec(pos-1, d, chosen)
		}
	}
	if len(realCum) == 0 {
		return [][]int64{{extent}}
	}
	rec(len(realCum)-1, extent, make([]int64, len(realCum)))
	// Deduplicate.
	seen := map[string]bool{}
	ded := out[:0]
	for _, t := range out {
		key := fmt.Sprint(t)
		if !seen[key] {
			seen[key] = true
			ded = append(ded, t)
		}
	}
	return ded
}

func nearestDivisors(n int64, target float64, k int) []int64 {
	ds := mapper.Divisors(n)
	if target < 1 {
		target = 1
	}
	sort.Slice(ds, func(i, j int) bool {
		di := math.Abs(math.Log(float64(ds[i])) - math.Log(target))
		dj := math.Abs(math.Log(float64(ds[j])) - math.Log(target))
		if di != dj {
			return di < dj
		}
		return ds[i] < ds[j]
	})
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}
