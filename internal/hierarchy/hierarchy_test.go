package hierarchy

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// eyerissAsHierarchy expresses the paper's three-level memory in the
// generic form: registers (per-PE) + shared SRAM.
func eyerissAsHierarchy() *Config {
	e := arch.Eyeriss()
	return &Config{
		Buffers: []BufferSpec{
			{Name: "registers", Words: e.Regs, Energy: e.RegEnergy(), BW: e.Tech.BWReg},
			{Name: "sram", Words: e.SRAM, Energy: e.SRAMEnergy(), BW: e.Tech.BWSRAM},
		},
		SpatialAfter: 0,
		PEs:          e.PEs,
		DRAMEnergy:   e.Tech.EnergyDRAM,
		DRAMBW:       e.Tech.BWDRAM,
		MACEnergy:    e.Tech.EnergyMAC,
	}
}

// deep3 is a four-level memory: registers, per-PE scratchpad, shared
// SRAM, DRAM.
func deep3() *Config {
	e := arch.Eyeriss()
	return &Config{
		Buffers: []BufferSpec{
			{Name: "registers", Words: 32, Energy: 0.29, BW: 4},
			{Name: "spad", Words: 2048, Energy: 0.8, BW: 8},
			{Name: "sram", Words: 65536, Energy: e.SRAMEnergy(), BW: 80},
		},
		SpatialAfter: 1, // registers and spad are per-PE
		PEs:          256,
		DRAMEnergy:   e.Tech.EnergyDRAM,
		DRAMBW:       e.Tech.BWDRAM,
		MACEnergy:    e.Tech.EnergyMAC,
	}
}

// TestTwoLevelMatchesStandardModel: the generic evaluator on a 2-buffer
// hierarchy must agree exactly with the paper-specific model package.
func TestTwoLevelMatchesStandardModel(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	cfg := eyerissAsHierarchy()
	nest, err := BuildNest(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	copyLevels := CopyLevels(nest)
	if len(copyLevels) != 2 {
		t.Fatalf("copy levels = %v, want 2", copyLevels)
	}
	trips := [][]int64{
		{4, 4, 4},
		{2, 2, 4},
		{2, 2, 1},
		{4, 4, 4},
	}
	perms := make([][]int, len(nest.Levels))
	perms[copyLevels[0]] = []int{0, 1, 2}
	perms[copyLevels[1]] = []int{0, 2, 1}
	rep, err := Evaluate(cfg, nest, trips, perms)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the standard model on the same mapping.
	stdNest, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev := model.NewEvaluator(stdNest)
	a := arch.Eyeriss()
	ref, err := ev.Evaluate(&a, &model.Mapping{
		Perms: dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}),
		Trips: trips,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Energy-ref.Energy) > 1e-6*ref.Energy {
		t.Fatalf("energy %.6g != standard model %.6g", rep.Energy, ref.Energy)
	}
	if math.Abs(rep.Cycles-ref.Cycles) > 1e-9*ref.Cycles {
		t.Fatalf("cycles %.6g != standard model %.6g", rep.Cycles, ref.Cycles)
	}
	if rep.Traffic[0] != ref.TrafficSR || rep.Traffic[1] != ref.TrafficDS {
		t.Fatalf("traffic mismatch: %v vs %v/%v", rep.Traffic, ref.TrafficSR, ref.TrafficDS)
	}
	if rep.PEsUsed != ref.PEsUsed {
		t.Fatalf("PEs %d != %d", rep.PEsUsed, ref.PEsUsed)
	}
}

// TestThreeLevelNestStructure: a 3-buffer hierarchy builds a 5-level nest
// with 3 boundaries, and the spatial level sits above the per-PE spad.
func TestThreeLevelNestStructure(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	cfg := deep3()
	nest, err := BuildNest(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(nest.Levels) != 6 { // t0, c0, c1, pe, c2 → 5? plus spatial = 6 with 3 copies
		// levels: t0, c0, c1, pe, c2 — that's 5.
		if len(nest.Levels) != 5 {
			t.Fatalf("levels = %d", len(nest.Levels))
		}
	}
	cl := CopyLevels(nest)
	if len(cl) != 3 {
		t.Fatalf("copy levels = %v, want 3", cl)
	}
	spatial := -1
	for li := range nest.Levels {
		if nest.Levels[li].Kind == dataflow.Spatial {
			spatial = li
		}
	}
	if spatial < cl[1] || spatial > cl[2] {
		t.Fatalf("spatial level %d not between copy levels %v", spatial, cl)
	}
}

// TestDeepEvaluateConservation: traffic through an intermediate buffer
// can never be less than the traffic of the boundary above it divided by
// reuse — but at minimum, inner boundaries carry at least the compulsory
// words that ultimately reach the MACs. Check basic sanity: all traffics
// positive, footprints within capacities for a small valid mapping, and
// the energy exceeds the compute floor.
func TestDeepEvaluateConservation(t *testing.T) {
	p := loopnest.MatMul(32, 32, 32)
	cfg := deep3()
	nest, err := BuildNest(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := CopyLevels(nest)
	// trips: t0=2, c0=2, c1=2, pe=2, c2=2 → product 32 per dim.
	trips := make([][]int64, len(nest.Levels))
	for li := range trips {
		trips[li] = []int64{2, 2, 2}
	}
	perms := make([][]int, len(nest.Levels))
	for _, li := range cl {
		perms[li] = []int{0, 1, 2}
	}
	rep, err := Evaluate(cfg, nest, trips, perms)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	floor := (4*cfg.Buffers[0].Energy + cfg.MACEnergy) * float64(rep.Ops)
	if rep.Energy <= floor {
		t.Fatalf("energy %v below compute floor %v", rep.Energy, floor)
	}
	for b, tr := range rep.Traffic {
		if tr <= 0 {
			t.Fatalf("boundary %d traffic %v", b, tr)
		}
	}
	if rep.PEsUsed != 8 {
		t.Fatalf("PEsUsed = %d, want 8", rep.PEsUsed)
	}
}

// TestOptimizeEnergyDeep: end-to-end GP optimization on the 4-level
// memory. The optimized design must beat a naive all-at-top mapping and
// respect every capacity.
func TestOptimizeEnergyDeep(t *testing.T) {
	p := loopnest.MatMul(128, 128, 128)
	cfg := deep3()
	d, err := OptimizeEnergy(p, cfg, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Report.Valid() {
		t.Fatalf("violations: %v", d.Report.Violations)
	}
	t.Logf("deep design: %.3f pJ/MAC over %d class combos (GP bound %.3f)",
		d.Report.EnergyPerMAC, d.Combos, d.GPObjective/float64(p.Ops()))

	// Naive reference: everything sequential at the outermost level.
	nest, err := BuildNest(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := CopyLevels(nest)
	naive := make([][]int64, len(nest.Levels))
	for li := range naive {
		naive[li] = []int64{1, 1, 1}
	}
	naive[cl[len(cl)-1]] = []int64{128, 128, 128}
	perms := make([][]int, len(nest.Levels))
	for _, li := range cl {
		perms[li] = []int{0, 1, 2}
	}
	ref, err := Evaluate(cfg, nest, naive, perms)
	if err != nil {
		t.Fatal(err)
	}
	if d.Report.Energy >= ref.Energy {
		t.Fatalf("optimized %.4g not below naive %.4g", d.Report.Energy, ref.Energy)
	}
	// The GP bound should not exceed the achieved energy by much (it is a
	// relaxation of a superset of integer points).
	if d.Report.Energy < d.GPObjective*0.97 {
		t.Fatalf("integer energy %.4g below GP bound %.4g", d.Report.Energy, d.GPObjective)
	}
}

// TestOptimizeEnergyDeepConv: the deep optimizer also handles the
// 7-loop convolution with pinned kernel loops.
func TestOptimizeEnergyDeepConv(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "deepconv", N: 1, K: 32, C: 16, H: 14, W: 14, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := deep3()
	cfg.Buffers[0].Words = 64 // room for the 3×3 window
	d, err := OptimizeEnergy(p, cfg, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Report.Valid() {
		t.Fatalf("violations: %v", d.Report.Violations)
	}
	t.Logf("deep conv design: %.3f pJ/MAC", d.Report.EnergyPerMAC)
}

func TestConfigValidation(t *testing.T) {
	bad := []*Config{
		{},
		{Buffers: []BufferSpec{{Name: "r", Words: 1, BW: 1}}, SpatialAfter: 5, PEs: 1, DRAMBW: 1},
		{Buffers: []BufferSpec{{Name: "r", Words: 0, BW: 1}}, PEs: 1, DRAMBW: 1},
		{Buffers: []BufferSpec{{Name: "r", Words: 1, BW: 1}}, PEs: 0, DRAMBW: 1},
		{Buffers: []BufferSpec{{Name: "r", Words: 1, BW: 1}}, PEs: 1, DRAMBW: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
	if err := eyerissAsHierarchy().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLadder(t *testing.T) {
	// One intermediate cumulative tile: extent 8, target 4 → candidates
	// {4, 2} (n=2), trips (inner, outer) = (4, 2) and (2, 4).
	got := ladder(8, []float64{4}, 2)
	if len(got) != 2 {
		t.Fatalf("ladder = %v", got)
	}
	for _, trip := range got {
		prod := int64(1)
		for _, v := range trip {
			prod *= v
		}
		if prod != 8 {
			t.Fatalf("trips %v do not multiply to 8", trip)
		}
	}
	// Degenerate: no intermediate levels.
	if got := ladder(6, nil, 2); len(got) != 1 || got[0][0] != 6 {
		t.Fatalf("trivial ladder = %v", got)
	}
}
