// Package hierarchy exercises the generality the paper claims for
// Algorithm 1 — "an arbitrary number of tiling levels and arbitrary
// permutations at each level" — end to end: it models accelerators with
// N on-chip buffer levels (e.g. DRAM → shared SRAM → per-PE scratchpad →
// registers), evaluates concrete mappings exactly, and optimizes the
// dataflow with one geometric program per combination of per-level
// permutation classes.
//
// The three-level memory of the paper's evaluation remains the job of
// internal/core (which also implements co-design and the Eyeriss
// studies); this package is the depth-generic engine used to validate
// that nothing in the formulation is specific to two copy boundaries.
package hierarchy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataflow"
	"repro/internal/loopnest"
)

// ErrBadConfig reports an invalid hierarchy description.
var ErrBadConfig = errors.New("hierarchy: invalid config")

// BufferSpec describes one on-chip buffer level.
type BufferSpec struct {
	Name   string
	Words  int64   // capacity in words (per instance)
	Energy float64 // pJ per word access
	BW     float64 // words per cycle (per instance)
}

// Config is an N-level memory hierarchy, innermost buffer first
// (Buffers[0] plays the register role: MAC operands are read from it).
// DRAM sits implicitly above the outermost buffer. Buffers with index
// ≤ SpatialAfter are private to each PE; the PE grid sits between
// buffer SpatialAfter and the next one out.
type Config struct {
	Buffers      []BufferSpec
	SpatialAfter int
	PEs          int64
	DRAMEnergy   float64 // pJ per word
	DRAMBW       float64 // words per cycle
	MACEnergy    float64 // pJ per MAC
}

// Validate checks structural sanity.
func (c *Config) Validate() error {
	if len(c.Buffers) < 1 {
		return fmt.Errorf("%w: need at least one buffer level", ErrBadConfig)
	}
	if c.SpatialAfter < 0 || c.SpatialAfter >= len(c.Buffers) {
		return fmt.Errorf("%w: SpatialAfter %d out of range", ErrBadConfig, c.SpatialAfter)
	}
	if c.PEs < 1 {
		return fmt.Errorf("%w: PEs = %d", ErrBadConfig, c.PEs)
	}
	for _, b := range c.Buffers {
		if b.Words < 1 || b.Energy < 0 || b.BW <= 0 {
			return fmt.Errorf("%w: buffer %s", ErrBadConfig, b.Name)
		}
	}
	if c.DRAMBW <= 0 || c.DRAMEnergy < 0 {
		return fmt.Errorf("%w: DRAM parameters", ErrBadConfig)
	}
	return nil
}

// outerEnergy returns the per-word access energy of the memory feeding
// boundary b (the next level out, or DRAM beyond the last buffer).
func (c *Config) outerEnergy(b int) float64 {
	if b+1 < len(c.Buffers) {
		return c.Buffers[b+1].Energy
	}
	return c.DRAMEnergy
}

// BuildNest constructs the tiling nest for a problem on the hierarchy:
// one innermost level for the buffer-0 tile, one temporal copy level per
// buffer, and a spatial level between the per-PE and shared portions.
// Untiled kernel loops (r/s) are pinned at the innermost level, as in
// the standard nest.
func BuildNest(p *loopnest.Problem, c *Config) (*dataflow.Nest, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var tiled, untiled []int
	for i, it := range p.Iters {
		if it.Extent == 1 {
			continue
		}
		if it.Name == "r" || it.Name == "s" {
			untiled = append(untiled, i)
		} else {
			tiled = append(tiled, i)
		}
	}
	l0Active := append(append([]int(nil), tiled...), untiled...)
	l0Fixed := map[int]int64{}
	for _, it := range untiled {
		l0Fixed[it] = p.Iters[it].Extent
	}
	cfgs := []dataflow.LevelConfig{{
		Name: "t0", Kind: dataflow.Temporal, Active: l0Active, Fixed: l0Fixed,
	}}
	for b := range c.Buffers {
		cfgs = append(cfgs, dataflow.LevelConfig{
			Name:   fmt.Sprintf("c%d", b),
			Kind:   dataflow.Temporal,
			Copy:   true,
			Active: append([]int(nil), tiled...),
		})
		if b == c.SpatialAfter {
			cfgs = append(cfgs, dataflow.LevelConfig{
				Name:   "pe",
				Kind:   dataflow.Spatial,
				Active: append([]int(nil), tiled...),
			})
		}
	}
	return dataflow.NewNest(p, cfgs)
}

// CopyLevels returns the nest level index of each copy level, innermost
// boundary first.
func CopyLevels(n *dataflow.Nest) []int {
	var out []int
	for li := range n.Levels {
		if n.Levels[li].Kind == dataflow.Temporal && n.Levels[li].Copy {
			out = append(out, li)
		}
	}
	return out
}

// Report is the evaluation result of a mapping on a hierarchy.
type Report struct {
	Ops          int64
	Energy       float64
	EnergyPerMAC float64
	Cycles       float64
	IPC          float64
	PEsUsed      int64
	// Traffic[b] is the word volume across boundary b (buffer b ↔ the
	// memory above it), read-write tensors doubled.
	Traffic []float64
	// Footprint[b] is the exact buffer-b requirement.
	Footprint  []float64
	Violations []string
}

// Valid reports whether all capacity constraints held.
func (r *Report) Valid() bool { return len(r.Violations) == 0 }

// Evaluate computes the exact report of a mapping (per-level trips and
// copy-level permutations as in model.Mapping) on the hierarchy.
func Evaluate(c *Config, n *dataflow.Nest, trips [][]int64, perms [][]int) (*Report, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := n.CheckTrips(trips); err != nil {
		return nil, err
	}
	v, err := n.ComputeVolumes(perms)
	if err != nil {
		return nil, err
	}
	nb := len(c.Buffers)
	if len(v.Boundaries) != nb {
		return nil, fmt.Errorf("%w: nest has %d boundaries, hierarchy %d", ErrBadConfig, len(v.Boundaries), nb)
	}
	x := n.Assignment(n.Vars.Len(), trips)
	r := &Report{Ops: n.Prob.Ops()}
	ops := float64(r.Ops)

	r.Traffic = make([]float64, nb)
	r.Footprint = make([]float64, nb)
	for b := 0; b < nb; b++ {
		r.Traffic[b] = v.EvalTraffic(b, x)
		r.Footprint[b] = v.EvalFootprint(b, x)
		if r.Footprint[b] > float64(c.Buffers[b].Words) {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"%s footprint %.0f > %d", c.Buffers[b].Name, r.Footprint[b], c.Buffers[b].Words))
		}
	}

	// PEs used.
	r.PEsUsed = 1
	for li := range n.Levels {
		if n.Levels[li].Kind != dataflow.Spatial {
			continue
		}
		for _, it := range n.Levels[li].Active {
			if li < len(trips) && it < len(trips[li]) && trips[li][it] > 1 {
				r.PEsUsed *= trips[li][it]
			}
		}
	}
	if r.PEsUsed > c.PEs {
		r.Violations = append(r.Violations, fmt.Sprintf("PEs used %d > %d", r.PEsUsed, c.PEs))
	}

	// Energy: MAC + innermost-buffer operand accesses, plus per-boundary
	// inner-write + outer-read costs (the Eq. 3 pattern generalized).
	r.Energy = (4*c.Buffers[0].Energy + c.MACEnergy) * ops
	for b := 0; b < nb; b++ {
		r.Energy += (c.Buffers[b].Energy + c.outerEnergy(b)) * r.Traffic[b]
	}
	r.EnergyPerMAC = r.Energy / ops

	// Delay: max over compute and each memory's port throughput, matching
	// the paper's coarse model (Section V.B): the innermost buffer's port
	// carries the 4 operand accesses per MAC; memory m > 0 serves
	// boundary m (fills) and boundary m−1 (drains); DRAM serves the
	// outermost boundary. Per-PE memories share the load across PEs.
	pes := float64(r.PEsUsed)
	cycles := ops / pes
	for m := 0; m <= nb; m++ {
		accesses := 0.0
		if m > 0 && m < nb {
			accesses += r.Traffic[m]
		}
		if m > 0 {
			accesses += r.Traffic[m-1]
		}
		var bw float64
		perPE := false
		if m < nb {
			bw = c.Buffers[m].BW
			perPE = m <= c.SpatialAfter
			if m == 0 {
				accesses = 4 * ops
			}
		} else {
			bw = c.DRAMBW
		}
		t := accesses / bw
		if perPE {
			t /= pes
		}
		cycles = math.Max(cycles, t)
	}
	r.Cycles = cycles
	r.IPC = ops / cycles
	return r, nil
}
