// Package loopnest defines the computation IR of the Thistle
// reproduction: a perfectly nested loop computation over dense tensors
// with quasi-affine index expressions of the form Σ strideⱼ·iterⱼ, which
// covers matrix multiplication (Fig. 1 of the paper) and the 7-deep CNN
// loop nest of Listing 1 (including strided convolution).
package loopnest

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBadProblem reports an invalid problem definition.
var ErrBadProblem = errors.New("loopnest: invalid problem")

// Iter is one iteration-space dimension.
type Iter struct {
	Name   string
	Extent int64 // trip count of the full loop; must be ≥ 1
}

// IndexTerm is one strideⱼ·iterⱼ contribution to a tensor subscript.
type IndexTerm struct {
	Iter   int // index into Problem.Iters
	Stride int64
}

// IndexExpr is one tensor subscript: a sum of strided iterators, e.g.
// x·h + r for the convolution input.
type IndexExpr struct {
	Terms []IndexTerm
}

// Idx builds a single-iterator, stride-1 subscript.
func Idx(iter int) IndexExpr {
	return IndexExpr{Terms: []IndexTerm{{Iter: iter, Stride: 1}}}
}

// IdxStrided builds the subscript Σ strideᵢ·iterᵢ from alternating
// (iter, stride) pairs.
func IdxStrided(pairs ...[2]int64) IndexExpr {
	e := IndexExpr{}
	for _, p := range pairs {
		e.Terms = append(e.Terms, IndexTerm{Iter: int(p[0]), Stride: p[1]})
	}
	return e
}

// Uses reports whether the subscript references iterator it.
func (e IndexExpr) Uses(it int) bool {
	for _, t := range e.Terms {
		if t.Iter == it {
			return true
		}
	}
	return false
}

// Tensor is one array in the computation together with its subscripts.
type Tensor struct {
	Name string
	// ReadWrite marks in-out tensors (the convolution output), which are
	// both read and written at each level of the hierarchy; their data
	// volumes are doubled relative to read-only tensors.
	ReadWrite bool
	Dims      []IndexExpr
}

// Uses reports whether any subscript of the tensor references iterator it.
func (t Tensor) Uses(it int) bool {
	for _, d := range t.Dims {
		if d.Uses(it) {
			return true
		}
	}
	return false
}

// Problem is a perfectly nested dense loop computation. One arithmetic
// operation (a MAC) executes per iteration-space point.
type Problem struct {
	Name    string
	Iters   []Iter
	Tensors []Tensor
}

// Validate checks internal consistency: positive extents, in-range
// iterator references, positive strides.
func (p *Problem) Validate() error {
	if len(p.Iters) == 0 {
		return fmt.Errorf("%w: no iterators", ErrBadProblem)
	}
	for _, it := range p.Iters {
		if it.Extent < 1 {
			return fmt.Errorf("%w: iterator %s has extent %d", ErrBadProblem, it.Name, it.Extent)
		}
	}
	if len(p.Tensors) == 0 {
		return fmt.Errorf("%w: no tensors", ErrBadProblem)
	}
	for _, t := range p.Tensors {
		for di, d := range t.Dims {
			if len(d.Terms) == 0 {
				return fmt.Errorf("%w: tensor %s dim %d has no terms", ErrBadProblem, t.Name, di)
			}
			for _, term := range d.Terms {
				if term.Iter < 0 || term.Iter >= len(p.Iters) {
					return fmt.Errorf("%w: tensor %s dim %d references iterator %d", ErrBadProblem, t.Name, di, term.Iter)
				}
				if term.Stride < 1 {
					return fmt.Errorf("%w: tensor %s dim %d has stride %d", ErrBadProblem, t.Name, di, term.Stride)
				}
			}
		}
	}
	return nil
}

// Ops returns the total number of iteration-space points (MAC count).
func (p *Problem) Ops() int64 {
	n := int64(1)
	for _, it := range p.Iters {
		n *= it.Extent
	}
	return n
}

// IterIndex returns the index of the iterator with the given name, or -1.
func (p *Problem) IterIndex(name string) int {
	for i, it := range p.Iters {
		if it.Name == name {
			return i
		}
	}
	return -1
}

// TensorSize returns the number of elements of tensor ti for the full
// problem extents (each subscript ranges over its full extent).
func (p *Problem) TensorSize(ti int) int64 {
	size := int64(1)
	for _, d := range p.Tensors[ti].Dims {
		ext := int64(1)
		for _, term := range d.Terms {
			ext += term.Stride * (p.Iters[term.Iter].Extent - 1)
		}
		size *= ext
	}
	return size
}

// String renders a compact description of the problem.
func (p *Problem) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", p.Name)
	for _, it := range p.Iters {
		fmt.Fprintf(&b, " %s=%d", it.Name, it.Extent)
	}
	for _, t := range p.Tensors {
		b.WriteString(" ")
		b.WriteString(t.Name)
		if t.ReadWrite {
			b.WriteString("(rw)")
		}
		b.WriteString("[")
		for di, d := range t.Dims {
			if di > 0 {
				b.WriteString(",")
			}
			for ti, term := range d.Terms {
				if ti > 0 {
					b.WriteString("+")
				}
				if term.Stride != 1 {
					fmt.Fprintf(&b, "%d*", term.Stride)
				}
				b.WriteString(p.Iters[term.Iter].Name)
			}
		}
		b.WriteString("]")
	}
	return b.String()
}

// MatMul builds the matrix-multiplication problem C[i][j] += A[i][k]·B[k][j]
// with extents Ni, Nj, Nk (Fig. 1(a) of the paper). Iterator order is
// i, j, k.
func MatMul(ni, nj, nk int64) *Problem {
	const (
		i = 0
		j = 1
		k = 2
	)
	return &Problem{
		Name: fmt.Sprintf("matmul_%dx%dx%d", ni, nj, nk),
		Iters: []Iter{
			{Name: "i", Extent: ni},
			{Name: "j", Extent: nj},
			{Name: "k", Extent: nk},
		},
		Tensors: []Tensor{
			{Name: "A", Dims: []IndexExpr{Idx(i), Idx(k)}},
			{Name: "B", Dims: []IndexExpr{Idx(k), Idx(j)}},
			{Name: "C", ReadWrite: true, Dims: []IndexExpr{Idx(i), Idx(j)}},
		},
	}
}

// Conv2DConfig describes one convolution layer in the conventions of the
// paper's Table II: K output channels, C input channels, output feature
// map H×W, kernel R×S, batch N, and strides (x along H, y along W).
type Conv2DConfig struct {
	Name    string
	N       int64 // batch
	K       int64 // output channels
	C       int64 // input channels
	H, W    int64 // OUTPUT feature-map height/width
	R, S    int64 // kernel height/width
	StrideX int64 // stride along H (paper's x)
	StrideY int64 // stride along W (paper's y)
	// DilationX and DilationY space the kernel taps (the paper notes
	// dilation "can be handled similarly"; the quasi-affine subscripts
	// support it directly). Zero means 1 (dense kernel).
	DilationX int64
	DilationY int64
}

// Conv2DIters enumerates the canonical iterator order of Listing 1:
// n, k, c, r, s, h, w.
const (
	ConvN = iota
	ConvK
	ConvC
	ConvR
	ConvS
	ConvH
	ConvW
	ConvIters // count
)

// Conv2D builds the 7-deep CNN loop nest of Listing 1:
//
//	Out[n][k][h][w] += In[n][c][x·h+r][y·w+s] · Ker[k][c][r][s]
func Conv2D(cfg Conv2DConfig) (*Problem, error) {
	if cfg.StrideX < 1 || cfg.StrideY < 1 {
		return nil, fmt.Errorf("%w: strides must be ≥ 1", ErrBadProblem)
	}
	if cfg.DilationX == 0 {
		cfg.DilationX = 1
	}
	if cfg.DilationY == 0 {
		cfg.DilationY = 1
	}
	if cfg.DilationX < 1 || cfg.DilationY < 1 {
		return nil, fmt.Errorf("%w: dilations must be ≥ 1", ErrBadProblem)
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("conv_K%d_C%d_HW%d_RS%d", cfg.K, cfg.C, cfg.H, cfg.R)
	}
	p := &Problem{
		Name: name,
		Iters: []Iter{
			{Name: "n", Extent: cfg.N},
			{Name: "k", Extent: cfg.K},
			{Name: "c", Extent: cfg.C},
			{Name: "r", Extent: cfg.R},
			{Name: "s", Extent: cfg.S},
			{Name: "h", Extent: cfg.H},
			{Name: "w", Extent: cfg.W},
		},
		Tensors: []Tensor{
			{Name: "In", Dims: []IndexExpr{
				Idx(ConvN),
				Idx(ConvC),
				IdxStrided([2]int64{ConvH, cfg.StrideX}, [2]int64{ConvR, cfg.DilationX}),
				IdxStrided([2]int64{ConvW, cfg.StrideY}, [2]int64{ConvS, cfg.DilationY}),
			}},
			{Name: "Ker", Dims: []IndexExpr{
				Idx(ConvK), Idx(ConvC), Idx(ConvR), Idx(ConvS),
			}},
			{Name: "Out", ReadWrite: true, Dims: []IndexExpr{
				Idx(ConvN), Idx(ConvK), Idx(ConvH), Idx(ConvW),
			}},
		},
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
