package loopnest

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseEinsum builds a Problem from an einsum-like statement plus
// iterator extents, e.g.
//
//	ParseEinsum("C[i,j] += A[i,k] * B[k,j]", map[string]int64{"i": 64, "j": 64, "k": 64})
//	ParseEinsum("Out[n,k,h,w] += In[n,c,2h+r,2w+s] * Ker[k,c,r,s]", exts)
//
// Grammar (whitespace-insensitive):
//
//	stmt      := ref "+=" ref { "*" ref }
//	ref       := name "[" subscript { "," subscript } "]"
//	subscript := term { "+" term }
//	term      := [ integer [ "*" ] ] iterator
//
// The left-hand tensor is marked read-write. Every iterator named in any
// subscript must appear in extents. Iterator names are single identifiers
// ([a-zA-Z][a-zA-Z0-9_]*).
func ParseEinsum(stmt string, extents map[string]int64) (*Problem, error) {
	lhs, rhs, ok := strings.Cut(stmt, "+=")
	if !ok {
		return nil, fmt.Errorf("%w: einsum %q missing '+='", ErrBadProblem, stmt)
	}
	p := &Problem{Name: einsumName(stmt)}
	iterIdx := map[string]int{}
	intern := func(name string) (int, error) {
		if i, ok := iterIdx[name]; ok {
			return i, nil
		}
		ext, ok := extents[name]
		if !ok {
			return 0, fmt.Errorf("%w: no extent for iterator %q", ErrBadProblem, name)
		}
		iterIdx[name] = len(p.Iters)
		p.Iters = append(p.Iters, Iter{Name: name, Extent: ext})
		return iterIdx[name], nil
	}

	out, err := parseRef(lhs, intern)
	if err != nil {
		return nil, err
	}
	out.ReadWrite = true

	// Split the right-hand side on '*' at bracket depth zero only, so
	// strided subscripts like In[n,c,2*h+r,...] stay intact.
	var merged []string
	depth, start := 0, 0
	for i := 0; i <= len(rhs); i++ {
		if i == len(rhs) || (rhs[i] == '*' && depth == 0) {
			frag := strings.TrimSpace(rhs[start:i])
			if frag == "" {
				return nil, fmt.Errorf("%w: empty factor in %q", ErrBadProblem, rhs)
			}
			merged = append(merged, frag)
			start = i + 1
			continue
		}
		switch rhs[i] {
		case '[':
			depth++
		case ']':
			depth--
		}
	}
	p.Tensors = append(p.Tensors, out)
	for _, src := range merged {
		tns, err := parseRef(src, intern)
		if err != nil {
			return nil, err
		}
		p.Tensors = append(p.Tensors, tns)
	}
	// The canonical builders list the read-write tensor last; match that.
	rw := p.Tensors[0]
	p.Tensors = append(p.Tensors[1:], rw)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseRef parses "Name[sub,sub,...]".
func parseRef(src string, intern func(string) (int, error)) (Tensor, error) {
	src = strings.TrimSpace(src)
	open := strings.IndexByte(src, '[')
	if open < 0 || !strings.HasSuffix(src, "]") {
		return Tensor{}, fmt.Errorf("%w: bad tensor reference %q", ErrBadProblem, src)
	}
	name := strings.TrimSpace(src[:open])
	if name == "" || !isIdent(name) {
		return Tensor{}, fmt.Errorf("%w: bad tensor name %q", ErrBadProblem, name)
	}
	t := Tensor{Name: name}
	body := src[open+1 : len(src)-1]
	for _, sub := range strings.Split(body, ",") {
		ie, err := parseSubscript(sub, intern)
		if err != nil {
			return Tensor{}, fmt.Errorf("%s: %w", name, err)
		}
		t.Dims = append(t.Dims, ie)
	}
	return t, nil
}

// parseSubscript parses "2*h+r", "2h + r", "k".
func parseSubscript(src string, intern func(string) (int, error)) (IndexExpr, error) {
	var e IndexExpr
	for _, term := range strings.Split(src, "+") {
		term = strings.TrimSpace(term)
		if term == "" {
			return e, fmt.Errorf("%w: empty term in subscript %q", ErrBadProblem, src)
		}
		stride := int64(1)
		name := term
		// Leading integer coefficient, with optional '*'.
		i := 0
		for i < len(term) && term[i] >= '0' && term[i] <= '9' {
			i++
		}
		if i > 0 {
			v, err := strconv.ParseInt(term[:i], 10, 64)
			if err != nil {
				return e, fmt.Errorf("%w: bad stride in %q", ErrBadProblem, term)
			}
			stride = v
			name = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(term[i:]), "*"))
		}
		if !isIdent(name) {
			return e, fmt.Errorf("%w: bad iterator %q in subscript %q", ErrBadProblem, name, src)
		}
		it, err := intern(name)
		if err != nil {
			return e, err
		}
		e.Terms = append(e.Terms, IndexTerm{Iter: it, Stride: stride})
	}
	return e, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !unicode.IsLetter(r) {
			return false
		}
		if i > 0 && !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return true
}

func einsumName(stmt string) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			return r
		default:
			return '_'
		}
	}, stmt)
	for strings.Contains(s, "__") {
		s = strings.ReplaceAll(s, "__", "_")
	}
	return strings.Trim(s, "_")
}

// DepthwiseConv2D builds a depthwise convolution: each input channel is
// convolved with its own kernel (no cross-channel reduction):
//
//	Out[n][c][h][w] += In[n][c][x·h+r][y·w+s] · Ker[c][r][s]
func DepthwiseConv2D(cfg Conv2DConfig) (*Problem, error) {
	if cfg.K != 0 && cfg.K != cfg.C {
		return nil, fmt.Errorf("%w: depthwise convolution has K = C", ErrBadProblem)
	}
	if cfg.StrideX < 1 || cfg.StrideY < 1 {
		return nil, fmt.Errorf("%w: strides must be ≥ 1", ErrBadProblem)
	}
	if cfg.DilationX == 0 {
		cfg.DilationX = 1
	}
	if cfg.DilationY == 0 {
		cfg.DilationY = 1
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("dwconv_C%d_HW%d_RS%d", cfg.C, cfg.H, cfg.R)
	}
	const (
		n = 0
		c = 1
		r = 2
		s = 3
		h = 4
		w = 5
	)
	p := &Problem{
		Name: name,
		Iters: []Iter{
			{Name: "n", Extent: cfg.N},
			{Name: "c", Extent: cfg.C},
			{Name: "r", Extent: cfg.R},
			{Name: "s", Extent: cfg.S},
			{Name: "h", Extent: cfg.H},
			{Name: "w", Extent: cfg.W},
		},
		Tensors: []Tensor{
			{Name: "In", Dims: []IndexExpr{
				Idx(n), Idx(c),
				IdxStrided([2]int64{h, cfg.StrideX}, [2]int64{r, cfg.DilationX}),
				IdxStrided([2]int64{w, cfg.StrideY}, [2]int64{s, cfg.DilationY}),
			}},
			{Name: "Ker", Dims: []IndexExpr{Idx(c), Idx(r), Idx(s)}},
			{Name: "Out", ReadWrite: true, Dims: []IndexExpr{Idx(n), Idx(c), Idx(h), Idx(w)}},
		},
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
