package loopnest

import (
	"strings"
	"testing"
)

func TestMatMulStructure(t *testing.T) {
	p := MatMul(64, 32, 16)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ops() != 64*32*16 {
		t.Fatalf("Ops = %d", p.Ops())
	}
	if len(p.Tensors) != 3 || !p.Tensors[2].ReadWrite {
		t.Fatalf("tensors wrong: %+v", p.Tensors)
	}
	if p.TensorSize(0) != 64*16 || p.TensorSize(1) != 16*32 || p.TensorSize(2) != 64*32 {
		t.Fatalf("tensor sizes: %d %d %d", p.TensorSize(0), p.TensorSize(1), p.TensorSize(2))
	}
	// A uses i and k but not j.
	a := p.Tensors[0]
	if !a.Uses(0) || a.Uses(1) || !a.Uses(2) {
		t.Fatal("A iterator usage wrong")
	}
	if p.IterIndex("j") != 1 || p.IterIndex("zzz") != -1 {
		t.Fatal("IterIndex wrong")
	}
}

func TestConv2DStructure(t *testing.T) {
	p, err := Conv2D(Conv2DConfig{
		Name: "l1", N: 1, K: 64, C: 3, H: 112, W: 112, R: 7, S: 7,
		StrideX: 2, StrideY: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops() != 1*64*3*7*7*112*112 {
		t.Fatalf("Ops = %d", p.Ops())
	}
	// Input size: N × C × (x(H−1)+R) × (y(W−1)+S).
	wantIn := int64(1) * 3 * (2*111 + 7) * (2*111 + 7)
	if got := p.TensorSize(0); got != wantIn {
		t.Fatalf("In size = %d, want %d", got, wantIn)
	}
	if got := p.TensorSize(1); got != 64*3*7*7 {
		t.Fatalf("Ker size = %d", got)
	}
	if got := p.TensorSize(2); got != 64*112*112 {
		t.Fatalf("Out size = %d", got)
	}
	in, ker, out := p.Tensors[0], p.Tensors[1], p.Tensors[2]
	// In uses n,c,r,s,h,w but not k.
	if in.Uses(ConvK) || !in.Uses(ConvH) || !in.Uses(ConvR) {
		t.Fatal("In usage wrong")
	}
	// Ker uses k,c,r,s only.
	if ker.Uses(ConvN) || ker.Uses(ConvH) || !ker.Uses(ConvS) {
		t.Fatal("Ker usage wrong")
	}
	// Out uses n,k,h,w only, and is read-write.
	if out.Uses(ConvC) || out.Uses(ConvR) || !out.ReadWrite {
		t.Fatal("Out usage wrong")
	}
}

func TestConv2DRejectsBadStride(t *testing.T) {
	if _, err := Conv2D(Conv2DConfig{N: 1, K: 1, C: 1, H: 1, W: 1, R: 1, S: 1, StrideX: 0, StrideY: 1}); err == nil {
		t.Fatal("expected stride error")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []*Problem{
		{Name: "noiter"},
		{Name: "badext", Iters: []Iter{{Name: "i", Extent: 0}}, Tensors: []Tensor{{Name: "T", Dims: []IndexExpr{Idx(0)}}}},
		{Name: "notensor", Iters: []Iter{{Name: "i", Extent: 2}}},
		{Name: "emptydim", Iters: []Iter{{Name: "i", Extent: 2}}, Tensors: []Tensor{{Name: "T", Dims: []IndexExpr{{}}}}},
		{Name: "oob", Iters: []Iter{{Name: "i", Extent: 2}}, Tensors: []Tensor{{Name: "T", Dims: []IndexExpr{Idx(5)}}}},
		{Name: "badstride", Iters: []Iter{{Name: "i", Extent: 2}}, Tensors: []Tensor{{Name: "T", Dims: []IndexExpr{IdxStrided([2]int64{0, 0})}}}},
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("Validate(%s) should fail", p.Name)
		}
	}
}

func TestStringRendering(t *testing.T) {
	p, err := Conv2D(Conv2DConfig{N: 1, K: 2, C: 3, H: 4, W: 4, R: 3, S: 3, StrideX: 2, StrideY: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"In[", "2*h+r", "Out(rw)[", "k=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	m := MatMul(4, 4, 4).String()
	if !strings.Contains(m, "C(rw)[i,j]") {
		t.Fatalf("matmul string = %q", m)
	}
}

func TestDefaultConvName(t *testing.T) {
	p, err := Conv2D(Conv2DConfig{N: 1, K: 8, C: 4, H: 8, W: 8, R: 3, S: 3, StrideX: 1, StrideY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(p.Name, "conv_K8_C4") {
		t.Fatalf("default name = %q", p.Name)
	}
}
