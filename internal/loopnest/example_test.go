package loopnest_test

import (
	"fmt"

	"repro/internal/loopnest"
)

func ExampleMatMul() {
	p := loopnest.MatMul(4, 8, 16)
	fmt.Println(p.String())
	fmt.Println("MACs:", p.Ops())
	// Output:
	// matmul_4x8x16: i=4 j=8 k=16 A[i,k] B[k,j] C(rw)[i,j]
	// MACs: 512
}

func ExampleConv2D() {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "stem", N: 1, K: 64, C: 3, H: 112, W: 112, R: 7, S: 7,
		StrideX: 2, StrideY: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(p.String())
	// Output:
	// stem: n=1 k=64 c=3 r=7 s=7 h=112 w=112 In[n,c,2*h+r,2*w+s] Ker[k,c,r,s] Out(rw)[n,k,h,w]
}
