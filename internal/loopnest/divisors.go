package loopnest

// Divisors returns the sorted divisors of n (n ≥ 1). Loop extents are the
// quantities being factored throughout the project — tile sizes divide
// extents — so the helper lives here, below both the mapper and the
// optimization pipeline.
func Divisors(n int64) []int64 {
	var out []int64
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if d != n/d {
				out = append(out, n/d)
			}
		}
	}
	// Insertion sort: divisor lists are short and nearly sorted.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
