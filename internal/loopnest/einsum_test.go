package loopnest

import (
	"strings"
	"testing"
)

func TestParseEinsumMatmul(t *testing.T) {
	p, err := ParseEinsum("C[i,j] += A[i,k] * B[k,j]",
		map[string]int64{"i": 64, "j": 32, "k": 16})
	if err != nil {
		t.Fatal(err)
	}
	ref := MatMul(64, 32, 16)
	// Same iteration space and tensor structure (names differ only in
	// problem name).
	if p.Ops() != ref.Ops() {
		t.Fatalf("Ops = %d, want %d", p.Ops(), ref.Ops())
	}
	if len(p.Tensors) != 3 || !p.Tensors[2].ReadWrite || p.Tensors[2].Name != "C" {
		t.Fatalf("tensors = %+v", p.Tensors)
	}
	if p.Tensors[0].Name != "A" || p.Tensors[1].Name != "B" {
		t.Fatalf("input order = %s, %s", p.Tensors[0].Name, p.Tensors[1].Name)
	}
}

func TestParseEinsumConvStrided(t *testing.T) {
	exts := map[string]int64{"n": 1, "k": 64, "c": 3, "r": 7, "s": 7, "h": 112, "w": 112}
	for _, stmt := range []string{
		"Out[n,k,h,w] += In[n,c,2*h+r,2*w+s] * Ker[k,c,r,s]",
		"Out[n,k,h,w] += In[n, c, 2h + r, 2w + s] * Ker[k,c,r,s]",
	} {
		p, err := ParseEinsum(stmt, exts)
		if err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		ref, err := Conv2D(Conv2DConfig{
			N: 1, K: 64, C: 3, H: 112, W: 112, R: 7, S: 7, StrideX: 2, StrideY: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if p.Ops() != ref.Ops() {
			t.Fatalf("%q: Ops = %d, want %d", stmt, p.Ops(), ref.Ops())
		}
		// The In tensor must have the strided subscripts.
		var in Tensor
		for _, ts := range p.Tensors {
			if ts.Name == "In" {
				in = ts
			}
		}
		if got := in.Dims[2].Terms[0].Stride; got != 2 {
			t.Fatalf("%q: stride = %d", stmt, got)
		}
	}
}

func TestParseEinsumErrors(t *testing.T) {
	exts := map[string]int64{"i": 4, "j": 4, "k": 4}
	bad := []string{
		"C[i,j] = A[i,k] * B[k,j]",     // no +=
		"C[i,j] += A[i,z] * B[k,j]",    // unknown iterator
		"C[i,j] += ",                   // empty rhs
		"C[i,j += A[i,k]",              // unbalanced ref
		"[i,j] += A[i,k]",              // missing name
		"C[i,j] += A[i,] * B[k,j]",     // empty subscript
		"C[i,j] += A[2x*i,k] * B[k,j]", // bad term
		"9C[i,j] += A[i,k] * B[k,j]",   // bad name
		"C[i,j] += A[i,k] * * B[k,j]",  // empty factor
	}
	for _, stmt := range bad {
		if _, err := ParseEinsum(stmt, exts); err == nil {
			t.Fatalf("ParseEinsum(%q) should fail", stmt)
		}
	}
}

func TestDepthwiseConv2D(t *testing.T) {
	p, err := DepthwiseConv2D(Conv2DConfig{
		Name: "dw", N: 1, C: 32, H: 14, W: 14, R: 3, S: 3, StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops() != 32*14*14*9 {
		t.Fatalf("Ops = %d", p.Ops())
	}
	// Ker has no cross-channel dimension.
	if got := len(p.Tensors[1].Dims); got != 3 {
		t.Fatalf("Ker dims = %d, want 3", got)
	}
	// Every tensor uses c: no iterator is reduction-only across channels.
	for _, ts := range p.Tensors {
		if !ts.Uses(1) {
			t.Fatalf("tensor %s does not use c", ts.Name)
		}
	}
	if _, err := DepthwiseConv2D(Conv2DConfig{K: 8, C: 16, N: 1, H: 4, W: 4, R: 3, S: 3, StrideX: 1, StrideY: 1}); err == nil {
		t.Fatal("K != C should fail")
	}
	if _, err := DepthwiseConv2D(Conv2DConfig{C: 16, N: 1, H: 4, W: 4, R: 3, S: 3, StrideX: 0, StrideY: 1}); err == nil {
		t.Fatal("bad stride should fail")
	}
}

func TestParseEinsumMatchesBuilderVolumes(t *testing.T) {
	// The parsed problem and the canonical builder must produce the same
	// printable structure modulo tensor ordering.
	exts := map[string]int64{"n": 1, "k": 16, "c": 8, "r": 3, "s": 3, "h": 8, "w": 8}
	p, err := ParseEinsum("Out[n,k,h,w] += In[n,c,h+r,w+s] * Ker[k,c,r,s]", exts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "In[n,c,h+r,w+s]") ||
		!strings.Contains(p.String(), "Out(rw)[n,k,h,w]") {
		t.Fatalf("parsed structure = %s", p.String())
	}
}
