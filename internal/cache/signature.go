// Package cache is the content-addressed memoization layer of the
// reproduction. Thistle's cost is dominated by re-solving near-identical
// geometric programs: CNNs repeat layer shapes across stages, and the
// experiment sweeps (Tables II–III, Figs. 4–8) formulate and barrier-solve
// the same (workload shape × architecture × options) problem dozens of
// times. This package hashes the semantic content of an optimization
// request into a stable Signature and memoizes the solved result in a
// concurrency-safe in-memory LRU with single-flight deduplication and an
// optional on-disk persistent tier of schema-versioned JSON records.
//
// The signature is computed over a canonical form of the inputs, so
// representational differences that cannot affect the optimization
// result — problem and tensor names, tensor order, subscript-term
// order — hash equal, while every semantic change (an extent, a stride,
// a read-write flag, a technology constant, a solver tolerance) hashes
// different. Iterator names are ignored except for the convolution
// kernel role: iterators named "r" or "s" are treated specially by the
// dataflow construction (they stay untiled), so that role is part of
// the hash.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// SchemaVersion tags the cache record format. It is mixed into every
// signature and written into every on-disk record, so any change to the
// canonical encoding or to the cached value types invalidates old
// entries instead of deserializing them wrongly.
const SchemaVersion = "thistle-cache-v1"

// Signature is the content hash of one optimization request.
type Signature [sha256.Size]byte

// String renders the signature as lowercase hex.
func (s Signature) String() string { return hex.EncodeToString(s[:]) }

// Short returns a 12-hex-digit prefix for logs and span attributes.
func (s Signature) Short() string { return s.String()[:12] }

// Param is one named scalar option folded into a signature. Values are
// pre-rendered strings (use the Param* constructors for exact numeric
// round-trips); callers must supply params in a deterministic order.
type Param struct {
	Name  string
	Value string
}

// ParamString builds a string-valued param.
func ParamString(name, v string) Param { return Param{Name: name, Value: v} }

// ParamInt builds an integer-valued param.
func ParamInt(name string, v int64) Param {
	return Param{Name: name, Value: strconv.FormatInt(v, 10)}
}

// ParamFloat builds a float-valued param with an exact round-trip
// rendering.
func ParamFloat(name string, v float64) Param {
	return Param{Name: name, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// ParamBool builds a boolean-valued param.
func ParamBool(name string, v bool) Param {
	return Param{Name: name, Value: strconv.FormatBool(v)}
}

// Key collects everything that determines an optimization result. The
// typed fields cover the inputs shared by every consumer (the problem,
// the architecture, the criterion, the nest structure); component-
// specific options travel as ordered Params. Telemetry handles and
// worker counts must not be included: they cannot change the result.
type Key struct {
	// Component namespaces signatures per consumer ("optimize",
	// "mapper", "model"), so different result types never collide.
	Component string
	// Problem is hashed in canonical form (see package comment). May be
	// nil when the component does not solve a loop-nest problem.
	Problem *loopnest.Problem
	// Arch is hashed without its Name; all technology constants are
	// included. May be nil.
	Arch *arch.Arch
	// Criterion is the optimization objective.
	Criterion model.Criterion
	// Nest is the tiling-structure configuration.
	Nest dataflow.StandardOptions
	// RSPlacements lists the kernel-loop placements to try (nil means
	// the caller's automatic choice, which is a function of the problem
	// and therefore safe to hash as empty).
	RSPlacements []dataflow.RSPlacement
	// Params carries the remaining options in caller-defined order.
	Params []Param
}

// Signature computes the content hash of the key.
func (k Key) Signature() Signature {
	h := hasher{h: sha256.New()}
	h.str("schema", SchemaVersion)
	h.str("component", k.Component)
	h.problem(k.Problem)
	h.arch(k.Arch)
	h.i64("criterion", int64(k.Criterion))
	h.i64("nest.rs", int64(k.Nest.RS))
	h.i64("nest.untiled_max", k.Nest.UntiledMax)
	h.bool("nest.reduction_multicast", k.Nest.ReductionMulticast)
	h.i64("rs_placements", int64(len(k.RSPlacements)))
	for _, rs := range k.RSPlacements {
		h.i64("rs", int64(rs))
	}
	h.i64("params", int64(len(k.Params)))
	for _, p := range k.Params {
		h.str("param."+p.Name, p.Value)
	}
	var sig Signature
	h.h.Sum(sig[:0])
	return sig
}

// hasher writes length-delimited, field-tagged values into a hash so
// adjacent fields can never be confused for one another.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func (w *hasher) raw(b []byte) {
	binary.BigEndian.PutUint64(w.buf[:], uint64(len(b)))
	w.h.Write(w.buf[:])
	w.h.Write(b)
}

func (w *hasher) str(tag, v string) {
	w.raw([]byte(tag))
	w.raw([]byte(v))
}

func (w *hasher) i64(tag string, v int64) {
	w.raw([]byte(tag))
	binary.BigEndian.PutUint64(w.buf[:], uint64(v))
	w.h.Write(w.buf[:])
}

func (w *hasher) f64(tag string, v float64) {
	w.raw([]byte(tag))
	binary.BigEndian.PutUint64(w.buf[:], math.Float64bits(v))
	w.h.Write(w.buf[:])
}

func (w *hasher) bool(tag string, v bool) {
	if v {
		w.i64(tag, 1)
	} else {
		w.i64(tag, 0)
	}
}

// problem hashes the canonical form of a loop-nest problem. The
// problem's name and its tensors' names are dropped; tensors, their
// dims, and the terms within each dim are sorted into a canonical
// order (none of these orders can affect data volumes, and the cached
// mapping references iterators only, never tensors). Iterator order
// and extents are preserved — mapping trip counts and permutations are
// indexed by iterator position — and each iterator contributes its
// kernel role ("r"/"s" iterators stay untiled in the standard nest)
// instead of its name.
func (w *hasher) problem(p *loopnest.Problem) {
	if p == nil {
		w.str("problem", "<nil>")
		return
	}
	w.i64("iters", int64(len(p.Iters)))
	for _, it := range p.Iters {
		role := ""
		if it.Name == "r" || it.Name == "s" {
			role = it.Name
		}
		w.str("iter.role", role)
		w.i64("iter.extent", it.Extent)
	}
	encs := make([]string, len(p.Tensors))
	for i, t := range p.Tensors {
		encs[i] = canonicalTensor(t)
	}
	sort.Strings(encs)
	w.i64("tensors", int64(len(encs)))
	for _, e := range encs {
		w.str("tensor", e)
	}
}

// canonicalTensor renders one tensor as an order-independent string:
// the read-write flag plus its subscripts, with terms sorted within
// each dim and dims sorted within the tensor.
func canonicalTensor(t loopnest.Tensor) string {
	dims := make([]string, len(t.Dims))
	for i, d := range t.Dims {
		terms := make([]string, len(d.Terms))
		for j, tm := range d.Terms {
			terms[j] = fmt.Sprintf("%d*%d", tm.Iter, tm.Stride)
		}
		sort.Strings(terms)
		dims[i] = strings.Join(terms, "+")
	}
	sort.Strings(dims)
	flag := "ro"
	if t.ReadWrite {
		flag = "rw"
	}
	return flag + ":" + strings.Join(dims, "|")
}

// arch hashes an architecture configuration without its display name.
func (w *hasher) arch(a *arch.Arch) {
	if a == nil {
		w.str("arch", "<nil>")
		return
	}
	w.i64("arch.pes", a.PEs)
	w.i64("arch.regs", a.Regs)
	w.i64("arch.sram", a.SRAM)
	t := a.Tech
	w.f64("tech.area_mac", t.AreaMAC)
	w.f64("tech.area_register", t.AreaRegister)
	w.f64("tech.area_sram_word", t.AreaSRAMWord)
	w.f64("tech.energy_mac", t.EnergyMAC)
	w.f64("tech.sigma_r", t.SigmaR)
	w.f64("tech.sigma_s", t.SigmaS)
	w.f64("tech.energy_dram", t.EnergyDRAM)
	w.f64("tech.energy_noc_hop", t.EnergyNoCHop)
	w.f64("tech.bw_dram", t.BWDRAM)
	w.f64("tech.bw_sram", t.BWSRAM)
	w.f64("tech.bw_reg", t.BWReg)
	w.i64("tech.word_bits", int64(t.WordBits))
}
