package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func sigOf(s string) Signature {
	return Key{Component: "test", Params: []Param{ParamString("id", s)}}.Signature()
}

type payload struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func TestDoMemoizes(t *testing.T) {
	c := New[*payload](Options{})
	var solves atomic.Int64
	solve := func() (*payload, error) {
		solves.Add(1)
		return &payload{Name: "a", Value: 42}, nil
	}
	v1, hit1, err := c.Do(sigOf("a"), solve)
	if err != nil || hit1 {
		t.Fatalf("first Do: hit=%v err=%v", hit1, err)
	}
	v2, hit2, err := c.Do(sigOf("a"), solve)
	if err != nil || !hit2 {
		t.Fatalf("second Do: hit=%v err=%v", hit2, err)
	}
	if v1 != v2 {
		t.Error("hit returned a different value")
	}
	if n := solves.Load(); n != 1 {
		t.Errorf("solve ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", s.HitRate())
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[*payload](Options{})
	var solves atomic.Int64
	boom := fmt.Errorf("infeasible")
	_, _, err := c.Do(sigOf("e"), func() (*payload, error) {
		solves.Add(1)
		return nil, boom
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := c.Do(sigOf("e"), func() (*payload, error) {
		solves.Add(1)
		return &payload{Name: "ok"}, nil
	})
	if err != nil || hit || v.Name != "ok" {
		t.Fatalf("retry after error: v=%v hit=%v err=%v", v, hit, err)
	}
	if n := solves.Load(); n != 2 {
		t.Errorf("solve ran %d times, want 2 (errors must not be cached)", n)
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache[*payload]
	var solves int
	v, hit, err := c.Do(sigOf("n"), func() (*payload, error) {
		solves++
		return &payload{Name: "direct"}, nil
	})
	if err != nil || hit || v.Name != "direct" || solves != 1 {
		t.Fatalf("nil Do: v=%v hit=%v err=%v solves=%d", v, hit, err, solves)
	}
	if _, ok := c.Get(sigOf("n")); ok {
		t.Error("nil Get should miss")
	}
	c.Put(sigOf("n"), &payload{})
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil Stats = %+v", s)
	}
	c.WriteStats(&strings.Builder{})
}

func TestLRUEviction(t *testing.T) {
	c := New[int](Options{Capacity: 2})
	c.Put(sigOf("1"), 1)
	c.Put(sigOf("2"), 2)
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := c.Get(sigOf("1")); !ok {
		t.Fatal("expected hit on 1")
	}
	c.Put(sigOf("3"), 3)
	if _, ok := c.Get(sigOf("2")); ok {
		t.Error("2 should have been evicted")
	}
	if _, ok := c.Get(sigOf("1")); !ok {
		t.Error("1 should have survived")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v", s)
	}
}

// TestSingleflight: concurrent callers of the same signature block on
// one solve instead of racing.
func TestSingleflight(t *testing.T) {
	c := New[*payload](Options{})
	const workers = 8
	var solves atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(sigOf("sf"), func() (*payload, error) {
				solves.Add(1)
				close(started) // leader reached the solve
				<-gate         // hold every follower in the wait path
				return &payload{Name: "shared"}, nil
			})
			if err != nil || v.Name != "shared" {
				t.Errorf("worker: v=%v err=%v", v, err)
			}
		}()
	}
	<-started
	close(gate)
	wg.Wait()
	if n := solves.Load(); n != 1 {
		t.Errorf("solve ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Hits+s.Misses < workers {
		t.Errorf("accounted %d requests, want ≥ %d (stats %+v)", s.Hits+s.Misses, workers, s)
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1 := New[*payload](Options{Dir: dir, Component: "optimize"})
	sig := sigOf("disk")
	want := &payload{Name: "persisted", Value: 3.25}
	if _, hit, err := c1.Do(sig, func() (*payload, error) { return want, nil }); hit || err != nil {
		t.Fatalf("prime: hit=%v err=%v", hit, err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "optimize-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("disk records = %v (err %v), want exactly 1", files, err)
	}

	// A fresh cache (fresh process) must serve the entry from disk.
	c2 := New[*payload](Options{Dir: dir, Component: "optimize"})
	v, hit, err := c2.Do(sig, func() (*payload, error) {
		t.Error("solve ran despite a valid disk record")
		return nil, nil
	})
	if err != nil || !hit || *v != *want {
		t.Fatalf("disk hit: v=%+v hit=%v err=%v", v, hit, err)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Errorf("stats = %+v, want DiskHits=1", s)
	}
}

func TestDiskTierSkipsStaleSchemaAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	sig := sigOf("stale")
	c := New[*payload](Options{Dir: dir, Component: "optimize"})

	// A record with an outdated schema tag must be ignored silently.
	stale, _ := json.Marshal(record[*payload]{
		Schema:    "thistle-cache-v0",
		Component: "optimize",
		Signature: sig.String(),
		Value:     &payload{Name: "old-format"},
	})
	path := filepath.Join(dir, "optimize-"+sig.String()+".json")
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	v, hit, err := c.Do(sig, func() (*payload, error) { return &payload{Name: "fresh"}, nil })
	if err != nil || hit || v.Name != "fresh" {
		t.Fatalf("stale schema: v=%+v hit=%v err=%v", v, hit, err)
	}

	// A truncated/corrupt record must be skipped with a warning, not
	// fail the run.
	var logBuf strings.Builder
	o := &obs.Obs{Log: obs.NewLogger(&logBuf, obs.Warn)}
	cw := New[*payload](Options{Dir: dir, Component: "optimize", Obs: o})
	sig2 := sigOf("corrupt")
	path2 := filepath.Join(dir, "optimize-"+sig2.String()+".json")
	if err := os.WriteFile(path2, []byte(`{"schema": "thistle-ca`), 0o644); err != nil {
		t.Fatal(err)
	}
	v, hit, err = cw.Do(sig2, func() (*payload, error) { return &payload{Name: "recovered"}, nil })
	if err != nil || hit || v.Name != "recovered" {
		t.Fatalf("corrupt record: v=%+v hit=%v err=%v", v, hit, err)
	}
	if s := cw.Stats(); s.CorruptSkipped != 1 {
		t.Errorf("stats = %+v, want CorruptSkipped=1", s)
	}
	if !strings.Contains(logBuf.String(), "corrupt") {
		t.Errorf("expected a corruption warning, log = %q", logBuf.String())
	}

	// A record whose embedded signature disagrees with its filename is
	// also corruption (e.g. a hand-copied file).
	sig3 := sigOf("mismatch")
	wrong, _ := json.Marshal(record[*payload]{
		Schema:    SchemaVersion,
		Component: "optimize",
		Signature: sigOf("other").String(),
		Value:     &payload{Name: "liar"},
	})
	path3 := filepath.Join(dir, "optimize-"+sig3.String()+".json")
	if err := os.WriteFile(path3, wrong, 0o644); err != nil {
		t.Fatal(err)
	}
	v, hit, err = cw.Do(sig3, func() (*payload, error) { return &payload{Name: "honest"}, nil })
	if err != nil || hit || v.Name != "honest" {
		t.Fatalf("mismatched record: v=%+v hit=%v err=%v", v, hit, err)
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := New[int](Options{Obs: &obs.Obs{Metrics: reg}})
	sig := sigOf("m")
	c.Do(sig, func() (int, error) { return 1, nil })
	c.Do(sig, func() (int, error) { return 1, nil })
	if v := reg.Counter("cache.hit").Value(); v != 1 {
		t.Errorf("cache.hit = %d, want 1", v)
	}
	if v := reg.Counter("cache.miss").Value(); v != 1 {
		t.Errorf("cache.miss = %d, want 1", v)
	}
	if v := reg.Counter("cache.store").Value(); v != 1 {
		t.Errorf("cache.store = %d, want 1", v)
	}
}
