package cache

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// baseKey builds a representative optimize-style key over a conv layer.
func baseKey(t *testing.T) Key {
	t.Helper()
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "base", N: 1, K: 64, C: 32, H: 28, W: 28, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Eyeriss()
	return Key{
		Component: "optimize",
		Problem:   p,
		Arch:      &a,
		Criterion: model.MinEnergy,
		Params: []Param{
			ParamString("mode", "fixedarch"),
			ParamInt("ndiv", 2),
			ParamFloat("solver.tol", 1e-6),
			ParamBool("disable_pruning", false),
		},
	}
}

func TestSignatureDeterministic(t *testing.T) {
	k := baseKey(t)
	if k.Signature() != k.Signature() {
		t.Fatal("signature not deterministic")
	}
	if len(k.Signature().String()) != 64 {
		t.Fatalf("hex length = %d, want 64", len(k.Signature().String()))
	}
}

// TestSignatureRenameInvariant: names of the problem, its tensors, and
// its non-kernel iterators are representation, not semantics.
func TestSignatureRenameInvariant(t *testing.T) {
	k1 := baseKey(t)
	k2 := baseKey(t)
	p2 := *k2.Problem
	p2.Name = "renamed_layer_with_same_shape"
	tensors := append([]loopnest.Tensor(nil), p2.Tensors...)
	for i := range tensors {
		tensors[i].Name = tensors[i].Name + "_x"
	}
	p2.Tensors = tensors
	iters := append([]loopnest.Iter(nil), p2.Iters...)
	for i := range iters {
		if iters[i].Name != "r" && iters[i].Name != "s" {
			iters[i].Name = "dim_" + iters[i].Name
		}
	}
	p2.Iters = iters
	k2.Problem = &p2
	if k1.Signature() != k2.Signature() {
		t.Error("renaming problem/tensors/non-kernel iterators changed the signature")
	}
	// Renaming the architecture must not matter either.
	a := *k2.Arch
	a.Name = "definitely_not_eyeriss"
	k2.Arch = &a
	if k1.Signature() != k2.Signature() {
		t.Error("renaming the architecture changed the signature")
	}
}

// TestSignatureReorderInvariant: tensor order, dim order within a
// tensor, and term order within a subscript cannot affect data volumes
// (and the cached mapping never references tensors), so they must not
// affect the signature.
func TestSignatureReorderInvariant(t *testing.T) {
	k1 := baseKey(t)
	k2 := baseKey(t)
	p2 := *k2.Problem

	// Reverse the tensor list.
	tensors := append([]loopnest.Tensor(nil), p2.Tensors...)
	for i, j := 0, len(tensors)-1; i < j; i, j = i+1, j-1 {
		tensors[i], tensors[j] = tensors[j], tensors[i]
	}
	// Reverse the dims of the first tensor and the terms of its first
	// multi-term subscript (the strided input dims of the convolution).
	t0 := tensors[0]
	dims := append([]loopnest.IndexExpr(nil), t0.Dims...)
	for i, j := 0, len(dims)-1; i < j; i, j = i+1, j-1 {
		dims[i], dims[j] = dims[j], dims[i]
	}
	for di := range dims {
		if len(dims[di].Terms) > 1 {
			terms := append([]loopnest.IndexTerm(nil), dims[di].Terms...)
			terms[0], terms[1] = terms[1], terms[0]
			dims[di].Terms = terms
		}
	}
	t0.Dims = dims
	tensors[0] = t0
	p2.Tensors = tensors
	k2.Problem = &p2
	if k1.Signature() != k2.Signature() {
		t.Error("reordering tensors/dims/terms changed the signature")
	}
}

// TestSignatureSemanticChanges: every semantic difference must produce
// a distinct signature.
func TestSignatureSemanticChanges(t *testing.T) {
	base := baseKey(t).Signature()
	seen := map[Signature]string{base: "base"}
	check := func(label string, k Key) {
		t.Helper()
		sig := k.Signature()
		if prev, dup := seen[sig]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[sig] = label
	}

	k := baseKey(t)
	p := *k.Problem
	iters := append([]loopnest.Iter(nil), p.Iters...)
	iters[loopnest.ConvK].Extent = 65
	p.Iters = iters
	k.Problem = &p
	check("extent change", k)

	k = baseKey(t)
	p = *k.Problem
	tensors := append([]loopnest.Tensor(nil), p.Tensors...)
	in := tensors[0]
	dims := append([]loopnest.IndexExpr(nil), in.Dims...)
	terms := append([]loopnest.IndexTerm(nil), dims[2].Terms...)
	terms[0].Stride = 2 // stride-2 input subscript
	dims[2].Terms = terms
	in.Dims = dims
	tensors[0] = in
	p.Tensors = tensors
	k.Problem = &p
	check("stride change", k)

	k = baseKey(t)
	p = *k.Problem
	tensors = append([]loopnest.Tensor(nil), p.Tensors...)
	tensors[0].ReadWrite = true
	p.Tensors = tensors
	k.Problem = &p
	check("read-write flag change", k)

	// Renaming a kernel iterator away from "r" changes its untiled
	// role in the standard nest, so it is a semantic change.
	k = baseKey(t)
	p = *k.Problem
	iters = append([]loopnest.Iter(nil), p.Iters...)
	iters[loopnest.ConvR].Name = "q"
	p.Iters = iters
	k.Problem = &p
	check("kernel-role change", k)

	k = baseKey(t)
	a := *k.Arch
	a.Regs = 256
	k.Arch = &a
	check("register count change", k)

	k = baseKey(t)
	a = *k.Arch
	a.Tech.SigmaS = a.Tech.SigmaS * 2
	k.Arch = &a
	check("technology constant change", k)

	k = baseKey(t)
	k.Criterion = model.MinDelay
	check("criterion change", k)

	k = baseKey(t)
	k.Nest.RS = dataflow.RSAtLevel1
	check("nest RS change", k)

	k = baseKey(t)
	k.RSPlacements = []dataflow.RSPlacement{dataflow.RSAtRegister}
	check("rs placements change", k)

	k = baseKey(t)
	k.Component = "mapper"
	check("component change", k)

	k = baseKey(t)
	k.Params[1] = ParamInt("ndiv", 3)
	check("ndiv change", k)

	k = baseKey(t)
	k.Params[2] = ParamFloat("solver.tol", 1e-8)
	check("solver tolerance change", k)

	k = baseKey(t)
	k.Params[3] = ParamBool("disable_pruning", true)
	check("pruning ablation change", k)
}

// TestSignatureCrossLayerDedup: two distinct Table-II-style layers with
// the same shape but different names — the cross-layer dedup case —
// hash equal; a different shape does not.
func TestSignatureCrossLayerDedup(t *testing.T) {
	mk := func(name string, k int64) *loopnest.Problem {
		p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
			Name: name, N: 1, K: k, C: 64, H: 14, W: 14, R: 3, S: 3,
			StrideX: 1, StrideY: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	key := baseKey(t)
	k1, k2, k3 := key, key, key
	k1.Problem = mk("stage2_block1", 256)
	k2.Problem = mk("stage2_block7", 256)
	k3.Problem = mk("stage3_block1", 512)
	if k1.Signature() != k2.Signature() {
		t.Error("same-shape layers with different names should share a signature")
	}
	if k1.Signature() == k3.Signature() {
		t.Error("different-shape layers must not share a signature")
	}
}
