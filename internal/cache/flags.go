package cache

import (
	"flag"

	"repro/internal/obs"
)

// Flags bundles the caching command-line flags shared by every CLI of
// the reproduction (-cache, -cache-dir, -cache-stats, -cache-size).
// Typical use:
//
//	var cf cache.Flags
//	cf.Register(flag.CommandLine)
//	flag.Parse()
//	c := cache.Setup[*core.Result](&cf, "optimize", o) // nil: caching off
//	... thread c through the run ...
//	if cf.ShowStats {
//		c.WriteStats(os.Stdout)
//	}
type Flags struct {
	Enabled   bool
	Dir       string
	ShowStats bool
	Capacity  int
}

// Register installs the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Enabled, "cache", false, "memoize solve results in a content-addressed in-memory cache")
	fs.StringVar(&f.Dir, "cache-dir", "", "persist cache entries as JSON records in this directory (implies -cache)")
	fs.BoolVar(&f.ShowStats, "cache-stats", false, "print cache hit/miss statistics on exit (implies -cache)")
	fs.IntVar(&f.Capacity, "cache-size", 0, "max in-memory cache entries (default 1024)")
}

// On reports whether any flag requested caching.
func (f *Flags) On() bool { return f.Enabled || f.Dir != "" || f.ShowStats }

// Setup builds the cache selected by the flags, or nil (a valid,
// pass-through cache handle) when caching is off.
func Setup[V any](f *Flags, component string, o *obs.Obs) *Cache[V] {
	if !f.On() {
		return nil
	}
	return New[V](Options{Capacity: f.Capacity, Dir: f.Dir, Component: component, Obs: o})
}
