package cache

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// Options configures a Cache. Zero values select defaults.
type Options struct {
	// Capacity bounds the in-memory entry count (default 1024); least
	// recently used entries are evicted beyond it.
	Capacity int
	// Dir, when non-empty, enables the persistent tier: each entry is
	// written as a schema-versioned JSON record under this directory
	// and consulted on in-memory misses. Records with a stale schema
	// tag are ignored; corrupt records are skipped with a warning.
	Dir string
	// Component namespaces the on-disk file names and metric labels
	// ("optimize", "mapper", "model"). Default "solve".
	Component string
	// Obs receives cache telemetry: cache.hit, cache.miss,
	// cache.singleflight_wait, cache.disk_hit, and cache.store
	// counters plus Warn-level corruption logs. Nil disables it.
	Obs *obs.Obs
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts requests served without running the solver: memory
	// hits, disk hits, and single-flight waits all count.
	Hits int64
	// Misses counts requests that ran the underlying computation.
	Misses int64
	// DiskHits is the subset of Hits served from the persistent tier.
	DiskHits int64
	// SingleflightWaits is the subset of Hits that blocked on another
	// goroutine already solving the same signature.
	SingleflightWaits int64
	// Stores counts freshly computed entries inserted into the cache.
	Stores int64
	// Evictions counts LRU evictions from the in-memory tier.
	Evictions int64
	// CorruptSkipped counts unreadable or mismatched disk records.
	CorruptSkipped int64
	// Entries is the current in-memory entry count.
	Entries int
}

// HitRate returns Hits/(Hits+Misses), or 0 for an unused cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a concurrency-safe, content-addressed memoization map from
// Signature to V with LRU eviction, single-flight deduplication, and an
// optional persistent JSON tier. The zero-capable nil *Cache is valid:
// every method degrades to a pass-through no-op, so call sites need no
// nil checks. Values handed out on hits are shared — treat them as
// immutable.
type Cache[V any] struct {
	capacity  int
	dir       string
	component string
	o         *obs.Obs

	// Hoisted metric handles; nil no-ops when telemetry is off.
	hitC, missC, waitC, diskC, storeC *obs.Counter

	mu      sync.Mutex
	lru     *list.List                  // guarded by mu; of *entry[V], front = most recent
	index   map[Signature]*list.Element // guarded by mu
	flights map[Signature]*flight[V]    // guarded by mu
	stats   Stats                       // guarded by mu
}

type entry[V any] struct {
	sig Signature
	val V
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a cache.
func New[V any](opts Options) *Cache[V] {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	if opts.Component == "" {
		opts.Component = "solve"
	}
	return &Cache[V]{
		capacity:  opts.Capacity,
		dir:       opts.Dir,
		component: opts.Component,
		o:         opts.Obs,
		hitC:      opts.Obs.Counter("cache.hit"),
		missC:     opts.Obs.Counter("cache.miss"),
		waitC:     opts.Obs.Counter("cache.singleflight_wait"),
		diskC:     opts.Obs.Counter("cache.disk_hit"),
		storeC:    opts.Obs.Counter("cache.store"),
		lru:       list.New(),
		index:     make(map[Signature]*list.Element),
		flights:   make(map[Signature]*flight[V]),
	}
}

// Do returns the cached value for sig, or runs solve exactly once to
// produce it. Concurrent callers with the same signature block on the
// single in-flight solve instead of racing. The returned hit flag is
// true whenever this caller did not run solve itself (memory hit, disk
// hit, or single-flight wait). Errors are propagated to every waiter
// and never cached. A nil cache runs solve directly.
func (c *Cache[V]) Do(sig Signature, solve func() (V, error)) (V, bool, error) {
	if c == nil {
		v, err := solve()
		return v, false, err
	}
	c.mu.Lock()
	if el, ok := c.index[sig]; ok {
		c.lru.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		c.stats.Hits++
		c.mu.Unlock()
		c.hitC.Inc()
		return v, true, nil
	}
	if f, ok := c.flights[sig]; ok {
		c.stats.SingleflightWaits++
		c.mu.Unlock()
		c.waitC.Inc()
		<-f.done
		if f.err != nil {
			var zero V
			return zero, false, f.err
		}
		c.hitC.Inc()
		c.mu.Lock()
		c.stats.Hits++
		c.mu.Unlock()
		return f.val, true, nil
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flights[sig] = f
	c.mu.Unlock()

	// Leader path: consult the persistent tier, then solve.
	v, fromDisk := c.loadDisk(sig)
	var err error
	if !fromDisk {
		v, err = solve()
	}
	c.mu.Lock()
	delete(c.flights, sig)
	if err == nil {
		c.insertLocked(sig, v)
		if fromDisk {
			c.stats.Hits++
			c.stats.DiskHits++
		} else {
			c.stats.Misses++
			c.stats.Stores++
		}
	} else {
		c.stats.Misses++
	}
	c.mu.Unlock()
	f.val, f.err = v, err
	close(f.done)
	switch {
	case err != nil:
		c.missC.Inc()
		var zero V
		return zero, false, err
	case fromDisk:
		c.hitC.Inc()
		c.diskC.Inc()
		return v, true, nil
	default:
		c.missC.Inc()
		c.storeC.Inc()
		c.storeDisk(sig, v)
		return v, false, nil
	}
}

// Get returns the in-memory or on-disk value for sig without solving.
func (c *Cache[V]) Get(sig Signature) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	if el, ok := c.index[sig]; ok {
		c.lru.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		c.stats.Hits++
		c.mu.Unlock()
		c.hitC.Inc()
		return v, true
	}
	c.mu.Unlock()
	if v, ok := c.loadDisk(sig); ok {
		c.mu.Lock()
		c.insertLocked(sig, v)
		c.stats.Hits++
		c.stats.DiskHits++
		c.mu.Unlock()
		c.hitC.Inc()
		c.diskC.Inc()
		return v, true
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	c.missC.Inc()
	return zero, false
}

// Put inserts a value, also writing it to the persistent tier.
func (c *Cache[V]) Put(sig Signature, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.insertLocked(sig, v)
	c.stats.Stores++
	c.mu.Unlock()
	c.storeC.Inc()
	c.storeDisk(sig, v)
}

// insertLocked adds or refreshes an entry; caller holds c.mu.
func (c *Cache[V]) insertLocked(sig Signature, v V) {
	if el, ok := c.index[sig]; ok {
		el.Value.(*entry[V]).val = v
		c.lru.MoveToFront(el)
		return
	}
	c.index[sig] = c.lru.PushFront(&entry[V]{sig: sig, val: v})
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.index, back.Value.(*entry[V]).sig)
		c.stats.Evictions++
	}
}

// Stats snapshots the effectiveness counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// WriteStats renders the counters as an aligned text block.
func (c *Cache[V]) WriteStats(w io.Writer) {
	s := c.Stats()
	name := "solve"
	if c != nil {
		name = c.component
	}
	fmt.Fprintf(w, "--- %s cache ---\n", name)
	fmt.Fprintf(w, "hits                 %d\n", s.Hits)
	fmt.Fprintf(w, "  disk hits          %d\n", s.DiskHits)
	fmt.Fprintf(w, "  singleflight waits %d\n", s.SingleflightWaits)
	fmt.Fprintf(w, "misses               %d\n", s.Misses)
	fmt.Fprintf(w, "hit rate             %.1f%%\n", 100*s.HitRate())
	fmt.Fprintf(w, "entries              %d (stores %d, evictions %d)\n", s.Entries, s.Stores, s.Evictions)
	if s.CorruptSkipped > 0 {
		fmt.Fprintf(w, "corrupt skipped      %d\n", s.CorruptSkipped)
	}
}

// record is the on-disk JSON envelope. The schema tag gates decoding:
// records written by an incompatible format are ignored, not decoded.
type record[V any] struct {
	Schema    string `json:"schema"`
	Component string `json:"component"`
	Signature string `json:"signature"`
	Value     V      `json:"value"`
}

// path returns the record file for a signature.
func (c *Cache[V]) path(sig Signature) string {
	return filepath.Join(c.dir, c.component+"-"+sig.String()+".json")
}

// loadDisk reads a persistent record. Any failure — unreadable file,
// bad JSON, stale schema, signature mismatch — degrades to a miss;
// corruption (as opposed to absence or staleness) is logged at Warn.
func (c *Cache[V]) loadDisk(sig Signature) (V, bool) {
	var zero V
	if c.dir == "" {
		return zero, false
	}
	path := c.path(sig)
	data, err := os.ReadFile(path)
	if err != nil {
		return zero, false
	}
	var rec record[V]
	if err := json.Unmarshal(data, &rec); err != nil {
		c.corrupt(path, fmt.Sprintf("bad JSON: %v", err))
		return zero, false
	}
	if rec.Schema != SchemaVersion {
		// A stale (or future) format: silently ignore, never decode.
		return zero, false
	}
	if rec.Signature != sig.String() || rec.Component != c.component {
		c.corrupt(path, "signature/component mismatch")
		return zero, false
	}
	return rec.Value, true
}

// storeDisk writes a persistent record atomically (temp file + rename)
// so concurrent processes sharing a cache directory never observe a
// torn record. Write failures are logged and otherwise ignored: the
// disk tier is an optimization, not a correctness requirement.
func (c *Cache[V]) storeDisk(sig Signature, v V) {
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		c.o.Logf(obs.Warn, "cache: create dir %s: %v", c.dir, err)
		return
	}
	data, err := json.Marshal(record[V]{
		Schema:    SchemaVersion,
		Component: c.component,
		Signature: sig.String(),
		Value:     v,
	})
	if err != nil {
		c.o.Logf(obs.Warn, "cache: encode %s: %v", sig.Short(), err)
		return
	}
	path := c.path(sig)
	tmp, err := os.CreateTemp(c.dir, "."+c.component+"-*.tmp")
	if err != nil {
		c.o.Logf(obs.Warn, "cache: write %s: %v", path, err)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup; the warning carries the write error
		c.o.Logf(obs.Warn, "cache: write %s: %v", path, werr)
	}
}

// corrupt records one skipped disk entry.
func (c *Cache[V]) corrupt(path, why string) {
	c.mu.Lock()
	c.stats.CorruptSkipped++
	c.mu.Unlock()
	c.o.Logf(obs.Warn, "cache: skipping corrupt record %s (%s)", path, why)
}
