package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := ParseLine("BenchmarkSolveCacheWarm-8   	  124567	      9506 ns/op	    2163 B/op	      37 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkSolveCacheWarm" || b.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 124567 || b.NSPerOp != 9506 || b.BytesPerOp != 2163 || b.AllocsOp != 37 {
		t.Fatalf("values = %+v", b)
	}

	b, ok = ParseLine("BenchmarkOptimize-8   10   100000000 ns/op   12.5 solves/op")
	if !ok || b.Metrics["solves/op"] != 12.5 {
		t.Fatalf("custom metric = %+v ok=%v", b, ok)
	}

	if _, ok := ParseLine("PASS"); ok {
		t.Fatal("non-benchmark line parsed")
	}
	if _, ok := ParseLine("BenchmarkX-8 notanumber 1 ns/op"); ok {
		t.Fatal("bad iteration count parsed")
	}
}

func TestParseOutput(t *testing.T) {
	in := `goos: linux
BenchmarkA-8   100   50 ns/op   16 B/op   1 allocs/op
some noise
BenchmarkB-8   200   75 ns/op   0 B/op   0 allocs/op
PASS
`
	var echo strings.Builder
	bs, err := ParseOutput(strings.NewReader(in), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 || bs[0].Name != "BenchmarkA" || bs[1].Name != "BenchmarkB" {
		t.Fatalf("parsed %+v", bs)
	}
	if !strings.Contains(echo.String(), "some noise") {
		t.Fatal("echo did not copy input")
	}
}

func TestLoadSchemaGate(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"schema":"thistle-bench-v1","date":"2026-08-05","go_version":"go1.24","benchmarks":[{"name":"BenchmarkA","iterations":10,"ns_per_op":50}]}`), 0o644)
	p, err := Load(good)
	if err != nil {
		t.Fatal(err)
	}
	if p.Date != "2026-08-05" || len(p.Benchmarks) != 1 {
		t.Fatalf("loaded %+v", p)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"other-v9"}`), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := &Point{Benchmarks: []Benchmark{
		{Name: "BenchmarkWarm", NSPerOp: 9506, AllocsOp: 137, BytesPerOp: 26000},
		{Name: "BenchmarkGone", NSPerOp: 10},
	}}
	new := &Point{Benchmarks: []Benchmark{
		{Name: "BenchmarkWarm", NSPerOp: 13014, AllocsOp: 137, BytesPerOp: 26000},
		{Name: "BenchmarkNew", NSPerOp: 5},
	}}
	deltas := Compare(old, new, CompareOptions{})
	if !HasRegressions(deltas) {
		t.Fatal("37% ns/op growth not flagged with 25% tolerance")
	}
	var sawNS, sawAllocs, sawOld, sawNew bool
	for _, d := range deltas {
		switch {
		case d.Name == "BenchmarkWarm" && d.Dim == "ns/op":
			sawNS = true
			if !d.Regressed {
				t.Fatalf("ns/op delta %+v not regressed", d)
			}
			if d.Frac < 0.35 || d.Frac > 0.40 {
				t.Fatalf("frac = %v, want ~0.37", d.Frac)
			}
		case d.Name == "BenchmarkWarm" && d.Dim == "allocs/op":
			sawAllocs = true
			if d.Regressed {
				t.Fatalf("flat allocs flagged: %+v", d)
			}
		case d.OnlyIn == "old":
			sawOld = true
		case d.OnlyIn == "new":
			sawNew = true
		}
	}
	if !sawNS || !sawAllocs || !sawOld || !sawNew {
		t.Fatalf("missing rows: ns=%v allocs=%v old=%v new=%v in %+v", sawNS, sawAllocs, sawOld, sawNew, deltas)
	}

	// A generous tolerance accepts the same drift.
	if HasRegressions(Compare(old, new, CompareOptions{NSTol: 0.50})) {
		t.Fatal("50% tolerance still flagged a 37% drift")
	}
	// Negative tolerance disables the dimension.
	if HasRegressions(Compare(old, new, CompareOptions{NSTol: -1})) {
		t.Fatal("disabled dimension still flagged")
	}
}

// TestCompareMissingBenchmarkIsReportedSkip pins the fix for the
// silent-pass bug: a benchmark present in the older point but missing
// from the newer one must come back as a Skipped row the report can
// surface, not vanish into a clean "ok". Only old→new disappearance is
// a skip; a brand-new benchmark has nothing to compare against and
// stays a plain presence row.
func TestCompareMissingBenchmarkIsReportedSkip(t *testing.T) {
	cases := []struct {
		name        string
		old, new    []Benchmark
		wantSkipped int
		skippedName string
	}{
		{
			name:        "benchmark deleted from newer point",
			old:         []Benchmark{{Name: "BenchmarkA", NSPerOp: 10}, {Name: "BenchmarkGone", NSPerOp: 20}},
			new:         []Benchmark{{Name: "BenchmarkA", NSPerOp: 10}},
			wantSkipped: 1,
			skippedName: "BenchmarkGone",
		},
		{
			name:        "benchmark renamed: old name skips, new name is presence-only",
			old:         []Benchmark{{Name: "BenchmarkOldName", NSPerOp: 10}},
			new:         []Benchmark{{Name: "BenchmarkNewName", NSPerOp: 1000}},
			wantSkipped: 1,
			skippedName: "BenchmarkOldName",
		},
		{
			name:        "benchmark only in newer point is not a skip",
			old:         []Benchmark{{Name: "BenchmarkA", NSPerOp: 10}},
			new:         []Benchmark{{Name: "BenchmarkA", NSPerOp: 10}, {Name: "BenchmarkFresh", NSPerOp: 5}},
			wantSkipped: 0,
		},
		{
			name:        "identical points skip nothing",
			old:         []Benchmark{{Name: "BenchmarkA", NSPerOp: 10}},
			new:         []Benchmark{{Name: "BenchmarkA", NSPerOp: 10}},
			wantSkipped: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			deltas := Compare(&Point{Benchmarks: tc.old}, &Point{Benchmarks: tc.new}, CompareOptions{})
			if got := CountSkipped(deltas); got != tc.wantSkipped {
				t.Fatalf("CountSkipped = %d, want %d (deltas %+v)", got, tc.wantSkipped, deltas)
			}
			for _, d := range deltas {
				if d.Skipped != (d.OnlyIn == "old") {
					t.Errorf("row %+v: Skipped must mark exactly the only-in-old rows", d)
				}
				if d.Skipped && tc.skippedName != "" && d.Name != tc.skippedName {
					t.Errorf("skipped row names %q, want %q", d.Name, tc.skippedName)
				}
				if d.Skipped && d.Regressed {
					t.Errorf("row %+v both skipped and regressed", d)
				}
			}
			// The skip must never leak into the regression verdict: it is
			// reported, not failed.
			if tc.wantSkipped > 0 && HasRegressions(deltas) {
				t.Error("skipped benchmark flagged as regression")
			}
		})
	}
}
