// Package benchfmt defines the thistle-bench-v1 benchmark trajectory
// format: the schema scripts/benchjson writes as BENCH_<date>.json at
// the repo root and `tlreport bench` compares across dates. Keeping the
// types and comparison logic here means the producer (bench.sh) and
// the consumer (the regression report) cannot drift apart.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema tags trajectory points; Load rejects other schemas.
const Schema = "thistle-bench-v1"

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NSPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"b_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Point is one whole trajectory point (one BENCH_<date>.json file).
type Point struct {
	Schema     string      `json:"schema"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// ParseLine decodes one `go test -bench` result line: the name (with a
// -N GOMAXPROCS suffix), the iteration count, then (value, unit) pairs.
func ParseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	var b Benchmark
	if i := strings.LastIndex(name, "-"); i > 0 {
		if procs, err := strconv.Atoi(name[i+1:]); err == nil {
			b.Procs = procs
			name = name[:i]
		}
	}
	b.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	b.Metrics = map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NSPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// ParseOutput reads `go test -bench` text and collects every benchmark
// line. When echo is non-nil every input line is copied there (so
// bench.sh stays readable when piped).
func ParseOutput(r io.Reader, echo io.Writer) ([]Benchmark, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Benchmark
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if b, ok := ParseLine(line); ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// Load reads and schema-checks one trajectory point.
func Load(path string) (*Point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Point
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if p.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, p.Schema, Schema)
	}
	return &p, nil
}

// CompareOptions sets regression tolerances as allowed fractional
// growth per dimension. Zero values select the defaults; a negative
// value disables that dimension's check.
type CompareOptions struct {
	// NSTol is the tolerated ns/op growth (default 0.25 — wall time is
	// the noisiest dimension, especially across machines).
	NSTol float64
	// AllocTol is the tolerated allocs/op growth (default 0.05 —
	// allocation counts are near-deterministic).
	AllocTol float64
	// BytesTol is the tolerated B/op growth (default 0.10).
	BytesTol float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.NSTol == 0 {
		o.NSTol = 0.25
	}
	if o.AllocTol == 0 {
		o.AllocTol = 0.05
	}
	if o.BytesTol == 0 {
		o.BytesTol = 0.10
	}
	return o
}

// Delta is one benchmark's old→new movement in one dimension.
type Delta struct {
	Name string // benchmark name
	Dim  string // "ns/op", "allocs/op", "B/op"
	Old  float64
	New  float64
	// Frac is the fractional change ((new-old)/old); +0.37 is 37% slower.
	Frac float64
	// Regressed marks deltas beyond the dimension's tolerance.
	Regressed bool
	// OnlyIn flags benchmarks present in just one point ("old"/"new");
	// such rows carry no delta.
	OnlyIn string
	// Skipped marks benchmarks that vanished from the newer point: the
	// comparison could not check them, which the report must say out
	// loud — a deleted (or renamed) benchmark silently passing the
	// regression gate is how a 2x slowdown hides behind a rename.
	Skipped bool
}

// Compare diffs two trajectory points benchmark-by-benchmark (matched
// on name), returning one row per dimension per shared benchmark plus
// presence rows for benchmarks only one side has. Rows are sorted by
// benchmark name, then dimension.
func Compare(old, new *Point, opts CompareOptions) []Delta {
	opts = opts.withDefaults()
	oldBy := byName(old.Benchmarks)
	newBy := byName(new.Benchmarks)

	var out []Delta
	for name, ob := range oldBy {
		nb, ok := newBy[name]
		if !ok {
			out = append(out, Delta{Name: name, OnlyIn: "old", Skipped: true})
			continue
		}
		out = append(out, dim(name, "ns/op", ob.NSPerOp, nb.NSPerOp, opts.NSTol))
		if ob.AllocsOp > 0 || nb.AllocsOp > 0 {
			out = append(out, dim(name, "allocs/op", ob.AllocsOp, nb.AllocsOp, opts.AllocTol))
		}
		if ob.BytesPerOp > 0 || nb.BytesPerOp > 0 {
			out = append(out, dim(name, "B/op", ob.BytesPerOp, nb.BytesPerOp, opts.BytesTol))
		}
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			out = append(out, Delta{Name: name, OnlyIn: "new"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Dim < out[j].Dim
	})
	return out
}

func byName(bs []Benchmark) map[string]Benchmark {
	m := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		m[b.Name] = b
	}
	return m
}

func dim(name, dimName string, oldV, newV, tol float64) Delta {
	d := Delta{Name: name, Dim: dimName, Old: oldV, New: newV}
	if oldV > 0 {
		d.Frac = (newV - oldV) / oldV
		d.Regressed = tol >= 0 && d.Frac > tol
	}
	return d
}

// HasRegressions reports whether any row regressed.
func HasRegressions(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// CountSkipped counts benchmarks the comparison could not check
// because they are missing from the newer point.
func CountSkipped(deltas []Delta) int {
	n := 0
	for _, d := range deltas {
		if d.Skipped {
			n++
		}
	}
	return n
}
