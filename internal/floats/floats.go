// Package floats holds the float64 comparison helpers the numerical
// packages share. Exact ==/!= between computed float64 values is a
// latent nondeterminism bug in an optimizer whose results must be
// byte-identical across runs and cache tiers — two mathematically equal
// quantities computed along different code paths rarely compare equal —
// so the tlvet floateq analyzer forbids it in internal/solver,
// internal/model, and internal/core and points here instead.
//
// The helpers use a hybrid tolerance: |a−b| ≤ tol·max(1, |a|, |b|),
// i.e. absolute near zero and relative away from it, which behaves
// sanely across the ~12 orders of magnitude between an energy in pJ
// and a duality gap.
package floats

import "math"

// DefaultTol is the comparison tolerance used by Eq: loose enough to
// absorb accumulation order, tight enough to separate distinct design
// points (solver objectives are solved to ~1e-6 relative gap).
const DefaultTol = 1e-9

// Eq reports whether a and b are equal within DefaultTol.
func Eq(a, b float64) bool { return EqTol(a, b, DefaultTol) }

// EqTol reports whether |a−b| ≤ tol·max(1, |a|, |b|). NaNs are never
// equal to anything; equal infinities are equal.
func EqTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// RelDiff returns the growth of new over old as a fraction of |old|:
// (new−old)/|old|. A zero old value yields 0 when new is also zero and
// ±Inf otherwise, so regression gates treat "appeared from nothing" as
// an unbounded regression rather than dividing by zero.
func RelDiff(old, new float64) float64 {
	if old == 0 {
		switch {
		case new == 0:
			return 0
		case new > 0:
			return math.Inf(1)
		default:
			return math.Inf(-1)
		}
	}
	return (new - old) / math.Abs(old)
}
