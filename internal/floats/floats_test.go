package floats

import (
	"math"
	"testing"
)

func TestEqTol(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{0, 0, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},   // within relative tol
		{1, 1 + 1e-6, 1e-9, false},   // outside relative tol
		{1e12, 1e12 + 1, 1e-9, true}, // tol scales with magnitude
		{1e-15, 0, 1e-9, true},       // absolute floor near zero
		{1e-15, 0, 1e-18, false},     // ...unless tol is tighter
		{-1, 1, 1e-9, false},
		{inf, inf, 1e-9, true},
		{inf, -inf, 1e-9, false},
		{inf, 1e300, 1e-9, false},
		{nan, nan, 1e-9, false},
		{nan, 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := EqTol(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqTol(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestEqUsesDefaultTol(t *testing.T) {
	if !Eq(1, 1+1e-12) {
		t.Error("Eq(1, 1+1e-12) = false, want true")
	}
	if Eq(1, 1+1e-6) {
		t.Error("Eq(1, 1+1e-6) = true, want false")
	}
}

func TestRelDiff(t *testing.T) {
	cases := []struct {
		old, new, want float64
	}{
		{100, 110, 0.1},
		{100, 90, -0.1},
		{-100, -110, -0.1}, // growth is relative to |old|
		{0, 0, 0},
		{0, 5, math.Inf(1)},
		{0, -5, math.Inf(-1)},
	}
	for _, c := range cases {
		got := RelDiff(c.old, c.new)
		if math.IsInf(c.want, 0) {
			if got != c.want {
				t.Errorf("RelDiff(%g, %g) = %g, want %g", c.old, c.new, got, c.want)
			}
			continue
		}
		if !EqTol(got, c.want, 1e-12) {
			t.Errorf("RelDiff(%g, %g) = %g, want %g", c.old, c.new, got, c.want)
		}
	}
}
