package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Analyzer: "wallclock", Message: "reads the clock", File: "/mod/internal/a.go", Line: 5},
		{Analyzer: "wallclock", Message: "reads the clock", File: "/mod/internal/a.go", Line: 99},
		{Analyzer: "maprange", Message: "unsorted", File: "/mod/internal/b.go", Line: 7},
	}
	b := NewBaseline(findings, "/mod")
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (identical findings collapse with Count)", len(b.Entries))
	}

	path := filepath.Join(t.TempDir(), "base.json")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	kept, suppressed, stale := loaded.Apply(findings, "/mod")
	if len(kept) != 0 || suppressed != 3 || len(stale) != 0 {
		t.Errorf("Apply(same findings) = kept %d, suppressed %d, stale %d; want 0, 3, 0",
			len(kept), suppressed, len(stale))
	}
}

// TestBaselineLineShiftInsensitive: entries carry no line numbers, so
// code moving within a file does not churn the ledger.
func TestBaselineLineShiftInsensitive(t *testing.T) {
	orig := []Finding{{Analyzer: "wallclock", Message: "reads the clock", File: "/mod/a.go", Line: 5}}
	b := NewBaseline(orig, "/mod")
	shifted := []Finding{{Analyzer: "wallclock", Message: "reads the clock", File: "/mod/a.go", Line: 50}}
	kept, suppressed, stale := b.Apply(shifted, "/mod")
	if len(kept) != 0 || suppressed != 1 || len(stale) != 0 {
		t.Errorf("line shift broke matching: kept %d, suppressed %d, stale %d", len(kept), suppressed, len(stale))
	}
}

// TestBaselineCountOverflow: an entry absorbs only Count occurrences;
// the N+1th identical finding is a regression, not tolerated debt.
func TestBaselineCountOverflow(t *testing.T) {
	f := Finding{Analyzer: "wallclock", Message: "reads the clock", File: "/mod/a.go"}
	b := NewBaseline([]Finding{f}, "/mod")
	kept, suppressed, _ := b.Apply([]Finding{f, f}, "/mod")
	if suppressed != 1 || len(kept) != 1 {
		t.Errorf("count overflow: suppressed %d kept %d, want 1 and 1", suppressed, len(kept))
	}
}

func TestBaselineStale(t *testing.T) {
	b := &Baseline{Schema: BaselineSchema, Entries: []BaselineEntry{
		{Analyzer: "wallclock", File: "internal/a.go", Message: "fixed long ago", Count: 1},
		{Analyzer: "maprange", File: "internal/b.go", Message: "still firing", Count: 1},
	}}
	live := []Finding{{Analyzer: "maprange", Message: "still firing", File: "/mod/internal/b.go"}}
	kept, suppressed, stale := b.Apply(live, "/mod")
	if len(kept) != 0 || suppressed != 1 {
		t.Errorf("kept %d suppressed %d, want 0 and 1", len(kept), suppressed)
	}
	if len(stale) != 1 || stale[0].Analyzer != "wallclock" {
		t.Fatalf("stale = %+v, want the wallclock entry", stale)
	}
	fs := StaleFindings(stale, "/mod/.tlvet-baseline.json")
	if len(fs) != 1 || fs[0].Analyzer != "baseline" ||
		!strings.Contains(fs[0].Message, "no longer fires") {
		t.Errorf("stale findings = %+v", fs)
	}
}

func TestBaselineSchemaGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	b := &Baseline{Schema: "tlvet-baseline-v999"}
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("LoadBaseline accepted wrong schema: err = %v", err)
	}
}

func TestBaselineDeterministicOrder(t *testing.T) {
	findings := []Finding{
		{Analyzer: "z", Message: "m", File: "/mod/z.go"},
		{Analyzer: "a", Message: "m", File: "/mod/a.go"},
		{Analyzer: "a", Message: "m", File: "/mod/a.go"},
	}
	b1 := NewBaseline(findings, "/mod")
	b2 := NewBaseline([]Finding{findings[2], findings[0], findings[1]}, "/mod")
	if len(b1.Entries) != len(b2.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(b1.Entries), len(b2.Entries))
	}
	for i := range b1.Entries {
		if b1.Entries[i] != b2.Entries[i] {
			t.Errorf("entry %d differs across input orders: %+v vs %+v", i, b1.Entries[i], b2.Entries[i])
		}
	}
}
