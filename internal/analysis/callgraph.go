package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the flow-aware half of the framework: a module-wide
// static callgraph plus per-function control-flow summaries, built once
// per Run over every loaded package. Analyzers that need to reason
// across function and package boundaries ("does anything reachable from
// Solve read the wall clock?") consult the Module on their Pass instead
// of re-walking ASTs themselves.

// A CallSite is one static call recorded in a function summary. Callee
// is nil for calls through function values, builtins, and type
// conversions — the callgraph is deliberately call-by-declared-name
// only, which is sound for the invariants tlvet enforces (a dynamic
// call that launders a clock read past the analyzer is a code smell the
// reviewer owns).
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// A FuncNode is the control-flow summary of one declared function:
// every static call site in source order (including calls inside
// nested function literals, which execute — if at all — on behalf of
// the declaring function) and the positions of any `go` statements.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists static call sites in source order, nested literals
	// included.
	Calls []CallSite
	// GoStmts are the positions of `go` statements in the body.
	GoStmts []token.Pos
}

// A Module is the cross-package view of one analysis run: all loaded
// packages (targets plus their module-internal dependencies) and the
// callgraph over them. Facts — transitively propagated properties such
// as "reads the wall clock" — are computed on demand with Transitive.
type Module struct {
	// Pkgs holds every package visible to the module, target packages
	// first, in deterministic order.
	Pkgs []*Package
	// Funcs indexes the summary of every function declared in Pkgs.
	Funcs map[*types.Func]*FuncNode
	// nodes is Funcs in deterministic (load, then source) order, so
	// fact propagation and witness chains are stable run to run.
	nodes []*FuncNode
	// callers holds reverse callgraph edges: callee -> calling nodes.
	callers map[*types.Func][]*FuncNode
}

// StaticCallee resolves a call's static callee, or nil for calls
// through function values, builtins, and type conversions.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// BuildModule summarizes pkgs (and the module-internal dependencies
// recorded on them by the loader) into a callgraph-backed Module.
func BuildModule(pkgs []*Package) *Module {
	seen := make(map[string]bool)
	var all []*Package
	add := func(p *Package) {
		if p != nil && !seen[p.Path] {
			seen[p.Path] = true
			all = append(all, p)
		}
	}
	for _, p := range pkgs {
		add(p)
	}
	for _, p := range pkgs {
		deps := append([]*Package(nil), p.Deps...)
		sort.Slice(deps, func(i, j int) bool { return deps[i].Path < deps[j].Path })
		for _, d := range deps {
			add(d)
		}
	}

	m := &Module{
		Pkgs:    all,
		Funcs:   make(map[*types.Func]*FuncNode),
		callers: make(map[*types.Func][]*FuncNode),
	}
	for _, pkg := range all {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						node.Calls = append(node.Calls, CallSite{
							Callee: StaticCallee(pkg.Info, n),
							Pos:    n.Pos(),
						})
					case *ast.GoStmt:
						node.GoStmts = append(node.GoStmts, n.Pos())
					}
					return true
				})
				m.Funcs[fn] = node
				m.nodes = append(m.nodes, node)
			}
		}
	}
	for _, node := range m.nodes {
		linked := make(map[*types.Func]bool)
		for _, c := range node.Calls {
			if c.Callee == nil || linked[c.Callee] {
				continue
			}
			linked[c.Callee] = true
			m.callers[c.Callee] = append(m.callers[c.Callee], node)
		}
	}
	return m
}

// A Fact is one transitively propagated function property ("reaches a
// call satisfying some predicate"). Has answers membership; Why
// reconstructs a deterministic witness chain for diagnostics.
type Fact struct {
	module *Module
	// site is the direct call site establishing the property for
	// functions that satisfy it themselves.
	site map[*types.Func]CallSite
	// via is the callee through which an indirect holder inherited the
	// property.
	via map[*types.Func]*types.Func
}

// Transitive computes the set of functions from which a call satisfying
// direct is reachable through the static callgraph. Propagation does
// not cross functions for which barrier reports true: a barrier
// function may hold the fact itself, but its callers do not inherit it
// through that edge. barrier may be nil.
func (m *Module) Transitive(direct func(c CallSite) bool, barrier func(fn *types.Func) bool) *Fact {
	f := &Fact{
		module: m,
		site:   make(map[*types.Func]CallSite),
		via:    make(map[*types.Func]*types.Func),
	}
	var queue []*types.Func
	for _, node := range m.nodes {
		for _, c := range node.Calls {
			if direct(c) {
				f.site[node.Fn] = c
				queue = append(queue, node.Fn)
				break
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if barrier != nil && barrier(fn) {
			continue // holders behind the barrier don't propagate
		}
		for _, caller := range m.callers[fn] {
			if _, ok := f.site[caller.Fn]; ok {
				continue
			}
			if _, ok := f.via[caller.Fn]; ok {
				continue
			}
			f.via[caller.Fn] = fn
			queue = append(queue, caller.Fn)
		}
	}
	return f
}

// Has reports whether fn holds the fact, directly or transitively.
func (f *Fact) Has(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if _, ok := f.site[fn]; ok {
		return true
	}
	_, ok := f.via[fn]
	return ok
}

// Why returns the witness call chain from fn to the function that
// satisfies the fact directly: fn itself first, the direct holder
// last. It returns nil when fn does not hold the fact.
func (f *Fact) Why(fn *types.Func) []*types.Func {
	if !f.Has(fn) {
		return nil
	}
	var chain []*types.Func
	for fn != nil {
		chain = append(chain, fn)
		if _, ok := f.site[fn]; ok {
			break
		}
		fn = f.via[fn]
	}
	return chain
}

// Site returns the direct call site that establishes the fact for the
// chain ending at Why(fn)'s last element.
func (f *Fact) Site(fn *types.Func) (CallSite, bool) {
	chain := f.Why(fn)
	if len(chain) == 0 {
		return CallSite{}, false
	}
	c, ok := f.site[chain[len(chain)-1]]
	return c, ok
}
