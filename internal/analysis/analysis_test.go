package analysis

import (
	"strings"
	"testing"
)

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "floateq", Message: "exact float == comparison", File: "internal/solver/barrier.go", Line: 42, Col: 7}
	want := "internal/solver/barrier.go:42: [floateq] exact float == comparison"
	if got := f.String(); got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

func TestLoadModuleFindsCorePackages(t *testing.T) {
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, path := range []string{
		"repro/internal/analysis",
		"repro/internal/expr",
		"repro/internal/obs",
		"repro/internal/obs/events",
		"repro/cmd/tlvet",
	} {
		if byPath[path] == nil {
			t.Errorf("LoadModule missing package %s", path)
		}
	}
	if p := byPath["repro/internal/obs"]; p != nil {
		if len(p.Files) == 0 || p.Types == nil || p.Info == nil {
			t.Errorf("package %s not fully loaded: files=%d", p.Path, len(p.Files))
		}
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("test file %s was loaded; analyzers must only see production code", name)
			}
		}
	}
	// The analyzers' own fixtures must never be analyzed as module
	// packages.
	for path := range byPath {
		if strings.Contains(path, "testdata") {
			t.Errorf("testdata package %s leaked into the module load", path)
		}
	}
}

// TestIgnoreDirectiveForms checks directive parsing directly: a reason
// is mandatory (with or without the -- separator present) and the
// analyzer name must exist.
func TestIgnoreDirectiveForms(t *testing.T) {
	pkg, err := LoadDir("testdata/ignoreform", "repro/internal/analysis/testdata/ignoreform")
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"droppederr": true}
	ig := collectIgnores(pkg, known)

	if len(ig.malformed) != 3 {
		t.Fatalf("got %d malformed-directive findings, want 3: %v", len(ig.malformed), ig.malformed)
	}
	var messages []string
	for _, f := range ig.malformed {
		if f.Analyzer != "tlvet" {
			t.Errorf("malformed directive reported by %q, want tlvet", f.Analyzer)
		}
		messages = append(messages, f.Message)
	}
	joined := strings.Join(messages, "\n")
	if !strings.Contains(joined, "needs a reason") {
		t.Errorf("missing needs-a-reason finding in %q", joined)
	}
	if !strings.Contains(joined, `unknown analyzer "nosuch"`) {
		t.Errorf("missing unknown-analyzer finding in %q", joined)
	}

	// The one valid directive suppresses its own line and the next.
	valid := Finding{Analyzer: "droppederr", File: pkg.Fset.Position(pkg.Files[0].Pos()).Filename, Line: 6}
	if !ig.suppresses(valid) {
		t.Errorf("valid directive did not suppress a same-line finding")
	}
	valid.Line = 7
	if !ig.suppresses(valid) {
		t.Errorf("valid directive did not suppress a next-line finding")
	}
	valid.Line = 8
	if ig.suppresses(valid) {
		t.Errorf("directive suppressed a finding two lines below")
	}
	valid.Analyzer = "floateq"
	valid.Line = 6
	if ig.suppresses(valid) {
		t.Errorf("directive for droppederr suppressed a floateq finding")
	}
}
