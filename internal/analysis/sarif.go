package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 output. The structs model the subset of the spec tlvet
// emits — one run, one driver, rule metadata from the analyzer docs,
// and one result per finding with a single physical location — which is
// also the exact shape scripts/sarifcheck validates and check.sh's
// smoke gate consumes. Artifact URIs are module-root-relative with
// forward slashes, as SARIF requires.

// SARIFLog is the top-level envelope.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one tool invocation.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool wraps the driver description.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver names the tool and lists its rules (one per analyzer).
type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule is one analyzer's metadata.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

// SARIFResult is one finding.
type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
}

// SARIFMessage is the spec's message object.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFLocation wraps one physical location.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation is artifact + region.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

// SARIFArtifactLocation is a root-relative file reference.
type SARIFArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

// SARIFRegion is a start position.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// relURI renders file relative to root as a slash-separated SARIF URI;
// a file outside root (or an un-relativizable path) falls back to the
// slashed original.
func relURI(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// BuildSARIF assembles the log for one run. analyzers supplies rule
// metadata and must include (at least) every analyzer named by a
// finding; root anchors artifact URIs. Findings from the driver itself
// (ignore-directive validation, baseline staleness) use synthetic rule
// IDs that are appended to the rule table on demand.
func BuildSARIF(findings []Finding, analyzers []*Analyzer, root string) *SARIFLog {
	var rules []SARIFRule
	index := make(map[string]int)
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		rules = append(rules, SARIFRule{ID: id, ShortDescription: SARIFMessage{Text: doc}})
	}
	sorted := append([]*Analyzer(nil), analyzers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, a := range sorted {
		addRule(a.Name, a.Doc)
	}

	results := make([]SARIFResult, 0, len(findings))
	for _, f := range findings {
		addRule(f.Analyzer, "driver diagnostic")
		results = append(results, SARIFResult{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     "warning",
			Message:   SARIFMessage{Text: f.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{
						URI:       relURI(root, f.File),
						URIBaseID: "%SRCROOT%",
					},
					Region: SARIFRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	return &SARIFLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []SARIFRun{{
			Tool:    SARIFTool{Driver: SARIFDriver{Name: "tlvet", Rules: rules}},
			Results: results,
		}},
	}
}

// WriteSARIF encodes the log for findings onto w, indented.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, root string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildSARIF(findings, analyzers, root))
}
