// Package ignoreform is a fixture for directive-form parsing: one
// valid directive, one with the separator but no reason, one with no
// separator, one naming an unknown analyzer.
package ignoreform

var a = 1 //tlvet:ignore droppederr -- valid: reason present

var b = 2 //tlvet:ignore droppederr --

var c = 3 //tlvet:ignore droppederr

var d = 4 //tlvet:ignore nosuch -- reason
