package analysis

import (
	"strconv"
	"strings"
)

// ignorePrefix starts a suppression directive:
//
//	//tlvet:ignore <analyzer> -- <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory — suppressions must carry their justification in
// the source, not in review history — so a directive without one is
// itself reported, as is one naming an analyzer tlvet does not ship.
const ignorePrefix = "//tlvet:ignore"

// ignoreSet is the parsed suppression state for one package.
type ignoreSet struct {
	// byLine maps file -> line -> analyzer names suppressed there.
	byLine    map[string]map[int]map[string]bool
	malformed []Finding
}

func collectIgnores(pkg *Package, known map[string]bool) *ignoreSet {
	ig := &ignoreSet{byLine: make(map[string]map[int]map[string]bool)}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				name, reason, haveSep := strings.Cut(rest, "--")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				switch {
				case !haveSep || reason == "":
					ig.malformed = append(ig.malformed, Finding{
						Analyzer: "tlvet",
						Message:  `ignore directive needs a reason: //tlvet:ignore <analyzer> -- <reason>`,
						File:     pos.Filename, Line: pos.Line, Col: pos.Column,
					})
				case name == "" || !known[name]:
					ig.malformed = append(ig.malformed, Finding{
						Analyzer: "tlvet",
						Message:  "ignore directive names unknown analyzer " + strconv.Quote(name),
						File:     pos.Filename, Line: pos.Line, Col: pos.Column,
					})
				default:
					lines := ig.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						ig.byLine[pos.Filename] = lines
					}
					if lines[pos.Line] == nil {
						lines[pos.Line] = make(map[string]bool)
					}
					lines[pos.Line][name] = true
				}
			}
		}
	}
	return ig
}

// suppresses reports whether a directive on f's line or the line above
// it names f's analyzer.
func (ig *ignoreSet) suppresses(f Finding) bool {
	lines := ig.byLine[f.File]
	if lines == nil {
		return false
	}
	return lines[f.Line][f.Analyzer] || lines[f.Line-1][f.Analyzer]
}
